// Fuzz target: support::parseJson (RFC 8259 parser used by the serve
// protocol, the daemon journal, and tuning/bench JSON).  Contract under
// hostile bytes: parse successfully or throw the keyed JsonError — never
// crash, never throw anything else, never read out of bounds (ASan+UBSan
// enforce the latter).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "support/json_parse.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    const slim::support::JsonValue v = slim::support::parseJson(text);
    (void)v;
  } catch (const slim::support::JsonError&) {
    // Keyed rejection is the contract for malformed input.
  }
  return 0;
}
