// Standalone fuzz driver: replay + deterministic mutation for toolchains
// without libFuzzer (GCC builds; the local dev loop).  When the harnesses
// are compiled with Clang's -fsanitize=fuzzer this TU is not linked —
// libFuzzer provides main() and its coverage-guided loop is strictly
// better.  This driver keeps the same target ABI (LLVMFuzzerTestOneInput)
// so corpus files and crash reproducers are interchangeable between the
// two.
//
// Modes:
//   fuzz_x FILE...                 replay inputs (regression / repro)
//   fuzz_x --mutate DIR [options]  mutate the corpus under DIR
//     --rounds N     executions (default 20000; 0 = unbounded)
//     --seconds S    stop after S seconds (default 0 = no time limit)
//     --seed S       PRNG seed (default 1); same seed => same sequence
//     --max-len L    cap generated inputs (default 65536)
//
// Determinism: the mutator is a self-contained xorshift64* PRNG — no
// time()/random_device anywhere — so a crashing round is reproducible from
// (corpus, seed, round count) alone; on an escaped exception the exact
// input is additionally saved to crash-<pid>.bin.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

struct Options {
  std::vector<std::string> replayFiles;
  std::string corpusDir;
  std::uint64_t rounds = 20000;
  double seconds = 0;
  std::uint64_t seed = 1;
  std::size_t maxLen = 65536;
};

class XorShift {
 public:
  explicit XorShift(std::uint64_t seed) : state_(seed ? seed : 0x9E3779B9ull) {}
  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }
  std::size_t below(std::size_t bound) {
    return bound == 0 ? 0 : static_cast<std::size_t>(next() % bound);
  }

 private:
  std::uint64_t state_;
};

std::vector<std::uint8_t> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::cerr << "fuzz: cannot open '" << path << "'\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string s = buf.str();
  return {s.begin(), s.end()};
}

std::vector<std::vector<std::uint8_t>> loadCorpus(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::recursive_directory_iterator(dir, ec))
    if (entry.is_regular_file()) paths.push_back(entry.path().string());
  if (ec) {
    std::cerr << "fuzz: cannot read corpus dir '" << dir << "'\n";
    std::exit(2);
  }
  std::sort(paths.begin(), paths.end());  // deterministic corpus order
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(paths.size());
  for (const auto& p : paths) corpus.push_back(readFile(p));
  return corpus;
}

/// One mutation step: pick an operator, apply in place.
void mutate(std::vector<std::uint8_t>& data,
            const std::vector<std::vector<std::uint8_t>>& corpus,
            XorShift& rng, std::size_t maxLen) {
  switch (rng.below(6)) {
    case 0: {  // flip a bit
      if (data.empty()) break;
      data[rng.below(data.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    }
    case 1: {  // overwrite a byte with an interesting value
      if (data.empty()) break;
      static constexpr std::uint8_t kInteresting[] = {
          0x00, 0x01, 0x7F, 0x80, 0xFF, '\n', '\r', ' ', '"', '\\',
          '{',  '}',  '[',  ']',  '-',  '0',  '9',  'e', '.', 'v'};
      data[rng.below(data.size())] =
          kInteresting[rng.below(sizeof kInteresting)];
      break;
    }
    case 2: {  // delete a range
      if (data.size() < 2) break;
      const std::size_t from = rng.below(data.size());
      const std::size_t len = 1 + rng.below(data.size() - from);
      data.erase(data.begin() + static_cast<std::ptrdiff_t>(from),
                 data.begin() + static_cast<std::ptrdiff_t>(from + len));
      break;
    }
    case 3: {  // insert random bytes
      const std::size_t len = 1 + rng.below(8);
      if (data.size() + len > maxLen) break;
      const std::size_t at = rng.below(data.size() + 1);
      std::vector<std::uint8_t> bytes(len);
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at),
                  bytes.begin(), bytes.end());
      break;
    }
    case 4: {  // duplicate a range (repetition stresses depth/size limits)
      if (data.empty() || data.size() * 2 > maxLen) break;
      const std::size_t from = rng.below(data.size());
      const std::size_t len = 1 + rng.below(data.size() - from);
      std::vector<std::uint8_t> copy(data.begin() +
                                         static_cast<std::ptrdiff_t>(from),
                                     data.begin() + static_cast<std::ptrdiff_t>(
                                                        from + len));
      const std::size_t at = rng.below(data.size() + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at),
                  copy.begin(), copy.end());
      break;
    }
    case 5: {  // splice with another corpus entry
      if (corpus.empty()) break;
      const auto& other = corpus[rng.below(corpus.size())];
      if (other.empty()) break;
      const std::size_t cut = rng.below(data.size() + 1);
      const std::size_t from = rng.below(other.size());
      data.resize(cut);
      data.insert(data.end(), other.begin() +
                                  static_cast<std::ptrdiff_t>(from),
                  other.end());
      if (data.size() > maxLen) data.resize(maxLen);
      break;
    }
  }
}

int run(const std::vector<std::uint8_t>& input) {
  try {
    return LLVMFuzzerTestOneInput(input.data(), input.size());
  } catch (const std::exception& e) {
    const std::string file = "crash-" + std::to_string(::getpid()) + ".bin";
    std::ofstream out(file, std::ios::binary);
    out.write(reinterpret_cast<const char*>(input.data()),
              static_cast<std::streamsize>(input.size()));
    out.close();
    std::cerr << "fuzz: escaped exception (" << e.what()
              << "); input saved to " << file << "\n";
    std::abort();
  }
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " FILE...\n"
            << "       " << argv0
            << " --mutate DIR [--rounds N] [--seconds S] [--seed S]"
               " [--max-len L]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--mutate") {
      opt.corpusDir = value();
    } else if (arg == "--rounds") {
      opt.rounds = std::stoull(value());
    } else if (arg == "--seconds") {
      opt.seconds = std::stod(value());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value());
    } else if (arg == "--max-len") {
      opt.maxLen = std::stoull(value());
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      opt.replayFiles.push_back(arg);
    }
  }
  if (opt.corpusDir.empty() && opt.replayFiles.empty()) return usage(argv[0]);

  // Replay mode: every file once, in command-line order.
  for (const auto& path : opt.replayFiles) {
    run(readFile(path));
    std::cout << "ok " << path << "\n";
  }
  if (opt.corpusDir.empty()) return 0;

  // Mutation mode.
  const auto corpus = loadCorpus(opt.corpusDir);
  if (corpus.empty()) {
    std::cerr << "fuzz: corpus dir '" << opt.corpusDir << "' is empty\n";
    return 2;
  }
  for (const auto& entry : corpus) run(entry);  // corpus must stay green

  XorShift rng(opt.seed);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t executed = 0;
  for (std::uint64_t round = 0; opt.rounds == 0 || round < opt.rounds;
       ++round) {
    if (opt.seconds > 0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() >= opt.seconds)
      break;
    std::vector<std::uint8_t> input = corpus[rng.below(corpus.size())];
    const std::size_t steps = 1 + rng.below(8);
    for (std::size_t s = 0; s < steps; ++s)
      mutate(input, corpus, rng, opt.maxLen);
    run(input);
    ++executed;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << "done: " << executed << " mutated executions over "
            << corpus.size() << " corpus entries in " << elapsed << "s\n";
  return 0;
}
