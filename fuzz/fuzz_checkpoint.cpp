// Fuzz target: the checkpoint parser (core::Checkpoint::parse).  A
// checkpoint file survives crashes by design, so a corrupted or truncated
// one is an expected input, not an edge case: the contract is parse or
// throw the keyed ConfigError naming the offending line — never crash,
// never silently load garbage state.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/checkpoint.hpp"
#include "core/config.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    const slim::core::Checkpoint ck =
        slim::core::Checkpoint::parse(text, "fuzz");
    (void)ck;
  } catch (const slim::core::ConfigError&) {
    // Keyed rejection is the contract for corrupt or truncated state.
  }
  return 0;
}
