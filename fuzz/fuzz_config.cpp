// Fuzz target: the ctl-file config parser (core::Config::parseString).
// This is the daemon's submit path — every byte comes straight off the
// socket — so the contract is strict: parse or throw the keyed ConfigError,
// never crash, never throw anything else.  parseString does no file I/O;
// seqfile/treefile are only recorded, not opened.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/config.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    const slim::core::Config cfg = slim::core::Config::parseString(text);
    (void)cfg;
  } catch (const slim::core::ConfigError&) {
    // Keyed rejection is the contract for malformed input.
  }
  return 0;
}
