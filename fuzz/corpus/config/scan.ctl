* every-branch genome scan (PR 10 scan mode)
seqfile  = genes/
treefile = species.nwk
outfile  = -
model    = branch-site
foreground = every-branch
threads  = 4
parallel = task
checkpoint = scan.ckpt
