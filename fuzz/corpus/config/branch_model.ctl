* branch model: one omega per branch class (#k marks in the treefile)
seqfile  = gene.phy
treefile = marked.nwk
outfile  = -
model    = branch
gradient = analytic
