* clade model C with a compound-set selector scan
seqfile  = gene.phy
treefile = species.nwk
outfile  = -
model    = clade-c
foreground = human,chimp; gorilla
