* leading comment

seqfile = a.fa * trailing
   treefile   =   b.nwk
seed = 18446744073709551615
