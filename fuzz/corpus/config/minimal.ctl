seqfile = gene.fasta
treefile = gene.nwk
