// Fuzz target: the Newick tree parser plus the `foreground =` branch-set
// selector that PR 10's scan mode layered on top of it.  Both consume
// user-controlled text (treefile bytes; the ctl `foreground =` value, which
// the daemon accepts straight off the socket), so the contract is strict:
// parse or throw std::invalid_argument (every keyed SLIM_REQUIRE/parse
// failure is one), never crash, never throw anything else.
//
// Input format: the first line is the Newick text; everything after the
// first '\n' (optional) is a branch selector resolved against the parsed
// tree.  Single-line inputs exercise the tree parser alone.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "tree/branch_classes.hpp"
#include "tree/tree.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  std::string_view newick = text;
  std::string_view selector;
  if (const auto nl = text.find('\n'); nl != std::string_view::npos) {
    newick = text.substr(0, nl);
    selector = text.substr(nl + 1);
  }
  try {
    const slim::tree::Tree tree = slim::tree::Tree::parseNewick(newick);
    // A parsed tree must also classify and round-trip cleanly.
    (void)slim::tree::BranchClassMap::fromTree(tree);
    (void)tree.toNewick();
    if (!selector.empty())
      (void)slim::tree::resolveBranchSelector(tree, selector);
  } catch (const std::invalid_argument&) {
    // Keyed rejection is the contract for malformed input.
  }
  return 0;
}
