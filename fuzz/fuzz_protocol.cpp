// Fuzz target: the slimcodeml-serve-v1 request parser
// (serve::parseRequest).  One request line off the UNIX socket; the
// contract is parse or throw the keyed ProtocolError/JsonError — never
// crash.  The daemon's connection loop turns these into error responses, so
// anything else escaping here would take the whole daemon down.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "serve/protocol.hpp"
#include "support/json_parse.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view line(reinterpret_cast<const char*>(data), size);
  try {
    const slim::serve::Request req = slim::serve::parseRequest(line);
    (void)req;
  } catch (const slim::serve::ProtocolError&) {
    // Keyed rejection is the contract for malformed requests.
  } catch (const slim::support::JsonError&) {
    // parseRequest documents JsonError for malformed JSON framing.
  }
  return 0;
}
