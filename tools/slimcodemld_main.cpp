// slimcodemld: the persistent analysis daemon.  Accepts branch-site jobs
// over a UNIX-domain socket (slimcodeml-serve-v1, see docs/protocol.md),
// keeps parsed alignments and warm propagator caches resident across jobs,
// and — with --state — journals the queue and checkpoints jobs so a killed
// daemon recovers them on restart.
//
//   slimcodemld --socket /tmp/slim.sock [--state dir] [--workers 2]

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "support/build_info.hpp"

namespace {

constexpr const char* kUsage = R"(usage: slimcodemld --socket <path> [options]

Persistent analysis server.  Clients submit control-file jobs over the
socket with slimcodeml_client (or any slimcodeml-serve-v1 speaker); results
are bit-identical to `slimcodeml --json` runs of the same control file.

  --socket <path>     UNIX-domain socket to listen on (required)
  --state <dir>       persist the job queue, checkpoints and results here;
                      a restarted daemon recovers interrupted jobs from it
  --workers <n>       concurrently running jobs (default 2)
  --max-queued <n>    admission bound on waiting jobs (default 64)
  --cache-entries <n> resident warm gene contexts (default 16)
  --version           print build information and exit

SIGTERM/SIGINT drain gracefully: admission stops, running fits cancel at
their next iteration boundary (checkpointed jobs keep their snapshot), the
queue is persisted, and the daemon exits 0.
)";

std::atomic<int> gSignal{0};

void handleSignal(int sig) { gSignal.store(sig); }

bool parseCount(const char* text, long& out) {
  char* end = nullptr;
  out = std::strtol(text, &end, 10);
  return end != nullptr && *end == '\0' && out > 0;
}

}  // namespace

int main(int argc, char** argv) {
  slim::serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool hasValue = i + 1 < argc;
    long n = 0;
    if (arg == "--help" || arg == "-h") {
      std::cerr << kUsage;
      return 0;
    } else if (arg == "--version") {
      std::cout << slim::support::buildInfoLine() << '\n';
      return 0;
    } else if (arg == "--socket" && hasValue) {
      options.socketPath = argv[++i];
    } else if (arg == "--state" && hasValue) {
      options.stateDir = argv[++i];
    } else if (arg == "--workers" && hasValue && parseCount(argv[++i], n)) {
      options.workers = static_cast<int>(n);
    } else if (arg == "--max-queued" && hasValue && parseCount(argv[++i], n)) {
      options.maxQueued = static_cast<std::size_t>(n);
    } else if (arg == "--cache-entries" && hasValue &&
               parseCount(argv[++i], n)) {
      options.contextCacheEntries = static_cast<std::size_t>(n);
    } else {
      std::cerr << "slimcodemld: error: bad argument '" << arg << "'\n"
                << kUsage;
      return 1;
    }
  }
  if (options.socketPath.empty()) {
    std::cerr << kUsage;
    return 1;
  }

  std::signal(SIGTERM, handleSignal);
  std::signal(SIGINT, handleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    slim::serve::AnalysisServer server(std::move(options));
    server.start();
    std::cerr << "slimcodemld: " << slim::support::buildInfoLine() << '\n'
              << "slimcodemld: listening on " << server.socketPath() << '\n';
    while (gSignal.load() == 0 && !server.stopRequested())
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::cerr << "slimcodemld: draining ("
              << (gSignal.load() != 0 ? "signal" : "drain request") << ")\n";
    server.drainAndStop();
    std::cerr << "slimcodemld: stopped\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "slimcodemld: error: " << e.what() << '\n';
    return 1;
  }
}
