#!/usr/bin/env python3
"""Convert and compare slimcodeml-bench-v1 benchmark records.

Two subcommands, stdlib only (CI runs this on a bare python3):

  convert OUT.json IN1.json [IN2.json ...]
      Merge Google Benchmark --benchmark_format=json outputs (and/or
      existing slimcodeml-bench-v1 files) into one slimcodeml-bench-v1
      record.  Aggregate rows (_mean/_median/_stddev/_cv) are skipped;
      repetition rows of one benchmark are collapsed to their minimum
      real_time (the standard guard against scheduling noise).

  compare BASELINE.json NEW.json [--tolerance 0.15]
      Fail (exit 1) when any benchmark present in both files regressed by
      more than --tolerance in real_time.  When the two records were
      measured on different hosts the comparison is advisory: every delta
      is printed but the exit code is 0 — absolute times from different
      machines are not comparable, only same-host trajectories are.

Schema (produced by src/support/bench_record.cpp and by convert):
  {"schema": "slimcodeml-bench-v1",
   "host": {"name": ..., "hardwareThreads": ..., "simd": ...},
   "benchmarks": {name: {"real_time_ns": ..., "items_per_second": ...}}}
"""

import argparse
import json
import platform
import sys

SCHEMA = "slimcodeml-bench-v1"


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return float(value) * scale.get(unit, 1.0)


def convert_one(doc, merged):
    """Fold one parsed JSON document into merged {name: entry}."""
    if doc.get("schema") == SCHEMA:
        for name, entry in doc.get("benchmarks", {}).items():
            merged[name] = dict(entry)
        return doc.get("host")
    # Google Benchmark format.
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("run_name") or row["name"]
        ns = to_ns(row["real_time"], row.get("time_unit", "ns"))
        entry = merged.get(name)
        if entry is None or ns < entry["real_time_ns"]:
            merged[name] = {
                "real_time_ns": ns,
                "items_per_second": float(row.get("items_per_second", 0.0)),
            }
    ctx = doc.get("context", {})
    if ctx:
        return {
            "name": ctx.get("host_name", platform.node() or "unknown"),
            "hardwareThreads": int(ctx.get("num_cpus", 0)),
            "simd": "unknown",
        }
    return None


def cmd_convert(args):
    merged = {}
    host = None
    for path in args.inputs:
        host = convert_one(load(path), merged) or host
    if host is None:
        host = {"name": platform.node() or "unknown",
                "hardwareThreads": 0, "simd": "unknown"}
    out = {"schema": SCHEMA, "host": host,
           "benchmarks": dict(sorted(merged.items()))}
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(out, f, indent=1)
        f.write("\n")
    print(f"wrote {args.output}: {len(merged)} benchmarks "
          f"(host {host['name']})")
    return 0


def cmd_compare(args):
    base = load(args.baseline)
    new = load(args.new)
    for doc, path in ((base, args.baseline), (new, args.new)):
        if doc.get("schema") != SCHEMA:
            print(f"error: {path} is not a {SCHEMA} record", file=sys.stderr)
            return 2

    base_host = base.get("host", {}).get("name", "?")
    new_host = new.get("host", {}).get("name", "?")
    same_host = base_host == new_host
    if not same_host:
        print(f"note: baseline host '{base_host}' != new host '{new_host}' "
              f"-- advisory comparison only, regressions will NOT fail")

    shared = sorted(set(base["benchmarks"]) & set(new["benchmarks"]))
    if not shared:
        print("error: no shared benchmark names to compare", file=sys.stderr)
        return 2

    regressions = []
    width = max(len(n) for n in shared)
    for name in shared:
        b = float(base["benchmarks"][name]["real_time_ns"])
        n = float(new["benchmarks"][name]["real_time_ns"])
        if b <= 0:
            continue
        delta = n / b - 1.0
        flag = ""
        if delta > args.tolerance:
            flag = " REGRESSION" if same_host else " (regressed)"
            regressions.append((name, delta))
        print(f"{name:<{width}}  {b:14.1f} ns -> {n:14.1f} ns "
              f"{delta:+7.1%}{flag}")

    only_base = sorted(set(base["benchmarks"]) - set(new["benchmarks"]))
    for name in only_base:
        print(f"{name:<{width}}  missing from new record (not compared)")

    if regressions and same_host:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.tolerance:.0%}:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(f"\nOK: {len(shared)} benchmarks compared, tolerance "
          f"{args.tolerance:.0%}"
          + ("" if same_host else " (cross-host, advisory)"))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    conv = sub.add_parser("convert", help="merge gbench/bench JSON files")
    conv.add_argument("output")
    conv.add_argument("inputs", nargs="+")
    conv.set_defaults(func=cmd_convert)

    comp = sub.add_parser("compare", help="compare two bench records")
    comp.add_argument("baseline")
    comp.add_argument("new")
    comp.add_argument("--tolerance", type=float, default=0.15,
                      help="max allowed real_time regression (default 0.15)")
    comp.set_defaults(func=cmd_compare)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
