// slimcodeml_client: command-line driver for a running slimcodemld.
//
//   slimcodeml_client --socket /tmp/slim.sock submit analysis.ctl --wait
//
// `submit --wait` and `result` print the job's JSON report to stdout — the
// same numbers `slimcodeml --json` writes for that control file (the daemon
// splices the report verbatim; numbers re-emit losslessly on both sides).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "support/build_info.hpp"
#include "support/json.hpp"

namespace {

constexpr const char* kUsage = R"(usage: slimcodeml_client [--socket <path>] <command>

commands:
  ping                                liveness probe
  status [<job-id>]                   daemon (or one job's) status
  submit <ctl-file> [submit options]  queue a control-file job
  result <job-id> [--wait]            fetch a finished job's JSON report
  cancel <job-id>                     cancel a queued or running job
  drain                               ask the daemon to drain and exit

submit options:
  --priority <n>   -100..100, higher runs first (default 0)
  --timeout <sec>  wall-clock budget once the job starts running
  --checkpoint     snapshot optimizer state (daemon needs --state)
  --wait           block until the job finishes and print its report

  --socket defaults to $SLIMCODEMLD_SOCKET.
  --version prints build information and exits.
)";

using slim::support::JsonValue;

int fail(const std::string& message) {
  std::cerr << "slimcodeml_client: error: " << message << '\n';
  return 1;
}

void printResponse(const JsonValue& response) {
  slim::support::writeJson(std::cout, response);
  std::cout << '\n';
}

/// Shared by `result` and `submit --wait`: print the report alone on
/// success (scripting-friendly), the daemon's error on anything else.
int printResult(const JsonValue& response) {
  if (const JsonValue* ok = response.find("ok"); ok && ok->isBool() &&
      ok->asBool()) {
    slim::support::writeJson(std::cout, response.at("report"));
    std::cout << '\n';
    return 0;
  }
  const JsonValue* error = response.find("error");
  return fail(error != nullptr && error->isString() ? error->asString()
                                                    : "request failed");
}

int checkOk(const JsonValue& response) {
  if (const JsonValue* ok = response.find("ok"); ok && ok->isBool() &&
      ok->asBool()) {
    printResponse(response);
    return 0;
  }
  const JsonValue* error = response.find("error");
  return fail(error != nullptr && error->isString() ? error->asString()
                                                    : "request failed");
}

std::string resultRequest(const std::string& id, bool wait) {
  std::ostringstream os;
  os << "{\"schema\":\"" << slim::serve::kServeSchema
     << "\",\"op\":\"result\",\"id\":";
  slim::support::jsonString(os, id);
  if (wait) os << ",\"wait\":true";
  os << '}';
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string socketPath;
  if (const char* env = std::getenv("SLIMCODEMLD_SOCKET")) socketPath = env;
  std::vector<std::string> words;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cerr << kUsage;
      return 0;
    } else if (arg == "--version") {
      std::cout << slim::support::buildInfoLine() << '\n';
      return 0;
    } else if (arg == "--socket" && i + 1 < argc) {
      socketPath = argv[++i];
    } else {
      words.emplace_back(arg);
    }
  }
  if (words.empty()) {
    std::cerr << kUsage;
    return 1;
  }
  if (socketPath.empty())
    return fail("no socket (pass --socket or set $SLIMCODEMLD_SOCKET)");

  try {
    slim::serve::Client client(socketPath);
    const std::string& command = words[0];
    std::ostringstream os;
    os << "{\"schema\":\"" << slim::serve::kServeSchema << "\",\"op\":";

    if (command == "ping" || command == "drain") {
      if (words.size() != 1) return fail(command + " takes no arguments");
      os << '"' << command << "\"}";
      return checkOk(client.call(os.str()));
    }

    if (command == "status") {
      if (words.size() > 2) return fail("status takes at most one job id");
      os << "\"status\"";
      if (words.size() == 2) {
        os << ",\"id\":";
        slim::support::jsonString(os, words[1]);
      }
      os << '}';
      return checkOk(client.call(os.str()));
    }

    if (command == "cancel") {
      if (words.size() != 2) return fail("cancel takes exactly one job id");
      os << "\"cancel\",\"id\":";
      slim::support::jsonString(os, words[1]);
      os << '}';
      return checkOk(client.call(os.str()));
    }

    if (command == "result") {
      bool wait = false;
      std::string id;
      for (std::size_t w = 1; w < words.size(); ++w) {
        if (words[w] == "--wait")
          wait = true;
        else if (id.empty())
          id = words[w];
        else
          return fail("result takes one job id and optionally --wait");
      }
      if (id.empty()) return fail("result needs a job id");
      return printResult(client.call(resultRequest(id, wait)));
    }

    if (command == "submit") {
      std::string ctlPath;
      int priority = 0;
      double timeoutSec = 0;
      bool checkpoint = false;
      bool wait = false;
      for (std::size_t w = 1; w < words.size(); ++w) {
        const std::string& word = words[w];
        const bool hasValue = w + 1 < words.size();
        if (word == "--wait") {
          wait = true;
        } else if (word == "--checkpoint") {
          checkpoint = true;
        } else if (word == "--priority" && hasValue) {
          priority = std::stoi(words[++w]);
        } else if (word == "--timeout" && hasValue) {
          timeoutSec = std::stod(words[++w]);
        } else if (ctlPath.empty()) {
          ctlPath = word;
        } else {
          return fail("bad submit argument '" + word + "'");
        }
      }
      if (ctlPath.empty()) return fail("submit needs a control file");
      std::ifstream in(ctlPath);
      if (!in.good()) return fail("cannot open control file '" + ctlPath + "'");
      std::ostringstream ctl;
      ctl << in.rdbuf();

      os << "\"submit\",\"ctl\":";
      slim::support::jsonString(os, ctl.str());
      if (priority != 0) os << ",\"priority\":" << priority;
      if (timeoutSec > 0) {
        os << ",\"timeoutSec\":";
        slim::support::jsonNumber(os, timeoutSec);
      }
      if (checkpoint) os << ",\"checkpoint\":true";
      os << '}';

      const JsonValue response = client.call(os.str());
      if (const JsonValue* ok = response.find("ok");
          ok == nullptr || !ok->isBool() || !ok->asBool()) {
        const JsonValue* error = response.find("error");
        return fail(error != nullptr && error->isString()
                        ? error->asString()
                        : "submit failed");
      }
      if (!wait) {
        printResponse(response);
        return 0;
      }
      const std::string id = response.at("id").asString();
      std::cerr << "slimcodeml_client: submitted " << id << ", waiting\n";
      return printResult(client.call(resultRequest(id, /*wait=*/true)));
    }

    return fail("unknown command '" + command + "'");
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}
