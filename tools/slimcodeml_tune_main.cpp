// slimcodeml-tune: microbenchmark this host and persist a tuning profile.
//
//   slimcodeml_tune [options]
//
// Sweeps compute backend x SIMD level x block size x thread count on a
// seeded synthetic gene
// (plus a task-vs-pattern batch fan-out race), prints the measurement
// table, and writes the winning configuration to a per-host tuning profile
// that `tuning = auto` control files load at run time (see
// src/core/tuning_profile.hpp).  Tuning affects speed only — every
// candidate is bit- or near-bit-identical in likelihood by the engine's
// invariants.

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "support/bench_record.hpp"
#include "tune/autotune.hpp"

namespace {

constexpr const char* kUsage =
    R"(usage: slimcodeml_tune [options]

Options (defaults in brackets):
  --out PATH     tuning profile destination [$SLIMCODEML_TUNING or
                 ./slimcodeml.tuning]
  --bench PATH   also write a BENCH_*.json record of every measurement
  --species N    microbenchmark gene: taxa [12]
  --codons N     microbenchmark gene: codon columns [160]
  --seed S       microbenchmark gene seed [20120521]
  --threads N    thread count to tune for (0: all hardware threads) [0]
  --evals N      timed evaluations per candidate [3]
  --repeats N    best-of repeats per candidate [2]
)";

int parseInt(const std::string& flag, const char* text) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (*text == '\0' || *end != '\0') {
    std::cerr << "slimcodeml_tune: error: " << flag
              << " needs an integer, got '" << text << "'\n";
    std::exit(1);
  }
  return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slim;

  tune::AutotuneOptions options;
  std::string outPath = core::defaultTuningProfilePath();
  std::string benchPath;

  const auto needValue = [&](int i) {
    if (i + 1 >= argc) {
      std::cerr << "slimcodeml_tune: error: " << argv[i] << " needs a value\n";
      std::exit(1);
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cerr << kUsage;
      return 0;
    } else if (arg == "--out") {
      outPath = needValue(i++);
    } else if (arg == "--bench") {
      benchPath = needValue(i++);
    } else if (arg == "--species") {
      options.numSpecies = parseInt(arg, needValue(i++));
    } else if (arg == "--codons") {
      options.numCodons = parseInt(arg, needValue(i++));
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(
          std::strtoull(needValue(i++), nullptr, 10));
    } else if (arg == "--threads") {
      options.threads = parseInt(arg, needValue(i++));
    } else if (arg == "--evals") {
      options.evalsPerConfig = parseInt(arg, needValue(i++));
    } else if (arg == "--repeats") {
      options.repeats = parseInt(arg, needValue(i++));
    } else {
      std::cerr << kUsage;
      return 1;
    }
  }

  try {
    const tune::AutotuneResult result = tune::autotune(options);

    std::cerr << std::left << std::setw(44) << "candidate" << "s/unit\n";
    for (const auto& m : result.measurements)
      std::cerr << std::left << std::setw(44) << m.name << std::scientific
                << std::setprecision(3) << m.secondsPerUnit << '\n';

    const core::TuningProfile& p = result.profile;
    std::cerr << "\nwinner: backend=" << backend::backendModeName(p.backend)
              << " simd=" << linalg::simdModeName(p.simd)
              << " blockSize=" << p.blockSize << " threads=" << p.numThreads
              << " parallel=" << core::parallelPolicyName(p.policy) << " ("
              << std::scientific << std::setprecision(3) << p.secondsPerEval
              << " s/eval; tuned in " << std::fixed << std::setprecision(1)
              << result.seconds << " s)\n";

    p.save(outPath);
    std::cerr << "wrote " << outPath << '\n';

    if (!benchPath.empty()) {
      std::vector<support::BenchEntry> entries;
      entries.reserve(result.measurements.size());
      for (const auto& m : result.measurements)
        entries.push_back({"tune/" + m.name, m.secondsPerUnit * 1e9,
                           m.secondsPerUnit > 0 ? 1.0 / m.secondsPerUnit
                                                : 0.0});
      support::writeBenchFile(benchPath, entries);
      std::cerr << "wrote " << benchPath << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "slimcodeml_tune: error: " << e.what() << '\n';
    return 1;
  }
}
