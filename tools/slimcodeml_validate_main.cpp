// slimcodeml-validate: seeded simulation-validation ("power") studies.
//
//   slimcodeml_validate [options]
//
// Simulates N alignments per scenario under known truth (a null scenario
// and a positive-selection scenario by default), runs every one through the
// full batch H0/H1 branch-site LRT, and emits a machine-readable
// false-positive / power / ROC report (schema slimcodeml-validate-v1).
// For a fixed seed the statistical body of the report is byte-identical
// across thread counts and parallel policies.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "support/atomic_file.hpp"
#include "support/bench_record.hpp"
#include "valid/study.hpp"

namespace {

constexpr const char* kUsage =
    R"(usage: slimcodeml_validate [options]

Options (defaults in brackets):
  --replicates N      simulated genes per scenario [8]
  --species N         taxa per replicate tree [6]
  --codons N          codon columns per alignment [60]
  --seed S            base seed; replicate seeds derive from it [20260807]
  --omega2 W          positive-scenario foreground dN/dS [2.5]
  --engine E          slim | slim-parallel | codeml [slim]
  --threads N         fit worker threads (0: all cores) [1]
  --parallel P        auto | task | pattern (batch fan-out) [auto]
  --max-iterations N  optimizer iteration cap per fit [50]
  --json PATH         write the JSON report here ('-': stdout) [-]
  --stable            omit the non-deterministic run-info block from the
                      report (for byte-for-byte comparisons)
  --bench PATH        also write a BENCH_*.json timing record
  --checkpoint PATH   snapshot fit state to PATH as the study runs
  --resume            continue from --checkpoint if it exists
)";

int parseInt(const std::string& flag, const char* text) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (*text == '\0' || *end != '\0') {
    std::cerr << "slimcodeml_validate: error: " << flag
              << " needs an integer, got '" << text << "'\n";
    std::exit(1);
  }
  return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slim;

  valid::StudySpec spec = valid::defaultStudySpec();
  spec.fit.bfgs.maxIterations = 50;
  std::string jsonPath = "-";
  std::string benchPath;
  std::string checkpointPath;
  bool resume = false;
  bool stable = false;

  const auto needValue = [&](int i) {
    if (i + 1 >= argc) {
      std::cerr << "slimcodeml_validate: error: " << argv[i]
                << " needs a value\n";
      std::exit(1);
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cerr << kUsage;
      return 0;
    } else if (arg == "--replicates") {
      spec.replicates = parseInt(arg, needValue(i++));
    } else if (arg == "--species") {
      spec.numSpecies = parseInt(arg, needValue(i++));
    } else if (arg == "--codons") {
      spec.numCodons = parseInt(arg, needValue(i++));
    } else if (arg == "--seed") {
      spec.seed = static_cast<std::uint64_t>(
          std::strtoull(needValue(i++), nullptr, 10));
    } else if (arg == "--omega2") {
      const double w = std::strtod(needValue(i++), nullptr);
      for (auto& scenario : spec.scenarios)
        if (scenario.positive) scenario.params.omega2 = w;
    } else if (arg == "--engine") {
      const std::string e = needValue(i++);
      if (e == "slim")
        spec.engine = core::EngineKind::Slim;
      else if (e == "slim-parallel")
        spec.engine = core::EngineKind::SlimParallel;
      else if (e == "codeml")
        spec.engine = core::EngineKind::CodemlBaseline;
      else {
        std::cerr << "slimcodeml_validate: error: unknown engine '" << e
                  << "'\n";
        return 1;
      }
    } else if (arg == "--threads") {
      spec.fit.tuning.numThreads = parseInt(arg, needValue(i++));
    } else if (arg == "--parallel") {
      const std::string p = needValue(i++);
      bool known = false;
      for (const auto policy :
           {core::ParallelPolicy::Auto, core::ParallelPolicy::TaskLevel,
            core::ParallelPolicy::PatternLevel})
        if (p == core::parallelPolicyName(policy)) {
          spec.fit.tuning.policy = policy;
          known = true;
        }
      if (!known) {
        std::cerr << "slimcodeml_validate: error: unknown parallel policy '"
                  << p << "'\n";
        return 1;
      }
    } else if (arg == "--max-iterations") {
      spec.fit.bfgs.maxIterations = parseInt(arg, needValue(i++));
    } else if (arg == "--json") {
      jsonPath = needValue(i++);
    } else if (arg == "--stable") {
      stable = true;
    } else if (arg == "--bench") {
      benchPath = needValue(i++);
    } else if (arg == "--checkpoint") {
      checkpointPath = needValue(i++);
    } else if (arg == "--resume") {
      resume = true;
    } else {
      std::cerr << kUsage;
      return 1;
    }
  }

  try {
    std::unique_ptr<core::CheckpointManager> checkpoint;
    if (!checkpointPath.empty()) {
      checkpoint = core::CheckpointManager::open(
          checkpointPath, /*everySeconds=*/0, valid::studyConfigHash(spec),
          resume);
      spec.checkpoint = checkpoint.get();
    }

    const valid::StudyResult result = valid::runStudy(spec);

    const std::string report =
        valid::studyReportJson(spec, result, /*includeRunInfo=*/!stable);
    if (jsonPath.empty() || jsonPath == "-") {
      std::cout << report;
    } else {
      support::writeFileAtomic(jsonPath, report);
      std::cerr << "wrote " << jsonPath << '\n';
    }

    if (!benchPath.empty()) {
      const double genes = static_cast<double>(result.tests.size());
      const std::vector<support::BenchEntry> entries = {
          {"validate/study", result.seconds * 1e9,
           result.seconds > 0 ? genes / result.seconds : 0.0}};
      support::writeBenchFile(benchPath, entries);
      std::cerr << "wrote " << benchPath << '\n';
    }

    for (const auto& summary : result.summaries)
      std::cerr << summary.name << ": "
                << (summary.rejections.size() > 1 ? summary.rejections[1]
                                                  : summary.rejections.at(0))
                << "/" << summary.replicates << " rejected at alpha "
                << (spec.alphas.size() > 1 ? spec.alphas[1] : spec.alphas.at(0))
                << '\n';
    std::cerr << "auc = " << result.auc << ", " << result.seconds << " s ("
              << result.info.workers << " workers)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "slimcodeml_validate: error: " << e.what() << '\n';
    return 1;
  }
}
