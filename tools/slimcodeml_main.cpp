// The slimcodeml command-line tool: the CodeML-style workflow driven by a
// control file.
//
//   slimcodeml analysis.ctl
//
// See src/core/config.hpp for the control-file reference, or run with
// --help for a template.

#include <iostream>

#include "core/config.hpp"

namespace {

constexpr const char* kUsage = R"(usage: slimcodeml <control-file>

Fits branch-site model A under H0 and H1, runs the likelihood-ratio test
for positive selection on the #1-marked foreground branch, and writes a
report.

Control file template:

    seqfile  = gene.fasta      * FASTA or sequential PHYLIP
    treefile = gene.nwk        * Newick, one branch marked #1
    outfile  = results.txt     * '-' or omitted: stdout
    engine   = slim            * slim | slim-parallel | codeml (baseline)
    model    = branch-site     * branch-site (H0 vs H1) | site (M1a vs M2a)
    threads  = 0               * likelihood threads (0: all cores)
    blockSize = 64             * site patterns per work block
    cachePropagators = 1       * persistent (omega, branch-length) cache
    CodonFreq = 2              * 0 equal, 1 F1x4, 2 F3x4, 3 F61
    maxIterations = 200
    kappa  = 2.0               * initial parameter values
    omega0 = 0.1
    omega2 = 2.0
    p0 = 0.45
    p1 = 0.45
    cleandata = 0              * 1: stop codons treated as missing data
    seed = 0                   * nonzero: jitter the starting values
)";

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::string_view(argv[1]) == "--help" ||
      std::string_view(argv[1]) == "-h") {
    std::cerr << kUsage;
    return argc == 2 ? 0 : 1;
  }
  try {
    const auto config = slim::core::Config::parseFile(argv[1]);
    if (config.analysis == slim::core::AnalysisKind::Site) {
      const auto test = slim::core::runSiteModelFromConfig(config);
      std::cerr << "done: M1a lnL = " << test.m1a.lnL
                << ", M2a lnL = " << test.m2a.lnL
                << ", p = " << test.lrt.pChi2 << '\n';
    } else {
      const auto test = slim::core::runFromConfig(config);
      std::cerr << "done: lnL0 = " << test.h0.lnL
                << ", lnL1 = " << test.h1.lnL << ", p = " << test.lrt.pChi2
                << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "slimcodeml: error: " << e.what() << '\n';
    return 1;
  }
}
