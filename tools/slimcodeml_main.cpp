// The slimcodeml command-line tool: the CodeML-style workflow driven by a
// control file.
//
//   slimcodeml [--json] [--batch <dir>] [--resume] analysis.ctl
//
// See src/core/config.hpp for the control-file reference, or run with
// --help for a template.

#include <atomic>
#include <csignal>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/report.hpp"
#include "support/atomic_file.hpp"
#include "support/build_info.hpp"

namespace {

constexpr const char* kUsage = R"(usage: slimcodeml [--json] [--batch <dir>] [--resume] <control-file>

Fits the selected branch-classification model (branch-site A, the branch
model or clade model C) under H0 and H1, runs the likelihood-ratio test,
and writes a report.  Repeating the seqfile line (or --batch) selects the
multi-gene workflow: every gene's H0/H1 fits are fanned as independent
tasks across the worker pool, sharing the tree and the propagator cache
machinery.  `foreground = every-branch` (or a list of branch sets) scans
each candidate foreground as its own task, named <gene>@<branch-set>.

  --json         also emit a structured JSON report: to '<outfile>.json'
                 when outfile names a file, else to stdout after the text
  --batch <dir>  append every *.fasta/*.fa/*.phy alignment in <dir> (sorted)
                 to the control file's seqfile list
  --resume       continue from the control file's `checkpoint =` file:
                 completed fits are skipped, interrupted ones continue
                 their recorded trajectory bit-identically; a checkpoint
                 from a different configuration is refused
  --version      print build information (git revision, compiler, SIMD
                 level, schema versions) and exit

SIGTERM/SIGINT stop the run at the next optimizer iteration: the checkpoint
(when configured) keeps its last snapshot, a partial report with the
interrupted fits marked `cancelled` is still written atomically, and the
exit status is 130.  `timeoutSec =` in the control file bounds wall-clock
the same way.

Control file template:

    seqfile  = gene.fasta      * FASTA or sequential PHYLIP; repeat per gene
    treefile = gene.nwk        * Newick; #k marks label branch classes
    outfile  = results.txt     * '-' or omitted: stdout
    engine   = slim            * slim | slim-parallel | codeml (baseline)
    model    = branch-site     * branch-site | branch | clade-c | site
    foreground = every-branch  * scan: one fit per branch (or per listed
                               * set: "human,chimp; mouse"); omit for a
                               * plain run on the tree's own #k marks
    threads  = 0               * worker threads (0: all cores)
    parallel = auto            * auto | task | pattern (batch fan-out)
    gradient = fd              * fd | fd-parallel | analytic
    simd     = auto            * auto | scalar | avx2 | avx512 kernels
    blockSize = 64             * site patterns per work block
    cachePropagators = 1       * persistent (omega, branch-length) cache
    CodonFreq = 2              * 0 equal, 1 F1x4, 2 F3x4, 3 F61
    maxIterations = 200
    kappa  = 2.0               * initial parameter values
    omega0 = 0.1
    omega2 = 2.0
    p0 = 0.45
    p1 = 0.45
    cleandata = 0              * 1: stop codons treated as missing data
    seed = 0                   * nonzero: jitter the starting values
    checkpoint = run.ckpt      * snapshot fits for --resume
    checkpointEverySec = 30    * checkpoint write throttle (0: every iter)
)";

/// The JSON report lands next to the text report: '<outfile>.json' when the
/// text goes to a file, stdout otherwise.  File emission is atomic
/// (temp+fsync+rename), like every other report and checkpoint write.
void emitJson(const slim::core::Config& config,
              const std::function<void(std::ostream&)>& write) {
  if (config.outfile.empty() || config.outfile == "-") {
    write(std::cout);
    return;
  }
  const std::string path = config.outfile + ".json";
  std::ostringstream buffer;
  write(buffer);
  slim::support::writeFileAtomic(path, buffer.str());
  std::cerr << "wrote " << path << '\n';
}

std::atomic<bool> gInterrupted{false};

void handleSignal(int) { gInterrupted.store(true); }

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool resume = false;
  std::string batchDir;
  std::string ctlPath;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cerr << kUsage;
      return 0;
    } else if (arg == "--version") {
      std::cout << slim::support::buildInfoLine() << '\n';
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--batch") {
      if (i + 1 >= argc) {
        std::cerr << "slimcodeml: error: --batch needs a directory\n";
        return 1;
      }
      batchDir = argv[++i];
    } else if (ctlPath.empty()) {
      ctlPath = arg;
    } else {
      std::cerr << kUsage;
      return 1;
    }
  }
  if (ctlPath.empty()) {
    std::cerr << kUsage;
    return 1;
  }

  // Graceful interruption: the handler only raises a flag; the optimizers
  // poll it at iteration boundaries (= checkpoint snapshot points) and stop
  // at the last accepted point, so the report/checkpoint writes below still
  // run and stay atomic.
  std::signal(SIGINT, handleSignal);
  std::signal(SIGTERM, handleSignal);

  try {
    auto config = slim::core::Config::parseFile(ctlPath);
    config.resume = resume;
    config.fit.bfgs.cancel = [] { return gInterrupted.load(); };
    if (!batchDir.empty()) {
      for (auto& path : slim::core::scanBatchDirectory(batchDir))
        config.seqfiles.push_back(std::move(path));
      config.seqfile = config.seqfiles.front();
    }

    if (config.analysis == slim::core::AnalysisKind::Site) {
      if (config.seqfiles.size() > 1 || json) {
        std::cerr << "slimcodeml: error: batch mode and --json support "
                     "'model = branch-site', 'branch' and 'clade-c', not "
                     "'model = site'\n";
        return 1;
      }
      const auto test = slim::core::runSiteModelFromConfig(config);
      std::cerr << "done: M1a lnL = " << test.m1a.lnL
                << ", M2a lnL = " << test.m2a.lnL
                << ", p = " << test.lrt.pChi2 << '\n';
    } else if (config.seqfiles.size() > 1 || !config.foreground.empty()) {
      const auto out = slim::core::runBatchFromConfig(config);
      if (json)
        emitJson(config, [&](std::ostream& os) {
          writeJsonBatchReport(os, out.tests, out.geneNames, config.engine,
                               out.totals, out.info);
        });
      int detected = 0;
      for (const auto& t : out.tests) detected += t.lrt.significantAt(0.05);
      std::cerr << "done: " << out.tests.size() << " genes, " << detected
                << " with positive selection detected, " << out.info.seconds
                << " s (" << out.info.workers << " workers)\n";
    } else {
      const auto test = slim::core::runFromConfig(config);
      if (json)
        emitJson(config, [&](std::ostream& os) {
          writeJsonTestReport(os, test, config.engine);
        });
      std::cerr << "done: lnL0 = " << test.h0.lnL
                << ", lnL1 = " << test.h1.lnL << ", p = " << test.lrt.pChi2
                << '\n';
    }
    if (gInterrupted.load()) {
      std::cerr << "slimcodeml: interrupted — partial report written; "
                   "interrupted fits are marked 'cancelled' (use a "
                   "checkpoint to resume them)\n";
      return 130;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "slimcodeml: error: " << e.what() << '\n';
    return 1;
  }
}
