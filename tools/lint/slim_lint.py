#!/usr/bin/env python3
"""slim_lint: SlimCodeML's repo-specific invariant checks.

Enforces the handful of invariants no off-the-shelf tool knows about,
because they are *this* repo's correctness contracts (see
docs/static-analysis.md):

  hex-doubles          Persisted doubles must round-trip bit-exactly through
                       hexDouble ("%a").  Serializer functions (serialize*/
                       persist*/snapshot*/writeDoubles/writeJson*/toJson*)
                       must not format doubles with printf "%f"/"%e" or
                       std::to_string — both are lossy, and a lossy
                       checkpoint silently breaks bit-identical resume.
  atomic-writes        Every file write in src/ must go through
                       support::writeFileAtomic (temp + fsync + rename).  A
                       raw std::ofstream outside support/atomic_file.cpp can
                       leave a truncated checkpoint/report after SIGKILL.
  keyed-errors         The hostile-input parsers (ctl config, checkpoint,
                       serve protocol, tuning profile) must throw keyed
                       ConfigError/ProtocolError/JsonError, never bare
                       std::runtime_error — callers (daemon submit,
                       --resume, the fuzz harnesses) key on the type.
  determinism          No rand()/srand()/std::random_device/time(NULL) in
                       src/ (all randomness is seeded PRNG state), and no
                       range-for over unordered containers: iteration order
                       would leak the hash function into reductions and
                       reports that must be bit-stable across
                       platforms/runs.
  isa-flags            ISA-specific code stays quarantined: <immintrin.h> /
                       <x86intrin.h> only in the two runtime-dispatched
                       kernel TUs, and -mavx* / -march compile flags only on
                       those TUs' source properties in CMakeLists.txt.
                       Anything else risks an illegal instruction on the
                       oldest supported host.
  include-cycles       The quoted-include graph over src/ headers must be a
                       DAG.  A cycle (even one hidden behind include guards)
                       means the layering is broken: whichever header is
                       parsed first sees an incomplete view of the other,
                       and whether that compiles depends on include order in
                       unrelated TUs.  Each cycle is reported once, at the
                       lexicographically smallest participating header.

Waivers: a finding is suppressed when the offending line, or the line
directly above it, carries

    // slim-lint: allow(<rule>)

with a comment explaining why the invariant holds anyway.

Usage: tools/lint/slim_lint.py [--root DIR] [--rules]
Exit status: 0 clean, 1 findings, 2 usage/internal error.
Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

SERIALIZER_NAME = re.compile(
    r"serialize\w*|persist\w*|snapshot\w*|writeDoubles|writeJson\w*|"
    r"writeReport\w*|toJson\w*"
)

# Parser TUs whose error taxonomy is contractual (see keyed-errors above).
KEYED_ERROR_FILES = {
    os.path.join("src", "core", "config.cpp"),
    os.path.join("src", "core", "checkpoint.cpp"),
    os.path.join("src", "core", "tuning_profile.cpp"),
    os.path.join("src", "serve", "protocol.cpp"),
    os.path.join("src", "support", "json_parse.cpp"),
}

ISA_ALLOWED_FILES = {
    os.path.join("src", "linalg", "kernels_avx2.cpp"),
    os.path.join("src", "linalg", "kernels_avx512.cpp"),
}

WAIVER = re.compile(r"//\s*slim-lint:\s*allow\(([a-z-]+)\)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def sanitize(text: str) -> str:
    """Blank out comments, string and char literals, preserving line
    structure and length, so structural scans (brace matching, identifier
    searches) never match inside them.  Raw lines keep the original text for
    rules that must look *inside* literals (printf formats) and for waiver
    comments."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated (raw string etc.): bail to code
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def waived(raw_lines: list[str], line_no: int, rule: str) -> bool:
    """line_no is 1-based.  The waiver may sit on the line itself or the one
    directly above."""
    for ln in (line_no, line_no - 1):
        if 1 <= ln <= len(raw_lines):
            m = WAIVER.search(raw_lines[ln - 1])
            if m and m.group(1) == rule:
                return True
    return False


def line_of(offset: int, text: str) -> int:
    return text.count("\n", 0, offset) + 1


def serializer_bodies(clean: str):
    """Yield (start_line, end_line, name) for function bodies whose name
    matches SERIALIZER_NAME, via brace matching on sanitized text."""
    for m in re.finditer(r"\b(\w+)\s*\(", clean):
        if not SERIALIZER_NAME.fullmatch(m.group(1)):
            continue
        # Find the parameter list's closing paren, then require a '{' before
        # the next ';' (otherwise it is a declaration or a call).
        depth, j = 0, m.end() - 1
        while j < len(clean):
            if clean[j] == "(":
                depth += 1
            elif clean[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if j >= len(clean):
            continue
        k = j + 1
        while k < len(clean) and clean[k] not in "{;":
            k += 1
        if k >= len(clean) or clean[k] != "{":
            continue
        depth = 0
        end = k
        while end < len(clean):
            if clean[end] == "{":
                depth += 1
            elif clean[end] == "}":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        yield line_of(k, clean), line_of(end, clean), m.group(1)


PRINTF_FLOAT = re.compile(r"%[-+ #0-9.*]*[hlLqjzt]*[feE]")
TO_STRING = re.compile(r"\bto_string\s*\(")
OFSTREAM = re.compile(r"\bstd\s*::\s*ofstream\b|\bofstream\s+\w+\s*\(")
RUNTIME_ERROR = re.compile(r"\bstd\s*::\s*runtime_error\b")
RANDOMNESS = re.compile(
    r"\b(?:std\s*::\s*)?(?:rand|srand)\s*\(|\bstd\s*::\s*random_device\b|"
    r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)
UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]{0,400}?>\s+(\w+)", re.S
)
RANGE_FOR = re.compile(r"\bfor\s*\([^;()]*?:\s*(?:[\w.\->]*[.\->])?(\w+)\s*\)")
ISA_INCLUDE = re.compile(r'#\s*include\s*[<"](?:immintrin|x86intrin)\.h[>"]')
CMAKE_ISA_FLAG = re.compile(r"-m(?:avx|sse|fma)\w*|-march=")


def check_file(relpath: str, text: str, findings: list[Finding]) -> None:
    raw_lines = text.splitlines()
    clean = sanitize(text)
    clean_lines = clean.splitlines()

    def add(line_no: int, rule: str, message: str) -> None:
        if not waived(raw_lines, line_no, rule):
            findings.append(Finding(relpath, line_no, rule, message))

    # --- hex-doubles: inside serializer bodies only -------------------------
    for start, end, name in serializer_bodies(clean):
        for ln in range(start, min(end, len(raw_lines)) + 1):
            raw = raw_lines[ln - 1]
            if PRINTF_FLOAT.search(raw) and "%a" not in raw:
                add(ln, "hex-doubles",
                    f"printf float conversion in serializer '{name}' — "
                    "persisted doubles must go through hexDouble (\"%a\")")
            if ln <= len(clean_lines) and TO_STRING.search(clean_lines[ln - 1]):
                add(ln, "hex-doubles",
                    f"std::to_string in serializer '{name}' — lossy for "
                    "doubles; use hexDouble, or stream integers directly")

    # --- atomic-writes ------------------------------------------------------
    if relpath != os.path.join("src", "support", "atomic_file.cpp"):
        for ln, cl in enumerate(clean_lines, 1):
            if OFSTREAM.search(cl):
                add(ln, "atomic-writes",
                    "raw std::ofstream — write through "
                    "support::writeFileAtomic so SIGKILL can never leave a "
                    "truncated file")

    # --- keyed-errors -------------------------------------------------------
    if relpath in KEYED_ERROR_FILES:
        for ln, cl in enumerate(clean_lines, 1):
            if RUNTIME_ERROR.search(cl):
                add(ln, "keyed-errors",
                    "bare std::runtime_error in a parser TU — throw the "
                    "keyed ConfigError/ProtocolError/JsonError instead")

    # --- determinism --------------------------------------------------------
    for ln, cl in enumerate(clean_lines, 1):
        if RANDOMNESS.search(cl):
            add(ln, "determinism",
                "rand()/time()/random_device — results must be "
                "bit-reproducible; use seeded PRNG state plumbed through "
                "the config")
    unordered_names = {m.group(1) for m in UNORDERED_DECL.finditer(clean)}
    if unordered_names:
        for ln, cl in enumerate(clean_lines, 1):
            m = RANGE_FOR.search(cl)
            if m and m.group(1) in unordered_names:
                add(ln, "determinism",
                    f"range-for over unordered container '{m.group(1)}' — "
                    "iteration order is hash-dependent; iterate a sorted "
                    "view or waive if provably order-independent")

    # --- isa-flags ----------------------------------------------------------
    if relpath not in ISA_ALLOWED_FILES:
        for ln, raw in enumerate(raw_lines, 1):
            if ISA_INCLUDE.search(raw):
                add(ln, "isa-flags",
                    "ISA intrinsics header outside the dispatched kernel "
                    "TUs (src/linalg/kernels_avx{2,512}.cpp)")


QUOTED_INCLUDE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def check_include_cycles(root: str, findings: list[Finding]) -> None:
    """Build the quoted-include graph over src/ headers and report each
    back-edge cycle the DFS finds (at least one per strongly connected
    component, so a cyclic graph always fails; rerun after breaking a cycle
    to surface any that shared an edge with it).
    Quoted includes are repo-root-relative, resolved
    against src/ (the project's sole include directory).  Includes of files
    that do not exist under src/ (generated headers, system headers spelled
    with quotes) are ignored — a missing node cannot participate in a
    cycle."""
    src = os.path.join(root, "src")
    graph: dict[str, list[tuple[str, int]]] = {}
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in sorted(filenames):
            if not fn.endswith((".hpp", ".h")):
                continue
            path = os.path.join(dirpath, fn)
            node = os.path.relpath(path, src).replace(os.sep, "/")
            edges = []
            with open(path, encoding="utf-8", errors="replace") as f:
                for ln, line in enumerate(f, 1):
                    m = QUOTED_INCLUDE.match(line)
                    if not m:
                        continue
                    target = m.group(1)
                    if os.path.isfile(os.path.join(src, target)):
                        edges.append((target, ln))
            graph[node] = edges

    # Iterative DFS with colors; on hitting a grey node, unwind the stack to
    # recover the cycle.  Deduplicate by the cycle's canonical rotation so
    # each loop is reported exactly once regardless of entry point.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    seen_cycles: set[tuple[str, ...]] = set()

    def dfs(start: str) -> None:
        stack: list[tuple[str, int]] = [(start, 0)]
        path: list[str] = [start]
        color[start] = GREY
        while stack:
            node, idx = stack[-1]
            edges = graph.get(node, [])
            if idx < len(edges):
                stack[-1] = (node, idx + 1)
                target, _ln = edges[idx]
                if color.get(target, BLACK) == GREY:
                    cycle = path[path.index(target):]
                    smallest = min(range(len(cycle)), key=lambda i: cycle[i])
                    canon = tuple(cycle[smallest:] + cycle[:smallest])
                    if canon not in seen_cycles:
                        seen_cycles.add(canon)
                        head, succ = canon[0], canon[1 % len(canon)]
                        line = next((l for t, l in graph[head] if t == succ),
                                    1)
                        findings.append(Finding(
                            os.path.join("src", *head.split("/")), line,
                            "include-cycles",
                            "header include cycle: "
                            + " -> ".join(canon + (canon[0],))))
                elif color.get(target, BLACK) == WHITE:
                    color[target] = GREY
                    stack.append((target, 0))
                    path.append(target)
            else:
                color[node] = BLACK
                stack.pop()
                path.pop()

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node)


def check_cmake(relpath: str, text: str, findings: list[Finding]) -> None:
    """Command-aware scan: an ISA flag is fine inside a compiler probe, a
    SLIM_AVX* option-variable definition, or any command that names the
    kernel TUs; anywhere else it would leak AVX code into TUs that run on
    every host."""
    raw_lines = text.splitlines()
    stripped = "\n".join(l.split("#", 1)[0] for l in raw_lines)
    for m in re.finditer(r"\b(\w+)\s*\(", stripped):
        name = m.group(1)
        depth, j = 0, m.end() - 1
        while j < len(stripped):
            if stripped[j] == "(":
                depth += 1
            elif stripped[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        body = stripped[m.end():j]
        flag = CMAKE_ISA_FLAG.search(body)
        if not flag:
            continue
        if "kernels_avx" in body or name == "check_cxx_compiler_flag":
            continue
        if name in ("set", "list") and re.search(r"\bSLIM_AVX\w*", body):
            continue
        ln = line_of(m.end() + flag.start(), stripped)
        if not waived(raw_lines, ln, "isa-flags"):
            findings.append(Finding(
                relpath, ln, "isa-flags",
                "ISA compile flag not scoped to the kernel TUs — attach it "
                "via set_source_files_properties on kernels_avx*.cpp only"))


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels up from this file)")
    ap.add_argument("--rules", action="store_true",
                    help="print the rule documentation and exit")
    args = ap.parse_args(argv)

    if args.rules:
        print(__doc__)
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        print(f"slim_lint: no src/ under '{root}'", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in sorted(filenames):
            if not fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8", errors="replace") as f:
                check_file(rel, f.read(), findings)
    check_include_cycles(root, findings)
    cmake = os.path.join(root, "CMakeLists.txt")
    if os.path.isfile(cmake):
        with open(cmake, encoding="utf-8", errors="replace") as f:
            check_cmake("CMakeLists.txt", f.read(), findings)

    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f)
    if findings:
        print(f"slim_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
