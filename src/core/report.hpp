#pragma once
// Human-readable result reports (what a CodeML user reads from the main
// output file): parameter estimates, LRT verdict, and the list of sites
// with high posterior probability of positive selection.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/analysis.hpp"
#include "core/batch.hpp"
#include "core/site_models.hpp"

namespace slim::core {

/// Write a one-hypothesis fit summary.
void writeFitReport(std::ostream& os, const FitResult& fit);

/// Write the full test report: both fits, the LRT, and sites whose
/// posterior probability of positive selection exceeds siteThreshold.
void writeTestReport(std::ostream& os, const PositiveSelectionTest& test,
                     EngineKind engine, double siteThreshold = 0.95);

/// Convenience: the full test report as a string.
std::string testReportString(const PositiveSelectionTest& test,
                             EngineKind engine, double siteThreshold = 0.95);

/// Write the M1a-vs-M2a site-model test report (df = 2 LRT, NEB sites).
void writeSiteModelReport(std::ostream& os, const SiteModelTest& test,
                          EngineKind engine, double siteThreshold = 0.95);

/// Per-gene verdict table plus the aggregate engine counters of a batch run
/// (tests and geneNames are parallel, in GeneHandle order).
void writeBatchSummary(std::ostream& os,
                       const std::vector<PositiveSelectionTest>& tests,
                       const std::vector<std::string>& geneNames,
                       EngineKind engine, const lik::EvalCounters& totals,
                       const BatchRunInfo& info);

// --- structured (JSON) reports, emitted next to the text report ---

/// One branch-site test as a JSON object (machine-readable counterpart of
/// writeTestReport; full double precision).
void writeJsonTestReport(std::ostream& os, const PositiveSelectionTest& test,
                         EngineKind engine, std::string_view geneName = {},
                         double siteThreshold = 0.95);

/// A whole batch: per-gene test objects plus aggregate counters and the
/// scheduler's run info.
void writeJsonBatchReport(std::ostream& os,
                          const std::vector<PositiveSelectionTest>& tests,
                          const std::vector<std::string>& geneNames,
                          EngineKind engine, const lik::EvalCounters& totals,
                          const BatchRunInfo& info,
                          double siteThreshold = 0.95);

}  // namespace slim::core
