#pragma once
// Human-readable result reports (what a CodeML user reads from the main
// output file): parameter estimates, LRT verdict, and the list of sites
// with high posterior probability of positive selection.

#include <iosfwd>
#include <string>

#include "core/analysis.hpp"
#include "core/site_models.hpp"

namespace slim::core {

/// Write a one-hypothesis fit summary.
void writeFitReport(std::ostream& os, const FitResult& fit);

/// Write the full test report: both fits, the LRT, and sites whose
/// posterior probability of positive selection exceeds siteThreshold.
void writeTestReport(std::ostream& os, const PositiveSelectionTest& test,
                     EngineKind engine, double siteThreshold = 0.95);

/// Convenience: the full test report as a string.
std::string testReportString(const PositiveSelectionTest& test,
                             EngineKind engine, double siteThreshold = 0.95);

/// Write the M1a-vs-M2a site-model test report (df = 2 LRT, NEB sites).
void writeSiteModelReport(std::ostream& os, const SiteModelTest& test,
                          EngineKind engine, double siteThreshold = 0.95);

}  // namespace slim::core
