#pragma once
// The shared substrate of the batch-first analysis API.
//
// Everything reusable across independent likelihood fits of one gene — the
// codon alignment, its compressed site patterns, the equilibrium
// frequencies, the (foreground-marked) tree and the persistent propagator
// cache — lives in an immutable AnalysisContext that the H0 fit, the H1 fit
// and the NEB site scan all share.  Contexts are handed around as
// shared_ptr<const ...>, so N tasks referencing one gene never rebuild its
// tables, and a batch of genes on one tree shares the tree object itself.
//
// The fit routine itself (fitHypothesis below) is a free function over a
// context: core::BranchSiteAnalysis (single gene) and core::BatchAnalysis
// (many genes, fanned across a TaskScheduler) are both thin drivers of the
// same code path, which is what keeps their results bit-identical.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "lik/branch_site_likelihood.hpp"
#include "lik/propagator_cache.hpp"
#include "model/branch_site.hpp"
#include "model/frequencies.hpp"
#include "model/model_spec.hpp"
#include "opt/bfgs.hpp"
#include "opt/checkpoint.hpp"
#include "seqio/alignment.hpp"
#include "stat/lrt.hpp"
#include "tree/tree.hpp"

namespace slim::core {

struct FitOptions {
  /// Equilibrium frequency estimator (Selectome/CodeML default: F3x4).
  model::CodonFrequencyModel frequencyModel = model::CodonFrequencyModel::F3x4;
  /// Optimizer controls; maxIterations is the paper's "iterations" column.
  opt::BfgsOptions bfgs{};
  /// Which scenario to fit: branch-site A (default), the branch model, or
  /// clade model C, over the tree's branch classes (model/model_spec.hpp).
  model::ModelSpec modelSpec{};
  /// Starting substitution parameters.  For the non-branch-site kinds the
  /// fields are reinterpreted: kappa/omega0/p0/p1 keep their roles where the
  /// model has them, omega0 seeds the background/shared class omega and
  /// omega2 the non-background class omegas.
  model::BranchSiteParams initialParams{};
  /// When false, every branch starts at initialBranchLength instead of the
  /// lengths carried by the input tree.
  bool useTreeBranchLengths = true;
  double initialBranchLength = 0.1;
  /// Non-zero: multiplicatively jitter the starting parameter values with
  /// this seed (CodeML's randomized initial values; the paper fixes the seed
  /// "to generate comparable and reproducible results").
  std::uint64_t startJitterSeed = 0;
  /// Likelihood-engine tuning layered on top of the engine preset.
  LikelihoodTuning tuning{};
};

struct FitResult {
  model::Hypothesis hypothesis = model::Hypothesis::H0;
  double lnL = 0;
  /// Which model family produced this fit (mirrors FitOptions::modelSpec).
  model::ModelKind modelKind = model::ModelKind::BranchSite;
  model::BranchSiteParams params;
  /// Per-branch-class omega MLEs: one per branch class for the branch
  /// model, the divergent omegas for clade model C (H0 fits carry the
  /// single shared value).  Empty for branch-site A, whose omegas live in
  /// `params` — keeping its reports and checkpoint records byte-identical.
  std::vector<double> classOmegas;
  std::vector<double> branchLengths;  ///< Post-order branch order.
  int iterations = 0;
  /// Objective evaluations spent on values (start point + line searches).
  long functionEvaluations = 0;
  /// Objective evaluations spent inside gradients (FD probes); under
  /// GradientMode::Analytic the branch block costs none of these.
  long gradientEvaluations = 0;
  /// How the fit's gradients were computed.
  GradientMode gradientMode = GradientMode::FiniteDiff;
  /// The SIMD kernel level the evaluator resolved `simd =` to.
  linalg::SimdLevel simd = linalg::SimdLevel::Scalar;
  /// The compute backend the evaluator resolved `backend =` to.
  backend::BackendKind backend = backend::BackendKind::Reference;
  /// The propagator builder the fit ran with (`expm =` ctl key).
  backend::ExpmAlgorithm expm = backend::ExpmAlgorithm::Eigen;
  bool converged = false;
  /// True when a cancel predicate (deadline, SIGTERM, daemon cancel) stopped
  /// the optimizer; lnL/params hold the last accepted point.
  bool cancelled = false;
  /// The optimizer's stop reason ("gradient tolerance reached",
  /// "cancelled", ...).
  std::string message;
  double seconds = 0;
  lik::EvalCounters counters;
  /// Resume provenance: the checkpoint file this fit continued from (empty
  /// for an uninterrupted fit) and how many optimizer iterations were
  /// restored from it rather than recomputed here.  Recorded in the text
  /// and JSON reports.
  std::string resumedFrom;
  int iterationsReplayed = 0;
};

/// Output of the full H0-vs-H1 test.
struct PositiveSelectionTest {
  FitResult h0;
  FitResult h1;
  stat::LrtResult lrt;
  /// NEB posteriors at the H1 maximum (meaningful when the LRT rejects H0).
  lik::SiteClassPosteriors posteriors;
  double totalSeconds = 0;
  /// Aggregate engine counters over *all* evaluations of the test — both
  /// fits plus the site scan (whose work per-fit counters never covered).
  lik::EvalCounters counters;
};

/// Immutable per-gene analysis state, shareable across fit tasks.  Create
/// once, then fan any number of fitHypothesis / siteScanAtFit calls over it;
/// const methods are safe to call concurrently (the propagator-cache
/// directory is internally mutex-guarded, and each leased shard is exclusive
/// to one task — see propagator_cache.hpp).
class AnalysisContext {
 public:
  /// The tree's #k marks are its branch classes; branch-heterogeneous
  /// models need at least one marked branch.  Leaf labels must match the
  /// alignment sequence names.  Copies both inputs.
  static std::shared_ptr<const AnalysisContext> create(
      const seqio::CodonAlignment& alignment, const tree::Tree& tree,
      EngineKind engine, FitOptions options = {});

  /// Same, sharing an already-parsed tree (a multi-gene batch on one
  /// species tree stores the tree once, not once per gene).
  static std::shared_ptr<const AnalysisContext> create(
      seqio::CodonAlignment alignment, std::shared_ptr<const tree::Tree> tree,
      EngineKind engine, FitOptions options = {});

  const seqio::CodonAlignment& alignment() const noexcept { return alignment_; }
  const seqio::SitePatterns& patterns() const noexcept { return patterns_; }
  const std::vector<double>& pi() const noexcept { return pi_; }
  const tree::Tree& tree() const noexcept { return *tree_; }
  const std::shared_ptr<const tree::Tree>& treePtr() const noexcept {
    return tree_;
  }
  EngineKind engine() const noexcept { return engine_; }
  const FitOptions& options() const noexcept { return options_; }

  /// The engine preset with this context's tuning overrides applied.
  lik::LikelihoodOptions likelihoodOptions() const noexcept {
    return resolvedEngineOptions(engine_, options_.tuning);
  }

  /// Canonical shard slot of a hypothesis' fit task; the site scan at the
  /// H1 maximum reuses slot(H1), which is exactly where its propagators are
  /// already warm.
  static constexpr int shardSlot(model::Hypothesis h) noexcept {
    return h == model::Hypothesis::H1 ? 1 : 0;
  }

  /// Lease the persistent propagator shard for one task slot (lazily
  /// created; mutex-guarded directory).  Null when the resolved engine
  /// options have propagator caching off — the evaluator then runs uncached
  /// exactly as before.  A slot must not be used by two tasks concurrently.
  std::shared_ptr<lik::PropagatorCacheShard> cacheShard(int slot) const {
    if (!likelihoodOptions().cachePropagators) return nullptr;
    return cache_->shard(slot);
  }

  /// Total propagators currently cached across all shards (diagnostics).
  std::size_t cachedPropagators() const { return cache_->totalEntries(); }

  /// Cheap clone carrying different fit options: shares the parsed tree and
  /// — when `sharePropagatorCache` — the warm propagator-cache directory,
  /// while alignment/patterns/pi are copied as-is (no re-parsing, no
  /// recompression).  This is how the serve-mode context cache reuses one
  /// gene's hot state across jobs whose optimizer settings differ.  The new
  /// options must keep the frequency model (pi would be stale otherwise).
  /// Callers sharing the cache must not run two fits on the same shard slot
  /// concurrently — lease a private clone (sharePropagatorCache = false)
  /// for overlapping jobs.
  std::shared_ptr<const AnalysisContext> withOptions(
      FitOptions options, bool sharePropagatorCache = true) const;

  AnalysisContext(seqio::CodonAlignment alignment,
                  std::shared_ptr<const tree::Tree> tree, EngineKind engine,
                  FitOptions options);  // prefer create()

 private:
  seqio::CodonAlignment alignment_;
  seqio::SitePatterns patterns_;
  std::vector<double> pi_;
  std::shared_ptr<const tree::Tree> tree_;
  EngineKind engine_;
  FitOptions options_;
  std::shared_ptr<lik::SharedPropagatorCache> cache_;
};

/// Checkpoint hooks of one fit task, handed to fitHypothesis by the layer
/// that owns the checkpoint file (core::CheckpointManager via BatchAnalysis
/// or the config runners).  All members optional.
struct FitCheckpointHooks {
  /// Receives a resumable optimizer snapshot after every iteration.
  opt::BfgsCheckpointSink sink;
  /// Optimizer state to continue from instead of starting fresh.
  std::optional<opt::BfgsState> resumeFrom;
  /// Provenance recorded in FitResult::resumedFrom when resumeFrom is set
  /// (the checkpoint file path).
  std::string resumedFromPath;
};

/// Maximize ln L under one hypothesis over the context's shared data.
/// `likOptions` is the fully resolved engine configuration for this task —
/// a scheduler running task-level fan-out passes numThreads = 1 so the
/// nested pattern sweep stays serial.  `fitOptions` must agree with the
/// context's frequency model (the context's pi is used).  `shard` optionally
/// carries warm propagator state across fits (null: per-fit private cache).
/// `checkpoint`, when non-null, snapshots the optimizer trajectory and/or
/// resumes a recorded one (bit-identical to the uninterrupted fit).
FitResult fitHypothesis(const AnalysisContext& context,
                        model::Hypothesis hypothesis,
                        const FitOptions& fitOptions,
                        const lik::LikelihoodOptions& likOptions,
                        std::shared_ptr<lik::PropagatorCacheShard> shard = {},
                        const FitCheckpointHooks* checkpoint = nullptr);

/// NEB site scan at an H1 maximum.  `scanCounters` receives the engine
/// counters of this evaluation (work that per-fit counters do not cover).
/// Dispatches on the fit's model kind (branch-site A / clade model C);
/// the branch model has no site mixture and must not be scanned.
lik::SiteClassPosteriors siteScanAtFit(
    const AnalysisContext& context, const FitResult& h1Fit,
    const lik::LikelihoodOptions& likOptions,
    std::shared_ptr<lik::PropagatorCacheShard> shard,
    lik::EvalCounters& scanCounters);

/// Assemble the full positive-selection test from its three evaluations:
/// LRT plumbing (with the model's degrees of freedom), deterministic
/// counter merge (h0 + h1 + scan), wall time.
PositiveSelectionTest makePositiveSelectionTest(
    FitResult h0, FitResult h1, lik::SiteClassPosteriors posteriors,
    const lik::EvalCounters& scanCounters, double df = 1.0);

}  // namespace slim::core
