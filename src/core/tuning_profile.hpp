#pragma once
// Per-host autotuning profiles (the xblas build_resource_model / predict
// split, PAPERS.md): `slimcodeml-tune` microbenchmarks blockSize x
// ParallelPolicy x SIMD level x thread count on the host and persists the
// winning configuration here; `tuning = auto|<path>` in a control file loads
// it at run time.
//
// Discipline mirrors core::Checkpoint: a versioned, line-oriented text
// format with a strict parser (unknown field, truncation, bad magic or a
// version bump throw keyed ConfigError, never UB), atomic writes
// (temp+fsync+rename via support::writeFileAtomic), and a host binding — a
// profile measured on one machine must not silently steer another: load()
// refuses a profile whose host signature does not match this machine.
//
// Profiles fill only tuning fields the user left at their defaults
// (numThreads/blockSize sentinels, policy/simd Auto), so explicit ctl keys
// always win over the profile.

#include <string>
#include <string_view>

#include "core/engine.hpp"

namespace slim::core {

struct TuningProfile {
  /// v2 added the `backend` field (compute-backend subsystem).  parse()
  /// still reads v1 files — they simply leave `backend` at its Auto
  /// sentinel — so profiles recorded by older tuners keep loading.
  static constexpr int kVersion = 2;

  // --- host binding (written by the tuner, checked by load()) ---
  std::string host;          ///< hostname the profile was measured on
  std::string simdDetected;  ///< best SIMD level available on that host
  int hardwareThreads = 0;   ///< its hardware thread count

  // --- tuned values (sentinels mean "leave the preset alone") ---
  int numThreads = -1;                           ///< -1: untuned
  int blockSize = -1;                            ///< -1: untuned
  ParallelPolicy policy = ParallelPolicy::Auto;  ///< Auto: untuned
  linalg::SimdMode simd = linalg::SimdMode::Auto;  ///< Auto: untuned
  /// Auto: untuned (v1 profiles always load as Auto).
  backend::BackendMode backend = backend::BackendMode::Auto;

  /// Seconds per likelihood evaluation of the winning configuration
  /// (informational; lets a re-tune report the improvement).
  double secondsPerEval = 0;

  std::string serialize() const;
  /// Inverse of serialize.  Malformed or truncated text, an unknown format
  /// version or an unknown field throws ConfigError naming `origin`, the
  /// offending line and the offending key.  Does NOT check the host
  /// binding — that is load()'s job (tests construct foreign profiles).
  static TuningProfile parse(std::string_view text, const std::string& origin);

  /// parse() plus the host check: a profile recorded on a different host,
  /// or recorded with a SIMD level this host cannot run, is refused with a
  /// keyed ConfigError (a stale NFS-shared profile must fail loudly, not
  /// silently mis-tune).
  static TuningProfile load(const std::string& path);

  void save(const std::string& path) const;  ///< Atomic (temp+fsync+rename).

  /// Copy the tuned values into `tuning`, touching only fields still at
  /// their defaults (numThreads/blockSize < 0, policy/simd == Auto): an
  /// explicit ctl key beats the profile.
  void applyTo(LikelihoodTuning& tuning) const;
};

/// Where `tuning = auto` looks for the profile: $SLIMCODEML_TUNING when
/// set, else "slimcodeml.tuning" in the current directory.
std::string defaultTuningProfilePath();

}  // namespace slim::core
