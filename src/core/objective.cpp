#include "core/objective.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/require.hpp"

namespace slim::core {

namespace {

/// The infeasibility penalty: large, finite, and identical on every path so
/// serial and fanned probe evaluations agree bit for bit.
constexpr double kInfeasible = 1e100;

bool sameLengthEqual(const std::vector<double>& a, std::span<const double> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace

LikelihoodObjective::LikelihoodObjective(
    lik::BranchSiteLikelihood& evaluator, const seqio::CodonAlignment& alignment,
    const seqio::SitePatterns& patterns, const std::vector<double>& pi,
    const tree::Tree& tree, model::Hypothesis hypothesis,
    lik::LikelihoodOptions poolOptions, GradientMode mode,
    ParallelPolicy policy, int fanWorkers, Layout layout, PreparePoint prepare)
    : main_(evaluator),
      alignment_(alignment),
      patterns_(patterns),
      pi_(pi),
      tree_(tree),
      hypothesis_(hypothesis),
      poolOptions_(poolOptions),
      mode_(mode),
      policy_(policy),
      fanWorkers_(fanWorkers),
      layout_(layout),
      prepare_(std::move(prepare)) {
  SLIM_REQUIRE(prepare_ != nullptr, "LikelihoodObjective: null prepare hook");
  SLIM_REQUIRE(layout_.branchOffset >= 0 &&
                   layout_.numBranches == main_.numBranches(),
               "LikelihoodObjective: layout does not match the evaluator");
  // Probe evaluators must be single-threaded: the parallelism lives in the
  // coordinate fan-out, exactly as task-level fit fan-out forces
  // single-threaded pattern sweeps.
  poolOptions_.numThreads = 1;
  // The scheduler exists whenever fanning is possible at all (its worker
  // pool is still created lazily), so wouldFan can consult the policy.
  if (mode_ != GradientMode::FiniteDiff && fanWorkers_ > 1)
    scheduler_ = std::make_unique<TaskScheduler>(fanWorkers_);
}

bool LikelihoodObjective::wouldFan(int numPoints) const {
  return scheduler_ != nullptr &&
         scheduler_->useTaskLevel(std::min(fanWorkers_, numPoints), policy_);
}

double LikelihoodObjective::evalOn(lik::BranchSiteLikelihood& evaluator,
                                   std::span<const double> x) {
  // Extreme line-search trial points can underflow a transform to its
  // boundary (e.g. kappa == 0) or overflow a kernel; both count as
  // infeasible and the search backtracks.
  try {
    const model::MixtureSpec spec = prepare_(evaluator, x);
    const double lnL = evaluator.logLikelihood(spec);
    return std::isfinite(lnL) ? -lnL : kInfeasible;
  } catch (const std::invalid_argument&) {
    return kInfeasible;
  } catch (const std::runtime_error&) {
    return kInfeasible;  // eigensolver non-convergence on degenerate input
  }
}

double LikelihoodObjective::value(std::span<const double> x) {
  const double f = evalOn(main_, x);
  lastX_.assign(x.begin(), x.end());
  lastValid_ = f != kInfeasible;
  return f;
}

void LikelihoodObjective::ensurePool(int evaluators) {
  while (static_cast<int>(pool_.size()) < evaluators) {
    // Null shard: with caching on, each probe evaluator creates its own
    // private shard at construction — exclusive to it for the whole fit
    // (the shard-per-task contract) yet warm across every gradient call.
    pool_.push_back(std::make_unique<lik::BranchSiteLikelihood>(
        alignment_, patterns_, pi_, tree_, hypothesis_, poolOptions_));
  }
}

std::vector<double> LikelihoodObjective::evaluateMany(
    const std::vector<std::vector<double>>& points) {
  const int numPoints = static_cast<int>(points.size());
  std::vector<double> values(points.size());

  // Fan only when the mode asks for it and the policy would also fan this
  // many independent tasks; otherwise run the sequential loop on the main
  // evaluator (which may itself be pattern-parallel).
  if (!wouldFan(numPoints)) {
    for (int i = 0; i < numPoints; ++i) values[i] = evalOn(main_, points[i]);
    lastValid_ = false;  // main_'s state is now at the last probe point
    return values;
  }

  const int evaluators = std::min(fanWorkers_, numPoints);
  ensurePool(evaluators);
  // Static index partition: point i always runs on evaluator i mod E, so the
  // probe history each evaluator (and its cache shard) sees is a function of
  // the fit alone, never of thread scheduling.
  scheduler_->run(evaluators, ParallelPolicy::TaskLevel, [&](int e) {
    for (int i = e; i < numPoints; i += evaluators)
      values[i] = evalOn(*pool_[e], points[i]);
  });
  return values;
}

opt::GradientResult LikelihoodObjective::valueAndGradient(
    std::span<const double> x, std::span<double> grad,
    const opt::GradientOptions& options) {
  if (mode_ != GradientMode::Analytic || layout_.numBranches == 0)
    return ObjectiveFunction::valueAndGradient(x, grad, options);

  // The hybrid writes exactly two blocks — FD for [0, branchOffset), the
  // analytic chain rule for the branch tail — so they must tile the whole
  // vector or a coordinate would silently keep its stale gradient entry.
  SLIM_REQUIRE(layout_.branchOffset + layout_.numBranches ==
                   static_cast<int>(x.size()),
               "LikelihoodObjective: branch block must end the vector");

  opt::GradientResult result;
  result.gradientSweeps = 1;
  const bool reuse = lastValid_ && sameLengthEqual(lastX_, x);
  double lnL;
  std::vector<double> branchGrad(layout_.numBranches);
  try {
    if (reuse) {
      lnL = main_.gradientBranchesAtLastEvaluation(branchGrad);
    } else {
      const model::MixtureSpec spec = prepare_(main_, x);
      lnL = main_.logLikelihoodGradientBranches(spec, branchGrad);
      ++result.functionEvaluations;
    }
  } catch (const std::invalid_argument&) {
    lnL = -std::numeric_limits<double>::infinity();
  } catch (const std::runtime_error&) {
    lnL = -std::numeric_limits<double>::infinity();
  }
  if (!std::isfinite(lnL)) {
    // Infeasible at a gradient point (the optimizer normally never asks
    // here): degrade to the plain FD path rather than return garbage.
    lastValid_ = false;
    return ObjectiveFunction::valueAndGradient(x, grad, options);
  }
  lastX_.assign(x.begin(), x.end());
  lastValid_ = true;

  const double f0 = std::isnan(options.knownValue) ? -lnL : options.knownValue;
  result.value = f0;
  result.analyticCoordinates = layout_.numBranches;

  // Branch block: d(-lnL)/dx_i = -(d lnL/d t) * (d t/d x_i).
  for (int k = 0; k < layout_.numBranches; ++k) {
    const int i = layout_.branchOffset + k;
    grad[i] = -branchGrad[k] * layout_.branchTransform.derivative(x[i]);
  }

  // Leading substitution/mixture coordinates: the ordinary FD path over
  // this objective's evaluateMany (fanned when the policy allows), so the
  // hybrid's FD block and a pure-fd gradient share one step rule.
  if (layout_.branchOffset > 0)
    opt::fdGradient(*this, x, f0, options.relStep, options.central,
                    grad.first(static_cast<std::size_t>(layout_.branchOffset)),
                    result.functionEvaluations);
  return result;
}

lik::EvalCounters LikelihoodObjective::counters() const {
  lik::EvalCounters total = main_.counters();
  for (const auto& e : pool_) total += e->counters();
  return total;
}

}  // namespace slim::core
