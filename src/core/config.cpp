#include "core/config.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/scan.hpp"
#include "core/tuning_profile.hpp"
#include "core/report.hpp"
#include "tree/branch_classes.hpp"
#include "opt/cancel.hpp"
#include "support/atomic_file.hpp"
#include "support/require.hpp"

namespace slim::core {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

[[noreturn]] void badLine(int lineNo, const std::string& what) {
  throw ConfigError("control file line " + std::to_string(lineNo) + ": " +
                    what);
}

// Numeric values go through std::stod, whose failures (invalid text,
// overflow) must surface as a ConfigError naming the key and line, never as
// a bare std::invalid_argument / std::out_of_range without location.
double parseDouble(const std::string& key, const std::string& v, int lineNo) {
  double x = 0.0;
  std::size_t used = 0;
  bool outOfRange = false, notANumber = false;
  try {
    x = std::stod(v, &used);
  } catch (const std::out_of_range&) {
    outOfRange = true;
  } catch (const std::invalid_argument&) {
    notANumber = true;
  }
  if (outOfRange)
    badLine(lineNo, "value for '" + key + "' is out of double range: '" + v +
                        "'");
  if (notANumber || !trim(v.substr(used)).empty())
    badLine(lineNo, "value for '" + key + "' is not a number: '" + v + "'");
  if (!std::isfinite(x))
    badLine(lineNo, "value for '" + key + "' is not finite: '" + v + "'");
  return x;
}

int parseInt(const std::string& key, const std::string& v, int lineNo) {
  const double x = parseDouble(key, v, lineNo);
  // Round-trip through int and compare as doubles: rejects fractions and
  // values beyond int range (where the raw cast would be undefined).
  if (x < static_cast<double>(std::numeric_limits<int>::min()) ||
      x > static_cast<double>(std::numeric_limits<int>::max()))
    badLine(lineNo, "value for '" + key + "' is out of integer range: '" + v +
                        "'");
  const int i = static_cast<int>(x);
  if (static_cast<double>(i) != x)
    badLine(lineNo, "value for '" + key + "' must be an integer, got '" + v +
                        "'");
  return i;
}

}  // namespace

Config Config::parse(std::istream& in) {
  Config cfg;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    // Strip comments ('*' like codeml, plus '#').
    if (const auto pos = line.find_first_of("*#"); pos != std::string::npos)
      line.erase(pos);
    if (trim(line).empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) badLine(lineNo, "expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty())
      badLine(lineNo, "empty key or value");

    if (key == "seqfile") {
      // Repeated entries accumulate into a multi-gene batch.
      cfg.seqfiles.push_back(value);
      cfg.seqfile = cfg.seqfiles.front();
    } else if (key == "treefile") {
      cfg.treefile = value;
    } else if (key == "outfile") {
      cfg.outfile = value;
    } else if (key == "engine") {
      if (value == "slim")
        cfg.engine = EngineKind::Slim;
      else if (value == "slim-parallel")
        cfg.engine = EngineKind::SlimParallel;
      else if (value == "codeml")
        cfg.engine = EngineKind::CodemlBaseline;
      else
        badLine(lineNo, "engine must be 'slim', 'slim-parallel' or 'codeml'");
    } else if (key == "threads") {
      cfg.fit.tuning.numThreads = parseInt(key, value, lineNo);
      if (cfg.fit.tuning.numThreads < 0)
        badLine(lineNo, "threads must be >= 0");
    } else if (key == "blockSize") {
      cfg.fit.tuning.blockSize = parseInt(key, value, lineNo);
      if (cfg.fit.tuning.blockSize < 0)
        badLine(lineNo, "blockSize must be >= 0");
    } else if (key == "cachePropagators") {
      cfg.fit.tuning.cachePropagators =
          parseInt(key, value, lineNo) != 0 ? 1 : 0;
    } else if (key == "simd") {
      if (!linalg::parseSimdMode(value, cfg.fit.tuning.simd))
        badLine(lineNo,
                "simd must be 'auto', 'scalar', 'avx2' or 'avx512'");
    } else if (key == "backend") {
      if (!backend::parseBackendMode(value, cfg.fit.tuning.backend))
        badLine(lineNo,
                "backend must be 'auto', 'reference', 'simd' or 'blas'");
    } else if (key == "expm") {
      if (!backend::parseExpmAlgorithm(value, cfg.fit.tuning.expm))
        badLine(lineNo, "expm must be 'eigen' or 'adaptive'");
    } else if (key == "parallel") {
      if (value == "auto")
        cfg.fit.tuning.policy = ParallelPolicy::Auto;
      else if (value == "task")
        cfg.fit.tuning.policy = ParallelPolicy::TaskLevel;
      else if (value == "pattern")
        cfg.fit.tuning.policy = ParallelPolicy::PatternLevel;
      else
        badLine(lineNo, "parallel must be 'auto', 'task' or 'pattern'");
    } else if (key == "gradient") {
      if (value == "fd")
        cfg.fit.tuning.gradient = GradientMode::FiniteDiff;
      else if (value == "fd-parallel")
        cfg.fit.tuning.gradient = GradientMode::ParallelFiniteDiff;
      else if (value == "analytic")
        cfg.fit.tuning.gradient = GradientMode::Analytic;
      else
        badLine(lineNo, "gradient must be 'fd', 'fd-parallel' or 'analytic'");
    } else if (key == "model") {
      if (value == "branch-site")
        cfg.analysis = AnalysisKind::BranchSite;
      else if (value == "site")
        cfg.analysis = AnalysisKind::Site;
      else if (value == "branch")
        cfg.analysis = AnalysisKind::Branch;
      else if (value == "clade-c")
        cfg.analysis = AnalysisKind::CladeC;
      else
        badLine(lineNo,
                "model must be 'branch-site', 'branch', 'clade-c' or 'site'");
    } else if (key == "foreground") {
      // Note '#' opens a comment, so branch sets are spelled with labels or
      // node indices, never '#k' marks (see tree/branch_classes.hpp).
      cfg.foreground = value;
    } else if (key == "CodonFreq") {
      const int f = parseInt(key, value, lineNo);
      switch (f) {
        case 0: cfg.fit.frequencyModel = model::CodonFrequencyModel::Equal; break;
        case 1: cfg.fit.frequencyModel = model::CodonFrequencyModel::F1x4; break;
        case 2: cfg.fit.frequencyModel = model::CodonFrequencyModel::F3x4; break;
        case 3: cfg.fit.frequencyModel = model::CodonFrequencyModel::F61; break;
        default: badLine(lineNo, "CodonFreq must be 0..3");
      }
    } else if (key == "maxIterations") {
      cfg.fit.bfgs.maxIterations = parseInt(key, value, lineNo);
      if (cfg.fit.bfgs.maxIterations < 0) badLine(lineNo, "negative cap");
    } else if (key == "kappa") {
      cfg.fit.initialParams.kappa = parseDouble(key, value, lineNo);
    } else if (key == "omega0") {
      cfg.fit.initialParams.omega0 = parseDouble(key, value, lineNo);
    } else if (key == "omega2") {
      cfg.fit.initialParams.omega2 = parseDouble(key, value, lineNo);
    } else if (key == "p0") {
      cfg.fit.initialParams.p0 = parseDouble(key, value, lineNo);
    } else if (key == "p1") {
      cfg.fit.initialParams.p1 = parseDouble(key, value, lineNo);
    } else if (key == "cleandata") {
      cfg.stopCodonsAsMissing = parseInt(key, value, lineNo) != 0;
    } else if (key == "tuning") {
      cfg.tuningPath = value;
    } else if (key == "checkpoint") {
      cfg.checkpointPath = value;
    } else if (key == "checkpointEverySec") {
      cfg.checkpointEverySec = parseDouble(key, value, lineNo);
      if (cfg.checkpointEverySec < 0)
        badLine(lineNo, "checkpointEverySec must be >= 0");
    } else if (key == "timeoutSec") {
      cfg.timeoutSec = parseDouble(key, value, lineNo);
      if (cfg.timeoutSec < 0) badLine(lineNo, "timeoutSec must be >= 0");
    } else if (key == "seed") {
      const double s = parseDouble(key, value, lineNo);
      // Integral and strictly below 2^64, so the cast is defined behaviour.
      if (s < 0 || s >= 18446744073709551616.0 || std::floor(s) != s)
        badLine(lineNo,
                "value for 'seed' must be a non-negative integer below "
                "2^64, got '" + value + "'");
      cfg.fit.startJitterSeed = static_cast<std::uint64_t>(s);
    } else {
      badLine(lineNo, "unknown key '" + key + "'");
    }
  }
  // Keyed like every other parse failure: hostile or truncated ctl text must
  // surface as ConfigError (the fuzz harness and the daemon's submit path
  // both key on it), not a bare precondition failure.
  if (cfg.seqfile.empty())
    throw ConfigError("control file: seqfile is required");
  if (cfg.treefile.empty())
    throw ConfigError("control file: treefile is required");
  return cfg;
}

Config Config::parseString(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse(in);
}

Config Config::parseFile(const std::string& path) {
  std::ifstream in(path);
  SLIM_REQUIRE(in.good(), "cannot open control file '" + path + "'");
  return parse(in);
}

seqio::CodonAlignment loadAlignmentFile(const std::string& path,
                                        bool stopCodonsAsMissing) {
  std::ifstream seqIn(path);
  SLIM_REQUIRE(seqIn.good(), "cannot open sequence file '" + path + "'");
  // FASTA if the first non-blank character is '>', else sequential PHYLIP.
  char first = 0;
  seqIn >> std::ws;
  seqIn.get(first);
  seqIn.unget();
  const auto aln = (first == '>') ? seqio::Alignment::readFasta(seqIn)
                                  : seqio::Alignment::readPhylip(seqIn);
  return seqio::encodeCodons(aln, bio::GeneticCode::universal(),
                             stopCodonsAsMissing);
}

tree::Tree loadTreeFile(const std::string& path) {
  std::ifstream treeIn(path);
  SLIM_REQUIRE(treeIn.good(), "cannot open tree file '" + path + "'");
  std::stringstream treeText;
  treeText << treeIn.rdbuf();
  return tree::Tree::parseNewick(treeText.str());
}

namespace {

seqio::CodonAlignment loadAlignment(const std::string& path,
                                    bool stopCodonsAsMissing) {
  return loadAlignmentFile(path, stopCodonsAsMissing);
}

tree::Tree loadTree(const std::string& path) { return loadTreeFile(path); }

struct LoadedInputs {
  seqio::CodonAlignment codons;
  tree::Tree tree;
};

LoadedInputs loadInputs(const Config& config) {
  return {loadAlignment(config.seqfile, config.stopCodonsAsMissing),
          loadTree(config.treefile)};
}

/// "dir/gene-007.fasta" -> "gene-007" (the per-gene report label).
std::string fileStem(const std::string& path) {
  const auto slash = path.find_last_of("/\\");
  const auto base = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  return dot == std::string::npos || dot == 0 ? base : base.substr(0, dot);
}

template <class WriteReport>
void emitReport(const Config& config, const WriteReport& write) {
  if (config.outfile.empty() || config.outfile == "-") {
    write(std::cout);
  } else {
    // Reports are rendered in memory and published with temp+fsync+rename:
    // a process killed mid-report must never leave a truncated, unparseable
    // file where a pipeline globbing for results would read it.
    std::ostringstream buffer;
    write(buffer);
    support::writeFileAtomic(config.outfile, buffer.str());
  }
}

/// `timeoutSec =`: arm a wall-clock deadline (measured from here, i.e. the
/// start of the run) on top of any cancel source the caller already
/// installed — the CLI's SIGTERM flag, a daemon job's cancel token.
Config applyRunDeadline(Config config) {
  if (config.timeoutSec > 0)
    config.fit.bfgs.cancel = opt::combineCancel(
        std::move(config.fit.bfgs.cancel), opt::deadlineAfter(config.timeoutSec));
  return config;
}

/// The checkpoint coordinator for this run, or null when the config does
/// not ask for one.
std::unique_ptr<CheckpointManager> openCheckpoint(const Config& config) {
  if (config.checkpointPath.empty()) {
    SLIM_REQUIRE(!config.resume,
                 "--resume requires a 'checkpoint =' path in the control "
                 "file");
    return nullptr;
  }
  return CheckpointManager::open(config.checkpointPath,
                                 config.checkpointEverySec,
                                 checkpointConfigHash(config), config.resume);
}

}  // namespace

model::ModelSpec modelSpecFor(AnalysisKind kind, int numBranchClasses) {
  model::ModelSpec spec;
  switch (kind) {
    case AnalysisKind::BranchSite:
      spec = model::ModelSpec::branchSite();
      break;
    case AnalysisKind::Branch:
      spec = model::ModelSpec::branch(numBranchClasses);
      break;
    case AnalysisKind::CladeC:
      spec = model::ModelSpec::cladeC(numBranchClasses);
      break;
    default:
      SLIM_REQUIRE(false, "modelSpecFor: 'model = site' has no ModelSpec");
  }
  spec.validate();
  return spec;
}

Config resolveTuningProfile(Config config) {
  if (config.tuningPath.empty()) return config;
  std::string path = config.tuningPath;
  if (config.tuningPath == "auto") {
    path = defaultTuningProfilePath();
    // Auto is best-effort: an untuned host runs on the engine defaults.  An
    // *existing* profile still goes through the strict load — a corrupt or
    // foreign-host file is an error, never silently ignored.
    if (!std::filesystem::exists(path)) return config;
  }
  TuningProfile::load(path).applyTo(config.fit.tuning);
  return config;
}

std::vector<std::string> scanBatchDirectory(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir))
    throw ConfigError("--batch: '" + dir + "' is not a directory");
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    if (ext == ".fasta" || ext == ".fa" || ext == ".fas" || ext == ".phy" ||
        ext == ".phylip")
      files.push_back(entry.path().string());
  }
  if (files.empty())
    throw ConfigError("--batch: no alignments (*.fasta, *.fa, *.fas, *.phy, "
                      "*.phylip) in '" + dir + "'");
  // directory_iterator yields readdir order — host- and filesystem-
  // dependent.  Gene order must be stable: it fixes gene indices, derived
  // per-gene seeds, checkpoint task keys and report ordering.
  std::sort(files.begin(), files.end());
  return files;
}

PositiveSelectionTest runFromConfig(const Config& rawConfig) {
  Config config = applyRunDeadline(resolveTuningProfile(rawConfig));
  SLIM_REQUIRE(config.analysis != AnalysisKind::Site,
               "runFromConfig: control file requests 'model = site'");
  SLIM_REQUIRE(config.foreground.empty(),
               "runFromConfig: 'foreground =' scans run through the batch "
               "workflow (runBatchFromConfig)");
  const auto in = loadInputs(config);
  config.fit.modelSpec =
      modelSpecFor(config.analysis, tree::numBranchClasses(in.tree));
  PositiveSelectionTest test;
  if (const auto checkpoint = openCheckpoint(config)) {
    // Checkpointed single-gene run: drive the same fit path through a
    // one-gene batch, which carries the per-task checkpoint plumbing.
    // Batch and sequential results are bit-identical (tests/batch_test).
    BatchOptions options;
    options.fit = config.fit;
    options.checkpoint = checkpoint.get();
    BatchAnalysis batch(config.engine, options);
    batch.addGene(in.codons, std::make_shared<const tree::Tree>(in.tree),
                  config.fit, fileStem(config.seqfile));
    test = std::move(batch.runAll().front());
  } else {
    BranchSiteAnalysis analysis(in.codons, in.tree, config.engine, config.fit);
    test = analysis.run();
  }
  emitReport(config,
             [&](std::ostream& os) { writeTestReport(os, test, config.engine); });
  return test;
}

BatchRunOutput runBatchFromConfig(const Config& rawConfig) {
  Config config = applyRunDeadline(resolveTuningProfile(rawConfig));
  SLIM_REQUIRE(config.analysis != AnalysisKind::Site,
               "runBatchFromConfig: control file requests 'model = site'");
  SLIM_REQUIRE(!config.seqfiles.empty(), "runBatchFromConfig: no seqfiles");

  const auto tree =
      std::make_shared<const tree::Tree>(loadTree(config.treefile));

  const auto checkpoint = openCheckpoint(config);
  BatchOptions options;
  options.fit = config.fit;
  options.checkpoint = checkpoint.get();

  BatchRunOutput out;
  if (!config.foreground.empty()) {
    // Scan: one task per (gene x branch set), each set foreground-marked on
    // an otherwise unmarked copy of the tree — always two branch classes.
    config.fit.modelSpec = modelSpecFor(config.analysis, 2);
    options.fit.modelSpec = config.fit.modelSpec;
    ScanAnalysis scan(config.engine, *tree, config.foreground, options);
    for (const auto& path : config.seqfiles)
      scan.addGene(loadAlignment(path, config.stopCodonsAsMissing), config.fit,
                   fileStem(path));
    out.geneNames = scan.taskNames();
    out.tests = scan.runAll();
    out.totals = scan.totals();
    out.info = scan.lastRun();
  } else {
    config.fit.modelSpec =
        modelSpecFor(config.analysis, tree::numBranchClasses(*tree));
    options.fit.modelSpec = config.fit.modelSpec;
    BatchAnalysis batch(config.engine, options);
    for (const auto& path : config.seqfiles) {
      out.geneNames.push_back(fileStem(path));
      batch.addGene(loadAlignment(path, config.stopCodonsAsMissing), tree,
                    config.fit, out.geneNames.back());
    }
    out.tests = batch.runAll();
    out.totals = batch.totals();
    out.info = batch.lastRun();
  }

  emitReport(config, [&](std::ostream& os) {
    for (std::size_t g = 0; g < out.tests.size(); ++g) {
      os << "=== gene " << out.geneNames[g] << " ===\n";
      writeTestReport(os, out.tests[g], config.engine);
      os << '\n';
    }
    writeBatchSummary(os, out.tests, out.geneNames, config.engine, out.totals,
                      out.info);
  });
  return out;
}

SiteModelTest runSiteModelFromConfig(const Config& rawConfig) {
  const Config config = applyRunDeadline(resolveTuningProfile(rawConfig));
  SLIM_REQUIRE(config.analysis == AnalysisKind::Site,
               "runSiteModelFromConfig: control file requests '" +
                   std::string(analysisKindName(config.analysis)) + "'");
  SLIM_REQUIRE(config.checkpointPath.empty() && !config.resume,
               "checkpoint/resume supports 'model = branch-site', 'branch' "
               "and 'clade-c', not 'model = site'");
  SLIM_REQUIRE(config.foreground.empty(),
               "'foreground =' scans support 'model = branch-site', 'branch' "
               "and 'clade-c', not 'model = site'");
  const auto in = loadInputs(config);
  SiteModelFitOptions options;
  options.frequencyModel = config.fit.frequencyModel;
  options.bfgs = config.fit.bfgs;
  options.initialParams.kappa = config.fit.initialParams.kappa;
  options.initialParams.omega0 = config.fit.initialParams.omega0;
  options.initialParams.omega2 = config.fit.initialParams.omega2;
  options.initialParams.p0 = config.fit.initialParams.p0;
  options.initialParams.p1 = config.fit.initialParams.p1;
  options.tuning = config.fit.tuning;
  SiteModelAnalysis analysis(in.codons, in.tree, config.engine, options);
  const auto test = analysis.run();
  emitReport(config, [&](std::ostream& os) {
    writeSiteModelReport(os, test, config.engine);
  });
  return test;
}

}  // namespace slim::core
