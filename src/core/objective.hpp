#pragma once
// The likelihood side of the derivative-aware objective contract.
//
// LikelihoodObjective adapts one fit task (an evaluator plus a parameter
// packing) onto opt::ObjectiveFunction:
//
//   * value(x) runs the fit's main evaluator, with the usual infeasibility
//     mapping (transform underflow / eigensolver failure -> a large finite
//     penalty the line search backtracks from);
//   * evaluateMany(points) fans independent probe points — the coordinates
//     of a finite-difference gradient — across a pool of *single-threaded*
//     sibling evaluators on a core::TaskScheduler, under the same
//     ParallelPolicy that governs task-level fit fan-out.  Points are
//     statically partitioned by index (point i -> evaluator i mod poolSize),
//     so which evaluator computes which point never depends on scheduling;
//     with exact-keyed propagator caches the values are bit-identical to the
//     sequential loop for every worker count.  Each pool evaluator keeps its
//     own persistent cache shard: a shard is exclusive to one running task
//     (propagator_cache.hpp), so concurrent probes must not share one, but
//     per-evaluator shards stay warm across every gradient of the fit;
//   * valueAndGradient(x, grad) under GradientMode::Analytic computes the
//     branch-length block of the gradient analytically in one extra
//     pruning-style sweep (reusing the evaluator's retained state when the
//     optimizer differentiates at the point it just evaluated — the common
//     case, costing zero re-evaluations) and finite-differences only the
//     leading substitution/mixture coordinates through evaluateMany.
//
// Both fitHypothesis (branch-site model A) and the site-model fits drive
// their BFGS searches through this class; they differ only in the
// PreparePoint hook that maps an optimization vector onto (branch lengths,
// mixture spec).

#include <functional>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/scheduler.hpp"
#include "lik/branch_site_likelihood.hpp"
#include "model/site_mixture.hpp"
#include "opt/objective.hpp"
#include "opt/transforms.hpp"

namespace slim::core {

class LikelihoodObjective final : public opt::ObjectiveFunction {
 public:
  /// Applies point x to an evaluator — unpack and validate the parameters,
  /// set every branch length — and returns the mixture spec to evaluate.
  /// Must be self-contained (it also runs against pool evaluators, whose
  /// branch lengths start wherever the previous probe left them) and throw
  /// std::invalid_argument for infeasible points.
  using PreparePoint = std::function<model::MixtureSpec(
      lik::BranchSiteLikelihood&, std::span<const double>)>;

  /// Where the branch-length block lives in the optimization vector.
  struct Layout {
    int branchOffset = 0;  ///< Coordinates [branchOffset, branchOffset + n).
    int numBranches = 0;
    /// Internal-coordinate -> branch-length transform (chain-rule factor for
    /// the analytic block).
    opt::Transform branchTransform = opt::Transform::identity();
  };

  /// `evaluator` is the fit's main evaluator (caller-owned, must outlive
  /// this object).  `poolOptions` configures probe evaluators — pass the
  /// fit's resolved engine options with numThreads forced to 1, since the
  /// parallelism moves up to the coordinate fan-out.  `fanWorkers` <= 1
  /// disables the pool (every probe runs on the main evaluator).
  LikelihoodObjective(lik::BranchSiteLikelihood& evaluator,
                      const seqio::CodonAlignment& alignment,
                      const seqio::SitePatterns& patterns,
                      const std::vector<double>& pi, const tree::Tree& tree,
                      model::Hypothesis hypothesis,
                      lik::LikelihoodOptions poolOptions, GradientMode mode,
                      ParallelPolicy policy, int fanWorkers, Layout layout,
                      PreparePoint prepare);

  double value(std::span<const double> x) override;
  std::vector<double> evaluateMany(
      const std::vector<std::vector<double>>& points) override;
  /// True exactly when evaluateMany would fan a 2-point batch (the
  /// speculative pair a caller like Nelder-Mead would add) instead of
  /// falling back to the sequential loop.
  bool batchEvaluationProfitable() const override { return wouldFan(2); }
  opt::GradientResult valueAndGradient(
      std::span<const double> x, std::span<double> grad,
      const opt::GradientOptions& options) override;

  /// Engine counters of the whole fit: the main evaluator plus every pool
  /// evaluator, merged in fixed (pool-index) order.
  lik::EvalCounters counters() const;

  GradientMode mode() const noexcept { return mode_; }
  int poolSize() const noexcept { return static_cast<int>(pool_.size()); }

 private:
  double evalOn(lik::BranchSiteLikelihood& evaluator,
                std::span<const double> x);
  /// Whether a batch of numPoints would be fanned across the probe pool
  /// under the policy (the single gate evaluateMany and
  /// batchEvaluationProfitable share).
  bool wouldFan(int numPoints) const;
  void ensurePool(int evaluators);

  lik::BranchSiteLikelihood& main_;
  const seqio::CodonAlignment& alignment_;
  const seqio::SitePatterns& patterns_;
  const std::vector<double>& pi_;
  const tree::Tree& tree_;
  model::Hypothesis hypothesis_;
  lik::LikelihoodOptions poolOptions_;
  GradientMode mode_;
  ParallelPolicy policy_;
  int fanWorkers_;
  Layout layout_;
  PreparePoint prepare_;

  std::unique_ptr<TaskScheduler> scheduler_;  // created on first fan-out
  std::vector<std::unique_ptr<lik::BranchSiteLikelihood>> pool_;

  // The last point value() evaluated on the main evaluator (and whether the
  // evaluator's retained state is valid for it) — the analytic gradient
  // reuses that state instead of re-evaluating when BFGS differentiates at
  // the point the line search just accepted.
  std::vector<double> lastX_;
  bool lastValid_ = false;
};

}  // namespace slim::core
