#include "core/batch.hpp"

#include <chrono>

#include "core/checkpoint.hpp"
#include "support/require.hpp"

namespace slim::core {

using model::Hypothesis;

BatchAnalysis::BatchAnalysis(EngineKind engine, BatchOptions options)
    : engine_(engine), options_(std::move(options)) {}

FitOptions BatchAnalysis::resolveGeneOptions(FitOptions base,
                                             GeneHandle gene) const {
  if (options_.jitterSeedBase != 0)
    base.startJitterSeed = options_.jitterSeedBase + static_cast<std::uint64_t>(gene);
  return base;
}

GeneHandle BatchAnalysis::addGene(const seqio::CodonAlignment& alignment,
                                  const tree::Tree& tree) {
  return addGene(alignment, std::make_shared<const tree::Tree>(tree));
}

GeneHandle BatchAnalysis::addGene(const seqio::CodonAlignment& alignment,
                                  std::shared_ptr<const tree::Tree> tree) {
  return addGene(alignment, std::move(tree), options_.fit);
}

GeneHandle BatchAnalysis::addGene(const seqio::CodonAlignment& alignment,
                                  std::shared_ptr<const tree::Tree> tree,
                                  FitOptions geneOptions, std::string name) {
  const auto gene = static_cast<GeneHandle>(contexts_.size());
  contexts_.push_back(AnalysisContext::create(
      alignment, std::move(tree), engine_,
      resolveGeneOptions(std::move(geneOptions), gene)));
  names_.push_back(name.empty() ? "gene" + std::to_string(gene)
                                : std::move(name));
  return gene;
}

GeneHandle BatchAnalysis::addGene(std::shared_ptr<const AnalysisContext> context,
                                  std::string name) {
  SLIM_REQUIRE(context != nullptr, "BatchAnalysis: null context");
  SLIM_REQUIRE(context->engine() == engine_,
               "BatchAnalysis: context engine does not match the batch engine");
  const auto gene = static_cast<GeneHandle>(contexts_.size());
  contexts_.push_back(std::move(context));
  names_.push_back(name.empty() ? "gene" + std::to_string(gene)
                                : std::move(name));
  return gene;
}

std::vector<PositiveSelectionTest> BatchAnalysis::runAll() {
  const auto t0 = std::chrono::steady_clock::now();
  const int n = static_cast<int>(contexts_.size());
  totals_ = {};
  if (n == 0) {
    lastRun_ = {};
    return {};
  }

  // The batch-level tuning sizes the worker pool and picks the policy; the
  // scheduler then decides per phase whether whole tasks fan out (each
  // evaluator single-threaded) or run sequentially over a parallel pattern
  // sweep.  Either way each evaluation's arithmetic is identical, so the
  // choice affects wall clock only.
  const lik::LikelihoodOptions batchResolved =
      resolvedEngineOptions(engine_, options_.fit.tuning);
  const ParallelPolicy policy = options_.fit.tuning.policy;
  TaskScheduler scheduler(batchResolved.numThreads);

  // Phase 1: the 2N independent fits (gene g's H0 at task 2g, H1 at 2g+1).
  const int numFitTasks = 2 * n;
  const int fitThreads = scheduler.taskThreads(numFitTasks, policy);
  std::vector<FitResult> fits(numFitTasks);
  CheckpointManager* const ckpt = options_.checkpoint;
  scheduler.run(numFitTasks, policy, [&](int t) {
    const GeneHandle g = t / 2;
    const Hypothesis h = (t % 2 == 0) ? Hypothesis::H0 : Hypothesis::H1;
    const auto& ctx = *contexts_[g];
    lik::LikelihoodOptions lk = ctx.likelihoodOptions();
    lk.numThreads = fitThreads;
    if (ckpt == nullptr) {
      fits[t] = fitHypothesis(ctx, h, ctx.options(), lk,
                              ctx.cacheShard(AnalysisContext::shardSlot(h)));
      return;
    }
    const std::string key = fitTaskKey(g, names_[g], h);
    if (auto done = ckpt->completedFit(key)) {
      // Already finished by the run this checkpoint came from: skip the
      // fit, keep the recorded result (provenance filled in by the manager).
      fits[t] = std::move(*done);
      return;
    }
    FitCheckpointHooks hooks;
    hooks.sink = ckpt->fitSink(key);
    hooks.resumeFrom = ckpt->inFlightState(key);
    if (hooks.resumeFrom) hooks.resumedFromPath = ckpt->path();
    fits[t] = fitHypothesis(ctx, h, ctx.options(), lk,
                            ctx.cacheShard(AnalysisContext::shardSlot(h)),
                            &hooks);
    // A cancelled fit is an *interrupted* trajectory, not a finished one —
    // recording it complete would make a later resume skip the rest of the
    // optimization.  Flush instead so the last in-flight snapshot is on disk.
    if (fits[t].cancelled)
      ckpt->flush();
    else
      ckpt->recordCompleted(key, fits[t]);
  });

  // Phase 2: the N site scans at the H1 maxima, each warm-starting from its
  // gene's H1 shard.
  const int scanThreads = scheduler.taskThreads(n, policy);
  std::vector<lik::SiteClassPosteriors> posteriors(n);
  std::vector<lik::EvalCounters> scanCounters(n);
  scheduler.run(n, policy, [&](int g) {
    // No scan for a cancelled H1 fit: posteriors at a truncated point are
    // not meaningful, and skipping them lets SIGTERM/drain exit promptly.
    if (fits[2 * g + 1].cancelled) return;
    // The branch model has no site mixture — nothing to scan.
    if (fits[2 * g + 1].modelKind == model::ModelKind::Branch) return;
    const auto& ctx = *contexts_[g];
    lik::LikelihoodOptions lk = ctx.likelihoodOptions();
    lk.numThreads = scanThreads;
    posteriors[g] = siteScanAtFit(
        ctx, fits[2 * g + 1], lk,
        ctx.cacheShard(AnalysisContext::shardSlot(Hypothesis::H1)),
        scanCounters[g]);
  });

  // Assembly + deterministic counter merge, strictly in gene order.
  std::vector<PositiveSelectionTest> tests;
  tests.reserve(n);
  for (int g = 0; g < n; ++g) {
    const double df =
        contexts_[g]->options().modelSpec.lrtDegreesOfFreedom();
    tests.push_back(makePositiveSelectionTest(
        std::move(fits[2 * g]), std::move(fits[2 * g + 1]),
        std::move(posteriors[g]), scanCounters[g], df));
    totals_ += tests.back().counters;
  }

  lastRun_.taskLevel = scheduler.useTaskLevel(numFitTasks, policy);
  lastRun_.workers = scheduler.numWorkers();
  lastRun_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return tests;
}

}  // namespace slim::core
