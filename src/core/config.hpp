#pragma once
// CodeML-style control files.
//
// CodeML is driven by a "ctl" file of `key = value` lines ('*' starts a
// comment), pointing at a sequence file and a tree file and selecting model
// options.  This module provides the same workflow for slimcodeml so the
// tool is drivable without writing C++ (see tools/slimcodeml_main.cpp):
//
//     seqfile  = gene.fasta        * FASTA or sequential PHYLIP
//     treefile = gene.nwk          * Newick; integer #k marks label branch
//                                  * classes (0 = background)
//     outfile  = results.txt       * '-' or empty: stdout
//     model    = branch-site       * branch-site | branch | clade-c | site
//     foreground = every-branch    * scan mode: fit every branch (or each
//                                  * listed set) as the foreground in one
//                                  * batch; sets are semicolon-separated
//                                  * lists of comma-separated labels/ids
//     engine   = slim              * slim | slim-parallel | codeml
//     threads  = 0                 * worker threads (0: all cores)
//     parallel = auto              * auto | task | pattern (batch fan-out)
//     gradient = fd                * fd | fd-parallel | analytic
//     simd     = auto              * auto | scalar | avx2 | avx512
//     backend  = auto              * auto | reference | simd | blas
//     expm     = eigen             * eigen | adaptive (scaling-and-squaring)
//     blockSize = 64               * site patterns per work block
//     cachePropagators = 1         * persistent propagator cache on/off
//     CodonFreq = 2                * 0 equal, 1 F1x4, 2 F3x4, 3 F61
//     maxIterations = 200
//     kappa = 2.0                  * initial values
//     omega0 = 0.1
//     omega2 = 2.0
//     p0 = 0.45
//     p1 = 0.45
//     cleandata = 0                * 1: treat stop codons as missing
//     checkpoint = run.ckpt        * snapshot long fits to this file
//     checkpointEverySec = 30      * write throttle (0: every iteration)
//     timeoutSec = 0               * wall-clock budget for the whole run
//                                  * (0: none); expired fits stop cleanly at
//                                  * the last accepted point, marked
//                                  * cancelled in the report
//     tuning = auto                * per-host autotuning profile: 'auto'
//                                  * ($SLIMCODEML_TUNING or slimcodeml.tuning,
//                                  * skipped when absent) or an explicit path
//                                  * (strictly loaded; wrong host refused)
//
// Multi-gene batches: repeat the `seqfile` line once per alignment (all
// genes share the one tree), and every gene's branch-site test runs through
// core::BatchAnalysis with the H0/H1 fits fanned across the worker pool.

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/batch.hpp"
#include "core/site_models.hpp"

namespace slim::core {

/// Thrown for malformed control files.  Derives from std::invalid_argument
/// (what callers historically caught); the message always names the line
/// number, and value errors also name the offending key — a stod failure
/// never escapes as a bare exception without location context.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Which test the control file requests.
enum class AnalysisKind {
  BranchSite,  ///< model A, H0 vs H1 on the #1 branch (`model = branch-site`)
  Site,        ///< M1a vs M2a across all branches (`model = site`)
  Branch,      ///< one omega per branch class vs one shared (`model = branch`)
  CladeC,      ///< clade model C vs M2a_rel (`model = clade-c`)
};

inline const char* analysisKindName(AnalysisKind k) noexcept {
  switch (k) {
    case AnalysisKind::BranchSite: return "branch-site";
    case AnalysisKind::Site: return "site";
    case AnalysisKind::Branch: return "branch";
    default: return "clade-c";
  }
}

/// Parsed control file.
struct Config {
  /// First sequence file (always seqfiles.front(); kept for single-gene
  /// callers).
  std::string seqfile;
  /// Every `seqfile` entry in control-file order; more than one selects the
  /// batch workflow.
  std::vector<std::string> seqfiles;
  std::string treefile;
  std::string outfile;  ///< Empty or "-" writes to stdout.
  EngineKind engine = EngineKind::Slim;
  AnalysisKind analysis = AnalysisKind::BranchSite;
  /// `foreground =` scan selector: empty for a plain run, "every-branch" or
  /// a semicolon-separated list of branch sets (comma-separated labels /
  /// node indices) to fan one fit per set through the batch workflow
  /// (tree/branch_classes.hpp grammar).
  std::string foreground;
  FitOptions fit;
  bool stopCodonsAsMissing = false;
  /// Non-empty: branch-site fits snapshot their optimizer state to this
  /// file (atomically) as they run, making the run resumable.
  std::string checkpointPath;
  /// Seconds between checkpoint writes (0: write on every iteration).
  double checkpointEverySec = 30.0;
  /// Wall-clock budget for the whole run, in seconds (0: unlimited).  The
  /// runners compose a deadline onto fit.bfgs.cancel: fits past the budget
  /// stop cleanly at the last accepted point and are reported cancelled.
  /// Like the cancel predicate itself, deliberately excluded from
  /// checkpointConfigHash — a timeout truncates a trajectory, never alters
  /// it, so a resumed run may continue under a different budget.
  double timeoutSec = 0;
  /// Set by the CLI's --resume flag: load checkpointPath (if it exists) and
  /// continue — completed fits are skipped, in-flight ones continue their
  /// recorded trajectory.  Version/config-hash mismatches refuse loudly.
  bool resume = false;
  /// `tuning =` key: empty (off), "auto" (defaultTuningProfilePath(), used
  /// only when the file exists) or an explicit profile path (must load).
  /// The loaded profile fills only tuning fields the control file left at
  /// their defaults — see resolveTuningProfile.
  std::string tuningPath;

  /// Parse `key = value` text.  Unknown keys and malformed lines throw
  /// std::invalid_argument with a line number.
  static Config parse(std::istream& in);
  static Config parseString(std::string_view text);
  static Config parseFile(const std::string& path);
};

/// Apply the config's `tuning =` request: load the named profile (or the
/// default-path one under "auto", skipping silently only when that file
/// does not exist) and merge it into config.fit.tuning — profile values
/// fill only fields still at their defaults, so explicit ctl keys win.
/// Every config runner calls this first; exposed for tests and tools.
/// Throws ConfigError on a corrupt, version-mismatched or foreign-host
/// profile (see core/tuning_profile.hpp).
Config resolveTuningProfile(Config config);

/// The ModelSpec a non-site `model =` selection requests over a tree with
/// `numBranchClasses` branch classes (branch-site always uses the fixed
/// two-class Table I shape; scans mark each set as class 1, so they pass 2).
/// Validated here, so an unmarked tree under `model = branch` / `clade-c`
/// fails with the spec's keyed "mark at least one branch" error before any
/// fitting starts; `model = site` has no spec and throws.
model::ModelSpec modelSpecFor(AnalysisKind analysis, int numBranchClasses);

/// Load one alignment file: FASTA when the first non-blank character is
/// '>', else sequential PHYLIP; codon-encoded with the universal code.
/// Shared by the config runners and the serve-mode context cache.
seqio::CodonAlignment loadAlignmentFile(const std::string& path,
                                        bool stopCodonsAsMissing);

/// Load and parse a Newick tree file.
tree::Tree loadTreeFile(const std::string& path);

/// Load the alignment (FASTA when the first non-blank char is '>', else
/// sequential PHYLIP) and tree named by the config, run the full H0/H1
/// test of the requested branch-classification model (branch-site A, the
/// branch model or clade model C), and return the result; writes the text
/// report to config.outfile.  Requires analysis != Site and an empty
/// `foreground =` (scans run through runBatchFromConfig).
PositiveSelectionTest runFromConfig(const Config& config);

/// Same, for `model = site`: the M1a-vs-M2a test (no #1 mark needed).
SiteModelTest runSiteModelFromConfig(const Config& config);

/// Result of the multi-gene workflow, in seqfile order.
struct BatchRunOutput {
  std::vector<std::string> geneNames;  ///< Sequence-file stem per gene.
  std::vector<PositiveSelectionTest> tests;
  lik::EvalCounters totals;  ///< Deterministic gene-order merge of all work.
  BatchRunInfo info;
};

/// Load every alignment named by config.seqfiles plus the shared tree, run
/// all tests through core::BatchAnalysis (H0/H1 fits fanned across
/// `threads` workers under the `parallel` policy), and write per-gene text
/// reports plus a batch summary to config.outfile.  A non-empty
/// `foreground =` expands every gene into one task per branch set
/// (core::ScanAnalysis, names "<gene>@<set>"), riding the same checkpoint /
/// cancellation / report plumbing.  Requires analysis != Site; also accepts
/// a single seqfile.
BatchRunOutput runBatchFromConfig(const Config& config);

/// Alignments under `dir` with a recognized extension (*.fasta, *.fa,
/// *.fas, *.phy, *.phylip), sorted lexicographically by path.  Never
/// readdir order: that is host-dependent, and gene order determines gene
/// indices — hence jitterSeedBase-derived per-gene seeds, checkpoint task
/// keys and report ordering.  Throws ConfigError when `dir` is not a
/// directory or holds no alignments.
std::vector<std::string> scanBatchDirectory(const std::string& dir);

}  // namespace slim::core
