#pragma once
// CodeML-style control files.
//
// CodeML is driven by a "ctl" file of `key = value` lines ('*' starts a
// comment), pointing at a sequence file and a tree file and selecting model
// options.  This module provides the same workflow for slimcodeml so the
// tool is drivable without writing C++ (see tools/slimcodeml_main.cpp):
//
//     seqfile  = gene.fasta        * FASTA or sequential PHYLIP
//     treefile = gene.nwk          * Newick with one #1 foreground mark
//     outfile  = results.txt       * '-' or empty: stdout
//     engine   = slim              * slim | slim-parallel | codeml
//     threads  = 0                 * likelihood threads (0: all cores)
//     blockSize = 64               * site patterns per work block
//     cachePropagators = 1         * persistent propagator cache on/off
//     CodonFreq = 2                * 0 equal, 1 F1x4, 2 F3x4, 3 F61
//     maxIterations = 200
//     kappa = 2.0                  * initial values
//     omega0 = 0.1
//     omega2 = 2.0
//     p0 = 0.45
//     p1 = 0.45
//     cleandata = 0                * 1: treat stop codons as missing

#include <iosfwd>
#include <string>

#include "core/analysis.hpp"
#include "core/site_models.hpp"

namespace slim::core {

/// Which test the control file requests.
enum class AnalysisKind {
  BranchSite,  ///< model A, H0 vs H1 on the #1 branch (`model = branch-site`)
  Site,        ///< M1a vs M2a across all branches (`model = site`)
};

/// Parsed control file.
struct Config {
  std::string seqfile;
  std::string treefile;
  std::string outfile;  ///< Empty or "-" writes to stdout.
  EngineKind engine = EngineKind::Slim;
  AnalysisKind analysis = AnalysisKind::BranchSite;
  FitOptions fit;
  bool stopCodonsAsMissing = false;

  /// Parse `key = value` text.  Unknown keys and malformed lines throw
  /// std::invalid_argument with a line number.
  static Config parse(std::istream& in);
  static Config parseString(std::string_view text);
  static Config parseFile(const std::string& path);
};

/// Load the alignment (FASTA when the first non-blank char is '>', else
/// sequential PHYLIP) and tree named by the config, run the full H0/H1
/// branch-site test, and return the result; writes the text report to
/// config.outfile.  Requires analysis == BranchSite.
PositiveSelectionTest runFromConfig(const Config& config);

/// Same, for `model = site`: the M1a-vs-M2a test (no #1 mark needed).
SiteModelTest runSiteModelFromConfig(const Config& config);

}  // namespace slim::core
