#pragma once
// Engine presets: the two systems compared throughout the paper's
// evaluation.  Both run the same parser, tree, optimizer and pruning
// machinery; they differ exactly in the likelihood-kernel options.

#include "lik/options.hpp"

namespace slim::core {

enum class EngineKind {
  CodemlBaseline,  ///< CodeML v4.4c stand-in (naive kernels, Eq. 9, per-site gemv).
  Slim,            ///< SlimCodeML (opt kernels, Eq. 10 syrk, bundled BLAS-3).
  SlimParallel,    ///< Slim + all-core pattern-block sweep + propagator cache.
};

constexpr const char* engineName(EngineKind e) noexcept {
  switch (e) {
    case EngineKind::CodemlBaseline: return "CodeML";
    case EngineKind::Slim: return "SlimCodeML";
    case EngineKind::SlimParallel: return "SlimCodeML-MT";
  }
  return "?";
}

constexpr lik::LikelihoodOptions engineOptions(EngineKind e) noexcept {
  switch (e) {
    case EngineKind::CodemlBaseline: return lik::codemlBaselineOptions();
    case EngineKind::Slim: return lik::slimOptions();
    case EngineKind::SlimParallel: return lik::slimParallelOptions();
  }
  return lik::slimOptions();
}

/// Where the workers go when several *independent* fit tasks are available
/// (the H0/H1 pair of one gene, or the genes of a batch): fanning whole
/// tasks across the pool, gcodeml-style, or keeping each task sequential
/// and parallelizing inside its pattern sweep.  Either way each evaluation's
/// arithmetic is unchanged, so results are bit-identical across policies.
enum class ParallelPolicy {
  Auto,          ///< Task-level when tasks >= workers, pattern-level otherwise.
  TaskLevel,     ///< One worker per fit task; evaluators run single-threaded.
  PatternLevel,  ///< Tasks run sequentially; each evaluator uses all workers.
};

constexpr const char* parallelPolicyName(ParallelPolicy p) noexcept {
  switch (p) {
    case ParallelPolicy::Auto: return "auto";
    case ParallelPolicy::TaskLevel: return "task";
    case ParallelPolicy::PatternLevel: return "pattern";
  }
  return "?";
}

/// How the optimizer obtains gradients of the likelihood objective
/// (`gradient =` in the control file).
enum class GradientMode {
  /// Forward/central finite differences, one evaluation per coordinate,
  /// probed serially on the fit's own evaluator (the default).
  FiniteDiff,
  /// The same finite differences, with the probe points fanned across a
  /// pool of single-threaded evaluators on core::TaskScheduler.  Values are
  /// bit-identical to FiniteDiff for every worker count.
  ParallelFiniteDiff,
  /// Hybrid analytic gradient: branch-length derivatives from one extra
  /// pruning-style sweep (dP/dt via the eigendecomposition), finite
  /// differences only for the few substitution/mixture parameters.
  /// Eliminates the dominant per-branch FD axis (>= 3x fewer evaluations
  /// per fit on realistic trees).
  Analytic,
};

constexpr const char* gradientModeName(GradientMode g) noexcept {
  switch (g) {
    case GradientMode::FiniteDiff: return "fd";
    case GradientMode::ParallelFiniteDiff: return "fd-parallel";
    case GradientMode::Analytic: return "analytic";
  }
  return "?";
}

/// Tuning overrides layered on an engine preset (values < 0 keep the
/// preset's setting).  Kept out of EngineKind so parallelism and caching
/// stay orthogonal to the paper's kernel comparison.
struct LikelihoodTuning {
  int numThreads = -1;        ///< see lik::LikelihoodOptions::numThreads
  int blockSize = -1;         ///< see lik::LikelihoodOptions::blockSize
  int cachePropagators = -1;  ///< tri-state: -1 preset, 0 off, 1 on
  /// Nested-parallelism policy for schedulers running independent fit tasks
  /// (core::TaskScheduler / core::BatchAnalysis); single evaluations ignore
  /// it, but it also gates whether ParallelFiniteDiff may fan probe points.
  ParallelPolicy policy = ParallelPolicy::Auto;
  /// Gradient computation for the BFGS fits.
  GradientMode gradient = GradientMode::FiniteDiff;
  /// SIMD kernel selection for the Opt-flavor hot paths (`simd =` ctl key);
  /// see lik::LikelihoodOptions::simd.  The resolved level is recorded in
  /// FitResult::simd and the text/JSON reports.
  linalg::SimdMode simd = linalg::SimdMode::Auto;
  /// Compute-backend selection (`backend =` ctl key); see
  /// lik::LikelihoodOptions::backend.  The resolved kind is recorded in
  /// FitResult::backend and the text/JSON reports.
  backend::BackendMode backend = backend::BackendMode::Auto;
  /// Propagator builder (`expm =` ctl key); see lik::LikelihoodOptions::expm.
  backend::ExpmAlgorithm expm = backend::ExpmAlgorithm::Eigen;
};

constexpr lik::LikelihoodOptions resolvedEngineOptions(
    EngineKind e, const LikelihoodTuning& tuning) noexcept {
  lik::LikelihoodOptions o = engineOptions(e);
  if (tuning.numThreads >= 0) o.numThreads = tuning.numThreads;
  if (tuning.blockSize >= 0) o.blockSize = tuning.blockSize;
  if (tuning.cachePropagators >= 0)
    o.cachePropagators = tuning.cachePropagators != 0;
  o.simd = tuning.simd;
  o.backend = tuning.backend;
  o.expm = tuning.expm;
  return o;
}

}  // namespace slim::core
