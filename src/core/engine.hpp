#pragma once
// Engine presets: the two systems compared throughout the paper's
// evaluation.  Both run the same parser, tree, optimizer and pruning
// machinery; they differ exactly in the likelihood-kernel options.

#include "lik/options.hpp"

namespace slim::core {

enum class EngineKind {
  CodemlBaseline,  ///< CodeML v4.4c stand-in (naive kernels, Eq. 9, per-site gemv).
  Slim,            ///< SlimCodeML (opt kernels, Eq. 10 syrk, bundled BLAS-3).
};

constexpr const char* engineName(EngineKind e) noexcept {
  return e == EngineKind::CodemlBaseline ? "CodeML" : "SlimCodeML";
}

constexpr lik::LikelihoodOptions engineOptions(EngineKind e) noexcept {
  return e == EngineKind::CodemlBaseline ? lik::codemlBaselineOptions()
                                         : lik::slimOptions();
}

}  // namespace slim::core
