#include "core/scan.hpp"

#include "support/require.hpp"

namespace slim::core {

ScanAnalysis::ScanAnalysis(EngineKind engine, const tree::Tree& tree,
                           const std::string& selector, BatchOptions options)
    : batch_(engine, std::move(options)),
      sets_(tree::resolveBranchSelector(tree, selector)) {
  trees_.reserve(sets_.size());
  for (const auto& set : sets_)
    trees_.push_back(std::make_shared<const tree::Tree>(
        tree::withForegroundSet(tree, set.nodes)));
}

void ScanAnalysis::addGene(const seqio::CodonAlignment& alignment,
                           FitOptions geneOptions, const std::string& name) {
  SLIM_REQUIRE(!name.empty(), "ScanAnalysis::addGene: gene name is required");
  for (std::size_t s = 0; s < sets_.size(); ++s) {
    taskNames_.push_back(name + "@" + sets_[s].name);
    batch_.addGene(alignment, trees_[s], geneOptions, taskNames_.back());
  }
}

}  // namespace slim::core
