#include "core/analysis.hpp"

#include <chrono>
#include <cmath>

#include "opt/transforms.hpp"
#include "sim/rng.hpp"
#include "support/require.hpp"

namespace slim::core {

using model::BranchSiteParams;
using model::Hypothesis;

namespace {

/// Packing/unpacking of the optimization vector:
///   [ kappa~, omega0~, (omega2~ under H1), u, v, t~_1 .. t~_B ]
/// with log / logistic / simplex transforms (see opt/transforms.hpp).
class ParameterPacking {
 public:
  ParameterPacking(Hypothesis h, int numBranches)
      : h1_(h == Hypothesis::H1),
        numBranches_(numBranches),
        kappa_(opt::Transform::logAbove(0.0)),
        omega0_(opt::Transform::logistic(0.0, 1.0)),
        omega2_(opt::Transform::logAbove(1.0)),
        // Branch lengths bounded in (0, 50] expected substitutions per
        // codon, PAML's own bound; keeps line-search trial points sane.
        branch_(opt::Transform::logistic(0.0, 50.0)) {}

  int dim() const noexcept { return (h1_ ? 5 : 4) + numBranches_; }
  int branchOffset() const noexcept { return h1_ ? 5 : 4; }

  std::vector<double> pack(const BranchSiteParams& p,
                           std::span<const double> lengths) const {
    std::vector<double> x(dim());
    x[0] = kappa_.toInternal(p.kappa);
    x[1] = omega0_.toInternal(p.omega0);
    int at = 2;
    if (h1_) x[at++] = omega2_.toInternal(p.omega2);
    const auto [u, v] = opt::simplex2ToInternal(p.p0, p.p1);
    x[at++] = u;
    x[at++] = v;
    for (int k = 0; k < numBranches_; ++k)
      x[at + k] = branch_.toInternal(std::max(lengths[k], 1e-6));
    return x;
  }

  BranchSiteParams unpackParams(std::span<const double> x) const {
    BranchSiteParams p;
    p.kappa = kappa_.toExternal(x[0]);
    p.omega0 = omega0_.toExternal(x[1]);
    int at = 2;
    p.omega2 = h1_ ? omega2_.toExternal(x[at++]) : 1.0;
    const auto [p0, p1] = opt::simplex2ToExternal(x[at], x[at + 1]);
    p.p0 = p0;
    p.p1 = p1;
    return p;
  }

  double branchLength(std::span<const double> x, int k) const {
    return branch_.toExternal(x[branchOffset() + k]);
  }

 private:
  bool h1_;
  int numBranches_;
  opt::Transform kappa_, omega0_, omega2_, branch_;
};

}  // namespace

BranchSiteAnalysis::BranchSiteAnalysis(const seqio::CodonAlignment& alignment,
                                       const tree::Tree& tree,
                                       EngineKind engine, FitOptions options)
    : alignment_(alignment),
      patterns_(seqio::compressPatterns(alignment)),
      tree_(tree),
      engine_(engine),
      options_(options) {
  pi_ = model::estimateCodonFrequencies(alignment_, options_.frequencyModel);
}

FitResult BranchSiteAnalysis::fit(Hypothesis hypothesis) {
  const auto t0 = std::chrono::steady_clock::now();

  lik::BranchSiteLikelihood eval(
      alignment_, patterns_, pi_, tree_, hypothesis,
      resolvedEngineOptions(engine_, options_.tuning));
  if (!options_.useTreeBranchLengths)
    eval.setAllBranchLengths(options_.initialBranchLength);

  const int numBranches = eval.numBranches();
  const ParameterPacking packing(hypothesis, numBranches);

  BranchSiteParams start = options_.initialParams;
  std::vector<double> startLengths(numBranches);
  for (int k = 0; k < numBranches; ++k) startLengths[k] = eval.branchLength(k);

  if (options_.startJitterSeed != 0) {
    // CodeML-style randomized start: multiplicative jitter on every value.
    sim::Rng rng(options_.startJitterSeed);
    auto jitter = [&rng](double v) { return v * std::exp(rng.uniform(-0.1, 0.1)); };
    start.kappa = jitter(start.kappa);
    start.omega0 = std::min(0.95, jitter(start.omega0));
    start.omega2 = 1.0 + jitter(start.omega2 - 1.0 + 0.1);
    for (auto& t : startLengths) t = jitter(std::max(t, 1e-3));
  }

  std::vector<double> x0 = packing.pack(start, startLengths);

  const auto objective = [&](std::span<const double> x) -> double {
    // Extreme line-search trial points can underflow a transform to its
    // boundary (e.g. kappa == 0) or overflow a kernel; both count as
    // infeasible and the search backtracks.
    try {
      const BranchSiteParams p = packing.unpackParams(x);
      for (int k = 0; k < numBranches; ++k)
        eval.setBranchLength(k, packing.branchLength(x, k));
      const double lnL = eval.logLikelihood(p);
      return std::isfinite(lnL) ? -lnL : 1e100;
    } catch (const std::invalid_argument&) {
      return 1e100;
    } catch (const std::runtime_error&) {
      return 1e100;  // eigensolver non-convergence on degenerate input
    }
  };

  const auto bfgsResult = opt::minimizeBfgs(objective, x0, options_.bfgs);

  FitResult r;
  r.hypothesis = hypothesis;
  r.lnL = -bfgsResult.value;
  r.params = packing.unpackParams(bfgsResult.x);
  r.branchLengths.resize(numBranches);
  for (int k = 0; k < numBranches; ++k)
    r.branchLengths[k] = packing.branchLength(bfgsResult.x, k);
  r.iterations = bfgsResult.iterations;
  r.functionEvaluations = bfgsResult.functionEvaluations;
  r.converged = bfgsResult.converged;
  r.counters = eval.counters();
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

PositiveSelectionTest BranchSiteAnalysis::run() {
  PositiveSelectionTest test;
  test.h0 = fit(Hypothesis::H0);
  test.h1 = fit(Hypothesis::H1);
  test.lrt = stat::likelihoodRatioTest(test.h0.lnL, test.h1.lnL, /*df=*/1.0);

  // NEB site posteriors at the H1 maximum.
  lik::BranchSiteLikelihood eval(
      alignment_, patterns_, pi_, tree_, Hypothesis::H1,
      resolvedEngineOptions(engine_, options_.tuning));
  for (int k = 0; k < eval.numBranches(); ++k)
    eval.setBranchLength(k, test.h1.branchLengths[k]);
  test.posteriors = eval.siteClassPosteriors(test.h1.params);

  test.totalSeconds = test.h0.seconds + test.h1.seconds;
  return test;
}

}  // namespace slim::core
