#include "core/analysis.hpp"

#include "support/require.hpp"

namespace slim::core {

using model::Hypothesis;

BranchSiteAnalysis::BranchSiteAnalysis(const seqio::CodonAlignment& alignment,
                                       const tree::Tree& tree,
                                       EngineKind engine, FitOptions options)
    : context_(AnalysisContext::create(alignment, tree, engine,
                                       std::move(options))) {}

BranchSiteAnalysis::BranchSiteAnalysis(
    std::shared_ptr<const AnalysisContext> context)
    : context_(std::move(context)) {
  SLIM_REQUIRE(context_ != nullptr, "BranchSiteAnalysis: null context");
}

FitResult BranchSiteAnalysis::fit(Hypothesis hypothesis) {
  return fitHypothesis(*context_, hypothesis, context_->options(),
                       context_->likelihoodOptions(),
                       context_->cacheShard(AnalysisContext::shardSlot(hypothesis)));
}

PositiveSelectionTest BranchSiteAnalysis::run() {
  FitResult h0 = fit(Hypothesis::H0);
  FitResult h1 = fit(Hypothesis::H1);
  // The scan reuses the H1 shard: at the maximum just fitted, every
  // propagator it needs is already cached (when caching is on).  The
  // branch model has no site mixture, so there is nothing to scan.
  lik::EvalCounters scanCounters;
  lik::SiteClassPosteriors posteriors;
  if (h1.modelKind != model::ModelKind::Branch)
    posteriors = siteScanAtFit(
        *context_, h1, context_->likelihoodOptions(),
        context_->cacheShard(AnalysisContext::shardSlot(Hypothesis::H1)),
        scanCounters);
  return makePositiveSelectionTest(
      std::move(h0), std::move(h1), std::move(posteriors), scanCounters,
      context_->options().modelSpec.lrtDegreesOfFreedom());
}

}  // namespace slim::core
