#pragma once
// Fan-out of independent fit tasks — the parallelism *above* the pattern
// level that gcodeml demonstrates (PAPERS.md): the H0 and H1 fits of one
// gene, or the genes of a whole batch, are embarrassingly parallel, and on
// a many-core host distributing whole tasks beats splitting one pattern
// sweep once there are at least as many tasks as workers.
//
// The scheduler reuses support::ThreadPool.  Nested parallelism is resolved
// by ParallelPolicy (core/engine.hpp): under task-level fan-out each task's
// evaluator must run single-threaded (taskThreads() == 1), under
// pattern-level the tasks run sequentially and each evaluator gets the full
// pool.  Results must land in slots addressed by task index, which — with
// per-task cache shards and task-local RNGs — makes every scheduling order
// produce bit-identical output.

#include <functional>
#include <memory>

#include "core/engine.hpp"
#include "support/parallel.hpp"

namespace slim::core {

class TaskScheduler {
 public:
  /// numWorkers: 0 picks the hardware concurrency, otherwise clamped to 1+.
  explicit TaskScheduler(int numWorkers = 0);

  int numWorkers() const noexcept { return workers_; }

  /// Whether `numTasks` independent tasks would be fanned across workers
  /// under `policy` (Auto: only when the task count can keep every worker
  /// busy; fewer tasks leave the cores to the pattern sweep instead).
  bool useTaskLevel(int numTasks, ParallelPolicy policy) const noexcept {
    if (workers_ <= 1 || numTasks <= 1) return false;
    switch (policy) {
      case ParallelPolicy::TaskLevel: return true;
      case ParallelPolicy::PatternLevel: return false;
      case ParallelPolicy::Auto: return numTasks >= workers_;
    }
    return false;
  }

  /// Evaluator thread budget for one task under `policy`: 1 when tasks are
  /// fanned out, the whole pool when they run sequentially.
  int taskThreads(int numTasks, ParallelPolicy policy) const noexcept {
    return useTaskLevel(numTasks, policy) ? 1 : workers_;
  }

  /// Run task(i) for every i in [0, numTasks): across the pool when
  /// useTaskLevel(numTasks, policy), else sequentially in index order.
  /// Blocks until all tasks complete; rethrows the first task exception.
  void run(int numTasks, ParallelPolicy policy,
           const std::function<void(int)>& task);

 private:
  int workers_;
  std::unique_ptr<support::ThreadPool> pool_;  // created on first fan-out
};

}  // namespace slim::core
