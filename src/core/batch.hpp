#pragma once
// Batch-first driver for Selectome-scale workloads: register N genes, then
// run every branch-site test with the H0/H1 fits (and the NEB site scans)
// fanned across a TaskScheduler as 2N (+N) independent tasks.
//
// Guarantees:
//  * runAll() is bit-identical to running each gene's
//    BranchSiteAnalysis::run() sequentially, for every worker count and
//    every ParallelPolicy — tasks share nothing mutable (per-task cache
//    shards, task-local RNGs) and results land in slots addressed by task
//    index, so the scheduling order cannot leak into the output.
//  * Engine counters are merged deterministically in gene order into
//    totals(), instead of being clobbered per-fit.
//
// Randomized starts stay reproducible under fan-out: with jitterSeedBase
// set, gene g draws from seed base + g — derived from the gene *index*, not
// from any execution order.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/context.hpp"
#include "core/scheduler.hpp"

namespace slim::core {

class CheckpointManager;  // core/checkpoint.hpp

/// Identifies one registered gene (the index it was added at).
using GeneHandle = int;

struct BatchOptions {
  /// Per-gene fit defaults.  `fit.tuning` also drives the scheduler: its
  /// numThreads is the worker-pool size and its policy picks task-level vs
  /// pattern-level fan-out.
  FitOptions fit{};
  /// Non-zero: gene g's startJitterSeed becomes jitterSeedBase + g
  /// (scheduling-independent randomized starts).  Zero: every gene uses
  /// fit.startJitterSeed as-is.
  std::uint64_t jitterSeedBase = 0;
  /// Optional checkpoint coordinator (caller-owned, must outlive runAll).
  /// Fits recorded complete are skipped on resume; in-flight ones continue
  /// their recorded trajectory; every fit snapshots its optimizer state as
  /// it runs.  Task keys come from fitTaskKey(geneIndex, geneName, h).
  CheckpointManager* checkpoint = nullptr;
};

/// What the last runAll() did (for benches and reports).
struct BatchRunInfo {
  bool taskLevel = false;  ///< Fit phase fanned whole tasks across workers.
  int workers = 1;
  double seconds = 0;  ///< Wall clock of the whole runAll().
};

class BatchAnalysis {
 public:
  explicit BatchAnalysis(EngineKind engine, BatchOptions options = {});

  /// Register a gene (copies the tree).  The tree's #k marks are its branch
  /// classes; leaf labels must match the alignment's sequence names.
  GeneHandle addGene(const seqio::CodonAlignment& alignment,
                     const tree::Tree& tree);
  /// Same, sharing an already-parsed tree across genes (a genome scan on
  /// one species tree stores it once).
  GeneHandle addGene(const seqio::CodonAlignment& alignment,
                     std::shared_ptr<const tree::Tree> tree);
  /// Same, with per-gene fit options (must keep the batch's frequency
  /// model semantics: the context's pi is estimated from these options) and
  /// an optional stable name used in reports and checkpoint task keys
  /// (empty: "gene<index>").
  GeneHandle addGene(const seqio::CodonAlignment& alignment,
                     std::shared_ptr<const tree::Tree> tree,
                     FitOptions geneOptions, std::string name = {});
  /// Register an already-built context (serve mode: the daemon's context
  /// cache hands the batch a clone with warm propagator shards).  The
  /// context's options are taken as-is — jitterSeedBase is *not* applied —
  /// and its engine must match the batch engine.
  GeneHandle addGene(std::shared_ptr<const AnalysisContext> context,
                     std::string name = {});

  std::size_t numGenes() const noexcept { return contexts_.size(); }
  const AnalysisContext& context(GeneHandle gene) const {
    return *contexts_.at(gene);
  }
  const std::shared_ptr<const AnalysisContext>& contextPtr(
      GeneHandle gene) const {
    return contexts_.at(gene);
  }
  /// The resolved options gene `gene` runs with (including any seed derived
  /// from jitterSeedBase) — hand these to a standalone BranchSiteAnalysis
  /// to reproduce the gene's batch result exactly.
  const FitOptions& geneOptions(GeneHandle gene) const {
    return contexts_.at(gene)->options();
  }
  const std::string& geneName(GeneHandle gene) const {
    return names_.at(gene);
  }
  EngineKind engine() const noexcept { return engine_; }
  const BatchOptions& options() const noexcept { return options_; }

  /// Run the full H0-vs-H1 test for every registered gene; results are
  /// indexed by GeneHandle.  Repeatable (shards stay warm across calls).
  std::vector<PositiveSelectionTest> runAll();

  /// Aggregate engine counters of the last runAll(), merged in gene order
  /// (fits plus site scans).
  const lik::EvalCounters& totals() const noexcept { return totals_; }
  const BatchRunInfo& lastRun() const noexcept { return lastRun_; }

 private:
  FitOptions resolveGeneOptions(FitOptions base, GeneHandle gene) const;

  EngineKind engine_;
  BatchOptions options_;
  std::vector<std::shared_ptr<const AnalysisContext>> contexts_;
  std::vector<std::string> names_;
  lik::EvalCounters totals_;
  BatchRunInfo lastRun_;
};

}  // namespace slim::core
