#include "core/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "core/config.hpp"
#include "support/atomic_file.hpp"
#include "support/require.hpp"

namespace slim::core {

// ---------- exact-bit doubles ----------

std::string hexDouble(double v) {
  char buf[64];
  // %a prints the exact binary value as a hex-float literal ("0x1.8p+1");
  // infinities and NaNs print as "inf"/"nan", which strtod reads back.
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parseHexDouble(std::string_view text, const std::string& context) {
  const std::string s(text);
  if (s.empty())
    throw ConfigError(context + ": empty number");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size())
    throw ConfigError(context + ": malformed number '" + s + "'");
  return v;
}

// ---------- format helpers ----------

namespace {

constexpr const char* kMagic = "slimcodeml-checkpoint";

std::string hexU64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void writeDoubles(std::ostream& os, const char* field,
                  const std::vector<double>& v) {
  os << field;
  for (const double x : v) os << ' ' << hexDouble(x);
  os << '\n';
}

std::vector<double> parseDoubles(std::string_view rest,
                                 const std::string& context) {
  std::vector<double> out;
  std::istringstream in{std::string(rest)};
  std::string tok;
  while (in >> tok) out.push_back(parseHexDouble(tok, context));
  return out;
}

long parseLong(std::string_view rest, const std::string& context) {
  const std::string s{rest};
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size())
    throw ConfigError(context + ": malformed integer '" + s + "'");
  if (errno == ERANGE)
    throw ConfigError(context + ": integer out of range '" + s + "'");
  return v;
}

/// For fields stored in int (iterations, coordinate counts): a value a
/// corrupted file could wrap or clamp through the long->int cast is a keyed
/// error, not silent truncation.
int parseIntField(std::string_view rest, const std::string& context) {
  const long v = parseLong(rest, context);
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max())
    throw ConfigError(context + ": integer out of range '" +
                      std::string(rest) + "'");
  return static_cast<int>(v);
}

model::Hypothesis parseHypothesis(std::string_view rest,
                                  const std::string& context) {
  if (rest == "H0") return model::Hypothesis::H0;
  if (rest == "H1") return model::Hypothesis::H1;
  throw ConfigError(context + ": unknown hypothesis '" + std::string(rest) +
                    "'");
}

GradientMode parseGradientMode(std::string_view rest,
                               const std::string& context) {
  for (const auto g : {GradientMode::FiniteDiff, GradientMode::ParallelFiniteDiff,
                       GradientMode::Analytic})
    if (rest == gradientModeName(g)) return g;
  throw ConfigError(context + ": unknown gradient mode '" + std::string(rest) +
                    "'");
}

linalg::SimdLevel parseSimdLevel(std::string_view rest,
                                 const std::string& context) {
  for (const auto l : {linalg::SimdLevel::Scalar, linalg::SimdLevel::Avx2,
                       linalg::SimdLevel::Avx512})
    if (rest == linalg::simdLevelName(l)) return l;
  throw ConfigError(context + ": unknown simd level '" + std::string(rest) +
                    "'");
}

backend::BackendKind parseBackendKindField(std::string_view rest,
                                           const std::string& context) {
  backend::BackendKind k = backend::BackendKind::Reference;
  if (!backend::parseBackendKind(rest, k))
    throw ConfigError(context + ": unknown backend '" + std::string(rest) +
                      "'");
  return k;
}

backend::ExpmAlgorithm parseExpmField(std::string_view rest,
                                      const std::string& context) {
  backend::ExpmAlgorithm a = backend::ExpmAlgorithm::Eigen;
  if (!backend::parseExpmAlgorithm(rest, a))
    throw ConfigError(context + ": unknown expm algorithm '" +
                      std::string(rest) + "'");
  return a;
}

// Line cursor over the checkpoint text, tracking line numbers for errors.
class LineReader {
 public:
  LineReader(std::string_view text, const std::string& origin)
      : text_(text), origin_(origin) {}

  /// Next line, or nullopt at end of input.  Lines are '\n'-terminated; a
  /// final unterminated line is accepted (the parser's own structure — the
  /// per-record "end" marker — is what detects truncation).
  std::optional<std::string_view> next() {
    if (pos_ >= text_.size()) return std::nullopt;
    ++lineNo_;
    const auto nl = text_.find('\n', pos_);
    std::string_view line;
    if (nl == std::string_view::npos) {
      line = text_.substr(pos_);
      pos_ = text_.size();
    } else {
      line = text_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
    }
    return line;
  }

  std::string where() const {
    return origin_ + " line " + std::to_string(lineNo_);
  }

 private:
  std::string_view text_;
  std::string origin_;
  std::size_t pos_ = 0;
  int lineNo_ = 0;
};

/// Split "field rest-of-line" (field has no spaces; rest may).
std::pair<std::string_view, std::string_view> splitField(std::string_view line) {
  const auto sp = line.find(' ');
  if (sp == std::string_view::npos) return {line, {}};
  return {line.substr(0, sp), line.substr(sp + 1)};
}

}  // namespace

// ---------- Checkpoint serialization ----------

std::string Checkpoint::serialize() const {
  std::ostringstream os;
  os << kMagic << " v" << kVersion << '\n';
  os << "configHash " << hexU64(configHash) << '\n';

  for (const auto& [key, fit] : completed) {
    os << "task " << key << '\n';
    os << "status done\n";
    os << "hypothesis " << model::hypothesisName(fit.hypothesis) << '\n';
    // Both written only for the non-branch-site kinds, keeping branch-site
    // checkpoints byte-identical to the pre-model-spec format.
    if (fit.modelKind != model::ModelKind::BranchSite)
      os << "model " << model::modelKindName(fit.modelKind) << '\n';
    if (!fit.classOmegas.empty())
      writeDoubles(os, "classOmegas", fit.classOmegas);
    os << "lnL " << hexDouble(fit.lnL) << '\n';
    writeDoubles(os, "params",
                 {fit.params.kappa, fit.params.omega0, fit.params.omega2,
                  fit.params.p0, fit.params.p1});
    writeDoubles(os, "branchLengths", fit.branchLengths);
    os << "iterations " << fit.iterations << '\n';
    os << "functionEvaluations " << fit.functionEvaluations << '\n';
    os << "gradientEvaluations " << fit.gradientEvaluations << '\n';
    os << "gradientMode " << gradientModeName(fit.gradientMode) << '\n';
    os << "simd " << linalg::simdLevelName(fit.simd) << '\n';
    os << "backend " << backend::backendKindName(fit.backend) << '\n';
    os << "expm " << backend::expmAlgorithmName(fit.expm) << '\n';
    os << "converged " << (fit.converged ? 1 : 0) << '\n';
    os << "end\n";
  }
  for (const auto& [key, st] : inFlightNm) {
    os << "task " << key << '\n';
    os << "status nm\n";
    os << "dim " << (st.vertex.empty() ? 0 : st.vertex.front().size())
       << '\n';
    os << "vertices";
    for (const auto& v : st.vertex)
      for (const double x : v) os << ' ' << hexDouble(x);
    os << '\n';
    writeDoubles(os, "fv", st.fv);
    os << "iterations " << st.iterations << '\n';
    os << "functionEvaluations " << st.functionEvaluations << '\n';
    os << "end\n";
  }
  for (const auto& [key, st] : inFlight) {
    os << "task " << key << '\n';
    os << "status bfgs\n";
    writeDoubles(os, "x", st.x);
    os << "value " << hexDouble(st.value) << '\n';
    writeDoubles(os, "grad", st.grad);
    writeDoubles(os, "hInv", st.hInv);
    os << "iterations " << st.iterations << '\n';
    os << "functionEvaluations " << st.functionEvaluations << '\n';
    os << "gradientEvaluations " << st.gradientEvaluations << '\n';
    os << "gradientSweeps " << st.gradientSweeps << '\n';
    os << "analyticCoordinates " << st.analyticCoordinates << '\n';
    os << "slowProgress " << st.slowProgress << '\n';
    os << "end\n";
  }
  return os.str();
}

Checkpoint Checkpoint::parse(std::string_view text, const std::string& origin) {
  LineReader in(text, origin);

  const auto header = in.next();
  if (!header)
    throw ConfigError("checkpoint '" + origin + "': empty file");
  {
    const auto [magic, version] = splitField(*header);
    if (magic != kMagic)
      throw ConfigError(in.where() + ": not a slimcodeml checkpoint (bad "
                        "magic '" + std::string(magic) + "')");
    if (version != "v" + std::to_string(kVersion))
      throw ConfigError(in.where() + ": unsupported checkpoint version '" +
                        std::string(version) + "' (this build reads v" +
                        std::to_string(kVersion) + ")");
  }

  Checkpoint ck;
  const auto hashLine = in.next();
  if (!hashLine)
    throw ConfigError("checkpoint '" + origin + "': truncated before "
                      "configHash");
  {
    const auto [field, rest] = splitField(*hashLine);
    if (field != "configHash")
      throw ConfigError(in.where() + ": expected configHash, got '" +
                        std::string(field) + "'");
    const std::string hex{rest};
    char* end = nullptr;
    ck.configHash = std::strtoull(hex.c_str(), &end, 16);
    if (hex.empty() || end != hex.c_str() + hex.size())
      throw ConfigError(in.where() + ": malformed configHash '" + hex + "'");
  }

  for (auto line = in.next(); line; line = in.next()) {
    if (line->empty()) continue;
    const auto [field, rest] = splitField(*line);
    if (field != "task")
      throw ConfigError(in.where() + ": expected 'task', got '" +
                        std::string(field) + "'");
    const std::string key{rest};
    if (key.empty()) throw ConfigError(in.where() + ": empty task key");

    const auto statusLine = in.next();
    const auto [statusField, status] =
        statusLine ? splitField(*statusLine)
                   : std::pair<std::string_view, std::string_view>{};
    if (!statusLine || statusField != "status")
      throw ConfigError(in.where() + ": task '" + key +
                        "' truncated before status");

    // Collect the record's fields up to the "end" marker.
    std::map<std::string, std::string> fields;
    bool ended = false;
    for (auto rec = in.next(); rec; rec = in.next()) {
      if (*rec == "end") {
        ended = true;
        break;
      }
      const auto [f, r] = splitField(*rec);
      if (f == "task" || f.empty())
        throw ConfigError(in.where() + ": task '" + key +
                          "' missing its 'end' marker");
      if (!fields.emplace(std::string(f), std::string(r)).second)
        throw ConfigError(in.where() + ": duplicate field '" +
                          std::string(f) + "' in task '" + key + "'");
    }
    if (!ended)
      throw ConfigError("checkpoint '" + origin + "': task '" + key +
                        "' truncated (no 'end' marker)");

    const auto need = [&](const char* f) -> const std::string& {
      const auto it = fields.find(f);
      if (it == fields.end())
        throw ConfigError("checkpoint '" + origin + "': task '" + key +
                          "' missing field '" + f + "'");
      return it->second;
    };
    const auto ctx = [&](const char* f) {
      return "checkpoint '" + origin + "' task '" + key + "' field '" +
             std::string(f) + "'";
    };
    const auto knownOnly = [&](std::initializer_list<const char*> known) {
      for (const auto& [f, r] : fields) {
        bool ok = false;
        for (const char* k : known) ok = ok || f == k;
        if (!ok)
          throw ConfigError("checkpoint '" + origin + "': task '" + key +
                            "' has unknown field '" + f + "'");
      }
    };
    if (ck.completed.count(key) || ck.inFlight.count(key) ||
        ck.inFlightNm.count(key))
      throw ConfigError("checkpoint '" + origin + "': duplicate task '" +
                        key + "'");

    if (status == "done") {
      knownOnly({"hypothesis", "model", "classOmegas", "lnL", "params",
                 "branchLengths", "iterations", "functionEvaluations",
                 "gradientEvaluations", "gradientMode", "simd", "backend",
                 "expm", "converged"});
      FitResult fit;
      fit.hypothesis = parseHypothesis(need("hypothesis"), ctx("hypothesis"));
      // Optional: absent for branch-site fits (the pre-model-spec format).
      if (const auto it = fields.find("model"); it != fields.end()) {
        if (it->second == "branch")
          fit.modelKind = model::ModelKind::Branch;
        else if (it->second == "clade-c")
          fit.modelKind = model::ModelKind::CladeC;
        else if (it->second == "branch-site")
          fit.modelKind = model::ModelKind::BranchSite;
        else
          throw ConfigError(ctx("model") + ": unknown model kind '" +
                            it->second + "'");
      }
      if (const auto it = fields.find("classOmegas"); it != fields.end())
        fit.classOmegas = parseDoubles(it->second, ctx("classOmegas"));
      fit.lnL = parseHexDouble(need("lnL"), ctx("lnL"));
      const auto p = parseDoubles(need("params"), ctx("params"));
      if (p.size() != 5)
        throw ConfigError(ctx("params") + ": expected 5 values, got " +
                          std::to_string(p.size()));
      fit.params.kappa = p[0];
      fit.params.omega0 = p[1];
      fit.params.omega2 = p[2];
      fit.params.p0 = p[3];
      fit.params.p1 = p[4];
      fit.branchLengths = parseDoubles(need("branchLengths"),
                                       ctx("branchLengths"));
      fit.iterations = parseIntField(need("iterations"), ctx("iterations"));
      fit.functionEvaluations = parseLong(need("functionEvaluations"),
                                          ctx("functionEvaluations"));
      fit.gradientEvaluations = parseLong(need("gradientEvaluations"),
                                          ctx("gradientEvaluations"));
      fit.gradientMode = parseGradientMode(need("gradientMode"),
                                           ctx("gradientMode"));
      fit.simd = parseSimdLevel(need("simd"), ctx("simd"));
      // Fields introduced with the backend subsystem.  Optional on parse:
      // hand-written fixtures and the hash pin (which covers the resolved
      // backend/expm) keep compatibility honest either way.
      if (const auto it = fields.find("backend"); it != fields.end())
        fit.backend = parseBackendKindField(it->second, ctx("backend"));
      if (const auto it = fields.find("expm"); it != fields.end())
        fit.expm = parseExpmField(it->second, ctx("expm"));
      fit.converged = parseLong(need("converged"), ctx("converged")) != 0;
      ck.completed.emplace(key, std::move(fit));
    } else if (status == "bfgs") {
      knownOnly({"x", "value", "grad", "hInv", "iterations",
                 "functionEvaluations", "gradientEvaluations",
                 "gradientSweeps", "analyticCoordinates", "slowProgress"});
      opt::BfgsState st;
      st.x = parseDoubles(need("x"), ctx("x"));
      st.value = parseHexDouble(need("value"), ctx("value"));
      st.grad = parseDoubles(need("grad"), ctx("grad"));
      st.hInv = parseDoubles(need("hInv"), ctx("hInv"));
      const std::size_t n = st.x.size();
      if (n == 0 || st.grad.size() != n || st.hInv.size() != n * n)
        throw ConfigError("checkpoint '" + origin + "': task '" + key +
                          "' has inconsistent state dimensions (x " +
                          std::to_string(n) + ", grad " +
                          std::to_string(st.grad.size()) + ", hInv " +
                          std::to_string(st.hInv.size()) + ")");
      st.iterations = parseIntField(need("iterations"), ctx("iterations"));
      st.functionEvaluations = parseLong(need("functionEvaluations"),
                                         ctx("functionEvaluations"));
      st.gradientEvaluations = parseLong(need("gradientEvaluations"),
                                         ctx("gradientEvaluations"));
      st.gradientSweeps = parseLong(need("gradientSweeps"),
                                    ctx("gradientSweeps"));
      st.analyticCoordinates = parseIntField(need("analyticCoordinates"),
                                             ctx("analyticCoordinates"));
      st.slowProgress = parseIntField(need("slowProgress"),
                                      ctx("slowProgress"));
      ck.inFlight.emplace(key, std::move(st));
    } else if (status == "nm") {
      knownOnly({"dim", "vertices", "fv", "iterations",
                 "functionEvaluations"});
      opt::NelderMeadState st;
      // The dimension is bounded before any arithmetic touches it: with an
      // unbounded corruption-controlled value, n + 1 alone would already be
      // signed-overflow UB for LONG_MAX.
      const long dim = parseLong(need("dim"), ctx("dim"));
      constexpr long kMaxDim = 1 << 20;
      if (dim <= 0 || dim > kMaxDim)
        throw ConfigError(ctx("dim") + ": implausible simplex dimension " +
                          std::to_string(dim));
      const std::size_t n = static_cast<std::size_t>(dim);
      const auto flat = parseDoubles(need("vertices"), ctx("vertices"));
      st.fv = parseDoubles(need("fv"), ctx("fv"));
      if (flat.size() != (n + 1) * n || st.fv.size() != n + 1)
        throw ConfigError("checkpoint '" + origin + "': task '" + key +
                          "' has inconsistent simplex dimensions (dim " +
                          std::to_string(dim) + ", vertices " +
                          std::to_string(flat.size()) + ", fv " +
                          std::to_string(st.fv.size()) + ")");
      st.vertex.assign(n + 1, std::vector<double>(n));
      for (std::size_t v = 0; v <= n; ++v)
        for (std::size_t i = 0; i < n; ++i) st.vertex[v][i] = flat[v * n + i];
      st.iterations = parseIntField(need("iterations"), ctx("iterations"));
      st.functionEvaluations = parseLong(need("functionEvaluations"),
                                         ctx("functionEvaluations"));
      ck.inFlightNm.emplace(key, std::move(st));
    } else {
      throw ConfigError("checkpoint '" + origin + "': task '" + key +
                        "' has unknown status '" + std::string(status) + "'");
    }
  }
  return ck;
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good())
    throw ConfigError("cannot open checkpoint file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), path);
}

void Checkpoint::save(const std::string& path) const {
  support::writeFileAtomic(path, serialize());
}

// ---------- config hash ----------

std::uint64_t checkpointConfigHash(const Config& config) {
  // Canonical description of everything trajectory-shaping.  Doubles are
  // hex-formatted so the hash keys exact bits.  Deliberately excluded:
  // threads, blockSize, cachePropagators, parallel policy (proven
  // bit-neutral by the engine's invariance tests) and output paths.
  std::string s;
  const auto add = [&s](std::string_view k, std::string_view v) {
    s.append(k);
    s.push_back('=');
    s.append(v);
    s.push_back('\n');
  };
  const auto addD = [&](std::string_view k, double v) { add(k, hexDouble(v)); };

  add("analysis", analysisKindName(config.analysis));
  // Gated on non-empty so every pre-scan checkpoint hash is unchanged; the
  // selector shapes the task list (trees and task keys), so a resumed scan
  // must have been written under the same one.
  if (!config.foreground.empty()) add("foreground", config.foreground);
  add("engine", engineName(config.engine));
  add("frequencyModel",
      std::to_string(static_cast<int>(config.fit.frequencyModel)));
  const auto& b = config.fit.bfgs;
  add("maxIterations", std::to_string(b.maxIterations));
  addD("gradTolerance", b.gradTolerance);
  addD("fTolerance", b.fTolerance);
  addD("fdStep", b.fdStep);
  add("centralDifferences", b.centralDifferences ? "1" : "0");
  add("maxLineSearchSteps", std::to_string(b.maxLineSearchSteps));
  addD("armijoC1", b.armijoC1);
  const auto& p = config.fit.initialParams;
  addD("kappa", p.kappa);
  addD("omega0", p.omega0);
  addD("omega2", p.omega2);
  addD("p0", p.p0);
  addD("p1", p.p1);
  add("useTreeBranchLengths", config.fit.useTreeBranchLengths ? "1" : "0");
  addD("initialBranchLength", config.fit.initialBranchLength);
  add("seed", std::to_string(config.fit.startJitterSeed));
  add("gradient", gradientModeName(config.fit.tuning.gradient));
  // The *resolved* level: a checkpoint written under `simd = auto` on an
  // AVX-512 host must not silently continue with different arithmetic on an
  // AVX2 host — the hash mismatch turns that into a keyed refusal.
  add("simd", linalg::simdLevelName(
                  linalg::resolveSimdLevel(config.fit.tuning.simd)));
  // Same for the compute backend and propagator builder: `backend = auto`
  // resolves per host capability, and the kernels' summation orders differ
  // across backends — a resumed trajectory must replay the same arithmetic.
  add("backend",
      backend::backendKindName(backend::resolveBackendKind(
          config.fit.tuning.backend,
          linalg::resolveSimdLevel(config.fit.tuning.simd))));
  add("expm", backend::expmAlgorithmName(config.fit.tuning.expm));
  add("cleandata", config.stopCodonsAsMissing ? "1" : "0");
  // Input files are hashed by path AND content: a pipeline that regenerates
  // an alignment in place between crash and resume must get the keyed
  // refusal, not a trajectory restored onto a different likelihood surface.
  // An unreadable file contributes a marker (the run will fail loudly at
  // load time anyway).
  const auto addFile = [&](std::string_view k, const std::string& file) {
    add(k, file);
    std::ifstream in(file, std::ios::binary);
    if (!in.good()) {
      add(k, "<unreadable>");
      return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    add(k, buf.str());
  };
  for (const auto& f : config.seqfiles) addFile("seqfile", f);
  addFile("treefile", config.treefile);

  // FNV-1a 64.
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// ---------- CheckpointManager ----------

CheckpointManager::CheckpointManager(std::string path, double everySeconds,
                                     std::uint64_t configHash)
    : path_(std::move(path)), everySeconds_(everySeconds) {
  SLIM_REQUIRE(!path_.empty(), "CheckpointManager: empty checkpoint path");
  data_.configHash = configHash;
}

std::unique_ptr<CheckpointManager> CheckpointManager::open(
    std::string path, double everySeconds, std::uint64_t configHash,
    bool resume) {
  auto mgr = std::make_unique<CheckpointManager>(path, everySeconds,
                                                 configHash);
  if (!resume) return mgr;
  // Only a genuinely *absent* file falls back to a fresh run.  A checkpoint
  // that exists but cannot be opened (permissions, a flaky mount) must not
  // be silently discarded and then overwritten — Checkpoint::load throws
  // its keyed "cannot open" error instead.
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) && !ec)
    return mgr;  // nothing to resume yet: fresh run
  Checkpoint loaded = Checkpoint::load(path);
  if (loaded.configHash != configHash)
    throw ConfigError(
        "checkpoint '" + path + "': configHash mismatch (file " +
        hexU64(loaded.configHash) + ", current configuration " +
        hexU64(configHash) +
        ") — the run configuration changed since this checkpoint was "
        "written; refusing to resume a different trajectory");
  {
    support::MutexLock lock(mgr->mutex_);
    mgr->data_ = std::move(loaded);
  }
  mgr->resumed_ = true;
  return mgr;
}

std::optional<FitResult> CheckpointManager::completedFit(
    const std::string& key) const {
  support::MutexLock lock(mutex_);
  const auto it = data_.completed.find(key);
  if (it == data_.completed.end()) return std::nullopt;
  FitResult fit = it->second;
  fit.resumedFrom = path_;
  fit.iterationsReplayed = fit.iterations;
  return fit;
}

std::optional<opt::BfgsState> CheckpointManager::inFlightState(
    const std::string& key) const {
  support::MutexLock lock(mutex_);
  const auto it = data_.inFlight.find(key);
  if (it == data_.inFlight.end()) return std::nullopt;
  return it->second;
}

opt::BfgsCheckpointSink CheckpointManager::fitSink(const std::string& key) {
  return [this, key](const opt::BfgsState& state) {
    std::optional<Snapshot> snap;
    {
      support::MutexLock lock(mutex_);
      data_.inFlight[key] = state;
      const auto now = std::chrono::steady_clock::now();
      const bool throttled =
          wroteOnce_ && everySeconds_ > 0 &&
          std::chrono::duration<double>(now - lastWrite_).count() <
              everySeconds_;
      if (!throttled) snap = snapshotLocked();
    }
    if (snap) writeSnapshot(*snap);
  };
}

std::optional<opt::NelderMeadState> CheckpointManager::nmState(
    const std::string& key) const {
  support::MutexLock lock(mutex_);
  const auto it = data_.inFlightNm.find(key);
  if (it == data_.inFlightNm.end()) return std::nullopt;
  return it->second;
}

opt::NelderMeadCheckpointSink CheckpointManager::nmSink(
    const std::string& key) {
  return [this, key](const opt::NelderMeadState& state) {
    std::optional<Snapshot> snap;
    {
      support::MutexLock lock(mutex_);
      data_.inFlightNm[key] = state;
      const auto now = std::chrono::steady_clock::now();
      const bool throttled =
          wroteOnce_ && everySeconds_ > 0 &&
          std::chrono::duration<double>(now - lastWrite_).count() <
              everySeconds_;
      if (!throttled) snap = snapshotLocked();
    }
    if (snap) writeSnapshot(*snap);
  };
}

void CheckpointManager::recordCompleted(const std::string& key,
                                        const FitResult& result) {
  Snapshot snap;
  {
    support::MutexLock lock(mutex_);
    FitResult persisted = result;
    // Provenance is per-process, not part of the task's identity on disk.
    persisted.resumedFrom.clear();
    persisted.iterationsReplayed = 0;
    data_.completed[key] = std::move(persisted);
    data_.inFlight.erase(key);
    data_.inFlightNm.erase(key);
    snap = snapshotLocked();  // completions always persist, never throttled
  }
  writeSnapshot(snap);
}

void CheckpointManager::flush() {
  Snapshot snap;
  {
    support::MutexLock lock(mutex_);
    snap = snapshotLocked();
  }
  writeSnapshot(snap);
}

CheckpointManager::Snapshot CheckpointManager::snapshotLocked() {
  Snapshot snap;
  snap.payload = data_.serialize();
  snap.seq = ++sequence_;
  lastWrite_ = std::chrono::steady_clock::now();
  wroteOnce_ = true;
  return snap;
}

void CheckpointManager::writeSnapshot(const Snapshot& snap) {
  support::MutexLock writeLock(writeMutex_);
  // A writer that captured an older image and lost the race to the file
  // mutex must not roll the on-disk checkpoint backwards (it could even
  // un-record a completed fit).
  if (snap.seq <= writtenSequence_) return;
  support::writeFileAtomic(path_, snap.payload);
  writtenSequence_ = snap.seq;
}

std::string fitTaskKey(int geneIndex, std::string_view geneName,
                       model::Hypothesis hypothesis) {
  std::string key = "g" + std::to_string(geneIndex) + ":";
  // Keys are embedded verbatim in the line-oriented format; a control
  // character in a gene name (a newline in a hostile filename) would
  // otherwise produce a checkpoint our own parser cannot load.  Identity is
  // carried by the index, so lossy sanitization here is safe.
  for (const char c : geneName)
    key.push_back(static_cast<unsigned char>(c) < 0x20 ? '_' : c);
  key += "/";
  key += model::hypothesisName(hypothesis);
  return key;
}

}  // namespace slim::core
