#include "core/context.hpp"

#include <chrono>
#include <cmath>

#include "core/objective.hpp"
#include "opt/transforms.hpp"
#include "sim/rng.hpp"
#include "support/parallel.hpp"
#include "support/require.hpp"

namespace slim::core {

using model::BranchSiteParams;
using model::Hypothesis;

AnalysisContext::AnalysisContext(seqio::CodonAlignment alignment,
                                 std::shared_ptr<const tree::Tree> tree,
                                 EngineKind engine, FitOptions options)
    : alignment_(std::move(alignment)),
      patterns_(seqio::compressPatterns(alignment_)),
      pi_(model::estimateCodonFrequencies(alignment_, options.frequencyModel)),
      tree_(std::move(tree)),
      engine_(engine),
      options_(std::move(options)),
      cache_(std::make_shared<lik::SharedPropagatorCache>()) {
  SLIM_REQUIRE(tree_ != nullptr, "AnalysisContext: null tree");
}

std::shared_ptr<const AnalysisContext> AnalysisContext::create(
    const seqio::CodonAlignment& alignment, const tree::Tree& tree,
    EngineKind engine, FitOptions options) {
  return std::make_shared<const AnalysisContext>(
      alignment, std::make_shared<const tree::Tree>(tree), engine,
      std::move(options));
}

std::shared_ptr<const AnalysisContext> AnalysisContext::create(
    seqio::CodonAlignment alignment, std::shared_ptr<const tree::Tree> tree,
    EngineKind engine, FitOptions options) {
  return std::make_shared<const AnalysisContext>(
      std::move(alignment), std::move(tree), engine, std::move(options));
}

std::shared_ptr<const AnalysisContext> AnalysisContext::withOptions(
    FitOptions options, bool sharePropagatorCache) const {
  SLIM_REQUIRE(options.frequencyModel == options_.frequencyModel,
               "AnalysisContext::withOptions: frequency model must match the "
               "original (pi would be stale)");
  // Member-wise copy deliberately skips the pattern compression and frequency
  // estimation the public constructor performs — that reuse is the point.
  auto clone = std::make_shared<AnalysisContext>(*this);
  clone->options_ = std::move(options);
  if (!sharePropagatorCache)
    clone->cache_ = std::make_shared<lik::SharedPropagatorCache>();
  return clone;
}

namespace {

/// Packing/unpacking of the optimization vector:
///   [ kappa~, omega0~, (omega2~ under H1), u, v, t~_1 .. t~_B ]
/// with log / logistic / simplex transforms (see opt/transforms.hpp).
class ParameterPacking {
 public:
  ParameterPacking(Hypothesis h, int numBranches)
      : h1_(h == Hypothesis::H1),
        numBranches_(numBranches),
        kappa_(opt::Transform::logAbove(0.0)),
        omega0_(opt::Transform::logistic(0.0, 1.0)),
        omega2_(opt::Transform::logAbove(1.0)),
        // Branch lengths bounded in (0, 50] expected substitutions per
        // codon, PAML's own bound; keeps line-search trial points sane.
        branch_(opt::Transform::logistic(0.0, 50.0)) {}

  int dim() const noexcept { return (h1_ ? 5 : 4) + numBranches_; }
  int branchOffset() const noexcept { return h1_ ? 5 : 4; }

  std::vector<double> pack(const BranchSiteParams& p,
                           std::span<const double> lengths) const {
    std::vector<double> x(dim());
    x[0] = kappa_.toInternal(p.kappa);
    x[1] = omega0_.toInternal(p.omega0);
    int at = 2;
    if (h1_) x[at++] = omega2_.toInternal(p.omega2);
    const auto [u, v] = opt::simplex2ToInternal(p.p0, p.p1);
    x[at++] = u;
    x[at++] = v;
    for (int k = 0; k < numBranches_; ++k)
      x[at + k] = branch_.toInternal(std::max(lengths[k], 1e-6));
    return x;
  }

  BranchSiteParams unpackParams(std::span<const double> x) const {
    BranchSiteParams p;
    p.kappa = kappa_.toExternal(x[0]);
    p.omega0 = omega0_.toExternal(x[1]);
    int at = 2;
    p.omega2 = h1_ ? omega2_.toExternal(x[at++]) : 1.0;
    const auto [p0, p1] = opt::simplex2ToExternal(x[at], x[at + 1]);
    p.p0 = p0;
    p.p1 = p1;
    return p;
  }

  double branchLength(std::span<const double> x, int k) const {
    return branch_.toExternal(x[branchOffset() + k]);
  }

  const opt::Transform& branchTransform() const noexcept { return branch_; }

 private:
  bool h1_;
  int numBranches_;
  opt::Transform kappa_, omega0_, omega2_, branch_;
};

/// One unpacked point of a branch / clade-model-C fit.
struct ScenarioPoint {
  double kappa = 2.0;
  double omega0 = 0.1;  ///< clade C conserved class; unused for branch
  double p0 = 0.45, p1 = 0.45;  ///< clade C proportions; unused for branch
  std::vector<double> classOmegas;  ///< per-branch-class (or shared) omegas
};

/// Packing for the non-branch-site scenarios.  Layouts:
///   branch   [ kappa~, w~_0 .. w~_{C-1}, t~_1 .. t~_B ]   (H0: one w~)
///   clade-c  [ kappa~, omega0~, w~_0 .. w~_{C-1}, u, v, t~_1 .. t~_B ]
/// with the same transforms as ParameterPacking where the parameter's
/// domain matches; class omegas are free positives (logAbove 0).
class ScenarioPacking {
 public:
  ScenarioPacking(const model::ModelSpec& spec, Hypothesis h, int numBranches)
      : cladeC_(spec.kind == model::ModelKind::CladeC),
        numClassOmegas_(spec.numClassOmegaParams(h)),
        numBranches_(numBranches),
        kappa_(opt::Transform::logAbove(0.0)),
        omega0_(opt::Transform::logistic(0.0, 1.0)),
        classOmega_(opt::Transform::logAbove(0.0)),
        branch_(opt::Transform::logistic(0.0, 50.0)) {}

  int omegaOffset() const noexcept { return cladeC_ ? 2 : 1; }
  int branchOffset() const noexcept {
    return omegaOffset() + numClassOmegas_ + (cladeC_ ? 2 : 0);
  }
  int dim() const noexcept { return branchOffset() + numBranches_; }

  std::vector<double> pack(const ScenarioPoint& p,
                           std::span<const double> lengths) const {
    std::vector<double> x(dim());
    x[0] = kappa_.toInternal(p.kappa);
    if (cladeC_) x[1] = omega0_.toInternal(p.omega0);
    for (int c = 0; c < numClassOmegas_; ++c)
      x[omegaOffset() + c] = classOmega_.toInternal(p.classOmegas[c]);
    if (cladeC_) {
      const auto [u, v] = opt::simplex2ToInternal(p.p0, p.p1);
      x[omegaOffset() + numClassOmegas_] = u;
      x[omegaOffset() + numClassOmegas_ + 1] = v;
    }
    for (int k = 0; k < numBranches_; ++k)
      x[branchOffset() + k] = branch_.toInternal(std::max(lengths[k], 1e-6));
    return x;
  }

  ScenarioPoint unpackPoint(std::span<const double> x) const {
    ScenarioPoint p;
    p.kappa = kappa_.toExternal(x[0]);
    if (cladeC_) p.omega0 = omega0_.toExternal(x[1]);
    p.classOmegas.resize(numClassOmegas_);
    for (int c = 0; c < numClassOmegas_; ++c)
      p.classOmegas[c] = classOmega_.toExternal(x[omegaOffset() + c]);
    if (cladeC_) {
      const auto [p0, p1] =
          opt::simplex2ToExternal(x[omegaOffset() + numClassOmegas_],
                                  x[omegaOffset() + numClassOmegas_ + 1]);
      p.p0 = p0;
      p.p1 = p1;
    }
    return p;
  }

  double branchLength(std::span<const double> x, int k) const {
    return branch_.toExternal(x[branchOffset() + k]);
  }

  const opt::Transform& branchTransform() const noexcept { return branch_; }

 private:
  bool cladeC_;
  int numClassOmegas_;
  int numBranches_;
  opt::Transform kappa_, omega0_, classOmega_, branch_;
};

model::MixtureSpec buildScenarioSpec(const bio::GeneticCode& gc,
                                     std::span<const double> pi,
                                     const model::ModelSpec& spec,
                                     const ScenarioPoint& p) {
  if (spec.kind == model::ModelKind::Branch)
    return model::buildBranchModelSpec(gc, pi, p.kappa, p.classOmegas);
  return model::buildCladeCSpec(gc, pi, p.kappa, p.omega0, p.p0, p.p1,
                                p.classOmegas);
}

/// fitHypothesis for the branch / clade-c kinds; mirrors the branch-site
/// body below with ScenarioPacking in place of ParameterPacking.
FitResult fitScenarioHypothesis(
    const AnalysisContext& context, Hypothesis hypothesis,
    const FitOptions& fitOptions, const lik::LikelihoodOptions& likOptions,
    std::shared_ptr<lik::PropagatorCacheShard> shard,
    const FitCheckpointHooks* checkpoint) {
  const auto t0 = std::chrono::steady_clock::now();
  const model::ModelSpec& spec = fitOptions.modelSpec;
  spec.validate();

  lik::BranchSiteLikelihood eval(context.alignment(), context.patterns(),
                                 context.pi(), context.tree(), hypothesis,
                                 likOptions, std::move(shard));
  if (!fitOptions.useTreeBranchLengths)
    eval.setAllBranchLengths(fitOptions.initialBranchLength);

  const int numBranches = eval.numBranches();
  const ScenarioPacking packing(spec, hypothesis, numBranches);

  ScenarioPoint start;
  start.kappa = fitOptions.initialParams.kappa;
  start.omega0 = fitOptions.initialParams.omega0;
  start.p0 = fitOptions.initialParams.p0;
  start.p1 = fitOptions.initialParams.p1;
  start.classOmegas.assign(
      static_cast<std::size_t>(spec.numClassOmegaParams(hypothesis)),
      fitOptions.initialParams.omega2);
  // For the branch model the background class starts conserved and the
  // marked classes divergent — the same roles omega0/omega2 play for
  // branch-site A.  Clade C's class omegas are all divergent (its conserved
  // class is the separate omega0 parameter), so they all start at omega2.
  if (spec.kind == model::ModelKind::Branch)
    start.classOmegas.front() = fitOptions.initialParams.omega0;
  std::vector<double> startLengths(numBranches);
  for (int k = 0; k < numBranches; ++k) startLengths[k] = eval.branchLength(k);

  if (fitOptions.startJitterSeed != 0) {
    sim::Rng rng(fitOptions.startJitterSeed);
    auto jitter = [&rng](double v) { return v * std::exp(rng.uniform(-0.1, 0.1)); };
    start.kappa = jitter(start.kappa);
    if (spec.kind == model::ModelKind::CladeC)
      start.omega0 = std::min(0.95, jitter(start.omega0));
    for (auto& w : start.classOmegas) w = jitter(w);
    for (auto& t : startLengths) t = jitter(std::max(t, 1e-3));
  }

  std::vector<double> x0 = packing.pack(start, startLengths);

  const GradientMode mode = fitOptions.tuning.gradient;
  const int fanWorkers = mode == GradientMode::FiniteDiff
                             ? 1
                             : support::resolveThreadCount(likOptions.numThreads);
  const bio::GeneticCode& gc = *context.alignment().code;
  LikelihoodObjective objective(
      eval, context.alignment(), context.patterns(), context.pi(),
      context.tree(), hypothesis, likOptions, mode, fitOptions.tuning.policy,
      fanWorkers,
      {packing.branchOffset(), numBranches, packing.branchTransform()},
      [&packing, &gc, &context, &spec, numBranches](
          lik::BranchSiteLikelihood& e,
          std::span<const double> x) -> model::MixtureSpec {
        const ScenarioPoint p = packing.unpackPoint(x);
        for (int k = 0; k < numBranches; ++k)
          e.setBranchLength(k, packing.branchLength(x, k));
        return buildScenarioSpec(gc, context.pi(), spec, p);
      });

  const opt::BfgsState* resumeState =
      checkpoint && checkpoint->resumeFrom ? &*checkpoint->resumeFrom
                                           : nullptr;
  const auto bfgsResult =
      opt::minimizeBfgs(objective, x0, fitOptions.bfgs,
                        checkpoint ? checkpoint->sink : opt::BfgsCheckpointSink{},
                        resumeState);

  FitResult r;
  r.hypothesis = hypothesis;
  r.modelKind = spec.kind;
  r.lnL = -bfgsResult.value;
  const ScenarioPoint best = packing.unpackPoint(bfgsResult.x);
  r.params.kappa = best.kappa;
  r.params.omega0 = best.omega0;
  r.params.p0 = best.p0;
  r.params.p1 = best.p1;
  r.classOmegas = best.classOmegas;
  r.branchLengths.resize(numBranches);
  for (int k = 0; k < numBranches; ++k)
    r.branchLengths[k] = packing.branchLength(bfgsResult.x, k);
  r.iterations = bfgsResult.iterations;
  r.functionEvaluations = bfgsResult.functionEvaluations;
  r.gradientEvaluations = bfgsResult.gradientEvaluations;
  r.gradientMode = mode;
  r.simd = eval.simdLevel();
  r.backend = eval.backendKind();
  r.expm = eval.expmAlgorithm();
  r.converged = bfgsResult.converged;
  r.cancelled = bfgsResult.cancelled;
  r.message = bfgsResult.message;
  r.counters = objective.counters();
  if (resumeState != nullptr) {
    r.resumedFrom = checkpoint->resumedFromPath;
    r.iterationsReplayed = resumeState->iterations;
  }
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

}  // namespace

FitResult fitHypothesis(const AnalysisContext& context, Hypothesis hypothesis,
                        const FitOptions& fitOptions,
                        const lik::LikelihoodOptions& likOptions,
                        std::shared_ptr<lik::PropagatorCacheShard> shard,
                        const FitCheckpointHooks* checkpoint) {
  if (fitOptions.modelSpec.kind != model::ModelKind::BranchSite)
    return fitScenarioHypothesis(context, hypothesis, fitOptions, likOptions,
                                 std::move(shard), checkpoint);
  const auto t0 = std::chrono::steady_clock::now();

  lik::BranchSiteLikelihood eval(context.alignment(), context.patterns(),
                                 context.pi(), context.tree(), hypothesis,
                                 likOptions, std::move(shard));
  if (!fitOptions.useTreeBranchLengths)
    eval.setAllBranchLengths(fitOptions.initialBranchLength);

  const int numBranches = eval.numBranches();
  const ParameterPacking packing(hypothesis, numBranches);

  BranchSiteParams start = fitOptions.initialParams;
  std::vector<double> startLengths(numBranches);
  for (int k = 0; k < numBranches; ++k) startLengths[k] = eval.branchLength(k);

  if (fitOptions.startJitterSeed != 0) {
    // CodeML-style randomized start: multiplicative jitter on every value.
    // The Rng is task-local, so concurrently-running fits never share
    // generator state and every scheduling order draws the same jitter.
    sim::Rng rng(fitOptions.startJitterSeed);
    auto jitter = [&rng](double v) { return v * std::exp(rng.uniform(-0.1, 0.1)); };
    start.kappa = jitter(start.kappa);
    start.omega0 = std::min(0.95, jitter(start.omega0));
    start.omega2 = 1.0 + jitter(start.omega2 - 1.0 + 0.1);
    for (auto& t : startLengths) t = jitter(std::max(t, 1e-3));
  }

  std::vector<double> x0 = packing.pack(start, startLengths);

  // The derivative-aware objective: value() on the fit's evaluator; FD probe
  // points fanned across single-threaded pool evaluators when the gradient
  // mode and policy allow; analytic branch derivatives under
  // GradientMode::Analytic.  The likelihood's thread budget doubles as the
  // coordinate fan-out width (a task-level scheduler above this fit passes
  // numThreads = 1, which also keeps the probe pool sequential — no nested
  // oversubscription).
  const GradientMode mode = fitOptions.tuning.gradient;
  const int fanWorkers = mode == GradientMode::FiniteDiff
                             ? 1
                             : support::resolveThreadCount(likOptions.numThreads);
  const bio::GeneticCode& gc = *context.alignment().code;
  LikelihoodObjective objective(
      eval, context.alignment(), context.patterns(), context.pi(),
      context.tree(), hypothesis, likOptions, mode, fitOptions.tuning.policy,
      fanWorkers,
      {packing.branchOffset(), numBranches, packing.branchTransform()},
      [&packing, &gc, &context, hypothesis, numBranches](
          lik::BranchSiteLikelihood& e,
          std::span<const double> x) -> model::MixtureSpec {
        const BranchSiteParams p = packing.unpackParams(x);
        p.validate(hypothesis);
        for (int k = 0; k < numBranches; ++k)
          e.setBranchLength(k, packing.branchLength(x, k));
        return model::buildModelASpec(gc, context.pi(), p, hypothesis);
      });

  // Checkpoint plumbing: the starting point is still packed above even on a
  // resume — its length fixes the optimization dimension (which the restored
  // state must match) — but the driver then restores the snapshot instead of
  // evaluating at x0, continuing the recorded trajectory bit for bit.
  const opt::BfgsState* resumeState =
      checkpoint && checkpoint->resumeFrom ? &*checkpoint->resumeFrom
                                           : nullptr;
  const auto bfgsResult =
      opt::minimizeBfgs(objective, x0, fitOptions.bfgs,
                        checkpoint ? checkpoint->sink : opt::BfgsCheckpointSink{},
                        resumeState);

  FitResult r;
  r.hypothesis = hypothesis;
  r.lnL = -bfgsResult.value;
  r.params = packing.unpackParams(bfgsResult.x);
  r.branchLengths.resize(numBranches);
  for (int k = 0; k < numBranches; ++k)
    r.branchLengths[k] = packing.branchLength(bfgsResult.x, k);
  r.iterations = bfgsResult.iterations;
  r.functionEvaluations = bfgsResult.functionEvaluations;
  r.gradientEvaluations = bfgsResult.gradientEvaluations;
  r.gradientMode = mode;
  r.simd = eval.simdLevel();
  r.backend = eval.backendKind();
  r.expm = eval.expmAlgorithm();
  r.converged = bfgsResult.converged;
  r.cancelled = bfgsResult.cancelled;
  r.message = bfgsResult.message;
  r.counters = objective.counters();
  if (resumeState != nullptr) {
    r.resumedFrom = checkpoint->resumedFromPath;
    r.iterationsReplayed = resumeState->iterations;
  }
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

lik::SiteClassPosteriors siteScanAtFit(
    const AnalysisContext& context, const FitResult& h1Fit,
    const lik::LikelihoodOptions& likOptions,
    std::shared_ptr<lik::PropagatorCacheShard> shard,
    lik::EvalCounters& scanCounters) {
  lik::BranchSiteLikelihood eval(context.alignment(), context.patterns(),
                                 context.pi(), context.tree(),
                                 h1Fit.hypothesis, likOptions,
                                 std::move(shard));
  // The fit may come from a checkpoint file rather than this process (the
  // parser cannot know the tree's branch count); a short vector here must
  // be a keyed error, not an out-of-bounds read.
  SLIM_REQUIRE(h1Fit.branchLengths.size() ==
                   static_cast<std::size_t>(eval.numBranches()),
               "site scan: fit has " +
                   std::to_string(h1Fit.branchLengths.size()) +
                   " branch lengths but the tree has " +
                   std::to_string(eval.numBranches()) +
                   " branches (stale or corrupted checkpoint?)");
  for (int k = 0; k < eval.numBranches(); ++k)
    eval.setBranchLength(k, h1Fit.branchLengths[k]);
  SLIM_REQUIRE(h1Fit.modelKind != model::ModelKind::Branch,
               "site scan is undefined for the branch model (no site "
               "mixture)");
  auto posteriors =
      h1Fit.modelKind == model::ModelKind::BranchSite
          ? eval.siteClassPosteriors(h1Fit.params)
          : eval.siteClassPosteriors(model::buildCladeCSpec(
                *context.alignment().code, context.pi(), h1Fit.params.kappa,
                h1Fit.params.omega0, h1Fit.params.p0, h1Fit.params.p1,
                h1Fit.classOmegas));
  scanCounters = eval.counters();
  return posteriors;
}

PositiveSelectionTest makePositiveSelectionTest(
    FitResult h0, FitResult h1, lik::SiteClassPosteriors posteriors,
    const lik::EvalCounters& scanCounters, double df) {
  PositiveSelectionTest test;
  test.h0 = std::move(h0);
  test.h1 = std::move(h1);
  test.lrt = stat::likelihoodRatioTest(test.h0.lnL, test.h1.lnL, df);
  test.posteriors = std::move(posteriors);
  test.totalSeconds = test.h0.seconds + test.h1.seconds;
  test.counters = test.h0.counters + test.h1.counters + scanCounters;
  return test;
}

}  // namespace slim::core
