#pragma once
// Every-branch (and compound branch-set) scans.
//
// A scan asks "which branch is under selection?" by refitting the same test
// once per candidate foreground: each BranchSet from the `foreground =`
// selector is marked as branch class 1 on an otherwise unmarked copy of the
// species tree, and every (gene x set) pair becomes one independent task of
// a single core::BatchAnalysis.  That buys the scan everything the batch
// layer already guarantees — bit-identical results across worker counts and
// parallel policies, deterministic counter merging, checkpoint/resume and
// cancellation — with task keys derived from the stable name
// "<gene>@<set>", so a SIGKILLed scan resumes past its completed sets.

#include <memory>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "tree/branch_classes.hpp"

namespace slim::core {

class ScanAnalysis {
 public:
  /// Resolve `selector` ("every-branch" or the semicolon/comma grammar of
  /// tree/branch_classes.hpp) against `tree` and build one foreground-marked
  /// tree per set.  options.fit.modelSpec must describe a two-branch-class
  /// model — the scan trees carry exactly classes {0, 1}.  Throws the
  /// selector's keyed std::invalid_argument on unknown labels or empty sets.
  ScanAnalysis(EngineKind engine, const tree::Tree& tree,
               const std::string& selector, BatchOptions options);

  /// Register a gene: expands into one batch task per branch set, named
  /// "<name>@<set>" (tasks are gene-major: all of gene 0's sets first).
  void addGene(const seqio::CodonAlignment& alignment, FitOptions geneOptions,
               const std::string& name);

  std::size_t numSets() const noexcept { return sets_.size(); }
  const std::vector<tree::BranchSet>& sets() const noexcept { return sets_; }
  std::size_t numTasks() const noexcept { return batch_.numGenes(); }
  /// Task names in task order ("<gene>@<set>").
  const std::vector<std::string>& taskNames() const noexcept {
    return taskNames_;
  }

  /// Run every (gene x set) test; results are indexed like taskNames().
  /// Bit-identical to running each set's BranchSiteAnalysis sequentially on
  /// the matching foreground-marked tree, for every worker count and policy.
  std::vector<PositiveSelectionTest> runAll() { return batch_.runAll(); }

  const lik::EvalCounters& totals() const noexcept { return batch_.totals(); }
  const BatchRunInfo& lastRun() const noexcept { return batch_.lastRun(); }
  const BatchAnalysis& batch() const noexcept { return batch_; }

 private:
  BatchAnalysis batch_;
  std::vector<tree::BranchSet> sets_;
  std::vector<std::shared_ptr<const tree::Tree>> trees_;
  std::vector<std::string> taskNames_;
};

}  // namespace slim::core
