#include "core/scheduler.hpp"

namespace slim::core {

TaskScheduler::TaskScheduler(int numWorkers)
    : workers_(support::resolveThreadCount(numWorkers)) {}

void TaskScheduler::run(int numTasks, ParallelPolicy policy,
                        const std::function<void(int)>& task) {
  if (numTasks <= 0) return;
  if (!useTaskLevel(numTasks, policy)) {
    for (int i = 0; i < numTasks; ++i) task(i);
    return;
  }
  if (!pool_) pool_ = std::make_unique<support::ThreadPool>(workers_);
  pool_->parallelFor(numTasks, [&task](int i, int /*worker*/) { task(i); });
}

}  // namespace slim::core
