#include "core/tuning_profile.hpp"

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "support/atomic_file.hpp"
#include "support/host_info.hpp"

namespace slim::core {

namespace {

constexpr const char* kMagic = "slimcodeml-tuning";

ParallelPolicy parsePolicy(std::string_view text, const std::string& context) {
  for (const auto p : {ParallelPolicy::Auto, ParallelPolicy::TaskLevel,
                       ParallelPolicy::PatternLevel})
    if (text == parallelPolicyName(p)) return p;
  throw ConfigError(context + ": unknown parallel policy '" +
                    std::string(text) + "'");
}

int parseIntField(std::string_view text, const std::string& context) {
  const std::string s{text};
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size() || v < -1 || v > 1 << 24)
    throw ConfigError(context + ": malformed integer '" + s + "'");
  return static_cast<int>(v);
}

/// Split "field rest-of-line" (field has no spaces; rest may).
std::pair<std::string_view, std::string_view> splitField(
    std::string_view line) {
  const auto sp = line.find(' ');
  if (sp == std::string_view::npos) return {line, {}};
  return {line.substr(0, sp), line.substr(sp + 1)};
}

}  // namespace

std::string TuningProfile::serialize() const {
  std::ostringstream os;
  os << kMagic << " v" << kVersion << '\n';
  os << "host " << host << '\n';
  os << "simdDetected " << simdDetected << '\n';
  os << "hardwareThreads " << hardwareThreads << '\n';
  os << "numThreads " << numThreads << '\n';
  os << "blockSize " << blockSize << '\n';
  os << "parallel " << parallelPolicyName(policy) << '\n';
  os << "simd " << linalg::simdModeName(simd) << '\n';
  os << "backend " << backend::backendModeName(backend) << '\n';
  os << "secondsPerEval " << hexDouble(secondsPerEval) << '\n';
  os << "end\n";
  return os.str();
}

TuningProfile TuningProfile::parse(std::string_view text,
                                   const std::string& origin) {
  std::istringstream in{std::string(text)};
  std::string line;
  int lineNo = 0;
  const auto where = [&] { return origin + " line " + std::to_string(lineNo); };

  if (!std::getline(in, line))
    throw ConfigError("tuning profile '" + origin + "': empty file");
  ++lineNo;
  {
    const auto [magic, version] = splitField(line);
    if (magic != kMagic)
      throw ConfigError(where() + ": not a slimcodeml tuning profile (bad "
                        "magic '" + std::string(magic) + "')");
    // v1 (pre-backend) profiles still load: they carry no `backend` line,
    // leaving the field at its Auto sentinel.
    if (version != "v1" && version != "v" + std::to_string(kVersion))
      throw ConfigError(where() + ": unsupported tuning-profile version '" +
                        std::string(version) + "' (this build reads v1..v" +
                        std::to_string(kVersion) + ")");
  }

  TuningProfile p;
  bool sawEnd = false;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    if (sawEnd)
      throw ConfigError(where() + ": content after 'end'");
    const auto [field, rest] = splitField(line);
    const std::string context = where() + " ('" + std::string(field) + "')";
    if (field == "host") {
      p.host = std::string(rest);
    } else if (field == "simdDetected") {
      p.simdDetected = std::string(rest);
    } else if (field == "hardwareThreads") {
      p.hardwareThreads = parseIntField(rest, context);
    } else if (field == "numThreads") {
      p.numThreads = parseIntField(rest, context);
    } else if (field == "blockSize") {
      p.blockSize = parseIntField(rest, context);
    } else if (field == "parallel") {
      p.policy = parsePolicy(rest, context);
    } else if (field == "simd") {
      if (!linalg::parseSimdMode(rest, p.simd))
        throw ConfigError(context + ": unknown simd mode '" +
                          std::string(rest) + "'");
    } else if (field == "backend") {
      if (!backend::parseBackendMode(rest, p.backend))
        throw ConfigError(context + ": unknown backend mode '" +
                          std::string(rest) + "'");
    } else if (field == "secondsPerEval") {
      p.secondsPerEval = parseHexDouble(rest, context);
    } else if (field == "end") {
      sawEnd = true;
    } else {
      throw ConfigError(where() + ": unknown field '" + std::string(field) +
                        "'");
    }
  }
  // A file cut off mid-write has no 'end' marker; the atomic writer makes
  // this impossible for save(), but profiles are also copied around by hand.
  if (!sawEnd)
    throw ConfigError("tuning profile '" + origin +
                      "': truncated (missing 'end')");
  if (p.host.empty())
    throw ConfigError("tuning profile '" + origin + "': missing host");
  return p;
}

TuningProfile TuningProfile::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good())
    throw ConfigError("cannot open tuning profile '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  TuningProfile p = parse(buffer.str(), path);

  const std::string here = support::hostName();
  if (p.host != here)
    throw ConfigError("tuning profile '" + path + "': measured on host '" +
                      p.host + "', this is '" + here +
                      "' — re-run slimcodeml-tune on this machine");
  if (p.simd != linalg::SimdMode::Auto) {
    // A profile pinning a SIMD level the running binary/CPU cannot execute
    // must refuse here with context, not at evaluator construction.
    const auto level = p.simd == linalg::SimdMode::Scalar
                           ? linalg::SimdLevel::Scalar
                       : p.simd == linalg::SimdMode::Avx2
                           ? linalg::SimdLevel::Avx2
                           : linalg::SimdLevel::Avx512;
    if (!linalg::simdLevelAvailable(level))
      throw ConfigError("tuning profile '" + path + "': tuned simd level '" +
                        std::string(linalg::simdModeName(p.simd)) +
                        "' is not available on this host — re-run "
                        "slimcodeml-tune");
  }
  if (p.backend != backend::BackendMode::Auto) {
    // Same guard for the compute backend: a profile tuned with BLAS on a
    // build that later dropped -DSLIM_WITH_BLAS must refuse loudly here.
    const auto kind = p.backend == backend::BackendMode::Reference
                          ? backend::BackendKind::Reference
                      : p.backend == backend::BackendMode::Simd
                          ? backend::BackendKind::Simd
                          : backend::BackendKind::Blas;
    if (!backend::backendAvailable(kind))
      throw ConfigError("tuning profile '" + path + "': tuned backend '" +
                        std::string(backend::backendModeName(p.backend)) +
                        "' is not available in this build — re-run "
                        "slimcodeml-tune");
  }
  return p;
}

void TuningProfile::save(const std::string& path) const {
  support::writeFileAtomic(path, serialize());
}

void TuningProfile::applyTo(LikelihoodTuning& tuning) const {
  if (tuning.numThreads < 0 && numThreads >= 0) tuning.numThreads = numThreads;
  if (tuning.blockSize < 0 && blockSize >= 0) tuning.blockSize = blockSize;
  if (tuning.policy == ParallelPolicy::Auto) tuning.policy = policy;
  if (tuning.simd == linalg::SimdMode::Auto) tuning.simd = simd;
  if (tuning.backend == backend::BackendMode::Auto) tuning.backend = backend;
}

std::string defaultTuningProfilePath() {
  if (const char* env = std::getenv("SLIMCODEML_TUNING"); env && *env)
    return env;
  return "slimcodeml.tuning";
}

}  // namespace slim::core
