#include "core/site_models.hpp"

#include <chrono>
#include <cmath>

#include "core/objective.hpp"
#include "opt/transforms.hpp"
#include "support/parallel.hpp"
#include "support/require.hpp"

namespace slim::core {

using model::Hypothesis;
using model::MixtureSpec;
using model::SiteModelParams;

namespace {

/// Optimization vector for site models:
///   M1a: [ kappa~, omega0~, p0~, t~_1..t~_B ]
///   M2a: [ kappa~, omega0~, omega2~, u, v, t~_1..t~_B ]
class SitePacking {
 public:
  SitePacking(SiteModel m, int numBranches)
      : m2a_(m == SiteModel::M2a),
        numBranches_(numBranches),
        kappa_(opt::Transform::logAbove(0.0)),
        omega0_(opt::Transform::logistic(0.0, 1.0)),
        omega2_(opt::Transform::logAbove(1.0)),
        p0_(opt::Transform::logistic(0.0, 1.0)),
        branch_(opt::Transform::logistic(0.0, 50.0)) {}

  int dim() const noexcept { return (m2a_ ? 5 : 3) + numBranches_; }
  int branchOffset() const noexcept { return m2a_ ? 5 : 3; }

  std::vector<double> pack(const SiteModelParams& p,
                           std::span<const double> lengths) const {
    std::vector<double> x(dim());
    x[0] = kappa_.toInternal(p.kappa);
    x[1] = omega0_.toInternal(p.omega0);
    if (m2a_) {
      x[2] = omega2_.toInternal(p.omega2);
      const auto [u, v] = opt::simplex2ToInternal(p.p0, p.p1);
      x[3] = u;
      x[4] = v;
    } else {
      x[2] = p0_.toInternal(p.p0);
    }
    for (int k = 0; k < numBranches_; ++k)
      x[branchOffset() + k] = branch_.toInternal(std::max(lengths[k], 1e-6));
    return x;
  }

  SiteModelParams unpackParams(std::span<const double> x) const {
    SiteModelParams p;
    p.kappa = kappa_.toExternal(x[0]);
    p.omega0 = omega0_.toExternal(x[1]);
    if (m2a_) {
      p.omega2 = omega2_.toExternal(x[2]);
      const auto [p0, p1] = opt::simplex2ToExternal(x[3], x[4]);
      p.p0 = p0;
      p.p1 = p1;
    } else {
      p.p0 = p0_.toExternal(x[2]);
      p.p1 = 1.0 - p.p0;
    }
    return p;
  }

  double branchLength(std::span<const double> x, int k) const {
    return branch_.toExternal(x[branchOffset() + k]);
  }

  const opt::Transform& branchTransform() const noexcept { return branch_; }

 private:
  bool m2a_;
  int numBranches_;
  opt::Transform kappa_, omega0_, omega2_, p0_, branch_;
};

MixtureSpec buildSpec(SiteModel m, const bio::GeneticCode& gc,
                      std::span<const double> pi, const SiteModelParams& p) {
  return m == SiteModel::M1a ? model::buildM1aSpec(gc, pi, p)
                             : model::buildM2aSpec(gc, pi, p);
}

}  // namespace

SiteModelAnalysis::SiteModelAnalysis(const seqio::CodonAlignment& alignment,
                                     const tree::Tree& tree, EngineKind engine,
                                     SiteModelFitOptions options)
    : alignment_(alignment),
      patterns_(seqio::compressPatterns(alignment)),
      // Site models are branch-homogeneous: marks (or their absence) are
      // irrelevant, and the evaluator no longer demands one.
      tree_(tree),
      engine_(engine),
      options_(options) {
  pi_ = model::estimateCodonFrequencies(alignment_, options_.frequencyModel);
}

SiteModelFitResult SiteModelAnalysis::fit(SiteModel m) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto& gc = *alignment_.code;

  // Hypothesis tag is irrelevant for the generic mixture path.
  const auto likOptions = resolvedEngineOptions(engine_, options_.tuning);
  lik::BranchSiteLikelihood eval(alignment_, patterns_, pi_, tree_,
                                 Hypothesis::H1, likOptions);

  const int numBranches = eval.numBranches();
  const SitePacking packing(m, numBranches);
  std::vector<double> startLengths(numBranches);
  for (int k = 0; k < numBranches; ++k) startLengths[k] = eval.branchLength(k);
  const auto x0 = packing.pack(options_.initialParams, startLengths);

  // Same derivative-aware objective as fitHypothesis, with the site-model
  // packing and spec builder plugged into the prepare hook.
  const GradientMode mode = options_.tuning.gradient;
  const int fanWorkers = mode == GradientMode::FiniteDiff
                             ? 1
                             : support::resolveThreadCount(likOptions.numThreads);
  LikelihoodObjective objective(
      eval, alignment_, patterns_, pi_, tree_, Hypothesis::H1, likOptions,
      mode, options_.tuning.policy, fanWorkers,
      {packing.branchOffset(), numBranches, packing.branchTransform()},
      [&packing, &gc, this, m, numBranches](
          lik::BranchSiteLikelihood& e,
          std::span<const double> x) -> model::MixtureSpec {
        const SiteModelParams p = packing.unpackParams(x);
        for (int k = 0; k < numBranches; ++k)
          e.setBranchLength(k, packing.branchLength(x, k));
        return buildSpec(m, gc, pi_, p);
      });

  const auto r = opt::minimizeBfgs(objective, x0, options_.bfgs);

  SiteModelFitResult out;
  out.model = m;
  out.lnL = -r.value;
  out.params = packing.unpackParams(r.x);
  out.branchLengths.resize(numBranches);
  for (int k = 0; k < numBranches; ++k)
    out.branchLengths[k] = packing.branchLength(r.x, k);
  out.iterations = r.iterations;
  out.functionEvaluations = r.functionEvaluations;
  out.gradientEvaluations = r.gradientEvaluations;
  out.gradientMode = mode;
  out.simd = eval.simdLevel();
  out.backend = eval.backendKind();
  out.converged = r.converged;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

SiteModelTest SiteModelAnalysis::run() {
  SiteModelTest test;
  test.m1a = fit(SiteModel::M1a);
  test.m2a = fit(SiteModel::M2a);
  test.lrt = stat::likelihoodRatioTest(test.m1a.lnL, test.m2a.lnL, /*df=*/2.0);

  lik::BranchSiteLikelihood eval(alignment_, patterns_, pi_, tree_,
                                 Hypothesis::H1,
                                 resolvedEngineOptions(engine_, options_.tuning));
  for (int k = 0; k < eval.numBranches(); ++k)
    eval.setBranchLength(k, test.m2a.branchLengths[k]);
  test.posteriors = eval.siteClassPosteriors(
      buildSpec(SiteModel::M2a, *alignment_.code, pi_, test.m2a.params));
  return test;
}

}  // namespace slim::core
