#pragma once
// Checkpoint/restart for long optimizations.
//
// SlimCodeML's target workload — thousands of H0/H1 branch-site fits on
// preemptible grid infrastructure (gcodeml's operating regime, PAPERS.md) —
// makes a killed `slimcodeml_main` routine, not exceptional.  This module
// persists enough state to continue, not restart, interrupted work:
//
//   * core::Checkpoint is the versioned on-disk format: a line-oriented,
//     self-describing text file whose doubles are C99 hex-float literals
//     ("%a"), so every value round-trips *bit-exactly*.  It holds, per fit
//     task, either the completed FitResult (resume skips the task outright)
//     or the in-flight opt::BfgsState (resume continues the recorded
//     trajectory — bit-identical to the uninterrupted run, because the
//     snapshot is the optimizer's entire state and the likelihood engine is
//     deterministic in its input bits).
//   * A config hash binds a checkpoint to the run configuration that
//     produced it.  Everything that shapes the optimization *trajectory*
//     (engine, model, initial values, seeds, optimizer settings, gradient
//     mode, resolved SIMD level, input files) is hashed; knobs proven
//     bit-neutral (threads, blockSize, cachePropagators, parallel policy)
//     are deliberately excluded, so a fit checkpointed on 1 core resumes on
//     32.  Version or hash mismatches refuse to resume with a keyed
//     ConfigError instead of silently computing garbage.
//   * CheckpointManager coordinates concurrent fit tasks (the batch
//     scheduler's fan-out): it owns the in-memory Checkpoint behind a
//     mutex, throttles persistence to one write per checkpointEverySec, and
//     every write is atomic (temp file + fsync + rename via
//     support::writeFileAtomic) — a SIGKILL at any instant leaves either
//     the previous or the new checkpoint on disk, never a truncated one.

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/context.hpp"
#include "opt/checkpoint.hpp"
#include "support/thread_safety.hpp"

namespace slim::core {

struct Config;  // core/config.hpp

/// Exact-bit double <-> text: C99 hex-float ("0x1.91eb851eb851fp+1"; also
/// "inf"/"nan").  parseHexDouble throws ConfigError on malformed text.
std::string hexDouble(double v);
double parseHexDouble(std::string_view text, const std::string& context);

/// The in-memory image of a checkpoint file.
struct Checkpoint {
  static constexpr int kVersion = 1;

  std::uint64_t configHash = 0;
  /// Finished fits by task key ("g<index>:<gene>/<H0|H1>"); loading one
  /// skips the fit entirely.  Engine counters and wall time are not
  /// persisted — they describe work done by the process that did it.
  std::map<std::string, FitResult> completed;
  /// Mid-fit optimizer snapshots by task key; loading one continues the
  /// trajectory from the recorded iteration.
  std::map<std::string, opt::BfgsState> inFlight;
  /// Same for Nelder-Mead-driven tasks; a key lives in at most one of the
  /// three maps.  No core fit path drives Nelder-Mead yet — this is the
  /// persistence seam for the planned derivative-free restart mode, pinned
  /// by tests so the format does not need a version bump when it lands.
  std::map<std::string, opt::NelderMeadState> inFlightNm;

  std::string serialize() const;
  /// Inverse of serialize.  Malformed or truncated text, an unknown format
  /// version, or an unknown field throws ConfigError naming `origin`, the
  /// offending line and the offending key.
  static Checkpoint parse(std::string_view text, const std::string& origin);

  static Checkpoint load(const std::string& path);
  void save(const std::string& path) const;  ///< Atomic (temp+fsync+rename).
};

/// Hash of everything that must match for a checkpointed trajectory to be
/// resumable under `config` (see the header comment for what is included
/// and what is deliberately not).  Input files are hashed by path *and
/// content* — an alignment regenerated in place between crash and resume
/// invalidates the checkpoint.  `simd = auto` hashes the level the mode
/// *resolves to on this host*, so resuming on a machine with different
/// vector units refuses loudly rather than continuing with different
/// arithmetic.
std::uint64_t checkpointConfigHash(const Config& config);

/// Thread-safe coordinator between a running analysis and its checkpoint
/// file.  One manager serves all fit tasks of a run; fitHypothesis gets its
/// per-task hooks from here (see FitCheckpointHooks in core/context.hpp).
class CheckpointManager {
 public:
  /// Fresh run: checkpoints go to `path` (first write creates/overwrites).
  /// everySeconds <= 0 persists on every optimizer iteration.
  CheckpointManager(std::string path, double everySeconds,
                    std::uint64_t configHash);

  /// `--resume`: when `path` exists, load it — format version and config
  /// hash must match or a keyed ConfigError is thrown; when it does not
  /// exist, fall back to a fresh run (so a crash-looped job can always be
  /// launched with --resume).
  static std::unique_ptr<CheckpointManager> open(std::string path,
                                                 double everySeconds,
                                                 std::uint64_t configHash,
                                                 bool resume);

  /// The completed fit recorded for `key`, with resume provenance filled in
  /// (resumedFrom = path(), iterationsReplayed = its iteration count).
  std::optional<FitResult> completedFit(const std::string& key) const;

  /// The in-flight optimizer state recorded for `key`.
  std::optional<opt::BfgsState> inFlightState(const std::string& key) const;

  /// Checkpoint sink for fit task `key`: records each snapshot and persists
  /// the whole checkpoint when the throttle allows.  Safe to call from
  /// concurrently running tasks.
  opt::BfgsCheckpointSink fitSink(const std::string& key);

  /// Nelder-Mead counterparts of inFlightState / fitSink.
  std::optional<opt::NelderMeadState> nmState(const std::string& key) const;
  opt::NelderMeadCheckpointSink nmSink(const std::string& key);

  /// Record a finished fit (dropping any in-flight state for `key`) and
  /// persist immediately — completion must never be lost to the throttle.
  void recordCompleted(const std::string& key, const FitResult& result);

  /// Persist the current state unconditionally.
  void flush();

  const std::string& path() const noexcept { return path_; }
  /// True when open() actually loaded state from an existing file.
  bool resumedFromFile() const noexcept { return resumed_; }

 private:
  /// One serialized checkpoint image plus its position in the write order.
  /// Persistence is split in two so each half is annotatable: snapshotLocked
  /// serializes under the data mutex, writeSnapshot does the disk I/O
  /// outside it — concurrently fitting tasks must not stall behind an fsync.
  struct Snapshot {
    std::string payload;
    std::uint64_t seq = 0;
  };

  /// Serialize the current state, stamp the write throttle, and take the
  /// next sequence number.  Caller holds mutex_.
  Snapshot snapshotLocked() SLIM_REQUIRES(mutex_);

  /// Atomically write `snap` to path_ unless a newer image already landed
  /// (the sequence number keeps a slow writer from publishing an older image
  /// over a newer one).  Must be called with mutex_ released.
  void writeSnapshot(const Snapshot& snap) SLIM_EXCLUDES(mutex_);

  std::string path_;
  double everySeconds_;
  bool resumed_ = false;
  mutable support::Mutex mutex_;
  Checkpoint data_ SLIM_GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point lastWrite_ SLIM_GUARDED_BY(mutex_);
  bool wroteOnce_ SLIM_GUARDED_BY(mutex_) = false;
  std::uint64_t sequence_ SLIM_GUARDED_BY(mutex_) = 0;
  /// Serializes file writes; never held together with mutex_ (snapshot
  /// under mutex_, release, then write under writeMutex_).
  support::Mutex writeMutex_;
  std::uint64_t writtenSequence_ SLIM_GUARDED_BY(writeMutex_) = 0;
};

/// Canonical checkpoint key of one fit task.  The gene index pins identity
/// even when two input files share a stem ("a.fasta" and "a.phy"); indices
/// are stable because batch directories are enumerated in sorted order.
/// Control characters in the name are replaced with '_' so the key can
/// never corrupt the line-oriented file format.
std::string fitTaskKey(int geneIndex, std::string_view geneName,
                       model::Hypothesis hypothesis);

}  // namespace slim::core
