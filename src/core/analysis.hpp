#pragma once
// Top-level public API: fit branch-site model A under H0 and H1 by maximum
// likelihood, perform the likelihood-ratio test for positive selection on
// the marked foreground branch, and report per-site posterior probabilities
// (the full CodeML branch-site workflow of paper Sec. I-A).

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "lik/branch_site_likelihood.hpp"
#include "model/branch_site.hpp"
#include "model/frequencies.hpp"
#include "opt/bfgs.hpp"
#include "seqio/alignment.hpp"
#include "stat/lrt.hpp"
#include "tree/tree.hpp"

namespace slim::core {

struct FitOptions {
  /// Equilibrium frequency estimator (Selectome/CodeML default: F3x4).
  model::CodonFrequencyModel frequencyModel = model::CodonFrequencyModel::F3x4;
  /// Optimizer controls; maxIterations is the paper's "iterations" column.
  opt::BfgsOptions bfgs{};
  /// Starting substitution parameters.
  model::BranchSiteParams initialParams{};
  /// When false, every branch starts at initialBranchLength instead of the
  /// lengths carried by the input tree.
  bool useTreeBranchLengths = true;
  double initialBranchLength = 0.1;
  /// Non-zero: multiplicatively jitter the starting parameter values with
  /// this seed (CodeML's randomized initial values; the paper fixes the seed
  /// "to generate comparable and reproducible results").
  std::uint64_t startJitterSeed = 0;
  /// Likelihood-engine tuning layered on top of the engine preset.
  LikelihoodTuning tuning{};
};

struct FitResult {
  model::Hypothesis hypothesis = model::Hypothesis::H0;
  double lnL = 0;
  model::BranchSiteParams params;
  std::vector<double> branchLengths;  ///< Post-order branch order.
  int iterations = 0;
  long functionEvaluations = 0;
  bool converged = false;
  double seconds = 0;
  lik::EvalCounters counters;
};

/// Output of the full H0-vs-H1 test.
struct PositiveSelectionTest {
  FitResult h0;
  FitResult h1;
  stat::LrtResult lrt;
  /// NEB posteriors at the H1 maximum (meaningful when the LRT rejects H0).
  lik::SiteClassPosteriors posteriors;
  double totalSeconds = 0;
};

class BranchSiteAnalysis {
 public:
  /// The tree must carry exactly one #1 foreground mark; its leaf labels
  /// must match the alignment sequence names.
  BranchSiteAnalysis(const seqio::CodonAlignment& alignment,
                     const tree::Tree& tree, EngineKind engine,
                     FitOptions options = {});

  /// Maximize ln L under one hypothesis.
  FitResult fit(model::Hypothesis hypothesis);

  /// Fit both hypotheses, run the LRT and the NEB site scan.
  PositiveSelectionTest run();

  const std::vector<double>& pi() const noexcept { return pi_; }
  const seqio::SitePatterns& patterns() const noexcept { return patterns_; }
  EngineKind engine() const noexcept { return engine_; }
  const FitOptions& options() const noexcept { return options_; }

 private:
  seqio::CodonAlignment alignment_;
  seqio::SitePatterns patterns_;
  std::vector<double> pi_;
  tree::Tree tree_;
  EngineKind engine_;
  FitOptions options_;
};

}  // namespace slim::core
