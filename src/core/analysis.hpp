#pragma once
// Top-level single-gene public API: fit branch-site model A under H0 and H1
// by maximum likelihood, perform the likelihood-ratio test for positive
// selection on the marked foreground branch, and report per-site posterior
// probabilities (the full CodeML branch-site workflow of paper Sec. I-A).
//
// BranchSiteAnalysis is a thin wrapper over the shared-context machinery of
// core/context.hpp: it owns one AnalysisContext and drives the same
// fitHypothesis / siteScanAtFit code path that core::BatchAnalysis fans
// across a TaskScheduler — which is why a batch run and N sequential runs
// produce bit-identical results.  FitOptions, FitResult and
// PositiveSelectionTest live in context.hpp and are re-exported here.

#include "core/context.hpp"
#include "core/engine.hpp"

namespace slim::core {

class BranchSiteAnalysis {
 public:
  /// The tree's #k marks are its branch classes (branch-heterogeneous
  /// models need at least one marked branch); its leaf labels must match
  /// the alignment sequence names.
  BranchSiteAnalysis(const seqio::CodonAlignment& alignment,
                     const tree::Tree& tree, EngineKind engine,
                     FitOptions options = {});

  /// Wrap an existing shared context (the batch / multi-gene path).
  explicit BranchSiteAnalysis(std::shared_ptr<const AnalysisContext> context);

  /// Maximize ln L under one hypothesis.
  FitResult fit(model::Hypothesis hypothesis);

  /// Fit both hypotheses, run the LRT and the NEB site scan.
  PositiveSelectionTest run();

  const std::vector<double>& pi() const noexcept { return context_->pi(); }
  const seqio::SitePatterns& patterns() const noexcept {
    return context_->patterns();
  }
  EngineKind engine() const noexcept { return context_->engine(); }
  const FitOptions& options() const noexcept { return context_->options(); }

  const AnalysisContext& context() const noexcept { return *context_; }
  const std::shared_ptr<const AnalysisContext>& contextPtr() const noexcept {
    return context_;
  }

 private:
  std::shared_ptr<const AnalysisContext> context_;
};

}  // namespace slim::core
