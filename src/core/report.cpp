#include "core/report.hpp"

#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/json.hpp"
#include "support/require.hpp"

namespace slim::core {

void writeFitReport(std::ostream& os, const FitResult& fit) {
  os << "  " << model::hypothesisName(fit.hypothesis)
     << ": lnL = " << std::fixed << std::setprecision(6) << fit.lnL
     << std::defaultfloat << '\n'
     << "    kappa  = " << fit.params.kappa << '\n';
  // The branch model has no omega0 site class and no mixture proportions;
  // the other kinds keep the classic parameter block (byte-identical for
  // branch-site, whose classOmegas is always empty).
  if (fit.modelKind != model::ModelKind::Branch)
    os << "    omega0 = " << fit.params.omega0 << '\n';
  if (fit.modelKind == model::ModelKind::BranchSite) {
    if (fit.hypothesis == model::Hypothesis::H1)
      os << "    omega2 = " << fit.params.omega2 << '\n';
  } else {
    os << (fit.modelKind == model::ModelKind::CladeC
               ? "    divergent omegas ="
               : "    class omegas =");
    for (const double w : fit.classOmegas) os << ' ' << w;
    os << '\n';
  }
  if (fit.modelKind != model::ModelKind::Branch)
    os << "    p0 = " << fit.params.p0 << ", p1 = " << fit.params.p1 << '\n';
  os
     << "    iterations = " << fit.iterations
     << ", function evaluations = " << fit.functionEvaluations << " + "
     << fit.gradientEvaluations << " gradient ("
     << gradientModeName(fit.gradientMode) << ')'
     << (fit.cancelled
             ? " (cancelled)"
             : fit.converged ? " (converged)" : " (iteration cap reached)")
     << '\n'
     << "    wall time = " << std::setprecision(3) << fit.seconds
     << " s, simd = " << linalg::simdLevelName(fit.simd)
     << ", backend = " << backend::backendKindName(fit.backend);
  if (fit.expm == backend::ExpmAlgorithm::Adaptive)
    os << ", expm = adaptive";
  os << '\n';
  if (!fit.resumedFrom.empty())
    os << "    resumed from " << fit.resumedFrom << " ("
       << fit.iterationsReplayed << " iterations replayed)\n";
}

void writeTestReport(std::ostream& os, const PositiveSelectionTest& test,
                     EngineKind engine, double siteThreshold) {
  const auto kind = test.h1.modelKind;
  if (kind == model::ModelKind::BranchSite)
    os << "Branch-site test for positive selection (" << engineName(engine)
       << " engine)\n";
  else if (kind == model::ModelKind::Branch)
    os << "Branch-model test, one omega per branch class ("
       << engineName(engine) << " engine)\n";
  else
    os << "Clade model C test vs M2a_rel (" << engineName(engine)
       << " engine)\n";
  writeFitReport(os, test.h0);
  writeFitReport(os, test.h1);
  os << "  LRT: 2*dlnL = " << std::setprecision(6) << test.lrt.statistic
     << ", p(chi2_" << static_cast<int>(test.lrt.df)
     << ") = " << test.lrt.pChi2;
  // The 50:50 mixture correction applies to the boundary case of the df = 1
  // branch-site test only.
  if (kind == model::ModelKind::BranchSite)
    os << ", p(mixture) = " << test.lrt.pMixture;
  os << '\n';
  if (test.lrt.significantAt(0.05))
    os << (kind == model::ModelKind::BranchSite
               ? "  => positive selection DETECTED on the foreground branch "
                 "(5% level)\n"
               : "  => branch-class omega heterogeneity DETECTED (5% "
                 "level)\n");
  else
    os << (kind == model::ModelKind::BranchSite
               ? "  => no significant evidence of positive selection (5% "
                 "level)\n"
               : "  => no significant branch-class omega heterogeneity (5% "
                 "level)\n");

  // The branch model has no site mixture — nothing to scan.
  if (kind == model::ModelKind::Branch) return;
  os << "  Sites with posterior P(positive selection) > " << siteThreshold
     << " (NEB):\n";
  bool any = false;
  const auto& bySite = test.posteriors.positiveSelectionBySite;
  for (std::size_t i = 0; i < bySite.size(); ++i) {
    if (bySite[i] > siteThreshold) {
      os << "    site " << (i + 1) << "  P = " << std::setprecision(4)
         << bySite[i] << '\n';
      any = true;
    }
  }
  if (!any) os << "    (none)\n";
}

std::string testReportString(const PositiveSelectionTest& test,
                             EngineKind engine, double siteThreshold) {
  std::ostringstream os;
  writeTestReport(os, test, engine, siteThreshold);
  return os.str();
}

namespace {

void writeSiteFit(std::ostream& os, const SiteModelFitResult& fit) {
  os << "  " << siteModelName(fit.model) << ": lnL = " << std::fixed
     << std::setprecision(6) << fit.lnL << std::defaultfloat << '\n'
     << "    kappa  = " << fit.params.kappa << '\n'
     << "    omega0 = " << fit.params.omega0 << '\n';
  if (fit.model == SiteModel::M2a)
    os << "    omega2 = " << fit.params.omega2 << '\n';
  os << "    p0 = " << fit.params.p0 << ", p1 = " << fit.params.p1 << '\n'
     << "    iterations = " << fit.iterations
     << (fit.converged ? " (converged)" : " (iteration cap reached)")
     << ", simd = " << linalg::simdLevelName(fit.simd)
     << ", backend = " << backend::backendKindName(fit.backend) << '\n';
}

}  // namespace

void writeSiteModelReport(std::ostream& os, const SiteModelTest& test,
                          EngineKind engine, double siteThreshold) {
  os << "Site-model test for positive selection, M1a vs M2a ("
     << engineName(engine) << " engine)\n";
  writeSiteFit(os, test.m1a);
  writeSiteFit(os, test.m2a);
  os << "  LRT: 2*dlnL = " << std::setprecision(6) << test.lrt.statistic
     << ", p(chi2_2) = " << test.lrt.pChi2 << '\n';
  if (test.lrt.significantAt(0.05))
    os << "  => positive selection DETECTED across the gene (5% level)\n";
  else
    os << "  => no significant evidence of positive selection (5% level)\n";
  os << "  Sites with posterior P(omega2 class) > " << siteThreshold
     << " (NEB):\n";
  bool any = false;
  for (std::size_t i = 0; i < test.posteriors.positiveSelectionBySite.size();
       ++i) {
    if (test.posteriors.positiveSelectionBySite[i] > siteThreshold) {
      os << "    site " << (i + 1) << "  P = " << std::setprecision(4)
         << test.posteriors.positiveSelectionBySite[i] << '\n';
      any = true;
    }
  }
  if (!any) os << "    (none)\n";
}

void writeBatchSummary(std::ostream& os,
                       const std::vector<PositiveSelectionTest>& tests,
                       const std::vector<std::string>& geneNames,
                       EngineKind engine, const lik::EvalCounters& totals,
                       const BatchRunInfo& info) {
  SLIM_REQUIRE(tests.size() == geneNames.size(),
               "writeBatchSummary: tests/geneNames size mismatch");
  os << "Batch summary (" << engineName(engine) << " engine, " << tests.size()
     << " genes, " << info.workers << " workers, "
     << (info.taskLevel ? "task" : "pattern") << "-level parallelism, "
     << std::setprecision(3) << info.seconds << " s)\n";
  // All genes of one batch share one model spec, so one df heads the column
  // (df = 1 keeps the historical header bytes).
  const int df = tests.empty() ? 1 : static_cast<int>(tests.front().lrt.df);
  os << "  gene                 lnL0          lnL1          2*dlnL    p(chi2_"
     << df << ")  verdict\n";
  for (std::size_t g = 0; g < tests.size(); ++g) {
    const auto& t = tests[g];
    os << "  " << std::left << std::setw(18) << geneNames[g] << std::right
       << std::fixed << std::setw(14) << std::setprecision(4) << t.h0.lnL
       << std::setw(14) << t.h1.lnL << std::setw(10) << t.lrt.statistic
       << std::defaultfloat << std::setw(11) << std::setprecision(4)
       << t.lrt.pChi2 << "  "
       << (t.lrt.significantAt(0.05) ? "DETECTED" : "-") << '\n';
  }
  os << "  engine totals: " << totals.evaluations << " evaluations, "
     << totals.eigenDecompositions << " eigendecompositions, "
     << totals.propagatorBuilds << " propagator builds";
  if (totals.gradientSweeps > 0)
    os << ", " << totals.gradientSweeps << " gradient sweeps";
  if (totals.propagatorCacheHits + totals.propagatorCacheMisses > 0)
    os << ", cache " << totals.propagatorCacheHits << " hits / "
       << totals.propagatorCacheMisses << " misses";
  os << '\n';
}

// --- JSON ---

namespace {

// JSON primitives shared with every structured-report writer.
using support::jsonNumber;
using support::jsonString;

void jsonCounters(std::ostream& os, const lik::EvalCounters& c) {
  os << "{\"evaluations\":" << c.evaluations
     << ",\"eigenDecompositions\":" << c.eigenDecompositions
     << ",\"propagatorBuilds\":" << c.propagatorBuilds
     << ",\"patternPropagations\":" << c.patternPropagations
     << ",\"gradientSweeps\":" << c.gradientSweeps
     << ",\"cacheHits\":" << c.propagatorCacheHits
     << ",\"cacheMisses\":" << c.propagatorCacheMisses << '}';
}

void jsonFit(std::ostream& os, const FitResult& fit) {
  os << "{\"lnL\":";
  jsonNumber(os, fit.lnL);
  os << ",\"kappa\":";
  jsonNumber(os, fit.params.kappa);
  os << ",\"omega0\":";
  jsonNumber(os, fit.params.omega0);
  os << ",\"omega2\":";
  jsonNumber(os, fit.params.omega2);
  os << ",\"p0\":";
  jsonNumber(os, fit.params.p0);
  os << ",\"p1\":";
  jsonNumber(os, fit.params.p1);
  // Only non-branch-site fits carry the model name and per-class omegas:
  // branch-site JSON stays byte-identical to what earlier versions emitted.
  if (fit.modelKind != model::ModelKind::BranchSite) {
    os << ",\"model\":";
    jsonString(os, model::modelKindName(fit.modelKind));
    os << ",\"classOmegas\":[";
    for (std::size_t i = 0; i < fit.classOmegas.size(); ++i) {
      if (i) os << ',';
      jsonNumber(os, fit.classOmegas[i]);
    }
    os << ']';
  }
  os << ",\"iterations\":" << fit.iterations
     << ",\"functionEvaluations\":" << fit.functionEvaluations
     << ",\"gradientEvaluations\":" << fit.gradientEvaluations
     << ",\"gradientMode\":";
  jsonString(os, gradientModeName(fit.gradientMode));
  os << ",\"simd\":";
  jsonString(os, linalg::simdLevelName(fit.simd));
  os << ",\"backend\":";
  jsonString(os, backend::backendKindName(fit.backend));
  // Only adaptive-expm fits carry the key: an `expm = eigen` run's JSON
  // stays byte-identical to what earlier versions emitted modulo "backend".
  if (fit.expm == backend::ExpmAlgorithm::Adaptive)
    os << ",\"expm\":\"adaptive\"";
  os << ",\"converged\":" << (fit.converged ? "true" : "false");
  // Only cancelled fits carry the flag, keeping untouched runs' JSON
  // byte-identical to what earlier versions emitted.
  if (fit.cancelled) os << ",\"cancelled\":true";
  os << ",\"seconds\":";
  jsonNumber(os, fit.seconds);
  if (!fit.resumedFrom.empty()) {
    os << ",\"resumedFrom\":";
    jsonString(os, fit.resumedFrom);
    os << ",\"iterationsReplayed\":" << fit.iterationsReplayed;
  }
  os << ",\"counters\":";
  jsonCounters(os, fit.counters);
  os << '}';
}

void jsonTest(std::ostream& os, const PositiveSelectionTest& test,
              std::string_view geneName, double siteThreshold) {
  os << '{';
  if (!geneName.empty()) {
    os << "\"gene\":";
    jsonString(os, geneName);
    os << ',';
  }
  os << "\"h0\":";
  jsonFit(os, test.h0);
  os << ",\"h1\":";
  jsonFit(os, test.h1);
  os << ",\"lrt\":{\"statistic\":";
  jsonNumber(os, test.lrt.statistic);
  os << ",\"df\":";
  jsonNumber(os, test.lrt.df);
  os << ",\"pChi2\":";
  jsonNumber(os, test.lrt.pChi2);
  os << ",\"pMixture\":";
  jsonNumber(os, test.lrt.pMixture);
  os << ",\"significantAt05\":"
     << (test.lrt.significantAt(0.05) ? "true" : "false") << '}';
  os << ",\"positiveSites\":[";
  bool first = true;
  const auto& bySite = test.posteriors.positiveSelectionBySite;
  for (std::size_t i = 0; i < bySite.size(); ++i) {
    if (bySite[i] > siteThreshold) {
      if (!first) os << ',';
      first = false;
      os << "{\"site\":" << (i + 1) << ",\"posterior\":";
      jsonNumber(os, bySite[i]);
      os << '}';
    }
  }
  os << "],\"totalSeconds\":";
  jsonNumber(os, test.totalSeconds);
  os << ",\"counters\":";
  jsonCounters(os, test.counters);
  os << '}';
}

}  // namespace

void writeJsonTestReport(std::ostream& os, const PositiveSelectionTest& test,
                         EngineKind engine, std::string_view geneName,
                         double siteThreshold) {
  os << "{\"engine\":";
  jsonString(os, engineName(engine));
  os << ",\"test\":";
  jsonTest(os, test, geneName, siteThreshold);
  os << "}\n";
}

void writeJsonBatchReport(std::ostream& os,
                          const std::vector<PositiveSelectionTest>& tests,
                          const std::vector<std::string>& geneNames,
                          EngineKind engine, const lik::EvalCounters& totals,
                          const BatchRunInfo& info, double siteThreshold) {
  SLIM_REQUIRE(tests.size() == geneNames.size(),
               "writeJsonBatchReport: tests/geneNames size mismatch");
  os << "{\"engine\":";
  jsonString(os, engineName(engine));
  os << ",\"genes\":[";
  for (std::size_t g = 0; g < tests.size(); ++g) {
    if (g) os << ',';
    jsonTest(os, tests[g], geneNames[g], siteThreshold);
  }
  os << "],\"totals\":";
  jsonCounters(os, totals);
  os << ",\"batch\":{\"taskLevel\":" << (info.taskLevel ? "true" : "false")
     << ",\"workers\":" << info.workers << ",\"seconds\":";
  jsonNumber(os, info.seconds);
  os << "}}\n";
}

}  // namespace slim::core
