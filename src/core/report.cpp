#include "core/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace slim::core {

void writeFitReport(std::ostream& os, const FitResult& fit) {
  os << "  " << model::hypothesisName(fit.hypothesis)
     << ": lnL = " << std::fixed << std::setprecision(6) << fit.lnL
     << std::defaultfloat << '\n'
     << "    kappa  = " << fit.params.kappa << '\n'
     << "    omega0 = " << fit.params.omega0 << '\n';
  if (fit.hypothesis == model::Hypothesis::H1)
    os << "    omega2 = " << fit.params.omega2 << '\n';
  os << "    p0 = " << fit.params.p0 << ", p1 = " << fit.params.p1 << '\n'
     << "    iterations = " << fit.iterations
     << ", function evaluations = " << fit.functionEvaluations
     << (fit.converged ? " (converged)" : " (iteration cap reached)") << '\n'
     << "    wall time = " << std::setprecision(3) << fit.seconds << " s\n";
}

void writeTestReport(std::ostream& os, const PositiveSelectionTest& test,
                     EngineKind engine, double siteThreshold) {
  os << "Branch-site test for positive selection (" << engineName(engine)
     << " engine)\n";
  writeFitReport(os, test.h0);
  writeFitReport(os, test.h1);
  os << "  LRT: 2*dlnL = " << std::setprecision(6) << test.lrt.statistic
     << ", p(chi2_1) = " << test.lrt.pChi2
     << ", p(mixture) = " << test.lrt.pMixture << '\n';
  if (test.lrt.significantAt(0.05))
    os << "  => positive selection DETECTED on the foreground branch (5% level)\n";
  else
    os << "  => no significant evidence of positive selection (5% level)\n";

  os << "  Sites with posterior P(positive selection) > " << siteThreshold
     << " (NEB):\n";
  bool any = false;
  const auto& bySite = test.posteriors.positiveSelectionBySite;
  for (std::size_t i = 0; i < bySite.size(); ++i) {
    if (bySite[i] > siteThreshold) {
      os << "    site " << (i + 1) << "  P = " << std::setprecision(4)
         << bySite[i] << '\n';
      any = true;
    }
  }
  if (!any) os << "    (none)\n";
}

std::string testReportString(const PositiveSelectionTest& test,
                             EngineKind engine, double siteThreshold) {
  std::ostringstream os;
  writeTestReport(os, test, engine, siteThreshold);
  return os.str();
}

namespace {

void writeSiteFit(std::ostream& os, const SiteModelFitResult& fit) {
  os << "  " << siteModelName(fit.model) << ": lnL = " << std::fixed
     << std::setprecision(6) << fit.lnL << std::defaultfloat << '\n'
     << "    kappa  = " << fit.params.kappa << '\n'
     << "    omega0 = " << fit.params.omega0 << '\n';
  if (fit.model == SiteModel::M2a)
    os << "    omega2 = " << fit.params.omega2 << '\n';
  os << "    p0 = " << fit.params.p0 << ", p1 = " << fit.params.p1 << '\n'
     << "    iterations = " << fit.iterations
     << (fit.converged ? " (converged)" : " (iteration cap reached)") << '\n';
}

}  // namespace

void writeSiteModelReport(std::ostream& os, const SiteModelTest& test,
                          EngineKind engine, double siteThreshold) {
  os << "Site-model test for positive selection, M1a vs M2a ("
     << engineName(engine) << " engine)\n";
  writeSiteFit(os, test.m1a);
  writeSiteFit(os, test.m2a);
  os << "  LRT: 2*dlnL = " << std::setprecision(6) << test.lrt.statistic
     << ", p(chi2_2) = " << test.lrt.pChi2 << '\n';
  if (test.lrt.significantAt(0.05))
    os << "  => positive selection DETECTED across the gene (5% level)\n";
  else
    os << "  => no significant evidence of positive selection (5% level)\n";
  os << "  Sites with posterior P(omega2 class) > " << siteThreshold
     << " (NEB):\n";
  bool any = false;
  for (std::size_t i = 0; i < test.posteriors.positiveSelectionBySite.size();
       ++i) {
    if (test.posteriors.positiveSelectionBySite[i] > siteThreshold) {
      os << "    site " << (i + 1) << "  P = " << std::setprecision(4)
         << test.posteriors.positiveSelectionBySite[i] << '\n';
      any = true;
    }
  }
  if (!any) os << "    (none)\n";
}

}  // namespace slim::core
