#pragma once
// Site-model analyses: M1a ("nearly neutral") vs M2a ("positive selection"),
// the classic *site* test for positive selection (df = 2 LRT).  This is the
// first of the "further maximum likelihood-based evolutionary models" the
// paper's conclusion says the optimized likelihood computation applies to:
// both models run through the same two engines as the branch-site test.
//
// Unlike the branch-site test, the site test asks whether *some sites* of
// the gene evolve under positive selection on *all* branches; no foreground
// branch is involved.

#include <vector>

#include "core/engine.hpp"
#include "lik/branch_site_likelihood.hpp"
#include "model/frequencies.hpp"
#include "model/site_mixture.hpp"
#include "opt/bfgs.hpp"
#include "seqio/alignment.hpp"
#include "stat/lrt.hpp"
#include "tree/tree.hpp"

namespace slim::core {

enum class SiteModel { M1a, M2a };

constexpr const char* siteModelName(SiteModel m) noexcept {
  return m == SiteModel::M1a ? "M1a" : "M2a";
}

struct SiteModelFitOptions {
  model::CodonFrequencyModel frequencyModel = model::CodonFrequencyModel::F3x4;
  opt::BfgsOptions bfgs{};
  model::SiteModelParams initialParams{};
  /// Likelihood-engine tuning layered on top of the engine preset.
  LikelihoodTuning tuning{};
};

struct SiteModelFitResult {
  SiteModel model = SiteModel::M1a;
  double lnL = 0;
  model::SiteModelParams params;
  std::vector<double> branchLengths;
  int iterations = 0;
  long functionEvaluations = 0;
  /// Objective evaluations spent inside gradients (see FitResult).
  long gradientEvaluations = 0;
  GradientMode gradientMode = GradientMode::FiniteDiff;
  /// The SIMD kernel level the evaluator resolved `simd =` to.
  linalg::SimdLevel simd = linalg::SimdLevel::Scalar;
  /// The compute backend the evaluator resolved `backend =` to.
  backend::BackendKind backend = backend::BackendKind::Reference;
  bool converged = false;
  double seconds = 0;
};

/// Output of the full M1a-vs-M2a test.
struct SiteModelTest {
  SiteModelFitResult m1a;
  SiteModelFitResult m2a;
  stat::LrtResult lrt;  ///< df = 2
  /// NEB posteriors at the M2a maximum (positive class = omega2).
  lik::SiteClassPosteriors posteriors;
};

class SiteModelAnalysis {
 public:
  /// The tree needs no foreground mark (site models are branch-
  /// homogeneous); any present mark is ignored.
  SiteModelAnalysis(const seqio::CodonAlignment& alignment,
                    const tree::Tree& tree, EngineKind engine,
                    SiteModelFitOptions options = {});

  SiteModelFitResult fit(SiteModel model);

  /// Fit both models, run the df-2 LRT and the NEB site scan.
  SiteModelTest run();

  const std::vector<double>& pi() const noexcept { return pi_; }

 private:
  seqio::CodonAlignment alignment_;
  seqio::SitePatterns patterns_;
  std::vector<double> pi_;
  tree::Tree tree_;
  EngineKind engine_;
  SiteModelFitOptions options_;
};

}  // namespace slim::core
