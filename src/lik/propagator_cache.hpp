#pragma once
// Persistent propagator storage shared *across* likelihood evaluators.
//
// PR 1's propagator cache lived inside one BranchSiteLikelihood, so its
// lifetime was one evaluator: the NEB posterior pass after an H1 fit, or a
// refit at the same parameters, rebuilt every propagator from scratch.  This
// module lifts the cache out into a shard object a core::AnalysisContext can
// lease to tasks, so the warm state survives evaluator teardown.
//
// Concurrency model (per-task sharding): a shard is exclusive to one running
// task at a time — the H0 fit, the H1 fit and the subsequent site scan of a
// gene each address their own slot in the SharedPropagatorCache directory,
// and only the directory itself is mutex-guarded.  Shard internals therefore
// need no locking, and because propagators are keyed on exact eigensystem
// identity and branch-length bits, a warm shard changes *which* work is done
// but never the bits of any result.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "backend/compute_backend.hpp"
#include "backend/expm_pade.hpp"
#include "linalg/matrix.hpp"
#include "support/thread_safety.hpp"

namespace slim::lik {

/// One task's persistent propagator store plus the spec fingerprint the
/// stored entries correspond to.  Owned via shared_ptr so it can outlive the
/// evaluator that filled it (the whole point of sharing).
struct PropagatorCacheShard {
  /// Key: eigensystem identity (index into the evaluator's per-spec
  /// eigensystem table — stable while the fingerprint below matches) plus
  /// the branch length's bit pattern (possibly snapped to cacheQuantum).
  struct Key {
    int eigen = 0;
    std::uint64_t tBits = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.tBits * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<std::uint64_t>(k.eigen) + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  std::unordered_map<Key, linalg::Matrix, KeyHash> entries;
  /// Set when the capacity limit is hit mid-evaluation; entries inserted
  /// during an evaluation may already be referenced by the sweep, so the
  /// flush is deferred to the start of the next one.
  bool flushNextEval = false;
  /// Fingerprint of the MixtureSpec the entries were built against.  Every
  /// stored propagator is derived deterministically from (specScaledS, pi,
  /// branch length), so any evaluator presenting the same fingerprint may
  /// reuse the entries bit for bit.
  std::vector<double> specOmegas;
  std::vector<linalg::Matrix> specScaledS;
  /// Identity of the code path that built the entries (mirroring how
  /// checkpointConfigHash pins the resolved simd level): the resolved
  /// backend, its SIMD level, and the propagator algorithm.  Different
  /// backends are only <= 1e-10 close, not bit-equal, and eigen vs adaptive
  /// propagators differ at roundoff — so a shard warmed by one code path
  /// must never serve another.  An evaluator presenting a different triple
  /// flushes the entries (prepareEigenSystems), exactly as a spec change
  /// does.  Defaults match a freshly created shard before first use.
  backend::BackendKind builtBackend = backend::BackendKind::Reference;
  linalg::SimdLevel builtSimd = linalg::SimdLevel::Scalar;
  backend::ExpmAlgorithm builtExpm = backend::ExpmAlgorithm::Eigen;
  /// False until an evaluator stamps the triple; a virgin shard matches any
  /// evaluator (there is nothing stale to serve).
  bool builtStamped = false;
};

/// Directory of cache shards held by an analysis context.  shard() is safe
/// to call from concurrent tasks (mutex-guarded, lazily creating); each
/// returned shard must be used by at most one task at a time.
class SharedPropagatorCache {
 public:
  std::shared_ptr<PropagatorCacheShard> shard(int slot) {
    support::MutexLock lock(mutex_);
    auto& s = shards_[slot];
    if (!s) s = std::make_shared<PropagatorCacheShard>();
    return s;
  }

  std::size_t numShards() const {
    support::MutexLock lock(mutex_);
    return shards_.size();
  }

  /// Total cached propagators across shards (diagnostics only; racy against
  /// a concurrently-filling task in the benign sense of a stale count).
  std::size_t totalEntries() const {
    support::MutexLock lock(mutex_);
    std::size_t n = 0;
    // Unordered iteration is fine here: addition is commutative, and the
    // count never feeds a reduction or report.
    // slim-lint: allow(determinism)
    for (const auto& [slot, s] : shards_) n += s->entries.size();
    return n;
  }

 private:
  mutable support::Mutex mutex_;
  std::unordered_map<int, std::shared_ptr<PropagatorCacheShard>> shards_
      SLIM_GUARDED_BY(mutex_);
};

}  // namespace slim::lik
