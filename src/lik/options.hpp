#pragma once
// Likelihood-engine configuration.
//
// The paper's CodeML-vs-SlimCodeML comparison decomposes into three
// orthogonal choices, each independently selectable here so that benches can
// ablate them; the two named presets reproduce the paper's two systems.

#include "backend/compute_backend.hpp"
#include "backend/expm_pade.hpp"
#include "expm/codon_eigen_system.hpp"
#include "linalg/kernels.hpp"
#include "linalg/simd.hpp"

namespace slim::lik {

/// How P(t) (or its factors) is applied to the conditional probability
/// vectors of all site patterns along one branch.
enum class PropagationStrategy {
  /// One gemv per site pattern (CodeML, Sec. III-B first paragraph).
  PerSiteGemv,
  /// One gemm over the whole pattern bundle (Sec. III-B "single matrix x
  /// matrix operation ... including all sites"; BLAS level 3).
  BundledGemm,
  /// Eq. 12: form the symmetric M = Yhat Yhat^T once per branch, then one
  /// symv per pattern on Pi w — "saves about half of the memory accesses".
  SymmetricSymv,
  /// Factored apply e^{Qt} W = Yhat (Yhat^T (Pi W)): two gemms per branch,
  /// never forming an n x n propagator.  Wins when the pattern count is
  /// small relative to n (skips the ~n^3 reconstruction entirely).
  FactoredApply,
};

constexpr const char* propagationStrategyName(PropagationStrategy s) noexcept {
  switch (s) {
    case PropagationStrategy::PerSiteGemv: return "per-site-gemv";
    case PropagationStrategy::BundledGemm: return "bundled-gemm";
    case PropagationStrategy::SymmetricSymv: return "symmetric-symv";
    case PropagationStrategy::FactoredApply: return "factored-apply";
  }
  return "?";
}

struct LikelihoodOptions {
  linalg::Flavor flavor = linalg::Flavor::Opt;
  expm::ReconstructionPath reconstruction = expm::ReconstructionPath::Syrk;
  PropagationStrategy propagation = PropagationStrategy::BundledGemm;
  /// Rescale a pattern's conditional vector when its maximum drops below
  /// this (underflow protection for deep trees).
  double scalingThreshold = 1e-200;
  /// Reuse the eigendecomposition across omega classes with equal omega
  /// (under H0, omega2 == omega1 == 1: 2 decompositions instead of 3).
  /// Shared by both presets so speedups isolate the paper's optimizations.
  bool cacheEigenByOmega = true;

  // --- pattern-blocked parallel engine (post-paper extensions).  The
  // defaults reproduce the single-threaded, uncached behaviour bit for bit,
  // so the paper's Naive-vs-Opt comparisons stay isolated from these knobs.
  // The per-pattern arithmetic is independent of the block partition and of
  // which thread executes a block, so the log-likelihood is identical (to
  // the last bit) for every thread count and block size. ---

  /// Evaluation threads for the per-class pattern-block sweep; 0 picks the
  /// hardware concurrency.
  int numThreads = 1;
  /// Site patterns per panel block (the unit of work distribution and of
  /// the level-3 kernel calls); 0 puts all patterns in one block.
  int blockSize = 64;
  /// Persist propagators across evaluations keyed by (omega class, branch
  /// length) so optimizer line searches and finite-difference gradients that
  /// move few coordinates skip redundant eigen-reconstructions.  The cache
  /// flushes whenever the substitution parameters (hence the eigensystems)
  /// change.  Hit/miss counts are surfaced through EvalCounters.
  bool cachePropagators = false;
  /// > 0: snap branch lengths to multiples of this before keying *and*
  /// building cached propagators (an explicit accuracy-for-hits trade).
  /// 0 (default) keys on the exact branch length, which keeps cached and
  /// uncached likelihoods bit-identical.
  double cacheQuantum = 0.0;
  /// Cached propagator count at which the cache is flushed (each entry is an
  /// n x n matrix, ~30 KB for n = 61).
  int cacheCapacity = 2048;

  /// SIMD kernel selection for the Flavor::Opt hot paths (panel gemms and
  /// the fused-sandwich eigen-reconstruction).  Auto picks the widest level
  /// compiled in and supported by the CPU; an explicit avx2/avx512 request
  /// fails evaluator construction when unavailable.  Ignored (forced
  /// scalar) under Flavor::Naive, whose loop nests are the paper's CodeML
  /// baseline.  Each level is bit-identical to itself across thread counts
  /// and block sizes; scalar is the bit-exact reference and AVX levels
  /// agree with it to <= 1e-10 relative on lnL.
  linalg::SimdMode simd = linalg::SimdMode::Auto;

  /// Compute backend for the Flavor::Opt hot ops (`backend =` ctl key).
  /// Auto resolves to `reference` when the SIMD level resolves to scalar and
  /// to `simd` otherwise — exactly the pre-backend dispatch — and never to
  /// `blas` (vendor kernels reassociate, so leaving the deterministic
  /// default is an explicit opt-in).  An explicit backend missing from the
  /// build (blas without SLIM_WITH_BLAS) fails evaluator construction.
  /// Forced to `reference` under Flavor::Naive, like `simd`.
  backend::BackendMode backend = backend::BackendMode::Auto;

  /// Propagator builder (`expm =` ctl key).  Eigen is the paper's
  /// symmetric-eigendecomposition pipeline (reversible Q only); Adaptive is
  /// the Higham–Al-Mohy scaling-and-squaring expm, correct for general rate
  /// matrices and restricted to the per-site-gemv / bundled-gemm
  /// propagation strategies (the symmetric/factored strategies are
  /// artifacts of the eigen path).
  backend::ExpmAlgorithm expm = backend::ExpmAlgorithm::Eigen;
};

/// The CodeML v4.4c stand-in: hand-rolled loop kernels, Eq. 9 reconstruction,
/// per-site matrix x vector propagation.
constexpr LikelihoodOptions codemlBaselineOptions() noexcept {
  return {linalg::Flavor::Naive, expm::ReconstructionPath::Gemm,
          PropagationStrategy::PerSiteGemv, 1e-200, true};
}

/// SlimCodeML as evaluated in the paper: tuned kernels, Eq. 10 dsyrk
/// reconstruction, per-site propagation bundled into BLAS-3.
constexpr LikelihoodOptions slimOptions() noexcept {
  return {linalg::Flavor::Opt, expm::ReconstructionPath::Syrk,
          PropagationStrategy::BundledGemm, 1e-200, true};
}

/// The production preset: the slim kernels plus every post-paper lever —
/// all hardware threads over pattern blocks and the persistent propagator
/// cache (exact-keyed, so likelihoods match slimOptions() bit for bit).
constexpr LikelihoodOptions slimParallelOptions() noexcept {
  LikelihoodOptions o = slimOptions();
  o.numThreads = 0;
  o.cachePropagators = true;
  return o;
}

}  // namespace slim::lik
