#pragma once
// Likelihood-engine configuration.
//
// The paper's CodeML-vs-SlimCodeML comparison decomposes into three
// orthogonal choices, each independently selectable here so that benches can
// ablate them; the two named presets reproduce the paper's two systems.

#include "expm/codon_eigen_system.hpp"
#include "linalg/kernels.hpp"

namespace slim::lik {

/// How P(t) (or its factors) is applied to the conditional probability
/// vectors of all site patterns along one branch.
enum class PropagationStrategy {
  /// One gemv per site pattern (CodeML, Sec. III-B first paragraph).
  PerSiteGemv,
  /// One gemm over the whole pattern bundle (Sec. III-B "single matrix x
  /// matrix operation ... including all sites"; BLAS level 3).
  BundledGemm,
  /// Eq. 12: form the symmetric M = Yhat Yhat^T once per branch, then one
  /// symv per pattern on Pi w — "saves about half of the memory accesses".
  SymmetricSymv,
  /// Factored apply e^{Qt} W = Yhat (Yhat^T (Pi W)): two gemms per branch,
  /// never forming an n x n propagator.  Wins when the pattern count is
  /// small relative to n (skips the ~n^3 reconstruction entirely).
  FactoredApply,
};

constexpr const char* propagationStrategyName(PropagationStrategy s) noexcept {
  switch (s) {
    case PropagationStrategy::PerSiteGemv: return "per-site-gemv";
    case PropagationStrategy::BundledGemm: return "bundled-gemm";
    case PropagationStrategy::SymmetricSymv: return "symmetric-symv";
    case PropagationStrategy::FactoredApply: return "factored-apply";
  }
  return "?";
}

struct LikelihoodOptions {
  linalg::Flavor flavor = linalg::Flavor::Opt;
  expm::ReconstructionPath reconstruction = expm::ReconstructionPath::Syrk;
  PropagationStrategy propagation = PropagationStrategy::BundledGemm;
  /// Rescale a pattern's conditional vector when its maximum drops below
  /// this (underflow protection for deep trees).
  double scalingThreshold = 1e-200;
  /// Reuse the eigendecomposition across omega classes with equal omega
  /// (under H0, omega2 == omega1 == 1: 2 decompositions instead of 3).
  /// Shared by both presets so speedups isolate the paper's optimizations.
  bool cacheEigenByOmega = true;
};

/// The CodeML v4.4c stand-in: hand-rolled loop kernels, Eq. 9 reconstruction,
/// per-site matrix x vector propagation.
constexpr LikelihoodOptions codemlBaselineOptions() noexcept {
  return {linalg::Flavor::Naive, expm::ReconstructionPath::Gemm,
          PropagationStrategy::PerSiteGemv, 1e-200, true};
}

/// SlimCodeML as evaluated in the paper: tuned kernels, Eq. 10 dsyrk
/// reconstruction, per-site propagation bundled into BLAS-3.
constexpr LikelihoodOptions slimOptions() noexcept {
  return {linalg::Flavor::Opt, expm::ReconstructionPath::Syrk,
          PropagationStrategy::BundledGemm, 1e-200, true};
}

}  // namespace slim::lik
