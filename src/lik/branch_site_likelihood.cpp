#include "lik/branch_site_likelihood.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/blas1.hpp"
#include "linalg/blas2.hpp"
#include "linalg/blas3.hpp"
#include "linalg/diag.hpp"
#include "model/codon_model.hpp"
#include "model/frequencies.hpp"
#include "support/require.hpp"
#include "tree/branch_classes.hpp"

namespace slim::lik {

using linalg::ConstMatrixView;
using linalg::Matrix;
using linalg::MatrixView;
using model::MixtureSpec;

BranchSiteLikelihood::BranchSiteLikelihood(
    const seqio::CodonAlignment& alignment, const seqio::SitePatterns& patterns,
    std::vector<double> pi, const tree::Tree& tree,
    model::Hypothesis hypothesis, LikelihoodOptions options,
    std::shared_ptr<PropagatorCacheShard> shard)
    : gc_(*alignment.code),
      patterns_(patterns),
      pi_(std::move(pi)),
      tree_(tree),
      hypothesis_(hypothesis),
      options_(options),
      shard_(options.cachePropagators
                 ? (shard ? std::move(shard)
                          : std::make_shared<PropagatorCacheShard>())
                 : nullptr) {
  n_ = gc_.numSense();
  npat_ = static_cast<int>(patterns_.numPatterns());
  SLIM_REQUIRE(npat_ > 0, "no site patterns");
  model::validateFrequencies(pi_, n_);
  tree_.validate();
  SLIM_REQUIRE(options_.scalingThreshold > 0 && options_.scalingThreshold < 1,
               "scaling threshold must be in (0,1)");
  SLIM_REQUIRE(options_.numThreads >= 0, "numThreads must be >= 0");
  SLIM_REQUIRE(options_.blockSize >= 0, "blockSize must be >= 0");
  SLIM_REQUIRE(options_.cacheQuantum >= 0, "cacheQuantum must be >= 0");
  SLIM_REQUIRE(options_.cacheCapacity > 0, "cacheCapacity must be positive");

  // Resolve the SIMD dispatch once; an explicit avx2/avx512 request on a
  // host that cannot run it fails loudly here rather than mid-evaluation.
  simdLevel_ = options_.flavor == linalg::Flavor::Naive
                   ? linalg::SimdLevel::Scalar
                   : linalg::resolveSimdLevel(options_.simd);
  // Resolve the compute backend the same way (Auto reproduces the
  // pre-backend dispatch: Reference at scalar, Simd otherwise); an explicit
  // backend missing from the build fails here, not mid-evaluation.
  backend_ = backend::computeBackend(
      backend::resolveBackendKind(options_.flavor == linalg::Flavor::Naive
                                      ? backend::BackendMode::Reference
                                      : options_.backend,
                                  simdLevel_),
      simdLevel_);
  kern_ = &backend_.ops;

  // The symmetric / factored propagation strategies are artifacts of the
  // eigendecomposition (they apply M or Yhat, never P itself), so the
  // adaptive propagator cannot serve them.
  if (options_.expm == backend::ExpmAlgorithm::Adaptive &&
      options_.propagation != PropagationStrategy::PerSiteGemv &&
      options_.propagation != PropagationStrategy::BundledGemm)
    throw std::invalid_argument(
        "expm = adaptive supports only the per-site-gemv and bundled-gemm "
        "propagation strategies");

  branchNodes_ = tree_.branches();
  nodeToBranch_.assign(tree_.numNodes(), -1);
  for (int k = 0; k < static_cast<int>(branchNodes_.size()); ++k)
    nodeToBranch_[branchNodes_[k]] = k;

  // Map leaves onto alignment rows by name and build their static CPVs.
  leafCpv_.resize(tree_.numNodes());
  for (int id : tree_.postOrder()) {
    const auto& node = tree_.node(id);
    if (!node.isLeaf()) continue;
    int row = -1;
    for (std::size_t s = 0; s < alignment.names.size(); ++s)
      if (alignment.names[s] == node.label) {
        row = static_cast<int>(s);
        break;
      }
    SLIM_REQUIRE(row >= 0, "leaf '" + node.label + "' not found in alignment");
    Matrix& cpv = leafCpv_[id];
    cpv.resize(npat_, n_);
    for (int h = 0; h < npat_; ++h) {
      const int state = patterns_.patterns[h][row];
      if (state == seqio::kMissingState) {
        for (int i = 0; i < n_; ++i) cpv(h, i) = 1.0;  // missing: any codon
      } else {
        SLIM_REQUIRE(state >= 0 && state < n_, "codon state out of range");
        cpv(h, state) = 1.0;
      }
    }
  }

  // The block partition is a function of blockSize and npat only — never of
  // the thread count — so the per-pattern arithmetic (and hence lnL) is
  // bit-identical however many workers execute the blocks.
  blockMax_ = options_.blockSize > 0 ? std::min(options_.blockSize, npat_)
                                     : npat_;
  const int threads = options_.numThreads == 1
                          ? 1
                          : support::resolveThreadCount(options_.numThreads);
  if (threads > 1) pool_ = std::make_unique<support::ThreadPool>(threads);
  workspaces_.resize(threads);

  totalWeight_ = 0;
  for (double w : patterns_.weights) totalWeight_ += w;
}

void BranchSiteLikelihood::setAllBranchLengths(double t) {
  for (int k = 0; k < numBranches(); ++k) setBranchLength(k, t);
}

// The dispatched* helpers route the Opt flavor's O(n^3) builds and panel
// products through the SIMD table (the scalar table is the Flavor::Opt
// code, so resolved-scalar keeps the legacy call path — bit-identical and
// without the fused kernel's clamp on a path that gains nothing) while the
// Naive flavor always keeps the paper's baseline loop nests.

void BranchSiteLikelihood::dispatchedTransition(
    const expm::CodonEigenSystem& es, double t, Matrix& out) {
  if (useSimdKernels())
    es.transitionMatrix(t, options_.reconstruction, *kern_, expmWs_, out);
  else
    es.transitionMatrix(t, options_.reconstruction, options_.flavor, expmWs_,
                        out);
}

void BranchSiteLikelihood::dispatchedDerivative(
    const expm::CodonEigenSystem& es, double t, Matrix& dp) {
  if (useSimdKernels())
    es.derivativeMatrix(t, *kern_, expmWs_, dp);
  else
    es.derivativeMatrix(t, options_.flavor, expmWs_, dp);
}

void BranchSiteLikelihood::dispatchedSymmetric(const expm::CodonEigenSystem& es,
                                               double t, Matrix& out) {
  if (useSimdKernels())
    es.symmetricPropagator(t, *kern_, expmWs_, out);
  else
    es.symmetricPropagator(t, options_.flavor, expmWs_, out);
}

void BranchSiteLikelihood::dispatchedGemm(ConstMatrixView a, ConstMatrixView b,
                                          MatrixView c) {
  if (useSimdKernels())
    linalg::gemm(*kern_, a, b, c);
  else
    linalg::gemm(options_.flavor, a, b, c);
}

void BranchSiteLikelihood::dispatchedFactoredPanel(const Matrix& yhat,
                                                   ConstMatrixView w,
                                                   MatrixView piW, MatrixView u,
                                                   MatrixView out) {
  if (useSimdKernels())
    expm::applyFactoredPanel(yhat, pi_, w, *kern_, piW, u, out);
  else
    expm::applyFactoredPanel(yhat, pi_, w, options_.flavor, piW, u, out);
}

void BranchSiteLikelihood::buildPropagator(const expm::CodonEigenSystem& es,
                                           double t, Matrix& out) {
  if (out.rows() != static_cast<std::size_t>(n_)) out.resize(n_, n_);
  switch (options_.propagation) {
    case PropagationStrategy::PerSiteGemv:
      dispatchedTransition(es, t, out);
      break;
    case PropagationStrategy::BundledGemm:
      // Stored *transposed*: the panel product W P^T then runs as the
      // saxpy-form gemm W (P^T), which streams contiguous propagator rows
      // with FMAs instead of doing horizontal-reduction dot products — much
      // faster for large pattern panels.  The O(n^2) transpose is paid once
      // per build and amortized over every pattern (and every cache hit).
      if (transposeScratch_.rows() != static_cast<std::size_t>(n_))
        transposeScratch_.resize(n_, n_);
      dispatchedTransition(es, t, transposeScratch_);
      linalg::transposeInto(transposeScratch_, out);
      break;
    case PropagationStrategy::SymmetricSymv:
      dispatchedSymmetric(es, t, out);
      break;
    case PropagationStrategy::FactoredApply:
      es.makeYhat(t, out);
      break;
  }
}

void BranchSiteLikelihood::adaptiveTransition(int eigenIdx, double t,
                                              Matrix& out) {
  const Matrix& q = rateMatrices_[eigenIdx];
  if (adaptQt_.rows() != static_cast<std::size_t>(n_)) adaptQt_.resize(n_, n_);
  for (std::size_t i = 0; i < q.size(); ++i)
    adaptQt_.data()[i] = q.data()[i] * t;
  // The expm's internal products always run on the resolved backend table;
  // the scalar (reference) table is the deterministic baseline.
  backend::expmAdaptive(adaptQt_, *kern_, adaptWs_, out);
  // Same roundoff-negative policy as the eigen-path P(t) builds.
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out.data()[i] < 0.0) out.data()[i] = 0.0;
}

void BranchSiteLikelihood::buildAdaptivePropagator(int eigenIdx, double t,
                                                   Matrix& out) {
  if (out.rows() != static_cast<std::size_t>(n_)) out.resize(n_, n_);
  switch (options_.propagation) {
    case PropagationStrategy::PerSiteGemv:
      adaptiveTransition(eigenIdx, t, out);
      break;
    case PropagationStrategy::BundledGemm:
      // Stored transposed, exactly like the eigen path (see buildPropagator).
      if (transposeScratch_.rows() != static_cast<std::size_t>(n_))
        transposeScratch_.resize(n_, n_);
      adaptiveTransition(eigenIdx, t, transposeScratch_);
      linalg::transposeInto(transposeScratch_, out);
      break;
    default:
      SLIM_REQUIRE(false, "adaptive expm: unsupported propagation strategy");
  }
}

const Matrix& BranchSiteLikelihood::propagator(int node, int omegaIdx) {
  const std::size_t key = propIndex(node, omegaIdx);
  if (propPtr_[key]) return *propPtr_[key];

  const int eigenIdx = omegaToEigen_[omegaIdx];
  const bool adaptive = options_.expm == backend::ExpmAlgorithm::Adaptive;
  double t = tree_.branchLength(node);

  if (shard_) {
    if (options_.cacheQuantum > 0.0)
      t = std::round(t / options_.cacheQuantum) * options_.cacheQuantum;
    const PropagatorCacheShard::Key ck{eigenIdx, std::bit_cast<std::uint64_t>(t)};
    auto it = shard_->entries.find(ck);
    if (it == shard_->entries.end()) {
      // A full cache is flushed at the start of the *next* evaluation:
      // entries inserted this evaluation may already be referenced through
      // propPtr_, so they must stay addressable until the sweep finishes.
      if (shard_->entries.size() >=
          static_cast<std::size_t>(options_.cacheCapacity))
        shard_->flushNextEval = true;
      Matrix p;
      if (adaptive)
        buildAdaptivePropagator(eigenIdx, t, p);
      else
        buildPropagator(eigenSystems_[eigenIdx], t, p);
      ++counters_.propagatorBuilds;
      ++counters_.propagatorCacheMisses;
      it = shard_->entries.emplace(ck, std::move(p)).first;
    } else {
      ++counters_.propagatorCacheHits;
    }
    propPtr_[key] = &it->second;
    return it->second;
  }

  Matrix& out = propCache_[key];
  if (adaptive)
    buildAdaptivePropagator(eigenIdx, t, out);
  else
    buildPropagator(eigenSystems_[eigenIdx], t, out);
  ++counters_.propagatorBuilds;
  propPtr_[key] = &out;
  return out;
}

void BranchSiteLikelihood::prebuildPropagators() {
  for (int node : branchNodes_) {
    const int branchClass = tree_.node(node).mark;
    for (int m = 0; m < numClasses_; ++m)
      propagator(node, activeClasses_[m].omegaFor(branchClass));
  }
}

void BranchSiteLikelihood::propagateBranch(const Matrix& prop,
                                           ConstMatrixView childCpv,
                                           MatrixView out,
                                           PruneWorkspace& ws) {
  const auto flavor = options_.flavor;
  const int rows = static_cast<int>(childCpv.rows());
  switch (options_.propagation) {
    case PropagationStrategy::PerSiteGemv: {
      for (int h = 0; h < rows; ++h)
        linalg::gemv(flavor, prop, childCpv.rowSpan(h), out.rowSpan(h));
      break;
    }
    case PropagationStrategy::BundledGemm: {
      // prop holds P^T, so out(h,i) = sum_j childCpv(h,j) P^T(j,i)
      //  ==  (P w_h)_i for every h — one BLAS-3 panel product per branch,
      // on the SIMD-dispatched saxpy gemm under the Opt flavor.
      dispatchedGemm(childCpv, prop.view(), out);
      break;
    }
    case PropagationStrategy::SymmetricSymv: {
      // e^{Qt} w = M (Pi w) with M symmetric (Eq. 12).
      for (int h = 0; h < rows; ++h) {
        const double* w = childCpv.row(h);
        for (int i = 0; i < n_; ++i) ws.vecTmp[i] = pi_[i] * w[i];
        linalg::symv(flavor, prop, ws.vecTmp.span(), out.rowSpan(h));
      }
      // Clamp roundoff negatives (M is not elementwise non-negative).
      for (std::size_t k = 0; k < out.size(); ++k)
        if (out.data()[k] < 0.0) out.data()[k] = 0.0;
      break;
    }
    case PropagationStrategy::FactoredApply: {
      // out = ((W Pi) Yhat) Yhat^T, two rectangular gemms, no n x n product.
      dispatchedFactoredPanel(prop, childCpv, ws.applyPiW.rowBlock(0, rows),
                              ws.applyU.rowBlock(0, rows), out);
      break;
    }
  }
  ws.patternPropagations += rows;
}

void BranchSiteLikelihood::pruneClassBlock(int m, int h0, int len,
                                           PruneWorkspace& ws) {
  const int numNodes = tree_.numNodes();
  if (static_cast<int>(ws.nodeCpv.size()) != numNodes) {
    ws.nodeCpv.resize(numNodes);
    ws.nodeScaleLog.resize(numNodes);
  }
  if (ws.tmp.rows() != static_cast<std::size_t>(blockMax_)) {
    ws.tmp.resize(blockMax_, n_);
    ws.applyPiW.resize(blockMax_, n_);
    ws.applyU.resize(blockMax_, n_);
  }
  if (ws.vecTmp.size() != static_cast<std::size_t>(n_))
    ws.vecTmp.assign(n_, 0.0);

  const int root = tree_.root();
  const auto& cls = activeClasses_[m];
  for (int id : tree_.postOrder()) {
    const auto& node = tree_.node(id);
    if (node.isLeaf()) continue;
    Matrix& cpvStore = ws.nodeCpv[id];
    if (cpvStore.rows() != static_cast<std::size_t>(blockMax_))
      cpvStore.resize(blockMax_, n_);
    const MatrixView cpv = cpvStore.rowBlock(0, len);
    for (int h = 0; h < len; ++h) {
      double* row = cpv.row(h);
      std::fill(row, row + n_, 1.0);
    }
    auto& scaleLog = ws.nodeScaleLog[id];
    scaleLog.assign(len, 0.0);

    for (int child : node.children) {
      const bool childIsLeaf = tree_.node(child).isLeaf();
      const ConstMatrixView childCpv =
          childIsLeaf ? leafCpv_[child].rowBlock(h0, len)
                      : ConstMatrixView(ws.nodeCpv[child].rowBlock(0, len));
      const int omegaIdx = cls.omegaFor(tree_.node(child).mark);
      // Prebuilt before the parallel region; read-only here.
      const Matrix& prop = *propPtr_[propIndex(child, omegaIdx)];
      const MatrixView out = ws.tmp.rowBlock(0, len);
      propagateBranch(prop, childCpv, out, ws);
      linalg::hadamardInPlace(ConstMatrixView(out).span(), cpv.span());
      if (!childIsLeaf)
        for (int h = 0; h < len; ++h)
          scaleLog[h] += ws.nodeScaleLog[child][h];
    }

    // Underflow rescue: renormalize any pattern row whose maximum dropped
    // below the threshold, remembering the removed factor in log space.
    for (int h = 0; h < len; ++h) {
      double mx = 0.0;
      double* row = cpv.row(h);
      for (int i = 0; i < n_; ++i) mx = std::max(mx, row[i]);
      if (mx > 0.0 && mx < options_.scalingThreshold) {
        const double inv = 1.0 / mx;
        for (int i = 0; i < n_; ++i) row[i] *= inv;
        scaleLog[h] += std::log(mx);
      }
    }
  }

  // Root: mix over states with the equilibrium frequencies.  Each block owns
  // its [h0, h0 + len) slice of the class result rows, so concurrent blocks
  // never write the same element.
  const ConstMatrixView rootCpv = ws.nodeCpv[root].rowBlock(0, len);
  for (int h = 0; h < len; ++h) {
    double f = 0.0;
    const double* row = rootCpv.row(h);
    for (int i = 0; i < n_; ++i) f += pi_[i] * row[i];
    classLik_[m][h0 + h] = f;
    classScaleLog_[m][h0 + h] = ws.nodeScaleLog[root][h];
  }
}

void BranchSiteLikelihood::prepareEigenSystems(const MixtureSpec& spec) {
  const bool adaptive = options_.expm == backend::ExpmAlgorithm::Adaptive;
  if (shard_) {
    if (shard_->flushNextEval) {
      shard_->entries.clear();
      shard_->flushNextEval = false;
    }
    // Entries are only reusable when they were built by this evaluator's
    // exact code path: resolved backend, its SIMD level, and the propagator
    // algorithm (mirroring how checkpointConfigHash pins resolved simd).
    // Different backends agree to <= 1e-10, not bit for bit, and eigen vs
    // adaptive propagators differ at roundoff, so a shard warmed by one
    // path must never serve another.
    const bool pathMatches =
        !shard_->builtStamped ||
        (shard_->builtBackend == backend_.kind &&
         shard_->builtSimd == backend_.simdLevel &&
         shard_->builtExpm == options_.expm);
    // Identical substitution parameters since the shard was filled mean the
    // eigensystems — and every cached propagator derived from them — are
    // still valid.  This is what makes optimizer line searches and
    // finite-difference gradients (which move few coordinates per call)
    // skip nearly all eigen-reconstruction work.
    const bool specMatches = pathMatches &&
                             spec.omegas == shard_->specOmegas &&
                             spec.scaledS == shard_->specScaledS;
    const bool prepared = adaptive ? !rateMatrices_.empty()
                                   : !eigenSystems_.empty();
    if (specMatches && prepared) return;
    // A *warm* shard handed to a fresh evaluator (specMatches, but no local
    // eigensystems yet) keeps its entries: the decomposition below is
    // deterministic, so the eigen indices the stored keys refer to come out
    // identical.
    if (!specMatches) shard_->entries.clear();
  }

  // One eigendecomposition — or, in adaptive-expm mode, one rate matrix —
  // per *distinct* omega value (e.g. under the model A null,
  // omega2 == omega1 == 1 shares one).
  eigenSystems_.clear();
  rateMatrices_.clear();
  omegaToEigen_.assign(numOmegas_, -1);
  for (int k = 0; k < numOmegas_; ++k) {
    int found = -1;
    if (options_.cacheEigenByOmega) {
      for (int j = 0; j < k; ++j)
        if (spec.omegas[j] == spec.omegas[k]) {
          found = omegaToEigen_[j];
          break;
        }
    }
    if (found < 0) {
      if (adaptive) {
        Matrix q(n_, n_);
        model::buildRateMatrix(spec.scaledS[k], pi_, q);
        rateMatrices_.push_back(std::move(q));
        found = static_cast<int>(rateMatrices_.size()) - 1;
      } else {
        eigenSystems_.emplace_back(spec.scaledS[k], pi_);
        ++counters_.eigenDecompositions;
        found = static_cast<int>(eigenSystems_.size()) - 1;
      }
    }
    omegaToEigen_[k] = found;
  }

  if (shard_) {
    shard_->specOmegas = spec.omegas;
    shard_->specScaledS = spec.scaledS;
    shard_->builtBackend = backend_.kind;
    shard_->builtSimd = backend_.simdLevel;
    shard_->builtExpm = options_.expm;
    shard_->builtStamped = true;
  }
}

bool BranchSiteLikelihood::classUnderPositiveSelection(int m) const noexcept {
  const auto& row = activeClasses_[m].omega;
  if (row.size() == 1) return activeOmegas_[row.front()] > 1.0;
  for (std::size_t b = 1; b < row.size(); ++b)
    if (activeOmegas_[row[b]] > 1.0) return true;
  return false;
}

void BranchSiteLikelihood::computeClassLikelihoods(const MixtureSpec& spec) {
  spec.validate(n_);
  SLIM_REQUIRE(spec.branchHomogeneous() || tree::hasMarkedBranch(tree_),
               "branch-heterogeneous mixture requires at least one marked "
               "branch (#k)");
  numClasses_ = spec.numClasses();
  numOmegas_ = spec.numOmegas();
  activeClasses_ = spec.classes;
  activeOmegas_ = spec.omegas;
  classProp_.resize(numClasses_);
  classLik_.resize(numClasses_);
  classScaleLog_.resize(numClasses_);
  for (int m = 0; m < numClasses_; ++m) {
    classProp_[m] = spec.classes[m].proportion;
    classLik_[m].assign(npat_, 0.0);
    classScaleLog_[m].assign(npat_, 0.0);
  }

  prepareEigenSystems(spec);

  // Propagators depend on branch lengths and omega: rebuild lazily.
  const std::size_t propSlots =
      static_cast<std::size_t>(tree_.numNodes()) * numOmegas_;
  if (!options_.cachePropagators) propCache_.resize(propSlots);
  propPtr_.assign(propSlots, nullptr);
  prebuildPropagators();

  // Pattern-blocked sweep: every (site class, pattern block) pair is an
  // independent task reading shared immutable state (tree, leaf CPVs,
  // prebuilt propagators) and writing its own slice of the class results.
  const int numBlocks = (npat_ + blockMax_ - 1) / blockMax_;
  const int numTasks = numClasses_ * numBlocks;
  const auto runTask = [&](int task, int worker) {
    const int m = task / numBlocks;
    const int b = task % numBlocks;
    const int h0 = b * blockMax_;
    pruneClassBlock(m, h0, std::min(blockMax_, npat_ - h0),
                    workspaces_[worker]);
  };
  if (pool_) {
    pool_->parallelFor(numTasks, runTask);
  } else {
    for (int task = 0; task < numTasks; ++task) runTask(task, 0);
  }
  // Deterministic merge of the per-worker counters.
  for (auto& ws : workspaces_) {
    counters_.patternPropagations += ws.patternPropagations;
    ws.patternPropagations = 0;
  }
  ++counters_.evaluations;
}

double BranchSiteLikelihood::logLikelihood(
    const model::BranchSiteParams& params) {
  params.validate(hypothesis_);
  return logLikelihood(
      model::buildModelASpec(gc_, pi_, params, hypothesis_));
}

double BranchSiteLikelihood::mixClassLikelihoods(
    std::vector<double>& maxScaleLog, std::vector<double>& mixture) const {
  maxScaleLog.resize(npat_);
  mixture.resize(npat_);
  double lnL = 0.0;
  for (int h = 0; h < npat_; ++h) {
    double maxS = classScaleLog_[0][h];
    for (int m = 1; m < numClasses_; ++m)
      maxS = std::max(maxS, classScaleLog_[m][h]);
    double f = 0.0;
    for (int m = 0; m < numClasses_; ++m)
      f += classProp_[m] * classLik_[m][h] *
           std::exp(classScaleLog_[m][h] - maxS);
    maxScaleLog[h] = maxS;
    mixture[h] = f;
    if (!(f > 0.0) || !std::isfinite(f))
      return -std::numeric_limits<double>::infinity();
    lnL += patterns_.weights[h] * (std::log(f) + maxS);
  }
  return lnL;
}

double BranchSiteLikelihood::logLikelihood(const MixtureSpec& spec) {
  computeClassLikelihoods(spec);
  return mixClassLikelihoods(mixMaxScaleLog_, mixMixture_);
}

double BranchSiteLikelihood::logLikelihoodGradientBranches(
    const model::BranchSiteParams& params, std::span<double> gradT) {
  params.validate(hypothesis_);
  return logLikelihoodGradientBranches(
      model::buildModelASpec(gc_, pi_, params, hypothesis_), gradT);
}

double BranchSiteLikelihood::logLikelihoodGradientBranches(
    const MixtureSpec& spec, std::span<double> gradT) {
  computeClassLikelihoods(spec);
  return gradientBranchesFromState(gradT);
}

double BranchSiteLikelihood::gradientBranchesAtLastEvaluation(
    std::span<double> gradT) {
  SLIM_REQUIRE(numClasses_ > 0,
               "gradientBranchesAtLastEvaluation: no prior evaluation");
  return gradientBranchesFromState(gradT);
}

double BranchSiteLikelihood::gradientBranchesFromState(std::span<double> gradT) {
  const int numB = numBranches();
  SLIM_REQUIRE(static_cast<int>(gradT.size()) == numB, "gradient size mismatch");
  std::fill(gradT.begin(), gradT.end(), 0.0);

  const double lnL = mixClassLikelihoods(mixMaxScaleLog_, mixMixture_);
  if (!std::isfinite(lnL)) return lnL;  // underflow: gradient undefined
  ++counters_.gradientSweeps;

  buildGradientPropagators();
  if (gradWorkspaces_.size() != workspaces_.size())
    gradWorkspaces_.resize(workspaces_.size());

  // Same task shape as the likelihood sweep: every (site class, pattern
  // block) pair is independent.  Each task writes per-(branch, pattern)
  // contributions into its class's slab — per-pattern values are independent
  // of the block partition, and the reduction below runs in fixed
  // (branch, pattern, class) order — so the gradient, like the likelihood,
  // is bit-identical for every thread count and block size.
  const int numBlocks = (npat_ + blockMax_ - 1) / blockMax_;
  const int numTasks = numClasses_ * numBlocks;
  const std::size_t slabSize = static_cast<std::size_t>(numB) * npat_;
  gradContrib_.assign(static_cast<std::size_t>(numClasses_) * slabSize, 0.0);
  std::vector<double>& contrib = gradContrib_;
  const auto runTask = [&](int task, int worker) {
    const int m = task / numBlocks;
    const int b = task % numBlocks;
    const int h0 = b * blockMax_;
    gradientClassBlock(m, h0, std::min(blockMax_, npat_ - h0), mixMaxScaleLog_,
                       mixMixture_, gradWorkspaces_[worker],
                       std::span<double>(contrib.data() + m * slabSize,
                                         slabSize));
  };
  if (pool_) {
    pool_->parallelFor(numTasks, runTask);
  } else {
    for (int task = 0; task < numTasks; ++task) runTask(task, 0);
  }
  // Fixed (branch, class, pattern) reduction order: deterministic and
  // partition-independent like the task writes, with the innermost loop
  // running linearly through each slab's contiguous pattern row.
  for (int k = 0; k < numB; ++k) {
    double g = 0.0;
    for (int m = 0; m < numClasses_; ++m) {
      const double* row =
          contrib.data() + m * slabSize + static_cast<std::size_t>(k) * npat_;
      for (int h = 0; h < npat_; ++h) g += row[h];
    }
    gradT[k] = g;
  }
  for (auto& ws : gradWorkspaces_) {
    counters_.patternPropagations += ws.patternPropagations;
    ws.patternPropagations = 0;
  }
  return lnL;
}

void BranchSiteLikelihood::buildGradientPropagators() {
  const std::size_t propSlots =
      static_cast<std::size_t>(tree_.numNodes()) * numOmegas_;
  gradProp_.resize(propSlots);
  gradPropT_.resize(propSlots);
  gradDerivT_.resize(propSlots);
  std::vector<char> built(propSlots, 0);
  Matrix dp(n_, n_);
  const bool adaptive = options_.expm == backend::ExpmAlgorithm::Adaptive;
  for (int node : branchNodes_) {
    const int branchClass = tree_.node(node).mark;
    for (int m = 0; m < numClasses_; ++m) {
      const auto& cls = activeClasses_[m];
      const int omegaIdx = cls.omegaFor(branchClass);
      const std::size_t slot = propIndex(node, omegaIdx);
      if (built[slot]) continue;
      built[slot] = 1;
      const int eigenIdx = omegaToEigen_[omegaIdx];
      double t = tree_.branchLength(node);
      // Differentiate at the same (possibly quantized) length the evaluation
      // propagated with, so gradient and objective describe one function.
      if (shard_ && options_.cacheQuantum > 0.0)
        t = std::round(t / options_.cacheQuantum) * options_.cacheQuantum;
      Matrix& p = gradProp_[slot];
      Matrix& pT = gradPropT_[slot];
      if (p.rows() != static_cast<std::size_t>(n_)) p.resize(n_, n_);
      if (pT.rows() != static_cast<std::size_t>(n_)) pT.resize(n_, n_);
      // The evaluation's propagator table (still addressable — the gradient
      // runs on the retained state of the last evaluation) already holds P^T
      // under BundledGemm and P under PerSiteGemv; the symmetric / factored
      // strategies store M / Yhat, so reconstruct P for those.
      const Matrix* stored = slot < propPtr_.size() ? propPtr_[slot] : nullptr;
      if (stored && options_.propagation == PropagationStrategy::BundledGemm) {
        pT = *stored;
        linalg::transposeInto(pT, p);
      } else if (stored &&
                 options_.propagation == PropagationStrategy::PerSiteGemv) {
        p = *stored;
        linalg::transposeInto(p, pT);
      } else {
        if (adaptive)
          adaptiveTransition(eigenIdx, t, p);
        else
          dispatchedTransition(eigenSystems_[eigenIdx], t, p);
        linalg::transposeInto(p, pT);
        ++counters_.propagatorBuilds;
      }
      Matrix& dT = gradDerivT_[slot];
      if (dT.rows() != static_cast<std::size_t>(n_)) dT.resize(n_, n_);
      if (adaptive) {
        // dP/dt = Q e^{Qt} = Q P exactly (Q and e^{Qt} commute); derivatives
        // legitimately carry negative entries, so no clamp — matching the
        // eigen path's derivativeMatrix policy.
        dispatchedGemm(rateMatrices_[eigenIdx].view(), p.view(), dp.view());
      } else {
        dispatchedDerivative(eigenSystems_[eigenIdx], t, dp);
      }
      linalg::transposeInto(dp, dT);
      ++counters_.propagatorBuilds;
    }
  }
}

void BranchSiteLikelihood::gradientClassBlock(
    int m, int h0, int len, std::span<const double> maxScaleLog,
    std::span<const double> mixture, GradientWorkspace& ws,
    std::span<double> gradOut) {
  const int numNodes = tree_.numNodes();
  if (static_cast<int>(ws.down.size()) != numNodes) {
    ws.down.resize(numNodes);
    ws.prod.resize(numNodes);
    ws.up.resize(numNodes);
    ws.sDown.resize(numNodes);
    ws.uScale.resize(numNodes);
  }
  if (ws.outside.rows() != static_cast<std::size_t>(blockMax_)) {
    ws.outside.resize(blockMax_, n_);
    ws.deriv.resize(blockMax_, n_);
  }

  // The gradient sweep's panel products run on the same SIMD dispatch as
  // the likelihood sweep's BundledGemm path.
  const int root = tree_.root();
  const auto& cls = activeClasses_[m];
  const auto omegaOf = [&](int node) {
    return cls.omegaFor(tree_.node(node).mark);
  };
  const auto childPanel = [&](int c) -> ConstMatrixView {
    return tree_.node(c).isLeaf()
               ? leafCpv_[c].rowBlock(h0, len)
               : ConstMatrixView(ws.down[c].rowBlock(0, len));
  };

  // Down (post-order) pass — the likelihood sweep again, but *retaining* per
  // node the subtree conditional panel D, its scale log, and per child the
  // propagated panel prod = P * D_child (the outside recursion multiplies
  // sibling prods together).
  for (int id : tree_.postOrder()) {
    const auto& node = tree_.node(id);
    if (node.isLeaf()) {
      ws.sDown[id].assign(len, 0.0);
      continue;
    }
    Matrix& dStore = ws.down[id];
    if (dStore.rows() != static_cast<std::size_t>(blockMax_))
      dStore.resize(blockMax_, n_);
    const MatrixView d = dStore.rowBlock(0, len);
    for (int h = 0; h < len; ++h) {
      double* row = d.row(h);
      std::fill(row, row + n_, 1.0);
    }
    auto& scale = ws.sDown[id];
    scale.assign(len, 0.0);

    for (int c : node.children) {
      Matrix& prodStore = ws.prod[c];
      if (prodStore.rows() != static_cast<std::size_t>(blockMax_))
        prodStore.resize(blockMax_, n_);
      const MatrixView prod = prodStore.rowBlock(0, len);
      dispatchedGemm(childPanel(c), gradPropT_[propIndex(c, omegaOf(c))].view(),
                prod);
      linalg::hadamardInPlace(ConstMatrixView(prod).span(), d.span());
      for (int h = 0; h < len; ++h) scale[h] += ws.sDown[c][h];
      ws.patternPropagations += len;
    }

    // Underflow rescue, exactly as in the likelihood sweep.
    for (int h = 0; h < len; ++h) {
      double mx = 0.0;
      double* row = d.row(h);
      for (int i = 0; i < n_; ++i) mx = std::max(mx, row[i]);
      if (mx > 0.0 && mx < options_.scalingThreshold) {
        const double inv = 1.0 / mx;
        for (int i = 0; i < n_; ++i) row[i] *= inv;
        scale[h] += std::log(mx);
      }
    }
  }

  // Up (pre-order) pass.  The outside panel O_c of the edge above node c
  // satisfies   L_true(h) = sum_ij O_c(h,i) P_c(i,j) D_c(h,j) * e^{s_c + o_c},
  // so the branch derivative only swaps P_c for dP_c/dt in that bilinear
  // form.  Recursion from the root (O_root = pi): O_c = U_v ⊙ Π_{siblings}
  // prod, U_c = P_c^T O_c, with scale logs carried alongside.
  Matrix& upRoot = ws.up[root];
  if (upRoot.rows() != static_cast<std::size_t>(blockMax_))
    upRoot.resize(blockMax_, n_);
  {
    const MatrixView u = upRoot.rowBlock(0, len);
    for (int h = 0; h < len; ++h) {
      double* row = u.row(h);
      for (int i = 0; i < n_; ++i) row[i] = pi_[i];
    }
    ws.uScale[root].assign(len, 0.0);
  }

  const auto& post = tree_.postOrder();
  for (auto it = post.rbegin(); it != post.rend(); ++it) {
    const int id = *it;
    const auto& node = tree_.node(id);
    if (node.isLeaf()) continue;
    const ConstMatrixView u = ws.up[id].rowBlock(0, len);
    const auto& uScale = ws.uScale[id];

    for (int c : node.children) {
      const MatrixView o = ws.outside.rowBlock(0, len);
      linalg::copy(u.span(), o.span());
      ws.oScale.assign(len, 0.0);
      for (int h = 0; h < len; ++h) ws.oScale[h] = uScale[h];
      for (int s : node.children) {
        if (s == c) continue;
        linalg::hadamardInPlace(
            ConstMatrixView(ws.prod[s].rowBlock(0, len)).span(), o.span());
        for (int h = 0; h < len; ++h) ws.oScale[h] += ws.sDown[s][h];
      }

      const std::size_t slot = propIndex(c, omegaOf(c));
      const MatrixView deriv = ws.deriv.rowBlock(0, len);
      dispatchedGemm(childPanel(c), gradDerivT_[slot].view(), deriv);
      ws.patternPropagations += len;

      const int k = nodeToBranch_[c];
      for (int h = 0; h < len; ++h) {
        const double dval = linalg::dot(o.rowSpan(h), deriv.rowSpan(h));
        if (dval == 0.0) continue;
        // exp() applied in two halves: a rescale deep in the tree can push
        // the scale restoration near the overflow edge before the (tiny)
        // bilinear form damps it, and the split keeps each factor finite.
        const double eHalf =
            std::exp(0.5 * (ws.sDown[c][h] + ws.oScale[h] - maxScaleLog[h0 + h]));
        gradOut[static_cast<std::size_t>(k) * npat_ + h0 + h] =
            patterns_.weights[h0 + h] * classProp_[m] *
            ((dval * eHalf) * eHalf) / mixture[h0 + h];
      }

      if (!tree_.node(c).isLeaf()) {
        Matrix& upC = ws.up[c];
        if (upC.rows() != static_cast<std::size_t>(blockMax_))
          upC.resize(blockMax_, n_);
        const MatrixView uc = upC.rowBlock(0, len);
        dispatchedGemm(ConstMatrixView(o), gradProp_[slot].view(), uc);
        ws.patternPropagations += len;
        auto& us = ws.uScale[c];
        us.assign(len, 0.0);
        for (int h = 0; h < len; ++h) {
          us[h] = ws.oScale[h];
          double mx = 0.0;
          double* row = uc.row(h);
          for (int i = 0; i < n_; ++i) mx = std::max(mx, row[i]);
          if (mx > 0.0 && mx < options_.scalingThreshold) {
            const double inv = 1.0 / mx;
            for (int i = 0; i < n_; ++i) row[i] *= inv;
            us[h] += std::log(mx);
          }
        }
      }
    }
  }
}

SiteClassPosteriors BranchSiteLikelihood::siteClassPosteriors(
    const model::BranchSiteParams& params) {
  params.validate(hypothesis_);
  return siteClassPosteriors(
      model::buildModelASpec(gc_, pi_, params, hypothesis_));
}

SiteClassPosteriors BranchSiteLikelihood::siteClassPosteriors(
    const MixtureSpec& spec) {
  computeClassLikelihoods(spec);

  SiteClassPosteriors out;
  out.post.assign(numClasses_, std::vector<double>(npat_, 0.0));
  out.positiveSelection.assign(npat_, 0.0);

  std::vector<double> joint(numClasses_);
  for (int h = 0; h < npat_; ++h) {
    double maxS = classScaleLog_[0][h];
    for (int m = 1; m < numClasses_; ++m)
      maxS = std::max(maxS, classScaleLog_[m][h]);
    double f = 0.0;
    for (int m = 0; m < numClasses_; ++m) {
      joint[m] = classProp_[m] * classLik_[m][h] *
                 std::exp(classScaleLog_[m][h] - maxS);
      f += joint[m];
    }
    SLIM_REQUIRE(f > 0.0, "zero site likelihood in posterior computation");
    for (int m = 0; m < numClasses_; ++m) {
      out.post[m][h] = joint[m] / f;
      // "Positive selection" = classes with a non-background omega > 1
      // (for single-column site classes, the class omega itself).
      if (classUnderPositiveSelection(m))
        out.positiveSelection[h] += out.post[m][h];
    }
  }

  out.positiveSelectionBySite.reserve(patterns_.siteToPattern.size());
  for (int p : patterns_.siteToPattern)
    out.positiveSelectionBySite.push_back(out.positiveSelection[p]);
  return out;
}

}  // namespace slim::lik
