#include "lik/branch_site_likelihood.hpp"

#include <cmath>
#include <limits>

#include "linalg/blas1.hpp"
#include "linalg/blas2.hpp"
#include "linalg/blas3.hpp"
#include "linalg/diag.hpp"
#include "model/frequencies.hpp"
#include "support/require.hpp"

namespace slim::lik {

using linalg::Matrix;
using model::MixtureSpec;

BranchSiteLikelihood::BranchSiteLikelihood(
    const seqio::CodonAlignment& alignment, const seqio::SitePatterns& patterns,
    std::vector<double> pi, const tree::Tree& tree,
    model::Hypothesis hypothesis, LikelihoodOptions options)
    : gc_(*alignment.code),
      patterns_(patterns),
      pi_(std::move(pi)),
      tree_(tree),
      hypothesis_(hypothesis),
      options_(options) {
  n_ = gc_.numSense();
  npat_ = static_cast<int>(patterns_.numPatterns());
  SLIM_REQUIRE(npat_ > 0, "no site patterns");
  model::validateFrequencies(pi_, n_);
  tree_.validate();
  SLIM_REQUIRE(tree_.foregroundBranch() >= 0,
               "branch-site model requires one marked foreground branch (#1)");
  SLIM_REQUIRE(options_.scalingThreshold > 0 && options_.scalingThreshold < 1,
               "scaling threshold must be in (0,1)");

  branchNodes_ = tree_.branches();

  // Map leaves onto alignment rows by name and build their static CPVs.
  leafCpv_.resize(tree_.numNodes());
  nodeCpv_.resize(tree_.numNodes());
  nodeScaleLog_.resize(tree_.numNodes());
  for (int id : tree_.postOrder()) {
    const auto& node = tree_.node(id);
    if (!node.isLeaf()) {
      nodeCpv_[id].resize(npat_, n_);
      nodeScaleLog_[id].assign(npat_, 0.0);
      continue;
    }
    int row = -1;
    for (std::size_t s = 0; s < alignment.names.size(); ++s)
      if (alignment.names[s] == node.label) {
        row = static_cast<int>(s);
        break;
      }
    SLIM_REQUIRE(row >= 0, "leaf '" + node.label + "' not found in alignment");
    Matrix& cpv = leafCpv_[id];
    cpv.resize(npat_, n_);
    for (int h = 0; h < npat_; ++h) {
      const int state = patterns_.patterns[h][row];
      if (state == seqio::kMissingState) {
        for (int i = 0; i < n_; ++i) cpv(h, i) = 1.0;  // missing: any codon
      } else {
        SLIM_REQUIRE(state >= 0 && state < n_, "codon state out of range");
        cpv(h, state) = 1.0;
      }
    }
  }

  tmp_.resize(npat_, n_);
  vecTmp_.assign(n_, 0.0);

  totalWeight_ = 0;
  for (double w : patterns_.weights) totalWeight_ += w;
}

void BranchSiteLikelihood::setAllBranchLengths(double t) {
  for (int k = 0; k < numBranches(); ++k) setBranchLength(k, t);
}

const Matrix& BranchSiteLikelihood::propagator(int node, int omegaIdx) {
  const std::size_t key =
      static_cast<std::size_t>(node) * numOmegas_ + omegaIdx;
  if (propReady_[key]) return propCache_[key];

  Matrix& out = propCache_[key];
  if (out.rows() != static_cast<std::size_t>(n_)) out.resize(n_, n_);
  const auto& es = eigenSystems_[omegaToEigen_[omegaIdx]];
  const double t = tree_.branchLength(node);
  switch (options_.propagation) {
    case PropagationStrategy::PerSiteGemv:
    case PropagationStrategy::BundledGemm:
      es.transitionMatrix(t, options_.reconstruction, options_.flavor,
                          expmWs_, out);
      break;
    case PropagationStrategy::SymmetricSymv:
      es.symmetricPropagator(t, options_.flavor, expmWs_, out);
      break;
    case PropagationStrategy::FactoredApply:
      es.makeYhat(t, out);
      break;
  }
  ++counters_.propagatorBuilds;
  propReady_[key] = 1;
  return out;
}

void BranchSiteLikelihood::propagateBranch(const Matrix& prop,
                                           const Matrix& childCpv) {
  const auto flavor = options_.flavor;
  switch (options_.propagation) {
    case PropagationStrategy::PerSiteGemv: {
      for (int h = 0; h < npat_; ++h) {
        auto tmpRow = tmp_.rowSpan(h);
        linalg::gemv(flavor, prop, childCpv.rowSpan(h), tmpRow);
      }
      break;
    }
    case PropagationStrategy::BundledGemm: {
      // tmp(h,i) = sum_j childCpv(h,j) P(i,j)  ==  (P w_h)_i for every h.
      linalg::gemmNT(flavor, childCpv, prop, tmp_);
      break;
    }
    case PropagationStrategy::SymmetricSymv: {
      // e^{Qt} w = M (Pi w) with M symmetric (Eq. 12).
      for (int h = 0; h < npat_; ++h) {
        const double* w = childCpv.row(h);
        for (int i = 0; i < n_; ++i) vecTmp_[i] = pi_[i] * w[i];
        linalg::symv(flavor, prop, vecTmp_.span(), tmp_.rowSpan(h));
      }
      // Clamp roundoff negatives (M is not elementwise non-negative).
      for (std::size_t k = 0; k < tmp_.size(); ++k)
        if (tmp_.data()[k] < 0.0) tmp_.data()[k] = 0.0;
      break;
    }
    case PropagationStrategy::FactoredApply: {
      // tmp = ((W Pi) Yhat) Yhat^T, two rectangular gemms, no n x n product.
      if (applyPiW_.rows() != static_cast<std::size_t>(npat_))
        applyPiW_.resize(npat_, n_);
      if (applyU_.rows() != static_cast<std::size_t>(npat_))
        applyU_.resize(npat_, n_);
      linalg::scaleCols(childCpv, pi_, applyPiW_);
      linalg::gemm(flavor, applyPiW_, prop, applyU_);
      linalg::gemmNT(flavor, applyU_, prop, tmp_);
      for (std::size_t k = 0; k < tmp_.size(); ++k)
        if (tmp_.data()[k] < 0.0) tmp_.data()[k] = 0.0;
      break;
    }
  }
  counters_.patternPropagations += npat_;
}

void BranchSiteLikelihood::pruneClass(int m) {
  const int root = tree_.root();
  const auto& cls = activeClasses_[m];
  for (int id : tree_.postOrder()) {
    const auto& node = tree_.node(id);
    if (node.isLeaf()) continue;
    Matrix& cpv = nodeCpv_[id];
    cpv.fill(1.0);
    auto& scaleLog = nodeScaleLog_[id];
    scaleLog.assign(npat_, 0.0);

    for (int child : node.children) {
      const bool childIsLeaf = tree_.node(child).isLeaf();
      const Matrix& childCpv = childIsLeaf ? leafCpv_[child] : nodeCpv_[child];
      const int omegaIdx = tree_.node(child).mark != 0 ? cls.omegaForeground
                                                       : cls.omegaBackground;
      const Matrix& prop = propagator(child, omegaIdx);
      propagateBranch(prop, childCpv);
      linalg::hadamardInPlace({tmp_.data(), tmp_.size()},
                              {cpv.data(), cpv.size()});
      if (!childIsLeaf)
        for (int h = 0; h < npat_; ++h) scaleLog[h] += nodeScaleLog_[child][h];
    }

    // Underflow rescue: renormalize any pattern row whose maximum dropped
    // below the threshold, remembering the removed factor in log space.
    for (int h = 0; h < npat_; ++h) {
      double mx = 0.0;
      const double* row = cpv.row(h);
      for (int i = 0; i < n_; ++i) mx = std::max(mx, row[i]);
      if (mx > 0.0 && mx < options_.scalingThreshold) {
        const double inv = 1.0 / mx;
        double* wrow = cpv.row(h);
        for (int i = 0; i < n_; ++i) wrow[i] *= inv;
        scaleLog[h] += std::log(mx);
      }
    }
  }

  // Root: mix over states with the equilibrium frequencies.
  const Matrix& rootCpv = nodeCpv_[root];
  for (int h = 0; h < npat_; ++h) {
    double f = 0.0;
    const double* row = rootCpv.row(h);
    for (int i = 0; i < n_; ++i) f += pi_[i] * row[i];
    classLik_[m][h] = f;
    classScaleLog_[m][h] = nodeScaleLog_[root][h];
  }
}

void BranchSiteLikelihood::computeClassLikelihoods(const MixtureSpec& spec) {
  spec.validate(n_);
  numClasses_ = spec.numClasses();
  numOmegas_ = spec.numOmegas();
  activeClasses_ = spec.classes;
  activeOmegas_ = spec.omegas;
  classProp_.resize(numClasses_);
  classLik_.resize(numClasses_);
  classScaleLog_.resize(numClasses_);
  for (int m = 0; m < numClasses_; ++m) {
    classProp_[m] = spec.classes[m].proportion;
    classLik_[m].assign(npat_, 0.0);
    classScaleLog_[m].assign(npat_, 0.0);
  }

  // Eigendecompose once per *distinct* omega value (e.g. under the model A
  // null, omega2 == omega1 == 1 shares one decomposition).
  eigenSystems_.clear();
  omegaToEigen_.assign(numOmegas_, -1);
  for (int k = 0; k < numOmegas_; ++k) {
    int found = -1;
    if (options_.cacheEigenByOmega) {
      for (int j = 0; j < k; ++j)
        if (spec.omegas[j] == spec.omegas[k]) {
          found = omegaToEigen_[j];
          break;
        }
    }
    if (found < 0) {
      eigenSystems_.emplace_back(spec.scaledS[k], pi_);
      ++counters_.eigenDecompositions;
      found = static_cast<int>(eigenSystems_.size()) - 1;
    }
    omegaToEigen_[k] = found;
  }

  // Propagators depend on branch lengths and omega: rebuild lazily.
  propCache_.resize(static_cast<std::size_t>(tree_.numNodes()) * numOmegas_);
  propReady_.assign(propCache_.size(), 0);

  for (int m = 0; m < numClasses_; ++m) pruneClass(m);
  ++counters_.evaluations;
}

double BranchSiteLikelihood::logLikelihood(
    const model::BranchSiteParams& params) {
  params.validate(hypothesis_);
  return logLikelihood(
      model::buildModelASpec(gc_, pi_, params, hypothesis_));
}

double BranchSiteLikelihood::logLikelihood(const MixtureSpec& spec) {
  computeClassLikelihoods(spec);

  double lnL = 0.0;
  for (int h = 0; h < npat_; ++h) {
    double maxS = classScaleLog_[0][h];
    for (int m = 1; m < numClasses_; ++m)
      maxS = std::max(maxS, classScaleLog_[m][h]);
    double f = 0.0;
    for (int m = 0; m < numClasses_; ++m)
      f += classProp_[m] * classLik_[m][h] *
           std::exp(classScaleLog_[m][h] - maxS);
    if (!(f > 0.0) || !std::isfinite(f))
      return -std::numeric_limits<double>::infinity();
    lnL += patterns_.weights[h] * (std::log(f) + maxS);
  }
  return lnL;
}

SiteClassPosteriors BranchSiteLikelihood::siteClassPosteriors(
    const model::BranchSiteParams& params) {
  params.validate(hypothesis_);
  return siteClassPosteriors(
      model::buildModelASpec(gc_, pi_, params, hypothesis_));
}

SiteClassPosteriors BranchSiteLikelihood::siteClassPosteriors(
    const MixtureSpec& spec) {
  computeClassLikelihoods(spec);

  SiteClassPosteriors out;
  out.post.assign(numClasses_, std::vector<double>(npat_, 0.0));
  out.positiveSelection.assign(npat_, 0.0);

  std::vector<double> joint(numClasses_);
  for (int h = 0; h < npat_; ++h) {
    double maxS = classScaleLog_[0][h];
    for (int m = 1; m < numClasses_; ++m)
      maxS = std::max(maxS, classScaleLog_[m][h]);
    double f = 0.0;
    for (int m = 0; m < numClasses_; ++m) {
      joint[m] = classProp_[m] * classLik_[m][h] *
                 std::exp(classScaleLog_[m][h] - maxS);
      f += joint[m];
    }
    SLIM_REQUIRE(f > 0.0, "zero site likelihood in posterior computation");
    for (int m = 0; m < numClasses_; ++m) {
      out.post[m][h] = joint[m] / f;
      // "Positive selection" = classes whose foreground omega exceeds 1.
      if (activeOmegas_[activeClasses_[m].omegaForeground] > 1.0)
        out.positiveSelection[h] += out.post[m][h];
    }
  }

  out.positiveSelectionBySite.reserve(patterns_.siteToPattern.size());
  for (int p : patterns_.siteToPattern)
    out.positiveSelectionBySite.push_back(out.positiveSelection[p]);
  return out;
}

}  // namespace slim::lik
