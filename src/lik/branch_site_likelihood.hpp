#pragma once
// Codon mixture-model likelihood via Felsenstein's pruning algorithm
// (paper Sec. II-B/II-C).
//
// The evaluator consumes a model::MixtureSpec — a set of omega classes plus
// site classes assigning omegas to background/foreground branches.  For
// each site class a post-order sweep propagates conditional probability
// vectors (CPVs) from the leaves to the root; at the root the
// class-conditional site likelihoods are mixed with the class proportions.
// Site patterns (unique alignment columns) are evaluated once and weighted
// by multiplicity.
//
// Branch-site model A (the paper's subject) is the primary instantiation;
// the pure site models M1a/M2a run through the same engine (the paper's
// "can also be applied to further maximum likelihood-based evolutionary
// models").
//
// The evaluator is the *shared* machinery of both engines; CodeML-vs-
// SlimCodeML behaviour is injected exclusively through LikelihoodOptions
// (kernel flavor, reconstruction path, propagation strategy), so measured
// speedups isolate exactly the optimizations the paper describes.

#include <cstdint>
#include <vector>

#include "bio/genetic_code.hpp"
#include "expm/codon_eigen_system.hpp"
#include "lik/options.hpp"
#include "linalg/matrix.hpp"
#include "model/branch_site.hpp"
#include "model/site_mixture.hpp"
#include "seqio/alignment.hpp"
#include "tree/tree.hpp"

namespace slim::lik {

/// Operation counters, used by benches to report work per evaluation.
struct EvalCounters {
  std::int64_t evaluations = 0;           ///< logLikelihood calls
  std::int64_t eigenDecompositions = 0;   ///< symmetric eigenproblems solved
  std::int64_t propagatorBuilds = 0;      ///< P(t) / M / Yhat constructions
  std::int64_t patternPropagations = 0;   ///< branch x class x pattern ops
};

/// Per-site (pattern) posterior probabilities of the site classes given the
/// data — the "(Naive) Empirical Bayes" output used to identify sites under
/// positive selection once the LRT is significant (paper Sec. I-A).
struct SiteClassPosteriors {
  /// post[m][h] = P(class m | pattern h); for each h the sum over m is 1.
  std::vector<std::vector<double>> post;
  /// Posterior probability of positive selection per pattern: total over
  /// classes whose foreground omega exceeds 1.
  std::vector<double> positiveSelection;
  /// Expanded to original sites via SitePatterns::siteToPattern.
  std::vector<double> positiveSelectionBySite;
};

class BranchSiteLikelihood {
 public:
  /// The tree is copied; its branch lengths are this object's optimization
  /// state (use setBranchLength / branchNodes to address them).  The tree
  /// must carry exactly one foreground mark (#1) on a non-root branch —
  /// for branch-homogeneous mixtures (M1a/M2a) the mark is inert.
  BranchSiteLikelihood(const seqio::CodonAlignment& alignment,
                       const seqio::SitePatterns& patterns,
                       std::vector<double> pi, const tree::Tree& tree,
                       model::Hypothesis hypothesis, LikelihoodOptions options);

  /// ln L of branch-site model A at the given substitution parameters and
  /// the current branch lengths.  Returns -infinity if a site likelihood
  /// underflows to zero.
  double logLikelihood(const model::BranchSiteParams& params);

  /// ln L of an arbitrary omega-class mixture (e.g. M1a/M2a from
  /// model/site_mixture.hpp) at the current branch lengths.
  double logLikelihood(const model::MixtureSpec& spec);

  /// NEB posteriors at the given parameters (typically the MLE).
  SiteClassPosteriors siteClassPosteriors(const model::BranchSiteParams& params);
  SiteClassPosteriors siteClassPosteriors(const model::MixtureSpec& spec);

  // --- branch-length state ---
  /// Non-root nodes in post-order; branch k of the optimization vector is
  /// the edge above branchNodes()[k].
  const std::vector<int>& branchNodes() const noexcept { return branchNodes_; }
  int numBranches() const noexcept { return static_cast<int>(branchNodes_.size()); }
  double branchLength(int k) const { return tree_.branchLength(branchNodes_[k]); }
  void setBranchLength(int k, double t) { tree_.setBranchLength(branchNodes_[k], t); }
  void setAllBranchLengths(double t);

  const tree::Tree& tree() const noexcept { return tree_; }
  model::Hypothesis hypothesis() const noexcept { return hypothesis_; }
  const LikelihoodOptions& options() const noexcept { return options_; }
  const std::vector<double>& pi() const noexcept { return pi_; }
  std::size_t numPatterns() const noexcept { return patterns_.numPatterns(); }
  double numSites() const noexcept { return totalWeight_; }

  const EvalCounters& counters() const noexcept { return counters_; }
  void resetCounters() noexcept { counters_ = {}; }

 private:
  // Class-conditional pattern likelihoods: fills classLik_[m][h] (scaled)
  // and classScaleLog_[m][h] (log of the removed scale).
  void computeClassLikelihoods(const model::MixtureSpec& spec);

  // One pruning sweep for site class m.
  void pruneClass(int m);

  // Ensure the propagator for (branch node, omega class) is built.
  const linalg::Matrix& propagator(int node, int omegaIdx);

  // Propagate child CPVs through one branch into tmp_ (strategy dispatch).
  void propagateBranch(const linalg::Matrix& prop, const linalg::Matrix& childCpv);

  const bio::GeneticCode& gc_;
  seqio::SitePatterns patterns_;
  std::vector<double> pi_;
  tree::Tree tree_;
  model::Hypothesis hypothesis_;
  LikelihoodOptions options_;

  int n_ = 0;             // codon states (61)
  int npat_ = 0;          // site patterns
  double totalWeight_ = 0;
  std::vector<int> branchNodes_;

  // Leaf CPVs (pattern-major: row h is the length-n CPV of pattern h).
  std::vector<linalg::Matrix> leafCpv_;   // indexed by node id (leaves only)
  std::vector<linalg::Matrix> nodeCpv_;   // per node work CPVs for one class
  std::vector<std::vector<double>> nodeScaleLog_;  // per node, per pattern
  linalg::Matrix tmp_;                    // propagation scratch (npat x n)
  linalg::Vector vecTmp_;                 // symv/gemv scratch (n)
  linalg::Matrix applyPiW_;               // FactoredApply scratch (npat x n)
  linalg::Matrix applyU_;                 // FactoredApply scratch (npat x n)

  // Per-evaluation state, set from the active MixtureSpec.
  int numClasses_ = 0;
  int numOmegas_ = 0;
  std::vector<model::MixtureClass> activeClasses_;
  std::vector<double> activeOmegas_;
  std::vector<expm::CodonEigenSystem> eigenSystems_;  // per distinct omega
  std::vector<int> omegaToEigen_;
  std::vector<linalg::Matrix> propCache_;   // (branch node x omega) -> matrix
  std::vector<std::uint8_t> propReady_;
  expm::ExpmWorkspace expmWs_;

  // Class-conditional results.
  std::vector<std::vector<double>> classLik_;
  std::vector<std::vector<double>> classScaleLog_;
  std::vector<double> classProp_;

  EvalCounters counters_;
};

}  // namespace slim::lik
