#pragma once
// Codon mixture-model likelihood via Felsenstein's pruning algorithm
// (paper Sec. II-B/II-C).
//
// The evaluator consumes a model::MixtureSpec — a set of omega classes plus
// site classes assigning omegas to background/foreground branches.  For
// each site class a post-order sweep propagates conditional probability
// vectors (CPVs) from the leaves to the root; at the root the
// class-conditional site likelihoods are mixed with the class proportions.
// Site patterns (unique alignment columns) are evaluated once and weighted
// by multiplicity.
//
// Branch-site model A (the paper's subject) is the primary instantiation;
// the pure site models M1a/M2a run through the same engine (the paper's
// "can also be applied to further maximum likelihood-based evolutionary
// models").
//
// The evaluator is the *shared* machinery of both engines; CodeML-vs-
// SlimCodeML behaviour is injected exclusively through LikelihoodOptions
// (kernel flavor, reconstruction path, propagation strategy), so measured
// speedups isolate exactly the optimizations the paper describes.

#include <cstdint>
#include <memory>
#include <vector>

#include "backend/compute_backend.hpp"
#include "backend/expm_pade.hpp"
#include "bio/genetic_code.hpp"
#include "expm/codon_eigen_system.hpp"
#include "lik/options.hpp"
#include "lik/propagator_cache.hpp"
#include "linalg/matrix.hpp"
#include "model/branch_site.hpp"
#include "model/site_mixture.hpp"
#include "seqio/alignment.hpp"
#include "support/parallel.hpp"
#include "tree/tree.hpp"

namespace slim::lik {

/// Operation counters, used by benches to report work per evaluation.
struct EvalCounters {
  std::int64_t evaluations = 0;           ///< logLikelihood calls
  std::int64_t eigenDecompositions = 0;   ///< symmetric eigenproblems solved
  std::int64_t propagatorBuilds = 0;      ///< P(t) / dP(t) / M / Yhat constructions
  std::int64_t patternPropagations = 0;   ///< branch x class x pattern ops
  /// Analytic branch-gradient sweeps (logLikelihoodGradientBranches calls);
  /// each replaces numBranches finite-difference evaluations.
  std::int64_t gradientSweeps = 0;
  /// Persistent propagator-cache traffic (only counted when
  /// LikelihoodOptions::cachePropagators is on).
  std::int64_t propagatorCacheHits = 0;
  std::int64_t propagatorCacheMisses = 0;
};

/// Merge counters from another fit/evaluator.  Callers that fan independent
/// evaluations across tasks accumulate per-task counters with this in a
/// fixed (task-index) order, so aggregate counts are deterministic and
/// nothing is clobbered by concurrent fits.
inline EvalCounters& operator+=(EvalCounters& a, const EvalCounters& b) noexcept {
  a.evaluations += b.evaluations;
  a.eigenDecompositions += b.eigenDecompositions;
  a.propagatorBuilds += b.propagatorBuilds;
  a.patternPropagations += b.patternPropagations;
  a.gradientSweeps += b.gradientSweeps;
  a.propagatorCacheHits += b.propagatorCacheHits;
  a.propagatorCacheMisses += b.propagatorCacheMisses;
  return a;
}

inline EvalCounters operator+(EvalCounters a, const EvalCounters& b) noexcept {
  a += b;
  return a;
}

/// Per-site (pattern) posterior probabilities of the site classes given the
/// data — the "(Naive) Empirical Bayes" output used to identify sites under
/// positive selection once the LRT is significant (paper Sec. I-A).
struct SiteClassPosteriors {
  /// post[m][h] = P(class m | pattern h); for each h the sum over m is 1.
  std::vector<std::vector<double>> post;
  /// Posterior probability of positive selection per pattern: total over
  /// classes whose foreground omega exceeds 1.
  std::vector<double> positiveSelection;
  /// Expanded to original sites via SitePatterns::siteToPattern.
  std::vector<double> positiveSelectionBySite;
};

class BranchSiteLikelihood {
 public:
  /// The tree is copied; its branch lengths are this object's optimization
  /// state (use setBranchLength / branchNodes to address them).  The tree's
  /// integer #k marks are read as branch classes (0 = background); a
  /// branch-heterogeneous mixture requires at least one marked non-root
  /// branch (checked per evaluation), while branch-homogeneous mixtures
  /// (M1a/M2a) run on unmarked trees.
  ///
  /// With options.cachePropagators on, `shard` (when non-null) supplies the
  /// persistent propagator store, letting warm state survive this evaluator
  /// — e.g. the site scan after an H1 fit, or a refit at the same
  /// parameters.  The shard must not be used by another evaluator
  /// concurrently (see propagator_cache.hpp).  Null: a private shard is
  /// created (the PR-1 behaviour).
  BranchSiteLikelihood(const seqio::CodonAlignment& alignment,
                       const seqio::SitePatterns& patterns,
                       std::vector<double> pi, const tree::Tree& tree,
                       model::Hypothesis hypothesis, LikelihoodOptions options,
                       std::shared_ptr<PropagatorCacheShard> shard = nullptr);

  /// ln L of branch-site model A at the given substitution parameters and
  /// the current branch lengths.  Returns -infinity if a site likelihood
  /// underflows to zero.
  double logLikelihood(const model::BranchSiteParams& params);

  /// ln L of an arbitrary omega-class mixture (e.g. M1a/M2a from
  /// model/site_mixture.hpp) at the current branch lengths.
  double logLikelihood(const model::MixtureSpec& spec);

  /// NEB posteriors at the given parameters (typically the MLE).
  SiteClassPosteriors siteClassPosteriors(const model::BranchSiteParams& params);
  SiteClassPosteriors siteClassPosteriors(const model::MixtureSpec& spec);

  // --- analytic branch-length gradients ---
  /// ln L plus the analytic derivative d lnL / d t_k for every branch k (in
  /// branchNodes() order), at the given substitution parameters and the
  /// current branch lengths.  One evaluation plus one extra pruning-style
  /// sweep: a post-order pass retaining per-node conditional panels, a
  /// pre-order pass building the complementary "outside" panels, and per
  /// branch one panel product with dP(t)/dt — O(1) sweep-equivalents for the
  /// whole branch gradient instead of the numBranches + 1 evaluations of
  /// finite differences.  Returns -infinity (gradT zeroed) if a site
  /// likelihood underflows to zero.
  double logLikelihoodGradientBranches(const model::BranchSiteParams& params,
                                       std::span<double> gradT);
  double logLikelihoodGradientBranches(const model::MixtureSpec& spec,
                                       std::span<double> gradT);

  /// Same gradient computed from the *retained* class-conditional state of
  /// the immediately preceding logLikelihood / logLikelihoodGradientBranches
  /// call, skipping the re-evaluation: the caller guarantees neither the
  /// substitution parameters nor any branch length changed since.  The
  /// optimizer adapter uses this because BFGS always differentiates at the
  /// point the line search just evaluated.
  double gradientBranchesAtLastEvaluation(std::span<double> gradT);

  // --- branch-length state ---
  /// Non-root nodes in post-order; branch k of the optimization vector is
  /// the edge above branchNodes()[k].
  const std::vector<int>& branchNodes() const noexcept { return branchNodes_; }
  int numBranches() const noexcept { return static_cast<int>(branchNodes_.size()); }
  double branchLength(int k) const { return tree_.branchLength(branchNodes_[k]); }
  void setBranchLength(int k, double t) { tree_.setBranchLength(branchNodes_[k], t); }
  void setAllBranchLengths(double t);

  const tree::Tree& tree() const noexcept { return tree_; }
  model::Hypothesis hypothesis() const noexcept { return hypothesis_; }
  const LikelihoodOptions& options() const noexcept { return options_; }
  const std::vector<double>& pi() const noexcept { return pi_; }
  std::size_t numPatterns() const noexcept { return patterns_.numPatterns(); }
  double numSites() const noexcept { return totalWeight_; }

  const EvalCounters& counters() const noexcept { return counters_; }
  void resetCounters() noexcept { counters_ = {}; }

  /// Threads actually used by the pattern-block sweep.
  int numThreads() const noexcept {
    return pool_ ? pool_->numThreads() : 1;
  }
  /// The SIMD level options().simd resolved to at construction (Scalar when
  /// the flavor is Naive — the baseline loop nests are never vectorized).
  linalg::SimdLevel simdLevel() const noexcept { return simdLevel_; }
  /// The compute backend options().backend resolved to at construction
  /// (Reference when the flavor is Naive, like simd).
  backend::BackendKind backendKind() const noexcept { return backend_.kind; }
  const char* backendName() const noexcept { return backend_.name; }
  /// The propagator builder in use (`expm =` ctl key, per-model).
  backend::ExpmAlgorithm expmAlgorithm() const noexcept { return options_.expm; }
  /// Entries currently held by the persistent propagator cache.
  std::size_t cachedPropagators() const noexcept {
    return shard_ ? shard_->entries.size() : 0;
  }
  /// The persistent store in use (null unless cachePropagators is on).
  const std::shared_ptr<PropagatorCacheShard>& cacheShard() const noexcept {
    return shard_;
  }

 private:
  // Per-worker scratch for one pattern-block pruning sweep.  Everything a
  // sweep mutates lives here, so concurrent blocks share no mutable state;
  // block results land in classLik_/classScaleLog_ slots addressed by
  // pattern index, which keeps the final reduction order — and therefore
  // the log-likelihood — independent of the thread count.
  struct PruneWorkspace {
    std::vector<linalg::Matrix> nodeCpv;  // per node: blockMax x n
    std::vector<std::vector<double>> nodeScaleLog;  // per node: blockMax
    linalg::Matrix tmp;                   // propagation scratch (blockMax x n)
    linalg::Matrix applyPiW;              // FactoredApply scratch
    linalg::Matrix applyU;                // FactoredApply scratch
    linalg::Vector vecTmp;                // symv scratch (n)
    std::int64_t patternPropagations = 0;
  };

  // Per-worker scratch for one gradient pattern block: the post-order pass
  // retains per-node conditional panels (the likelihood sweep overwrites
  // them), the pre-order pass adds the complementary outside panels.  Same
  // isolation discipline as PruneWorkspace: concurrent blocks share nothing
  // mutable, results land in slots addressed by task index.
  struct GradientWorkspace {
    std::vector<linalg::Matrix> down;   // per internal node: blockMax x n CPV
    std::vector<linalg::Matrix> prod;   // per non-root node: P * child CPV
    std::vector<linalg::Matrix> up;     // per internal node: outside panel
    std::vector<std::vector<double>> sDown;   // per node: subtree scale log
    std::vector<std::vector<double>> uScale;  // per internal node
    linalg::Matrix outside;             // one child's outside panel (scratch)
    std::vector<double> oScale;         // its scale log (scratch)
    linalg::Matrix deriv;               // dP * child CPV (scratch)
    std::int64_t patternPropagations = 0;
  };

  // Class-conditional pattern likelihoods: fills classLik_[m][h] (scaled)
  // and classScaleLog_[m][h] (log of the removed scale).
  void computeClassLikelihoods(const model::MixtureSpec& spec);

  // Mix the retained class results into per-pattern scale maxima and scaled
  // mixture likelihoods; returns lnL (-infinity on underflow).
  double mixClassLikelihoods(std::vector<double>& maxScaleLog,
                             std::vector<double>& mixture) const;

  // Whether site class m counts toward the "positive selection" posterior:
  // any non-background column of its omega row exceeds 1 (for a
  // single-column class, the class omega itself).
  bool classUnderPositiveSelection(int m) const noexcept;

  // The shared gradient pass over the retained class state (the tail of
  // logLikelihoodGradientBranches / gradientBranchesAtLastEvaluation).
  double gradientBranchesFromState(std::span<double> gradT);

  // Build the (P, P^T, dP^T) triple for every (branch node, omega) the
  // active classes reference, reusing the propagators the evaluation cached
  // where their stored layout permits.
  void buildGradientPropagators();

  // Down + up sweep for site class m over patterns [h0, h0 + len), writing
  // each branch's per-pattern gradient contribution into the class slab
  // gradOut (numBranches x numPatterns, branch-major) at [k * npat + h].
  void gradientClassBlock(int m, int h0, int len,
                          std::span<const double> maxScaleLog,
                          std::span<const double> mixture,
                          GradientWorkspace& ws, std::span<double> gradOut);

  // (Re)build eigenSystems_ / omegaToEigen_ for the spec, reusing them — and
  // keeping the propagator cache — when the spec is unchanged since the last
  // evaluation and caching is enabled.
  void prepareEigenSystems(const model::MixtureSpec& spec);

  // Build every propagator the sweep will read (serial, so the parallel
  // region only ever reads propPtr_).
  void prebuildPropagators();

  // One pruning sweep for site class m over patterns [h0, h0 + len).
  void pruneClassBlock(int m, int h0, int len, PruneWorkspace& ws);

  // Ensure the propagator for (branch node, omega class) is built.
  const linalg::Matrix& propagator(int node, int omegaIdx);

  // Reconstruct the strategy's propagator (P, M or Yhat) at branch length t.
  void buildPropagator(const expm::CodonEigenSystem& es, double t,
                       linalg::Matrix& out);

  // Adaptive-expm counterparts (options_.expm == Adaptive): plain
  // P(t) = e^{Q t} with the eigen path's roundoff-negative clamp, and the
  // strategy-oriented store (P for per-site-gemv, P^T for bundled-gemm).
  void adaptiveTransition(int eigenIdx, double t, linalg::Matrix& out);
  void buildAdaptivePropagator(int eigenIdx, double t, linalg::Matrix& out);

  // SIMD-or-flavor dispatch, kept in one place so every routed call site
  // follows the same rule (kern_ for Opt above scalar, legacy flavor path
  // otherwise — see useSimdKernels()).
  void dispatchedTransition(const expm::CodonEigenSystem& es, double t,
                            linalg::Matrix& out);
  void dispatchedDerivative(const expm::CodonEigenSystem& es, double t,
                            linalg::Matrix& dp);
  void dispatchedSymmetric(const expm::CodonEigenSystem& es, double t,
                           linalg::Matrix& out);
  void dispatchedGemm(linalg::ConstMatrixView a, linalg::ConstMatrixView b,
                      linalg::MatrixView c);
  void dispatchedFactoredPanel(const linalg::Matrix& yhat,
                               linalg::ConstMatrixView w,
                               linalg::MatrixView piW, linalg::MatrixView u,
                               linalg::MatrixView out);

  // Propagate a panel of child CPVs through one branch (strategy dispatch).
  void propagateBranch(const linalg::Matrix& prop,
                       linalg::ConstMatrixView childCpv, linalg::MatrixView out,
                       PruneWorkspace& ws);

  std::size_t propIndex(int node, int omegaIdx) const noexcept {
    return static_cast<std::size_t>(node) * numOmegas_ + omegaIdx;
  }

  const bio::GeneticCode& gc_;
  seqio::SitePatterns patterns_;
  std::vector<double> pi_;
  tree::Tree tree_;
  model::Hypothesis hypothesis_;
  LikelihoodOptions options_;

  // Compute-backend dispatch, resolved once at construction.  kern_ points
  // at backend_.ops, the selected function-pointer table; the reference
  // (scalar) table is the same code Flavor::Opt runs, so routing through it
  // never changes results.  Naive flavor keeps its own loop nests (kern_
  // unused on that path).
  linalg::SimdLevel simdLevel_ = linalg::SimdLevel::Scalar;
  backend::ComputeBackend backend_;
  const linalg::SimdKernels* kern_ = nullptr;

  // True when the hot paths should go through kern_.  The Reference backend
  // (what Auto resolves to at scalar SIMD) keeps the original Flavor::Opt
  // call path instead — bit-identical either way (the scalar table is that
  // code), but the legacy unfused reconstruction sequence avoids the fused
  // kernel's per-element clamp on a path that gains nothing from dispatch.
  bool useSimdKernels() const noexcept {
    return options_.flavor == linalg::Flavor::Opt &&
           backend_.kind != backend::BackendKind::Reference;
  }

  int n_ = 0;             // codon states (61)
  int npat_ = 0;          // site patterns
  int blockMax_ = 0;      // rows per pattern block (last block may be short)
  double totalWeight_ = 0;
  std::vector<int> branchNodes_;

  // Leaf CPVs (pattern-major: row h is the length-n CPV of pattern h).
  std::vector<linalg::Matrix> leafCpv_;   // indexed by node id (leaves only)

  // Parallel sweep machinery.
  std::unique_ptr<support::ThreadPool> pool_;   // null: single-threaded
  std::vector<PruneWorkspace> workspaces_;      // one per worker
  std::vector<GradientWorkspace> gradWorkspaces_;  // lazily sized on first use

  // Per-evaluation state, set from the active MixtureSpec.
  int numClasses_ = 0;
  int numOmegas_ = 0;
  std::vector<model::MixtureClass> activeClasses_;
  std::vector<double> activeOmegas_;
  std::vector<expm::CodonEigenSystem> eigenSystems_;  // per distinct omega
  // Adaptive-expm mode stores the rate matrices instead (same distinct-omega
  // grouping, indexed by omegaToEigen_; eigenSystems_ stays empty — no
  // decomposition happens at all on that path).
  std::vector<linalg::Matrix> rateMatrices_;
  std::vector<int> omegaToEigen_;
  std::vector<linalg::Matrix> propCache_;  // uncached-mode propagator storage
  std::vector<const linalg::Matrix*> propPtr_;  // (node x omega) -> built prop
  expm::ExpmWorkspace expmWs_;
  backend::AdaptiveExpmWorkspace adaptWs_;  // adaptive-expm scratch
  linalg::Matrix adaptQt_;                  // Q * t scratch (adaptive mode)
  linalg::Matrix transposeScratch_;  // BundledGemm builds P here, stores P^T

  // Gradient-sweep propagator tables, (node x omega)-indexed like propPtr_
  // and rebuilt per gradient call (branch lengths move every iteration):
  // P for the outside recursion, P^T and dP^T for the row-major panel gemms.
  std::vector<linalg::Matrix> gradProp_;    // P
  std::vector<linalg::Matrix> gradPropT_;   // P^T
  std::vector<linalg::Matrix> gradDerivT_;  // (dP/dt)^T
  std::vector<int> nodeToBranch_;  // node id -> branch index k (or -1)
  // Per-(class, branch, pattern) contribution slabs, persistent so the
  // per-sweep hot path only zero-fills (capacity is kept across calls).
  std::vector<double> gradContrib_;

  // Persistent propagator store (cachePropagators mode; else null).  May be
  // shared across sequential evaluators via the constructor's shard param.
  std::shared_ptr<PropagatorCacheShard> shard_;

  // Class-conditional results.
  std::vector<std::vector<double>> classLik_;
  std::vector<std::vector<double>> classScaleLog_;
  std::vector<double> classProp_;
  // Per-pattern mixing scratch (mixClassLikelihoods output), persistent so
  // the per-evaluation hot path performs no allocation.
  std::vector<double> mixMaxScaleLog_;
  std::vector<double> mixMixture_;

  EvalCounters counters_;
};

}  // namespace slim::lik
