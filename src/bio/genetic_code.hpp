#pragma once
// Genetic codes and codon arithmetic.
//
// Codons are indexed 0..63 as 16*b1 + 4*b2 + b3 with T=0,C=1,A=2,G=3 (PAML
// convention).  A GeneticCode maps the 64 codons to amino acids, identifies
// stop codons, and provides the dense "sense index" 0..S-1 over non-stop
// codons (S = 61 for the universal code) used by the 61x61 substitution
// matrices of the paper.

#include <array>
#include <optional>
#include <string>
#include <string_view>

#include "bio/nucleotide.hpp"

namespace slim::bio {

/// Number of codons over {T,C,A,G}^3.
inline constexpr int kNumCodons = 64;

/// Codon index from three nucleotides (0..63).
constexpr int codonIndex(Nucleotide b1, Nucleotide b2, Nucleotide b3) noexcept {
  return 16 * static_cast<int>(b1) + 4 * static_cast<int>(b2) +
         static_cast<int>(b3);
}

/// Nucleotide at position pos (0,1,2) of codon c (0..63).
constexpr Nucleotide codonBase(int c, int pos) noexcept {
  const int shift[3] = {16, 4, 1};
  return static_cast<Nucleotide>((c / shift[pos]) % 4);
}

/// Three-letter string, e.g. 14 -> "TGA".
std::string codonString(int codon);

/// Parse a 3-character codon; nullopt if any character is not T/C/A/G/U.
std::optional<int> codonFromString(std::string_view s) noexcept;

/// A translation table over the 64 codons.
class GeneticCode {
 public:
  /// Build from a 64-character amino-acid string in T,C,A,G codon order
  /// ('*' marks stop codons), e.g. NCBI translation tables.
  GeneticCode(std::string name, std::string_view table64);

  /// NCBI table 1 (standard/universal code): 61 sense codons,
  /// stops TAA, TAG, TGA.  This is the code the paper's 61x61 matrices use.
  static const GeneticCode& universal();

  /// NCBI table 2 (vertebrate mitochondrial): 60 sense codons.  Included to
  /// keep the library generic and to exercise non-61 dimensions in tests.
  static const GeneticCode& vertebrateMitochondrial();

  /// NCBI table 3 (yeast mitochondrial): 62 sense codons, CTN codes Thr.
  static const GeneticCode& yeastMitochondrial();

  /// NCBI table 5 (invertebrate mitochondrial): 62 sense codons, AGR = Ser.
  static const GeneticCode& invertebrateMitochondrial();

  const std::string& name() const noexcept { return name_; }

  /// Number of sense (non-stop) codons; matrix dimension n of the paper.
  int numSense() const noexcept { return numSense_; }

  bool isStop(int codon) const { return aminoAcid(codon) == '*'; }

  /// One-letter amino acid for a codon ('*' for stop).
  char aminoAcid(int codon) const;

  /// Dense index 0..numSense()-1 of a sense codon; -1 for stop codons.
  int senseIndex(int codon) const;

  /// Inverse of senseIndex: the 0..63 codon for a dense sense index.
  int codonOfSense(int sense) const;

  /// True if the two (64-index) codons code for the same amino acid.
  /// Both must be sense codons.
  bool synonymous(int c1, int c2) const;

 private:
  std::string name_;
  std::array<char, kNumCodons> aa_{};
  std::array<int, kNumCodons> senseIndex_{};
  std::array<int, kNumCodons> codonOfSense_{};  // first numSense_ entries valid
  int numSense_ = 0;
};

/// Classification of an (ordered) pair of sense codons for Eq. 1 of the
/// paper: how many positions differ, and for single-position differences
/// whether the nucleotide change is a transition and whether the codon
/// change is synonymous.
struct CodonPairClass {
  int ndiff = 0;            ///< Number of differing codon positions (0..3).
  int pos = -1;             ///< The differing position when ndiff == 1.
  bool transition = false;  ///< Valid when ndiff == 1.
  bool synonymous = false;  ///< Valid when ndiff == 1.
};

/// Classify a pair of codons (64-indices; both must be sense codons of gc).
CodonPairClass classifyCodonPair(const GeneticCode& gc, int c1, int c2);

}  // namespace slim::bio
