#pragma once
// Nucleotide alphabet, PAML convention: T=0, C=1, A=2, G=3.
// The T,C,A,G ordering matters because the genetic-code table string and the
// codon indexing (16*b1 + 4*b2 + b3) both assume it, matching PAML/CodeML.

#include <cstdint>
#include <optional>

namespace slim::bio {

enum class Nucleotide : std::uint8_t { T = 0, C = 1, A = 2, G = 3 };

/// Upper-case character for a nucleotide.
constexpr char nucleotideChar(Nucleotide n) noexcept {
  constexpr char kChars[4] = {'T', 'C', 'A', 'G'};
  return kChars[static_cast<int>(n)];
}

/// Parse one nucleotide character; accepts upper/lower case and U (RNA) as T.
/// Returns nullopt for anything else (ambiguity codes, gaps, ...).
constexpr std::optional<Nucleotide> nucleotideFromChar(char c) noexcept {
  switch (c) {
    case 'T': case 't': case 'U': case 'u': return Nucleotide::T;
    case 'C': case 'c': return Nucleotide::C;
    case 'A': case 'a': return Nucleotide::A;
    case 'G': case 'g': return Nucleotide::G;
    default: return std::nullopt;
  }
}

constexpr bool isPurine(Nucleotide n) noexcept {
  return n == Nucleotide::A || n == Nucleotide::G;
}

constexpr bool isPyrimidine(Nucleotide n) noexcept {
  return n == Nucleotide::T || n == Nucleotide::C;
}

/// A substitution between two *distinct* nucleotides is a transition when it
/// stays within purines (A<->G) or within pyrimidines (T<->C); otherwise it
/// is a transversion.  (Eq. 1 of the paper weights transitions by kappa.)
constexpr bool isTransition(Nucleotide a, Nucleotide b) noexcept {
  return a != b && ((isPurine(a) && isPurine(b)) ||
                    (isPyrimidine(a) && isPyrimidine(b)));
}

}  // namespace slim::bio
