#include "bio/genetic_code.hpp"

#include "support/require.hpp"

namespace slim::bio {

std::string codonString(int codon) {
  SLIM_REQUIRE(codon >= 0 && codon < kNumCodons, "codon index out of range");
  std::string s(3, '?');
  for (int p = 0; p < 3; ++p) s[p] = nucleotideChar(codonBase(codon, p));
  return s;
}

std::optional<int> codonFromString(std::string_view s) noexcept {
  if (s.size() != 3) return std::nullopt;
  int idx = 0;
  for (int p = 0; p < 3; ++p) {
    const auto n = nucleotideFromChar(s[p]);
    if (!n) return std::nullopt;
    idx = idx * 4 + static_cast<int>(*n);
  }
  return idx;
}

GeneticCode::GeneticCode(std::string name, std::string_view table64)
    : name_(std::move(name)) {
  SLIM_REQUIRE(table64.size() == kNumCodons,
               "genetic code table must have 64 characters");
  for (int c = 0; c < kNumCodons; ++c) {
    aa_[c] = table64[c];
    if (aa_[c] != '*') {
      senseIndex_[c] = numSense_;
      codonOfSense_[numSense_] = c;
      ++numSense_;
    } else {
      senseIndex_[c] = -1;
    }
  }
  SLIM_REQUIRE(numSense_ > 1, "genetic code must have at least 2 sense codons");
}

const GeneticCode& GeneticCode::universal() {
  // NCBI translation table 1, codons in T,C,A,G order (TTT, TTC, TTA, ...).
  static const GeneticCode code(
      "universal",
      "FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG");
  return code;
}

const GeneticCode& GeneticCode::vertebrateMitochondrial() {
  // NCBI translation table 2: TGA=W, ATA=M, AGA/AGG=stop.
  static const GeneticCode code(
      "vertebrate-mitochondrial",
      "FFLLSSSSYY**CCWWLLLLPPPPHHQQRRRRIIMMTTTTNNKKSS**VVVVAAAADDEEGGGG");
  return code;
}

const GeneticCode& GeneticCode::yeastMitochondrial() {
  // NCBI translation table 3: TGA=W, ATA=M, CTN=Thr.
  static const GeneticCode code(
      "yeast-mitochondrial",
      "FFLLSSSSYY**CCWWTTTTPPPPHHQQRRRRIIMMTTTTNNKKSSRRVVVVAAAADDEEGGGG");
  return code;
}

const GeneticCode& GeneticCode::invertebrateMitochondrial() {
  // NCBI translation table 5: TGA=W, ATA=M, AGA/AGG=Ser.
  static const GeneticCode code(
      "invertebrate-mitochondrial",
      "FFLLSSSSYY**CCWWLLLLPPPPHHQQRRRRIIMMTTTTNNKKSSSSVVVVAAAADDEEGGGG");
  return code;
}

char GeneticCode::aminoAcid(int codon) const {
  SLIM_REQUIRE(codon >= 0 && codon < kNumCodons, "codon index out of range");
  return aa_[codon];
}

int GeneticCode::senseIndex(int codon) const {
  SLIM_REQUIRE(codon >= 0 && codon < kNumCodons, "codon index out of range");
  return senseIndex_[codon];
}

int GeneticCode::codonOfSense(int sense) const {
  SLIM_REQUIRE(sense >= 0 && sense < numSense_, "sense index out of range");
  return codonOfSense_[sense];
}

bool GeneticCode::synonymous(int c1, int c2) const {
  SLIM_REQUIRE(!isStop(c1) && !isStop(c2),
               "synonymous(): both codons must be sense codons");
  return aminoAcid(c1) == aminoAcid(c2);
}

CodonPairClass classifyCodonPair(const GeneticCode& gc, int c1, int c2) {
  SLIM_REQUIRE(!gc.isStop(c1) && !gc.isStop(c2),
               "classifyCodonPair: both codons must be sense codons");
  CodonPairClass r;
  for (int p = 0; p < 3; ++p) {
    if (codonBase(c1, p) != codonBase(c2, p)) {
      ++r.ndiff;
      r.pos = p;
    }
  }
  if (r.ndiff == 1) {
    r.transition = isTransition(codonBase(c1, r.pos), codonBase(c2, r.pos));
    r.synonymous = gc.synonymous(c1, c2);
  } else {
    r.pos = -1;
  }
  return r;
}

}  // namespace slim::bio
