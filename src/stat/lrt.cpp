#include "stat/lrt.hpp"

#include <algorithm>

#include "stat/special_functions.hpp"
#include "support/require.hpp"

namespace slim::stat {

LrtResult likelihoodRatioTest(double lnL0, double lnL1, double df) {
  SLIM_REQUIRE(df > 0, "LRT: df must be positive");
  LrtResult r;
  r.lnL0 = lnL0;
  r.lnL1 = lnL1;
  r.df = df;
  // lnL1 can dip below lnL0 by optimizer noise; the statistic is 0 then.
  r.statistic = std::max(0.0, 2.0 * (lnL1 - lnL0));
  r.pChi2 = chi2Sf(r.statistic, df);
  // Boundary mixture (1/2) chi2_0 + (1/2) chi2_df: point mass at 0 halves
  // the tail for any positive statistic.
  r.pMixture = r.statistic <= 0.0 ? 1.0 : 0.5 * chi2Sf(r.statistic, df);
  return r;
}

}  // namespace slim::stat
