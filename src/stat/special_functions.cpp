#include "stat/special_functions.hpp"

#include <cmath>
#include <limits>

#include "support/require.hpp"

namespace slim::stat {

namespace {

constexpr int kMaxIter = 500;
constexpr double kEps = 1e-15;

// Series representation: P(a,x) = e^{-x} x^a / Gamma(a) * sum x^n / (a)_n+1.
// Converges fast for x < a + 1.
double gammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for Q(a,x) via modified Lentz; converges for x > a + 1.
double gammaQContinuedFraction(double a, double x) {
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double regularizedGammaP(double a, double x) {
  SLIM_REQUIRE(a > 0.0, "regularizedGammaP: a must be > 0");
  SLIM_REQUIRE(x >= 0.0, "regularizedGammaP: x must be >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gammaPSeries(a, x);
  return 1.0 - gammaQContinuedFraction(a, x);
}

double regularizedGammaQ(double a, double x) {
  SLIM_REQUIRE(a > 0.0, "regularizedGammaQ: a must be > 0");
  SLIM_REQUIRE(x >= 0.0, "regularizedGammaQ: x must be >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gammaPSeries(a, x);
  return gammaQContinuedFraction(a, x);
}

double chi2Cdf(double x, double k) {
  SLIM_REQUIRE(k > 0.0, "chi2: degrees of freedom must be > 0");
  if (x <= 0.0) return 0.0;
  return regularizedGammaP(0.5 * k, 0.5 * x);
}

double chi2Sf(double x, double k) {
  SLIM_REQUIRE(k > 0.0, "chi2: degrees of freedom must be > 0");
  if (x <= 0.0) return 1.0;
  return regularizedGammaQ(0.5 * k, 0.5 * x);
}

double chi2Quantile(double p, double k) {
  SLIM_REQUIRE(p >= 0.0 && p < 1.0, "chi2Quantile: p must be in [0,1)");
  if (p == 0.0) return 0.0;
  double lo = 0.0, hi = 1.0;
  while (chi2Cdf(hi, k) < p) {
    hi *= 2.0;
    SLIM_REQUIRE(hi < 1e12, "chi2Quantile: p too close to 1");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (chi2Cdf(mid, k) < p)
      lo = mid;
    else
      hi = mid;
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace slim::stat
