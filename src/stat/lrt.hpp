#pragma once
// The likelihood-ratio test for positive selection (paper Sec. I-A):
// 2(lnL1 - lnL0) is compared against chi-square critical values.  For the
// branch-site test, omega2 = 1 lies on the boundary of the H1 parameter
// space, so the asymptotic null is the 50:50 mixture (1/2) chi2_0 + (1/2)
// chi2_1; PAML's manual recommends chi2_1 for a conservative test.  Both
// p-values are reported.

namespace slim::stat {

struct LrtResult {
  double lnL0 = 0;        ///< Maximized log-likelihood under H0.
  double lnL1 = 0;        ///< Maximized log-likelihood under H1.
  double statistic = 0;   ///< 2 (lnL1 - lnL0), clamped at 0.
  double pChi2 = 1;       ///< p-value from chi2 with df degrees of freedom.
  double pMixture = 1;    ///< p-value from the boundary mixture null.
  double df = 1;

  bool significantAt(double alpha) const noexcept { return pChi2 < alpha; }
};

/// Build the LRT from the two maximized log-likelihoods.
/// df is 1 for the branch-site test of the paper.
LrtResult likelihoodRatioTest(double lnL0, double lnL1, double df = 1.0);

}  // namespace slim::stat
