#pragma once
// Special functions needed for the likelihood-ratio test: the regularized
// incomplete gamma function and the chi-square distribution built on it.
// Implemented from the standard series / continued-fraction expansions
// (Abramowitz & Stegun 6.5; modified Lentz for the continued fraction).

namespace slim::stat {

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x) / Gamma(a).
/// Domain: a > 0, x >= 0.
double regularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularizedGammaQ(double a, double x);

/// Chi-square CDF with k degrees of freedom, k > 0 (may be fractional).
double chi2Cdf(double x, double k);

/// Chi-square survival function 1 - CDF (the p-value tail).
double chi2Sf(double x, double k);

/// Chi-square quantile by bisection: smallest x with CDF(x) >= p.
double chi2Quantile(double p, double k);

}  // namespace slim::stat
