#pragma once
// Equilibrium codon frequency estimators.
//
// "the codon frequencies pi_i used in the model are determined empirically
// from the MSA" (paper Sec. II-A).  CodeML offers several estimators
// (CodonFreq = 0..3); all four are provided.  Frequencies are guaranteed
// strictly positive (required by the Pi^{1/2} symmetrization of Eq. 2) and
// sum to one.

#include <vector>

#include "seqio/alignment.hpp"

namespace slim::model {

enum class CodonFrequencyModel {
  Equal,  ///< 1/numSense for every sense codon (CodonFreq = 0).
  F1x4,   ///< Products of overall nucleotide frequencies (CodonFreq = 1).
  F3x4,   ///< Products of position-specific nucleotide frequencies (CodonFreq = 2).
  F61,    ///< Empirical sense-codon proportions (CodonFreq = 3).
};

const char* codonFrequencyModelName(CodonFrequencyModel m) noexcept;

/// Estimate equilibrium codon frequencies from the alignment.
/// minFrequency floors every entry before renormalization so that
/// frequencies are strictly positive even for codons absent from the data.
std::vector<double> estimateCodonFrequencies(
    const seqio::CodonAlignment& ca, CodonFrequencyModel m,
    double minFrequency = 1e-7);

/// Validate a frequency vector: correct length, all > 0, sums to 1 within
/// tolerance.  Throws std::invalid_argument on violation.
void validateFrequencies(const std::vector<double>& pi, int numSense);

}  // namespace slim::model
