#include "model/site_mixture.hpp"

#include <cmath>

#include "model/codon_model.hpp"
#include "model/model_spec.hpp"
#include "support/require.hpp"

namespace slim::model {

using linalg::Matrix;

void MixtureSpec::validate(int numSense) const {
  SLIM_REQUIRE(!omegas.empty() && !classes.empty(), "empty mixture");
  SLIM_REQUIRE(omegas.size() == scaledS.size(), "omegas/scaledS mismatch");
  for (const auto& s : scaledS)
    SLIM_REQUIRE(s.rows() == static_cast<std::size_t>(numSense) && s.square(),
                 "scaled exchangeability has wrong shape");
  double total = 0;
  for (const auto& c : classes) {
    SLIM_REQUIRE(c.proportion > 0, "class proportion must be > 0");
    SLIM_REQUIRE(!c.omega.empty(), "class omega row must not be empty");
    for (const int w : c.omega)
      SLIM_REQUIRE(w >= 0 && w < numOmegas(), "omega index out of range");
    total += c.proportion;
  }
  SLIM_REQUIRE(std::fabs(total - 1.0) < 1e-9,
               "class proportions must sum to 1");
  SLIM_REQUIRE(scale > 0, "scale must be positive");
}

bool MixtureSpec::branchHomogeneous() const noexcept {
  for (const auto& c : classes)
    for (const int w : c.omega)
      if (w != c.omega.front()) return false;
  return true;
}

MixtureSpec buildMixtureSpec(const bio::GeneticCode& gc,
                             std::span<const double> pi, double kappa,
                             std::vector<double> omegas,
                             std::vector<MixtureClass> classes) {
  const int n = gc.numSense();
  SLIM_REQUIRE(static_cast<int>(pi.size()) == n, "pi has wrong length");

  MixtureSpec spec;
  spec.omegas = std::move(omegas);
  spec.classes = std::move(classes);
  spec.scaledS.assign(spec.omegas.size(), Matrix(n, n));

  std::vector<double> rate(spec.omegas.size());
  Matrix q(n, n);
  for (std::size_t k = 0; k < spec.omegas.size(); ++k) {
    buildExchangeability(gc, kappa, spec.omegas[k], spec.scaledS[k]);
    rate[k] = buildRateMatrix(spec.scaledS[k], pi, q);
    SLIM_REQUIRE(rate[k] > 0, "degenerate rate matrix");
  }

  double scale = 0;
  for (const auto& c : spec.classes)
    scale += c.proportion * rate[c.omegaBackground()];
  SLIM_REQUIRE(scale > 0, "degenerate scale factor");
  spec.scale = scale;
  for (auto& s : spec.scaledS)
    for (std::size_t i = 0; i < s.size(); ++i) s.data()[i] /= scale;

  spec.validate(n);
  return spec;
}

MixtureSpec buildModelASpec(const bio::GeneticCode& gc,
                            std::span<const double> pi,
                            const BranchSiteParams& params, Hypothesis h) {
  params.validate(h);
  const auto omegas = params.distinctOmegas(h);
  const auto prop = siteClassProportions(params.p0, params.p1);
  const ModelSpec table = ModelSpec::branchSite();
  std::vector<MixtureClass> classes(kNumSiteClasses);
  for (int m = 0; m < kNumSiteClasses; ++m)
    classes[m] = {prop[m], table.omegaSlotFor(m, 0), table.omegaSlotFor(m, 1)};
  return buildMixtureSpec(gc, pi, params.kappa,
                          {omegas.begin(), omegas.end()}, std::move(classes));
}

MixtureSpec buildM1aSpec(const bio::GeneticCode& gc,
                         std::span<const double> pi,
                         const SiteModelParams& params) {
  SLIM_REQUIRE(params.kappa > 0, "kappa must be > 0");
  SLIM_REQUIRE(params.omega0 > 0 && params.omega0 < 1,
               "omega0 must be in (0,1)");
  SLIM_REQUIRE(params.p0 > 0 && params.p0 < 1, "p0 must be in (0,1)");
  return buildMixtureSpec(gc, pi, params.kappa, {params.omega0, 1.0},
                          {{params.p0, 0, 0}, {1.0 - params.p0, 1, 1}});
}

MixtureSpec buildM2aSpec(const bio::GeneticCode& gc,
                         std::span<const double> pi,
                         const SiteModelParams& params) {
  SLIM_REQUIRE(params.kappa > 0, "kappa must be > 0");
  SLIM_REQUIRE(params.omega0 > 0 && params.omega0 < 1,
               "omega0 must be in (0,1)");
  SLIM_REQUIRE(params.omega2 >= 1, "omega2 must be >= 1");
  SLIM_REQUIRE(params.p0 > 0 && params.p1 > 0 && params.p0 + params.p1 < 1,
               "need p0, p1 > 0 and p0 + p1 < 1");
  return buildMixtureSpec(
      gc, pi, params.kappa, {params.omega0, 1.0, params.omega2},
      {{params.p0, 0, 0},
       {params.p1, 1, 1},
       {1.0 - params.p0 - params.p1, 2, 2}});
}

}  // namespace slim::model
