#pragma once
// The codon substitution model of Eq. 1 (Goldman-Yang / Nielsen-Yang form).
//
//          | 0            two or more nucleotide differences
//          | pi_j         synonymous transversion
//   q_ij = | kappa pi_j   synonymous transition
//          | omega pi_j   non-synonymous transversion
//          | omega kappa pi_j  non-synonymous transition
//
// Factorization used throughout: Q = S Pi with S symmetric (s_ij equals the
// kappa/omega factor, s_ji = s_ij) and Pi = diag(pi).  This is what makes the
// Eq. 2 symmetrization A = Pi^{1/2} S Pi^{1/2} exact.

#include <span>
#include <vector>

#include "bio/genetic_code.hpp"
#include "linalg/matrix.hpp"

namespace slim::model {

/// Fill the symmetric exchangeability matrix S(kappa, omega) over the sense
/// codons of gc: s_ij = kappa^[transition] * omega^[non-synonymous] for
/// single-nucleotide-difference pairs, 0 otherwise (including the diagonal).
void buildExchangeability(const bio::GeneticCode& gc, double kappa,
                          double omega, linalg::Matrix& s);

/// Build the instantaneous rate matrix Q = S Pi with the diagonal set to
/// minus the row sums, and return the expected substitution rate
/// mu = -sum_i pi_i q_ii of the *unscaled* matrix.  Q is not normalized here;
/// the branch-site model applies one common scale across site classes.
double buildRateMatrix(const linalg::Matrix& s, std::span<const double> pi,
                       linalg::Matrix& q);

/// Expected rate -sum_i pi_i q_ii of a rate matrix.
double expectedRate(const linalg::Matrix& q, std::span<const double> pi);

/// Q := Q / factor.
void scaleRateMatrix(linalg::Matrix& q, double factor);

/// Structural checks for a CTMC generator: off-diagonal >= 0, rows sum to ~0,
/// detailed balance pi_i q_ij == pi_j q_ji.  Throws on violation; used in
/// tests and debug paths.
void validateGenerator(const linalg::Matrix& q, std::span<const double> pi,
                       double tol = 1e-10);

}  // namespace slim::model
