#include "model/model_spec.hpp"

#include "support/require.hpp"

namespace slim::model {

void ModelSpec::validate() const {
  switch (kind) {
    case ModelKind::BranchSite:
      SLIM_REQUIRE(numBranchClasses == 2,
                   "branch-site model uses exactly 2 branch classes "
                   "(background + foreground)");
      break;
    case ModelKind::Branch:
    case ModelKind::CladeC:
      SLIM_REQUIRE(numBranchClasses >= 2,
                   "branch/clade models need at least 2 branch classes "
                   "(mark at least one branch)");
      break;
  }
}

int ModelSpec::numSiteClasses() const noexcept {
  switch (kind) {
    case ModelKind::BranchSite: return kNumSiteClasses;  // 0, 1, 2a, 2b
    case ModelKind::Branch: return 1;
    default: return 3;  // CladeC: 0, 1, 2 (divergent)
  }
}

int ModelSpec::numOmegaSlots(Hypothesis h) const noexcept {
  switch (kind) {
    case ModelKind::BranchSite: return kNumOmegaClasses;
    case ModelKind::Branch: return h == Hypothesis::H1 ? numBranchClasses : 1;
    default:  // CladeC: omega0, 1, then the divergent omegas.
      return h == Hypothesis::H1 ? 2 + numBranchClasses : 3;
  }
}

std::vector<std::vector<int>> ModelSpec::omegaAssignment(Hypothesis h) const {
  validate();
  std::vector<std::vector<int>> table;
  switch (kind) {
    case ModelKind::BranchSite:
      // Table I of Zhang, Nielsen & Yang (2005): rows 0, 1, 2a, 2b over
      // columns {background, foreground}; slots {omega0, 1, omega2}.
      table = {{kOmegaConserved, kOmegaConserved},
               {kOmegaNeutral, kOmegaNeutral},
               {kOmegaConserved, kOmegaPositive},
               {kOmegaNeutral, kOmegaPositive}};
      break;
    case ModelKind::Branch: {
      std::vector<int> row;
      const int slots = numOmegaSlots(h);
      for (int b = 0; b < numBranchClasses; ++b)
        row.push_back(b < slots ? b : slots - 1);
      table = {row};
      break;
    }
    case ModelKind::CladeC: {
      std::vector<int> divergent;
      for (int b = 0; b < numBranchClasses; ++b)
        divergent.push_back(h == Hypothesis::H1 ? 2 + b : 2);
      table = {{0}, {1}, divergent};
      break;
    }
  }
  return table;
}

int ModelSpec::omegaSlotFor(int siteClass, int branchClass,
                            Hypothesis h) const {
  const auto table = omegaAssignment(h);
  SLIM_REQUIRE(siteClass >= 0 &&
                   siteClass < static_cast<int>(table.size()),
               "site class out of range");
  const auto& row = table[static_cast<std::size_t>(siteClass)];
  const auto b = static_cast<std::size_t>(branchClass);
  return b < row.size() ? row[b] : row.back();
}

double ModelSpec::lrtDegreesOfFreedom() const noexcept {
  switch (kind) {
    case ModelKind::BranchSite: return 1.0;
    case ModelKind::Branch:
    case ModelKind::CladeC:
    default: return static_cast<double>(numBranchClasses - 1);
  }
}

int ModelSpec::numClassOmegaParams(Hypothesis h) const noexcept {
  switch (kind) {
    case ModelKind::BranchSite: return 0;
    case ModelKind::Branch: return h == Hypothesis::H1 ? numBranchClasses : 1;
    default: return h == Hypothesis::H1 ? numBranchClasses : 1;  // divergent
  }
}

MixtureSpec buildBranchModelSpec(const bio::GeneticCode& gc,
                                 std::span<const double> pi, double kappa,
                                 std::span<const double> classOmegas) {
  SLIM_REQUIRE(kappa > 0, "kappa must be > 0");
  SLIM_REQUIRE(!classOmegas.empty(), "branch model needs >= 1 omega");
  for (const double w : classOmegas)
    SLIM_REQUIRE(w > 0, "branch-class omega must be > 0");
  std::vector<int> row(classOmegas.size());
  for (std::size_t b = 0; b < row.size(); ++b) row[b] = static_cast<int>(b);
  return buildMixtureSpec(gc, pi, kappa,
                          {classOmegas.begin(), classOmegas.end()},
                          {MixtureClass(1.0, std::move(row))});
}

MixtureSpec buildCladeCSpec(const bio::GeneticCode& gc,
                            std::span<const double> pi, double kappa,
                            double omega0, double p0, double p1,
                            std::span<const double> divergentOmegas) {
  SLIM_REQUIRE(kappa > 0, "kappa must be > 0");
  SLIM_REQUIRE(omega0 > 0 && omega0 < 1, "omega0 must be in (0,1)");
  SLIM_REQUIRE(p0 > 0 && p1 > 0 && p0 + p1 < 1,
               "need p0, p1 > 0 and p0 + p1 < 1");
  SLIM_REQUIRE(!divergentOmegas.empty(), "clade model C needs >= 1 "
                                         "divergent omega");
  for (const double w : divergentOmegas)
    SLIM_REQUIRE(w > 0, "divergent omega must be > 0");
  std::vector<double> omegas = {omega0, 1.0};
  omegas.insert(omegas.end(), divergentOmegas.begin(), divergentOmegas.end());
  std::vector<int> divergentRow(divergentOmegas.size());
  for (std::size_t b = 0; b < divergentRow.size(); ++b)
    divergentRow[b] = static_cast<int>(2 + b);
  return buildMixtureSpec(
      gc, pi, kappa, std::move(omegas),
      {MixtureClass(p0, 0, 0), MixtureClass(p1, 1, 1),
       MixtureClass(1.0 - p0 - p1, std::move(divergentRow))});
}

}  // namespace slim::model
