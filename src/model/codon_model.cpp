#include "model/codon_model.hpp"

#include <cmath>

#include "support/require.hpp"

namespace slim::model {

using bio::GeneticCode;
using linalg::Matrix;

void buildExchangeability(const GeneticCode& gc, double kappa, double omega,
                          Matrix& s) {
  SLIM_REQUIRE(kappa > 0, "kappa must be positive");
  SLIM_REQUIRE(omega >= 0, "omega must be non-negative");
  const int n = gc.numSense();
  SLIM_REQUIRE(s.rows() == static_cast<std::size_t>(n) && s.square(),
               "exchangeability matrix has wrong shape");
  s.fill(0.0);
  for (int i = 0; i < n; ++i) {
    const int ci = gc.codonOfSense(i);
    for (int j = i + 1; j < n; ++j) {
      const int cj = gc.codonOfSense(j);
      const auto cls = bio::classifyCodonPair(gc, ci, cj);
      if (cls.ndiff != 1) continue;
      double v = 1.0;
      if (cls.transition) v *= kappa;
      if (!cls.synonymous) v *= omega;
      s(i, j) = v;
      s(j, i) = v;
    }
  }
}

double buildRateMatrix(const Matrix& s, std::span<const double> pi, Matrix& q) {
  const std::size_t n = s.rows();
  SLIM_REQUIRE(s.square() && pi.size() == n, "rate matrix: size mismatch");
  SLIM_REQUIRE(q.rows() == n && q.square(), "rate matrix: output shape");
  double mu = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double rowSum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double v = s(i, j) * pi[j];
      q(i, j) = v;
      rowSum += v;
    }
    q(i, i) = -rowSum;
    mu += pi[i] * rowSum;
  }
  return mu;
}

double expectedRate(const Matrix& q, std::span<const double> pi) {
  SLIM_REQUIRE(q.square() && pi.size() == q.rows(), "expectedRate: shape");
  double mu = 0.0;
  for (std::size_t i = 0; i < q.rows(); ++i) mu -= pi[i] * q(i, i);
  return mu;
}

void scaleRateMatrix(Matrix& q, double factor) {
  SLIM_REQUIRE(factor > 0, "scale factor must be positive");
  for (std::size_t k = 0; k < q.size(); ++k) q.data()[k] /= factor;
}

void validateGenerator(const Matrix& q, std::span<const double> pi,
                       double tol) {
  const std::size_t n = q.rows();
  SLIM_REQUIRE(q.square() && pi.size() == n, "validateGenerator: shape");
  for (std::size_t i = 0; i < n; ++i) {
    double rowSum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j)
        SLIM_REQUIRE(q(i, j) >= 0.0, "negative off-diagonal rate");
      rowSum += q(i, j);
    }
    SLIM_REQUIRE(std::fabs(rowSum) < tol, "generator row does not sum to 0");
    for (std::size_t j = i + 1; j < n; ++j)
      SLIM_REQUIRE(std::fabs(pi[i] * q(i, j) - pi[j] * q(j, i)) < tol,
                   "detailed balance violated");
  }
}

}  // namespace slim::model
