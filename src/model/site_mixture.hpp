#pragma once
// Generic omega-class mixtures.
//
// Branch-site model A is one member of a family of codon mixture models;
// the paper's conclusion notes that "the optimized likelihood computation
// can also be applied to further maximum likelihood-based evolutionary
// models".  MixtureSpec is the common description the likelihood engine
// consumes: a set of distinct omega classes (with pre-scaled
// exchangeabilities) plus site classes assigning an omega to each *branch
// class* (the integer #k Newick mark; 0 = background).  Site models (no
// branch component) simply use one omega for every branch class.
//
// Provided builders:
//   - model A / model A-null      (Table I; used via branch_site.hpp)
//   - M1a "nearly neutral"        (classes: omega0 < 1, omega1 = 1)
//   - M2a "positive selection"    (M1a + a class with omega2 > 1)
// The M1a-vs-M2a LRT (df = 2) is the classic *site* test for positive
// selection (Yang et al. 2005), complementing the branch-site test.
// Branch and clade model C builders live in model/model_spec.hpp.

#include <cstddef>
#include <vector>

#include "bio/genetic_code.hpp"
#include "linalg/matrix.hpp"
#include "model/branch_site.hpp"

namespace slim::model {

/// One site class of a mixture: a weight plus the omega assignment row,
/// one entry per branch class.  Branch classes beyond the row clamp to the
/// last entry, so a two-entry {background, foreground} row behaves exactly
/// like the classic boolean foreground switch.
struct MixtureClass {
  double proportion = 0;  ///< Class weight; all proportions sum to 1.
  std::vector<int> omega;  ///< omega[b] = index into MixtureSpec::omegas
                           ///< for branch class b; omega[0] = background.

  MixtureClass() = default;
  /// Classic two-column (background, foreground) row; collapses to a
  /// single entry when both columns agree (pure site class).
  MixtureClass(double p, int background, int foreground) : proportion(p) {
    omega.push_back(background);
    if (foreground != background) omega.push_back(foreground);
  }
  /// General row: one omega index per branch class.
  MixtureClass(double p, std::vector<int> perBranchClass)
      : proportion(p), omega(std::move(perBranchClass)) {}

  int omegaBackground() const noexcept { return omega.front(); }
  int omegaForeground() const noexcept { return omega.back(); }
  /// The omega index for branch class `branchClass` (a tree mark); marks
  /// beyond the row clamp to the last column.
  int omegaFor(int branchClass) const noexcept {
    const auto b = static_cast<std::size_t>(branchClass);
    return b < omega.size() ? omega[b] : omega.back();
  }
};

/// A ready-to-evaluate mixture: distinct omegas with their scaled
/// exchangeability matrices, plus the site classes.
struct MixtureSpec {
  std::vector<double> omegas;            ///< Distinct omega values.
  std::vector<linalg::Matrix> scaledS;   ///< S(kappa, omega_k) / scale.
  std::vector<MixtureClass> classes;
  double scale = 1.0;

  int numClasses() const noexcept { return static_cast<int>(classes.size()); }
  int numOmegas() const noexcept { return static_cast<int>(omegas.size()); }

  /// Structural checks (proportions sum to 1, indices in range, shapes).
  void validate(int numSense) const;

  /// True when no class distinguishes any branch class from the background
  /// (a pure site model, evaluable on an unmarked tree).
  bool branchHomogeneous() const noexcept;
};

/// Common scaling convention: one factor normalizing the proportion-weighted
/// mean *background* substitution rate to 1 (branch lengths = expected
/// substitutions per codon averaged over classes).
MixtureSpec buildMixtureSpec(const bio::GeneticCode& gc,
                             std::span<const double> pi, double kappa,
                             std::vector<double> omegas,
                             std::vector<MixtureClass> classes);

/// Model A of Table I as a MixtureSpec (equivalent to buildBranchSiteQSet +
/// siteClassProportions; used by the generic evaluator path).
MixtureSpec buildModelASpec(const bio::GeneticCode& gc,
                            std::span<const double> pi,
                            const BranchSiteParams& params, Hypothesis h);

/// Parameters of the M1a / M2a site models.
struct SiteModelParams {
  double kappa = 2.0;
  double omega0 = 0.1;  ///< in (0,1)
  double omega2 = 2.0;  ///< > 1; M2a only
  double p0 = 0.5;      ///< proportion of the conserved class
  double p1 = 0.4;      ///< proportion of the neutral class; M2a only
                        ///< (M1a uses p1 = 1 - p0)
};

/// M1a "nearly neutral": classes {omega0 (p0), omega1 = 1 (1-p0)}.
MixtureSpec buildM1aSpec(const bio::GeneticCode& gc,
                         std::span<const double> pi,
                         const SiteModelParams& params);

/// M2a "positive selection": classes {omega0 (p0), 1 (p1), omega2 (rest)}.
MixtureSpec buildM2aSpec(const bio::GeneticCode& gc,
                         std::span<const double> pi,
                         const SiteModelParams& params);

}  // namespace slim::model
