#pragma once
// The branch-classification model-spec layer.
//
// A scenario is described by (a) a *branch classification* — the integer #k
// Newick marks partitioning branches into classes 0..B-1, class 0 being the
// background (tree/branch_classes.hpp) — and (b) a ModelSpec owning the
// (site class x branch class) -> omega-slot assignment table.  Three model
// families are expressed as instances of the same spec:
//
//   branch-site A   4 site classes x 2 branch classes, Table I
//                   (the former omegaIndexFor(siteClass, bool) switch)
//   branch          1 site class, one free omega per branch class
//                   (H0: a single shared omega; LRT df = B - 1)
//   clade-c         3 site classes; class 2 is divergent with its own
//                   omega per branch class (H0 = M2a_rel, shared divergent
//                   omega; LRT df = B - 1)
//
// ModelSpec is a cheap value type carried in core::FitOptions; the numeric
// builders below turn concrete parameter values into the MixtureSpec the
// likelihood engine consumes.

#include <span>
#include <vector>

#include "model/site_mixture.hpp"

namespace slim::model {

enum class ModelKind { BranchSite, Branch, CladeC };

inline const char* modelKindName(ModelKind k) noexcept {
  switch (k) {
    case ModelKind::BranchSite: return "branch-site";
    case ModelKind::Branch: return "branch";
    default: return "clade-c";
  }
}

/// Structural description of one scenario: which model family, over how
/// many branch classes.  Owns the omega assignment table.
struct ModelSpec {
  ModelKind kind = ModelKind::BranchSite;
  int numBranchClasses = 2;  ///< B; class 0 is the background.

  static ModelSpec branchSite() { return {ModelKind::BranchSite, 2}; }
  static ModelSpec branch(int numBranchClasses) {
    return {ModelKind::Branch, numBranchClasses};
  }
  static ModelSpec cladeC(int numBranchClasses) {
    return {ModelKind::CladeC, numBranchClasses};
  }

  /// Throws std::invalid_argument on an impossible shape.
  void validate() const;

  int numSiteClasses() const noexcept;

  /// Number of distinct omega slots under hypothesis h.
  int numOmegaSlots(Hypothesis h) const noexcept;

  /// The assignment table: row per site class, column per branch class,
  /// entries are omega-slot indices.  For the branch-site kind the table is
  /// hypothesis-independent (H0 pins the slot's *value*, not the slot).
  std::vector<std::vector<int>> omegaAssignment(Hypothesis h) const;

  /// One table cell; branch classes beyond the table clamp to the last
  /// column (matching MixtureClass::omegaFor).
  int omegaSlotFor(int siteClass, int branchClass,
                   Hypothesis h = Hypothesis::H1) const;

  /// Degrees of freedom of the H1-vs-H0 likelihood-ratio test.
  double lrtDegreesOfFreedom() const noexcept;

  /// Number of free per-branch-class omega parameters under h (0 for
  /// branch-site, which keeps its classic kappa/omega0/omega2/p0/p1 set).
  int numClassOmegaParams(Hypothesis h) const noexcept;

  friend bool operator==(const ModelSpec&, const ModelSpec&) = default;
};

/// Branch model: no site mixture, one omega per branch class.  Pass one
/// omega per branch class (H1) or a single shared omega (H0).
MixtureSpec buildBranchModelSpec(const bio::GeneticCode& gc,
                                 std::span<const double> pi, double kappa,
                                 std::span<const double> classOmegas);

/// Clade model C: site classes {0: omega0 everywhere (p0), 1: omega = 1
/// everywhere (p1), 2: divergent}.  Pass the divergent omegas — one per
/// branch class (H1) or a single shared value (H0 = M2a_rel).
MixtureSpec buildCladeCSpec(const bio::GeneticCode& gc,
                            std::span<const double> pi, double kappa,
                            double omega0, double p0, double p1,
                            std::span<const double> divergentOmegas);

}  // namespace slim::model
