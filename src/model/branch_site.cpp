#include "model/branch_site.hpp"

#include "support/require.hpp"

namespace slim::model {

using linalg::Matrix;

void BranchSiteParams::validate(Hypothesis h) const {
  SLIM_REQUIRE(kappa > 0, "kappa must be > 0");
  SLIM_REQUIRE(omega0 > 0 && omega0 < 1, "omega0 must be in (0,1)");
  if (h == Hypothesis::H1)
    SLIM_REQUIRE(omega2 >= 1, "omega2 must be >= 1 under H1");
  SLIM_REQUIRE(p0 > 0 && p1 > 0, "p0 and p1 must be > 0");
  SLIM_REQUIRE(p0 + p1 < 1, "p0 + p1 must be < 1");
}

std::array<double, kNumOmegaClasses> BranchSiteParams::distinctOmegas(
    Hypothesis h) const {
  return {omega0, 1.0, h == Hypothesis::H0 ? 1.0 : omega2};
}

std::array<double, kNumSiteClasses> siteClassProportions(double p0, double p1) {
  SLIM_REQUIRE(p0 > 0 && p1 > 0 && p0 + p1 < 1,
               "site class proportions: need p0, p1 > 0 and p0 + p1 < 1");
  const double rest = 1.0 - p0 - p1;
  const double denom = p0 + p1;
  return {p0, p1, rest * p0 / denom, rest * p1 / denom};
}

Matrix BranchSiteQSet::rateMatrix(int omegaIndex,
                                  std::span<const double> pi) const {
  SLIM_REQUIRE(omegaIndex >= 0 && omegaIndex < kNumOmegaClasses,
               "omega index out of range");
  const Matrix& s = scaledS[omegaIndex];
  Matrix q(s.rows(), s.cols());
  buildRateMatrix(s, pi, q);
  return q;
}

BranchSiteQSet buildBranchSiteQSet(const bio::GeneticCode& gc,
                                   std::span<const double> pi,
                                   const BranchSiteParams& params,
                                   Hypothesis h) {
  params.validate(h);
  const int n = gc.numSense();
  SLIM_REQUIRE(static_cast<int>(pi.size()) == n,
               "frequency vector has wrong length");

  BranchSiteQSet set;
  set.omegas = params.distinctOmegas(h);
  set.scaledS.assign(kNumOmegaClasses, Matrix(n, n));

  // Unscaled exchangeabilities and their expected rates.
  std::array<double, kNumOmegaClasses> rate{};
  Matrix q(n, n);
  for (int k = 0; k < kNumOmegaClasses; ++k) {
    buildExchangeability(gc, params.kappa, set.omegas[k], set.scaledS[k]);
    rate[k] = buildRateMatrix(set.scaledS[k], pi, q);
    SLIM_REQUIRE(rate[k] > 0, "degenerate rate matrix (zero expected rate)");
  }

  // One common scale: site-class-weighted mean background rate = 1.
  // Background omegas per Table I: class 0 and 2a use omega0, 1 and 2b use 1.
  const auto prop = siteClassProportions(params.p0, params.p1);
  const double scale = (prop[0] + prop[2]) * rate[kOmegaConserved] +
                       (prop[1] + prop[3]) * rate[kOmegaNeutral];
  SLIM_REQUIRE(scale > 0, "degenerate scale factor");
  set.scale = scale;
  for (auto& s : set.scaledS)
    for (std::size_t i = 0; i < s.size(); ++i) s.data()[i] /= scale;
  return set;
}

}  // namespace slim::model
