#include "model/frequencies.hpp"

#include <cmath>
#include <numeric>

#include "support/require.hpp"

namespace slim::model {

const char* codonFrequencyModelName(CodonFrequencyModel m) noexcept {
  switch (m) {
    case CodonFrequencyModel::Equal: return "Equal";
    case CodonFrequencyModel::F1x4: return "F1x4";
    case CodonFrequencyModel::F3x4: return "F3x4";
    case CodonFrequencyModel::F61: return "F61";
  }
  return "?";
}

namespace {

std::vector<double> normalized(std::vector<double> v, double floorValue) {
  for (double& x : v) x = std::max(x, floorValue);
  const double total = std::accumulate(v.begin(), v.end(), 0.0);
  SLIM_REQUIRE(total > 0, "frequency normalization: zero total");
  for (double& x : v) x /= total;
  return v;
}

}  // namespace

std::vector<double> estimateCodonFrequencies(const seqio::CodonAlignment& ca,
                                             CodonFrequencyModel m,
                                             double minFrequency) {
  SLIM_REQUIRE(ca.code != nullptr, "codon alignment without a genetic code");
  SLIM_REQUIRE(minFrequency > 0 && minFrequency < 1e-2,
               "minFrequency must be a small positive floor");
  const auto& gc = *ca.code;
  const int n = gc.numSense();
  std::vector<double> pi(n, 0.0);

  switch (m) {
    case CodonFrequencyModel::Equal: {
      pi.assign(n, 1.0 / n);
      return pi;
    }
    case CodonFrequencyModel::F61: {
      return normalized(seqio::codonCounts(ca, /*pseudocount=*/0.0),
                        minFrequency);
    }
    case CodonFrequencyModel::F1x4: {
      const auto posCounts = seqio::positionalNucleotideCounts(ca);
      double nt[4] = {0, 0, 0, 0};
      for (int p = 0; p < 3; ++p)
        for (int b = 0; b < 4; ++b) nt[b] += posCounts[p][b];
      const double total = nt[0] + nt[1] + nt[2] + nt[3];
      SLIM_REQUIRE(total > 0, "F1x4: no resolved codons in alignment");
      for (int s = 0; s < n; ++s) {
        const int c64 = gc.codonOfSense(s);
        double f = 1.0;
        for (int p = 0; p < 3; ++p)
          f *= nt[static_cast<int>(bio::codonBase(c64, p))] / total;
        pi[s] = f;
      }
      return normalized(std::move(pi), minFrequency);
    }
    case CodonFrequencyModel::F3x4: {
      const auto posCounts = seqio::positionalNucleotideCounts(ca);
      double posTotal[3];
      for (int p = 0; p < 3; ++p)
        posTotal[p] = posCounts[p][0] + posCounts[p][1] + posCounts[p][2] +
                      posCounts[p][3];
      SLIM_REQUIRE(posTotal[0] > 0, "F3x4: no resolved codons in alignment");
      for (int s = 0; s < n; ++s) {
        const int c64 = gc.codonOfSense(s);
        double f = 1.0;
        for (int p = 0; p < 3; ++p)
          f *= posCounts[p][static_cast<int>(bio::codonBase(c64, p))] /
               posTotal[p];
        pi[s] = f;
      }
      return normalized(std::move(pi), minFrequency);
    }
  }
  SLIM_REQUIRE(false, "unknown codon frequency model");
  return pi;
}

void validateFrequencies(const std::vector<double>& pi, int numSense) {
  SLIM_REQUIRE(static_cast<int>(pi.size()) == numSense,
               "frequency vector has wrong length");
  double total = 0.0;
  for (double f : pi) {
    SLIM_REQUIRE(f > 0.0, "frequencies must be strictly positive");
    total += f;
  }
  SLIM_REQUIRE(std::fabs(total - 1.0) < 1e-8, "frequencies must sum to 1");
}

}  // namespace slim::model
