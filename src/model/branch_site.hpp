#pragma once
// Branch-site model A (Zhang, Nielsen & Yang 2005), Table I of the paper.
//
//   Site class   Proportion                Background   Foreground
//   0            p0                        omega0       omega0
//   1            p1                        1            1
//   2a           (1-p0-p1) p0/(p0+p1)      omega0       omega2
//   2b           (1-p0-p1) p1/(p0+p1)      1            omega2
//
// H1 (alternative): omega2 >= 1 is free.  H0 (null): omega2 = 1 fixed.
// Free parameters: kappa, omega0 in (0,1), omega2, p0, p1, branch lengths.

#include <array>
#include <span>
#include <vector>

#include "bio/genetic_code.hpp"
#include "linalg/matrix.hpp"
#include "model/codon_model.hpp"

namespace slim::model {

enum class Hypothesis { H0, H1 };

inline const char* hypothesisName(Hypothesis h) noexcept {
  return h == Hypothesis::H0 ? "H0" : "H1";
}

inline constexpr int kNumSiteClasses = 4;  ///< 0, 1, 2a, 2b

/// Indices into the distinct-omega arrays used by model A.
inline constexpr int kOmegaConserved = 0;  ///< omega0
inline constexpr int kOmegaNeutral = 1;    ///< omega1 = 1
inline constexpr int kOmegaPositive = 2;   ///< omega2
inline constexpr int kNumOmegaClasses = 3;

/// Substitution-model parameters of model A (branch lengths live in the
/// tree, not here).
struct BranchSiteParams {
  double kappa = 2.0;   ///< transition/transversion ratio, > 0
  double omega0 = 0.1;  ///< conserved-class dN/dS, in (0,1)
  double omega2 = 2.0;  ///< positive-selection dN/dS, >= 1; ignored under H0
  double p0 = 0.45;     ///< proportion of class 0, > 0
  double p1 = 0.45;     ///< proportion of class 1, > 0; p0 + p1 < 1

  /// Throws std::invalid_argument when a parameter is outside its domain.
  void validate(Hypothesis h) const;

  /// The distinct omega values [omega0, 1, omega2] with omega2 := 1 under H0.
  std::array<double, kNumOmegaClasses> distinctOmegas(Hypothesis h) const;
};

/// Table I proportions (p0, p1, p2a, p2b); they sum to 1.
std::array<double, kNumSiteClasses> siteClassProportions(double p0, double p1);

/// Which distinct omega applies to a (site class, branch type) pair.
/// Encodes the Background/Foreground columns of Table I.
constexpr int omegaIndexFor(int siteClass, bool foreground) noexcept {
  switch (siteClass) {
    case 0: return kOmegaConserved;
    case 1: return kOmegaNeutral;
    case 2: return foreground ? kOmegaPositive : kOmegaConserved;  // 2a
    default: return foreground ? kOmegaPositive : kOmegaNeutral;   // 2b
  }
}

/// The per-omega-class substitution machinery of one model instance:
/// exchangeability matrices scaled by a single common factor so that the
/// site-class-weighted expected *background* rate is 1, i.e. branch lengths
/// measure expected substitutions per codon averaged over site classes
/// (PAML's convention for NSsites/branch-site models).
struct BranchSiteQSet {
  std::array<double, kNumOmegaClasses> omegas{};  ///< distinct omega values
  std::vector<linalg::Matrix> scaledS;  ///< S(kappa, omega_k) / scale, size 3
  double scale = 1.0;                   ///< the common normalization factor

  /// Scaled rate matrix Q_k = scaledS[k] * Pi (mostly for tests; the
  /// likelihood engines work from scaledS + pi directly via Eq. 2).
  linalg::Matrix rateMatrix(int omegaIndex, std::span<const double> pi) const;
};

/// Build the scaled exchangeabilities for model A under hypothesis h.
BranchSiteQSet buildBranchSiteQSet(const bio::GeneticCode& gc,
                                   std::span<const double> pi,
                                   const BranchSiteParams& params,
                                   Hypothesis h);

}  // namespace slim::model
