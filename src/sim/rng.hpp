#pragma once
// Deterministic random number generation for simulations and benches.
//
// The paper fixes the RNG seed "to generate comparable and reproducible
// results" (Sec. IV); every stochastic component of this library takes an
// explicit 64-bit seed for the same reason.  xoshiro256** (Blackman & Vigna)
// seeded through splitmix64.

#include <array>
#include <cstdint>
#include <span>

namespace slim::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  std::uint64_t nextU64() noexcept;

  /// Uniform double in [0, 1) with 53-bit resolution.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Gamma(shape k) for integer k >= 1, scale 1 (sum of exponentials;
  /// adequate for the Dirichlet frequency sampler).
  double gammaInteger(int k) noexcept;

  /// Index sampled from an unnormalized weight vector (all weights >= 0,
  /// at least one > 0).
  int categorical(std::span<const double> weights) noexcept;

  /// Uniform integer in [0, n).
  int uniformInt(int n) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace slim::sim
