#include "sim/random_tree.hpp"

#include <vector>

#include "support/require.hpp"

namespace slim::sim {

tree::Tree yuleTree(int numLeaves, Rng& rng, const RandomTreeOptions& options) {
  SLIM_REQUIRE(numLeaves >= 2, "a tree needs at least 2 leaves");
  SLIM_REQUIRE(options.minBranchLength >= 0 &&
                   options.maxBranchLength >= options.minBranchLength,
               "invalid branch length range");

  auto drawLength = [&]() {
    return rng.uniform(options.minBranchLength, options.maxBranchLength);
  };

  tree::Tree t;
  const int root = t.addNode(tree::kNoParent, "", 0.0);
  std::vector<int> activeLeaves;
  activeLeaves.push_back(t.addNode(root, "", drawLength()));
  activeLeaves.push_back(t.addNode(root, "", drawLength()));

  while (static_cast<int>(activeLeaves.size()) < numLeaves) {
    const int pick = rng.uniformInt(static_cast<int>(activeLeaves.size()));
    const int parent = activeLeaves[pick];
    const int left = t.addNode(parent, "", drawLength());
    const int right = t.addNode(parent, "", drawLength());
    activeLeaves[pick] = left;
    activeLeaves.push_back(right);
  }

  for (std::size_t i = 0; i < activeLeaves.size(); ++i)
    t.setLabel(activeLeaves[i], "t" + std::to_string(i + 1));

  t.finalize();
  t.validate();
  return t;
}

int pickForegroundBranch(tree::Tree& t, Rng& rng) {
  std::vector<int> internal, leaf;
  for (int id : t.postOrder()) {
    if (id == t.root()) continue;
    (t.node(id).isLeaf() ? leaf : internal).push_back(id);
  }
  const auto& pool = internal.empty() ? leaf : internal;
  SLIM_REQUIRE(!pool.empty(), "tree has no branches");
  const int chosen = pool[rng.uniformInt(static_cast<int>(pool.size()))];
  t.setForegroundBranch(chosen);
  return chosen;
}

}  // namespace slim::sim
