#pragma once
// Synthetic stand-ins for the four Ensembl/Selectome evaluation datasets of
// Table II.  The originals are gene-family alignments that are not bundled
// here; what the paper's runtime evaluation depends on is their *shape*
// (species count x codon count), which these generators match exactly.
// See DESIGN.md §2 for the substitution rationale.

#include <cstdint>
#include <string>
#include <vector>

#include "model/branch_site.hpp"
#include "sim/evolver.hpp"
#include "sim/random_tree.hpp"
#include "tree/tree.hpp"

namespace slim::sim {

/// The four dataset shapes of Table II.
enum class PaperDatasetId { I, II, III, IV };

struct PaperDatasetSpec {
  PaperDatasetId id;
  const char* label;        ///< "i".."iv" as printed in the paper's tables.
  const char* description;  ///< The regime the dataset represents (Sec. IV).
  int numSpecies;
  int numCodons;
};

/// Table II shapes: i = 7x299, ii = 6x5004, iii = 25x67, iv = 95x39.
const std::vector<PaperDatasetSpec>& paperDatasetSpecs();

struct Dataset {
  std::string name;
  tree::Tree tree;               ///< Foreground branch marked (#1).
  seqio::Alignment alignment;    ///< Nucleotide MSA.
  std::vector<int> trueSiteClasses;
  model::BranchSiteParams trueParams;
};

/// Simulation parameters used for all synthetic datasets (H1 with genuine
/// positive selection so both hypotheses are exercised meaningfully).
model::BranchSiteParams defaultSimulationParams();

/// Generate the synthetic dataset of the given Table II shape.
Dataset makePaperDataset(PaperDatasetId id, std::uint64_t seed);

/// Dataset-iv-like data with a configurable species count: the Fig. 3
/// species sweep (15..95 species, 39 codons).
Dataset makeSweepDataset(int numSpecies, std::uint64_t seed, int numCodons = 39);

}  // namespace slim::sim
