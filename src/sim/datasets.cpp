#include "sim/datasets.hpp"

#include "support/require.hpp"

namespace slim::sim {

const std::vector<PaperDatasetSpec>& paperDatasetSpecs() {
  static const std::vector<PaperDatasetSpec> specs = {
      {PaperDatasetId::I, "i", "small species count / average length", 7, 299},
      {PaperDatasetId::II, "ii", "small species count / very long", 6, 5004},
      {PaperDatasetId::III, "iii", "average species count / short", 25, 67},
      {PaperDatasetId::IV, "iv", "large species count / short", 95, 39},
  };
  return specs;
}

model::BranchSiteParams defaultSimulationParams() {
  model::BranchSiteParams p;
  p.kappa = 2.5;
  p.omega0 = 0.08;
  p.omega2 = 2.5;
  p.p0 = 0.50;
  p.p1 = 0.35;
  return p;
}

namespace {

Dataset makeDataset(std::string name, int numSpecies, int numCodons,
                    std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.name = std::move(name);
  ds.trueParams = defaultSimulationParams();
  ds.tree = yuleTree(numSpecies, rng);
  pickForegroundBranch(ds.tree, rng);

  const auto& gc = bio::GeneticCode::universal();
  const auto pi = randomCodonFrequencies(gc.numSense(), /*alpha=*/5, rng);
  auto sim = evolveBranchSite(gc, ds.tree, ds.trueParams,
                              model::Hypothesis::H1, numCodons, pi, rng);
  ds.alignment = std::move(sim.alignment);
  ds.trueSiteClasses = std::move(sim.siteClasses);
  return ds;
}

}  // namespace

Dataset makePaperDataset(PaperDatasetId id, std::uint64_t seed) {
  for (const auto& spec : paperDatasetSpecs())
    if (spec.id == id)
      return makeDataset(std::string("dataset-") + spec.label,
                         spec.numSpecies, spec.numCodons, seed);
  SLIM_REQUIRE(false, "unknown dataset id");
  return {};
}

Dataset makeSweepDataset(int numSpecies, std::uint64_t seed, int numCodons) {
  SLIM_REQUIRE(numSpecies >= 2, "sweep needs at least 2 species");
  return makeDataset("sweep-" + std::to_string(numSpecies) + "sp",
                     numSpecies, numCodons, seed);
}

}  // namespace slim::sim
