#include "sim/rng.hpp"

#include <cmath>

namespace slim::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::nextU64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Rng::exponential(double rate) noexcept {
  // -log(1 - u) avoids log(0) since uniform() < 1.
  return -std::log1p(-uniform()) / rate;
}

double Rng::gammaInteger(int k) noexcept {
  double s = 0.0;
  for (int i = 0; i < k; ++i) s += exponential(1.0);
  return s;
}

int Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;  // u == total edge case
}

int Rng::uniformInt(int n) noexcept {
  return static_cast<int>(nextU64() % static_cast<std::uint64_t>(n));
}

}  // namespace slim::sim
