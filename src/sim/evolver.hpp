#pragma once
// Branch-site sequence evolution (an "evolver" in PAML terms): generates
// codon alignments along a tree under branch-site model A, providing the
// synthetic stand-ins for the Selectome datasets of Table II.
//
// Per site: a site class is drawn from the Table I proportions; the root
// codon is drawn from pi; each branch then transitions the parent codon
// through P(t) of the omega class that Table I assigns to (site class,
// background/foreground).

#include <span>
#include <vector>

#include "bio/genetic_code.hpp"
#include "model/branch_site.hpp"
#include "model/site_mixture.hpp"
#include "seqio/alignment.hpp"
#include "sim/rng.hpp"
#include "tree/tree.hpp"

namespace slim::sim {

struct SimulatedAlignment {
  seqio::Alignment alignment;    ///< Nucleotide MSA (3*numCodons columns).
  std::vector<int> siteClasses;  ///< True site class (0..3) per codon site.
};

/// Evolve numCodons codon sites over the tree under an arbitrary omega-class
/// mixture (model/site_mixture.hpp).  The tree's integer #k marks are read
/// as branch classes, so arbitrary branch-class maps (branch model, clade
/// model C, compound foregrounds) simulate through the same path; at least
/// one marked branch is required only when the spec is
/// branch-heterogeneous.  pi are the equilibrium codon frequencies used
/// both for the root draw and the substitution model.
SimulatedAlignment evolveMixture(const bio::GeneticCode& gc,
                                 const tree::Tree& tree,
                                 const model::MixtureSpec& spec,
                                 int numCodons, std::span<const double> pi,
                                 Rng& rng);

/// Evolve under branch-site model A (the tree must carry exactly one
/// foreground mark).  Convenience wrapper over evolveMixture.
SimulatedAlignment evolveBranchSite(const bio::GeneticCode& gc,
                                    const tree::Tree& tree,
                                    const model::BranchSiteParams& params,
                                    model::Hypothesis hypothesis,
                                    int numCodons, std::span<const double> pi,
                                    Rng& rng);

/// Dirichlet(alpha,...,alpha) draw over numSense codon frequencies — mildly
/// non-uniform equilibrium frequencies for realistic synthetic data.
std::vector<double> randomCodonFrequencies(int numSense, int alpha, Rng& rng);

}  // namespace slim::sim
