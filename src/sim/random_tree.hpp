#pragma once
// Random phylogenies for synthetic datasets (substituting the Ensembl trees
// of Table II, which are not redistributable here; see DESIGN.md §2).

#include "sim/rng.hpp"
#include "tree/tree.hpp"

namespace slim::sim {

struct RandomTreeOptions {
  /// Branch lengths drawn uniformly from [minBranchLength, maxBranchLength]
  /// (expected substitutions per codon; Selectome-scale defaults).
  double minBranchLength = 0.02;
  double maxBranchLength = 0.30;
};

/// Yule (pure-birth) topology with numLeaves leaves: starting from a root
/// bifurcation, a uniformly random current leaf is repeatedly split.  Leaves
/// are labeled "t1".."tN".  No branch is marked; see pickForegroundBranch.
tree::Tree yuleTree(int numLeaves, Rng& rng, const RandomTreeOptions& options = {});

/// Choose and mark a foreground branch: an internal (non-root) branch when
/// one exists, otherwise a leaf branch.  Returns the marked node index.
int pickForegroundBranch(tree::Tree& tree, Rng& rng);

}  // namespace slim::sim
