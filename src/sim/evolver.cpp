#include "sim/evolver.hpp"

#include <vector>

#include "expm/codon_eigen_system.hpp"
#include "support/require.hpp"
#include "tree/branch_classes.hpp"

namespace slim::sim {

using linalg::Matrix;

std::vector<double> randomCodonFrequencies(int numSense, int alpha, Rng& rng) {
  SLIM_REQUIRE(numSense > 1 && alpha >= 1, "bad Dirichlet parameters");
  std::vector<double> pi(numSense);
  double total = 0.0;
  for (double& f : pi) {
    f = rng.gammaInteger(alpha);
    total += f;
  }
  for (double& f : pi) f /= total;
  return pi;
}

SimulatedAlignment evolveMixture(const bio::GeneticCode& gc,
                                 const tree::Tree& tree,
                                 const model::MixtureSpec& spec,
                                 int numCodons, std::span<const double> pi,
                                 Rng& rng) {
  SLIM_REQUIRE(numCodons > 0, "numCodons must be positive");
  const int n = gc.numSense();
  SLIM_REQUIRE(static_cast<int>(pi.size()) == n, "pi has wrong length");
  spec.validate(n);
  SLIM_REQUIRE(spec.branchHomogeneous() || tree::hasMarkedBranch(tree),
               "branch-heterogeneous mixture requires at least one marked "
               "branch (#k)");

  // Eigensystems per omega class; transition matrices per (branch, omega),
  // built lazily.
  std::vector<expm::CodonEigenSystem> systems;
  systems.reserve(spec.numOmegas());
  for (int k = 0; k < spec.numOmegas(); ++k)
    systems.emplace_back(spec.scaledS[k], pi);

  const int numNodes = tree.numNodes();
  std::vector<Matrix> pCache(static_cast<std::size_t>(numNodes) *
                             spec.numOmegas());
  expm::ExpmWorkspace ws;
  auto transition = [&](int node, int omegaIdx) -> const Matrix& {
    Matrix& p =
        pCache[static_cast<std::size_t>(node) * spec.numOmegas() + omegaIdx];
    if (p.rows() == 0) {
      p.resize(n, n);
      systems[omegaIdx].transitionMatrix(tree.branchLength(node),
                                         expm::ReconstructionPath::Syrk,
                                         linalg::Flavor::Opt, ws, p);
    }
    return p;
  };

  // Pre-order node ordering (parents before children).
  std::vector<int> preOrder;
  preOrder.reserve(numNodes);
  {
    std::vector<int> stack{tree.root()};
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      preOrder.push_back(id);
      for (int c : tree.node(id).children) stack.push_back(c);
    }
  }

  std::vector<double> proportions(spec.numClasses());
  for (int m = 0; m < spec.numClasses(); ++m)
    proportions[m] = spec.classes[m].proportion;

  SimulatedAlignment out;
  out.siteClasses.resize(numCodons);
  const auto leaves = tree.leaves();
  std::vector<std::string> leafSeq(leaves.size());
  for (auto& s : leafSeq) s.reserve(3 * static_cast<std::size_t>(numCodons));

  std::vector<int> state(numNodes);
  for (int site = 0; site < numCodons; ++site) {
    const int m = rng.categorical(proportions);
    out.siteClasses[site] = m;
    const auto& cls = spec.classes[m];
    for (int id : preOrder) {
      if (id == tree.root()) {
        state[id] = rng.categorical(pi);
        continue;
      }
      const int omegaIdx = cls.omegaFor(tree.node(id).mark);
      const Matrix& p = transition(id, omegaIdx);
      state[id] = rng.categorical(p.rowSpan(state[tree.node(id).parent]));
    }
    for (std::size_t li = 0; li < leaves.size(); ++li)
      leafSeq[li] += bio::codonString(gc.codonOfSense(state[leaves[li]]));
  }

  for (std::size_t li = 0; li < leaves.size(); ++li)
    out.alignment.addSequence(tree.node(leaves[li]).label,
                              std::move(leafSeq[li]));
  out.alignment.validate(/*codon=*/true);
  return out;
}

SimulatedAlignment evolveBranchSite(const bio::GeneticCode& gc,
                                    const tree::Tree& tree,
                                    const model::BranchSiteParams& params,
                                    model::Hypothesis hypothesis,
                                    int numCodons, std::span<const double> pi,
                                    Rng& rng) {
  SLIM_REQUIRE(tree.foregroundBranch() >= 0,
               "evolver requires a marked foreground branch");
  return evolveMixture(gc, tree,
                       model::buildModelASpec(gc, pi, params, hypothesis),
                       numCodons, pi, rng);
}

}  // namespace slim::sim
