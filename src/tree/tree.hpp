#pragma once
// Phylogenetic tree representation.
//
// Nodes live in a flat array; every non-root node carries the length of the
// branch connecting it to its parent, so "branch k" means "the edge above
// node k".  The branch-site model divides branches into one *foreground*
// branch (PAML's "#1" mark in the Newick string) and background branches;
// the mark is stored per node.
//
// Tree topology is immutable after parsing (the paper, Sec. I-B: "tree
// topology remains unchanged"); branch lengths and marks are mutable because
// the optimizer updates lengths in place.

#include <string>
#include <string_view>
#include <vector>

namespace slim::tree {

inline constexpr int kNoParent = -1;

struct Node {
  int parent = kNoParent;     ///< Parent node index, kNoParent for the root.
  std::vector<int> children;  ///< Child node indices (empty for leaves).
  std::string label;          ///< Taxon name for leaves; may be empty inside.
  double branchLength = 0.0;  ///< Length of the edge to the parent.
  int mark = 0;               ///< PAML branch mark: 0 background, 1 foreground.

  bool isLeaf() const noexcept { return children.empty(); }
};

class Tree {
 public:
  Tree() = default;

  /// Parse a Newick string, e.g. "((a:0.1,b:0.2):0.05 #1,c:0.3);".
  /// Supported label syntax: name, name:length, name#mark, name#mark:length,
  /// and marks after closing parentheses for internal branches.
  /// Throws std::invalid_argument on malformed input.
  static Tree parseNewick(std::string_view newick);

  /// Serialize back to Newick.  Branch lengths are always written; marks are
  /// written as " #k" when nonzero and includeMarks is true.
  std::string toNewick(bool includeMarks = true) const;

  int root() const noexcept { return root_; }
  int numNodes() const noexcept { return static_cast<int>(nodes_.size()); }
  int numLeaves() const noexcept { return numLeaves_; }
  /// Number of branches = numNodes - 1 (every non-root node owns one).
  int numBranches() const noexcept { return numNodes() - 1; }

  const Node& node(int i) const { return nodes_.at(i); }

  double branchLength(int i) const { return nodes_.at(i).branchLength; }
  void setBranchLength(int i, double t);

  int mark(int i) const { return nodes_.at(i).mark; }
  /// Set the PAML-style mark of node i's branch (does not clear others).
  void setMark(int i, int mark);
  /// Set the display label of node i.
  void setLabel(int i, std::string label);
  /// Clear all marks and set node i's branch as the (only) foreground branch.
  void setForegroundBranch(int i);
  /// Index of the foreground node, or -1 if no branch is marked.
  int foregroundBranch() const noexcept;

  /// Node indices in post-order (children before parents, root last):
  /// the traversal order of Felsenstein pruning.
  const std::vector<int>& postOrder() const noexcept { return postOrder_; }

  /// Indices of all leaves, in post-order.
  std::vector<int> leaves() const;

  /// Indices of all non-root nodes (= all branches), in post-order.
  std::vector<int> branches() const;

  /// Leaf index by taxon name; -1 if absent.
  int findLeaf(std::string_view name) const noexcept;

  /// Structural invariants: single root, parent/child coherence, post-order
  /// covers all nodes, at least 2 leaves, non-negative branch lengths.
  /// Throws std::invalid_argument on violation.
  void validate() const;

  // --- construction (used by the parser and the tree simulator) ---

  /// Append a node; parent == kNoParent makes it the root (allowed once).
  int addNode(int parent, std::string label, double branchLength, int mark = 0);

  /// Recompute the cached post-order after structural construction.
  void finalize();

 private:
  std::vector<Node> nodes_;
  std::vector<int> postOrder_;
  int root_ = kNoParent;
  int numLeaves_ = 0;
};

}  // namespace slim::tree
