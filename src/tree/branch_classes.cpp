#include "tree/branch_classes.hpp"

#include <algorithm>
#include <cctype>

#include "support/require.hpp"

namespace slim::tree {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const auto pos = s.find(sep);
    out.push_back(trim(s.substr(0, pos)));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

/// A branch named by a leaf/internal label or a numeric node index.
int resolveBranchToken(const Tree& tree, std::string_view token) {
  SLIM_REQUIRE(!token.empty(), "foreground: empty branch name");
  for (int i = 0; i < tree.numNodes(); ++i)
    if (i != tree.root() && tree.node(i).label == token) return i;
  const bool numeric = std::all_of(token.begin(), token.end(), [](char c) {
    return std::isdigit(static_cast<unsigned char>(c));
  });
  SLIM_REQUIRE(numeric, "foreground: unknown branch '" +
                            std::string(token) + "'");
  // Length bound keeps the digit accumulation below INT_MAX (no signed
  // overflow on hostile tokens); any real node index fits in 9 digits.
  SLIM_REQUIRE(token.size() <= 9, "foreground: node index " +
                                      std::string(token) + " out of range");
  int id = 0;
  for (const char c : token) id = id * 10 + (c - '0');
  SLIM_REQUIRE(id >= 0 && id < tree.numNodes(),
               "foreground: node index " + std::string(token) +
                   " out of range");
  SLIM_REQUIRE(id != tree.root(), "foreground: the root has no branch");
  return id;
}

}  // namespace

BranchClassMap BranchClassMap::fromTree(const Tree& tree) {
  BranchClassMap map;
  map.classOf.assign(static_cast<std::size_t>(tree.numNodes()), 0);
  for (int i = 0; i < tree.numNodes(); ++i) {
    if (i == tree.root()) continue;
    const int mark = tree.node(i).mark;
    SLIM_REQUIRE(mark >= 0, "negative branch mark");
    map.classOf[static_cast<std::size_t>(i)] = mark;
    map.numClasses = std::max(map.numClasses, mark + 1);
  }
  return map;
}

void BranchClassMap::applyTo(Tree& tree) const {
  SLIM_REQUIRE(static_cast<int>(classOf.size()) == tree.numNodes(),
               "branch-class map does not match the tree");
  for (int i = 0; i < tree.numNodes(); ++i)
    if (i != tree.root())
      tree.setMark(i, classOf[static_cast<std::size_t>(i)]);
}

int numBranchClasses(const Tree& tree) {
  return BranchClassMap::fromTree(tree).numClasses;
}

bool hasMarkedBranch(const Tree& tree) {
  for (int i = 0; i < tree.numNodes(); ++i)
    if (i != tree.root() && tree.node(i).mark != 0) return true;
  return false;
}

Tree withForegroundSet(const Tree& tree, const std::vector<int>& nodes) {
  SLIM_REQUIRE(!nodes.empty(), "foreground set must not be empty");
  Tree marked = tree;
  for (int i = 0; i < marked.numNodes(); ++i)
    if (i != marked.root()) marked.setMark(i, 0);
  for (const int id : nodes) {
    SLIM_REQUIRE(id >= 0 && id < marked.numNodes(),
                 "foreground node index out of range");
    SLIM_REQUIRE(id != marked.root(), "the root has no branch to mark");
    marked.setMark(id, 1);
  }
  return marked;
}

std::vector<BranchSet> everyBranchSets(const Tree& tree) {
  std::vector<BranchSet> sets;
  for (const int id : tree.branches()) {
    BranchSet set;
    set.name = tree.node(id).label.empty() ? "b" + std::to_string(id)
                                           : tree.node(id).label;
    set.nodes = {id};
    sets.push_back(std::move(set));
  }
  return sets;
}

std::vector<BranchSet> resolveBranchSelector(const Tree& tree,
                                             std::string_view selector) {
  const std::string_view text = trim(selector);
  SLIM_REQUIRE(!text.empty(), "foreground: empty selector");
  if (text == "every-branch") return everyBranchSets(tree);

  std::vector<BranchSet> sets;
  for (const std::string_view group : split(text, ';')) {
    SLIM_REQUIRE(!group.empty(), "foreground: empty branch set");
    BranchSet set;
    for (const std::string_view token : split(group, ',')) {
      const int id = resolveBranchToken(tree, token);
      if (std::find(set.nodes.begin(), set.nodes.end(), id) ==
          set.nodes.end())
        set.nodes.push_back(id);
      if (!set.name.empty()) set.name += '+';
      set.name += std::string(token);
    }
    sets.push_back(std::move(set));
  }
  return sets;
}

}  // namespace slim::tree
