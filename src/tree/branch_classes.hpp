#pragma once
// Branch classification: the integer #k Newick marks read as a partition of
// branches into classes 0..B-1 (0 = background).  This generalizes the old
// single-foreground boolean: branch-site A is the special case B = 2 with
// exactly one class-1 branch set.
//
// Also home of the scan machinery's branch-set vocabulary: a BranchSet
// names a group of branches marked together as class 1 for one fit of an
// every-branch (or user-listed compound-set) scan.

#include <string>
#include <string_view>
#include <vector>

#include "tree/tree.hpp"

namespace slim::tree {

/// A named group of branches (node indices) marked together as foreground
/// (class 1) for one scan fit.
struct BranchSet {
  std::string name;        ///< Task-name component, e.g. "human" or "b7".
  std::vector<int> nodes;  ///< Non-root node indices.
};

/// The branch classification of a tree: classOf[node] = the node's mark,
/// with the number of classes B = 1 + max mark (>= 1 even when unmarked).
struct BranchClassMap {
  std::vector<int> classOf;
  int numClasses = 1;

  static BranchClassMap fromTree(const Tree& tree);

  /// Write this classification onto `tree` (marks of non-root nodes).
  /// Throws std::invalid_argument when sizes disagree.
  void applyTo(Tree& tree) const;
};

/// 1 + the largest mark on any non-root branch (1 for an unmarked tree).
int numBranchClasses(const Tree& tree);

/// True when at least one non-root branch carries a nonzero mark.
bool hasMarkedBranch(const Tree& tree);

/// A copy of `tree` with all marks cleared and every branch in `nodes`
/// marked as class 1.  Throws on the root or an out-of-range index.
Tree withForegroundSet(const Tree& tree, const std::vector<int>& nodes);

/// One single-branch BranchSet per non-root branch, in post-order; sets are
/// named by the node's label when it has one, else "b<node-index>".
std::vector<BranchSet> everyBranchSets(const Tree& tree);

/// Parse a `foreground =` ctl selector against a tree.  Grammar:
///   every-branch                     one set per branch
///   a,b; c                           two sets: {a,b} and {c}
/// where each member is a leaf label, an internal node's label, or a
/// numeric node index; members of one set are comma-separated and marked
/// together (a compound foreground), sets are semicolon-separated and
/// scanned as independent fits.  Compound sets are named by joining the
/// member names with '+'.  Throws std::invalid_argument (keyed with the
/// offending token) on unknown labels, the root, or empty sets.
std::vector<BranchSet> resolveBranchSelector(const Tree& tree,
                                             std::string_view selector);

}  // namespace slim::tree
