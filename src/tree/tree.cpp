#include "tree/tree.hpp"

#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "support/require.hpp"

namespace slim::tree {

int Tree::addNode(int parent, std::string label, double branchLength, int mark) {
  const int id = numNodes();
  if (parent == kNoParent) {
    SLIM_REQUIRE(root_ == kNoParent, "tree already has a root");
    root_ = id;
  } else {
    SLIM_REQUIRE(parent >= 0 && parent < id, "parent must precede child");
    nodes_[parent].children.push_back(id);
  }
  Node n;
  n.parent = parent;
  n.label = std::move(label);
  n.branchLength = branchLength;
  n.mark = mark;
  nodes_.push_back(std::move(n));
  return id;
}

void Tree::finalize() {
  SLIM_REQUIRE(root_ != kNoParent, "tree has no root");
  postOrder_.clear();
  postOrder_.reserve(nodes_.size());
  numLeaves_ = 0;
  // Iterative post-order to avoid recursion depth limits on large trees.
  std::vector<std::pair<int, std::size_t>> stack;  // (node, next child slot)
  stack.emplace_back(root_, 0);
  while (!stack.empty()) {
    auto& [id, slot] = stack.back();
    if (slot < nodes_[id].children.size()) {
      const int child = nodes_[id].children[slot++];
      stack.emplace_back(child, 0);
    } else {
      if (nodes_[id].isLeaf()) ++numLeaves_;
      postOrder_.push_back(id);
      stack.pop_back();
    }
  }
}

void Tree::setBranchLength(int i, double t) {
  SLIM_REQUIRE(i >= 0 && i < numNodes(), "node index out of range");
  SLIM_REQUIRE(t >= 0.0, "branch length must be non-negative");
  nodes_[i].branchLength = t;
}

void Tree::setMark(int i, int mark) {
  SLIM_REQUIRE(i >= 0 && i < numNodes(), "node index out of range");
  SLIM_REQUIRE(mark >= 0, "mark must be non-negative");
  nodes_[i].mark = mark;
}

void Tree::setLabel(int i, std::string label) {
  SLIM_REQUIRE(i >= 0 && i < numNodes(), "node index out of range");
  nodes_[i].label = std::move(label);
}

void Tree::setForegroundBranch(int i) {
  SLIM_REQUIRE(i >= 0 && i < numNodes(), "node index out of range");
  SLIM_REQUIRE(i != root_, "the root has no branch above it");
  for (auto& n : nodes_) n.mark = 0;
  nodes_[i].mark = 1;
}

int Tree::foregroundBranch() const noexcept {
  for (int i = 0; i < numNodes(); ++i)
    if (nodes_[i].mark != 0 && i != root_) return i;
  return -1;
}

std::vector<int> Tree::leaves() const {
  std::vector<int> out;
  for (int id : postOrder_)
    if (nodes_[id].isLeaf()) out.push_back(id);
  return out;
}

std::vector<int> Tree::branches() const {
  std::vector<int> out;
  for (int id : postOrder_)
    if (id != root_) out.push_back(id);
  return out;
}

int Tree::findLeaf(std::string_view name) const noexcept {
  for (int i = 0; i < numNodes(); ++i)
    if (nodes_[i].isLeaf() && nodes_[i].label == name) return i;
  return -1;
}

void Tree::validate() const {
  SLIM_REQUIRE(root_ != kNoParent, "tree has no root");
  SLIM_REQUIRE(nodes_[root_].parent == kNoParent, "root has a parent");
  SLIM_REQUIRE(static_cast<int>(postOrder_.size()) == numNodes(),
               "post-order does not cover all nodes (finalize() missing?)");
  SLIM_REQUIRE(numLeaves_ >= 2, "tree must have at least 2 leaves");
  for (int i = 0; i < numNodes(); ++i) {
    const Node& n = nodes_[i];
    SLIM_REQUIRE(n.branchLength >= 0.0, "negative branch length");
    for (int c : n.children) {
      SLIM_REQUIRE(c >= 0 && c < numNodes(), "child index out of range");
      SLIM_REQUIRE(nodes_[c].parent == i, "parent/child mismatch");
    }
    if (i != root_) {
      const Node& p = nodes_[n.parent];
      bool found = false;
      for (int c : p.children) found = found || (c == i);
      SLIM_REQUIRE(found, "node missing from its parent's child list");
    }
  }
}

namespace {

class NewickParser {
 public:
  explicit NewickParser(std::string_view text) : text_(text) {}

  Tree parse() {
    Tree t;
    skipSpace();
    parseSubtree(t, kNoParent);
    skipSpace();
    SLIM_REQUIRE(!atEnd() && peek() == ';', "newick: missing terminating ';'");
    ++pos_;
    skipSpace();
    SLIM_REQUIRE(atEnd(), "newick: trailing characters after ';'");
    t.finalize();
    t.validate();
    return t;
  }

 private:
  bool atEnd() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return text_[pos_]; }

  void skipSpace() {
    while (!atEnd() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("newick parse error at position " +
                                std::to_string(pos_) + ": " + what);
  }

  std::string parseName() {
    std::string name;
    while (!atEnd()) {
      const char c = peek();
      if (c == '(' || c == ')' || c == ',' || c == ':' || c == ';' ||
          c == '#' || std::isspace(static_cast<unsigned char>(c)))
        break;
      name.push_back(c);
      ++pos_;
    }
    return name;
  }

  double parseNumber() {
    skipSpace();
    std::size_t consumed = 0;
    double v = 0.0;
    try {
      v = std::stod(std::string(text_.substr(pos_)), &consumed);
    } catch (const std::exception&) {
      fail("expected a number");
    }
    pos_ += consumed;
    return v;
  }

  // Parses optional "#k", ":len" suffixes in either order; returns when
  // neither applies.
  void parseSuffixes(double& length, int& mark) {
    for (;;) {
      skipSpace();
      if (!atEnd() && peek() == '#') {
        ++pos_;
        // Range-check while still a double: an out-of-int-range (or NaN)
        // value must be rejected here, not cast (which would be UB).
        const double m = parseNumber();
        SLIM_REQUIRE(m >= 0.0 && m <= kMaxMark,
                     "newick: mark must be an integer in [0, 100000]");
        mark = static_cast<int>(m);
        SLIM_REQUIRE(static_cast<double>(mark) == m,
                     "newick: mark must be an integer in [0, 100000]");
      } else if (!atEnd() && peek() == ':') {
        ++pos_;
        length = parseNumber();
        SLIM_REQUIRE(length >= 0.0 && std::isfinite(length),
                     "newick: branch length must be finite and non-negative");
      } else {
        return;
      }
    }
  }

  int parseSubtree(Tree& t, int parent, int depth = 0) {
    // The parser recurses once per '(' nesting level; cap it so hostile
    // input cannot exhaust the stack.  8192 comfortably covers a pure
    // ladder tree of thousands of taxa.
    if (depth > kMaxDepth) fail("nesting deeper than 8192 levels");
    skipSpace();
    if (atEnd()) fail("unexpected end of input");
    if (peek() == '(') {
      ++pos_;
      // Create the internal node first so children can attach to it.
      const int id = t.addNode(parent, "", 0.0, 0);
      int childCount = 0;
      for (;;) {
        parseSubtree(t, id, depth + 1);
        ++childCount;
        skipSpace();
        if (atEnd()) fail("unterminated '('");
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        if (peek() == ')') {
          ++pos_;
          break;
        }
        fail("expected ',' or ')'");
      }
      SLIM_REQUIRE(childCount >= 2, "newick: internal node with <2 children");
      // Optional internal label, then suffixes.
      skipSpace();
      std::string label = parseName();
      double length = 0.0;
      int mark = 0;
      parseSuffixes(length, mark);
      t.setLabel(id, std::move(label));
      t.setBranchLength(id, length);
      if (mark != 0) t.setMark(id, mark);
      return id;
    }
    // Leaf.
    std::string name = parseName();
    SLIM_REQUIRE(!name.empty(), "newick: leaf with empty name");
    double length = 0.0;
    int mark = 0;
    parseSuffixes(length, mark);
    return t.addNode(parent, std::move(name), length, mark);
  }

  static constexpr int kMaxDepth = 8192;
  static constexpr double kMaxMark = 100000.0;

  std::string_view text_;
  std::size_t pos_ = 0;
};

void writeNewick(const Tree& t, int id, bool includeMarks, std::ostream& os) {
  const Node& n = t.node(id);
  if (!n.isLeaf()) {
    os << '(';
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      if (i) os << ',';
      writeNewick(t, n.children[i], includeMarks, os);
    }
    os << ')';
  }
  os << n.label;
  if (includeMarks && n.mark != 0 && id != t.root()) os << " #" << n.mark;
  if (id != t.root()) os << ':' << n.branchLength;
}

}  // namespace

Tree Tree::parseNewick(std::string_view newick) {
  return NewickParser(newick).parse();
}

std::string Tree::toNewick(bool includeMarks) const {
  std::ostringstream os;
  writeNewick(*this, root_, includeMarks, os);
  os << ';';
  return os.str();
}

}  // namespace slim::tree
