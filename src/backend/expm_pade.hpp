#pragma once
// Higham–Al-Mohy adaptive scaling-and-squaring matrix exponential.
//
// The engine's default propagator path (expm/codon_eigen_system.hpp) rests
// on the reversibility trick: Q similar to a symmetric matrix via the
// Pi^{1/2} sandwich, so P(t) = e^{Qt} comes from one symmetric
// eigendecomposition per Q and a rank update per branch length.  That trick
// dies the moment Q is not reversible — Markov-modulated/covarion models,
// non-stationary models (ROADMAP scenario-diversity item) — and this module
// is the propagator builder that still works there: the degree-adaptive
// Padé scaling-and-squaring algorithm of Higham (SIAM J. Matrix Anal. 2005)
// as refined by Al-Mohy & Higham, the method behind expm() in
// MATLAB/SciPy/Eigen and uni20's expokit port (SNIPPETS.md).
//
// Versus the fixed order-6 oracle in expm/pade.cpp (kept as the
// test-reference it is), this implementation
//   * picks the cheapest Padé degree m in {3, 5, 7, 9, 13} whose backward
//     error bound covers ||A||_1 (the theta_m table), so small ||Qt|| — the
//     common case for codon branch lengths — costs two or three
//     matrix-matrix products instead of six plus squarings;
//   * scales by 2^{-s} only when ||A||_1 exceeds theta_13, with the minimal
//     s, and squares back s times;
//   * routes every matrix product through a caller-chosen kernel table, so
//     the adaptive path accelerates under whatever compute backend the
//     evaluator resolved (backend/compute_backend.hpp).
//
// Selection is per-model via the `expm = eigen | adaptive` ctl key
// (LikelihoodOptions::expm); the evaluator cross-validates the two builders
// in tests/backend_test.cpp (<= 1e-12 against the eigen path on reversible
// Q, Taylor-series reference on non-reversible Q).

#include <string_view>

#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"

namespace slim::backend {

/// Which propagator builder the evaluator uses (`expm =` ctl key).
enum class ExpmAlgorithm {
  Eigen,     ///< Symmetric-eigendecomposition path (reversible Q only).
  Adaptive,  ///< Adaptive Padé scaling-and-squaring (general Q).
};

const char* expmAlgorithmName(ExpmAlgorithm a) noexcept;

/// Parse a ctl-file value ("eigen", "adaptive").  Returns false on unknown
/// text (out untouched).
bool parseExpmAlgorithm(std::string_view text, ExpmAlgorithm& out) noexcept;

/// Scratch for expmAdaptive, reusable across calls (the evaluator keeps one
/// per worker).  Matrices are resized on demand; no call-to-call state.
struct AdaptiveExpmWorkspace {
  linalg::Matrix scaled, a2, a4, a6, poly, u, v, tmp;
};

/// out := e^a for a general square matrix; returns the number of squarings
/// performed (0 when ||a||_1 <= theta_13).  All matrix products go through
/// `kern` (pass linalg::simdKernels(SimdLevel::Scalar) for the bit-stable
/// reference).  Throws std::invalid_argument if the Padé denominator is
/// singular to working precision (never the case for finite input within
/// the theta bounds).
int expmAdaptive(const linalg::Matrix& a, const linalg::SimdKernels& kern,
                 AdaptiveExpmWorkspace& ws, linalg::Matrix& out);

/// Convenience form: scalar kernels, throwaway workspace.
linalg::Matrix expmAdaptive(const linalg::Matrix& a);

}  // namespace slim::backend
