#include "backend/compute_backend.hpp"

#include <stdexcept>
#include <string>

namespace slim::backend {

const char* backendModeName(BackendMode m) noexcept {
  switch (m) {
    case BackendMode::Auto:
      return "auto";
    case BackendMode::Reference:
      return "reference";
    case BackendMode::Simd:
      return "simd";
    case BackendMode::Blas:
      return "blas";
  }
  return "?";
}

const char* backendKindName(BackendKind k) noexcept {
  switch (k) {
    case BackendKind::Reference:
      return "reference";
    case BackendKind::Simd:
      return "simd";
    case BackendKind::Blas:
      return "blas";
  }
  return "?";
}

bool parseBackendMode(std::string_view text, BackendMode& out) noexcept {
  if (text == "auto") {
    out = BackendMode::Auto;
  } else if (text == "reference") {
    out = BackendMode::Reference;
  } else if (text == "simd") {
    out = BackendMode::Simd;
  } else if (text == "blas") {
    out = BackendMode::Blas;
  } else {
    return false;
  }
  return true;
}

bool parseBackendKind(std::string_view text, BackendKind& out) noexcept {
  if (text == "reference") {
    out = BackendKind::Reference;
  } else if (text == "simd") {
    out = BackendKind::Simd;
  } else if (text == "blas") {
    out = BackendKind::Blas;
  } else {
    return false;
  }
  return true;
}

bool backendCompiled(BackendKind k) noexcept {
  switch (k) {
    case BackendKind::Reference:
    case BackendKind::Simd:
      return true;  // The scalar table always exists; simd falls back to it.
    case BackendKind::Blas:
      return detail::blasKernelTable() != nullptr;
  }
  return false;
}

bool backendAvailable(BackendKind k) noexcept {
  // Reference and blas have no runtime requirement beyond being compiled in;
  // `simd` is the dispatch itself and is "available" even when only the
  // scalar table is (an explicit `backend = simd` at `simd = scalar` routes
  // the scalar table through the kernel-table path, which is bit-exact with
  // the reference path by the PR 4 contract).
  return backendCompiled(k);
}

BackendKind resolveBackendKind(BackendMode mode, linalg::SimdLevel simdLevel) {
  BackendKind kind;
  switch (mode) {
    case BackendMode::Auto:
      kind = simdLevel == linalg::SimdLevel::Scalar ? BackendKind::Reference
                                                    : BackendKind::Simd;
      break;
    case BackendMode::Reference:
      kind = BackendKind::Reference;
      break;
    case BackendMode::Simd:
      kind = BackendKind::Simd;
      break;
    case BackendMode::Blas:
      kind = BackendKind::Blas;
      break;
    default:
      throw std::invalid_argument("unknown backend mode");
  }
  if (!backendAvailable(kind))
    throw std::invalid_argument(
        std::string("backend '") + backendKindName(kind) +
        "' is not available in this build" +
        (kind == BackendKind::Blas ? " (rebuild with -DSLIM_WITH_BLAS=ON)"
                                   : ""));
  return kind;
}

ComputeBackend computeBackend(BackendKind kind, linalg::SimdLevel simdLevel) {
  ComputeBackend b;
  b.kind = kind;
  b.name = backendKindName(kind);
  switch (kind) {
    case BackendKind::Reference:
      b.simdLevel = linalg::SimdLevel::Scalar;
      b.ops = linalg::simdKernels(linalg::SimdLevel::Scalar);
      break;
    case BackendKind::Simd:
      b.simdLevel = simdLevel;
      b.ops = linalg::simdKernels(simdLevel);
      break;
    case BackendKind::Blas: {
      const linalg::SimdKernels* table = detail::blasKernelTable();
      if (table == nullptr)
        throw std::invalid_argument(
            "backend 'blas' is not available in this build "
            "(rebuild with -DSLIM_WITH_BLAS=ON)");
      b.simdLevel = linalg::SimdLevel::Scalar;
      b.ops = *table;
      break;
    }
  }
  return b;
}

}  // namespace slim::backend
