// Vendor-BLAS backend: the hot-op kernel table expressed in generic CBLAS
// (OpenBLAS, MKL, BLIS, ... — anything exposing <cblas.h>).  Compiled with
// real content only under -DSLIM_WITH_BLAS=ON; otherwise this TU is the
// "not compiled" stub, mirroring how kernels_avx2.cpp returns nullptr on
// non-x86 builds.
//
// The fused Pi-sandwich ops cannot be fused inside a vendor kernel, so they
// run as dgemm/dsyrk followed by one O(n^2) scale-and-clamp pass.  The
// clamp policy is identical to the scalar reference (roundoff negatives of
// P(t) to 0, derivatives untouched); the products themselves may be
// reassociated by the vendor kernel, hence the <= 1e-10 (not bit) lnL
// agreement contract documented in compute_backend.hpp.

#include "backend/compute_backend.hpp"

#if SLIM_WITH_BLAS

#include <cblas.h>

#include <cstddef>

namespace slim::backend {

namespace {

void gemmBlas(const double* a, const double* b, double* c, std::size_t m,
              std::size_t k, std::size_t n) {
  cblas_dgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, static_cast<int>(m),
              static_cast<int>(n), static_cast<int>(k), 1.0, a,
              static_cast<int>(k), b, static_cast<int>(n), 0.0, c,
              static_cast<int>(n));
}

void gemmNTBlas(const double* a, const double* b, double* c, std::size_t m,
                std::size_t k, std::size_t n) {
  // c[m x n] := a[m x k] * b[n x k]^T — b is stored row-major n x k.
  cblas_dgemm(CblasRowMajor, CblasNoTrans, CblasTrans, static_cast<int>(m),
              static_cast<int>(n), static_cast<int>(k), 1.0, a,
              static_cast<int>(k), b, static_cast<int>(k), 0.0, c,
              static_cast<int>(n));
}

void syrkBlas(const double* y, double* c, std::size_t n, std::size_t k) {
  cblas_dsyrk(CblasRowMajor, CblasUpper, CblasNoTrans, static_cast<int>(n),
              static_cast<int>(k), 1.0, y, static_cast<int>(k), 0.0, c,
              static_cast<int>(n));
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) c[i * n + j] = c[j * n + i];
}

void syrkSandwichBlas(const double* y, const double* l, const double* r,
                      double* p, std::size_t n, std::size_t k) {
  cblas_dsyrk(CblasRowMajor, CblasUpper, CblasNoTrans, static_cast<int>(n),
              static_cast<int>(k), 1.0, y, static_cast<int>(k), 0.0, p,
              static_cast<int>(n));
  // Mirror + sandwich + clamp in one pass over the upper triangle, keeping
  // the (l[i] * t) * r[j] association of the scalar reference.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double t = p[i * n + j];
      const double pij = l[i] * t * r[j];
      const double pji = l[j] * t * r[i];
      p[i * n + j] = pij < 0.0 ? 0.0 : pij;
      p[j * n + i] = pji < 0.0 ? 0.0 : pji;
    }
  }
}

void gemmNTSandwichBlas(const double* a, const double* b, const double* l,
                        const double* r, double* c, std::size_t m,
                        std::size_t k, std::size_t n, bool clampNegative) {
  gemmNTBlas(a, b, c, m, k, n);
  for (std::size_t i = 0; i < m; ++i) {
    const double li = l[i];
    double* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double v = li * crow[j] * r[j];
      crow[j] = clampNegative && v < 0.0 ? 0.0 : v;
    }
  }
}

constexpr linalg::SimdKernels kBlasKernels{
    "blas",   gemmBlas,         gemmNTBlas,
    syrkBlas, syrkSandwichBlas, gemmNTSandwichBlas,
};

}  // namespace

namespace detail {
const linalg::SimdKernels* blasKernelTable() noexcept { return &kBlasKernels; }
}  // namespace detail

}  // namespace slim::backend

#else  // !SLIM_WITH_BLAS

namespace slim::backend::detail {
const linalg::SimdKernels* blasKernelTable() noexcept { return nullptr; }
}  // namespace slim::backend::detail

#endif  // SLIM_WITH_BLAS
