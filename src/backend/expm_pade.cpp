#include "backend/expm_pade.hpp"

#include <cmath>
#include <cstddef>
#include <span>
#include <utility>

#include "linalg/lu.hpp"
#include "support/require.hpp"

namespace slim::backend {

using linalg::Matrix;

const char* expmAlgorithmName(ExpmAlgorithm a) noexcept {
  return a == ExpmAlgorithm::Adaptive ? "adaptive" : "eigen";
}

bool parseExpmAlgorithm(std::string_view text, ExpmAlgorithm& out) noexcept {
  if (text == "eigen") {
    out = ExpmAlgorithm::Eigen;
  } else if (text == "adaptive") {
    out = ExpmAlgorithm::Adaptive;
  } else {
    return false;
  }
  return true;
}

namespace {

// Backward-error thresholds theta_m of Higham 2005, Table 2.3: r_m(A) has
// backward error <= u (double precision) whenever ||A||_1 <= theta_m.
constexpr double kTheta3 = 1.495585217958292e-2;
constexpr double kTheta5 = 2.539398330063230e-1;
constexpr double kTheta7 = 9.504178996162932e-1;
constexpr double kTheta9 = 2.097847961257068;
constexpr double kTheta13 = 5.371920351148152;

// Padé numerator coefficients b_0..b_m of the [m/m] diagonal approximant;
// the denominator is the same series with odd terms negated, so
// U = odd part, V = even part, r_m = (V - U)^{-1} (V + U).
constexpr double kB3[] = {120., 60., 12., 1.};
constexpr double kB5[] = {30240., 15120., 3360., 420., 30., 1.};
constexpr double kB7[] = {17297280., 8648640., 1995840., 277200.,
                          25200.,    1512.,    56.,      1.};
constexpr double kB9[] = {17643225600., 8821612800., 2075673600., 302702400.,
                          30270240.,    2162160.,    110880.,     3960.,
                          90.,          1.};
constexpr double kB13[] = {64764752532480000., 32382376266240000.,
                           7771770303897600.,  1187353796428800.,
                           129060195264000.,   10559470521600.,
                           670442572800.,      33522128640.,
                           1323241920.,        40840800.,
                           960960.,            16380.,
                           182.,               1.};

double norm1(const Matrix& a) {
  const std::size_t n = a.rows();
  double best = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    double colSum = 0.0;
    for (std::size_t i = 0; i < n; ++i) colSum += std::fabs(a(i, j));
    best = std::max(best, colSum);
  }
  return best;
}

void shape(Matrix& m, std::size_t n) {
  if (m.rows() != n || m.cols() != n) m.resize(n, n);
}

/// dst := c0 * I  (dst already n x n).
void setScaledIdentity(Matrix& dst, double c0) {
  dst.fill(0.0);
  for (std::size_t i = 0; i < dst.rows(); ++i) dst(i, i) = c0;
}

/// dst += c * src, elementwise.
void addScaled(Matrix& dst, double c, const Matrix& src) {
  const std::size_t size = dst.size();
  double* d = dst.data();
  const double* s = src.data();
  for (std::size_t i = 0; i < size; ++i) d[i] += c * s[i];
}

}  // namespace

int expmAdaptive(const Matrix& a, const linalg::SimdKernels& kern,
                 AdaptiveExpmWorkspace& ws, Matrix& out) {
  SLIM_REQUIRE(a.square(), "expmAdaptive: matrix must be square");
  const std::size_t n = a.rows();
  SLIM_REQUIRE(n > 0, "expmAdaptive: empty matrix");

  const double anorm = norm1(a);

  // Scaling exponent: only degree 13 ever scales, and by the minimal s with
  // ||A / 2^s||_1 <= theta_13.
  int s = 0;
  if (anorm > kTheta13) {
    s = static_cast<int>(std::ceil(std::log2(anorm / kTheta13)));
    if (s < 0) s = 0;
  }

  shape(ws.scaled, n);
  const double scale = std::ldexp(1.0, -s);
  for (std::size_t i = 0; i < a.size(); ++i)
    ws.scaled.data()[i] = a.data()[i] * scale;
  const Matrix& b = ws.scaled;

  auto mul = [&kern, n](const Matrix& x, const Matrix& y, Matrix& dst) {
    kern.gemm(x.data(), y.data(), dst.data(), n, n, n);
  };

  shape(ws.a2, n);
  shape(ws.poly, n);
  shape(ws.u, n);
  shape(ws.v, n);
  shape(ws.tmp, n);
  mul(b, b, ws.a2);

  if (anorm <= kTheta9) {
    // Degrees 3/5/7/9 share one shape: U = A * (sum of odd b over even
    // powers), V = sum of even b over even powers.
    std::span<const double> coeff;
    if (anorm <= kTheta3) {
      coeff = kB3;
    } else if (anorm <= kTheta5) {
      coeff = kB5;
    } else if (anorm <= kTheta7) {
      coeff = kB7;
    } else {
      coeff = kB9;
    }
    const int m = static_cast<int>(coeff.size()) - 1;

    // Even powers A^2, A^4, A^6, A^8 as needed (A^8 reuses tmp).
    const Matrix* powers[4] = {&ws.a2, nullptr, nullptr, nullptr};
    if (m >= 5) {
      shape(ws.a4, n);
      mul(ws.a2, ws.a2, ws.a4);
      powers[1] = &ws.a4;
    }
    if (m >= 7) {
      shape(ws.a6, n);
      mul(ws.a4, ws.a2, ws.a6);
      powers[2] = &ws.a6;
    }
    if (m >= 9) {
      mul(ws.a6, ws.a2, ws.tmp);
      powers[3] = &ws.tmp;
    }

    setScaledIdentity(ws.poly, coeff[1]);
    setScaledIdentity(ws.v, coeff[0]);
    for (int p = 0; 2 * p + 2 <= m; ++p) {
      addScaled(ws.poly, coeff[2 * p + 3], *powers[p]);
      addScaled(ws.v, coeff[2 * p + 2], *powers[p]);
    }
    mul(b, ws.poly, ws.u);
  } else {
    // Degree 13: U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 +
    // b3 A2 + b1 I), V likewise with the even coefficients.
    shape(ws.a4, n);
    shape(ws.a6, n);
    mul(ws.a2, ws.a2, ws.a4);
    mul(ws.a4, ws.a2, ws.a6);

    ws.poly.fill(0.0);
    addScaled(ws.poly, kB13[13], ws.a6);
    addScaled(ws.poly, kB13[11], ws.a4);
    addScaled(ws.poly, kB13[9], ws.a2);
    mul(ws.a6, ws.poly, ws.tmp);
    addScaled(ws.tmp, kB13[7], ws.a6);
    addScaled(ws.tmp, kB13[5], ws.a4);
    addScaled(ws.tmp, kB13[3], ws.a2);
    for (std::size_t i = 0; i < n; ++i) ws.tmp(i, i) += kB13[1];
    mul(b, ws.tmp, ws.u);

    ws.poly.fill(0.0);
    addScaled(ws.poly, kB13[12], ws.a6);
    addScaled(ws.poly, kB13[10], ws.a4);
    addScaled(ws.poly, kB13[8], ws.a2);
    mul(ws.a6, ws.poly, ws.v);
    addScaled(ws.v, kB13[6], ws.a6);
    addScaled(ws.v, kB13[4], ws.a4);
    addScaled(ws.v, kB13[2], ws.a2);
    for (std::size_t i = 0; i < n; ++i) ws.v(i, i) += kB13[0];
  }

  // r_m = (V - U)^{-1} (V + U): reuse poly for V - U, tmp for V + U.
  for (std::size_t i = 0; i < ws.u.size(); ++i) {
    const double ui = ws.u.data()[i];
    const double vi = ws.v.data()[i];
    ws.poly.data()[i] = vi - ui;
    ws.tmp.data()[i] = vi + ui;
  }
  out = linalg::LuFactorization(ws.poly).solve(ws.tmp);

  for (int k = 0; k < s; ++k) {
    mul(out, out, ws.tmp);
    std::swap(out, ws.tmp);
  }
  return s;
}

Matrix expmAdaptive(const Matrix& a) {
  AdaptiveExpmWorkspace ws;
  Matrix out;
  expmAdaptive(a, linalg::simdKernels(linalg::SimdLevel::Scalar), ws, out);
  return out;
}

}  // namespace slim::backend
