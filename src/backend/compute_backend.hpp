#pragma once
// Runtime-pluggable compute backends for the likelihood engine's hot ops.
//
// PR 4 introduced a cpuid-dispatched SIMD kernel table (linalg/simd.hpp);
// this layer promotes that table into a real backend interface: a
// ComputeBackend bundles an identity (kind + name) with a full
// linalg::SimdKernels ops table covering the hot likelihood panels — the
// saxpy-form panel gemm, the dot-form gemmNT, syrk, and the two fused
// Pi-sandwich reconstructions the propagator builder runs.  The evaluator
// resolves `backend =` once at construction (exactly like `simd =`) and
// routes every panel and propagator through the chosen table.
//
// Backends:
//   * reference — the scalar kernel table.  This is the bit-exact oracle:
//     its entries are the very code the Flavor::Opt scalar path runs, and
//     the evaluator keeps the legacy non-table code path for it, so
//     `backend = reference` output is bit-identical to the pre-backend
//     default at `simd = scalar`.
//   * simd — the existing AVX2/AVX-512 dispatch, at whatever level
//     `simd =` resolves to.  Agrees with reference to <= 1e-10 relative on
//     the log-likelihood (the PR 4 contract, unchanged).
//   * blas — vendor CBLAS (OpenBLAS/MKL/...) behind the SLIM_WITH_BLAS
//     CMake option.  When the option is off the backend is "not compiled"
//     and an explicit `backend = blas` fails with a keyed error at
//     evaluator construction, mirroring resolveSimdLevel's contract.
//     Row-major dgemm/dsyrk with the Pi sandwich and clamp applied in a
//     follow-up pass (vendor kernels cannot fuse them).
//   * (GPU slot) — a future `cuda`/`hip` backend plugs in here: add a
//     BackendKind enumerator, a TU returning its kernel table behind a
//     CMake option (the backend_blas.cpp pattern), and extend
//     backendCompiled/backendAvailable.  Because the interface is the same
//     row-major panel contract the engine already batches through, no
//     evaluator change is needed.  See docs/backends.md.
//
// Resolution contract (resolveBackendKind): Auto picks Reference when the
// resolved SIMD level is Scalar and Simd otherwise — i.e. exactly what the
// engine did before this layer existed.  Auto never picks Blas; vendor
// libraries reassociate sums, so leaving the deterministic default requires
// an explicit opt-in.

#include <string_view>

#include "linalg/simd.hpp"

namespace slim::backend {

/// What the user asked for (`backend =` ctl key / LikelihoodOptions).
enum class BackendMode {
  Auto,       ///< Reference at scalar SIMD, Simd otherwise (pre-PR behavior).
  Reference,  ///< Force the scalar reference path (bit-exact oracle).
  Simd,       ///< Require the SIMD kernel table at the resolved `simd` level.
  Blas,       ///< Require vendor CBLAS; fails if not compiled in.
};

/// What resolution actually selected (recorded in reports).
enum class BackendKind {
  Reference,
  Simd,
  Blas,
};

const char* backendModeName(BackendMode m) noexcept;
const char* backendKindName(BackendKind k) noexcept;

/// Parse a ctl-file value ("auto", "reference", "simd", "blas").  Returns
/// false on unknown text (out untouched).
bool parseBackendMode(std::string_view text, BackendMode& out) noexcept;
/// Parse a resolved kind ("reference", "simd", "blas"); false on unknown.
bool parseBackendKind(std::string_view text, BackendKind& out) noexcept;

/// One resolved backend: identity plus the kernel table the evaluator calls.
/// The ops table obeys the linalg::SimdKernels row-determinism contract
/// (row i of each output depends only on the operands' row i, or on the full
/// inputs in a fixed accumulation order), which the engine's thread-count /
/// block-size bit-invariance rests on.  Vendor BLAS keeps the contract
/// per-call (one call -> one deterministic result for the whole panel) but
/// may reassociate within a row, hence the <= 1e-10 (not bit) lnL contract.
struct ComputeBackend {
  BackendKind kind = BackendKind::Reference;
  const char* name = "reference";
  /// SIMD level the ops table runs at (Scalar for reference and blas).
  linalg::SimdLevel simdLevel = linalg::SimdLevel::Scalar;
  linalg::SimdKernels ops{};
};

/// Whether this binary contains the backend (reference/simd: always; blas:
/// SLIM_WITH_BLAS builds only).
bool backendCompiled(BackendKind k) noexcept;

/// Compiled in AND runnable right now (same as compiled for reference and
/// blas; for simd it means some vector level beyond scalar is available).
bool backendAvailable(BackendKind k) noexcept;

/// Resolve a requested mode against the already-resolved SIMD level.  Auto
/// picks Reference when `simdLevel` is Scalar and Simd otherwise.  An
/// explicit unavailable backend throws std::invalid_argument with a keyed
/// message (mirroring resolveSimdLevel), so a ctl file demanding blas on a
/// non-BLAS build fails loudly at evaluator construction.
BackendKind resolveBackendKind(BackendMode mode, linalg::SimdLevel simdLevel);

/// The backend descriptor for a resolved kind.  `simdLevel` selects the
/// kernel table for BackendKind::Simd and is ignored otherwise.  The kind
/// must be available (resolveBackendKind enforces this).
ComputeBackend computeBackend(BackendKind kind, linalg::SimdLevel simdLevel);

namespace detail {
/// Implemented by backend_blas.cpp (the only TU that includes <cblas.h>);
/// returns nullptr when SLIM_WITH_BLAS was off, mirroring
/// linalg::detail::avx2KernelTable().
const linalg::SimdKernels* blasKernelTable() noexcept;
}  // namespace detail

}  // namespace slim::backend
