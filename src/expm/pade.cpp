#include "expm/pade.hpp"

#include <cmath>

#include "linalg/blas3.hpp"
#include "linalg/lu.hpp"
#include "support/require.hpp"

namespace slim::expm {

using linalg::Flavor;
using linalg::Matrix;

Matrix expmPade(const Matrix& a) {
  SLIM_REQUIRE(a.square(), "expmPade: matrix must be square");
  const std::size_t n = a.rows();

  // Infinity norm -> scaling exponent s with ||A / 2^s|| <= 0.5.
  double norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double rowSum = 0.0;
    for (std::size_t j = 0; j < n; ++j) rowSum += std::fabs(a(i, j));
    norm = std::max(norm, rowSum);
  }
  int s = 0;
  if (norm > 0.5) s = static_cast<int>(std::ceil(std::log2(norm))) + 1;
  const double scale = std::ldexp(1.0, -s);  // 2^{-s}

  Matrix b(n, n);
  for (std::size_t k = 0; k < a.size(); ++k) b.data()[k] = a.data()[k] * scale;

  // Order-6 diagonal Pade: N = sum c_k B^k, D = sum c_k (-B)^k, X = D^{-1} N.
  constexpr int q = 6;
  double c = 1.0;
  Matrix num = Matrix::identity(n);
  Matrix den = Matrix::identity(n);
  Matrix power = Matrix::identity(n);
  Matrix tmp(n, n);
  double sign = 1.0;
  for (int k = 1; k <= q; ++k) {
    c *= static_cast<double>(q - k + 1) / (k * (2 * q - k + 1));
    linalg::gemm(Flavor::Opt, power, b, tmp);
    power = tmp;
    sign = -sign;
    for (std::size_t idx = 0; idx < power.size(); ++idx) {
      num.data()[idx] += c * power.data()[idx];
      den.data()[idx] += c * sign * power.data()[idx];
    }
  }

  Matrix x = linalg::LuFactorization(den).solve(num);

  // Undo the scaling by repeated squaring.
  for (int k = 0; k < s; ++k) {
    linalg::gemm(Flavor::Opt, x, x, tmp);
    x = tmp;
  }
  return x;
}

}  // namespace slim::expm
