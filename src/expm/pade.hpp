#pragma once
// Pade scaling-and-squaring matrix exponential.
//
// An eigendecomposition-free oracle: the decompositional pipeline of
// CodonEigenSystem is validated against this in tests ("Nineteen dubious
// ways...", Moler & Van Loan — Pade + scaling/squaring is method #3 and the
// workhorse of expm() in MATLAB/SciPy).  Not a hot path.

#include "linalg/matrix.hpp"

namespace slim::expm {

/// e^A for a general square matrix via order-6 diagonal Pade approximant
/// with scaling and squaring.
linalg::Matrix expmPade(const linalg::Matrix& a);

}  // namespace slim::expm
