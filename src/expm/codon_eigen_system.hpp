#pragma once
// The SlimCodeML matrix-exponential pipeline (paper Sec. II-C1 / III-A).
//
// Given a symmetric exchangeability S and codon frequencies pi, the
// instantaneous rate matrix is Q = S Pi.  Steps:
//
//   1.  A := Pi^{1/2} S Pi^{1/2}                      (O(n^2), Eq. 2)
//   2.  A  = X Lambda X^T (symmetric eigenproblem)    (O(n^3), once per omega)
//   then, per branch length t:
//   3.  Y := X e^{Lambda t/2}                         (O(n^2), Eq. 11)
//   4.  Z := Y Y^T      [SyrkPath, Eq. 10, ~n^3]      — or —
//       Z := (X e^{Lambda t}) X^T [GemmPath, Eq. 9, ~2n^3]
//   5.  P(t) := Pi^{-1/2} Z Pi^{1/2}                  (O(n^2), Eq. 5)
//
// The class also implements the Eq. 12-13 refinement: with
// Yhat := Pi^{-1/2} X e^{Lambda t/2}, the product M = Yhat Yhat^T is
// *symmetric* and e^{Qt} w = M (Pi w), enabling symv propagation, or the
// factored apply e^{Qt} W = Yhat (Yhat^T (Pi W)) that skips the n^3
// formation of P entirely.

#include <span>
#include <vector>

#include "eigenx/sym_eigen.hpp"
#include "linalg/blas3.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"

namespace slim::expm {

/// How P(t) is reconstructed from the eigendecomposition.
enum class ReconstructionPath {
  Gemm,  ///< Eq. 9: Z = (X e^{Lambda t}) X^T, general product, ~2n^3 flops.
  Syrk,  ///< Eq. 10: Z = Y Y^T with Y = X e^{Lambda t/2}, ~n^3 flops.
};

constexpr const char* reconstructionPathName(ReconstructionPath p) noexcept {
  return p == ReconstructionPath::Gemm ? "gemm(Eq.9)" : "syrk(Eq.10)";
}

/// Scratch buffers reused across transitionMatrix calls so the per-branch
/// hot loop performs no allocation.
struct ExpmWorkspace {
  linalg::Matrix y;          // X e^{Lambda t} or Yhat
  linalg::Matrix z;          // reconstruction output / Yhat^T
  linalg::Vector expDiag;    // e^{lambda_i t} or e^{lambda_i t/2}
  linalg::Matrix applyTmp1;  // Pi W   (apply path)
  linalg::Matrix applyTmp2;  // Yhat^T (Pi W)
};

class CodonEigenSystem {
 public:
  /// Symmetrize and eigendecompose (steps 1-2).  `s` must be symmetric with
  /// zero diagonal (an exchangeability matrix, possibly pre-scaled); `pi`
  /// strictly positive summing to 1.
  CodonEigenSystem(const linalg::Matrix& s, std::span<const double> pi);

  std::size_t n() const noexcept { return eig_.vectors.rows(); }
  const linalg::Vector& eigenvalues() const noexcept { return eig_.values; }
  const linalg::Matrix& eigenvectors() const noexcept { return eig_.vectors; }
  std::span<const double> pi() const noexcept { return pi_; }
  std::span<const double> sqrtPi() const noexcept { return sqrtPi_; }
  std::span<const double> invSqrtPi() const noexcept { return invSqrtPi_; }

  /// Steps 3-5: fill p with P(t) = e^{Qt}.  Tiny negative entries produced
  /// by roundoff are clamped to 0 (identical policy on every path so that
  /// engine comparisons are exact-likelihood-equivalent).
  void transitionMatrix(double t, ReconstructionPath path,
                        linalg::Flavor flavor, ExpmWorkspace& ws,
                        linalg::Matrix& p) const;

  /// SIMD-dispatched reconstruction with the Pi^{-1/2}/Pi^{1/2} sandwich
  /// (and the roundoff clamp) fused into the rank-update loop, so the two
  /// n x n post-passes of the Flavor path disappear.  With the scalar
  /// kernel table the result is bit-identical to
  /// transitionMatrix(..., Flavor::Opt, ...); AVX tables agree to
  /// floating-point reassociation.
  void transitionMatrix(double t, ReconstructionPath path,
                        const linalg::SimdKernels& kern, ExpmWorkspace& ws,
                        linalg::Matrix& p) const;

  /// Fill dp with dP(t)/dt = Q e^{Qt}, the branch-length derivative of the
  /// propagator, via the same eigendecomposition:
  ///   dP/dt = Pi^{-1/2} X (Lambda e^{Lambda t}) X^T Pi^{1/2},
  /// i.e. the Eq. 9 reconstruction with the exponentials scaled by their
  /// eigenvalues.  No roundoff clamping: unlike P, dP legitimately carries
  /// negative entries.  One O(n^3) product per (omega class, branch length)
  /// — what makes a full analytic branch gradient cost a constant number of
  /// pruning-sweep equivalents instead of one likelihood evaluation per
  /// branch.
  void derivativeMatrix(double t, linalg::Flavor flavor, ExpmWorkspace& ws,
                        linalg::Matrix& dp) const;

  /// SIMD-dispatched dP/dt with the sandwich fused (no clamp — derivatives
  /// legitimately carry negative entries).
  void derivativeMatrix(double t, const linalg::SimdKernels& kern,
                        ExpmWorkspace& ws, linalg::Matrix& dp) const;

  /// Eq. 12-13: fill m with the *symmetric* propagator M = Yhat Yhat^T such
  /// that e^{Qt} w = M (Pi w).  Use with linalg::symv.
  void symmetricPropagator(double t, linalg::Flavor flavor, ExpmWorkspace& ws,
                           linalg::Matrix& m) const;

  /// SIMD-dispatched form of the Eq. 12 symmetric propagator build.
  void symmetricPropagator(double t, const linalg::SimdKernels& kern,
                           ExpmWorkspace& ws, linalg::Matrix& m) const;

  /// Fill yhat with Yhat = Pi^{-1/2} X e^{Lambda t/2} (n x n), the factor of
  /// the apply path: e^{Qt} W = Yhat (Yhat^T (Pi W)).
  void makeYhat(double t, linalg::Matrix& yhat) const;

  /// Apply e^{Qt} to a bundle of column vectors: out := e^{Qt} w where w and
  /// out are n x m.  Uses the factored path (2 gemms of n x n by n x m),
  /// never forming P; cheaper than reconstruction when m << n/2.
  void applyExp(double t, const linalg::Matrix& w, linalg::Flavor flavor,
                ExpmWorkspace& ws, linalg::Matrix& out) const;

 private:
  std::vector<double> pi_, sqrtPi_, invSqrtPi_;
  eigenx::SymEigenResult eig_;
};

/// Pattern-major panel form of the Eq. 13 factored apply, the entry point of
/// the pattern-blocked likelihood engine: given Yhat (n x n) and a panel W
/// (p x n) whose rows are CPVs, fill out (p x n) with row h = (e^{Qt} w_h)^T
/// via ((W Pi) Yhat) Yhat^T — two rectangular gemms, no n x n product.
/// Roundoff negatives are clamped to 0 (same policy as transitionMatrix).
/// piW and u are caller-owned workspaces shaped like w.
void applyFactoredPanel(const linalg::Matrix& yhat, std::span<const double> pi,
                        linalg::ConstMatrixView w, linalg::Flavor flavor,
                        linalg::MatrixView piW, linalg::MatrixView u,
                        linalg::MatrixView out);

/// SIMD-dispatched form: the two rectangular gemms run on the selected
/// kernel table (bit-identical to the Flavor::Opt form under the scalar
/// table).
void applyFactoredPanel(const linalg::Matrix& yhat, std::span<const double> pi,
                        linalg::ConstMatrixView w,
                        const linalg::SimdKernels& kern, linalg::MatrixView piW,
                        linalg::MatrixView u, linalg::MatrixView out);

}  // namespace slim::expm
