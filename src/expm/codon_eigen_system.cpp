#include "expm/codon_eigen_system.hpp"

#include <cmath>

#include "linalg/diag.hpp"
#include "support/require.hpp"

namespace slim::expm {

using linalg::Flavor;
using linalg::Matrix;

CodonEigenSystem::CodonEigenSystem(const Matrix& s, std::span<const double> pi) {
  const std::size_t n = s.rows();
  SLIM_REQUIRE(s.square() && n > 0, "exchangeability matrix must be square");
  SLIM_REQUIRE(pi.size() == n, "pi has wrong length");

  pi_.assign(pi.begin(), pi.end());
  sqrtPi_.resize(n);
  invSqrtPi_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    SLIM_REQUIRE(pi_[i] > 0, "pi must be strictly positive (Eq. 2 requires Pi^{1/2})");
    sqrtPi_[i] = std::sqrt(pi_[i]);
    invSqrtPi_[i] = 1.0 / sqrtPi_[i];
  }

  // Step 1 (Eq. 2): A = Pi^{1/2} S Pi^{1/2}, where the diagonal of S is
  // fixed up from the generator constraint (rows of Q = S Pi sum to zero):
  //   s_ii = -(sum_{j != i} s_ij pi_j) / pi_i
  //   => a_ii = pi_i s_ii = -sum_{j != i} s_ij pi_j.
  // Any diagonal present in the input s is ignored.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double rowRate = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = sqrtPi_[i] * s(i, j) * sqrtPi_[j];
      rowRate += s(i, j) * pi_[j];
    }
    a(i, i) = -rowRate;
  }

  // Step 2: symmetric eigendecomposition (the well-conditioned problem).
  eig_ = eigenx::symEigen(a);

  // A is similar to the generator Q, whose spectrum is non-positive; any
  // positive eigenvalue is pure roundoff (~1e-14) and is clamped so that
  // exp(lambda * t) can never diverge for large branch lengths.
  for (std::size_t i = 0; i < n; ++i)
    if (eig_.values[i] > 0.0) eig_.values[i] = 0.0;
}

void CodonEigenSystem::transitionMatrix(double t, ReconstructionPath path,
                                        Flavor flavor, ExpmWorkspace& ws,
                                        Matrix& p) const {
  const std::size_t nn = n();
  SLIM_REQUIRE(t >= 0, "branch length must be non-negative");
  SLIM_REQUIRE(p.rows() == nn && p.square(), "output shape mismatch");
  if (ws.y.rows() != nn) ws.y.resize(nn, nn);
  if (ws.z.rows() != nn || ws.z.cols() != nn) ws.z.resize(nn, nn);
  if (ws.expDiag.size() != nn) ws.expDiag.assign(nn, 0.0);

  if (path == ReconstructionPath::Syrk) {
    // Step 3: Y = X e^{Lambda t/2}; Step 4: Z = Y Y^T (Eq. 10, ~n^3 flops).
    for (std::size_t i = 0; i < nn; ++i)
      ws.expDiag[i] = std::exp(0.5 * eig_.values[i] * t);
    linalg::scaleCols(eig_.vectors, ws.expDiag.span(), ws.y);
    linalg::syrk(flavor, ws.y, ws.z);
  } else {
    // Eq. 9: Z = (X e^{Lambda t}) X^T, general product, ~2n^3 flops.
    for (std::size_t i = 0; i < nn; ++i)
      ws.expDiag[i] = std::exp(eig_.values[i] * t);
    linalg::scaleCols(eig_.vectors, ws.expDiag.span(), ws.y);
    linalg::gemmNT(flavor, ws.y, eig_.vectors, ws.z);
  }

  // Step 5 (Eq. 5): P = Pi^{-1/2} Z Pi^{1/2}; clamp roundoff negatives.
  linalg::scaleSandwich(ws.z, invSqrtPi_, sqrtPi_, p);
  for (std::size_t k = 0; k < p.size(); ++k)
    if (p.data()[k] < 0.0) p.data()[k] = 0.0;
}

void CodonEigenSystem::transitionMatrix(double t, ReconstructionPath path,
                                        const linalg::SimdKernels& kern,
                                        ExpmWorkspace& ws, Matrix& p) const {
  const std::size_t nn = n();
  SLIM_REQUIRE(t >= 0, "branch length must be non-negative");
  SLIM_REQUIRE(p.rows() == nn && p.square(), "output shape mismatch");
  if (ws.y.rows() != nn) ws.y.resize(nn, nn);
  if (ws.expDiag.size() != nn) ws.expDiag.assign(nn, 0.0);

  if (path == ReconstructionPath::Syrk) {
    // Eq. 10 with step 5 fused: P = Pi^{-1/2} (Y Y^T) Pi^{1/2} straight out
    // of the rank-update loop, clamp included — no ws.z, no mirror pass, no
    // sandwich pass.
    for (std::size_t i = 0; i < nn; ++i)
      ws.expDiag[i] = std::exp(0.5 * eig_.values[i] * t);
    linalg::scaleCols(eig_.vectors, ws.expDiag.span(), ws.y);
    kern.syrkSandwich(ws.y.data(), invSqrtPi_.data(), sqrtPi_.data(), p.data(),
                      nn, nn);
  } else {
    // Eq. 9 with step 5 fused into the general product.
    for (std::size_t i = 0; i < nn; ++i)
      ws.expDiag[i] = std::exp(eig_.values[i] * t);
    linalg::scaleCols(eig_.vectors, ws.expDiag.span(), ws.y);
    kern.gemmNTSandwich(ws.y.data(), eig_.vectors.data(), invSqrtPi_.data(),
                        sqrtPi_.data(), p.data(), nn, nn, nn,
                        /*clampNegative=*/true);
  }
}

void CodonEigenSystem::derivativeMatrix(double t, Flavor flavor,
                                        ExpmWorkspace& ws, Matrix& dp) const {
  const std::size_t nn = n();
  SLIM_REQUIRE(t >= 0, "branch length must be non-negative");
  SLIM_REQUIRE(dp.rows() == nn && dp.square(), "output shape mismatch");
  if (ws.y.rows() != nn) ws.y.resize(nn, nn);
  if (ws.z.rows() != nn || ws.z.cols() != nn) ws.z.resize(nn, nn);
  if (ws.expDiag.size() != nn) ws.expDiag.assign(nn, 0.0);

  for (std::size_t i = 0; i < nn; ++i)
    ws.expDiag[i] = eig_.values[i] * std::exp(eig_.values[i] * t);
  linalg::scaleCols(eig_.vectors, ws.expDiag.span(), ws.y);
  linalg::gemmNT(flavor, ws.y, eig_.vectors, ws.z);
  linalg::scaleSandwich(ws.z, invSqrtPi_, sqrtPi_, dp);
}

void CodonEigenSystem::derivativeMatrix(double t,
                                        const linalg::SimdKernels& kern,
                                        ExpmWorkspace& ws, Matrix& dp) const {
  const std::size_t nn = n();
  SLIM_REQUIRE(t >= 0, "branch length must be non-negative");
  SLIM_REQUIRE(dp.rows() == nn && dp.square(), "output shape mismatch");
  if (ws.y.rows() != nn) ws.y.resize(nn, nn);
  if (ws.expDiag.size() != nn) ws.expDiag.assign(nn, 0.0);

  for (std::size_t i = 0; i < nn; ++i)
    ws.expDiag[i] = eig_.values[i] * std::exp(eig_.values[i] * t);
  linalg::scaleCols(eig_.vectors, ws.expDiag.span(), ws.y);
  kern.gemmNTSandwich(ws.y.data(), eig_.vectors.data(), invSqrtPi_.data(),
                      sqrtPi_.data(), dp.data(), nn, nn, nn,
                      /*clampNegative=*/false);
}

void CodonEigenSystem::symmetricPropagator(double t, Flavor flavor,
                                           ExpmWorkspace& ws, Matrix& m) const {
  const std::size_t nn = n();
  SLIM_REQUIRE(t >= 0, "branch length must be non-negative");
  SLIM_REQUIRE(m.rows() == nn && m.square(), "output shape mismatch");
  if (ws.y.rows() != nn) ws.y.resize(nn, nn);
  makeYhat(t, ws.y);
  // M = Yhat Yhat^T is symmetric; e^{Qt} w = M (Pi w)  (Eq. 12).
  linalg::syrk(flavor, ws.y, m);
}

void CodonEigenSystem::symmetricPropagator(double t,
                                           const linalg::SimdKernels& kern,
                                           ExpmWorkspace& ws,
                                           Matrix& m) const {
  const std::size_t nn = n();
  SLIM_REQUIRE(t >= 0, "branch length must be non-negative");
  SLIM_REQUIRE(m.rows() == nn && m.square(), "output shape mismatch");
  if (ws.y.rows() != nn) ws.y.resize(nn, nn);
  makeYhat(t, ws.y);
  linalg::syrk(kern, ws.y, m);
}

void CodonEigenSystem::makeYhat(double t, Matrix& yhat) const {
  const std::size_t nn = n();
  SLIM_REQUIRE(t >= 0, "branch length must be non-negative");
  SLIM_REQUIRE(yhat.rows() == nn && yhat.square(), "output shape mismatch");
  // Yhat = Pi^{-1/2} X e^{Lambda t/2}  (Eq. 13); the exponential depends
  // only on the column, so hoist it out of the O(n^2) loop.
  std::vector<double> expHalf(nn);
  for (std::size_t j = 0; j < nn; ++j)
    expHalf[j] = std::exp(0.5 * eig_.values[j] * t);
  for (std::size_t i = 0; i < nn; ++i) {
    const double li = invSqrtPi_[i];
    for (std::size_t j = 0; j < nn; ++j)
      yhat(i, j) = li * eig_.vectors(i, j) * expHalf[j];
  }
}

void CodonEigenSystem::applyExp(double t, const Matrix& w, Flavor flavor,
                                ExpmWorkspace& ws, Matrix& out) const {
  const std::size_t nn = n();
  const std::size_t m = w.cols();
  SLIM_REQUIRE(w.rows() == nn, "applyExp: input rows mismatch");
  SLIM_REQUIRE(out.rows() == nn && out.cols() == m, "applyExp: output shape");
  if (ws.y.rows() != nn) ws.y.resize(nn, nn);
  if (ws.z.rows() != nn || ws.z.cols() != nn) ws.z.resize(nn, nn);

  makeYhat(t, ws.y);
  linalg::transposeInto(ws.y, ws.z);  // Yhat^T

  // u = Yhat^T (Pi W); out = Yhat u.  Two n x n by n x m products
  // (~4 n^2 m flops) with no n^3 formation of P.
  Matrix& piW = ws.applyTmp1;
  Matrix& u = ws.applyTmp2;
  if (piW.rows() != nn || piW.cols() != m) piW.resize(nn, m);
  if (u.rows() != nn || u.cols() != m) u.resize(nn, m);
  linalg::scaleRows(pi_, w, piW);
  linalg::gemm(flavor, ws.z, piW, u);
  linalg::gemm(flavor, ws.y, u, out);
  for (std::size_t k = 0; k < out.size(); ++k)
    if (out.data()[k] < 0.0) out.data()[k] = 0.0;
}

void applyFactoredPanel(const Matrix& yhat, std::span<const double> pi,
                        linalg::ConstMatrixView w, Flavor flavor,
                        linalg::MatrixView piW, linalg::MatrixView u,
                        linalg::MatrixView out) {
  const std::size_t nn = yhat.rows();
  SLIM_REQUIRE(yhat.square() && w.cols() == nn, "applyFactoredPanel: shapes");
  SLIM_REQUIRE(piW.rows() == w.rows() && piW.cols() == nn &&
                   u.rows() == w.rows() && u.cols() == nn &&
                   out.rows() == w.rows() && out.cols() == nn,
               "applyFactoredPanel: workspace shapes");
  linalg::scaleCols(w, pi, piW);
  linalg::gemm(flavor, piW, yhat.view(), u);
  linalg::gemmNT(flavor, u, yhat.view(), out);
  for (std::size_t k = 0; k < out.size(); ++k)
    if (out.data()[k] < 0.0) out.data()[k] = 0.0;
}

void applyFactoredPanel(const Matrix& yhat, std::span<const double> pi,
                        linalg::ConstMatrixView w,
                        const linalg::SimdKernels& kern,
                        linalg::MatrixView piW, linalg::MatrixView u,
                        linalg::MatrixView out) {
  const std::size_t nn = yhat.rows();
  SLIM_REQUIRE(yhat.square() && w.cols() == nn, "applyFactoredPanel: shapes");
  SLIM_REQUIRE(piW.rows() == w.rows() && piW.cols() == nn &&
                   u.rows() == w.rows() && u.cols() == nn &&
                   out.rows() == w.rows() && out.cols() == nn,
               "applyFactoredPanel: workspace shapes");
  linalg::scaleCols(w, pi, piW);
  linalg::gemm(kern, piW, yhat.view(), u);
  linalg::gemmNT(kern, u, yhat.view(), out);
  for (std::size_t k = 0; k < out.size(); ++k)
    if (out.data()[k] < 0.0) out.data()[k] = 0.0;
}

}  // namespace slim::expm
