#include "tune/autotune.hpp"

#include <chrono>
#include <limits>
#include <memory>

#include "bio/genetic_code.hpp"
#include "core/batch.hpp"
#include "lik/branch_site_likelihood.hpp"
#include "model/frequencies.hpp"
#include "seqio/alignment.hpp"
#include "sim/datasets.hpp"
#include "support/host_info.hpp"
#include "support/parallel.hpp"

namespace slim::tune {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

linalg::SimdMode modeForLevel(linalg::SimdLevel level) {
  switch (level) {
    case linalg::SimdLevel::Scalar: return linalg::SimdMode::Scalar;
    case linalg::SimdLevel::Avx2: return linalg::SimdMode::Avx2;
    case linalg::SimdLevel::Avx512: return linalg::SimdMode::Avx512;
  }
  return linalg::SimdMode::Scalar;
}

backend::BackendMode modeForBackend(backend::BackendKind kind) {
  switch (kind) {
    case backend::BackendKind::Reference: return backend::BackendMode::Reference;
    case backend::BackendKind::Simd: return backend::BackendMode::Simd;
    case backend::BackendKind::Blas: return backend::BackendMode::Blas;
  }
  return backend::BackendMode::Reference;
}

/// Fastest-of-`repeats` timing of `evals` warm logLikelihood calls.
double timeEvaluator(lik::BranchSiteLikelihood& eval,
                     const model::BranchSiteParams& params, int evals,
                     int repeats) {
  eval.logLikelihood(params);  // warm-up: first-eval eigen + propagators
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    for (int e = 0; e < evals; ++e) eval.logLikelihood(params);
    best = std::min(best, secondsSince(t0) / evals);
  }
  return best;
}

}  // namespace

AutotuneResult autotune(const AutotuneOptions& options) {
  const auto start = Clock::now();
  AutotuneResult result;

  const int threads = support::resolveThreadCount(options.threads);
  const int evals = std::max(1, options.evalsPerConfig);
  const int repeats = std::max(1, options.repeats);

  // The shared microbenchmark gene.
  const auto& gc = bio::GeneticCode::universal();
  const auto ds =
      sim::makeSweepDataset(options.numSpecies, options.seed, options.numCodons);
  const auto ca = seqio::encodeCodons(ds.alignment, gc);
  const auto patterns = seqio::compressPatterns(ca);
  const auto pi =
      model::estimateCodonFrequencies(ca, model::CodonFrequencyModel::F3x4);
  const auto params = sim::defaultSimulationParams();

  const auto measureEval = [&](backend::BackendKind kind,
                               linalg::SimdLevel level, int block,
                               int numThreads) {
    lik::LikelihoodOptions opts = lik::slimOptions();
    opts.simd = modeForLevel(level);
    opts.backend = modeForBackend(kind);
    opts.blockSize = block;
    opts.numThreads = numThreads;
    lik::BranchSiteLikelihood eval(ca, patterns, pi, ds.tree,
                                   model::Hypothesis::H1, opts);
    const double secs = timeEvaluator(eval, params, evals, repeats);
    result.measurements.push_back(
        {std::string("eval/backend=") + backend::backendKindName(kind) +
             "/simd=" + linalg::simdLevelName(level) +
             "/block=" + std::to_string(block) +
             "/threads=" + std::to_string(numThreads),
         secs});
    return secs;
  };

  // --- Phase 1: backend x SIMD level x block size at the tuned thread
  // count.  The SIMD-level axis only exists under the simd backend; the
  // reference and (vendor-ordered) blas kernels ignore the lane width.
  std::vector<linalg::SimdLevel> levels{linalg::SimdLevel::Scalar};
  for (const auto level :
       {linalg::SimdLevel::Avx2, linalg::SimdLevel::Avx512})
    if (linalg::simdLevelAvailable(level)) levels.push_back(level);

  std::vector<backend::BackendKind> backends;
  for (const auto kind :
       {backend::BackendKind::Reference, backend::BackendKind::Simd,
        backend::BackendKind::Blas})
    if (backend::backendAvailable(kind)) backends.push_back(kind);

  backend::BackendKind bestBackend = backend::BackendKind::Reference;
  linalg::SimdLevel bestLevel = linalg::SimdLevel::Scalar;
  int bestBlock = options.blockSizes.empty() ? 64 : options.blockSizes.front();
  double bestSecs = std::numeric_limits<double>::infinity();
  for (const auto kind : backends) {
    const std::vector<linalg::SimdLevel> kindLevels =
        kind == backend::BackendKind::Simd
            ? levels
            : std::vector<linalg::SimdLevel>{linalg::SimdLevel::Scalar};
    for (const auto level : kindLevels) {
      for (const int block : options.blockSizes) {
        const double secs = measureEval(kind, level, block, threads);
        if (secs < bestSecs) {
          bestSecs = secs;
          bestBackend = kind;
          bestLevel = level;
          bestBlock = block;
        }
      }
    }
  }

  // --- Phase 2: thread sweep at the winning backend/SIMD/block config ---
  int bestThreads = threads;
  for (int t = 1; t < threads; t *= 2) {
    const double secs = measureEval(bestBackend, bestLevel, bestBlock, t);
    if (secs < bestSecs) {
      bestSecs = secs;
      bestThreads = t;
    }
  }
  // --- Phase 3: batch fan-out policy race (TaskLevel vs PatternLevel) ---
  core::ParallelPolicy bestPolicy = core::ParallelPolicy::Auto;
  if (options.tunePolicy && bestThreads > 1) {
    const int numGenes =
        std::max(2, options.policyGenesPerWorker * bestThreads);
    double bestPolicySecs = std::numeric_limits<double>::infinity();
    for (const auto policy : {core::ParallelPolicy::TaskLevel,
                              core::ParallelPolicy::PatternLevel}) {
      core::BatchOptions batchOptions;
      batchOptions.fit.bfgs.maxIterations = std::max(1, options.policyIterations);
      batchOptions.fit.tuning.numThreads = bestThreads;
      batchOptions.fit.tuning.blockSize = bestBlock;
      batchOptions.fit.tuning.simd = modeForLevel(bestLevel);
      batchOptions.fit.tuning.backend = modeForBackend(bestBackend);
      batchOptions.fit.tuning.policy = policy;
      core::BatchAnalysis batch(core::EngineKind::Slim, batchOptions);
      const auto tree = std::make_shared<const tree::Tree>(ds.tree);
      for (int g = 0; g < numGenes; ++g) batch.addGene(ca, tree);
      batch.runAll();  // warm-up (pattern tables, shards)
      const auto t0 = Clock::now();
      batch.runAll();
      const double secs = secondsSince(t0);
      result.measurements.push_back(
          {std::string("batch/parallel=") + core::parallelPolicyName(policy) +
               "/genes=" + std::to_string(numGenes) +
               "/threads=" + std::to_string(bestThreads),
           secs});
      if (secs < bestPolicySecs) {
        bestPolicySecs = secs;
        bestPolicy = policy;
      }
    }
  }

  core::TuningProfile& p = result.profile;
  p.host = support::hostName();
  p.simdDetected = linalg::simdLevelName(linalg::detectSimdLevel());
  p.hardwareThreads = support::hardwareThreads();
  p.numThreads = bestThreads;
  p.blockSize = bestBlock;
  p.policy = bestPolicy;
  p.simd = modeForLevel(bestLevel);
  p.backend = modeForBackend(bestBackend);
  p.secondsPerEval = bestSecs;
  result.seconds = secondsSince(start);
  return result;
}

}  // namespace slim::tune
