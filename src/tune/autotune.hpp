#pragma once
// Host microbenchmark behind `slimcodeml-tune` (the build_resource_model
// half of xblas's resource-model/predict split, PAPERS.md): measure the
// likelihood engine's actual speed on THIS machine across the tuning axes
// the engine exposes — compute backend x SIMD kernel level x pattern-block
// size x thread count, plus the batch scheduler's task-vs-pattern fan-out
// policy — and
// distill the winners into a core::TuningProfile that `tuning = auto`
// control files load at run time.
//
// The workload is a seeded synthetic branch-site gene (sim::makeSweepDataset
// shape), so tuning runs are reproducible and need no user data.  Tuning
// never changes results: every candidate configuration is bit-identical in
// lnL by the engine's thread/block invariants, and SIMD levels agree with
// scalar to <= 1e-10 relative — the profile trades nothing but speed.

#include <cstdint>
#include <string>
#include <vector>

#include "core/tuning_profile.hpp"

namespace slim::tune {

struct AutotuneOptions {
  /// Shape of the synthetic microbenchmark gene.
  int numSpecies = 12;
  int numCodons = 160;
  std::uint64_t seed = 20120521;
  /// Worker-pool size to tune for (0: all hardware threads).
  int threads = 0;
  /// Timed evaluations per candidate; each candidate is measured `repeats`
  /// times and the fastest pass wins (the standard microbenchmark guard
  /// against one-off scheduling noise).
  int evalsPerConfig = 3;
  int repeats = 2;
  /// Pattern-block sizes to sweep (0 = one block for all patterns).
  std::vector<int> blockSizes = {16, 32, 64, 128, 0};
  /// Also race the batch scheduler's TaskLevel vs PatternLevel fan-out on a
  /// small multi-gene batch (skipped — left Auto — on a 1-worker pool,
  /// where the policies are identical by construction).
  bool tunePolicy = true;
  int policyGenesPerWorker = 2;  ///< batch genes per worker in that race
  int policyIterations = 2;      ///< fit iteration cap in that race
};

/// One timed candidate, for the tool's table and the BENCH_tune.json trail.
struct AutotuneMeasurement {
  std::string name;  ///< e.g. "eval/backend=simd/simd=avx2/block=64/threads=4"
  double secondsPerUnit = 0; ///< per evaluation (eval/...) or per batch run
};

struct AutotuneResult {
  core::TuningProfile profile;
  std::vector<AutotuneMeasurement> measurements;  ///< in measurement order
  double seconds = 0;  ///< total tuning wall clock
};

/// Run the full sweep.  Deterministic in its candidate set and workload;
/// the *winners* of course depend on the host's actual timings.
AutotuneResult autotune(const AutotuneOptions& options = {});

}  // namespace slim::tune
