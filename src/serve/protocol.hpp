#pragma once
// The slimcodeml-serve-v1 wire protocol (see docs/protocol.md).
//
// Transport: a local stream socket carrying newline-delimited JSON — one
// request object per line, one response object per line.  Requests are
// untrusted input: parsing is strict (support/json_parse.hpp), every field
// is validated by name and type, and unknown ops/fields are keyed errors,
// never silently ignored.  Responses always carry
// {"schema":"slimcodeml-serve-v1","ok":true|false,...}; job results embed
// the existing `--json` report schema verbatim as the result payload.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace slim::serve {

inline constexpr std::string_view kServeSchema = "slimcodeml-serve-v1";

/// Hard cap on one request line (admission control; oversized requests are
/// rejected before parsing).
inline constexpr std::size_t kDefaultMaxRequestBytes = 1u << 20;

/// Thrown for any malformed request; the message names the offending
/// op/field so clients can fix the request without guessing.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Op { Ping, Status, Submit, Result, Cancel, Drain };

const char* opName(Op op) noexcept;

/// One parsed request.  Fields beyond `op` are meaningful per-op:
///   submit: ctl (required), priority, timeoutSec, checkpoint
///   status: id (optional; absent = server status)
///   result: id (required), wait
///   cancel: id (required)
///   ping / drain: no fields
struct Request {
  Op op = Op::Ping;
  std::string ctl;
  int priority = 0;        ///< Higher runs first; ties FIFO.  [-100, 100].
  double timeoutSec = 0;   ///< Per-job wall-clock budget (0: none).
  bool checkpoint = false; ///< Snapshot the job so it survives daemon restart.
  std::string id;
  bool wait = false;
};

inline constexpr int kMinPriority = -100;
inline constexpr int kMaxPriority = 100;

/// Parse and validate one request line.  Throws ProtocolError (or
/// support::JsonError for malformed JSON) with a message naming the
/// violation.
Request parseRequest(std::string_view line);

}  // namespace slim::serve
