#include "serve/context_cache.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/require.hpp"

namespace slim::serve {

struct ContextCache::Entry {
  std::uint64_t alignmentHash = 0;
  std::uint64_t treeHash = 0;
  core::EngineKind engine = core::EngineKind::Slim;
  model::CodonFrequencyModel frequencyModel = model::CodonFrequencyModel::F3x4;
  bool stopCodonsAsMissing = false;
  std::shared_ptr<const core::AnalysisContext> prototype;
  bool inUse = false;
  std::uint64_t lastUse = 0;
};

namespace {

std::string readFileBytes(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  SLIM_REQUIRE(in.good(),
               std::string("cannot open ") + what + " '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ContextCache::ContextCache(std::size_t maxEntries)
    : maxEntries_(std::max<std::size_t>(1, maxEntries)) {}

ContextCache::Lease::Lease(Lease&& other) noexcept
    : context_(std::move(other.context_)),
      cache_(other.cache_),
      entry_(std::move(other.entry_)) {
  other.cache_ = nullptr;
  other.entry_.reset();
}

ContextCache::Lease& ContextCache::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (cache_ != nullptr && entry_ != nullptr) cache_->release(entry_);
    context_ = std::move(other.context_);
    cache_ = other.cache_;
    entry_ = std::move(other.entry_);
    other.cache_ = nullptr;
    other.entry_.reset();
  }
  return *this;
}

ContextCache::Lease::~Lease() {
  if (cache_ != nullptr && entry_ != nullptr) cache_->release(entry_);
}

ContextCache::Lease ContextCache::acquire(const std::string& seqfile,
                                          const core::Config& config,
                                          const core::FitOptions& fit) {
  // Hash the *bytes* of both inputs before touching the cache: an on-disk
  // edit must always be a different key.
  const std::uint64_t alignmentHash =
      fnv1a(readFileBytes(seqfile, "sequence file"));
  const std::uint64_t treeHash =
      fnv1a(readFileBytes(config.treefile, "tree file"));

  support::MutexLock lock(mutex_);
  std::shared_ptr<Entry> found;
  for (const auto& entry : entries_) {
    if (entry->alignmentHash == alignmentHash && entry->treeHash == treeHash &&
        entry->engine == config.engine &&
        entry->frequencyModel == fit.frequencyModel &&
        entry->stopCodonsAsMissing == config.stopCodonsAsMissing) {
      found = entry;
      break;
    }
  }

  Lease lease;
  lease.cache_ = this;
  if (found != nullptr && !found->inUse) {
    ++stats_.hits;
    found->inUse = true;
    found->lastUse = ++useCounter_;
    lease.context_ = found->prototype->withOptions(fit);
    lease.entry_ = found;
    return lease;
  }
  if (found != nullptr) {
    // Same gene, but its propagator directory is leased to a running job.
    // Reuse the parsed data (cheap copy), take a cold private cache.
    ++stats_.busy;
    lease.context_ =
        found->prototype->withOptions(fit, /*sharePropagatorCache=*/false);
    return lease;
  }

  ++stats_.misses;
  // Cold build.  Parsing under the lock serializes concurrent cold starts;
  // acceptable at job-submission rates, and it guarantees two jobs racing on
  // a new gene share one entry instead of building two.
  auto entry = std::make_shared<Entry>();
  entry->alignmentHash = alignmentHash;
  entry->treeHash = treeHash;
  entry->engine = config.engine;
  entry->frequencyModel = fit.frequencyModel;
  entry->stopCodonsAsMissing = config.stopCodonsAsMissing;
  entry->prototype = core::AnalysisContext::create(
      core::loadAlignmentFile(seqfile, config.stopCodonsAsMissing),
      std::make_shared<const tree::Tree>(core::loadTreeFile(config.treefile)),
      config.engine, fit);
  entry->inUse = true;
  entry->lastUse = ++useCounter_;

  // Evict idle least-recently-used entries beyond the bound.
  while (entries_.size() + 1 > maxEntries_) {
    auto lru = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
      if (!(*it)->inUse && (lru == entries_.end() || (*it)->lastUse < (*lru)->lastUse))
        lru = it;
    if (lru == entries_.end()) break;  // everything leased; allow overflow
    entries_.erase(lru);
  }
  entries_.push_back(entry);

  lease.context_ = entry->prototype->withOptions(fit);
  lease.entry_ = entry;
  return lease;
}

void ContextCache::release(const std::shared_ptr<void>& entryHandle) {
  support::MutexLock lock(mutex_);
  auto* entry = static_cast<Entry*>(entryHandle.get());
  entry->inUse = false;
  entry->lastUse = ++useCounter_;
}

ContextCacheStats ContextCache::stats() const {
  support::MutexLock lock(mutex_);
  ContextCacheStats s = stats_;
  s.entries = entries_.size();
  return s;
}

}  // namespace slim::serve
