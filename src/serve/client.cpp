#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "support/require.hpp"

namespace slim::serve {

Client::Client(std::string socketPath) : socketPath_(std::move(socketPath)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SLIM_REQUIRE(socketPath_.size() < sizeof(addr.sun_path),
               "client: socket path too long for AF_UNIX ('" + socketPath_ +
                   "')");
  std::memcpy(addr.sun_path, socketPath_.c_str(), socketPath_.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SLIM_REQUIRE(fd_ >= 0, "client: cannot create socket");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("client: cannot connect to '" + socketPath_ +
                             "': " + detail);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

support::JsonValue Client::call(const std::string& requestLine) {
  const std::string payload = requestLine + "\n";
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd_, payload.data() + sent,
                             payload.size() - sent, MSG_NOSIGNAL);
    SLIM_REQUIRE(n > 0, "client: connection to daemon lost while sending");
    sent += static_cast<std::size_t>(n);
  }

  char chunk[4096];
  for (;;) {
    const auto nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return support::parseJson(line);
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    SLIM_REQUIRE(n > 0, "client: connection closed before a response arrived");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace slim::serve
