#pragma once
// Minimal blocking client for the slimcodeml-serve-v1 protocol: one UNIX
// stream connection, one JSON line out, one JSON line back.  Used by the
// `slimcodeml_client` tool and by serve_test; kept in the library so tests
// exercise exactly the code the tool ships.

#include <string>

#include "support/json_parse.hpp"

namespace slim::serve {

class Client {
 public:
  /// Connects immediately; throws std::runtime_error when the daemon is not
  /// listening on `socketPath`.
  explicit Client(std::string socketPath);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line (newline appended here) and block for the
  /// daemon's one-line response, parsed as JSON.  Throws on connection loss
  /// or a response that fails to parse.  The same connection serves any
  /// number of sequential calls.
  support::JsonValue call(const std::string& requestLine);

  const std::string& socketPath() const noexcept { return socketPath_; }

 private:
  std::string socketPath_;
  int fd_ = -1;
  std::string buffer_;  ///< Bytes past the last consumed newline.
};

}  // namespace slim::serve
