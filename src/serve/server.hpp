#pragma once
// The analysis daemon behind `slimcodemld`: a persistent server accepting
// branch-site analysis jobs over a local (UNIX-domain) stream socket using
// the slimcodeml-serve-v1 protocol (serve/protocol.hpp, docs/protocol.md).
//
// Architecture:
//  * one accept thread (poll on the listening socket + a wake pipe), one
//    short-lived thread per connection, `workers` job threads;
//  * a priority job queue with admission control: submissions are parsed and
//    validated up-front (malformed ctl is rejected at submit, not at run),
//    bounded by maxQueued, with request lines bounded by maxRequestBytes;
//  * per-job cooperative cancellation and deadlines ride the optimizer's
//    CancelPredicate — a cancelled fit stops at an iteration boundary, which
//    is also a checkpoint snapshot boundary;
//  * hot state stays resident across jobs in a ContextCache (warm propagator
//    shards for repeat genes);
//  * with a state directory, the queue is journalled (atomic rewrite on
//    every mutation) and jobs submitted with "checkpoint":true snapshot
//    their optimizer state — SIGKILL + restart recovers them and resumes
//    bit-identically (PR 5 machinery);
//  * results are rendered with the same writers as `slimcodeml --json`, so
//    a daemon job's report is bit-identical to the CLI run of the same ctl.
//
// The class is a library object (the `slimcodemld` binary and serve_test
// both drive it) — POSIX sockets only, matching the platforms CI builds.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/context_cache.hpp"
#include "serve/protocol.hpp"

namespace slim::serve {

enum class JobState { Queued, Running, Done, Failed, Cancelled };
const char* jobStateName(JobState state) noexcept;

struct ServerOptions {
  std::string socketPath;  ///< Required; a stale socket file is replaced.
  /// Empty: no persistence (submit with "checkpoint":true is refused).
  /// Otherwise: queue journal + per-job checkpoints + result files live
  /// here (created if missing).
  std::string stateDir;
  int workers = 2;               ///< Max concurrently running jobs.
  std::size_t maxQueued = 64;    ///< Admission bound on waiting jobs.
  std::size_t maxRequestBytes = kDefaultMaxRequestBytes;
  std::size_t contextCacheEntries = 16;
};

class AnalysisServer {
 public:
  /// Binds and listens on options.socketPath and, with a state directory,
  /// recovers the persisted queue: interrupted jobs re-queue (resuming from
  /// their checkpoint when they have one), finished ones keep serving their
  /// recorded results.  Throws std::runtime_error on socket errors.
  explicit AnalysisServer(ServerOptions options);
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  /// Spawn the accept loop and the worker pool.
  void start();

  /// True once a `drain` request (or requestStop) asked the owner to shut
  /// down; the daemon main loop polls this.
  bool stopRequested() const noexcept;
  /// Ask the server to stop (signal-handler-safe owner side; the actual
  /// teardown happens in drainAndStop).
  void requestStop() noexcept;

  /// Graceful drain: stop admission, cooperatively cancel running fits
  /// (their checkpoints already hold the last completed iteration), requeue
  /// them as interrupted in the journal, persist everything, join all
  /// threads.  Idempotent.  Must not be called from a connection thread —
  /// the `drain` op only sets stopRequested().
  void drainAndStop();

  /// Test hook emulating SIGKILL: tear down threads *without* persisting
  /// any state change past the last journal write, leaving the state
  /// directory exactly as a killed process would.  Running fits are
  /// interrupted via the same cooperative stop (their on-disk checkpoint
  /// stays at the last persisted iteration).
  void abortStop();

  const std::string& socketPath() const noexcept;
  ContextCacheStats cacheStats() const;

 private:
  struct Job;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace slim::serve
