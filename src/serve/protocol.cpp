#include "serve/protocol.hpp"

#include <cmath>

#include "support/json_parse.hpp"

namespace slim::serve {

using support::JsonValue;

const char* opName(Op op) noexcept {
  switch (op) {
    case Op::Ping: return "ping";
    case Op::Status: return "status";
    case Op::Submit: return "submit";
    case Op::Result: return "result";
    case Op::Cancel: return "cancel";
    case Op::Drain: return "drain";
  }
  return "?";
}

namespace {

[[noreturn]] void bad(const std::string& what) { throw ProtocolError(what); }

const std::string& stringField(const JsonValue& obj, const char* key) {
  const JsonValue& v = obj.at(key);
  if (!v.isString()) bad(std::string("field \"") + key + "\" must be a string");
  return v.asString();
}

bool boolField(const JsonValue& v, const char* key) {
  if (!v.isBool()) bad(std::string("field \"") + key + "\" must be a boolean");
  return v.asBool();
}

double numberField(const JsonValue& v, const char* key) {
  if (!v.isNumber()) bad(std::string("field \"") + key + "\" must be a number");
  return v.asNumber();
}

bool knownField(std::string_view key, std::initializer_list<const char*> known) {
  for (const char* k : known)
    if (key == k) return true;
  return false;
}

}  // namespace

Request parseRequest(std::string_view line) {
  const JsonValue doc = support::parseJson(line);
  if (!doc.isObject()) bad("request must be a JSON object");

  // Optional schema pin: when a client sends one, it must be ours.
  if (const JsonValue* schema = doc.find("schema")) {
    if (!schema->isString() || schema->asString() != kServeSchema)
      bad("unsupported schema (this daemon speaks \"" +
          std::string(kServeSchema) + "\")");
  }

  const std::string& opString = stringField(doc, "op");
  Request req;
  if (opString == "ping")
    req.op = Op::Ping;
  else if (opString == "status")
    req.op = Op::Status;
  else if (opString == "submit")
    req.op = Op::Submit;
  else if (opString == "result")
    req.op = Op::Result;
  else if (opString == "cancel")
    req.op = Op::Cancel;
  else if (opString == "drain")
    req.op = Op::Drain;
  else
    bad("unknown op \"" + opString + "\"");

  // Per-op field whitelist; anything else is a keyed error so a client typo
  // ("priorty") fails loudly instead of silently running with defaults.
  for (const auto& [key, value] : doc.asObject()) {
    if (key == "schema" || key == "op") continue;
    switch (req.op) {
      case Op::Ping:
      case Op::Drain:
        bad("op \"" + std::string(opName(req.op)) +
            "\" accepts no field \"" + key + "\"");
      case Op::Status:
        if (!knownField(key, {"id"}))
          bad("unknown field \"" + key + "\" for op \"status\"");
        break;
      case Op::Submit:
        if (!knownField(key, {"ctl", "priority", "timeoutSec", "checkpoint"}))
          bad("unknown field \"" + key + "\" for op \"submit\"");
        break;
      case Op::Result:
        if (!knownField(key, {"id", "wait"}))
          bad("unknown field \"" + key + "\" for op \"result\"");
        break;
      case Op::Cancel:
        if (!knownField(key, {"id"}))
          bad("unknown field \"" + key + "\" for op \"cancel\"");
        break;
    }
    if (key == "id") {
      if (!value.isString()) bad("field \"id\" must be a string");
      req.id = value.asString();
      if (req.id.empty()) bad("field \"id\" must not be empty");
    } else if (key == "ctl") {
      if (!value.isString()) bad("field \"ctl\" must be a string");
      req.ctl = value.asString();
      if (req.ctl.empty()) bad("field \"ctl\" must not be empty");
    } else if (key == "priority") {
      const double p = numberField(value, "priority");
      if (std::floor(p) != p || p < kMinPriority || p > kMaxPriority)
        bad("field \"priority\" must be an integer in [" +
            std::to_string(kMinPriority) + ", " + std::to_string(kMaxPriority) +
            "]");
      req.priority = static_cast<int>(p);
    } else if (key == "timeoutSec") {
      const double t = numberField(value, "timeoutSec");
      if (!(t >= 0)) bad("field \"timeoutSec\" must be >= 0");
      req.timeoutSec = t;
    } else if (key == "checkpoint") {
      req.checkpoint = boolField(value, "checkpoint");
    } else if (key == "wait") {
      req.wait = boolField(value, "wait");
    }
  }

  if ((req.op == Op::Result || req.op == Op::Cancel) && req.id.empty())
    bad("op \"" + std::string(opName(req.op)) + "\" requires field \"id\"");
  if (req.op == Op::Submit && req.ctl.empty())
    bad("op \"submit\" requires field \"ctl\"");
  return req;
}

}  // namespace slim::serve
