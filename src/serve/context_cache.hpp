#pragma once
// Warm-state directory of the analysis daemon: shared AnalysisContexts keyed
// by (alignment content hash, tree content hash, engine, frequency model,
// cleandata).  A second job on the same gene/tree skips parsing, pattern
// compression and frequency estimation, and — when no other job holds the
// entry — reuses the entry's SharedPropagatorCache, so its first evaluations
// hit propagators the previous job already built (visible as
// propagatorCacheHits in the job's counters).
//
// Correctness over cleverness:
//  * keys hash file *content*, not paths — a client regenerating gene.fasta
//    in place never gets a stale context;
//  * each job receives a withOptions() clone carrying the job's exact
//    FitOptions, so cached state can never leak another job's optimizer
//    settings into a result (daemon == CLI bit-identity);
//  * an entry's propagator cache is leased to at most one job at a time:
//    concurrent jobs on the same gene get a cold private clone instead
//    (shard slots are not re-entrant; see lik/propagator_cache.hpp).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/context.hpp"
#include "support/thread_safety.hpp"

namespace slim::serve {

struct ContextCacheStats {
  std::uint64_t hits = 0;    ///< Jobs served a warm cached context.
  std::uint64_t misses = 0;  ///< Cold builds (first sight of the inputs).
  std::uint64_t busy = 0;    ///< Entry existed but was leased; private clone.
  std::size_t entries = 0;
};

class ContextCache {
 public:
  /// `maxEntries` bounds resident gene state; least-recently-used idle
  /// entries are evicted beyond it.
  explicit ContextCache(std::size_t maxEntries = 16);

  /// RAII lease of one per-gene context.  `context` carries the job's fit
  /// options; destroying the lease returns the warm entry to the cache.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    const std::shared_ptr<const core::AnalysisContext>& context() const {
      return context_;
    }
    /// True when this lease shares a cached (possibly warm) propagator
    /// directory; false for cold private clones handed out under contention.
    bool sharedEntry() const { return entry_ != nullptr; }

   private:
    friend class ContextCache;
    std::shared_ptr<const core::AnalysisContext> context_;
    ContextCache* cache_ = nullptr;
    std::shared_ptr<void> entry_;  // opaque Entry handle; null = private clone
  };

  /// Build or reuse the context for `seqfile`/`config.treefile` and hand it
  /// out with `fit` as its options.  File I/O and parsing errors propagate
  /// (std::runtime_error) — submit-time validation surfaces them as job
  /// failures.
  Lease acquire(const std::string& seqfile, const core::Config& config,
                const core::FitOptions& fit);

  ContextCacheStats stats() const;

 private:
  struct Entry;

  void release(const std::shared_ptr<void>& entryHandle);

  const std::size_t maxEntries_;
  mutable support::Mutex mutex_;
  // Entry objects (including their inUse/lastUse fields) are only read or
  // written under mutex_; the analysis cannot see that through the separate
  // struct, so the discipline for Entry internals is by convention (and the
  // TSan job), while the directory itself is annotated.
  std::vector<std::shared_ptr<Entry>> entries_ SLIM_GUARDED_BY(mutex_);
  std::uint64_t useCounter_ SLIM_GUARDED_BY(mutex_) = 0;
  ContextCacheStats stats_ SLIM_GUARDED_BY(mutex_);
};

}  // namespace slim::serve
