#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "core/batch.hpp"
#include "core/checkpoint.hpp"
#include "core/report.hpp"
#include "core/scan.hpp"
#include "tree/branch_classes.hpp"
#include "opt/cancel.hpp"
#include "support/atomic_file.hpp"
#include "support/build_info.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/require.hpp"
#include "support/thread_safety.hpp"

namespace slim::serve {

namespace fs = std::filesystem;
using support::jsonString;
using support::JsonValue;

const char* jobStateName(JobState state) noexcept {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

namespace {

constexpr const char* kJournalSchema = "slimcodemld-journal-v1";

bool terminal(JobState s) noexcept {
  return s == JobState::Done || s == JobState::Failed ||
         s == JobState::Cancelled;
}

/// "dir/gene-007.fasta" -> "gene-007" (same rule as the CLI batch runner, so
/// per-gene labels in daemon reports match CLI reports byte for byte).
std::string fileStem(const std::string& path) {
  const auto slash = path.find_last_of("/\\");
  const auto base = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  return dot == std::string::npos || dot == 0 ? base : base.substr(0, dot);
}

std::string errorResponse(const std::string& message) {
  std::ostringstream os;
  os << "{\"schema\":\"" << kServeSchema << "\",\"ok\":false,\"error\":";
  jsonString(os, message);
  os << '}';
  return os.str();
}

void sendAll(int fd, std::string_view payload) {
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent, payload.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; nothing sensible left to do
    sent += static_cast<std::size_t>(n);
  }
}

void sendLine(int fd, const std::string& response) {
  sendAll(fd, response + "\n");
}

}  // namespace

struct AnalysisServer::Job {
  std::string id;
  std::uint64_t seq = 0;
  int priority = 0;
  double timeoutSec = 0;  ///< Protocol-level budget (folded with ctl's).
  bool checkpointed = false;
  std::string ctl;
  core::Config config;  ///< Parsed & validated at submit.
  JobState state = JobState::Queued;
  std::atomic<bool> cancelRequested{false};
  bool hasDeadline = false;
  std::chrono::steady_clock::time_point deadline{};
  std::string result;  ///< Rendered JSON report (state Done).
  std::string error;   ///< Detail for Failed / Cancelled.
};

struct AnalysisServer::Impl {
  explicit Impl(ServerOptions opts);
  ~Impl();

  // --- lifecycle ---
  void start();
  void drainAndStop();
  void abortStop();
  void stopThreads();

  // --- socket side ---
  void setUpSocket();
  void closeSocket(bool unlinkFile);
  void acceptLoop();
  void connectionLoop(int fd);
  std::string handleLine(const std::string& line);
  std::string handleSubmit(const Request& req);
  std::string handleStatus(const Request& req);
  std::string handleResult(const Request& req);
  std::string handleCancel(const Request& req);

  // --- queue side ---
  void workerLoop();
  std::shared_ptr<Job> nextQueuedLocked() SLIM_REQUIRES(mutex);
  struct RunOutcome {
    std::string report;
    std::string error;
    bool cancelled = false;
  };
  RunOutcome runJob(Job& job);

  // --- persistence ---
  std::string journalPath() const { return options.stateDir + "/jobs.journal"; }
  std::string resultPath(const std::string& id) const {
    return options.stateDir + "/" + id + ".result.json";
  }
  std::string checkpointPath(const std::string& id) const {
    return options.stateDir + "/" + id + ".ckpt";
  }
  void persistJournalLocked() SLIM_REQUIRES(mutex);
  void recoverJournal() SLIM_REQUIRES(mutex);

  /// Submit-time validation shared by live submissions and recovery.
  /// Returns an error message, or empty when the ctl is acceptable.
  std::string validateJobConfig(const core::Config& config) const;

  ServerOptions options;
  int listenFd = -1;
  int wakePipe[2] = {-1, -1};

  std::atomic<bool> stopping{false};       ///< Cancels fits, stops workers.
  std::atomic<bool> draining{false};       ///< Stops admission.
  std::atomic<bool> stopRequested{false};  ///< Owner should call drainAndStop.
  // started/stopped are touched only by the owning thread (construction,
  // start(), the stop entry points, destruction) — never by workers or
  // connection threads, so they need no mutex.
  bool started = false;
  bool stopped = false;

  mutable support::Mutex mutex;  ///< Guards jobs, nextSeq, journal writes.
  support::CondVar cv;
  // Job objects themselves (state/error/result/deadline fields) are also
  // only mutated under `mutex`, but live in a separate struct the analysis
  // cannot tie to it; that discipline is by convention plus the TSan job.
  std::map<std::string, std::shared_ptr<Job>> jobs SLIM_GUARDED_BY(mutex);
  std::uint64_t nextSeq SLIM_GUARDED_BY(mutex) = 1;
  bool suppressPersist SLIM_GUARDED_BY(mutex) = false;  ///< abortStop: SIGKILL.

  ContextCache cache;

  std::vector<std::thread> workers;
  std::thread acceptThread;
  support::Mutex connMutex;
  std::vector<int> connFds SLIM_GUARDED_BY(connMutex);
  std::vector<std::thread> connThreads SLIM_GUARDED_BY(connMutex);
};

AnalysisServer::Impl::Impl(ServerOptions opts)
    : options(std::move(opts)), cache(options.contextCacheEntries) {
  SLIM_REQUIRE(!options.socketPath.empty(), "serve: socketPath is required");
  SLIM_REQUIRE(options.workers > 0, "serve: workers must be > 0");
  if (!options.stateDir.empty()) {
    fs::create_directories(options.stateDir);
    // No other thread exists yet; the lock exists so recoverJournal's
    // SLIM_REQUIRES(mutex) contract holds on this call path too.
    support::MutexLock lock(mutex);
    recoverJournal();
  }
  setUpSocket();
}

AnalysisServer::Impl::~Impl() {
  if (started && !stopped) drainAndStop();
  // After drainAndStop/abortStop the fds are already closed; only unlink
  // when this Impl still owns the bound socket (start() never called), so a
  // daemon that re-bound the path after our abortStop keeps its socket.
  closeSocket(/*unlinkFile=*/listenFd >= 0);
}

void AnalysisServer::Impl::setUpSocket() {
  // Socket failures are environment, not caller bugs: std::runtime_error,
  // per the ServerOptions contract.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.socketPath.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("serve: socket path too long for AF_UNIX ('" +
                             options.socketPath + "')");
  std::memcpy(addr.sun_path, options.socketPath.c_str(),
              options.socketPath.size() + 1);

  if (fs::exists(options.socketPath)) {
    // Either a stale file from a killed daemon (unlink it) or a live one
    // (refuse: two daemons on one socket would steal each other's clients).
    const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (probe < 0) throw std::runtime_error("serve: cannot create probe socket");
    const bool alive = ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                                 sizeof(addr)) == 0;
    ::close(probe);
    if (alive)
      throw std::runtime_error("serve: another daemon is listening on '" +
                               options.socketPath + "'");
    ::unlink(options.socketPath.c_str());
  }

  listenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd < 0) throw std::runtime_error("serve: cannot create socket");
  if (::bind(listenFd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw std::runtime_error("serve: cannot bind '" + options.socketPath +
                             "': " + std::strerror(errno));
  if (::listen(listenFd, 64) != 0)
    throw std::runtime_error("serve: listen failed: " +
                             std::string(std::strerror(errno)));
  if (::pipe(wakePipe) != 0)
    throw std::runtime_error("serve: cannot create wake pipe");
}

void AnalysisServer::Impl::closeSocket(bool unlinkFile) {
  if (listenFd >= 0) ::close(listenFd);
  listenFd = -1;
  if (wakePipe[0] >= 0) ::close(wakePipe[0]);
  if (wakePipe[1] >= 0) ::close(wakePipe[1]);
  wakePipe[0] = wakePipe[1] = -1;
  if (unlinkFile && !options.socketPath.empty())
    ::unlink(options.socketPath.c_str());
}

void AnalysisServer::Impl::start() {
  SLIM_REQUIRE(!started, "serve: start() called twice");
  started = true;
  for (int w = 0; w < options.workers; ++w)
    workers.emplace_back([this] { workerLoop(); });
  acceptThread = std::thread([this] { acceptLoop(); });
}

void AnalysisServer::Impl::stopThreads() {
  stopping.store(true);
  draining.store(true);
  cv.notifyAll();
  // Wake the accept loop and kick every open connection so blocked reads
  // (including `result wait`ers, woken via cv above) unwind promptly.
  if (wakePipe[1] >= 0) {
    const char x = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wakePipe[1], &x, 1);
  }
  {
    support::MutexLock lock(connMutex);
    for (const int fd : connFds)
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& w : workers) w.join();
  workers.clear();
  if (acceptThread.joinable()) acceptThread.join();
  // Connection threads exit once their fd is shut down.
  std::vector<std::thread> conns;
  {
    support::MutexLock lock(connMutex);
    conns.swap(connThreads);
  }
  for (auto& t : conns) t.join();
}

void AnalysisServer::Impl::drainAndStop() {
  if (stopped || !started) return;
  stopThreads();
  // A graceful exit releases the address immediately — a successor daemon
  // must be able to bind without waiting for this object's destructor.
  closeSocket(/*unlinkFile=*/true);
  {
    support::MutexLock lock(mutex);
    if (!options.stateDir.empty()) persistJournalLocked();
  }
  stopped = true;
}

void AnalysisServer::Impl::abortStop() {
  if (stopped || !started) return;
  {
    // A real SIGKILL persists nothing past the last journal/checkpoint
    // write; suppress every further persist before interrupting the fits.
    support::MutexLock lock(mutex);
    suppressPersist = true;
  }
  stopThreads();
  // SIGKILL semantics: the kernel closes the fds but never unlinks the
  // socket file — a restarted daemon must recognize it as stale.
  closeSocket(/*unlinkFile=*/false);
  stopped = true;
}

// ---------------------------------------------------------------- sockets --

void AnalysisServer::Impl::acceptLoop() {
  for (;;) {
    pollfd pfds[2] = {{listenFd, POLLIN, 0}, {wakePipe[0], POLLIN, 0}};
    if (::poll(pfds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (pfds[1].revents != 0 || stopping.load()) return;
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) continue;
    support::MutexLock lock(connMutex);
    if (stopping.load()) {
      ::close(fd);
      return;
    }
    connFds.push_back(fd);
    connThreads.emplace_back([this, fd] { connectionLoop(fd); });
  }
}

void AnalysisServer::Impl::connectionLoop(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const auto nl = buffer.find('\n');
    if (nl != std::string::npos) {
      if (nl > options.maxRequestBytes) {
        // An over-long line can arrive fully terminated inside one recv
        // chunk; the no-newline accumulation check below never sees it.
        sendLine(fd, errorResponse(
                         "request exceeds " +
                         std::to_string(options.maxRequestBytes) + " bytes"));
        break;
      }
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) {
        sendLine(fd, errorResponse("empty request"));
        continue;
      }
      sendLine(fd, handleLine(line));
      continue;
    }
    if (buffer.size() > options.maxRequestBytes) {
      // Admission control: never buffer (or parse) an unbounded request.
      sendLine(fd, errorResponse(
                       "request exceeds " +
                       std::to_string(options.maxRequestBytes) + " bytes"));
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  support::MutexLock lock(connMutex);
  if (const auto it = std::find(connFds.begin(), connFds.end(), fd);
      it != connFds.end())
    *it = -1;
}

std::string AnalysisServer::Impl::handleLine(const std::string& line) {
  Request req;
  try {
    req = parseRequest(line);
  } catch (const std::exception& e) {
    return errorResponse(e.what());
  }
  switch (req.op) {
    case Op::Ping:
      return std::string("{\"schema\":\"") + std::string(kServeSchema) +
             "\",\"ok\":true,\"op\":\"ping\"}";
    case Op::Status: return handleStatus(req);
    case Op::Submit: return handleSubmit(req);
    case Op::Result: return handleResult(req);
    case Op::Cancel: return handleCancel(req);
    case Op::Drain: {
      draining.store(true);
      stopRequested.store(true);
      cv.notifyAll();
      return std::string("{\"schema\":\"") + std::string(kServeSchema) +
             "\",\"ok\":true,\"op\":\"drain\"}";
    }
  }
  return errorResponse("unhandled op");
}

std::string AnalysisServer::Impl::validateJobConfig(
    const core::Config& config) const {
  if (config.analysis == core::AnalysisKind::Site)
    return "daemon jobs support 'model = branch-site', 'branch' and "
           "'clade-c'; 'model = site' runs through the CLI only";
  if (!config.checkpointPath.empty() || config.resume)
    return "ctl must not set 'checkpoint' — request it with the protocol's "
           "\"checkpoint\" flag (the daemon owns checkpoint paths)";
  if (!config.outfile.empty() && config.outfile != "-")
    return "daemon jobs return the report over the wire; remove 'outfile'";
  return {};
}

std::string AnalysisServer::Impl::handleSubmit(const Request& req) {
  core::Config config;
  try {
    config = core::Config::parseString(req.ctl);
  } catch (const std::exception& e) {
    return errorResponse(std::string("ctl: ") + e.what());
  }
  if (std::string problem = validateJobConfig(config); !problem.empty())
    return errorResponse(problem);
  if (req.checkpoint && options.stateDir.empty())
    return errorResponse(
        "daemon was started without --state; checkpointed jobs are "
        "unavailable");

  support::MutexLock lock(mutex);
  if (draining.load())
    return errorResponse("server is draining; not accepting jobs");
  std::size_t queued = 0;
  for (const auto& [id, job] : jobs)
    if (job->state == JobState::Queued) ++queued;
  if (queued >= options.maxQueued)
    return errorResponse("queue full (" + std::to_string(queued) +
                         " jobs queued; maxQueued = " +
                         std::to_string(options.maxQueued) + ")");

  auto job = std::make_shared<Job>();
  job->seq = nextSeq++;
  job->id = "job-" + std::to_string(job->seq);
  job->priority = req.priority;
  job->timeoutSec = req.timeoutSec;
  job->checkpointed = req.checkpoint;
  job->ctl = req.ctl;
  job->config = std::move(config);
  jobs.emplace(job->id, job);
  if (!options.stateDir.empty() && !suppressPersist) persistJournalLocked();
  lock.unlock();
  cv.notifyAll();

  std::ostringstream os;
  os << "{\"schema\":\"" << kServeSchema
     << "\",\"ok\":true,\"op\":\"submit\",\"id\":";
  jsonString(os, job->id);
  os << ",\"state\":\"queued\"}";
  return os.str();
}

std::string AnalysisServer::Impl::handleStatus(const Request& req) {
  support::MutexLock lock(mutex);
  if (!req.id.empty()) {
    const auto it = jobs.find(req.id);
    if (it == jobs.end())
      return errorResponse("unknown job id \"" + req.id + "\"");
    const Job& job = *it->second;
    std::ostringstream os;
    os << "{\"schema\":\"" << kServeSchema
       << "\",\"ok\":true,\"op\":\"status\",\"job\":{\"id\":";
    jsonString(os, job.id);
    os << ",\"state\":\"" << jobStateName(job.state)
       << "\",\"priority\":" << job.priority;
    if (!job.error.empty()) {
      os << ",\"error\":";
      jsonString(os, job.error);
    }
    os << "}}";
    return os.str();
  }

  std::size_t byState[5] = {};
  for (const auto& [id, job] : jobs)
    ++byState[static_cast<int>(job->state)];
  lock.unlock();
  const ContextCacheStats cacheStats = cache.stats();

  std::ostringstream os;
  os << "{\"schema\":\"" << kServeSchema
     << "\",\"ok\":true,\"op\":\"status\",\"server\":{\"version\":"
     << support::buildInfoJson() << ",\"draining\":"
     << (draining.load() ? "true" : "false")
     << ",\"workers\":" << options.workers
     << ",\"maxQueued\":" << options.maxQueued << ",\"jobs\":{\"queued\":"
     << byState[static_cast<int>(JobState::Queued)] << ",\"running\":"
     << byState[static_cast<int>(JobState::Running)] << ",\"done\":"
     << byState[static_cast<int>(JobState::Done)] << ",\"failed\":"
     << byState[static_cast<int>(JobState::Failed)] << ",\"cancelled\":"
     << byState[static_cast<int>(JobState::Cancelled)]
     << "},\"contextCache\":{\"entries\":" << cacheStats.entries
     << ",\"hits\":" << cacheStats.hits << ",\"misses\":" << cacheStats.misses
     << ",\"busy\":" << cacheStats.busy << "}}}";
  return os.str();
}

std::string AnalysisServer::Impl::handleResult(const Request& req) {
  support::MutexLock lock(mutex);
  const auto it = jobs.find(req.id);
  if (it == jobs.end())
    return errorResponse("unknown job id \"" + req.id + "\"");
  const std::shared_ptr<Job> job = it->second;
  if (req.wait)
    cv.wait(lock, [&] { return terminal(job->state) || stopping.load(); });
  if (!terminal(job->state))
    return errorResponse(stopping.load()
                             ? "server stopping before job " + job->id +
                                   " finished"
                             : "job " + job->id + " is not finished (state " +
                                   jobStateName(job->state) + ")");
  std::ostringstream os;
  if (job->state == JobState::Done) {
    os << "{\"schema\":\"" << kServeSchema
       << "\",\"ok\":true,\"op\":\"result\",\"id\":";
    jsonString(os, job->id);
    // The report is spliced in verbatim — byte-identical to what
    // `slimcodeml --json` writes for the same ctl.
    os << ",\"state\":\"done\",\"report\":" << job->result << "}";
  } else {
    os << "{\"schema\":\"" << kServeSchema
       << "\",\"ok\":false,\"op\":\"result\",\"id\":";
    jsonString(os, job->id);
    os << ",\"state\":\"" << jobStateName(job->state) << "\",\"error\":";
    jsonString(os, job->error.empty() ? "job did not finish" : job->error);
    os << "}";
  }
  return os.str();
}

std::string AnalysisServer::Impl::handleCancel(const Request& req) {
  support::MutexLock lock(mutex);
  const auto it = jobs.find(req.id);
  if (it == jobs.end())
    return errorResponse("unknown job id \"" + req.id + "\"");
  Job& job = *it->second;
  if (job.state == JobState::Queued) {
    job.state = JobState::Cancelled;
    job.error = "cancelled by client";
    if (!options.stateDir.empty() && !suppressPersist) persistJournalLocked();
  } else if (job.state == JobState::Running) {
    // Cooperative: the running fit observes the flag at its next iteration
    // boundary and stops at the last accepted point.
    job.cancelRequested.store(true);
  }
  const JobState state = job.state;
  lock.unlock();
  cv.notifyAll();

  std::ostringstream os;
  os << "{\"schema\":\"" << kServeSchema
     << "\",\"ok\":true,\"op\":\"cancel\",\"id\":";
  jsonString(os, req.id);
  os << ",\"state\":\"" << jobStateName(state) << "\"}";
  return os.str();
}

// ------------------------------------------------------------------ queue --

std::shared_ptr<AnalysisServer::Job> AnalysisServer::Impl::nextQueuedLocked() {
  std::shared_ptr<Job> best;
  for (const auto& [id, job] : jobs) {
    if (job->state != JobState::Queued) continue;
    if (!best || job->priority > best->priority ||
        (job->priority == best->priority && job->seq < best->seq))
      best = job;
  }
  return best;
}

void AnalysisServer::Impl::workerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      support::MutexLock lock(mutex);
      cv.wait(lock, [&]() SLIM_REQUIRES(mutex) {
        return stopping.load() || nextQueuedLocked() != nullptr;
      });
      if (stopping.load()) return;
      job = nextQueuedLocked();
      job->state = JobState::Running;
      // Arm the wall-clock deadline now (queue wait does not count): the
      // tighter of the protocol budget and the ctl's timeoutSec.
      double limit = job->timeoutSec;
      if (job->config.timeoutSec > 0)
        limit = limit > 0 ? std::min(limit, job->config.timeoutSec)
                          : job->config.timeoutSec;
      if (limit > 0) {
        job->hasDeadline = true;
        job->deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(limit));
      }
      if (!options.stateDir.empty() && !suppressPersist) persistJournalLocked();
    }
    cv.notifyAll();

    const RunOutcome out = runJob(*job);

    {
      support::MutexLock lock(mutex);
      if (!out.error.empty()) {
        job->state = JobState::Failed;
        job->error = out.error;
      } else if (out.cancelled) {
        if (job->cancelRequested.load()) {
          job->state = JobState::Cancelled;
          job->error = "cancelled by client";
        } else if (stopping.load()) {
          // Interrupted by drain/shutdown, not finished: requeue so the
          // journal records it as pending and a restarted daemon resumes it
          // (from its checkpoint when it has one).
          job->state = JobState::Queued;
        } else {
          job->state = JobState::Failed;
          job->error = "deadline exceeded";
        }
      } else {
        job->state = JobState::Done;
        job->result = out.report;
        if (!options.stateDir.empty() && !suppressPersist)
          support::writeFileAtomic(resultPath(job->id), out.report + "\n");
      }
      if (!options.stateDir.empty() && !suppressPersist) persistJournalLocked();
    }
    cv.notifyAll();
  }
}

AnalysisServer::Impl::RunOutcome AnalysisServer::Impl::runJob(Job& job) {
  RunOutcome out;
  try {
    core::Config config = core::resolveTuningProfile(job.config);
    // All cancellation sources compose onto the one predicate the optimizer
    // polls at iteration boundaries.  The ctl's own timeoutSec is already
    // folded into job.deadline — runFromConfig's deadline plumbing is not in
    // this code path, so nothing is applied twice.
    Job* const jobPtr = &job;
    config.fit.bfgs.cancel = [this, jobPtr] {
      if (stopping.load(std::memory_order_relaxed)) return true;
      if (jobPtr->cancelRequested.load(std::memory_order_relaxed)) return true;
      return jobPtr->hasDeadline &&
             std::chrono::steady_clock::now() >= jobPtr->deadline;
    };

    // Resolve the model spec the job's `model =` / `foreground =` selection
    // requests.  Scan sets are always marked as branch class 1, so scan
    // specs are two-class; plain non-branch-site jobs size theirs to the
    // tree's own #k marks.
    if (!config.foreground.empty())
      config.fit.modelSpec = core::modelSpecFor(config.analysis, 2);
    else if (config.analysis != core::AnalysisKind::BranchSite)
      config.fit.modelSpec = core::modelSpecFor(
          config.analysis,
          tree::numBranchClasses(core::loadTreeFile(config.treefile)));

    std::unique_ptr<core::CheckpointManager> ckpt;
    if (job.checkpointed) {
      // resume=true always: a fresh file falls back to a fresh run, an
      // existing one (daemon restart) continues bit-identically.
      config.checkpointPath = checkpointPath(job.id);
      ckpt = core::CheckpointManager::open(
          config.checkpointPath, config.checkpointEverySec,
          core::checkpointConfigHash(config), /*resume=*/true);
    }

    core::BatchOptions batchOptions;
    batchOptions.fit = config.fit;
    batchOptions.checkpoint = ckpt.get();

    std::vector<core::PositiveSelectionTest> tests;
    std::vector<std::string> names;
    lik::EvalCounters totals;
    core::BatchRunInfo info;
    if (!config.foreground.empty()) {
      // Scan job: every branch set fits on its own foreground-marked copy
      // of the tree, so the warm context cache (keyed by seqfile + the
      // shared tree file) cannot serve it — build fresh per-set contexts.
      const auto tree = core::loadTreeFile(config.treefile);
      core::ScanAnalysis scan(config.engine, tree, config.foreground,
                              batchOptions);
      for (const auto& path : config.seqfiles)
        scan.addGene(
            core::loadAlignmentFile(path, config.stopCodonsAsMissing),
            config.fit, fileStem(path));
      names = scan.taskNames();
      tests = scan.runAll();
      totals = scan.totals();
      info = scan.lastRun();
    } else {
      core::BatchAnalysis batch(config.engine, batchOptions);
      std::vector<ContextCache::Lease> leases;
      leases.reserve(config.seqfiles.size());
      for (const auto& path : config.seqfiles) {
        leases.push_back(cache.acquire(path, config, config.fit));
        names.push_back(fileStem(path));
        batch.addGene(leases.back().context(), names.back());
      }
      tests = batch.runAll();
      totals = batch.totals();
      info = batch.lastRun();
    }
    for (const auto& test : tests)
      out.cancelled |= test.h0.cancelled || test.h1.cancelled;
    if (out.cancelled) return out;

    std::ostringstream os;
    if (tests.size() == 1 && config.seqfiles.size() == 1 &&
        config.foreground.empty())
      core::writeJsonTestReport(os, tests.front(), config.engine);
    else
      core::writeJsonBatchReport(os, tests, names, config.engine, totals,
                                 info);
    out.report = os.str();
    while (!out.report.empty() && out.report.back() == '\n')
      out.report.pop_back();

    if (ckpt != nullptr) {
      // The job is complete; its checkpoint has served its purpose.  Drop it
      // so the state directory only holds live state (and the restart path
      // serves the recorded result instead of re-running).
      ckpt.reset();
      std::error_code ec;
      fs::remove(checkpointPath(job.id), ec);
    }
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

// ------------------------------------------------------------ persistence --

void AnalysisServer::Impl::persistJournalLocked() {
  std::ostringstream os;
  os << "{\"schema\":\"" << kJournalSchema << "\",\"nextSeq\":" << nextSeq
     << "}\n";
  // Seq order keeps the journal deterministic for a given queue state.
  std::vector<std::shared_ptr<Job>> ordered;
  ordered.reserve(jobs.size());
  for (const auto& [id, job] : jobs) ordered.push_back(job);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a->seq < b->seq; });
  for (const auto& job : ordered) {
    os << "{\"id\":";
    jsonString(os, job->id);
    os << ",\"seq\":" << job->seq << ",\"state\":\""
       << jobStateName(job->state) << "\",\"priority\":" << job->priority
       << ",\"timeoutSec\":";
    support::jsonNumber(os, job->timeoutSec);
    os << ",\"checkpoint\":" << (job->checkpointed ? "true" : "false")
       << ",\"ctl\":";
    jsonString(os, job->ctl);
    if (!job->error.empty()) {
      os << ",\"error\":";
      jsonString(os, job->error);
    }
    os << "}\n";
  }
  support::writeFileAtomic(journalPath(), os.str());
}

void AnalysisServer::Impl::recoverJournal() {
  std::ifstream in(journalPath());
  if (!in.good()) return;  // fresh state directory

  const auto fail = [this](int lineNo, const std::string& what) {
    throw std::runtime_error(journalPath() + " line " +
                             std::to_string(lineNo) + ": " + what);
  };

  std::string line;
  int lineNo = 0;
  bool sawHeader = false;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    JsonValue doc;
    try {
      doc = support::parseJson(line);
    } catch (const std::exception& e) {
      fail(lineNo, e.what());
    }
    if (!sawHeader) {
      sawHeader = true;
      if (const JsonValue* schema = doc.find("schema");
          schema == nullptr || !schema->isString() ||
          schema->asString() != kJournalSchema)
        fail(lineNo, std::string("expected journal schema \"") +
                         kJournalSchema + "\"");
      const double seq = doc.at("nextSeq").asNumber();
      if (seq < 1 || std::floor(seq) != seq)
        fail(lineNo, "invalid nextSeq");
      nextSeq = static_cast<std::uint64_t>(seq);
      continue;
    }
    auto job = std::make_shared<Job>();
    try {
      job->id = doc.at("id").asString();
      job->seq = static_cast<std::uint64_t>(doc.at("seq").asNumber());
      job->priority = static_cast<int>(doc.at("priority").asNumber());
      job->timeoutSec = doc.at("timeoutSec").asNumber();
      job->checkpointed = doc.at("checkpoint").asBool();
      job->ctl = doc.at("ctl").asString();
      const std::string& state = doc.at("state").asString();
      if (state == "queued" || state == "running") {
        // Interrupted (or never started) when the daemon died: requeue.  A
        // checkpointed job resumes its recorded trajectory from <id>.ckpt.
        job->state = JobState::Queued;
      } else if (state == "done") {
        job->state = JobState::Done;
      } else if (state == "failed") {
        job->state = JobState::Failed;
      } else if (state == "cancelled") {
        job->state = JobState::Cancelled;
      } else {
        fail(lineNo, "unknown job state \"" + state + "\"");
      }
      if (const JsonValue* error = doc.find("error"))
        job->error = error->asString();
    } catch (const support::JsonError& e) {
      fail(lineNo, e.what());
    }

    if (job->state == JobState::Queued) {
      try {
        job->config = core::Config::parseString(job->ctl);
      } catch (const std::exception& e) {
        job->state = JobState::Failed;
        job->error = std::string("ctl no longer parses on recovery: ") +
                     e.what();
      }
      if (job->state == JobState::Queued) {
        if (std::string problem = validateJobConfig(job->config);
            !problem.empty()) {
          job->state = JobState::Failed;
          job->error = "ctl failed validation on recovery: " + problem;
        }
      }
    } else if (job->state == JobState::Done) {
      std::ifstream result(resultPath(job->id));
      if (result.good()) {
        std::ostringstream buffer;
        buffer << result.rdbuf();
        job->result = buffer.str();
        while (!job->result.empty() && job->result.back() == '\n')
          job->result.pop_back();
      } else {
        job->state = JobState::Failed;
        job->error = "recorded result file is missing (" +
                     resultPath(job->id) + ")";
      }
    }
    jobs[job->id] = job;
  }
  if (!sawHeader && lineNo > 0) fail(1, "journal has no header line");
}

// -------------------------------------------------------------- public API --

AnalysisServer::AnalysisServer(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

AnalysisServer::~AnalysisServer() = default;

void AnalysisServer::start() { impl_->start(); }

bool AnalysisServer::stopRequested() const noexcept {
  return impl_->stopRequested.load();
}

void AnalysisServer::requestStop() noexcept { impl_->stopRequested.store(true); }

void AnalysisServer::drainAndStop() { impl_->drainAndStop(); }

void AnalysisServer::abortStop() { impl_->abortStop(); }

const std::string& AnalysisServer::socketPath() const noexcept {
  return impl_->options.socketPath;
}

ContextCacheStats AnalysisServer::cacheStats() const {
  return impl_->cache.stats();
}

}  // namespace slim::serve
