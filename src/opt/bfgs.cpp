#include "opt/bfgs.hpp"

#include <cmath>
#include <limits>

#include "support/require.hpp"

namespace slim::opt {

namespace {

double infNorm(std::span<const double> v) noexcept {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

bool allFinite(std::span<const double> v) noexcept {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

BfgsResult minimizeBfgs(ObjectiveFunction& f, std::span<const double> x0,
                        const BfgsOptions& options,
                        const BfgsCheckpointSink& sink,
                        const BfgsState* source) {
  const std::size_t n = x0.size();
  SLIM_REQUIRE(n > 0, "BFGS: empty parameter vector");

  BfgsResult res;
  std::vector<double> hInv(n * n, 0.0);
  std::vector<double> grad(n), gradNew(n), dir(n), xNew(n), s(n), y(n), hy(n);

  // Gradients always come from the objective, which reports how many extra
  // evaluations (FD probes) it spent; passing the known f(x) spares it the
  // value re-evaluation.
  const auto gradientAt = [&](std::span<const double> x, double fx,
                              std::span<double> g) {
    const GradientResult gr = f.valueAndGradient(
        x, g, {options.fdStep, options.centralDifferences, fx});
    res.gradientEvaluations += gr.functionEvaluations;
    res.gradientSweeps += gr.gradientSweeps;
    res.analyticCoordinates = gr.analyticCoordinates;
  };

  // Cancellation is polled only at iteration boundaries — exactly the points
  // where checkpoint snapshots are taken — so a cancelled fit stops at a
  // state a resume can continue bit-identically.
  const auto cancelRequested = [&] {
    return options.cancel && options.cancel();
  };
  const auto stopCancelled = [&]() -> BfgsResult& {
    res.cancelled = true;
    res.message = "cancelled";
    return res;
  };

  int slowProgress = 0;
  int startIteration = 0;

  if (source != nullptr) {
    // Resume: restore the full driver state.  Hex-float serialization above
    // this layer round-trips every double exactly, so the continued run
    // repeats the uninterrupted trajectory bit for bit.
    SLIM_REQUIRE(source->x.size() == n && source->grad.size() == n &&
                     source->hInv.size() == n * n,
                 "BFGS: checkpoint state dimensions do not match the problem");
    // Every restored number must be finite — the text format legitimately
    // round-trips nan/inf, and a NaN gradient or Hessian entry would make
    // the first search direction NaN and end the fit at the checkpoint's
    // point while looking like a clean "stationary" stop.
    SLIM_REQUIRE(allFinite(source->x) && std::isfinite(source->value) &&
                     allFinite(source->grad) && allFinite(source->hInv),
                 "BFGS: checkpoint state is not finite");
    res.x = source->x;
    res.value = source->value;
    grad = source->grad;
    hInv = source->hInv;
    res.functionEvaluations = source->functionEvaluations;
    res.gradientEvaluations = source->gradientEvaluations;
    res.gradientSweeps = source->gradientSweeps;
    res.analyticCoordinates = source->analyticCoordinates;
    slowProgress = source->slowProgress;
    startIteration = source->iterations;
  } else {
    res.x.assign(x0.begin(), x0.end());
    res.value = f.value(res.x);
    ++res.functionEvaluations;
    // The *initial* point must be feasible — same contract as Nelder-Mead.
    // Everywhere past this line a non-finite value is survivable: NaN/inf
    // line-search trials are failed steps that backtrack, and a non-finite
    // gradient (an FD probe stepping off a bound into NaN territory) ends the
    // optimization cleanly at the last accepted point instead of corrupting
    // the Hessian or spuriously reporting convergence.
    SLIM_REQUIRE(std::isfinite(res.value),
                 "BFGS: objective not finite at the starting point");

    // Inverse Hessian approximation, initialized to the identity.
    for (std::size_t i = 0; i < n; ++i) hInv[i * n + i] = 1.0;

    // An already-cancelled fit (e.g. SIGTERM landed during an earlier gene)
    // pays one evaluation so the result still carries a meaningful value,
    // then stops before the comparatively expensive first gradient.
    if (cancelRequested()) return stopCancelled();

    gradientAt(res.x, res.value, grad);
    if (!allFinite(grad)) {
      res.message = "gradient not finite at the starting point";
      return res;
    }
  }

  const auto snapshot = [&](int completedIterations) {
    if (!sink) return;
    BfgsState st;
    st.x = res.x;
    st.value = res.value;
    st.grad = grad;
    st.hInv = hInv;
    st.iterations = completedIterations;
    st.functionEvaluations = res.functionEvaluations;
    st.gradientEvaluations = res.gradientEvaluations;
    st.gradientSweeps = res.gradientSweeps;
    st.analyticCoordinates = res.analyticCoordinates;
    st.slowProgress = slowProgress;
    sink(st);
  };
  if (source == nullptr) snapshot(0);

  for (res.iterations = startIteration; res.iterations < options.maxIterations;
       ++res.iterations) {
    if (cancelRequested()) return stopCancelled();
    if (infNorm(grad) < options.gradTolerance * (1.0 + std::fabs(res.value))) {
      res.converged = true;
      res.message = "gradient tolerance reached";
      return res;
    }

    // Search direction d = -H g.
    for (std::size_t i = 0; i < n; ++i) {
      double t = 0.0;
      for (std::size_t j = 0; j < n; ++j) t += hInv[i * n + j] * grad[j];
      dir[i] = -t;
    }
    // Guard: if H lost descent property, reset to steepest descent.
    double gTd = 0.0;
    for (std::size_t i = 0; i < n; ++i) gTd += grad[i] * dir[i];
    if (!(gTd < 0.0)) {
      for (std::size_t i = 0; i < n; ++i) dir[i] = -grad[i];
      gTd = 0.0;
      for (std::size_t i = 0; i < n; ++i) gTd += grad[i] * dir[i];
      for (std::size_t i = 0; i < n * n; ++i) hInv[i] = 0.0;
      for (std::size_t i = 0; i < n; ++i) hInv[i * n + i] = 1.0;
    }

    // Armijo backtracking.
    double step = 1.0;
    double fNew = std::numeric_limits<double>::infinity();
    bool accepted = false;
    for (int ls = 0; ls < options.maxLineSearchSteps; ++ls) {
      for (std::size_t i = 0; i < n; ++i) xNew[i] = res.x[i] + step * dir[i];
      fNew = f.value(xNew);
      ++res.functionEvaluations;
      if (std::isfinite(fNew) &&
          fNew <= res.value + options.armijoC1 * step * gTd) {
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) {
      res.message = "line search failed (stationary within precision)";
      res.converged = infNorm(grad) <
                      1e-3 * (1.0 + std::fabs(res.value));
      return res;
    }

    gradientAt(xNew, fNew, gradNew);
    if (!allFinite(gradNew)) {
      // Keep the accepted step — it genuinely improved the objective — but
      // stop here: a NaN gradient would poison the BFGS update and every
      // later iterate.
      res.x = xNew;
      res.value = fNew;
      ++res.iterations;
      res.message = "stopped: gradient not finite (objective NaN at a probe)";
      return res;
    }

    // BFGS inverse update with curvature safeguard.
    double sy = 0.0, ss = 0.0, yy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = xNew[i] - res.x[i];
      y[i] = gradNew[i] - grad[i];
      sy += s[i] * y[i];
      ss += s[i] * s[i];
      yy += y[i] * y[i];
    }
    if (sy > 1e-12 * std::sqrt(ss * yy)) {
      const double rho = 1.0 / sy;
      // H <- (I - rho s y^T) H (I - rho y s^T) + rho s s^T
      for (std::size_t i = 0; i < n; ++i) {
        double t = 0.0;
        for (std::size_t j = 0; j < n; ++j) t += hInv[i * n + j] * y[j];
        hy[i] = t;  // (H y)_i
      }
      double yHy = 0.0;
      for (std::size_t i = 0; i < n; ++i) yHy += y[i] * hy[i];
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          hInv[i * n + j] += rho * ((1.0 + rho * yHy) * s[i] * s[j] -
                                    hy[i] * s[j] - s[i] * hy[j]);
    }

    const double improvement = res.value - fNew;
    res.x = xNew;
    res.value = fNew;
    grad = gradNew;

    if (improvement < options.fTolerance * (1.0 + std::fabs(res.value))) {
      if (++slowProgress >= 2) {
        res.converged = true;
        res.message = "function tolerance reached";
        ++res.iterations;
        return res;
      }
    } else {
      slowProgress = 0;
    }

    snapshot(res.iterations + 1);
  }
  res.message = "maximum iterations reached";
  return res;
}

BfgsResult minimizeBfgs(const Objective& f, std::span<const double> x0,
                        const BfgsOptions& options) {
  CallableObjective obj(f);
  return minimizeBfgs(obj, x0, options);
}

}  // namespace slim::opt
