#include "opt/objective.hpp"

#include <cmath>

#include "support/require.hpp"

namespace slim::opt {

std::vector<double> ObjectiveFunction::evaluateMany(
    const std::vector<std::vector<double>>& points) {
  std::vector<double> values(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) values[i] = value(points[i]);
  return values;
}

GradientResult ObjectiveFunction::valueAndGradient(
    std::span<const double> x, std::span<double> grad,
    const GradientOptions& options) {
  GradientResult result;
  if (std::isnan(options.knownValue)) {
    result.value = value(x);
    ++result.functionEvaluations;
  } else {
    result.value = options.knownValue;
  }
  fdGradient(*this, x, result.value, options.relStep, options.central, grad,
             result.functionEvaluations);
  return result;
}

void fdGradient(ObjectiveFunction& f, std::span<const double> x, double f0,
                double relStep, bool central, std::span<double> grad,
                long& evals) {
  const std::size_t n = grad.size();
  SLIM_REQUIRE(n <= x.size(), "gradient size mismatch");

  // Probe points in coordinate order: x + h_i e_i (and x - h_i e_i when
  // central), batched into one evaluateMany so a parallel objective can fan
  // them across workers.  The assembly below consumes the returned values in
  // the same fixed order, so serial and fanned execution agree bit for bit.
  std::vector<double> h(n);
  std::vector<std::vector<double>> points;
  points.reserve(central ? 2 * n : n);
  const std::vector<double> base(x.begin(), x.end());
  for (std::size_t i = 0; i < n; ++i) {
    h[i] = relStep * std::max(std::fabs(x[i]), 1.0);
    points.push_back(base);
    points.back()[i] = x[i] + h[i];
    if (central) {
      points.push_back(base);
      points.back()[i] = x[i] - h[i];
    }
  }
  const std::vector<double> values = f.evaluateMany(points);
  evals += static_cast<long>(points.size());
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = central ? (values[2 * i] - values[2 * i + 1]) / (2.0 * h[i])
                      : (values[i] - f0) / h[i];
  }
}

void fdGradient(const Objective& f, std::span<const double> x, double f0,
                double relStep, bool central, std::span<double> grad,
                long& evals) {
  CallableObjective obj(f);
  fdGradient(obj, x, f0, relStep, central, grad, evals);
}

}  // namespace slim::opt
