#include "opt/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/require.hpp"

namespace slim::opt {

namespace {

// Standard coefficients: reflection, expansion, contraction, shrink.
constexpr double kAlpha = 1.0;
constexpr double kGamma = 2.0;
constexpr double kRho = 0.5;
constexpr double kSigma = 0.5;

double sanitize(double v) noexcept {
  return std::isfinite(v) ? v : std::numeric_limits<double>::infinity();
}

}  // namespace

NelderMeadResult minimizeNelderMead(ObjectiveFunction& f,
                                    std::span<const double> x0,
                                    const NelderMeadOptions& options,
                                    const NelderMeadCheckpointSink& sink,
                                    const NelderMeadState* source) {
  const std::size_t n = x0.size();
  SLIM_REQUIRE(n > 0, "Nelder-Mead: empty parameter vector");
  SLIM_REQUIRE(options.initialStep > 0, "Nelder-Mead: initialStep must be > 0");

  NelderMeadResult res;
  std::vector<std::vector<double>> vertex;
  std::vector<double> fv;
  int startIteration = 0;

  if (source != nullptr) {
    // Resume: the simplex and values are the whole driver state.
    SLIM_REQUIRE(source->vertex.size() == n + 1 && source->fv.size() == n + 1,
                 "Nelder-Mead: checkpoint simplex size does not match the "
                 "problem");
    for (const auto& v : source->vertex) {
      SLIM_REQUIRE(v.size() == n,
                   "Nelder-Mead: checkpoint vertex dimension mismatch");
      for (const double x : v)
        SLIM_REQUIRE(std::isfinite(x),
                     "Nelder-Mead: checkpoint vertex is not finite");
    }
    // Vertex *values* may legitimately be +inf (infeasible points), but a
    // NaN would poison every ordering comparison.
    for (const double v : source->fv)
      SLIM_REQUIRE(!std::isnan(v), "Nelder-Mead: checkpoint value is NaN");
    vertex = source->vertex;
    fv = source->fv;
    res.functionEvaluations = source->functionEvaluations;
    startIteration = source->iterations;
  } else {
    // Simplex of n+1 vertices: x0 and x0 + step*e_i, evaluated as one batch.
    vertex.assign(n + 1, std::vector<double>(x0.begin(), x0.end()));
    for (std::size_t i = 1; i <= n; ++i) vertex[i][i - 1] += options.initialStep;
    fv = f.evaluateMany(vertex);
    res.functionEvaluations += static_cast<long>(fv.size());
    for (auto& v : fv) v = sanitize(v);
    SLIM_REQUIRE(std::isfinite(fv[0]),
                 "Nelder-Mead: objective not finite at the starting point");
  }

  std::vector<std::size_t> order(n + 1);
  std::vector<double> centroid(n);
  std::vector<std::vector<double>> pair(2, std::vector<double>(n));
  std::vector<double> xc(n);

  const auto snapshot = [&](int completedIterations) {
    if (!sink) return;
    NelderMeadState st;
    st.vertex = vertex;
    st.fv = fv;
    st.iterations = completedIterations;
    st.functionEvaluations = res.functionEvaluations;
    sink(st);
  };
  if (source == nullptr) snapshot(0);

  // One reflect/expand/contract/shrink step; returns true when the
  // convergence test at the top of the step fires.
  const auto step = [&]() -> bool {
    // Order vertices by value.
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fv[a] < fv[b]; });
    const std::size_t best = order[0], worst = order[n], second = order[n - 1];

    // Convergence: value spread and simplex diameter both small.
    double diameter = 0;
    for (std::size_t i = 0; i < n; ++i)
      diameter = std::max(diameter,
                          std::fabs(vertex[worst][i] - vertex[best][i]));
    const double spread =
        std::isfinite(fv[worst]) ? fv[worst] - fv[best]
                                 : std::numeric_limits<double>::infinity();
    if (spread < options.fTolerance * (1.0 + std::fabs(fv[best])) &&
        diameter < options.xTolerance) {
      res.converged = true;
      return true;
    }

    // Centroid of all but the worst vertex.
    for (std::size_t i = 0; i < n; ++i) centroid[i] = 0;
    for (std::size_t k = 0; k <= n; ++k) {
      if (k == worst) continue;
      for (std::size_t i = 0; i < n; ++i) centroid[i] += vertex[k][i];
    }
    for (std::size_t i = 0; i < n; ++i) centroid[i] /= static_cast<double>(n);

    // Reflection, with the expansion point evaluated speculatively in the
    // same batch when the objective fans points across workers (a free
    // second probe there; a wasted evaluation on a sequential objective, so
    // only then).  Either way the expansion value is only *consumed* when
    // the reflection beats the best vertex, exactly as in the sequential
    // algorithm — the trajectory is identical.
    std::vector<double>& xr = pair[0];
    std::vector<double>& xe = pair[1];
    for (std::size_t i = 0; i < n; ++i) {
      xr[i] = centroid[i] + kAlpha * (centroid[i] - vertex[worst][i]);
      xe[i] = centroid[i] + kGamma * (xr[i] - centroid[i]);
    }
    const bool speculate = f.batchEvaluationProfitable();
    double fr, fe;
    if (speculate) {
      const std::vector<double> pairValues = f.evaluateMany(pair);
      res.functionEvaluations += 2;
      fr = sanitize(pairValues[0]);
      fe = sanitize(pairValues[1]);
    } else {
      fr = sanitize(f.value(xr));
      ++res.functionEvaluations;
      fe = 0;  // evaluated below only if the reflection wins
    }

    if (fr < fv[best]) {
      if (!speculate) {
        fe = sanitize(f.value(xe));
        ++res.functionEvaluations;
      }
      if (fe < fr) {
        vertex[worst] = xe;
        fv[worst] = fe;
      } else {
        vertex[worst] = xr;
        fv[worst] = fr;
      }
      return false;
    }
    if (fr < fv[second]) {
      vertex[worst] = xr;
      fv[worst] = fr;
      return false;
    }

    // Contraction (outside if the reflected point improved on the worst,
    // inside otherwise).
    const bool outside = fr < fv[worst];
    const auto& towards = outside ? xr : vertex[worst];
    for (std::size_t i = 0; i < n; ++i)
      xc[i] = centroid[i] + kRho * (towards[i] - centroid[i]);
    const double fc = sanitize(f.value(xc));
    ++res.functionEvaluations;
    if (fc < (outside ? fr : fv[worst])) {
      vertex[worst] = xc;
      fv[worst] = fc;
      return false;
    }

    // Shrink towards the best vertex (n moved vertices, one batch).
    std::vector<std::vector<double>> shrunk;
    std::vector<std::size_t> shrunkIdx;
    shrunk.reserve(n);
    shrunkIdx.reserve(n);
    for (std::size_t k = 0; k <= n; ++k) {
      if (k == best) continue;
      for (std::size_t i = 0; i < n; ++i)
        vertex[k][i] = vertex[best][i] + kSigma * (vertex[k][i] - vertex[best][i]);
      shrunk.push_back(vertex[k]);
      shrunkIdx.push_back(k);
    }
    const std::vector<double> shrunkValues = f.evaluateMany(shrunk);
    res.functionEvaluations += static_cast<long>(shrunk.size());
    for (std::size_t j = 0; j < shrunkIdx.size(); ++j)
      fv[shrunkIdx[j]] = sanitize(shrunkValues[j]);
    return false;
  };

  for (res.iterations = startIteration; res.iterations < options.maxIterations;
       ++res.iterations) {
    // Same boundary the snapshot uses, so a cancelled fit stops at a state a
    // resume can continue bit-identically.
    if (options.cancel && options.cancel()) {
      res.cancelled = true;
      res.message = "cancelled";
      break;
    }
    if (step()) break;
    snapshot(res.iterations + 1);
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i)
    if (fv[i] < fv[best]) best = i;
  res.x = vertex[best];
  res.value = fv[best];
  return res;
}

NelderMeadResult minimizeNelderMead(const Objective& f,
                                    std::span<const double> x0,
                                    const NelderMeadOptions& options) {
  CallableObjective obj(f);
  return minimizeNelderMead(obj, x0, options);
}

}  // namespace slim::opt
