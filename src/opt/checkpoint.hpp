#pragma once
// Optimizer trajectory snapshots — the opt-layer half of checkpoint/restart.
//
// A genome-scan fit can run for hours; on preemptible infrastructure
// (gcodeml's operating regime, PAPERS.md) a killed process must not lose
// every converged iteration.  The drivers in bfgs.cpp / nelder_mead.cpp
// therefore accept an optional CheckpointSink — called after the initial
// gradient (or simplex) and after every completed iteration with a state
// from which the *same trajectory* can continue — and an optional source
// state to resume from.  Because each snapshot captures the full internal
// state (iterate, gradient, inverse Hessian / simplex, counters) and the
// objectives are deterministic in their input bits, a resumed run replays
// the remaining iterations bit-identically to the uninterrupted one.
//
// Serialization (exact-bit hex-float text, versioning, config hashes,
// atomic file I/O) lives above this layer in core/checkpoint.hpp; here the
// states are plain in-memory structs so the optimizers stay free of any
// file-format dependency.

#include <functional>
#include <optional>
#include <vector>

namespace slim::opt {

/// Everything minimizeBfgs needs to continue a run as if never interrupted.
struct BfgsState {
  std::vector<double> x;     ///< Last accepted iterate.
  double value = 0;          ///< f(x).
  std::vector<double> grad;  ///< Gradient at x.
  std::vector<double> hInv;  ///< n*n row-major inverse-Hessian approximation.
  int iterations = 0;        ///< Completed outer iterations.
  long functionEvaluations = 0;
  long gradientEvaluations = 0;
  long gradientSweeps = 0;
  int analyticCoordinates = 0;
  int slowProgress = 0;  ///< Consecutive below-f-tolerance improvements.
};

/// Everything minimizeNelderMead needs to continue a run.
struct NelderMeadState {
  std::vector<std::vector<double>> vertex;  ///< n+1 simplex vertices.
  std::vector<double> fv;                   ///< f at each vertex.
  int iterations = 0;                       ///< Completed iterations.
  long functionEvaluations = 0;
};

/// Called by the drivers with a resumable snapshot.  Implementations decide
/// persistence and throttling (core::CheckpointManager serializes and
/// atomically writes, at most once per checkpointEverySec); an exception
/// thrown from a sink aborts the optimization and propagates to the caller.
using BfgsCheckpointSink = std::function<void(const BfgsState&)>;
using NelderMeadCheckpointSink = std::function<void(const NelderMeadState&)>;

}  // namespace slim::opt
