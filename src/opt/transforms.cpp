#include "opt/transforms.hpp"

#include <algorithm>
#include <cmath>

namespace slim::opt {

namespace {
// Clamp margin keeping internal coordinates in a numerically benign range:
// |u| <= ~34 for log/logistic transforms.
constexpr double kTiny = 1e-15;
// Upper clamp for the log transform's argument: log(kHuge) ~ 690 is still a
// benign internal coordinate, while exp() of anything near it stays finite.
constexpr double kHuge = 1e300;

// Clamp v into [lo, hi] treating NaN as lo.  std::clamp/std::max propagate
// NaN (every comparison is false), which is exactly the poison this guards
// against: a parameter sitting on — or knocked past — a box bound must map
// to a *finite* internal coordinate, or a resumed BFGS step inherits
// NaN/inf and every later iterate is garbage.
double clampFinite(double v, double lo, double hi) noexcept {
  if (!(v > lo)) return lo;  // also catches NaN
  if (!(v < hi)) return hi;
  return v;
}
}  // namespace

double Transform::toExternal(double u) const noexcept {
  switch (kind_) {
    case Kind::Identity: return u;
    case Kind::Log: return lo_ + std::exp(u);
    case Kind::Logistic: {
      const double s = 1.0 / (1.0 + std::exp(-u));
      return lo_ + (hi_ - lo_) * s;
    }
  }
  return u;
}

double Transform::toInternal(double x) const noexcept {
  switch (kind_) {
    case Kind::Identity: return x;
    case Kind::Log: return std::log(clampFinite(x - lo_, kTiny, kHuge));
    case Kind::Logistic: {
      const double w = (hi_ - lo_);
      const double s = clampFinite((x - lo_) / w, kTiny, 1.0 - kTiny);
      return std::log(s / (1.0 - s));
    }
  }
  return x;
}

double Transform::derivative(double u) const noexcept {
  switch (kind_) {
    case Kind::Identity: return 1.0;
    case Kind::Log: return std::exp(u);
    case Kind::Logistic: {
      const double s = 1.0 / (1.0 + std::exp(-u));
      return (hi_ - lo_) * s * (1.0 - s);
    }
  }
  return 1.0;
}

std::pair<double, double> simplex2ToExternal(double u, double v) noexcept {
  // Subtract the max exponent for overflow safety.
  const double m = std::max({0.0, u, v});
  const double eu = std::exp(u - m), ev = std::exp(v - m), e0 = std::exp(-m);
  const double denom = e0 + eu + ev;
  return {eu / denom, ev / denom};
}

std::pair<double, double> simplex2ToInternal(double p0, double p1) noexcept {
  p0 = clampFinite(p0, kTiny, 1.0 - kTiny);
  p1 = clampFinite(p1, kTiny, 1.0 - kTiny);
  const double rest = clampFinite(1.0 - p0 - p1, kTiny, 1.0);
  return {std::log(p0 / rest), std::log(p1 / rest)};
}

}  // namespace slim::opt
