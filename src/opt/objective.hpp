#pragma once
// The derivative-aware objective contract between the optimizers and the
// likelihood layer.
//
// PR 2 left the optimizer boundary a scalar callback: every gradient was
// numParams + 1 independent likelihood evaluations, and the evaluator had no
// way to tell the optimizer about derivatives it can compute analytically or
// to batch independent probe points.  ObjectiveFunction makes both
// first-class:
//
//   * value(x)                 — one objective evaluation (the old contract);
//   * evaluateMany(points)     — batched multi-point evaluation.  The default
//     is a sequential value() loop; implementations may fan the points across
//     workers (core::LikelihoodObjective runs one single-threaded evaluator
//     per worker), but must return exactly the values the sequential loop
//     would — bit for bit — so batching never changes an optimization
//     trajectory;
//   * valueAndGradient(x, g)   — the gradient, reporting through
//     GradientResult *which* coordinates carried analytic derivatives and how
//     many objective evaluations / analytic sweeps the computation consumed.
//     The default implementation is finite differences routed through
//     evaluateMany, so a batching objective parallelizes FD gradients with no
//     optimizer changes.
//
// minimizeBfgs / minimizeNelderMead consume this interface; legacy
// std::function objectives are adapted by CallableObjective (or the
// convenience overloads in bfgs.hpp / nelder_mead.hpp).

#include <functional>
#include <limits>
#include <span>
#include <vector>

namespace slim::opt {

/// Legacy scalar objective.  May return +infinity / NaN for infeasible
/// points; optimizers backtrack away from them.
using Objective = std::function<double(std::span<const double>)>;

/// How a gradient should be computed (carried from BfgsOptions; analytic
/// implementations use the FD settings for their non-analytic coordinates).
struct GradientOptions {
  /// Relative finite-difference step; the per-coordinate step is
  /// relStep * max(|x_i|, 1), so near-zero coordinates (branch lengths at
  /// the lower bound) still take a well-scaled step.
  double relStep = 1e-7;
  bool central = false;
  /// f(x) when the caller has already evaluated it (NaN otherwise); saves
  /// the re-evaluation that forward differences and analytic gradients would
  /// otherwise pay.
  double knownValue = std::numeric_limits<double>::quiet_NaN();
};

/// What a valueAndGradient call did.
struct GradientResult {
  double value = 0;  ///< f(x).
  /// Coordinates whose partial derivative was computed analytically (the
  /// remaining ones were finite-differenced).  0 for a pure-FD gradient.
  int analyticCoordinates = 0;
  /// Objective evaluations consumed (FD probes plus any re-evaluation).
  long functionEvaluations = 0;
  /// Analytic gradient sweeps performed (0 or 1).
  long gradientSweeps = 0;
};

class ObjectiveFunction {
 public:
  virtual ~ObjectiveFunction() = default;

  /// Evaluate f at x.  May return +infinity / NaN for infeasible points.
  virtual double value(std::span<const double> x) = 0;

  /// Evaluate f at every point; element i of the result is f(points[i]).
  /// Overrides may evaluate concurrently but must return values identical to
  /// the sequential value() loop.
  virtual std::vector<double> evaluateMany(
      const std::vector<std::vector<double>>& points);

  /// Whether evaluateMany actually runs points concurrently (so callers may
  /// add speculative points for free) rather than falling back to the
  /// sequential loop, where every speculative point costs a full evaluation.
  virtual bool batchEvaluationProfitable() const { return false; }

  /// Fill grad with the gradient of f at x and return what was done.  The
  /// default finite-differences every coordinate through evaluateMany.
  virtual GradientResult valueAndGradient(std::span<const double> x,
                                          std::span<double> grad,
                                          const GradientOptions& options);
};

/// Adapts a legacy std::function objective onto the interface (no analytic
/// derivatives, sequential evaluateMany).  Owns a copy of the callable, so
/// adapting a temporary (e.g. a lambda converted at the call site) is safe.
class CallableObjective final : public ObjectiveFunction {
 public:
  explicit CallableObjective(Objective f) : f_(std::move(f)) {}
  double value(std::span<const double> x) override { return f_(x); }

 private:
  Objective f_;
};

/// Finite-difference gradient of f at x where f0 = f(x), with all probe
/// points routed through one evaluateMany call; evals is incremented by the
/// number of probe evaluations.  Steps are relStep * max(|x_i|, 1).
/// Differentiates the leading grad.size() coordinates (grad.size() may be
/// smaller than x.size() — how hybrid objectives finite-difference only
/// their non-analytic block with the same step rule as a full FD gradient).
void fdGradient(ObjectiveFunction& f, std::span<const double> x, double f0,
                double relStep, bool central, std::span<double> grad,
                long& evals);

/// Legacy form over a std::function objective.
void fdGradient(const Objective& f, std::span<const double> x, double f0,
                double relStep, bool central, std::span<double> grad,
                long& evals);

}  // namespace slim::opt
