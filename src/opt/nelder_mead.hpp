#pragma once
// Derivative-free simplex minimization (Nelder & Mead 1965).
//
// The BFGS driver needs (numParams + 1) likelihood evaluations per
// finite-difference gradient; on trees with hundreds of branches a
// derivative-free restart can be the more robust choice near non-smooth
// regions (parameter bounds, mixture-weight boundaries).  Production
// phylogenetics packages ship both; this one doubles as an independent
// optimizer to cross-check BFGS results in tests.
//
// Candidate points are batched through ObjectiveFunction::evaluateMany: the
// initial simplex, the shrink step, and — for objectives whose
// batchEvaluationProfitable() says points actually fan across workers — the
// reflection/expansion pair, with the expansion point evaluated
// speculatively alongside the reflection (a free second probe there; on
// sequential objectives it stays lazy).  The accept/reject logic consumes
// the values exactly as the sequential algorithm would, so the trajectory
// is unchanged either way.

#include <string>

#include "opt/cancel.hpp"
#include "opt/checkpoint.hpp"
#include "opt/objective.hpp"

namespace slim::opt {

struct NelderMeadOptions {
  int maxIterations = 2000;        ///< Reflect/expand/contract/shrink steps.
  double initialStep = 0.5;        ///< Per-coordinate initial simplex offset.
  double fTolerance = 1e-10;       ///< Stop when spread(f) < fTol*(1+|best|).
  double xTolerance = 1e-9;        ///< ... and simplex diameter below this.
  /// Polled at iteration boundaries (the checkpoint snapshot points); see
  /// BfgsOptions::cancel for the contract.
  CancelPredicate cancel;
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0;
  int iterations = 0;
  long functionEvaluations = 0;
  bool converged = false;
  /// True when NelderMeadOptions::cancel stopped the fit; `x`/`value` hold
  /// the best simplex vertex at that point and `message` is "cancelled".
  bool cancelled = false;
  std::string message;
};

/// Minimize f from x0.  The objective may return +inf/NaN for infeasible
/// points (treated as worse than any finite value).
///
/// `sink`, when set, receives a resumable NelderMeadState after the initial
/// simplex evaluation and after every completed iteration.  `source`, when
/// non-null, restores such a state instead of building the simplex from x0
/// (whose length only fixes the dimension); the continued run repeats the
/// uninterrupted trajectory bit for bit.  A source whose dimensions disagree
/// with x0 throws std::invalid_argument.
NelderMeadResult minimizeNelderMead(ObjectiveFunction& f,
                                    std::span<const double> x0,
                                    const NelderMeadOptions& options = {},
                                    const NelderMeadCheckpointSink& sink = {},
                                    const NelderMeadState* source = nullptr);

/// Legacy convenience overload over a std::function objective.
NelderMeadResult minimizeNelderMead(const Objective& f,
                                    std::span<const double> x0,
                                    const NelderMeadOptions& options = {});

}  // namespace slim::opt
