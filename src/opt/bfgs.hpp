#pragma once
// Quasi-Newton minimization.
//
// "The maximization of the likelihood of the BSM is achieved through
// iterative maximization algorithms such as Newton-Raphson methods or an
// approximation like the BFGS method" (paper Sec. II-B).  Both engines share
// this optimizer so that iteration counts are comparable; remaining
// iteration-count differences between engines come from floating-point
// reassociation in the kernels, the same sensitivity the paper reports for
// CodeML under different RNG seeds (Sec. IV).
//
// The driver consumes the derivative-aware opt::ObjectiveFunction contract
// (opt/objective.hpp): gradients come from the objective's valueAndGradient
// — analytic where the objective provides them, finite differences routed
// through evaluateMany (and hence batchable across workers) otherwise.
// Legacy std::function objectives run through the CallableObjective shim via
// the convenience overload.
//
// Reentrancy: the driver keeps all state (iterate, inverse Hessian, line
// search, gradient scratch) in locals — no globals, no statics — so
// concurrent minimizeBfgs calls are safe whenever each call's objective
// touches disjoint state.  core::TaskScheduler relies on this to fan
// independent fits (H0/H1 pairs, multi-gene batches) across threads, each
// with its own evaluator.  Verified by opt_test's ConcurrentDriversMatchSerial
// and CI's TSan job.

#include <span>
#include <string>
#include <vector>

#include "opt/cancel.hpp"
#include "opt/checkpoint.hpp"
#include "opt/objective.hpp"

namespace slim::opt {

struct BfgsOptions {
  int maxIterations = 500;
  /// Converged when ||grad||_inf < gradTolerance * (1 + |f|).
  double gradTolerance = 1e-6;
  /// Converged when the improvement over an iteration is below
  /// fTolerance * (1 + |f|) twice in a row.
  double fTolerance = 1e-9;
  /// Relative finite-difference step (per-coordinate step is
  /// fdStep * max(|x_i|, 1)).
  double fdStep = 1e-7;
  bool centralDifferences = false;
  int maxLineSearchSteps = 40;
  double armijoC1 = 1e-4;
  /// Polled at iteration boundaries (the checkpoint snapshot points); when it
  /// returns true the fit stops cleanly at the last accepted point with
  /// message "cancelled".  Deliberately excluded from checkpointConfigHash:
  /// cancellation truncates a trajectory, it never alters one.
  CancelPredicate cancel;
};

struct BfgsResult {
  std::vector<double> x;     ///< Best point found.
  double value = 0;          ///< f(x).
  int iterations = 0;        ///< Outer BFGS iterations performed.
  /// Objective evaluations spent on values (start point + line searches).
  long functionEvaluations = 0;
  /// Objective evaluations spent inside gradient computations (FD probes);
  /// total work is functionEvaluations + gradientEvaluations.
  long gradientEvaluations = 0;
  /// Analytic gradient sweeps the objective performed across all gradients.
  long gradientSweeps = 0;
  /// Coordinates of the last gradient that carried analytic derivatives.
  int analyticCoordinates = 0;
  bool converged = false;
  /// True when BfgsOptions::cancel stopped the fit; `x`/`value` hold the last
  /// accepted point and `message` is "cancelled".
  bool cancelled = false;
  std::string message;
};

/// Minimize f from x0 with BFGS (dense inverse-Hessian update, Armijo
/// backtracking line search; gradients from f.valueAndGradient).
///
/// `sink`, when set, receives a resumable BfgsState after the initial
/// gradient and after every completed iteration.  `source`, when non-null,
/// restores such a state instead of evaluating at x0 (whose length only
/// fixes the dimension): the run continues the recorded trajectory
/// bit-identically, including iteration and evaluation counters.  A source
/// whose dimensions disagree with x0 throws std::invalid_argument.
BfgsResult minimizeBfgs(ObjectiveFunction& f, std::span<const double> x0,
                        const BfgsOptions& options = {},
                        const BfgsCheckpointSink& sink = {},
                        const BfgsState* source = nullptr);

/// Legacy convenience overload over a std::function objective.
BfgsResult minimizeBfgs(const Objective& f, std::span<const double> x0,
                        const BfgsOptions& options = {});

}  // namespace slim::opt
