#pragma once
// Quasi-Newton minimization.
//
// "The maximization of the likelihood of the BSM is achieved through
// iterative maximization algorithms such as Newton-Raphson methods or an
// approximation like the BFGS method" (paper Sec. II-B).  Both engines share
// this optimizer so that iteration counts are comparable; remaining
// iteration-count differences between engines come from floating-point
// reassociation in the kernels, the same sensitivity the paper reports for
// CodeML under different RNG seeds (Sec. IV).
//
// Gradients are forward finite differences (optionally central), matching
// CodeML's derivative-free usage.
//
// Reentrancy: the driver keeps all state (iterate, inverse Hessian, line
// search, gradient scratch) in locals — no globals, no statics — so
// concurrent minimizeBfgs calls are safe whenever each call's objective
// touches disjoint state.  core::TaskScheduler relies on this to fan
// independent fits (H0/H1 pairs, multi-gene batches) across threads, each
// with its own evaluator.  Verified by opt_test's ConcurrentDriversMatchSerial
// and CI's TSan job.

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace slim::opt {

/// Objective to minimize.  May return +infinity / NaN for infeasible points;
/// the line search backtracks away from them.
using Objective = std::function<double(std::span<const double>)>;

struct BfgsOptions {
  int maxIterations = 500;
  /// Converged when ||grad||_inf < gradTolerance * (1 + |f|).
  double gradTolerance = 1e-6;
  /// Converged when the improvement over an iteration is below
  /// fTolerance * (1 + |f|) twice in a row.
  double fTolerance = 1e-9;
  /// Relative forward-difference step.
  double fdStep = 1e-7;
  bool centralDifferences = false;
  int maxLineSearchSteps = 40;
  double armijoC1 = 1e-4;
};

struct BfgsResult {
  std::vector<double> x;     ///< Best point found.
  double value = 0;          ///< f(x).
  int iterations = 0;        ///< Outer BFGS iterations performed.
  long functionEvaluations = 0;
  bool converged = false;
  std::string message;
};

/// Minimize f from x0 with BFGS (dense inverse-Hessian update, Armijo
/// backtracking line search, finite-difference gradients).
BfgsResult minimizeBfgs(const Objective& f, std::span<const double> x0,
                        const BfgsOptions& options = {});

/// Finite-difference gradient of f at x where f0 = f(x); evals is
/// incremented by the number of objective calls made.
void fdGradient(const Objective& f, std::span<const double> x, double f0,
                double relStep, bool central, std::span<double> grad,
                long& evals);

}  // namespace slim::opt
