#pragma once
// Cooperative cancellation for the optimization drivers.
//
// A CancelPredicate is polled by minimizeBfgs/minimizeNelderMead at iteration
// boundaries — the same points where checkpoint snapshots are taken — so a
// cancelled fit always stops at a state the checkpoint machinery has (or
// could have) persisted, and a later resume continues the identical
// trajectory.  Cancellation can only truncate a trajectory, never alter it,
// which is why the predicate is deliberately *not* part of
// checkpointConfigHash.
//
// Sources that compose onto one predicate: a client cancel request (daemon),
// a job deadline (daemon or the `timeoutSec` ctl key), SIGTERM/SIGINT (CLI),
// and daemon drain.

#include <chrono>
#include <functional>
#include <utility>

namespace slim::opt {

/// Returns true when the fit should stop.  Must be cheap and thread-safe:
/// it is polled once per optimizer iteration, possibly from several worker
/// threads at once.  An empty predicate means "never cancel".
using CancelPredicate = std::function<bool()>;

/// Predicate that fires once `seconds` of wall time have elapsed from the
/// moment this function is called (not from the first poll).
inline CancelPredicate deadlineAfter(double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds));
  return [deadline] { return std::chrono::steady_clock::now() >= deadline; };
}

/// OR-composition; empty operands are dropped so the result stays empty
/// (never polled) when both are.
inline CancelPredicate combineCancel(CancelPredicate a, CancelPredicate b) {
  if (!a) return b;
  if (!b) return a;
  return [a = std::move(a), b = std::move(b)] { return a() || b(); };
}

}  // namespace slim::opt
