#pragma once
// Parameter transforms: the likelihood is maximized over bounded parameters
// (kappa > 0, omega0 in (0,1), omega2 > 1, (p0,p1) in the open 2-simplex,
// branch lengths > 0), but BFGS works in an unconstrained space.  Each
// transform maps a bounded "external" parameter to an unbounded "internal"
// coordinate and back.

#include <utility>

namespace slim::opt {

/// Scalar transform between a bounded external domain and R.
class Transform {
 public:
  /// x = u (unbounded parameters).
  static Transform identity() noexcept { return {Kind::Identity, 0, 0}; }
  /// x = lo + e^u  (x > lo).
  static Transform logAbove(double lo) noexcept { return {Kind::Log, lo, 0}; }
  /// x = lo + (hi-lo) * logistic(u)  (lo < x < hi).
  static Transform logistic(double lo, double hi) noexcept {
    return {Kind::Logistic, lo, hi};
  }

  double toExternal(double u) const noexcept;
  /// Inverse of toExternal; x is clamped strictly inside the *open* domain
  /// first, so a value sitting exactly on a box bound (a degenerate start,
  /// or a checkpoint written at the clamp) — or even NaN/inf — maps to a
  /// finite internal coordinate instead of +-infinity.
  double toInternal(double x) const noexcept;
  /// d toExternal / du at u — the chain-rule factor mapping an analytic
  /// derivative in the external (bounded) parameter onto the internal
  /// optimization coordinate.
  double derivative(double u) const noexcept;

 private:
  enum class Kind { Identity, Log, Logistic };
  Transform(Kind k, double lo, double hi) noexcept : kind_(k), lo_(lo), hi_(hi) {}
  Kind kind_;
  double lo_, hi_;
};

/// The open 2-simplex {p0, p1 > 0, p0 + p1 < 1} <-> R^2 via the softmax
/// parameterization p0 = e^u / (1 + e^u + e^v), p1 = e^v / (1 + e^u + e^v)
/// (the parameterization PAML itself uses for mixture proportions).
std::pair<double, double> simplex2ToExternal(double u, double v) noexcept;
std::pair<double, double> simplex2ToInternal(double p0, double p1) noexcept;

}  // namespace slim::opt
