#pragma once
// Multiple sequence alignments (MSA) of nucleotide data and their codon
// encoding.  The paper's input (Fig. 1) is a codon MSA plus a tagged tree;
// this module owns the MSA side: parsing, validation, codon-state encoding,
// and site-pattern compression (identical alignment columns collapse into
// one pattern with a multiplicity, the standard likelihood speedup that both
// engines share).

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "bio/genetic_code.hpp"

namespace slim::seqio {

/// One named nucleotide sequence (characters as read; case preserved).
struct Sequence {
  std::string name;
  std::string data;
};

/// A set of equal-length sequences.
class Alignment {
 public:
  void addSequence(std::string name, std::string data);

  std::size_t numSequences() const noexcept { return seqs_.size(); }
  /// Alignment length in nucleotide columns (0 if empty).
  std::size_t length() const noexcept {
    return seqs_.empty() ? 0 : seqs_.front().data.size();
  }

  const Sequence& sequence(std::size_t i) const { return seqs_.at(i); }
  const std::vector<Sequence>& sequences() const noexcept { return seqs_; }

  /// Index of a sequence by name, -1 if absent.
  int find(std::string_view name) const noexcept;

  /// All sequences non-empty, equal length, unique names, length % 3 == 0
  /// when codon = true.  Throws std::invalid_argument on violation.
  void validate(bool codon = true) const;

  // --- IO ---
  static Alignment readFasta(std::istream& in);
  static Alignment readFastaString(std::string_view text);
  /// Sequential PHYLIP: header "ns len", then "name  sequence" records whose
  /// sequence part may continue on following lines.
  static Alignment readPhylip(std::istream& in);
  static Alignment readPhylipString(std::string_view text);

  void writeFasta(std::ostream& out, std::size_t lineWidth = 60) const;
  void writePhylip(std::ostream& out) const;

 private:
  std::vector<Sequence> seqs_;
};

/// Sentinel codon state for gaps / ambiguity (all codon states possible).
inline constexpr int kMissingState = -1;

/// Codon-encoded alignment: states are *sense indices* (0..numSense-1) into
/// the genetic code, or kMissingState where the column contains gaps or
/// ambiguity characters.
struct CodonAlignment {
  const bio::GeneticCode* code = nullptr;
  std::vector<std::string> names;
  /// states[s][i] = sense codon state of sequence s at codon site i.
  std::vector<std::vector<int>> states;

  std::size_t numSequences() const noexcept { return states.size(); }
  std::size_t numSites() const noexcept {
    return states.empty() ? 0 : states.front().size();
  }
};

/// Encode a nucleotide alignment into codon states.
/// Codons containing any non-TCAG character become kMissingState.
/// Stop codons are an error unless stopAsMissing is true (then missing),
/// because the 61-state model cannot represent them.
CodonAlignment encodeCodons(const Alignment& aln, const bio::GeneticCode& gc,
                            bool stopAsMissing = false);

/// Site patterns: unique alignment columns with multiplicities.
struct SitePatterns {
  /// pattern[p][s] = codon state of sequence s in pattern p.
  std::vector<std::vector<int>> patterns;
  /// Multiplicity (number of sites showing the pattern), same order.
  std::vector<double> weights;
  /// For each original site, the index of its pattern.
  std::vector<int> siteToPattern;

  std::size_t numPatterns() const noexcept { return patterns.size(); }
};

/// Collapse identical columns of a codon alignment.
SitePatterns compressPatterns(const CodonAlignment& ca);

/// Observed codon counts (length numSense), with every sense codon given a
/// +pseudocount to avoid zero frequencies (zeros would make pi singular and
/// the Pi^{1/2} symmetrization of Eq. 2 ill-defined).
std::vector<double> codonCounts(const CodonAlignment& ca, double pseudocount = 0.0);

/// Per-position nucleotide counts: counts[pos][nt] over the 3 codon
/// positions and 4 nucleotides (T,C,A,G order).  Missing codons are skipped.
std::vector<std::vector<double>> positionalNucleotideCounts(const CodonAlignment& ca);

}  // namespace slim::seqio
