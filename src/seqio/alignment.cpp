#include "seqio/alignment.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "support/require.hpp"

namespace slim::seqio {

void Alignment::addSequence(std::string name, std::string data) {
  SLIM_REQUIRE(!name.empty(), "sequence name must not be empty");
  seqs_.push_back({std::move(name), std::move(data)});
}

int Alignment::find(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < seqs_.size(); ++i)
    if (seqs_[i].name == name) return static_cast<int>(i);
  return -1;
}

void Alignment::validate(bool codon) const {
  SLIM_REQUIRE(!seqs_.empty(), "alignment has no sequences");
  const std::size_t len = seqs_.front().data.size();
  SLIM_REQUIRE(len > 0, "alignment has zero length");
  std::unordered_set<std::string> names;
  for (const auto& s : seqs_) {
    SLIM_REQUIRE(s.data.size() == len,
                 "sequence '" + s.name + "' has inconsistent length");
    SLIM_REQUIRE(names.insert(s.name).second,
                 "duplicate sequence name '" + s.name + "'");
  }
  if (codon)
    SLIM_REQUIRE(len % 3 == 0, "alignment length is not a multiple of 3");
}

namespace {

bool isBlank(const std::string& line) {
  return std::all_of(line.begin(), line.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

void stripCarriageReturn(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

std::string stripSpaces(std::string_view s) {
  std::string out;
  for (char c : s)
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  return out;
}

}  // namespace

Alignment Alignment::readFasta(std::istream& in) {
  Alignment aln;
  std::string line, name, data;
  auto flush = [&]() {
    if (!name.empty()) aln.addSequence(std::move(name), std::move(data));
    name.clear();
    data.clear();
  };
  while (std::getline(in, line)) {
    stripCarriageReturn(line);
    if (line.empty() || isBlank(line)) continue;
    if (line[0] == '>') {
      flush();
      // Name = first whitespace-delimited token after '>'.
      std::istringstream hs(line.substr(1));
      hs >> name;
      SLIM_REQUIRE(!name.empty(), "FASTA header with empty name");
    } else {
      SLIM_REQUIRE(!name.empty(), "FASTA sequence data before any header");
      data += stripSpaces(line);
    }
  }
  flush();
  SLIM_REQUIRE(aln.numSequences() > 0, "FASTA input contained no sequences");
  return aln;
}

Alignment Alignment::readFastaString(std::string_view text) {
  std::istringstream in{std::string(text)};
  return readFasta(in);
}

Alignment Alignment::readPhylip(std::istream& in) {
  std::string line;
  // Header: numSequences length.
  std::size_t ns = 0, len = 0;
  while (std::getline(in, line)) {
    stripCarriageReturn(line);
    if (isBlank(line)) continue;
    std::istringstream hs(line);
    SLIM_REQUIRE(static_cast<bool>(hs >> ns >> len),
                 "PHYLIP header must be 'numSequences length'");
    break;
  }
  SLIM_REQUIRE(ns > 0 && len > 0, "PHYLIP header missing or zero-sized");

  Alignment aln;
  std::string name, data;
  auto flush = [&]() {
    if (!name.empty()) {
      SLIM_REQUIRE(data.size() == len, "PHYLIP sequence '" + name +
                                           "' has length " +
                                           std::to_string(data.size()) +
                                           ", expected " + std::to_string(len));
      aln.addSequence(std::move(name), std::move(data));
    }
    name.clear();
    data.clear();
  };
  while (std::getline(in, line)) {
    stripCarriageReturn(line);
    if (isBlank(line)) continue;
    if (data.size() >= len || name.empty()) {
      // Start of a new record: first token is the name, rest is sequence.
      flush();
      std::istringstream ls(line);
      ls >> name;
      std::string rest;
      std::getline(ls, rest);
      data = stripSpaces(rest);
    } else {
      data += stripSpaces(line);
    }
  }
  flush();
  SLIM_REQUIRE(aln.numSequences() == ns,
               "PHYLIP: expected " + std::to_string(ns) + " sequences, got " +
                   std::to_string(aln.numSequences()));
  return aln;
}

Alignment Alignment::readPhylipString(std::string_view text) {
  std::istringstream in{std::string(text)};
  return readPhylip(in);
}

void Alignment::writeFasta(std::ostream& out, std::size_t lineWidth) const {
  SLIM_REQUIRE(lineWidth > 0, "line width must be positive");
  for (const auto& s : seqs_) {
    out << '>' << s.name << '\n';
    for (std::size_t i = 0; i < s.data.size(); i += lineWidth)
      out << s.data.substr(i, lineWidth) << '\n';
  }
}

void Alignment::writePhylip(std::ostream& out) const {
  out << numSequences() << ' ' << length() << '\n';
  for (const auto& s : seqs_) out << s.name << "  " << s.data << '\n';
}

CodonAlignment encodeCodons(const Alignment& aln, const bio::GeneticCode& gc,
                            bool stopAsMissing) {
  aln.validate(/*codon=*/true);
  CodonAlignment ca;
  ca.code = &gc;
  const std::size_t nsites = aln.length() / 3;
  for (const auto& s : aln.sequences()) {
    ca.names.push_back(s.name);
    std::vector<int> states(nsites, kMissingState);
    for (std::size_t i = 0; i < nsites; ++i) {
      const std::string_view cod(s.data.data() + 3 * i, 3);
      const auto c64 = bio::codonFromString(cod);
      if (!c64) continue;  // gap or ambiguity: missing
      if (gc.isStop(*c64)) {
        SLIM_REQUIRE(stopAsMissing,
                     "stop codon '" + std::string(cod) + "' in sequence '" +
                         s.name + "' at codon site " + std::to_string(i));
        continue;
      }
      states[i] = gc.senseIndex(*c64);
    }
    ca.states.push_back(std::move(states));
  }
  return ca;
}

SitePatterns compressPatterns(const CodonAlignment& ca) {
  SLIM_REQUIRE(ca.numSequences() > 0, "empty codon alignment");
  const std::size_t ns = ca.numSequences(), nsites = ca.numSites();
  SitePatterns sp;
  sp.siteToPattern.resize(nsites);
  std::map<std::vector<int>, int> seen;
  std::vector<int> column(ns);
  for (std::size_t i = 0; i < nsites; ++i) {
    for (std::size_t s = 0; s < ns; ++s) column[s] = ca.states[s][i];
    auto [it, inserted] = seen.emplace(column, static_cast<int>(sp.patterns.size()));
    if (inserted) {
      sp.patterns.push_back(column);
      sp.weights.push_back(1.0);
    } else {
      sp.weights[it->second] += 1.0;
    }
    sp.siteToPattern[i] = it->second;
  }
  return sp;
}

std::vector<double> codonCounts(const CodonAlignment& ca, double pseudocount) {
  SLIM_REQUIRE(ca.code != nullptr, "codon alignment without a genetic code");
  std::vector<double> counts(ca.code->numSense(), pseudocount);
  for (const auto& row : ca.states)
    for (int s : row)
      if (s != kMissingState) counts[s] += 1.0;
  return counts;
}

std::vector<std::vector<double>> positionalNucleotideCounts(
    const CodonAlignment& ca) {
  SLIM_REQUIRE(ca.code != nullptr, "codon alignment without a genetic code");
  std::vector<std::vector<double>> counts(3, std::vector<double>(4, 0.0));
  for (const auto& row : ca.states)
    for (int s : row) {
      if (s == kMissingState) continue;
      const int c64 = ca.code->codonOfSense(s);
      for (int p = 0; p < 3; ++p)
        counts[p][static_cast<int>(bio::codonBase(c64, p))] += 1.0;
    }
  return counts;
}

}  // namespace slim::seqio
