#include "valid/study.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>

#include "bio/genetic_code.hpp"
#include "core/checkpoint.hpp"
#include "model/model_spec.hpp"
#include "seqio/alignment.hpp"
#include "sim/datasets.hpp"
#include "sim/evolver.hpp"
#include "sim/random_tree.hpp"
#include "support/json.hpp"
#include "support/require.hpp"

namespace slim::valid {

namespace {

using support::jsonNumber;
using support::jsonString;

/// FNV-1a over bytes; doubles go through hexDouble so the hash covers the
/// exact bits, not a rounded decimal rendering.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void bytes(std::string_view s) {
    for (const unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= 0xff;
    h *= 1099511628211ull;  // field separator
  }
  void num(std::uint64_t v) { bytes(std::to_string(v)); }
  void real(double v) { bytes(core::hexDouble(v)); }
};

}  // namespace

StudySpec defaultStudySpec() {
  StudySpec spec;
  const auto truth = sim::defaultSimulationParams();
  ScenarioSpec null;
  null.name = "null";
  null.positive = false;
  null.params = truth;  // omega2 is ignored under H0 simulation
  ScenarioSpec positive;
  positive.name = "positive";
  positive.positive = true;
  positive.params = truth;
  spec.scenarios = {null, positive};
  return spec;
}

std::uint64_t replicateSeed(std::uint64_t base, int scenarioIndex,
                            int replicate) {
  // Simple arithmetic derivation (not order-dependent); xoshiro's splitmix64
  // seeding decorrelates nearby seeds, the same scheme the batch jitter and
  // test fixtures rely on.  Kept below 2^53 contributions so the seed also
  // survives a JSON number round-trip exactly.
  return base + 1000003ull * static_cast<std::uint64_t>(scenarioIndex) +
         static_cast<std::uint64_t>(replicate);
}

SimulatedGene simulateGene(const StudySpec& spec, int scenarioIndex,
                           int replicate) {
  const ScenarioSpec& scenario = spec.scenarios.at(scenarioIndex);
  sim::Rng rng(replicateSeed(spec.seed, scenarioIndex, replicate));

  SimulatedGene gene;
  gene.name = scenario.name + "-r" + std::to_string(replicate);

  tree::Tree tree = sim::yuleTree(spec.numSpecies, rng);
  sim::pickForegroundBranch(tree, rng);

  const auto& gc = bio::GeneticCode::universal();
  const auto pi = sim::randomCodonFrequencies(gc.numSense(), /*alpha=*/5, rng);
  sim::SimulatedAlignment simulated;
  if (scenario.modelKind == model::ModelKind::BranchSite) {
    simulated = sim::evolveBranchSite(
        gc, tree, scenario.params,
        scenario.positive ? model::Hypothesis::H1 : model::Hypothesis::H0,
        spec.numCodons, pi, rng);
  } else {
    // Branch / clade-c truth: classOmegas gives one omega per branch class
    // of the replicate tree (classes {0, 1} — pickForegroundBranch marks
    // exactly one class-1 branch).
    SLIM_REQUIRE(!scenario.classOmegas.empty(),
                 "scenario '" + scenario.name +
                     "': classOmegas is required for model '" +
                     model::modelKindName(scenario.modelKind) + "'");
    const model::MixtureSpec mix =
        scenario.modelKind == model::ModelKind::Branch
            ? model::buildBranchModelSpec(gc, pi, scenario.params.kappa,
                                          scenario.classOmegas)
            : model::buildCladeCSpec(gc, pi, scenario.params.kappa,
                                     scenario.params.omega0,
                                     scenario.params.p0, scenario.params.p1,
                                     scenario.classOmegas);
    simulated = sim::evolveMixture(gc, tree, mix, spec.numCodons, pi, rng);
  }

  gene.codons = seqio::encodeCodons(simulated.alignment, gc);
  gene.tree = std::make_shared<const tree::Tree>(std::move(tree));
  return gene;
}

std::uint64_t studyConfigHash(const StudySpec& spec) {
  Fnv f;
  f.bytes("slimcodeml-validate-v1");
  f.bytes(core::engineName(spec.engine));
  f.num(static_cast<std::uint64_t>(spec.replicates));
  f.num(static_cast<std::uint64_t>(spec.numSpecies));
  f.num(static_cast<std::uint64_t>(spec.numCodons));
  f.num(spec.seed);
  for (const auto& s : spec.scenarios) {
    f.bytes(s.name);
    f.num(s.positive ? 1 : 0);
    f.real(s.params.kappa);
    f.real(s.params.omega0);
    f.real(s.params.omega2);
    f.real(s.params.p0);
    f.real(s.params.p1);
    // Appended only for non-branch-site scenarios, so every pre-existing
    // branch-site study hash (and its checkpoints) stays valid.
    if (s.modelKind != model::ModelKind::BranchSite || !s.classOmegas.empty()) {
      f.bytes(model::modelKindName(s.modelKind));
      f.num(s.classOmegas.size());
      for (const double w : s.classOmegas) f.real(w);
    }
  }
  const core::FitOptions& fit = spec.fit;
  f.num(static_cast<std::uint64_t>(fit.frequencyModel));
  f.num(static_cast<std::uint64_t>(fit.bfgs.maxIterations));
  f.real(fit.initialParams.kappa);
  f.real(fit.initialParams.omega0);
  f.real(fit.initialParams.omega2);
  f.real(fit.initialParams.p0);
  f.real(fit.initialParams.p1);
  f.num(fit.useTreeBranchLengths ? 1 : 0);
  f.real(fit.initialBranchLength);
  f.num(fit.startJitterSeed);
  f.bytes(core::gradientModeName(fit.tuning.gradient));
  for (const double a : spec.alphas) f.real(a);
  return f.h;
}

StudyResult runStudy(const StudySpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  StudyResult result;

  // --- simulate, scenario-major, serially (fixed replicate seeds) ---
  core::BatchOptions options;
  options.fit = spec.fit;
  options.checkpoint = spec.checkpoint;
  core::BatchAnalysis batch(spec.engine, options);
  struct GeneLabel {
    int scenario;
    int replicate;
    std::uint64_t seed;
  };
  std::vector<GeneLabel> labels;
  for (int s = 0; s < static_cast<int>(spec.scenarios.size()); ++s) {
    // Fit each scenario under its own model family; the replicate trees
    // carry classes {0, 1}, so non-branch-site specs are two-class.
    core::FitOptions scenarioFit = spec.fit;
    if (spec.scenarios[s].modelKind != model::ModelKind::BranchSite)
      scenarioFit.modelSpec =
          spec.scenarios[s].modelKind == model::ModelKind::Branch
              ? model::ModelSpec::branch(2)
              : model::ModelSpec::cladeC(2);
    for (int r = 0; r < spec.replicates; ++r) {
      SimulatedGene gene = simulateGene(spec, s, r);
      batch.addGene(gene.codons, gene.tree, scenarioFit, gene.name);
      labels.push_back({s, r, replicateSeed(spec.seed, s, r)});
    }
  }

  // --- fit (BatchAnalysis: bit-identical across workers/policies) ---
  result.tests = batch.runAll();
  result.info = batch.lastRun();

  // --- aggregate, in registration order ---
  result.table.reserve(result.tests.size());
  for (std::size_t g = 0; g < result.tests.size(); ++g) {
    const auto& scenario = spec.scenarios[labels[g].scenario];
    const auto& lrt = result.tests[g].lrt;
    ReplicateResult row;
    row.scenario = scenario.name;
    row.replicate = labels[g].replicate;
    row.seed = labels[g].seed;
    row.positive = scenario.positive;
    row.lnL0 = lrt.lnL0;
    row.lnL1 = lrt.lnL1;
    row.statistic = lrt.statistic;
    row.pChi2 = lrt.pChi2;
    row.pMixture = lrt.pMixture;
    result.table.push_back(std::move(row));
  }

  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    ScenarioSummary summary;
    summary.name = spec.scenarios[s].name;
    summary.positive = spec.scenarios[s].positive;
    summary.replicates = spec.replicates;
    summary.rejections.assign(spec.alphas.size(), 0);
    for (std::size_t g = 0; g < result.table.size(); ++g) {
      if (labels[g].scenario != static_cast<int>(s)) continue;
      for (std::size_t a = 0; a < spec.alphas.size(); ++a)
        if (result.tests[g].lrt.significantAt(spec.alphas[a]))
          ++summary.rejections[a];
    }
    result.summaries.push_back(std::move(summary));
  }

  // --- ROC and Mann-Whitney AUC over pChi2 (smaller p = more evidence) ---
  std::vector<double> pNull, pPositive;
  for (const auto& row : result.table)
    (row.positive ? pPositive : pNull).push_back(row.pChi2);
  if (!pNull.empty() && !pPositive.empty()) {
    std::vector<double> thresholds;
    for (const auto& row : result.table) thresholds.push_back(row.pChi2);
    std::sort(thresholds.begin(), thresholds.end());
    thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                     thresholds.end());
    for (const double t : thresholds) {
      RocPoint point;
      point.threshold = t;
      point.fpr = static_cast<double>(std::count_if(
                      pNull.begin(), pNull.end(),
                      [t](double p) { return p <= t; })) /
                  pNull.size();
      point.tpr = static_cast<double>(std::count_if(
                      pPositive.begin(), pPositive.end(),
                      [t](double p) { return p <= t; })) /
                  pPositive.size();
      result.roc.push_back(point);
    }
    double u = 0;
    for (const double pp : pPositive)
      for (const double pn : pNull)
        u += pp < pn ? 1.0 : pp == pn ? 0.5 : 0.0;
    result.auc = u / (static_cast<double>(pPositive.size()) * pNull.size());
  }

  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

void writeJsonStudyReport(std::ostream& out, const StudySpec& spec,
                          const StudyResult& result, bool includeRunInfo) {
  out << "{\n  \"schema\": \"slimcodeml-validate-v1\",\n";
  out << "  \"spec\": {\n";
  out << "    \"engine\": ";
  jsonString(out, core::engineName(spec.engine));
  out << ",\n    \"replicates\": " << spec.replicates;
  out << ",\n    \"numSpecies\": " << spec.numSpecies;
  out << ",\n    \"numCodons\": " << spec.numCodons;
  out << ",\n    \"seed\": " << spec.seed;
  out << ",\n    \"maxIterations\": " << spec.fit.bfgs.maxIterations;
  out << ",\n    \"alphas\": [";
  for (std::size_t a = 0; a < spec.alphas.size(); ++a) {
    if (a) out << ", ";
    jsonNumber(out, spec.alphas[a]);
  }
  out << "]\n  },\n";

  out << "  \"scenarios\": [\n";
  for (std::size_t s = 0; s < result.summaries.size(); ++s) {
    const auto& summary = result.summaries[s];
    out << "    {\"name\": ";
    jsonString(out, summary.name);
    out << ", \"truth\": ";
    jsonString(out, summary.positive ? "positive" : "null");
    out << ", \"replicates\": " << summary.replicates;
    out << ", \"rejections\": [";
    for (std::size_t a = 0; a < summary.rejections.size(); ++a) {
      if (a) out << ", ";
      out << summary.rejections[a];
    }
    out << "], \"rates\": [";
    for (std::size_t a = 0; a < summary.rejections.size(); ++a) {
      if (a) out << ", ";
      jsonNumber(out, summary.replicates > 0
                          ? static_cast<double>(summary.rejections[a]) /
                                summary.replicates
                          : 0.0);
    }
    out << "]}" << (s + 1 < result.summaries.size() ? "," : "") << '\n';
  }
  out << "  ],\n";

  out << "  \"replicates\": [\n";
  for (std::size_t g = 0; g < result.table.size(); ++g) {
    const auto& row = result.table[g];
    out << "    {\"scenario\": ";
    jsonString(out, row.scenario);
    out << ", \"replicate\": " << row.replicate;
    out << ", \"seed\": " << row.seed;
    out << ", \"truth\": ";
    jsonString(out, row.positive ? "positive" : "null");
    out << ", \"lnL0\": ";
    jsonNumber(out, row.lnL0);
    out << ", \"lnL1\": ";
    jsonNumber(out, row.lnL1);
    out << ", \"statistic\": ";
    jsonNumber(out, row.statistic);
    out << ", \"pChi2\": ";
    jsonNumber(out, row.pChi2);
    out << ", \"pMixture\": ";
    jsonNumber(out, row.pMixture);
    out << "}" << (g + 1 < result.table.size() ? "," : "") << '\n';
  }
  out << "  ],\n";

  out << "  \"roc\": [\n";
  for (std::size_t i = 0; i < result.roc.size(); ++i) {
    const auto& point = result.roc[i];
    out << "    {\"threshold\": ";
    jsonNumber(out, point.threshold);
    out << ", \"fpr\": ";
    jsonNumber(out, point.fpr);
    out << ", \"tpr\": ";
    jsonNumber(out, point.tpr);
    out << "}" << (i + 1 < result.roc.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  out << "  \"auc\": ";
  jsonNumber(out, result.auc);
  if (includeRunInfo) {
    out << ",\n  \"batch\": {\"workers\": " << result.info.workers
        << ", \"taskLevel\": " << (result.info.taskLevel ? "true" : "false")
        << ", \"seconds\": ";
    jsonNumber(out, result.seconds);
    out << "}";
  }
  out << "\n}\n";
}

std::string studyReportJson(const StudySpec& spec, const StudyResult& result,
                            bool includeRunInfo) {
  std::ostringstream os;
  writeJsonStudyReport(os, spec, result, includeRunInfo);
  return os.str();
}

}  // namespace slim::valid
