#pragma once
// Simulation-validation ("power") studies: the statistical acceptance test
// the runtime paper leaves implicit.  SlimCodeML's claim is bit-compatible
// branch-site inference at a fraction of CodeML's cost — this module checks
// the *inference* half end-to-end: simulate many alignments under known
// truth (null H0 data and genuine positive selection), run every one
// through the full batch H0/H1 LRT machinery, and report false-positive
// rates, power and an ROC over the LRT p-values.
//
// Determinism contract: for a fixed StudySpec the entire StudyResult —
// every lnL bit, every p-value, the ROC, the JSON report text — is
// identical for every worker count and ParallelPolicy.  Simulation is
// serial in a fixed scenario-major order with per-replicate derived seeds;
// the fits inherit core::BatchAnalysis's bit-identity guarantee; and the
// aggregation walks genes in registration order.  tests/validate_test.cpp
// pins this with EXPECT_EQ across thread counts.
//
// Studies checkpoint like any batch: hand runStudy a CheckpointManager and
// a killed study resumes, skipping completed fits (same fitTaskKey scheme).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/batch.hpp"

namespace slim::valid {

/// One simulation condition of the study.
struct ScenarioSpec {
  std::string name;      ///< e.g. "null", "positive" (used in reports/keys)
  /// Truth: simulate under H1 (genuine positive selection, params.omega2
  /// applies) or under H0 (omega2 forced to 1 — null data).  For the
  /// non-branch-site kinds the truth is classOmegas itself; `positive` is
  /// only the ROC label.
  bool positive = false;
  model::BranchSiteParams params{};  ///< simulation truth parameters
  /// Which model family to simulate and fit.  BranchSite keeps the classic
  /// study bit-identical; Branch / CladeC simulate under classOmegas (one
  /// divergent/class omega per branch class of the replicate tree, which
  /// carries classes {0, 1}) and fit the matching two-class ModelSpec.
  model::ModelKind modelKind = model::ModelKind::BranchSite;
  std::vector<double> classOmegas;  ///< truth per branch class (non-branch-site)
};

struct StudySpec {
  std::vector<ScenarioSpec> scenarios;
  int replicates = 8;   ///< simulated genes per scenario
  int numSpecies = 6;   ///< taxa per replicate tree (fresh Yule tree each)
  int numCodons = 60;   ///< codon columns per alignment
  std::uint64_t seed = 20260807;  ///< base seed; replicates derive from it
  core::EngineKind engine = core::EngineKind::Slim;
  /// Per-gene fit options; `fit.tuning` also sizes the batch worker pool.
  core::FitOptions fit{};
  /// Rejection thresholds reported per scenario (ascending).
  std::vector<double> alphas = {0.01, 0.05, 0.10};
  /// Optional checkpoint coordinator (caller-owned; see core/checkpoint.hpp).
  core::CheckpointManager* checkpoint = nullptr;
};

/// The default two-condition study: a null scenario and a well-separated
/// positive-selection scenario (omega2 from defaultSimulationParams()).
StudySpec defaultStudySpec();

/// Per-replicate LRT outcome (the study's long table).
struct ReplicateResult {
  std::string scenario;
  int replicate = 0;
  std::uint64_t seed = 0;  ///< the derived simulation seed actually used
  bool positive = false;   ///< truth label (copied from the scenario)
  double lnL0 = 0;
  double lnL1 = 0;
  double statistic = 0;
  double pChi2 = 1;
  double pMixture = 1;
};

/// Rejection counts of one scenario at each spec.alphas threshold.  For a
/// null scenario rejections/replicates is the false-positive rate; for a
/// positive scenario it is the power.
struct ScenarioSummary {
  std::string name;
  bool positive = false;
  int replicates = 0;
  std::vector<int> rejections;  ///< parallel to StudySpec::alphas
};

/// One point of the ROC over pChi2 ("reject when p <= threshold").
struct RocPoint {
  double threshold = 0;
  double fpr = 0;
  double tpr = 0;
};

struct StudyResult {
  std::vector<ReplicateResult> table;  ///< scenario-major, replicate order
  std::vector<ScenarioSummary> summaries;
  std::vector<RocPoint> roc;  ///< at every distinct observed p, ascending
  /// Mann-Whitney AUC: P(p_positive < p_null) + 0.5 P(tie); 0 when either
  /// class is empty.
  double auc = 0;
  double seconds = 0;  ///< wall clock of the whole study
  core::BatchRunInfo info;  ///< how the fit phase actually ran
  /// Full per-gene test results, parallel to `table` (posteriors, counters,
  /// convergence — everything the summary rows compress away).
  std::vector<core::PositiveSelectionTest> tests;
};

/// The simulation seed of (scenarioIndex, replicate) under `base` — a pure
/// function of the indices, never of execution order.
std::uint64_t replicateSeed(std::uint64_t base, int scenarioIndex,
                            int replicate);

/// One simulated gene, ready for BatchAnalysis::addGene.
struct SimulatedGene {
  seqio::CodonAlignment codons;
  std::shared_ptr<const tree::Tree> tree;  ///< fresh Yule tree, #1 marked
  std::string name;  ///< "<scenario>-r<replicate>" (stable checkpoint keys)
};

/// Simulate the (scenarioIndex, replicate) gene of the study (exposed so
/// tests can reproduce any single replicate independently).
SimulatedGene simulateGene(const StudySpec& spec, int scenarioIndex,
                           int replicate);

/// Everything that shapes the study's *results* (scenarios, truth params,
/// shapes, seeds, engine, fit settings, alphas), hashed for checkpoint
/// binding — worker counts and policies are bit-neutral and excluded,
/// matching core::checkpointConfigHash's discipline.
std::uint64_t studyConfigHash(const StudySpec& spec);

/// Run the full study: simulate scenario-major, fit through
/// core::BatchAnalysis, aggregate in gene order.
StudyResult runStudy(const StudySpec& spec);

/// Machine-readable report ("schema": "slimcodeml-validate-v1").  The
/// statistical body (spec, scenarios, replicates, roc, auc) is a pure
/// function of the StudySpec — byte-identical across worker counts and
/// policies.  `includeRunInfo` appends the "batch" block (workers, wall
/// clock), which is *not* deterministic; pass false when diffing reports.
void writeJsonStudyReport(std::ostream& out, const StudySpec& spec,
                          const StudyResult& result,
                          bool includeRunInfo = true);
std::string studyReportJson(const StudySpec& spec, const StudyResult& result,
                            bool includeRunInfo = true);

}  // namespace slim::valid
