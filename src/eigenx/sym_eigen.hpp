#pragma once
// Symmetric eigensolvers.
//
// SlimCodeML step 2 (Sec. III-A) solves the symmetric eigenproblem
// A = X Lambda X^T once per distinct omega class with LAPACK's dsyevr.
// No LAPACK is available in this environment, so we provide the classic
// Householder-tridiagonalization + implicit-shift-QL solver (the same
// algorithm family PAML's own eigen routine uses, and the QR/QL fallback
// inside dsyevr itself), plus a cyclic Jacobi solver used as a slow,
// independently-derived oracle in tests.

#include "linalg/matrix.hpp"

namespace slim::eigenx {

/// Result of a symmetric eigendecomposition A = X diag(values) X^T.
struct SymEigenResult {
  linalg::Vector values;  ///< Eigenvalues in ascending order.
  linalg::Matrix vectors; ///< Orthonormal eigenvectors; column j pairs with values[j].
};

/// Householder + implicit-QL eigendecomposition of a symmetric matrix.
/// Only the lower triangle of `a` is referenced.  Throws std::runtime_error
/// if the QL iteration fails to converge (pathological input).
SymEigenResult symEigen(const linalg::Matrix& a);

/// Cyclic Jacobi eigendecomposition; O(n^3) per sweep, typically 6-10 sweeps.
/// Slower than symEigen but a fully independent algorithm: used as the
/// cross-check oracle in tests.
SymEigenResult symEigenJacobi(const linalg::Matrix& a, int maxSweeps = 50);

/// max_j || A x_j - lambda_j x_j ||_inf — backward-error style residual.
double eigenResidual(const linalg::Matrix& a, const SymEigenResult& r);

/// max_ij | (X^T X - I)_ij | — orthonormality defect of the eigenvectors.
double orthogonalityError(const linalg::Matrix& vectors);

}  // namespace slim::eigenx
