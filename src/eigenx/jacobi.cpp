#include <cmath>
#include <stdexcept>

#include "eigenx/sym_eigen.hpp"
#include "support/require.hpp"

namespace slim::eigenx {

using linalg::Matrix;
using linalg::Vector;

// Cyclic Jacobi: repeatedly annihilate the largest-magnitude off-diagonal
// entries with Givens rotations until the off-diagonal Frobenius norm is
// negligible.  Quadratically convergent; used only as an independent oracle.
SymEigenResult symEigenJacobi(const Matrix& aIn, int maxSweeps) {
  SLIM_REQUIRE(aIn.square(), "symEigenJacobi: matrix must be square");
  const std::size_t n = aIn.rows();

  Matrix a = aIn;
  // Symmetrize from the lower triangle (same contract as symEigen).
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = a(j, i);

  Matrix v = Matrix::identity(n);

  auto offNorm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += a(i, j) * a(i, j);
    return std::sqrt(2.0 * s);
  };

  double frob = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) frob += a.data()[k] * a.data()[k];
  frob = std::sqrt(frob);
  const double tol = 1e-15 * std::max(frob, 1.0);

  for (int sweep = 0; sweep < maxSweeps; ++sweep) {
    if (offNorm() <= tol) break;
    for (std::size_t p = 0; p + 1 < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        // t = sign(theta) / (|theta| + sqrt(theta^2 + 1)): smaller root,
        // numerically stable for large |theta|.
        double t;
        if (std::fabs(theta) > 1e150) {
          t = 1.0 / (2.0 * theta);
        } else {
          t = 1.0 / (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
          if (theta < 0) t = -t;
        }
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);

        const double app = a(p, p), aqq = a(q, q);
        a(p, p) = app - t * apq;
        a(q, q) = aqq + t * apq;
        a(p, q) = 0.0;
        a(q, p) = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          if (k == p || k == q) continue;
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = akp - s * (akq + tau * akp);
          a(p, k) = a(k, p);
          a(k, q) = akq + s * (akp - tau * akq);
          a(q, k) = a(k, q);
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = vkp - s * (vkq + tau * vkp);
          v(k, q) = vkq + s * (vkp - tau * vkq);
        }
      }
  }
  if (offNorm() > 1e-8 * std::max(frob, 1.0))
    throw std::runtime_error("symEigenJacobi: did not converge");

  SymEigenResult r;
  r.values = Vector(n);
  for (std::size_t i = 0; i < n; ++i) r.values[i] = a(i, i);
  r.vectors = std::move(v);

  // Sort ascending, carrying vectors.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    std::size_t k = i;
    for (std::size_t j = i + 1; j < n; ++j)
      if (r.values[j] < r.values[k]) k = j;
    if (k != i) {
      std::swap(r.values[i], r.values[k]);
      for (std::size_t j = 0; j < n; ++j)
        std::swap(r.vectors(j, i), r.vectors(j, k));
    }
  }
  return r;
}

}  // namespace slim::eigenx
