#include "eigenx/sym_eigen.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "support/require.hpp"

namespace slim::eigenx {

using linalg::Matrix;
using linalg::Vector;

namespace {

// Householder reduction of a symmetric matrix to tridiagonal form, with
// accumulation of the orthogonal transformation in v (eigenvectors end up in
// the columns of v after ql2).  This is the classic EISPACK tred2 algorithm
// (0-based formulation as in the public-domain NIST JAMA package).
void tred2(Matrix& v, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = v.rows();

  for (std::size_t j = 0; j < n; ++j) d[j] = v(n - 1, j);

  for (std::size_t i = n - 1; i > 0; --i) {
    double scale = 0.0;
    double h = 0.0;
    for (std::size_t k = 0; k < i; ++k) scale += std::fabs(d[k]);
    if (scale == 0.0) {
      e[i] = d[i - 1];
      for (std::size_t j = 0; j < i; ++j) {
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
        v(j, i) = 0.0;
      }
    } else {
      for (std::size_t k = 0; k < i; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      double f = d[i - 1];
      double g = std::sqrt(h);
      if (f > 0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;
      for (std::size_t j = 0; j < i; ++j) e[j] = 0.0;

      for (std::size_t j = 0; j < i; ++j) {
        f = d[j];
        v(j, i) = f;
        g = e[j] + v(j, j) * f;
        for (std::size_t k = j + 1; k < i; ++k) {
          g += v(k, j) * d[k];
          e[k] += v(k, j) * f;
        }
        e[j] = g;
      }
      f = 0.0;
      for (std::size_t j = 0; j < i; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const double hh = f / (h + h);
      for (std::size_t j = 0; j < i; ++j) e[j] -= hh * d[j];
      for (std::size_t j = 0; j < i; ++j) {
        f = d[j];
        g = e[j];
        for (std::size_t k = j; k < i; ++k) v(k, j) -= f * e[k] + g * d[k];
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
      }
    }
    d[i] = h;
  }

  // Accumulate transformations.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    v(n - 1, i) = v(i, i);
    v(i, i) = 1.0;
    const double h = d[i + 1];
    if (h != 0.0) {
      for (std::size_t k = 0; k <= i; ++k) d[k] = v(k, i + 1) / h;
      for (std::size_t j = 0; j <= i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k <= i; ++k) g += v(k, i + 1) * v(k, j);
        for (std::size_t k = 0; k <= i; ++k) v(k, j) -= g * d[k];
      }
    }
    for (std::size_t k = 0; k <= i; ++k) v(k, i + 1) = 0.0;
  }
  for (std::size_t j = 0; j < n; ++j) {
    d[j] = v(n - 1, j);
    v(n - 1, j) = 0.0;
  }
  v(n - 1, n - 1) = 1.0;
  e[0] = 0.0;
}

// Implicit-shift QL iteration on the tridiagonal matrix (d, e), accumulating
// rotations into v.  EISPACK tql2 / JAMA formulation; eigenvalues are sorted
// ascending together with their vectors at the end.
void tql2(Matrix& v, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = v.rows();
  constexpr int kMaxIter = 60;

  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  double f = 0.0;
  double tst1 = 0.0;
  const double eps = std::numeric_limits<double>::epsilon();

  for (std::size_t l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::fabs(d[l]) + std::fabs(e[l]));
    std::size_t m = l;
    while (m < n && std::fabs(e[m]) > eps * tst1) ++m;
    if (m > l) {
      int iter = 0;
      do {
        if (++iter > kMaxIter)
          throw std::runtime_error("symEigen: QL iteration failed to converge");
        // Implicit shift (Wilkinson).
        double g = d[l];
        double p = (d[l + 1] - g) / (2.0 * e[l]);
        double r = std::hypot(p, 1.0);
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const double dl1 = d[l + 1];
        double h = g - d[l];
        for (std::size_t i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        // Implicit QL sweep from m-1 down to l.
        p = d[m];
        double c = 1.0, c2 = c, c3 = c;
        const double el1 = e[l + 1];
        double s = 0.0, s2 = 0.0;
        for (std::size_t i = m; i-- > l;) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = std::hypot(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);
          for (std::size_t k = 0; k < n; ++k) {
            h = v(k, i + 1);
            v(k, i + 1) = s * v(k, i) + c * h;
            v(k, i) = c * v(k, i) - s * h;
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::fabs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }

  // Sort ascending, carrying vectors along (selection sort: n is small).
  for (std::size_t i = 0; i + 1 < n; ++i) {
    std::size_t k = i;
    double p = d[i];
    for (std::size_t j = i + 1; j < n; ++j)
      if (d[j] < p) {
        k = j;
        p = d[j];
      }
    if (k != i) {
      d[k] = d[i];
      d[i] = p;
      for (std::size_t j = 0; j < n; ++j) std::swap(v(j, i), v(j, k));
    }
  }
}

}  // namespace

SymEigenResult symEigen(const Matrix& a) {
  SLIM_REQUIRE(a.square(), "symEigen: matrix must be square");
  SLIM_REQUIRE(a.rows() > 0, "symEigen: empty matrix");
  const std::size_t n = a.rows();

  SymEigenResult r;
  r.vectors = a;  // tred2/tql2 overwrite this with the eigenvectors
  // Symmetrize from the lower triangle so callers may pass either triangle
  // filled (mirrors LAPACK's uplo='L' contract).
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) r.vectors(i, j) = r.vectors(j, i);

  std::vector<double> d(n), e(n);
  tred2(r.vectors, d, e);
  tql2(r.vectors, d, e);

  r.values = Vector(n);
  for (std::size_t i = 0; i < n; ++i) r.values[i] = d[i];
  return r;
}

double eigenResidual(const Matrix& a, const SymEigenResult& r) {
  const std::size_t n = a.rows();
  double worst = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (std::size_t k = 0; k < n; ++k) av += a(i, k) * r.vectors(k, j);
      worst = std::max(worst, std::fabs(av - r.values[j] * r.vectors(i, j)));
    }
  }
  return worst;
}

double orthogonalityError(const Matrix& x) {
  const std::size_t n = x.cols();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < x.rows(); ++k) s += x(k, i) * x(k, j);
      worst = std::max(worst, std::fabs(s - (i == j ? 1.0 : 0.0)));
    }
  return worst;
}

}  // namespace slim::eigenx
