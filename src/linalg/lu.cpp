#include "linalg/lu.hpp"

#include <cmath>

#include "support/require.hpp"

namespace slim::linalg {

LuFactorization::LuFactorization(const Matrix& a) : lu_(a) {
  SLIM_REQUIRE(a.square(), "LU: matrix must be square");
  const std::size_t n = a.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = static_cast<int>(i);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |value| in column k at or below the diagonal.
    std::size_t piv = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    SLIM_REQUIRE(best > 0.0, "LU: matrix is singular");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(piv, j), lu_(k, j));
      std::swap(perm_[piv], perm_[k]);
      pivotSign_ = -pivotSign_;
    }
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) * inv;
      lu_(i, k) = m;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  SLIM_REQUIRE(b.size() == n, "LU solve: rhs size mismatch");
  Vector x(n);
  // Forward substitution with permutation.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double s = x[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= lu_(i, j) * x[j];
    x[i] = s / lu_(i, i);
  }
  return x;
}

Matrix LuFactorization::solve(const Matrix& b) const {
  const std::size_t n = lu_.rows();
  SLIM_REQUIRE(b.rows() == n, "LU solve: rhs rows mismatch");
  Matrix x(n, b.cols());
  Vector col(n), sol(n);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
    sol = solve(col);
    for (std::size_t i = 0; i < n; ++i) x(i, j) = sol[i];
  }
  return x;
}

double LuFactorization::determinant() const noexcept {
  double d = pivotSign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

}  // namespace slim::linalg
