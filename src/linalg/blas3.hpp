#pragma once
// BLAS level-3 style kernels (matrix-matrix).
//
// gemm is the Eq. 9 reconstruction kernel (Z = Ytilde * X^T, ~2n^3 flops) and
// the bundled CPV-propagation kernel (Sec. III-B "single matrix x matrix
// operation ... including all sites").  syrk is the Eq. 10 kernel
// (Z = Y * Y^T, ~n^3 flops) that constitutes the paper's headline saving.

#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"

namespace slim::linalg {

/// C := A * B.  Shapes: A (m x k), B (k x n), C (m x n); C is overwritten.
void gemm(Flavor flavor, const Matrix& a, const Matrix& b, Matrix& c);

/// Panel form over row-block views (the pattern-blocked engine's kernel);
/// numerically identical to the Matrix overload for any row partition.
void gemm(Flavor flavor, ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// C := A * B^T.  Shapes: A (m x k), B (n x k), C (m x n); C is overwritten.
/// This is the exact Eq. 9 operation with A = X e^{Lambda t} and B = X.
void gemmNT(Flavor flavor, const Matrix& a, const Matrix& b, Matrix& c);

/// Panel form of gemmNT over row-block views.
void gemmNT(Flavor flavor, ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// C := Y * Y^T (symmetric rank-k update, full result stored).
/// Shapes: Y (n x k), C (n x n); C is overwritten.
/// The Opt flavor computes only the upper triangle and mirrors it
/// (~n^2 k flops instead of ~2 n^2 k) — the dsyrk trick of Eq. 10.
/// The Naive flavor runs the full gemmNT(A=Y, B=Y) loop nest, i.e. what a
/// code base without a symmetric kernel would do.
void syrk(Flavor flavor, const Matrix& y, Matrix& c);

// --- SIMD-dispatched forms ----------------------------------------------
// Same shapes and checks as the Flavor overloads, routed through a
// runtime-selected kernel table (linalg/simd.hpp).  With the scalar table
// these are bit-identical to the Flavor::Opt overloads (same machine code);
// AVX tables agree to floating-point reassociation.

void gemm(const SimdKernels& kern, ConstMatrixView a, ConstMatrixView b,
          MatrixView c);
void gemmNT(const SimdKernels& kern, ConstMatrixView a, ConstMatrixView b,
            MatrixView c);
void syrk(const SimdKernels& kern, const Matrix& y, Matrix& c);

}  // namespace slim::linalg
