#include "linalg/diag.hpp"

#include "support/require.hpp"

namespace slim::linalg {

void scaleSandwich(const Matrix& a, std::span<const double> l,
                   std::span<const double> r, Matrix& b) {
  SLIM_REQUIRE(l.size() == a.rows() && r.size() == a.cols(),
               "scaleSandwich: diagonal size mismatch");
  SLIM_REQUIRE(b.rows() == a.rows() && b.cols() == a.cols(),
               "scaleSandwich: output shape mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double li = l[i];
    for (std::size_t j = 0; j < a.cols(); ++j) b(i, j) = li * a(i, j) * r[j];
  }
}

void scaleCols(const Matrix& a, std::span<const double> d, Matrix& b) {
  scaleCols(a.view(), d, b.view());
}

void scaleCols(ConstMatrixView a, std::span<const double> d, MatrixView b) {
  SLIM_REQUIRE(d.size() == a.cols(), "scaleCols: diagonal size mismatch");
  SLIM_REQUIRE(b.rows() == a.rows() && b.cols() == a.cols(),
               "scaleCols: output shape mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) b(i, j) = a(i, j) * d[j];
}

void scaleRows(std::span<const double> d, const Matrix& a, Matrix& b) {
  SLIM_REQUIRE(d.size() == a.rows(), "scaleRows: diagonal size mismatch");
  SLIM_REQUIRE(b.rows() == a.rows() && b.cols() == a.cols(),
               "scaleRows: output shape mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double di = d[i];
    for (std::size_t j = 0; j < a.cols(); ++j) b(i, j) = di * a(i, j);
  }
}

}  // namespace slim::linalg
