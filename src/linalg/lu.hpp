#pragma once
// Dense LU factorization with partial pivoting.  Not a hot path: used by the
// Pade matrix-exponential oracle (tests/benches) and available for generic
// linear solves.

#include "linalg/matrix.hpp"

namespace slim::linalg {

/// LU factorization with partial pivoting, P*A = L*U.
class LuFactorization {
 public:
  /// Factor a square matrix.  Throws std::invalid_argument if singular to
  /// working precision.
  explicit LuFactorization(const Matrix& a);

  /// Solve A x = b for a single right-hand side.
  Vector solve(const Vector& b) const;

  /// Solve A X = B column-wise (B is n x m).
  Matrix solve(const Matrix& b) const;

  /// Determinant (product of U diagonal with pivot sign).
  double determinant() const noexcept;

 private:
  Matrix lu_;
  std::vector<int> perm_;
  int pivotSign_ = 1;
};

}  // namespace slim::linalg
