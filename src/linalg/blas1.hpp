#pragma once
// BLAS level-1 style kernels (vector-vector).  These are cheap relative to
// the level-2/3 kernels so only one implementation is provided; they are
// shared by both engine flavors.

#include <cstddef>
#include <span>

namespace slim::linalg {

/// Dot product sum_i x_i * y_i.  Sizes must match.
double dot(std::span<const double> x, std::span<const double> y);

/// y += a * x.  Sizes must match.
void axpy(double a, std::span<const double> x, std::span<double> y);

/// x *= a.
void scal(double a, std::span<double> x) noexcept;

/// Euclidean norm with overflow-safe scaling.
double nrm2(std::span<const double> x) noexcept;

/// Sum of absolute values.
double asum(std::span<const double> x) noexcept;

/// Index of the element with the largest absolute value (0 if empty).
std::size_t iamax(std::span<const double> x) noexcept;

/// Copy x into y.  Sizes must match.
void copy(std::span<const double> x, std::span<double> y);

/// Element-wise product: z_i = x_i * y_i.  Sizes must match.
/// (Used by Felsenstein pruning to combine child conditional vectors.)
void hadamard(std::span<const double> x, std::span<const double> y,
              std::span<double> z);

/// In-place element-wise product: y_i *= x_i.  Sizes must match.
void hadamardInPlace(std::span<const double> x, std::span<double> y);

}  // namespace slim::linalg
