// AVX-512 (F/DQ/VL) kernel table.  Compiled with the AVX-512 ISA flags only
// in this translation unit (CMake defines SLIM_SIMD_AVX512 alongside them);
// reachable exclusively through the dispatch table after cpuid checks, and
// includes no project header with inline bodies besides simd.hpp — see
// kernels_avx2.cpp for the rationale.
//
// n = 61 (sense codons) is 7 full zmm lanes of 8 plus a 5-lane masked tail;
// the masked tail is processed with the same instruction sequence every
// call, so results stay bit-identical across any row partition.

#include "linalg/simd.hpp"

#if defined(SLIM_SIMD_AVX512) && defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace slim::linalg::detail {

namespace {

inline __mmask8 tailMask(std::size_t n) noexcept {
  return static_cast<__mmask8>((1u << (n & 7)) - 1u);
}

// 4-accumulator dot; _mm512_reduce_add_pd is a fixed reduction tree.
inline double dotAvx512(const double* SLIM_RESTRICT x,
                        const double* SLIM_RESTRICT y,
                        std::size_t kk) noexcept {
  __m512d s0 = _mm512_setzero_pd(), s1 = _mm512_setzero_pd();
  __m512d s2 = _mm512_setzero_pd(), s3 = _mm512_setzero_pd();
  std::size_t k = 0;
  for (; k + 32 <= kk; k += 32) {
    s0 = _mm512_fmadd_pd(_mm512_loadu_pd(x + k), _mm512_loadu_pd(y + k), s0);
    s1 = _mm512_fmadd_pd(_mm512_loadu_pd(x + k + 8), _mm512_loadu_pd(y + k + 8),
                         s1);
    s2 = _mm512_fmadd_pd(_mm512_loadu_pd(x + k + 16),
                         _mm512_loadu_pd(y + k + 16), s2);
    s3 = _mm512_fmadd_pd(_mm512_loadu_pd(x + k + 24),
                         _mm512_loadu_pd(y + k + 24), s3);
  }
  for (; k + 8 <= kk; k += 8)
    s0 = _mm512_fmadd_pd(_mm512_loadu_pd(x + k), _mm512_loadu_pd(y + k), s0);
  if (k < kk) {
    const __mmask8 m = tailMask(kk);
    s1 = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(m, x + k),
                         _mm512_maskz_loadu_pd(m, y + k), s1);
  }
  return _mm512_reduce_add_pd(
      _mm512_add_pd(_mm512_add_pd(s0, s1), _mm512_add_pd(s2, s3)));
}

void gemmAvx512(const double* SLIM_RESTRICT a, const double* SLIM_RESTRICT b,
                double* SLIM_RESTRICT c, std::size_t m, std::size_t kk,
                std::size_t n) {
  const std::size_t nv = n & ~std::size_t{7};
  const __mmask8 tm = tailMask(n);
  for (std::size_t i = 0; i < m; ++i) {
    double* SLIM_RESTRICT crow = c + i * n;
    const __m512d zero = _mm512_setzero_pd();
    for (std::size_t j = 0; j < nv; j += 8) _mm512_storeu_pd(crow + j, zero);
    if (nv < n) _mm512_mask_storeu_pd(crow + nv, tm, zero);

    const double* SLIM_RESTRICT arow = a + i * kk;
    std::size_t k = 0;
    for (; k + 4 <= kk; k += 4) {
      const __m512d a0 = _mm512_set1_pd(arow[k]);
      const __m512d a1 = _mm512_set1_pd(arow[k + 1]);
      const __m512d a2 = _mm512_set1_pd(arow[k + 2]);
      const __m512d a3 = _mm512_set1_pd(arow[k + 3]);
      const double* SLIM_RESTRICT b0 = b + k * n;
      const double* SLIM_RESTRICT b1 = b + (k + 1) * n;
      const double* SLIM_RESTRICT b2 = b + (k + 2) * n;
      const double* SLIM_RESTRICT b3 = b + (k + 3) * n;
      for (std::size_t j = 0; j < nv; j += 8) {
        __m512d cj = _mm512_loadu_pd(crow + j);
        cj = _mm512_fmadd_pd(a0, _mm512_loadu_pd(b0 + j), cj);
        cj = _mm512_fmadd_pd(a1, _mm512_loadu_pd(b1 + j), cj);
        cj = _mm512_fmadd_pd(a2, _mm512_loadu_pd(b2 + j), cj);
        cj = _mm512_fmadd_pd(a3, _mm512_loadu_pd(b3 + j), cj);
        _mm512_storeu_pd(crow + j, cj);
      }
      if (nv < n) {
        __m512d cj = _mm512_maskz_loadu_pd(tm, crow + nv);
        cj = _mm512_fmadd_pd(a0, _mm512_maskz_loadu_pd(tm, b0 + nv), cj);
        cj = _mm512_fmadd_pd(a1, _mm512_maskz_loadu_pd(tm, b1 + nv), cj);
        cj = _mm512_fmadd_pd(a2, _mm512_maskz_loadu_pd(tm, b2 + nv), cj);
        cj = _mm512_fmadd_pd(a3, _mm512_maskz_loadu_pd(tm, b3 + nv), cj);
        _mm512_mask_storeu_pd(crow + nv, tm, cj);
      }
    }
    for (; k < kk; ++k) {
      const __m512d ak = _mm512_set1_pd(arow[k]);
      const double* SLIM_RESTRICT brow = b + k * n;
      for (std::size_t j = 0; j < nv; j += 8) {
        __m512d cj = _mm512_loadu_pd(crow + j);
        cj = _mm512_fmadd_pd(ak, _mm512_loadu_pd(brow + j), cj);
        _mm512_storeu_pd(crow + j, cj);
      }
      if (nv < n) {
        __m512d cj = _mm512_maskz_loadu_pd(tm, crow + nv);
        cj = _mm512_fmadd_pd(ak, _mm512_maskz_loadu_pd(tm, brow + nv), cj);
        _mm512_mask_storeu_pd(crow + nv, tm, cj);
      }
    }
  }
}

void gemmNTAvx512(const double* SLIM_RESTRICT a, const double* SLIM_RESTRICT b,
                  double* SLIM_RESTRICT c, std::size_t m, std::size_t kk,
                  std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* SLIM_RESTRICT arow = a + i * kk;
    double* SLIM_RESTRICT crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j)
      crow[j] = dotAvx512(arow, b + j * kk, kk);
  }
}

void syrkAvx512(const double* SLIM_RESTRICT y, double* SLIM_RESTRICT c,
                std::size_t n, std::size_t kk) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* SLIM_RESTRICT yi = y + i * kk;
    for (std::size_t j = i; j < n; ++j) {
      const double t = dotAvx512(yi, y + j * kk, kk);
      c[i * n + j] = t;
      c[j * n + i] = t;
    }
  }
}

void syrkSandwichAvx512(const double* SLIM_RESTRICT y,
                        const double* SLIM_RESTRICT l,
                        const double* SLIM_RESTRICT r, double* SLIM_RESTRICT p,
                        std::size_t n, std::size_t kk) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* SLIM_RESTRICT yi = y + i * kk;
    for (std::size_t j = i; j < n; ++j) {
      const double t = dotAvx512(yi, y + j * kk, kk);
      const double pij = l[i] * t * r[j];
      const double pji = l[j] * t * r[i];
      p[i * n + j] = pij < 0.0 ? 0.0 : pij;
      p[j * n + i] = pji < 0.0 ? 0.0 : pji;
    }
  }
}

void gemmNTSandwichAvx512(const double* SLIM_RESTRICT a,
                          const double* SLIM_RESTRICT b,
                          const double* SLIM_RESTRICT l,
                          const double* SLIM_RESTRICT r,
                          double* SLIM_RESTRICT c, std::size_t m,
                          std::size_t kk, std::size_t n, bool clampNegative) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* SLIM_RESTRICT arow = a + i * kk;
    double* SLIM_RESTRICT crow = c + i * n;
    const double li = l[i];
    for (std::size_t j = 0; j < n; ++j) {
      const double v = li * dotAvx512(arow, b + j * kk, kk) * r[j];
      crow[j] = clampNegative && v < 0.0 ? 0.0 : v;
    }
  }
}

constexpr SimdKernels kAvx512Kernels{
    "avx512",     gemmAvx512,         gemmNTAvx512,
    syrkAvx512,   syrkSandwichAvx512, gemmNTSandwichAvx512,
};

}  // namespace

const SimdKernels* avx512KernelTable() noexcept { return &kAvx512Kernels; }

}  // namespace slim::linalg::detail

#else  // !SLIM_SIMD_AVX512

namespace slim::linalg::detail {
const SimdKernels* avx512KernelTable() noexcept { return nullptr; }
}  // namespace slim::linalg::detail

#endif
