#pragma once
// Runtime-dispatched SIMD kernel layer (AVX2 / AVX-512) behind Flavor::Opt.
//
// The scalar Opt kernels in blas3.cpp are compiled for the generic target
// (SSE2 on x86-64), so the vectorizer leaves half the machine idle on any
// AVX-capable host.  This layer provides hand-vectorized variants of the
// three hot likelihood panels — the saxpy-form panel gemm, the dot-form
// gemmNT/syrk, and the eigen-reconstruction with the Pi^{-1/2}/Pi^{1/2}
// sandwich *fused* into the rank-update loop — selected once at evaluator
// construction through a cpuid-checked function-pointer table.
//
// Contract (asserted by tests/simd_kernel_test.cpp):
//   * SimdLevel::Scalar is the bit-exact reference: its table entries are
//     the same code the Flavor::Opt kernels run, and the fused scalar
//     reconstruction reproduces the unfused syrk + scaleSandwich + clamp
//     sequence bit for bit.
//   * Every SIMD level is deterministic per row of output — results are
//     bit-identical across thread counts and pattern-block sizes — and
//     agrees with scalar to <= 1e-10 relative on the log-likelihood.
//
// This header is intentionally lean (no inline function bodies beyond the
// POD struct): it is included by translation units compiled with wider ISA
// flags, and keeping all code out-of-line prevents the linker from ever
// picking an AVX-compiled copy of a shared inline function for generic code.

#include <cstddef>
#include <string_view>

// Same definition as linalg/kernels.hpp (identical token sequence, so both
// headers can appear in one TU); repeated here so the ISA-flagged kernel
// TUs need no other project header.
#ifndef SLIM_RESTRICT
#if defined(__GNUC__) || defined(__clang__)
#define SLIM_RESTRICT __restrict__
#else
#define SLIM_RESTRICT
#endif
#endif

namespace slim::linalg {

/// What the user asked for (`simd =` ctl key / LikelihoodOptions::simd).
enum class SimdMode {
  Auto,    ///< Best level compiled in AND supported by this CPU.
  Scalar,  ///< Force the scalar reference kernels.
  Avx2,    ///< Require AVX2+FMA; evaluator construction fails if unavailable.
  Avx512,  ///< Require AVX-512 F/DQ/VL; fails if unavailable.
};

/// What the dispatch actually selected (recorded in reports).
enum class SimdLevel {
  Scalar,
  Avx2,
  Avx512,
};

const char* simdModeName(SimdMode m) noexcept;
const char* simdLevelName(SimdLevel l) noexcept;

/// Parse a ctl-file value ("auto", "scalar", "avx2", "avx512").  Returns
/// false on unknown text (out untouched).
bool parseSimdMode(std::string_view text, SimdMode& out) noexcept;

/// One ISA's kernel set.  All matrices are dense row-major and contiguous
/// (leading dimension == column count), the layout every panel and
/// propagator in the engine uses.  Row i of each output depends only on the
/// operands' row i (gemm/gemmNT) or on the full inputs in a fixed
/// accumulation order (syrk), so any row-partition of a call produces
/// bit-identical results — the property the pattern-blocked engine's
/// thread-count/block-size invariance rests on.
struct SimdKernels {
  const char* name;

  /// c[m x n] := a[m x k] * b[k x n]  (saxpy form, streams rows of b and c).
  void (*gemm)(const double* a, const double* b, double* c, std::size_t m,
               std::size_t k, std::size_t n);

  /// c[m x n] := a[m x k] * b[n x k]^T  (dot form over contiguous rows).
  void (*gemmNT)(const double* a, const double* b, double* c, std::size_t m,
                 std::size_t k, std::size_t n);

  /// c[n x n] := y[n x k] * y^T, upper triangle computed once and mirrored.
  void (*syrk)(const double* y, double* c, std::size_t n, std::size_t k);

  /// Fused Eq. 10 reconstruction: p := diag(l) (Y Y^T) diag(r) with
  /// roundoff negatives clamped to 0, the Pi sandwich and clamp folded into
  /// the rank-update loop (each dot is written twice, pre-scaled, instead
  /// of mirror + two O(n^2) scaling passes).  l = Pi^{-1/2}, r = Pi^{1/2}.
  void (*syrkSandwich)(const double* y, const double* l, const double* r,
                       double* p, std::size_t n, std::size_t k);

  /// Fused Eq. 9 form: c[m x n] := diag(l) (A B^T) diag(r); clampNegative
  /// selects the P(t) policy (on) or the dP/dt policy (off — derivatives
  /// legitimately carry negative entries).
  void (*gemmNTSandwich)(const double* a, const double* b, const double* l,
                         const double* r, double* c, std::size_t m,
                         std::size_t k, std::size_t n, bool clampNegative);
};

/// Whether this binary contains kernels for the level (compile-time gate:
/// x86-64 target and a compiler accepting the ISA flags).
bool simdLevelCompiled(SimdLevel level) noexcept;

/// Compiled in AND supported by the running CPU.
bool simdLevelAvailable(SimdLevel level) noexcept;

/// Best available level (what SimdMode::Auto resolves to).
SimdLevel detectSimdLevel() noexcept;

/// Resolve a requested mode.  Auto picks detectSimdLevel(); an explicit
/// level throws std::invalid_argument when the binary or CPU cannot run it
/// (so a ctl file demanding avx512 fails loudly instead of silently
/// downgrading).
SimdLevel resolveSimdLevel(SimdMode mode);

/// The kernel table for a level; level must be available.
const SimdKernels& simdKernels(SimdLevel level);

namespace detail {
/// Implemented by kernels_avx2.cpp / kernels_avx512.cpp (the only TUs built
/// with wider ISA flags); each returns nullptr when its ISA was not
/// compiled in (non-x86 target or compiler without the flags).
const SimdKernels* avx2KernelTable() noexcept;
const SimdKernels* avx512KernelTable() noexcept;
}  // namespace detail

}  // namespace slim::linalg
