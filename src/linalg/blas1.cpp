#include "linalg/blas1.hpp"

#include <cmath>

#include "support/require.hpp"

namespace slim::linalg {

double dot(std::span<const double> x, std::span<const double> y) {
  SLIM_REQUIRE(x.size() == y.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  SLIM_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void scal(double a, std::span<double> x) noexcept {
  for (double& v : x) v *= a;
}

double nrm2(std::span<const double> x) noexcept {
  // Two-pass scaled norm: immune to overflow/underflow of squared terms.
  double maxAbs = 0.0;
  for (double v : x) maxAbs = std::max(maxAbs, std::fabs(v));
  if (maxAbs == 0.0) return 0.0;
  double s = 0.0;
  for (double v : x) {
    const double t = v / maxAbs;
    s += t * t;
  }
  return maxAbs * std::sqrt(s);
}

double asum(std::span<const double> x) noexcept {
  double s = 0.0;
  for (double v : x) s += std::fabs(v);
  return s;
}

std::size_t iamax(std::span<const double> x) noexcept {
  std::size_t best = 0;
  double bestAbs = -1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = std::fabs(x[i]);
    if (a > bestAbs) {
      bestAbs = a;
      best = i;
    }
  }
  return best;
}

void copy(std::span<const double> x, std::span<double> y) {
  SLIM_REQUIRE(x.size() == y.size(), "copy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

void hadamard(std::span<const double> x, std::span<const double> y,
              std::span<double> z) {
  SLIM_REQUIRE(x.size() == y.size() && x.size() == z.size(),
               "hadamard: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] * y[i];
}

void hadamardInPlace(std::span<const double> x, std::span<double> y) {
  SLIM_REQUIRE(x.size() == y.size(), "hadamard: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] *= x[i];
}

}  // namespace slim::linalg
