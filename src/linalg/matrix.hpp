#pragma once
// Dense row-major matrix and vector types used throughout slimcodeml.
//
// These are deliberately minimal: contiguous storage, bounds-checked factory
// functions, and unchecked element access on the hot path.  All numerical
// kernels live in blas1/blas2/blas3.hpp so that the baseline-vs-optimized
// kernel comparison (the subject of the SlimCodeML paper) is isolated from
// the container type.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <type_traits>
#include <vector>

#include "support/require.hpp"

namespace slim::linalg {

/// Dense vector of doubles. Thin wrapper over std::vector with a fixed size
/// discipline (sized at construction; resize only via assign()).
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& operator[](std::size_t i) noexcept { return data_[i]; }
  double operator[](std::size_t i) const noexcept { return data_[i]; }

  /// Bounds-checked access (throws on out-of-range).
  double& at(std::size_t i) { SLIM_REQUIRE(i < size(), "vector index"); return data_[i]; }
  double at(std::size_t i) const { SLIM_REQUIRE(i < size(), "vector index"); return data_[i]; }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  std::span<double> span() noexcept { return {data_.data(), data_.size()}; }
  std::span<const double> span() const noexcept { return {data_.data(), data_.size()}; }

  void fill(double v) noexcept { for (auto& x : data_) x = v; }
  void assign(std::size_t n, double v) { data_.assign(n, v); }

  auto begin() noexcept { return data_.begin(); }
  auto end() noexcept { return data_.end(); }
  auto begin() const noexcept { return data_.begin(); }
  auto end() const noexcept { return data_.end(); }

  friend bool operator==(const Vector&, const Vector&) = default;

 private:
  std::vector<double> data_;
};

/// Non-owning view of a contiguous row block of a row-major matrix (stride
/// equals cols).  Used by the pattern-blocked likelihood engine to hand
/// panels of conditional probability vectors to the level-3 kernels without
/// copying.  The referenced storage must outlive the view.  T is double
/// (mutable view) or const double (read-only view).
template <class T>
class BasicMatrixView {
 public:
  BasicMatrixView() = default;
  BasicMatrixView(T* data, std::size_t rows, std::size_t cols) noexcept
      : data_(data), rows_(rows), cols_(cols) {}

  /// A read-only view converts implicitly from a mutable one.
  template <class U>
    requires(std::is_const_v<T> && std::is_same_v<U, std::remove_const_t<T>>)
  /* implicit */ BasicMatrixView(BasicMatrixView<U> v) noexcept
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }

  T& operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }
  T* data() const noexcept { return data_; }
  T* row(std::size_t i) const noexcept { return data_ + i * cols_; }
  std::span<T> rowSpan(std::size_t i) const noexcept {
    return {row(i), cols_};
  }
  std::span<T> span() const noexcept { return {data_, size()}; }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0, cols_ = 0;
};

using MatrixView = BasicMatrixView<double>;
using ConstMatrixView = BasicMatrixView<const double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// Square matrix with d on the diagonal and 0 elsewhere.
  static Matrix diagonal(std::span<const double> d) {
    Matrix m(d.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
    return m;
  }

  /// Build from a nested initializer list; all rows must have equal length.
  static Matrix fromRows(std::initializer_list<std::initializer_list<double>> rows) {
    const std::size_t r = rows.size();
    const std::size_t c = r == 0 ? 0 : rows.begin()->size();
    Matrix m(r, c);
    std::size_t i = 0;
    for (const auto& row : rows) {
      SLIM_REQUIRE(row.size() == c, "ragged initializer");
      std::size_t j = 0;
      for (double v : row) m(i, j++) = v;
      ++i;
    }
    return m;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t i, std::size_t j) noexcept { return data_[i * cols_ + j]; }
  double operator()(std::size_t i, std::size_t j) const noexcept { return data_[i * cols_ + j]; }

  /// Bounds-checked access (throws on out-of-range).
  double& at(std::size_t i, std::size_t j) {
    SLIM_REQUIRE(i < rows_ && j < cols_, "matrix index");
    return data_[i * cols_ + j];
  }
  double at(std::size_t i, std::size_t j) const {
    SLIM_REQUIRE(i < rows_ && j < cols_, "matrix index");
    return data_[i * cols_ + j];
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Pointer to the start of row i (row-major contiguous).
  double* row(std::size_t i) noexcept { return data_.data() + i * cols_; }
  const double* row(std::size_t i) const noexcept { return data_.data() + i * cols_; }

  std::span<double> rowSpan(std::size_t i) noexcept { return {row(i), cols_}; }
  std::span<const double> rowSpan(std::size_t i) const noexcept { return {row(i), cols_}; }

  void fill(double v) noexcept { for (auto& x : data_) x = v; }

  /// View of the whole matrix.
  MatrixView view() noexcept { return {data_.data(), rows_, cols_}; }
  ConstMatrixView view() const noexcept { return {data_.data(), rows_, cols_}; }

  /// View of rows [first, first + count); the block is contiguous because
  /// storage is row-major.
  MatrixView rowBlock(std::size_t first, std::size_t count) noexcept {
    SLIM_REQUIRE(first + count <= rows_, "rowBlock out of range");
    return {data_.data() + first * cols_, count, cols_};
  }
  ConstMatrixView rowBlock(std::size_t first, std::size_t count) const {
    SLIM_REQUIRE(first + count <= rows_, "rowBlock out of range");
    return {data_.data() + first * cols_, count, cols_};
  }

  /// Reshape to (rows, cols), reusing storage; contents are zeroed.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Out-of-place transpose.
Matrix transposed(const Matrix& a);

/// Transpose a into b (b must be pre-shaped cols x rows; no allocation).
void transposeInto(const Matrix& a, Matrix& b);

/// max_ij |a_ij - b_ij|; requires equal shapes.
double maxAbsDiff(const Matrix& a, const Matrix& b);

/// max_i |a_i - b_i|; requires equal sizes.
double maxAbsDiff(const Vector& a, const Vector& b);

/// True if every element of a is finite.
bool allFinite(const Matrix& a) noexcept;
bool allFinite(std::span<const double> a) noexcept;

}  // namespace slim::linalg
