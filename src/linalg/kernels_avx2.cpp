// AVX2+FMA kernel table.  This translation unit is the only place AVX2
// instructions are emitted (CMake compiles it with -mavx2 -mfma when the
// compiler supports them and defines SLIM_SIMD_AVX2); everything it defines
// is reached exclusively through the function-pointer table, which
// simd.cpp hands out only after __builtin_cpu_supports("avx2") confirms the
// host can execute it.  The file deliberately includes no project header
// with inline function bodies besides the lean simd.hpp, so no AVX-compiled
// copy of a shared inline function can leak into generic code via the
// linker.
//
// Determinism: gemm computes each output row from a fixed-order k-loop over
// fixed-width column chunks, and the dot kernels accumulate in four fixed
// vector partials reduced in a fixed tree — results depend only on operand
// values, never on how callers partition rows across threads or blocks.

#include "linalg/simd.hpp"

#if defined(SLIM_SIMD_AVX2) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace slim::linalg::detail {

namespace {

// Sum the four lanes: (v0 + v2) + (v1 + v3) — fixed reduction tree.
inline double hsum4(__m256d v) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

// 4-accumulator dot over contiguous rows (k is 61 for codon panels).
inline double dotAvx2(const double* SLIM_RESTRICT x,
                      const double* SLIM_RESTRICT y, std::size_t kk) noexcept {
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  __m256d s2 = _mm256_setzero_pd(), s3 = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 16 <= kk; k += 16) {
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + k), _mm256_loadu_pd(y + k), s0);
    s1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + k + 4), _mm256_loadu_pd(y + k + 4),
                         s1);
    s2 = _mm256_fmadd_pd(_mm256_loadu_pd(x + k + 8), _mm256_loadu_pd(y + k + 8),
                         s2);
    s3 = _mm256_fmadd_pd(_mm256_loadu_pd(x + k + 12),
                         _mm256_loadu_pd(y + k + 12), s3);
  }
  for (; k + 4 <= kk; k += 4)
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + k), _mm256_loadu_pd(y + k), s0);
  double t = hsum4(_mm256_add_pd(_mm256_add_pd(s0, s1), _mm256_add_pd(s2, s3)));
  for (; k < kk; ++k) t += x[k] * y[k];
  return t;
}

void gemmAvx2(const double* SLIM_RESTRICT a, const double* SLIM_RESTRICT b,
              double* SLIM_RESTRICT c, std::size_t m, std::size_t kk,
              std::size_t n) {
  const std::size_t nv = n & ~std::size_t{3};
  for (std::size_t i = 0; i < m; ++i) {
    double* SLIM_RESTRICT crow = c + i * n;
    std::size_t j = 0;
    const __m256d zero = _mm256_setzero_pd();
    for (; j < nv; j += 4) _mm256_storeu_pd(crow + j, zero);
    for (; j < n; ++j) crow[j] = 0.0;

    const double* SLIM_RESTRICT arow = a + i * kk;
    std::size_t k = 0;
    for (; k + 4 <= kk; k += 4) {
      const __m256d a0 = _mm256_set1_pd(arow[k]);
      const __m256d a1 = _mm256_set1_pd(arow[k + 1]);
      const __m256d a2 = _mm256_set1_pd(arow[k + 2]);
      const __m256d a3 = _mm256_set1_pd(arow[k + 3]);
      const double* SLIM_RESTRICT b0 = b + k * n;
      const double* SLIM_RESTRICT b1 = b + (k + 1) * n;
      const double* SLIM_RESTRICT b2 = b + (k + 2) * n;
      const double* SLIM_RESTRICT b3 = b + (k + 3) * n;
      for (j = 0; j < nv; j += 4) {
        __m256d cj = _mm256_loadu_pd(crow + j);
        cj = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b0 + j), cj);
        cj = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b1 + j), cj);
        cj = _mm256_fmadd_pd(a2, _mm256_loadu_pd(b2 + j), cj);
        cj = _mm256_fmadd_pd(a3, _mm256_loadu_pd(b3 + j), cj);
        _mm256_storeu_pd(crow + j, cj);
      }
      for (; j < n; ++j)
        crow[j] += arow[k] * b0[j] + arow[k + 1] * b1[j] + arow[k + 2] * b2[j] +
                   arow[k + 3] * b3[j];
    }
    for (; k < kk; ++k) {
      const __m256d ak = _mm256_set1_pd(arow[k]);
      const double* SLIM_RESTRICT brow = b + k * n;
      for (j = 0; j < nv; j += 4) {
        __m256d cj = _mm256_loadu_pd(crow + j);
        cj = _mm256_fmadd_pd(ak, _mm256_loadu_pd(brow + j), cj);
        _mm256_storeu_pd(crow + j, cj);
      }
      for (; j < n; ++j) crow[j] += arow[k] * brow[j];
    }
  }
}

void gemmNTAvx2(const double* SLIM_RESTRICT a, const double* SLIM_RESTRICT b,
                double* SLIM_RESTRICT c, std::size_t m, std::size_t kk,
                std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* SLIM_RESTRICT arow = a + i * kk;
    double* SLIM_RESTRICT crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j)
      crow[j] = dotAvx2(arow, b + j * kk, kk);
  }
}

void syrkAvx2(const double* SLIM_RESTRICT y, double* SLIM_RESTRICT c,
              std::size_t n, std::size_t kk) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* SLIM_RESTRICT yi = y + i * kk;
    for (std::size_t j = i; j < n; ++j) {
      const double t = dotAvx2(yi, y + j * kk, kk);
      c[i * n + j] = t;
      c[j * n + i] = t;
    }
  }
}

void syrkSandwichAvx2(const double* SLIM_RESTRICT y,
                      const double* SLIM_RESTRICT l,
                      const double* SLIM_RESTRICT r, double* SLIM_RESTRICT p,
                      std::size_t n, std::size_t kk) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* SLIM_RESTRICT yi = y + i * kk;
    for (std::size_t j = i; j < n; ++j) {
      const double t = dotAvx2(yi, y + j * kk, kk);
      const double pij = l[i] * t * r[j];
      const double pji = l[j] * t * r[i];
      p[i * n + j] = pij < 0.0 ? 0.0 : pij;
      p[j * n + i] = pji < 0.0 ? 0.0 : pji;
    }
  }
}

void gemmNTSandwichAvx2(const double* SLIM_RESTRICT a,
                        const double* SLIM_RESTRICT b,
                        const double* SLIM_RESTRICT l,
                        const double* SLIM_RESTRICT r, double* SLIM_RESTRICT c,
                        std::size_t m, std::size_t kk, std::size_t n,
                        bool clampNegative) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* SLIM_RESTRICT arow = a + i * kk;
    double* SLIM_RESTRICT crow = c + i * n;
    const double li = l[i];
    for (std::size_t j = 0; j < n; ++j) {
      const double v = li * dotAvx2(arow, b + j * kk, kk) * r[j];
      crow[j] = clampNegative && v < 0.0 ? 0.0 : v;
    }
  }
}

constexpr SimdKernels kAvx2Kernels{
    "avx2",       gemmAvx2,         gemmNTAvx2,
    syrkAvx2,     syrkSandwichAvx2, gemmNTSandwichAvx2,
};

}  // namespace

const SimdKernels* avx2KernelTable() noexcept { return &kAvx2Kernels; }

}  // namespace slim::linalg::detail

#else  // !SLIM_SIMD_AVX2

namespace slim::linalg::detail {
const SimdKernels* avx2KernelTable() noexcept { return nullptr; }
}  // namespace slim::linalg::detail

#endif
