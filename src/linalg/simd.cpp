#include "linalg/simd.hpp"

#include <stdexcept>
#include <string>

#include "linalg/kernels.hpp"

namespace slim::linalg {

namespace {

// --- scalar reference kernels -------------------------------------------
//
// These are the Flavor::Opt loop nests of blas3.cpp on raw pointers (the
// Opt overloads delegate here, so "scalar table" and "Opt flavor" are the
// same machine code).  The fused variants keep the exact association of the
// unfused sequence — dot accumulated in four partials, then
// (l[i] * dot) * r[j] as in scaleSandwich's li * z * r[j] — so fused and
// unfused scalar reconstructions are bit-identical.

void gemmScalar(const double* SLIM_RESTRICT a, const double* SLIM_RESTRICT b,
                double* SLIM_RESTRICT c, std::size_t m, std::size_t kk,
                std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    double* SLIM_RESTRICT crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0;
    const double* SLIM_RESTRICT arow = a + i * kk;
    std::size_t k = 0;
    for (; k + 4 <= kk; k += 4) {
      const double a0 = arow[k], a1 = arow[k + 1], a2 = arow[k + 2],
                   a3 = arow[k + 3];
      const double* SLIM_RESTRICT b0 = b + k * n;
      const double* SLIM_RESTRICT b1 = b + (k + 1) * n;
      const double* SLIM_RESTRICT b2 = b + (k + 2) * n;
      const double* SLIM_RESTRICT b3 = b + (k + 3) * n;
      for (std::size_t j = 0; j < n; ++j)
        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
    }
    for (; k < kk; ++k) {
      const double ak = arow[k];
      const double* SLIM_RESTRICT brow = b + k * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += ak * brow[j];
    }
  }
}

inline double dotScalar(const double* SLIM_RESTRICT x,
                        const double* SLIM_RESTRICT y, std::size_t kk) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= kk; k += 4) {
    s0 += x[k] * y[k];
    s1 += x[k + 1] * y[k + 1];
    s2 += x[k + 2] * y[k + 2];
    s3 += x[k + 3] * y[k + 3];
  }
  double t = (s0 + s1) + (s2 + s3);
  for (; k < kk; ++k) t += x[k] * y[k];
  return t;
}

void gemmNTScalar(const double* SLIM_RESTRICT a, const double* SLIM_RESTRICT b,
                  double* SLIM_RESTRICT c, std::size_t m, std::size_t kk,
                  std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* SLIM_RESTRICT arow = a + i * kk;
    double* SLIM_RESTRICT crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] = dotScalar(arow, b + j * kk, kk);
  }
}

void syrkScalar(const double* SLIM_RESTRICT y, double* SLIM_RESTRICT c,
                std::size_t n, std::size_t kk) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* SLIM_RESTRICT yi = y + i * kk;
    double* SLIM_RESTRICT crow = c + i * n;
    for (std::size_t j = i; j < n; ++j) crow[j] = dotScalar(yi, y + j * kk, kk);
  }
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) c[i * n + j] = c[j * n + i];
}

void syrkSandwichScalar(const double* SLIM_RESTRICT y,
                        const double* SLIM_RESTRICT l,
                        const double* SLIM_RESTRICT r, double* SLIM_RESTRICT p,
                        std::size_t n, std::size_t kk) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* SLIM_RESTRICT yi = y + i * kk;
    for (std::size_t j = i; j < n; ++j) {
      const double t = dotScalar(yi, y + j * kk, kk);
      const double pij = l[i] * t * r[j];
      const double pji = l[j] * t * r[i];
      p[i * n + j] = pij < 0.0 ? 0.0 : pij;
      p[j * n + i] = pji < 0.0 ? 0.0 : pji;
    }
  }
}

void gemmNTSandwichScalar(const double* SLIM_RESTRICT a,
                          const double* SLIM_RESTRICT b,
                          const double* SLIM_RESTRICT l,
                          const double* SLIM_RESTRICT r,
                          double* SLIM_RESTRICT c, std::size_t m,
                          std::size_t kk, std::size_t n, bool clampNegative) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* SLIM_RESTRICT arow = a + i * kk;
    double* SLIM_RESTRICT crow = c + i * n;
    const double li = l[i];
    for (std::size_t j = 0; j < n; ++j) {
      const double v = li * dotScalar(arow, b + j * kk, kk) * r[j];
      crow[j] = clampNegative && v < 0.0 ? 0.0 : v;
    }
  }
}

constexpr SimdKernels kScalarKernels{
    "scalar",          gemmScalar,         gemmNTScalar,
    syrkScalar,        syrkSandwichScalar, gemmNTSandwichScalar,
};

bool cpuSupports(SimdLevel level) noexcept {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  switch (level) {
    case SimdLevel::Scalar:
      return true;
    case SimdLevel::Avx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case SimdLevel::Avx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
  }
  return false;
#else
  return level == SimdLevel::Scalar;
#endif
}

const SimdKernels* compiledTable(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::Scalar:
      return &kScalarKernels;
    case SimdLevel::Avx2:
      return detail::avx2KernelTable();
    case SimdLevel::Avx512:
      return detail::avx512KernelTable();
  }
  return nullptr;
}

}  // namespace

const char* simdModeName(SimdMode m) noexcept {
  switch (m) {
    case SimdMode::Auto: return "auto";
    case SimdMode::Scalar: return "scalar";
    case SimdMode::Avx2: return "avx2";
    case SimdMode::Avx512: return "avx512";
  }
  return "?";
}

const char* simdLevelName(SimdLevel l) noexcept {
  switch (l) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2: return "avx2";
    case SimdLevel::Avx512: return "avx512";
  }
  return "?";
}

bool parseSimdMode(std::string_view text, SimdMode& out) noexcept {
  if (text == "auto") out = SimdMode::Auto;
  else if (text == "scalar") out = SimdMode::Scalar;
  else if (text == "avx2") out = SimdMode::Avx2;
  else if (text == "avx512") out = SimdMode::Avx512;
  else return false;
  return true;
}

bool simdLevelCompiled(SimdLevel level) noexcept {
  return compiledTable(level) != nullptr;
}

bool simdLevelAvailable(SimdLevel level) noexcept {
  return simdLevelCompiled(level) && cpuSupports(level);
}

SimdLevel detectSimdLevel() noexcept {
  if (simdLevelAvailable(SimdLevel::Avx512)) return SimdLevel::Avx512;
  if (simdLevelAvailable(SimdLevel::Avx2)) return SimdLevel::Avx2;
  return SimdLevel::Scalar;
}

SimdLevel resolveSimdLevel(SimdMode mode) {
  switch (mode) {
    case SimdMode::Auto:
      return detectSimdLevel();
    case SimdMode::Scalar:
      return SimdLevel::Scalar;
    case SimdMode::Avx2:
    case SimdMode::Avx512: {
      const SimdLevel level =
          mode == SimdMode::Avx2 ? SimdLevel::Avx2 : SimdLevel::Avx512;
      if (!simdLevelCompiled(level))
        throw std::invalid_argument(
            std::string("simd = ") + simdModeName(mode) +
            ": kernels not compiled into this binary (non-x86 target or "
            "compiler without the ISA flags)");
      if (!cpuSupports(level))
        throw std::invalid_argument(std::string("simd = ") +
                                    simdModeName(mode) +
                                    ": this CPU does not support the "
                                    "required instruction set");
      return level;
    }
  }
  return SimdLevel::Scalar;
}

const SimdKernels& simdKernels(SimdLevel level) {
  const SimdKernels* table = compiledTable(level);
  if (table == nullptr || !cpuSupports(level))
    throw std::invalid_argument(std::string("simdKernels: level '") +
                                simdLevelName(level) + "' is not available");
  return *table;
}

}  // namespace slim::linalg
