#pragma once
// Kernel flavor selection.
//
// The SlimCodeML paper compares CodeML's hand-rolled C loops against tuned
// BLAS kernels (GotoBLAS2).  We reproduce that comparison with two in-repo
// flavors of every kernel:
//
//   Flavor::Naive — faithful transcriptions of the textbook / PAML loop
//                   nests (dot-product-form gemm with strided column access,
//                   per-element gemv, no blocking, no restrict).
//   Flavor::Opt   — cache- and vectorizer-friendly implementations (saxpy-
//                   form gemm, k-blocking, __restrict pointers, symmetric
//                   rank-k and symv kernels that exploit structure).
//
// Every kernel produces identical results up to floating-point reassociation;
// tests assert agreement to tight tolerances.

#ifndef SLIM_RESTRICT
#if defined(__GNUC__) || defined(__clang__)
#define SLIM_RESTRICT __restrict__
#else
#define SLIM_RESTRICT
#endif
#endif

namespace slim::linalg {

enum class Flavor {
  Naive,  ///< CodeML-style reference loops.
  Opt,    ///< SlimCodeML-style optimized kernels.
};

/// Human-readable flavor name for reports and benchmarks.
constexpr const char* flavorName(Flavor f) noexcept {
  return f == Flavor::Naive ? "naive" : "opt";
}

}  // namespace slim::linalg
