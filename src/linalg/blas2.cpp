#include "linalg/blas2.hpp"

#include "support/require.hpp"

namespace slim::linalg {

namespace {

// CodeML-style gemv: one dot product per output element, no restrict, no
// effort to help the vectorizer (transcribed from PAML's matby with m = 1).
void gemvNaive(const Matrix& a, const double* x, double* y, double alpha,
               double beta) {
  const std::size_t m = a.rows(), n = a.cols();
  for (std::size_t i = 0; i < m; ++i) {
    double t = 0.0;
    for (std::size_t k = 0; k < n; ++k) t += a(i, k) * x[k];
    y[i] = alpha * t + beta * y[i];
  }
}

// Optimized gemv: restrict-qualified pointers over contiguous rows; the dot
// product over a unit-stride row vectorizes cleanly.
void gemvOpt(const Matrix& a, const double* SLIM_RESTRICT x,
             double* SLIM_RESTRICT y, double alpha, double beta) {
  const std::size_t m = a.rows(), n = a.cols();
  for (std::size_t i = 0; i < m; ++i) {
    const double* SLIM_RESTRICT row = a.row(i);
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
      s0 += row[k] * x[k];
      s1 += row[k + 1] * x[k + 1];
      s2 += row[k + 2] * x[k + 2];
      s3 += row[k + 3] * x[k + 3];
    }
    double t = (s0 + s1) + (s2 + s3);
    for (; k < n; ++k) t += row[k] * x[k];
    y[i] = alpha * t + beta * y[i];
  }
}

}  // namespace

void gemv(Flavor flavor, const Matrix& a, std::span<const double> x,
          std::span<double> y, double alpha, double beta) {
  SLIM_REQUIRE(x.size() == a.cols() && y.size() == a.rows(),
               "gemv: dimension mismatch");
  if (flavor == Flavor::Naive)
    gemvNaive(a, x.data(), y.data(), alpha, beta);
  else
    gemvOpt(a, x.data(), y.data(), alpha, beta);
}

void gemvT(Flavor flavor, const Matrix& a, std::span<const double> x,
           std::span<double> y, double alpha, double beta) {
  SLIM_REQUIRE(x.size() == a.rows() && y.size() == a.cols(),
               "gemvT: dimension mismatch");
  const std::size_t m = a.rows(), n = a.cols();
  if (flavor == Flavor::Naive) {
    // Column dot products: strided reads down each column.
    for (std::size_t j = 0; j < n; ++j) {
      double t = 0.0;
      for (std::size_t i = 0; i < m; ++i) t += a(i, j) * x[i];
      y[j] = alpha * t + beta * y[j];
    }
    return;
  }
  // Opt: accumulate row-by-row (saxpy form) so every inner pass streams a
  // contiguous row of A.
  double* SLIM_RESTRICT yp = y.data();
  if (beta == 0.0)
    for (std::size_t j = 0; j < n; ++j) yp[j] = 0.0;
  else
    for (std::size_t j = 0; j < n; ++j) yp[j] *= beta;
  for (std::size_t i = 0; i < m; ++i) {
    const double* SLIM_RESTRICT row = a.row(i);
    const double xi = alpha * x[i];
    for (std::size_t j = 0; j < n; ++j) yp[j] += xi * row[j];
  }
}

void symv(Flavor flavor, const Matrix& a, std::span<const double> x,
          std::span<double> y) {
  SLIM_REQUIRE(a.square(), "symv: matrix must be square");
  SLIM_REQUIRE(x.size() == a.cols() && y.size() == a.rows(),
               "symv: dimension mismatch");
  const std::size_t n = a.rows();
  if (flavor == Flavor::Naive) {
    // Treats A as a general matrix: full n^2 traversal.
    gemvNaive(a, x.data(), y.data(), 1.0, 0.0);
    return;
  }
  // Opt: single pass over the upper triangle; each a_ij (i < j) contributes
  // to both y_i and y_j, halving memory traffic relative to gemv.
  const double* SLIM_RESTRICT xp = x.data();
  double* SLIM_RESTRICT yp = y.data();
  for (std::size_t i = 0; i < n; ++i) yp[i] = a(i, i) * xp[i];
  for (std::size_t i = 0; i < n; ++i) {
    const double* SLIM_RESTRICT row = a.row(i);
    const double xi = xp[i];
    double acc = 0.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double aij = row[j];
      acc += aij * xp[j];
      yp[j] += aij * xi;
    }
    yp[i] += acc;
  }
}

}  // namespace slim::linalg
