#include "linalg/blas3.hpp"

#include "support/require.hpp"

namespace slim::linalg {

namespace {

// PAML matby transcription: dot-product form with strided column access of B.
// This is the memory access pattern of CodeML's hand-rolled matrix product.
void gemmNaive(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double t = 0.0;
      for (std::size_t k = 0; k < kk; ++k) t += a(i, k) * b(k, j);
      c(i, j) = t;
    }
}

// Optimized gemm: i-k-j (saxpy) form. Every inner loop streams a contiguous
// row of B and of C, which GCC vectorizes with FMA; a small k-unroll reuses
// the C row from registers/L1 across four B rows.
void gemmOpt(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    double* SLIM_RESTRICT crow = c.row(i);
    for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0;
    const double* SLIM_RESTRICT arow = a.row(i);
    std::size_t k = 0;
    for (; k + 4 <= kk; k += 4) {
      const double a0 = arow[k], a1 = arow[k + 1], a2 = arow[k + 2],
                   a3 = arow[k + 3];
      const double* SLIM_RESTRICT b0 = b.row(k);
      const double* SLIM_RESTRICT b1 = b.row(k + 1);
      const double* SLIM_RESTRICT b2 = b.row(k + 2);
      const double* SLIM_RESTRICT b3 = b.row(k + 3);
      for (std::size_t j = 0; j < n; ++j)
        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
    }
    for (; k < kk; ++k) {
      const double ak = arow[k];
      const double* SLIM_RESTRICT brow = b.row(k);
      for (std::size_t j = 0; j < n; ++j) crow[j] += ak * brow[j];
    }
  }
}

// Naive A * B^T: dot products of rows; access is contiguous but unassisted.
void gemmNTNaive(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double t = 0.0;
      for (std::size_t k = 0; k < kk; ++k) t += a(i, k) * b(j, k);
      c(i, j) = t;
    }
}

// Optimized A * B^T: unrolled multi-accumulator dot products over contiguous
// rows of both operands.  For large pattern panels the saxpy-form gemm
// against a pre-transposed B is substantially faster (it vectorizes as
// streaming FMAs instead of horizontal reductions); the likelihood engine
// therefore stores BundledGemm propagators transposed and calls gemm.
void gemmNTOpt(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i) {
    const double* SLIM_RESTRICT arow = a.row(i);
    double* SLIM_RESTRICT crow = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double* SLIM_RESTRICT brow = b.row(j);
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      std::size_t k = 0;
      for (; k + 4 <= kk; k += 4) {
        s0 += arow[k] * brow[k];
        s1 += arow[k + 1] * brow[k + 1];
        s2 += arow[k + 2] * brow[k + 2];
        s3 += arow[k + 3] * brow[k + 3];
      }
      double t = (s0 + s1) + (s2 + s3);
      for (; k < kk; ++k) t += arow[k] * brow[k];
      crow[j] = t;
    }
  }
}

}  // namespace

void gemm(Flavor flavor, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  SLIM_REQUIRE(a.cols() == b.rows(), "gemm: inner dimension mismatch");
  SLIM_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
               "gemm: output shape mismatch");
  SLIM_REQUIRE(c.data() != a.data() && c.data() != b.data(),
               "gemm: output must not alias inputs");
  if (flavor == Flavor::Naive)
    gemmNaive(a, b, c);
  else
    gemmOpt(a, b, c);
}

void gemm(Flavor flavor, const Matrix& a, const Matrix& b, Matrix& c) {
  gemm(flavor, a.view(), b.view(), c.view());
}

void gemmNT(Flavor flavor, ConstMatrixView a, ConstMatrixView b,
            MatrixView c) {
  SLIM_REQUIRE(a.cols() == b.cols(), "gemmNT: inner dimension mismatch");
  SLIM_REQUIRE(c.rows() == a.rows() && c.cols() == b.rows(),
               "gemmNT: output shape mismatch");
  SLIM_REQUIRE(c.data() != a.data() && c.data() != b.data(),
               "gemmNT: output must not alias inputs");
  if (flavor == Flavor::Naive)
    gemmNTNaive(a, b, c);
  else
    gemmNTOpt(a, b, c);
}

void gemmNT(Flavor flavor, const Matrix& a, const Matrix& b, Matrix& c) {
  gemmNT(flavor, a.view(), b.view(), c.view());
}

void syrk(Flavor flavor, const Matrix& y, Matrix& c) {
  SLIM_REQUIRE(c.rows() == y.rows() && c.cols() == y.rows(),
               "syrk: output shape mismatch");
  SLIM_REQUIRE(&c != &y, "syrk: output must not alias input");
  if (flavor == Flavor::Naive) {
    // What CodeML effectively does: a full general product, 2 n^2 k flops.
    gemmNTNaive(y.view(), y.view(), c.view());
    return;
  }
  // Upper triangle only (n^2 k flops), then mirror.
  const std::size_t n = y.rows(), kk = y.cols();
  for (std::size_t i = 0; i < n; ++i) {
    const double* SLIM_RESTRICT yi = y.row(i);
    double* SLIM_RESTRICT crow = c.row(i);
    for (std::size_t j = i; j < n; ++j) {
      const double* SLIM_RESTRICT yj = y.row(j);
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      std::size_t k = 0;
      for (; k + 4 <= kk; k += 4) {
        s0 += yi[k] * yj[k];
        s1 += yi[k + 1] * yj[k + 1];
        s2 += yi[k + 2] * yj[k + 2];
        s3 += yi[k + 3] * yj[k + 3];
      }
      double t = (s0 + s1) + (s2 + s3);
      for (; k < kk; ++k) t += yi[k] * yj[k];
      crow[j] = t;
    }
  }
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) c(i, j) = c(j, i);
}

}  // namespace slim::linalg
