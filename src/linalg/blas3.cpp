#include "linalg/blas3.hpp"

#include "support/require.hpp"

namespace slim::linalg {

namespace {

// PAML matby transcription: dot-product form with strided column access of B.
// This is the memory access pattern of CodeML's hand-rolled matrix product.
void gemmNaive(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double t = 0.0;
      for (std::size_t k = 0; k < kk; ++k) t += a(i, k) * b(k, j);
      c(i, j) = t;
    }
}

// The scalar SIMD table holds the optimized (saxpy gemm / dot gemmNT /
// mirrored syrk) loop nests on raw pointers; the Flavor::Opt overloads
// delegate to it so the "opt kernel" and the simd = scalar reference are
// one implementation, bit for bit.
const SimdKernels& scalarKernels() {
  static const SimdKernels& k = simdKernels(SimdLevel::Scalar);
  return k;
}

// Naive A * B^T: dot products of rows; access is contiguous but unassisted.
void gemmNTNaive(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const std::size_t m = a.rows(), kk = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double t = 0.0;
      for (std::size_t k = 0; k < kk; ++k) t += a(i, k) * b(j, k);
      c(i, j) = t;
    }
}

}  // namespace

void gemm(Flavor flavor, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  SLIM_REQUIRE(a.cols() == b.rows(), "gemm: inner dimension mismatch");
  SLIM_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
               "gemm: output shape mismatch");
  SLIM_REQUIRE(c.data() != a.data() && c.data() != b.data(),
               "gemm: output must not alias inputs");
  if (flavor == Flavor::Naive)
    gemmNaive(a, b, c);
  else
    scalarKernels().gemm(a.data(), b.data(), c.data(), a.rows(), a.cols(),
                         b.cols());
}

void gemm(Flavor flavor, const Matrix& a, const Matrix& b, Matrix& c) {
  gemm(flavor, a.view(), b.view(), c.view());
}

void gemmNT(Flavor flavor, ConstMatrixView a, ConstMatrixView b,
            MatrixView c) {
  SLIM_REQUIRE(a.cols() == b.cols(), "gemmNT: inner dimension mismatch");
  SLIM_REQUIRE(c.rows() == a.rows() && c.cols() == b.rows(),
               "gemmNT: output shape mismatch");
  SLIM_REQUIRE(c.data() != a.data() && c.data() != b.data(),
               "gemmNT: output must not alias inputs");
  if (flavor == Flavor::Naive)
    gemmNTNaive(a, b, c);
  else
    // Optimized A * B^T: multi-accumulator dot products over contiguous
    // rows.  For large pattern panels the saxpy-form gemm against a
    // pre-transposed B is substantially faster; the likelihood engine
    // therefore stores BundledGemm propagators transposed and calls gemm.
    scalarKernels().gemmNT(a.data(), b.data(), c.data(), a.rows(), a.cols(),
                           b.rows());
}

void gemmNT(Flavor flavor, const Matrix& a, const Matrix& b, Matrix& c) {
  gemmNT(flavor, a.view(), b.view(), c.view());
}

void syrk(Flavor flavor, const Matrix& y, Matrix& c) {
  SLIM_REQUIRE(c.rows() == y.rows() && c.cols() == y.rows(),
               "syrk: output shape mismatch");
  SLIM_REQUIRE(&c != &y, "syrk: output must not alias input");
  if (flavor == Flavor::Naive) {
    // What CodeML effectively does: a full general product, 2 n^2 k flops.
    gemmNTNaive(y.view(), y.view(), c.view());
    return;
  }
  // Upper triangle only (n^2 k flops), then mirror — the dsyrk trick.
  scalarKernels().syrk(y.data(), c.data(), y.rows(), y.cols());
}

void gemm(const SimdKernels& kern, ConstMatrixView a, ConstMatrixView b,
          MatrixView c) {
  SLIM_REQUIRE(a.cols() == b.rows(), "gemm: inner dimension mismatch");
  SLIM_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
               "gemm: output shape mismatch");
  SLIM_REQUIRE(c.data() != a.data() && c.data() != b.data(),
               "gemm: output must not alias inputs");
  kern.gemm(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
}

void gemmNT(const SimdKernels& kern, ConstMatrixView a, ConstMatrixView b,
            MatrixView c) {
  SLIM_REQUIRE(a.cols() == b.cols(), "gemmNT: inner dimension mismatch");
  SLIM_REQUIRE(c.rows() == a.rows() && c.cols() == b.rows(),
               "gemmNT: output shape mismatch");
  SLIM_REQUIRE(c.data() != a.data() && c.data() != b.data(),
               "gemmNT: output must not alias inputs");
  kern.gemmNT(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.rows());
}

void syrk(const SimdKernels& kern, const Matrix& y, Matrix& c) {
  SLIM_REQUIRE(c.rows() == y.rows() && c.cols() == y.rows(),
               "syrk: output shape mismatch");
  SLIM_REQUIRE(&c != &y, "syrk: output must not alias input");
  kern.syrk(y.data(), c.data(), y.rows(), y.cols());
}

}  // namespace slim::linalg
