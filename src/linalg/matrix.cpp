#include "linalg/matrix.hpp"

#include <cmath>

namespace slim::linalg {

Matrix transposed(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

void transposeInto(const Matrix& a, Matrix& b) {
  SLIM_REQUIRE(b.rows() == a.cols() && b.cols() == a.rows(),
               "transposeInto: output shape mismatch");
  SLIM_REQUIRE(&a != &b, "transposeInto: output must not alias input");
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) b(j, i) = a(i, j);
}

double maxAbsDiff(const Matrix& a, const Matrix& b) {
  SLIM_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  double m = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k)
    m = std::max(m, std::fabs(a.data()[k] - b.data()[k]));
  return m;
}

double maxAbsDiff(const Vector& a, const Vector& b) {
  SLIM_REQUIRE(a.size() == b.size(), "size mismatch");
  double m = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k)
    m = std::max(m, std::fabs(a[k] - b[k]));
  return m;
}

bool allFinite(const Matrix& a) noexcept {
  for (std::size_t k = 0; k < a.size(); ++k)
    if (!std::isfinite(a.data()[k])) return false;
  return true;
}

bool allFinite(std::span<const double> a) noexcept {
  for (double v : a)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace slim::linalg
