#pragma once
// Diagonal-scaling helpers: the O(n^2) steps 1, 3 and 5 of the SlimCodeML
// matrix-exponential pipeline (Sec. III-A) are sandwich products with
// diagonal matrices; forming a dense diagonal matrix and calling gemm would
// waste ~2n^3 flops, so these dedicated kernels exist in both engines.

#include <span>

#include "linalg/matrix.hpp"

namespace slim::linalg {

/// B := diag(l) * A * diag(r).  l has size rows, r size cols.  B may alias A.
void scaleSandwich(const Matrix& a, std::span<const double> l,
                   std::span<const double> r, Matrix& b);

/// B := A * diag(d).  d has size cols.  B may alias A.
/// (Step 3 of Sec. III-A: Y = X e^{Lambda t/2}.)
void scaleCols(const Matrix& a, std::span<const double> d, Matrix& b);

/// Panel form of scaleCols over row-block views.
void scaleCols(ConstMatrixView a, std::span<const double> d, MatrixView b);

/// B := diag(d) * A.  d has size rows.  B may alias A.
void scaleRows(std::span<const double> d, const Matrix& a, Matrix& b);

}  // namespace slim::linalg
