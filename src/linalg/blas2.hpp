#pragma once
// BLAS level-2 style kernels (matrix-vector).
//
// gemv is the per-site conditional-probability-vector propagation kernel of
// CodeML (Sec. III-B of the paper); symv is the symmetric variant enabled by
// Eq. 12-13 of the paper, which halves memory traffic.

#include <span>

#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"

namespace slim::linalg {

/// y := alpha * A * x + beta * y, with A a dense rows x cols matrix.
/// x must have size cols, y size rows.
void gemv(Flavor flavor, const Matrix& a, std::span<const double> x,
          std::span<double> y, double alpha = 1.0, double beta = 0.0);

/// y := alpha * A^T * x + beta * y.  x must have size rows, y size cols.
void gemvT(Flavor flavor, const Matrix& a, std::span<const double> x,
           std::span<double> y, double alpha = 1.0, double beta = 0.0);

/// y := A * x for symmetric A (full storage, both triangles present and
/// equal).  The Opt flavor reads only the upper triangle — one pass over
/// n(n+1)/2 elements instead of n^2, the memory-traffic saving of Eq. 12.
void symv(Flavor flavor, const Matrix& a, std::span<const double> x,
          std::span<double> y);

}  // namespace slim::linalg
