#include "support/json_parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "support/json.hpp"

namespace slim::support {

JsonValue JsonValue::makeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::makeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::makeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::makeArray(Array a) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::makeObject(Object o) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.object_ = std::move(o);
  return v;
}

namespace {

[[noreturn]] void kindError(const char* expected, JsonValue::Kind got) {
  static const char* const names[] = {"null",   "bool",  "number",
                                      "string", "array", "object"};
  throw JsonError(std::string("JSON value is ") +
                  names[static_cast<int>(got)] + ", expected " + expected);
}

}  // namespace

bool JsonValue::asBool() const {
  if (kind_ != Kind::Bool) kindError("bool", kind_);
  return bool_;
}

double JsonValue::asNumber() const {
  if (kind_ != Kind::Number) kindError("number", kind_);
  return number_;
}

const std::string& JsonValue::asString() const {
  if (kind_ != Kind::String) kindError("string", kind_);
  return string_;
}

const JsonValue::Array& JsonValue::asArray() const {
  if (kind_ != Kind::Array) kindError("array", kind_);
  return array_;
}

const JsonValue::Object& JsonValue::asObject() const {
  if (kind_ != Kind::Object) kindError("object", kind_);
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr)
    throw JsonError("missing JSON object field \"" + std::string(key) + "\"");
  return *v;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == other.bool_;
    case Kind::Number:
      // Bitwise-equality semantics for the bit-identity tests: compare the
      // values exactly (no epsilon); NaN never occurs (JSON has no NaN).
      return number_ == other.number_;
    case Kind::String: return string_ == other.string_;
    case Kind::Array: return array_ == other.array_;
    case Kind::Object: return object_ == other.object_;
  }
  return false;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    skipWs();
    JsonValue v = parseValue(0);
    skipWs();
    if (pos_ != text_.size()) fail("trailing data after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON parse error at byte " + std::to_string(pos_) + ": " +
                    what);
  }

  bool atEnd() const { return pos_ >= text_.size(); }

  char peek() const {
    if (atEnd()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c, const char* where) {
    if (atEnd() || text_[pos_] != c)
      fail(std::string("expected '") + c + "' " + where);
    ++pos_;
  }

  void skipWs() {
    while (!atEnd()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  void expectLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit)
      fail("invalid literal (expected \"" + std::string(lit) + "\")");
    pos_ += lit.size();
  }

  JsonValue parseValue(std::size_t depth) {
    if (depth > kMaxJsonDepth) fail("nesting depth limit exceeded");
    switch (peek()) {
      case 'n': expectLiteral("null"); return JsonValue::makeNull();
      case 't': expectLiteral("true"); return JsonValue::makeBool(true);
      case 'f': expectLiteral("false"); return JsonValue::makeBool(false);
      case '"': return JsonValue::makeString(parseString());
      case '[': return parseArray(depth);
      case '{': return parseObject(depth);
      default: return parseNumber();
    }
  }

  JsonValue parseArray(std::size_t depth) {
    expect('[', "to open array");
    JsonValue::Array items;
    skipWs();
    if (!atEnd() && text_[pos_] == ']') {
      ++pos_;
      return JsonValue::makeArray(std::move(items));
    }
    while (true) {
      skipWs();
      items.push_back(parseValue(depth + 1));
      skipWs();
      char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue::makeArray(std::move(items));
  }

  JsonValue parseObject(std::size_t depth) {
    expect('{', "to open object");
    JsonValue::Object members;
    skipWs();
    if (!atEnd() && text_[pos_] == '}') {
      ++pos_;
      return JsonValue::makeObject(std::move(members));
    }
    while (true) {
      skipWs();
      if (atEnd() || text_[pos_] != '"') fail("expected string object key");
      std::string key = parseString();
      for (const auto& [k, v] : members)
        if (k == key) fail("duplicate object key \"" + key + "\"");
      skipWs();
      expect(':', "after object key");
      skipWs();
      members.emplace_back(std::move(key), parseValue(depth + 1));
      skipWs();
      char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue::makeObject(std::move(members));
  }

  std::string parseString() {
    expect('"', "to open string");
    std::string out;
    while (true) {
      char c = take();
      unsigned char uc = static_cast<unsigned char>(c);
      if (c == '"') break;
      if (uc < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': appendCodepoint(out); break;
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
    return out;
  }

  unsigned parseHex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    return v;
  }

  void appendCodepoint(std::string& out) {
    unsigned cp = parseHex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: must be followed by \uDC00..\uDFFF.
      if (atEnd() || take() != '\\') {
        --pos_;
        fail("unpaired UTF-16 high surrogate");
      }
      if (take() != 'u') {
        --pos_;
        fail("unpaired UTF-16 high surrogate");
      }
      unsigned lo = parseHex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid UTF-16 low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired UTF-16 low surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (!atEnd() && text_[pos_] == '-') ++pos_;
    // Integer part: 0, or [1-9][0-9]*.  Leading zeros are invalid JSON.
    if (atEnd() || !isDigit(text_[pos_])) fail("invalid number");
    if (text_[pos_] == '0')
      ++pos_;
    else
      while (!atEnd() && isDigit(text_[pos_])) ++pos_;
    if (!atEnd() && text_[pos_] == '.') {
      ++pos_;
      if (atEnd() || !isDigit(text_[pos_])) fail("digit required after '.'");
      while (!atEnd() && isDigit(text_[pos_])) ++pos_;
    }
    if (!atEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!atEnd() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (atEnd() || !isDigit(text_[pos_])) fail("digit required in exponent");
      while (!atEnd() && isDigit(text_[pos_])) ++pos_;
    }
    const std::string span(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(span.c_str(), &end);
    if (end != span.c_str() + span.size()) fail("invalid number");
    if (!std::isfinite(v)) fail("number out of double range");
    return JsonValue::makeNumber(v);
  }

  static bool isDigit(char c) { return c >= '0' && c <= '9'; }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(std::string_view text) { return Parser(text).run(); }

void writeJson(std::ostream& os, const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::Null: os << "null"; break;
    case JsonValue::Kind::Bool: os << (value.asBool() ? "true" : "false"); break;
    case JsonValue::Kind::Number: jsonNumber(os, value.asNumber()); break;
    case JsonValue::Kind::String: jsonString(os, value.asString()); break;
    case JsonValue::Kind::Array: {
      os << '[';
      bool first = true;
      for (const JsonValue& item : value.asArray()) {
        if (!first) os << ',';
        first = false;
        writeJson(os, item);
      }
      os << ']';
      break;
    }
    case JsonValue::Kind::Object: {
      os << '{';
      bool first = true;
      for (const auto& [key, member] : value.asObject()) {
        if (!first) os << ',';
        first = false;
        jsonString(os, key);
        os << ':';
        writeJson(os, member);
      }
      os << '}';
      break;
    }
  }
}

}  // namespace slim::support
