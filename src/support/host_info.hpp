#pragma once
// Host identification shared by the tuning profile and the BENCH_*.json
// writers.  Benchmarks and per-host tuning profiles are only meaningful on
// the machine that produced them, so both artifacts record — and the
// consumers check — where they came from.

#include <string>

namespace slim::support {

/// The machine's hostname ("unknown" when the platform call fails).
std::string hostName();

/// Hardware thread count (>= 1).
int hardwareThreads();

}  // namespace slim::support
