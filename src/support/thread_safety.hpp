#pragma once
// Clang Thread Safety Analysis support: capability-annotated mutex wrappers.
//
// The engine's headline guarantees — bit-identical lnL across threads and
// policies, crash-safe atomic persistence, a concurrent daemon — all lean on
// locking discipline that used to be enforced only dynamically (the TSan CI
// job).  This header makes the discipline *machine-checked at compile time*:
// every mutex-bearing class declares which state its mutex guards
// (SLIM_GUARDED_BY) and which functions expect the lock held
// (SLIM_REQUIRES), and the static-analysis CI cell compiles with
// `-Wthread-safety -Wthread-safety-beta -Werror`, so forgetting a lock is a
// build break, not a race TSan may or may not reach.
//
// On non-Clang compilers every macro expands to nothing and slim::support::
// Mutex / MutexLock / CondVar behave exactly like std::mutex /
// std::lock_guard / std::condition_variable_any — the annotations never
// change behaviour, only what the Clang analysis can prove.
//
// Usage pattern (see docs/concurrency.md for the repo's lock hierarchy):
//
//   class Cache {
//    public:
//     int size() const {
//       MutexLock lock(mutex_);
//       return static_cast<int>(entries_.size());
//     }
//    private:
//     void evictLocked() SLIM_REQUIRES(mutex_);
//     mutable Mutex mutex_;
//     std::map<Key, Entry> entries_ SLIM_GUARDED_BY(mutex_);
//   };

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
// NOLINTNEXTLINE(bugprone-macro-parentheses): attribute args can't be ()'d.
#define SLIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SLIM_THREAD_ANNOTATION(x)
#endif

/// On a class: instances are a capability ("mutex") the analysis tracks.
#define SLIM_CAPABILITY(x) SLIM_THREAD_ANNOTATION(capability(x))

/// On a class: RAII object that acquires a capability in its constructor and
/// releases it in its destructor.
#define SLIM_SCOPED_CAPABILITY SLIM_THREAD_ANNOTATION(scoped_lockable)

/// On a data member: reads and writes require holding the named mutex.
#define SLIM_GUARDED_BY(x) SLIM_THREAD_ANNOTATION(guarded_by(x))

/// On a pointer member: the *pointed-to* data is guarded by the named mutex.
#define SLIM_PT_GUARDED_BY(x) SLIM_THREAD_ANNOTATION(pt_guarded_by(x))

/// On a mutex member: document (and check) lock-ordering edges.
#define SLIM_ACQUIRED_BEFORE(...) \
  SLIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SLIM_ACQUIRED_AFTER(...) \
  SLIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// On a function: callers must hold the named mutex(es).
#define SLIM_REQUIRES(...) \
  SLIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// On a function: acquires/releases the named mutex(es).
#define SLIM_ACQUIRE(...) \
  SLIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SLIM_RELEASE(...) \
  SLIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SLIM_TRY_ACQUIRE(...) \
  SLIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// On a function: callers must NOT hold the named mutex(es) (deadlock guard).
#define SLIM_EXCLUDES(...) SLIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// On a function: returns a reference to the named mutex.
#define SLIM_RETURN_CAPABILITY(x) SLIM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for protocols the analysis cannot express; every use must
/// carry a comment explaining the actual synchronization.
#define SLIM_NO_THREAD_SAFETY_ANALYSIS \
  SLIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace slim::support {

/// std::mutex with a capability annotation so members can be declared
/// SLIM_GUARDED_BY(mutex_) and functions SLIM_REQUIRES(mutex_).
class SLIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SLIM_ACQUIRE() { m_.lock(); }
  void unlock() SLIM_RELEASE() { m_.unlock(); }
  bool try_lock() SLIM_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock over Mutex (the annotated counterpart of std::unique_lock):
/// locks on construction, unlocks on destruction, and supports the early
/// unlock / relock the persistence paths need (serialize under the lock,
/// write to disk outside it).  Also a BasicLockable, so CondVar can wait on
/// it.
class SLIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SLIM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SLIM_RELEASE() {
    if (held_) mutex_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() SLIM_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }
  void unlock() SLIM_RELEASE() {
    held_ = false;
    mutex_.unlock();
  }

 private:
  Mutex& mutex_;
  bool held_ = true;
};

/// Condition variable waiting on MutexLock.  Implemented over
/// std::condition_variable_any; the predicate overload re-checks under the
/// lock exactly like std::condition_variable::wait.  A predicate that reads
/// SLIM_GUARDED_BY state must itself be annotated:
///
///   cv_.wait(lock, [&]() SLIM_REQUIRES(mutex_) { return ready_; });
class CondVar {
 public:
  void notifyOne() noexcept { cv_.notify_one(); }
  void notifyAll() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock); }

  template <class Predicate>
  void wait(MutexLock& lock, Predicate pred) {
    cv_.wait(lock, pred);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace slim::support
