#include "support/build_info.hpp"

#include <sstream>

#include "linalg/simd.hpp"
#include "support/json.hpp"

// SLIM_GIT_DESCRIBE / SLIM_BUILD_TYPE are injected by CMake on this one
// translation unit only, so touching the git state never rebuilds the world.
#ifndef SLIM_GIT_DESCRIBE
#define SLIM_GIT_DESCRIBE "unknown"
#endif
#ifndef SLIM_BUILD_TYPE
#define SLIM_BUILD_TYPE "unknown"
#endif

namespace slim::support {

namespace {

std::string compilerId() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#elif defined(_MSC_VER)
  return "msvc " + std::to_string(_MSC_VER);
#else
  return "unknown";
#endif
}

}  // namespace

BuildInfo buildInfo() {
  BuildInfo info;
  info.gitDescribe = SLIM_GIT_DESCRIBE;
  info.compiler = compilerId();
  info.buildType = SLIM_BUILD_TYPE;
  info.simd = linalg::simdLevelName(linalg::detectSimdLevel());
  info.schemas = {
      {"serve", "slimcodeml-serve-v1"},
      {"checkpoint", "slimcodeml-checkpoint v1"},
      {"tuning", "slimcodeml-tuning-profile v1"},
      {"validate", "slimcodeml-validate-v1"},
      {"bench", "slimcodeml-bench-v1"},
  };
  return info;
}

std::string buildInfoLine() {
  const BuildInfo info = buildInfo();
  return "slimcodeml " + info.gitDescribe + " (" + info.compiler + ", " +
         info.buildType + ", simd=" + info.simd + ")";
}

std::string buildInfoJson() {
  const BuildInfo info = buildInfo();
  std::ostringstream os;
  os << "{\"gitDescribe\":";
  jsonString(os, info.gitDescribe);
  os << ",\"compiler\":";
  jsonString(os, info.compiler);
  os << ",\"buildType\":";
  jsonString(os, info.buildType);
  os << ",\"simd\":";
  jsonString(os, info.simd);
  os << ",\"schemas\":{";
  bool first = true;
  for (const auto& s : info.schemas) {
    if (!first) os << ',';
    first = false;
    jsonString(os, s.name);
    os << ':';
    jsonString(os, s.version);
  }
  os << "}}";
  return os.str();
}

}  // namespace slim::support
