#pragma once
// Minimal JSON emission helpers shared by every structured-report writer
// (core/report.cpp, valid/study.cpp, support/bench_record.cpp).  The strict
// parser counterpart (needed by the serve protocol, which consumes untrusted
// socket input) lives in support/json_parse.hpp.

#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <string_view>

namespace slim::support {

/// Full-precision JSON number; non-finite doubles (legal in IEEE, illegal
/// in JSON) become null.
inline void jsonNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  // defaultfloat guards against float-format state (std::fixed) left on a
  // shared stream by a preceding text report.
  os << std::defaultfloat
     << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
}

/// RFC 8259 string: quotes, backslashes and all control characters escaped.
inline void jsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        else
          os << c;
    }
  }
  os << '"';
}

}  // namespace slim::support
