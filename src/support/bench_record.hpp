#pragma once
// The stable BENCH_*.json schema: the per-PR performance/accuracy
// trajectory format.  Every producer — the autotuner, the validation
// harness, the CI bench-record job (via tools/bench_compare.py, which
// converts Google Benchmark output to the same shape) — emits this one
// schema so trajectories from different sources are directly comparable:
//
//   {
//     "schema": "slimcodeml-bench-v1",
//     "host": {"name": "...", "hardwareThreads": N, "simd": "avx2"},
//     "benchmarks": {
//       "<name>": {"real_time_ns": 123.0, "items_per_second": 456.0}
//     }
//   }
//
// real_time_ns is wall-clock per iteration of whatever the benchmark's unit
// of work is; items_per_second is the benchmark's own throughput counter
// (0 when it has none).  tools/bench_compare.py consumes two of these files
// and fails on regressions beyond a tolerance.

#include <span>
#include <string>

namespace slim::support {

struct BenchEntry {
  std::string name;
  double realTimeNs = 0;
  double itemsPerSecond = 0;
};

/// The schema document as a string (entries in the given order).
std::string benchJson(std::span<const BenchEntry> entries);

/// Write the schema document atomically (temp+fsync+rename).
void writeBenchFile(const std::string& path,
                    std::span<const BenchEntry> entries);

}  // namespace slim::support
