#pragma once
// Build/version identification shared by `slimcodeml --version`, the
// `slimcodemld` daemon's status response, and bench provenance.  Everything
// here is needed to reproduce a result from a fleet log: the exact source
// revision, the compiler that built it, the SIMD level the *running* host
// resolves to, and the versioned schemas this build reads/writes.

#include <string>
#include <vector>

namespace slim::support {

struct SchemaVersion {
  std::string name;     // e.g. "serve"
  std::string version;  // e.g. "slimcodeml-serve-v1"
};

struct BuildInfo {
  std::string gitDescribe;  // `git describe --always --dirty --tags` at configure
  std::string compiler;     // compiler id + version (__VERSION__)
  std::string buildType;    // CMAKE_BUILD_TYPE ("unknown" outside CMake)
  std::string simd;         // SIMD level detected on the running host
  std::vector<SchemaVersion> schemas;
};

/// Snapshot of this build + the current host (simd is probed at call time).
BuildInfo buildInfo();

/// One-line human form: "slimcodeml <git> (<compiler>, <buildType>, simd=<x>)".
std::string buildInfoLine();

/// The `{"gitDescribe":...,"compiler":...,...,"schemas":{...}}` JSON object
/// (no trailing newline) embedded in daemon status responses.
std::string buildInfoJson();

}  // namespace slim::support
