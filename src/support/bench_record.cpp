#include "support/bench_record.hpp"

#include <sstream>

#include "linalg/simd.hpp"
#include "support/atomic_file.hpp"
#include "support/host_info.hpp"
#include "support/json.hpp"

namespace slim::support {

std::string benchJson(std::span<const BenchEntry> entries) {
  std::ostringstream os;
  os << "{\"schema\":\"slimcodeml-bench-v1\",\"host\":{\"name\":";
  jsonString(os, hostName());
  os << ",\"hardwareThreads\":" << hardwareThreads() << ",\"simd\":";
  jsonString(os, linalg::simdLevelName(linalg::detectSimdLevel()));
  os << "},\"benchmarks\":{";
  bool first = true;
  for (const auto& e : entries) {
    if (!first) os << ',';
    first = false;
    jsonString(os, e.name);
    os << ":{\"real_time_ns\":";
    jsonNumber(os, e.realTimeNs);
    os << ",\"items_per_second\":";
    jsonNumber(os, e.itemsPerSecond);
    os << '}';
  }
  os << "}}\n";
  return os.str();
}

void writeBenchFile(const std::string& path,
                    std::span<const BenchEntry> entries) {
  writeFileAtomic(path, benchJson(entries));
}

}  // namespace slim::support
