#pragma once
// Crash-safe file replacement shared by checkpoints and report writers.
//
// A process killed mid-write (preemption, OOM, SIGKILL on a grid node) must
// never leave a truncated checkpoint or half-emitted report behind: any
// pipeline globbing result files would read garbage, and a truncated
// checkpoint could poison a resumed optimization.  writeFileAtomic gives the
// standard guarantee: the destination either keeps its previous content or
// holds the complete new content, never anything in between.

#include <string>
#include <string_view>

namespace slim::support {

/// Write `content` to `path` atomically: the bytes go to a temp file in the
/// same directory (same filesystem, so the final rename cannot degrade to a
/// copy), are flushed and fsync'd to disk (POSIX; the Windows fallback has
/// no fsync), and the temp file is renamed over the destination.  Throws
/// std::runtime_error on any I/O failure, in which case the temp file is
/// removed and the destination is untouched.  A process killed mid-call may
/// strand the pid-suffixed temp file, but the destination is still either
/// its previous or its complete new content.
void writeFileAtomic(const std::string& path, std::string_view content);

}  // namespace slim::support
