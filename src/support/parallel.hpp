#pragma once
// Minimal persistent thread pool for the pattern-blocked likelihood engine.
//
// The pool runs index-based task sets (`parallelFor`): tasks are pulled from
// a shared atomic counter (dynamic chunked scheduling), and the calling
// thread participates as worker 0, so a pool of size 1 degenerates to a
// plain serial loop with no synchronization.  Each task receives its task
// index and the executing worker's index; callers that need mutable state
// give each worker its own workspace slot, so no locking is required inside
// tasks and — because results land in slots addressed by *task* index —
// outputs are identical for any thread count.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slim::support {

/// Map a requested thread count onto an actual one: 0 means "use the
/// hardware concurrency", anything else is clamped below by 1.
inline int resolveThreadCount(int requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

class ThreadPool {
 public:
  /// Spawns numThreads - 1 workers; the thread calling parallelFor is the
  /// pool's worker 0.  numThreads < 1 is treated as 1.
  explicit ThreadPool(int numThreads) {
    const int n = numThreads < 1 ? 1 : numThreads;
    workers_.reserve(n - 1);
    for (int t = 1; t < n; ++t)
      workers_.emplace_back([this, t] { workerLoop(t); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int numThreads() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Run fn(task, worker) for every task in [0, numTasks).  Blocks until all
  /// tasks have completed; the first exception thrown by any task is
  /// rethrown here (remaining tasks still run to completion).
  void parallelFor(int numTasks, const std::function<void(int, int)>& fn) {
    if (numTasks <= 0) return;
    if (workers_.empty()) {
      for (int i = 0; i < numTasks; ++i) fn(i, 0);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      fn_ = &fn;
      numTasks_ = numTasks;
      nextTask_.store(0, std::memory_order_relaxed);
      pendingWorkers_ = static_cast<int>(workers_.size());
      ++generation_;
    }
    wake_.notify_all();
    runTasks(0);
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] { return pendingWorkers_ == 0; });
    fn_ = nullptr;
    if (firstError_) {
      std::exception_ptr e = firstError_;
      firstError_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  void workerLoop(int worker) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      runTasks(worker);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pendingWorkers_ == 0) drained_.notify_one();
      }
    }
  }

  void runTasks(int worker) {
    for (;;) {
      const int i = nextTask_.fetch_add(1, std::memory_order_relaxed);
      if (i >= numTasks_) return;
      try {
        (*fn_)(i, worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!firstError_) firstError_ = std::current_exception();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable drained_;
  const std::function<void(int, int)>* fn_ = nullptr;
  int numTasks_ = 0;
  std::atomic<int> nextTask_{0};
  int pendingWorkers_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr firstError_;
};

}  // namespace slim::support
