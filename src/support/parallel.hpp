#pragma once
// Minimal persistent thread pool for the pattern-blocked likelihood engine.
//
// The pool runs index-based task sets (`parallelFor`): tasks are pulled from
// a shared atomic counter (dynamic chunked scheduling), and the calling
// thread participates as worker 0, so a pool of size 1 degenerates to a
// plain serial loop with no synchronization.  Each task receives its task
// index and the executing worker's index; callers that need mutable state
// give each worker its own workspace slot, so no locking is required inside
// tasks and — because results land in slots addressed by *task* index —
// outputs are identical for any thread count.

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "support/thread_safety.hpp"

namespace slim::support {

/// Map a requested thread count onto an actual one: 0 means "use the
/// hardware concurrency", anything else is clamped below by 1.
inline int resolveThreadCount(int requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

class ThreadPool {
 public:
  /// Spawns numThreads - 1 workers; the thread calling parallelFor is the
  /// pool's worker 0.  numThreads < 1 is treated as 1.
  explicit ThreadPool(int numThreads) {
    const int n = numThreads < 1 ? 1 : numThreads;
    workers_.reserve(n - 1);
    for (int t = 1; t < n; ++t)
      workers_.emplace_back([this, t] { workerLoop(t); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lock(mutex_);
      stop_ = true;
    }
    wake_.notifyAll();
    for (auto& w : workers_) w.join();
  }

  int numThreads() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Run fn(task, worker) for every task in [0, numTasks).  Blocks until all
  /// tasks have completed; the first exception thrown by any task is
  /// rethrown here (remaining tasks still run to completion).
  void parallelFor(int numTasks, const std::function<void(int, int)>& fn) {
    if (numTasks <= 0) return;
    if (workers_.empty()) {
      for (int i = 0; i < numTasks; ++i) fn(i, 0);
      return;
    }
    {
      MutexLock lock(mutex_);
      fn_ = &fn;
      numTasks_ = numTasks;
      nextTask_.store(0, std::memory_order_relaxed);
      pendingWorkers_ = static_cast<int>(workers_.size());
      ++generation_;
    }
    wake_.notifyAll();
    runTasks(0);
    MutexLock lock(mutex_);
    drained_.wait(lock, [this]() SLIM_REQUIRES(mutex_) {
      return pendingWorkers_ == 0;
    });
    fn_ = nullptr;
    if (firstError_) {
      std::exception_ptr e = firstError_;
      firstError_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  void workerLoop(int worker) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        MutexLock lock(mutex_);
        wake_.wait(lock, [this, &seen]() SLIM_REQUIRES(mutex_) {
          return stop_ || generation_ != seen;
        });
        if (stop_) return;
        seen = generation_;
      }
      runTasks(worker);
      {
        MutexLock lock(mutex_);
        if (--pendingWorkers_ == 0) drained_.notifyOne();
      }
    }
  }

  void runTasks(int worker) {
    for (;;) {
      const int i = nextTask_.fetch_add(1, std::memory_order_relaxed);
      if (i >= numTasks_) return;
      try {
        (*fn_)(i, worker);
      } catch (...) {
        MutexLock lock(mutex_);
        if (!firstError_) firstError_ = std::current_exception();
      }
    }
  }

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  CondVar wake_;
  CondVar drained_;
  // fn_ and numTasks_ are *epoch* state, not conventionally guarded state:
  // parallelFor publishes them under mutex_ before bumping generation_, and
  // workers read them lock-free inside runTasks only between observing the
  // new generation (acquire via the wait above) and reporting drained — a
  // window in which parallelFor provably does not write them.  GUARDED_BY
  // cannot express that handshake, so they stay unannotated; the TSan job
  // checks the protocol dynamically.
  const std::function<void(int, int)>* fn_ = nullptr;
  int numTasks_ = 0;
  std::atomic<int> nextTask_{0};
  int pendingWorkers_ SLIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ SLIM_GUARDED_BY(mutex_) = 0;
  bool stop_ SLIM_GUARDED_BY(mutex_) = false;
  std::exception_ptr firstError_ SLIM_GUARDED_BY(mutex_);
};

}  // namespace slim::support
