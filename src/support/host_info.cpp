#include "support/host_info.hpp"

#include <thread>

#if defined(_WIN32)
#include <cstdlib>
#else
#include <unistd.h>
#endif

namespace slim::support {

std::string hostName() {
#if defined(_WIN32)
  if (const char* env = std::getenv("COMPUTERNAME")) return env;
  return "unknown";
#else
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) != 0 || buf[0] == '\0')
    return "unknown";
  return buf;
#endif
}

int hardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace slim::support
