#include "support/atomic_file.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

#if defined(_WIN32)
#include <process.h>

#include <filesystem>
#include <fstream>
#else
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace slim::support {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("atomic write to '" + path + "' failed: " + what);
}

}  // namespace

#if defined(_WIN32)

// Portability fallback: stream + std::filesystem::rename, which replaces
// an existing destination in one step (MoveFileEx semantics) — the
// destination is never deleted first, so it is always either the previous
// or the complete new content.  No fsync equivalent is attempted here.
void writeFileAtomic(const std::string& path, std::string_view content) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::_getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) fail(path, "cannot open temp file");
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      fail(path, "short write to temp file");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    fail(path, "rename failed: " + ec.message());
  }
}

#else

void writeFileAtomic(const std::string& path, std::string_view content) {
  // Temp file in the destination directory, named per-pid so concurrent
  // writers (two batch runs sharing an output directory) never collide.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(path, std::strerror(errno));

  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n = ::write(fd, content.data() + written,
                              content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail(path, std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  // The data must be durable *before* the rename publishes it, or a crash
  // shortly after could surface a complete-looking but empty file.
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(path, std::strerror(err));
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail(path, std::strerror(err));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail(path, std::strerror(err));
  }
  // Best-effort directory fsync so the rename itself survives a power cut;
  // failure here is not a correctness problem for the file content.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dirFd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirFd >= 0) {
    ::fsync(dirFd);
    ::close(dirFd);
  }
}

#endif

}  // namespace slim::support
