#pragma once
// Minimal strict JSON parser for the serve protocol (src/serve/) and its
// tests.  Counterpart to the emission helpers in support/json.hpp: requests
// arriving over the daemon socket are untrusted input, so the grammar is
// enforced strictly (RFC 8259) and every deviation throws JsonError with a
// byte offset instead of guessing.
//
// Deliberate limits:
//   - numbers are stored as double (the report schema only emits doubles;
//     integers above 2^53 would lose precision, none occur in practice),
//   - object member order is preserved, duplicate keys are rejected,
//   - nesting depth is capped (kMaxJsonDepth) so hostile input cannot
//     overflow the stack,
//   - input must be a single JSON value; trailing non-whitespace is an error.

#include <cstddef>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace slim::support {

/// Thrown on any malformed input; the message includes the byte offset.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::size_t kMaxJsonDepth = 64;

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;
  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool b);
  static JsonValue makeNumber(double v);
  static JsonValue makeString(std::string s);
  static JsonValue makeArray(Array a);
  static JsonValue makeObject(Object o);

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isBool() const { return kind_ == Kind::Bool; }
  bool isNumber() const { return kind_ == Kind::Number; }
  bool isString() const { return kind_ == Kind::String; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }

  /// Accessors throw JsonError on a kind mismatch.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;
  const Array& asArray() const;
  const Object& asObject() const;

  /// Object lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Object lookup; throws JsonError naming the key when absent.
  const JsonValue& at(std::string_view key) const;

  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses exactly one JSON value from `text` (leading/trailing whitespace
/// allowed, nothing else).  Throws JsonError on any deviation.
JsonValue parseJson(std::string_view text);

/// Re-emits a parsed value using the same number/string formatting as the
/// report writers (jsonNumber/jsonString), so a parse -> write round trip of
/// a report produced by this codebase is byte-identical.
void writeJson(std::ostream& os, const JsonValue& value);

}  // namespace slim::support
