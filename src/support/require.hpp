#pragma once
// Lightweight precondition checking shared by all slimcodeml modules.
//
// SLIM_REQUIRE is used for conditions that depend on caller input (file
// contents, user parameters, dimensions) and therefore must stay active in
// release builds; violations throw std::invalid_argument with location info.

#include <stdexcept>
#include <string>

namespace slim {

[[noreturn]] inline void requireFail(const char* cond, const char* file, int line,
                                     const std::string& msg) {
  throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) +
                              ": requirement failed (" + cond + "): " + msg);
}

}  // namespace slim

#define SLIM_REQUIRE(cond, msg)                                  \
  do {                                                           \
    if (!(cond)) ::slim::requireFail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
