// Task-level vs pattern-level parallelism on a multi-gene batch, end-to-end
// through core::BatchAnalysis::runAll() (the full H0/H1 fits + site scans
// of an 8-gene mini-Selectome).
//
// Expected shape: with tasks >= workers, task-level fan-out wins — whole
// fits are embarrassingly parallel and pay zero per-branch synchronization,
// while pattern-level splits each (small) sweep and synchronizes per
// evaluation.  On a 1-core host both collapse to the sequential path.
//
// Emit machine-readable numbers for tracking with
//   ./batch_scaling --benchmark_format=json > BENCH_batch_scaling.json

#include <benchmark/benchmark.h>

#include "core/batch.hpp"
#include "sim/datasets.hpp"

namespace {

using namespace slim;

struct Gene {
  seqio::CodonAlignment codons;
  std::shared_ptr<const tree::Tree> tree;
};

const std::vector<Gene>& genes() {
  static const std::vector<Gene> genes = [] {
    const auto& gc = bio::GeneticCode::universal();
    std::vector<Gene> out;
    for (int g = 0; g < 8; ++g) {
      sim::Rng rng(4242 + 100 * g);
      auto tree = sim::yuleTree(6, rng);
      sim::pickForegroundBranch(tree, rng);
      const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
      model::BranchSiteParams truth;
      truth.kappa = 2.0;
      truth.omega0 = 0.1;
      truth.omega2 = g % 2 == 0 ? 6.0 : 1.0;
      truth.p0 = 0.4;
      truth.p1 = 0.4;
      const auto simOut = sim::evolveBranchSite(
          gc, tree, truth,
          g % 2 == 0 ? model::Hypothesis::H1 : model::Hypothesis::H0,
          /*numCodons=*/60, pi, rng);
      out.push_back({seqio::encodeCodons(simOut.alignment, gc),
                     std::make_shared<const tree::Tree>(std::move(tree))});
    }
    return out;
  }();
  return genes;
}

// Args: (policy: 0 task / 1 pattern, workers).
void BM_BatchRunAll(benchmark::State& state) {
  const auto policy = state.range(0) == 0 ? core::ParallelPolicy::TaskLevel
                                          : core::ParallelPolicy::PatternLevel;
  const int workers = static_cast<int>(state.range(1));

  core::BatchOptions options;
  options.fit.bfgs.maxIterations = 4;
  options.fit.tuning.numThreads = workers;
  options.fit.tuning.policy = policy;
  options.fit.tuning.cachePropagators = 1;

  double lnLSum = 0;
  std::int64_t evaluations = 0, cacheHits = 0;
  for (auto _ : state) {
    // A fresh batch per iteration: cold contexts and cold shards, so each
    // measurement covers the whole runAll the CLI would do.
    core::BatchAnalysis batch(core::EngineKind::Slim, options);
    for (const auto& gene : genes()) batch.addGene(gene.codons, gene.tree);
    const auto tests = batch.runAll();
    for (const auto& t : tests) lnLSum += t.h0.lnL + t.h1.lnL;
    evaluations += batch.totals().evaluations;
    cacheHits += batch.totals().propagatorCacheHits;
    benchmark::DoNotOptimize(tests);
  }
  benchmark::DoNotOptimize(lnLSum);
  state.SetLabel(policy == core::ParallelPolicy::TaskLevel ? "task-level"
                                                           : "pattern-level");
  state.counters["genes"] = static_cast<double>(genes().size());
  state.counters["workers"] = workers;
  state.counters["evals_per_run"] = benchmark::Counter(
      static_cast<double>(evaluations), benchmark::Counter::kAvgIterations);
  state.counters["cache_hits_per_run"] = benchmark::Counter(
      static_cast<double>(cacheHits), benchmark::Counter::kAvgIterations);
}

}  // namespace

BENCHMARK(BM_BatchRunAll)
    ->ArgNames({"policy", "workers"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK_MAIN();
