// Scaling study for the pattern-blocked parallel engine and the persistent
// propagator cache (the post-paper optimizations layered on SlimCodeML).
//
// Part 1 — propagation scaling: raw logLikelihood evaluations on the
// Table II dataset-i shape, comparing CodeML's per-pattern gemv propagation
// (1 thread) against the blocked BLAS-3 path at 1..N threads.  The blocked
// single-thread line already shows the Sec. III-B bundling win; additional
// threads split the per-class pattern blocks across cores.
//
// Part 2 — propagator cache: a finite-difference-gradient access pattern
// (one branch length moves per evaluation, substitution parameters fixed),
// which is what the BFGS driver does numBranches times per gradient.  With
// the cache every unchanged branch's propagator is served from memory;
// EvalCounters reports the hit/miss traffic.
//
// Every configuration prints its lnL; they must agree bit for bit.

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "lik/branch_site_likelihood.hpp"
#include "seqio/alignment.hpp"
#include "support/parallel.hpp"

namespace {

using namespace slim;
using lik::BranchSiteLikelihood;
using lik::LikelihoodOptions;

struct EvalResult {
  double secondsPerEval = 0;
  double lnL = 0;
  lik::EvalCounters counters;
};

EvalResult timeEvals(BranchSiteLikelihood& eval,
                     const model::BranchSiteParams& params, int reps) {
  eval.logLikelihood(params);  // warm-up (first-eval eigen + propagators)
  eval.resetCounters();
  double lnL = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) lnL = eval.logLikelihood(params);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return {secs / reps, lnL, eval.counters()};
}

}  // namespace

int main() {
  const auto& gc = bio::GeneticCode::universal();
  const auto ds = bench::paperDataset(sim::PaperDatasetId::I);
  const auto ca = seqio::encodeCodons(ds.alignment, gc);
  const auto patterns = seqio::compressPatterns(ca);
  const auto pi =
      model::estimateCodonFrequencies(ca, model::CodonFrequencyModel::F3x4);
  const auto params = sim::defaultSimulationParams();

  const int reps = bench::scaledCap(3);
  const int hw = support::resolveThreadCount(0);
  std::cout << "Parallel scaling — dataset i (" << patterns.numPatterns()
            << " patterns), " << reps << " evals per row, "
            << hw << " hardware threads\n\n";

  // --- Part 1: propagation scaling ---
  struct Row {
    std::string label;
    LikelihoodOptions opts;
  };
  std::vector<Row> rows;
  {
    LikelihoodOptions perSite = lik::slimOptions();
    perSite.propagation = lik::PropagationStrategy::PerSiteGemv;
    perSite.numThreads = 1;
    rows.push_back({"per-site gemv, 1 thread (CodeML-style)", perSite});
  }
  for (int threads : {1, 2, 4}) {
    if (threads > 1 && threads > hw * 2) break;
    LikelihoodOptions blocked = lik::slimOptions();
    blocked.numThreads = threads;
    rows.push_back({"blocked gemm, " + std::to_string(threads) + " thread" +
                        (threads > 1 ? "s" : ""),
                    blocked});
  }

  std::cout << std::left << std::setw(42) << "configuration" << std::setw(12)
            << "s/eval" << std::setw(10) << "speedup" << "lnL\n";
  double baselineSecs = 0;
  for (const auto& row : rows) {
    BranchSiteLikelihood eval(ca, patterns, pi, ds.tree, model::Hypothesis::H1,
                              row.opts);
    const auto r = timeEvals(eval, params, reps);
    if (baselineSecs == 0) baselineSecs = r.secondsPerEval;
    std::cout << std::left << std::setw(42) << row.label << std::setw(12)
              << std::fixed << std::setprecision(4) << r.secondsPerEval
              << std::setw(10) << std::setprecision(2)
              << baselineSecs / r.secondsPerEval << std::setprecision(6)
              << r.lnL << '\n';
    std::cout.flush();
  }

  // --- Part 2: propagator cache under a gradient access pattern ---
  std::cout << "\nPropagator cache — one branch length moves per evaluation "
               "(finite-difference gradient pattern)\n\n"
            << std::left << std::setw(14) << "cache" << std::setw(12)
            << "s/eval" << std::setw(10) << "builds" << std::setw(9) << "hits"
            << std::setw(9) << "misses" << "lnL\n";
  for (const bool useCache : {false, true}) {
    LikelihoodOptions opts = lik::slimOptions();
    opts.numThreads = 1;
    opts.cachePropagators = useCache;
    BranchSiteLikelihood eval(ca, patterns, pi, ds.tree, model::Hypothesis::H1,
                              opts);
    eval.logLikelihood(params);  // warm-up
    eval.resetCounters();
    const int evals = 2 * eval.numBranches();
    double lnL = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int e = 0; e < evals; ++e) {
      const int k = e % eval.numBranches();
      const double t = eval.branchLength(k);
      eval.setBranchLength(k, t * 1.01);
      lnL = eval.logLikelihood(params);
      eval.setBranchLength(k, t);  // restore, as a gradient driver does
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto& c = eval.counters();
    std::cout << std::left << std::setw(14) << (useCache ? "on" : "off")
              << std::setw(12) << std::fixed << std::setprecision(4)
              << secs / evals << std::setw(10) << c.propagatorBuilds
              << std::setw(9) << c.propagatorCacheHits << std::setw(9)
              << c.propagatorCacheMisses << std::setprecision(6) << lnL
              << '\n';
    std::cout.flush();
  }
  std::cout << "\nExpected shape: blocked gemm beats per-site gemv at every "
               "thread count;\ncache-on rebuilds only the moved branch's "
               "propagators (nonzero hits) at identical lnL.\n";
  return 0;
}
