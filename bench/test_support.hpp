#pragma once
// Deterministic random inputs for kernel benches (mirror of the helpers in
// tests/test_util.hpp, duplicated so bench binaries do not depend on the
// test tree).

#include <random>

#include "linalg/matrix.hpp"

namespace slim::bench {

inline linalg::Matrix randomMatrix(std::size_t rows, std::size_t cols,
                                   unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::Matrix m(rows, cols);
  for (std::size_t k = 0; k < m.size(); ++k) m.data()[k] = dist(gen);
  return m;
}

inline linalg::Matrix randomSymmetric(std::size_t n, unsigned seed) {
  linalg::Matrix m = randomMatrix(n, n, seed);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) m(i, j) = m(j, i);
  return m;
}

inline linalg::Vector randomVector(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = dist(gen);
  return v;
}

}  // namespace slim::bench
