// Gradient-mode comparison on a full H1 fit: fd vs fd-parallel vs analytic,
// end-to-end through core::fitHypothesis (the production path).
//
// Expected shape: evals_per_fit drops by >= 3x under `analytic` — every BFGS
// iteration replaces its numBranches finite-difference probes with one
// pruning-style gradient sweep, leaving only the handful of
// substitution/mixture coordinates to finite-difference.  `fd-parallel`
// keeps the evaluation count of `fd` but fans the probe points across
// single-threaded evaluators (a wall-clock win on multi-core hosts; on the
// 1-core dev container it collapses to the serial path).
//
// Emit machine-readable numbers for tracking with
//   ./gradient_scaling --benchmark_format=json > BENCH_gradient_scaling.json

#include <benchmark/benchmark.h>

#include "core/analysis.hpp"
#include "model/frequencies.hpp"
#include "sim/datasets.hpp"
#include "sim/evolver.hpp"
#include "sim/random_tree.hpp"
#include "sim/rng.hpp"

namespace {

using namespace slim;

struct Inputs {
  seqio::CodonAlignment codons;
  tree::Tree tree;
};

// 10 species -> 18 branches: large enough that the per-branch FD axis
// dominates the gradient bill (the regime the analytic mode targets).
const Inputs& inputs() {
  static const Inputs in = [] {
    sim::Rng rng(733);
    auto tree = sim::yuleTree(10, rng);
    sim::pickForegroundBranch(tree, rng);
    const auto& gc = bio::GeneticCode::universal();
    const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
    const auto simOut =
        sim::evolveBranchSite(gc, tree, sim::defaultSimulationParams(),
                              model::Hypothesis::H1, /*numCodons=*/40, pi, rng);
    return Inputs{seqio::encodeCodons(simOut.alignment, gc), std::move(tree)};
  }();
  return in;
}

// Args: (mode: 0 fd / 1 fd-parallel / 2 analytic, workers).
void BM_H1FitByGradientMode(benchmark::State& state) {
  const core::GradientMode mode =
      state.range(0) == 0   ? core::GradientMode::FiniteDiff
      : state.range(0) == 1 ? core::GradientMode::ParallelFiniteDiff
                            : core::GradientMode::Analytic;
  const int workers = static_cast<int>(state.range(1));

  core::FitOptions options;
  options.bfgs.maxIterations = 30;
  options.tuning.gradient = mode;
  options.tuning.numThreads = workers;
  options.tuning.policy = core::ParallelPolicy::TaskLevel;
  options.tuning.cachePropagators = 1;

  double lnLSum = 0;
  std::int64_t evaluations = 0, sweeps = 0;
  long gradientEvals = 0;
  for (auto _ : state) {
    core::BranchSiteAnalysis analysis(inputs().codons, inputs().tree,
                                      core::EngineKind::Slim, options);
    const auto fit = analysis.fit(model::Hypothesis::H1);
    lnLSum += fit.lnL;
    evaluations += fit.counters.evaluations;
    sweeps += fit.counters.gradientSweeps;
    gradientEvals += fit.gradientEvaluations;
    benchmark::DoNotOptimize(fit);
  }
  benchmark::DoNotOptimize(lnLSum);
  state.SetLabel(core::gradientModeName(mode));
  state.counters["workers"] = workers;
  state.counters["evals_per_fit"] = benchmark::Counter(
      static_cast<double>(evaluations), benchmark::Counter::kAvgIterations);
  state.counters["grad_evals_per_fit"] = benchmark::Counter(
      static_cast<double>(gradientEvals), benchmark::Counter::kAvgIterations);
  state.counters["grad_sweeps_per_fit"] = benchmark::Counter(
      static_cast<double>(sweeps), benchmark::Counter::kAvgIterations);
}

}  // namespace

BENCHMARK(BM_H1FitByGradientMode)
    ->ArgNames({"mode", "workers"})
    ->Args({0, 1})
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({2, 1})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK_MAIN();
