// Table IV reproduction: the three speedup flavors of SlimCodeML over
// CodeML for datasets i-iv.
//
// Paper values:
//     Dataset                    i     ii    iii   iv
//     Overall speedup H0         1.9   2.3   2.6   9.4
//     Overall speedup H1         2.0   1.6   2.4   4.4
//     Combined speedup H0+H1     2.0   1.9   2.5   6.4
//     Per-iteration speedup H0   2.1   1.8   2.7   3.3
//     Per-iteration speedup H1   1.9   1.7   2.5   3.0
//     Per-iteration H0+H1        2.0   1.7   2.6   3.1
//
// The shape to check: every entry > 1; per-iteration speedups in the 1.5-4x
// band, growing with species count; overall speedups can exceed
// per-iteration ones only through differing iteration counts (the paper's
// dataset iv: 1039 vs 509 iterations).  With equal caps here, overall ~=
// per-iteration by construction.

#include <array>
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace slim;
  const auto specs = bench::benchDatasetSpecs();

  struct Row {
    bench::EnginePair base, slim;
  };
  std::vector<Row> rows;

  std::cout << "Table IV — speedups of SlimCodeML vs CodeML (iteration cap "
               "scale " << bench::benchScale() << ")\n\nmeasuring";
  std::cout.flush();
  for (const auto& spec : specs) {
    const auto ds = bench::paperDataset(spec.id);
    // Slightly tighter caps than Table III: this binary runs its own grid.
    const int cap = bench::scaledCap(std::max(1, bench::defaultCap(spec.id) - 1));
    rows.push_back({bench::runEngine(ds, core::EngineKind::CodemlBaseline, cap),
                    bench::runEngine(ds, core::EngineKind::Slim, cap)});
    std::cout << " " << spec.label;
    std::cout.flush();
  }
  std::cout << "\n\n" << std::left << std::setw(30) << "Dataset";
  for (const auto& spec : specs) std::cout << std::setw(8) << spec.label;
  std::cout << '\n';

  const auto printRow = [&](const char* name, auto metric) {
    std::cout << std::left << std::setw(30) << name;
    for (const auto& row : rows)
      std::cout << std::setw(8) << std::fixed << std::setprecision(2)
                << metric(row);
    std::cout << '\n';
  };

  printRow("Overall speedup H0", [](const Row& r) {
    return r.base.h0.seconds / r.slim.h0.seconds;
  });
  printRow("Overall speedup H1", [](const Row& r) {
    return r.base.h1.seconds / r.slim.h1.seconds;
  });
  printRow("Combined speedup H0+H1", [](const Row& r) {
    return r.base.totalSeconds() / r.slim.totalSeconds();
  });
  printRow("Per-iteration speedup H0", [](const Row& r) {
    return r.base.h0.secondsPerIteration() / r.slim.h0.secondsPerIteration();
  });
  printRow("Per-iteration speedup H1", [](const Row& r) {
    return r.base.h1.secondsPerIteration() / r.slim.h1.secondsPerIteration();
  });
  printRow("Per-iteration speedup H0+H1", [](const Row& r) {
    const double b = r.base.totalSeconds() / r.base.totalIterations();
    const double s = r.slim.totalSeconds() / r.slim.totalIterations();
    return b / s;
  });

  std::cout << "\nPaper shape: all entries > 1; per-iteration speedup grows "
               "with species count (iv largest).\n";
  return 0;
}
