// Ablation B (DESIGN.md §5): CPV propagation strategies, end-to-end through
// BranchSiteLikelihood::logLikelihood at several alignment lengths.
//
//   per-site-gemv   — CodeML (one dgemv per site pattern)
//   bundled-gemm    — SlimCodeML's BLAS-3 bundling (Sec. III-B)
//   symmetric-symv  — Eq. 12 symmetric propagator + symv
//   factored-apply  — Yhat factors, no n x n propagator at all
//
// Expected shape: bundled-gemm wins at large pattern counts; factored-apply
// wins when patterns are few relative to n = 61 (it skips the ~n^3
// reconstruction); per-site-gemv never wins.

#include <benchmark/benchmark.h>

#include "lik/branch_site_likelihood.hpp"
#include "model/frequencies.hpp"
#include "sim/datasets.hpp"

namespace {

using namespace slim;

struct Case {
  seqio::CodonAlignment ca;
  seqio::SitePatterns sp;
  std::vector<double> pi;
  tree::Tree tree;
};

const Case& getCase(int numCodons) {
  static std::map<int, Case> cases;
  auto it = cases.find(numCodons);
  if (it == cases.end()) {
    sim::Rng rng(17);
    auto tree = sim::yuleTree(8, rng);
    sim::pickForegroundBranch(tree, rng);
    const auto& gc = bio::GeneticCode::universal();
    const auto piGen = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
    const auto simOut =
        sim::evolveBranchSite(gc, tree, sim::defaultSimulationParams(),
                              model::Hypothesis::H1, numCodons, piGen, rng);
    Case c;
    c.ca = seqio::encodeCodons(simOut.alignment, gc);
    c.sp = seqio::compressPatterns(c.ca);
    c.pi =
        model::estimateCodonFrequencies(c.ca, model::CodonFrequencyModel::F3x4);
    c.tree = std::move(tree);
    it = cases.emplace(numCodons, std::move(c)).first;
  }
  return it->second;
}

void evaluate(benchmark::State& state, lik::PropagationStrategy strategy) {
  const auto& c = getCase(static_cast<int>(state.range(0)));
  lik::LikelihoodOptions opts = lik::slimOptions();
  opts.propagation = strategy;
  lik::BranchSiteLikelihood eval(c.ca, c.sp, c.pi, c.tree,
                                 model::Hypothesis::H1, opts);
  const auto params = sim::defaultSimulationParams();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.logLikelihood(params));
  }
  state.counters["patterns"] =
      static_cast<double>(c.sp.numPatterns());
}

void BM_PerSiteGemv(benchmark::State& state) {
  evaluate(state, lik::PropagationStrategy::PerSiteGemv);
}
void BM_BundledGemm(benchmark::State& state) {
  evaluate(state, lik::PropagationStrategy::BundledGemm);
}
void BM_SymmetricSymv(benchmark::State& state) {
  evaluate(state, lik::PropagationStrategy::SymmetricSymv);
}
void BM_FactoredApply(benchmark::State& state) {
  evaluate(state, lik::PropagationStrategy::FactoredApply);
}

BENCHMARK(BM_PerSiteGemv)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_BundledGemm)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_SymmetricSymv)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_FactoredApply)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
