// Ablation C (DESIGN.md §5): naive (CodeML-style) vs optimized BLAS-subset
// kernels across sizes around the codon dimension n = 61.
//
// This isolates the "use tuned kernels" component of the paper's speedup
// (its rules of thumb: "Use BLAS...", "Exploit matrix properties...").

#include <benchmark/benchmark.h>

#include "backend/compute_backend.hpp"
#include "linalg/blas2.hpp"
#include "linalg/blas3.hpp"
#include "test_support.hpp"

namespace {

using namespace slim;
using linalg::Flavor;
using linalg::Matrix;
using linalg::Vector;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flavor flavor = state.range(1) ? Flavor::Opt : Flavor::Naive;
  const Matrix a = bench::randomMatrix(n, n, 1);
  const Matrix b = bench::randomMatrix(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm(flavor, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(linalg::flavorName(flavor));
}

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flavor flavor = state.range(1) ? Flavor::Opt : Flavor::Naive;
  const Matrix a = bench::randomMatrix(n, n, 3);
  const Matrix b = bench::randomMatrix(n, n, 4);
  Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemmNT(flavor, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(linalg::flavorName(flavor));
}

void BM_Syrk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flavor flavor = state.range(1) ? Flavor::Opt : Flavor::Naive;
  const Matrix y = bench::randomMatrix(n, n, 5);
  Matrix c(n, n);
  for (auto _ : state) {
    linalg::syrk(flavor, y, c);
    benchmark::DoNotOptimize(c.data());
  }
  // Effective flops of the full product; syrk-opt does half of this.
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(linalg::flavorName(flavor));
}

void BM_Gemv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flavor flavor = state.range(1) ? Flavor::Opt : Flavor::Naive;
  const Matrix a = bench::randomMatrix(n, n, 6);
  const Vector x = bench::randomVector(n, 7);
  Vector y(n);
  for (auto _ : state) {
    linalg::gemv(flavor, a, x.span(), y.span());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n);
  state.SetLabel(linalg::flavorName(flavor));
}

void BM_Symv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flavor flavor = state.range(1) ? Flavor::Opt : Flavor::Naive;
  const Matrix a = bench::randomSymmetric(n, 8);
  const Vector x = bench::randomVector(n, 9);
  Vector y(n);
  for (auto _ : state) {
    linalg::symv(flavor, a, x.span(), y.span());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n);
  state.SetLabel(linalg::flavorName(flavor));
}

void sizesAndFlavors(benchmark::internal::Benchmark* b) {
  for (int n : {61, 122, 244})
    for (int flavor : {0, 1}) b->Args({n, flavor});
}

BENCHMARK(BM_Gemm)->Apply(sizesAndFlavors);
BENCHMARK(BM_GemmNT)->Apply(sizesAndFlavors);
BENCHMARK(BM_Syrk)->Apply(sizesAndFlavors);
BENCHMARK(BM_Gemv)->Apply(sizesAndFlavors);
BENCHMARK(BM_Symv)->Apply(sizesAndFlavors);

// --- Compute-backend dimension (src/backend/) ---------------------------
//
// The same three hot panels through each runtime-pluggable backend's kernel
// table: reference (scalar oracle), simd (best available ISA), blas (vendor
// CBLAS, only in -DSLIM_WITH_BLAS=ON builds).  Unavailable backends skip.
backend::BackendKind kindForArg(int arg) {
  switch (arg) {
    case 1: return backend::BackendKind::Simd;
    case 2: return backend::BackendKind::Blas;
    default: return backend::BackendKind::Reference;
  }
}

bool skipUnavailable(benchmark::State& state, backend::BackendKind kind) {
  if (backend::backendAvailable(kind)) return false;
  state.SkipWithError("backend unavailable in this build");
  return true;
}

void BM_BackendGemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto kind = kindForArg(static_cast<int>(state.range(1)));
  if (skipUnavailable(state, kind)) return;
  const auto be = backend::computeBackend(kind, linalg::detectSimdLevel());
  const Matrix a = bench::randomMatrix(n, n, 1);
  const Matrix b = bench::randomMatrix(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    be.ops.gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(be.name);
}

void BM_BackendGemmNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto kind = kindForArg(static_cast<int>(state.range(1)));
  if (skipUnavailable(state, kind)) return;
  const auto be = backend::computeBackend(kind, linalg::detectSimdLevel());
  const Matrix a = bench::randomMatrix(n, n, 3);
  const Matrix b = bench::randomMatrix(n, n, 4);
  Matrix c(n, n);
  for (auto _ : state) {
    be.ops.gemmNT(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(be.name);
}

void BM_BackendSyrk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto kind = kindForArg(static_cast<int>(state.range(1)));
  if (skipUnavailable(state, kind)) return;
  const auto be = backend::computeBackend(kind, linalg::detectSimdLevel());
  const Matrix y = bench::randomMatrix(n, n, 5);
  Matrix c(n, n);
  for (auto _ : state) {
    be.ops.syrk(y.data(), c.data(), n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(be.name);
}

void sizesAndBackends(benchmark::internal::Benchmark* b) {
  for (int n : {61, 122, 244})
    for (int kind : {0, 1, 2}) b->Args({n, kind});
}

BENCHMARK(BM_BackendGemm)->Apply(sizesAndBackends);
BENCHMARK(BM_BackendGemmNT)->Apply(sizesAndBackends);
BENCHMARK(BM_BackendSyrk)->Apply(sizesAndBackends);

}  // namespace

BENCHMARK_MAIN();
