// Ablation C (DESIGN.md §5): naive (CodeML-style) vs optimized BLAS-subset
// kernels across sizes around the codon dimension n = 61.
//
// This isolates the "use tuned kernels" component of the paper's speedup
// (its rules of thumb: "Use BLAS...", "Exploit matrix properties...").

#include <benchmark/benchmark.h>

#include "linalg/blas2.hpp"
#include "linalg/blas3.hpp"
#include "test_support.hpp"

namespace {

using namespace slim;
using linalg::Flavor;
using linalg::Matrix;
using linalg::Vector;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flavor flavor = state.range(1) ? Flavor::Opt : Flavor::Naive;
  const Matrix a = bench::randomMatrix(n, n, 1);
  const Matrix b = bench::randomMatrix(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm(flavor, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(linalg::flavorName(flavor));
}

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flavor flavor = state.range(1) ? Flavor::Opt : Flavor::Naive;
  const Matrix a = bench::randomMatrix(n, n, 3);
  const Matrix b = bench::randomMatrix(n, n, 4);
  Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemmNT(flavor, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(linalg::flavorName(flavor));
}

void BM_Syrk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flavor flavor = state.range(1) ? Flavor::Opt : Flavor::Naive;
  const Matrix y = bench::randomMatrix(n, n, 5);
  Matrix c(n, n);
  for (auto _ : state) {
    linalg::syrk(flavor, y, c);
    benchmark::DoNotOptimize(c.data());
  }
  // Effective flops of the full product; syrk-opt does half of this.
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(linalg::flavorName(flavor));
}

void BM_Gemv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flavor flavor = state.range(1) ? Flavor::Opt : Flavor::Naive;
  const Matrix a = bench::randomMatrix(n, n, 6);
  const Vector x = bench::randomVector(n, 7);
  Vector y(n);
  for (auto _ : state) {
    linalg::gemv(flavor, a, x.span(), y.span());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n);
  state.SetLabel(linalg::flavorName(flavor));
}

void BM_Symv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flavor flavor = state.range(1) ? Flavor::Opt : Flavor::Naive;
  const Matrix a = bench::randomSymmetric(n, 8);
  const Vector x = bench::randomVector(n, 9);
  Vector y(n);
  for (auto _ : state) {
    linalg::symv(flavor, a, x.span(), y.span());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n);
  state.SetLabel(linalg::flavorName(flavor));
}

void sizesAndFlavors(benchmark::internal::Benchmark* b) {
  for (int n : {61, 122, 244})
    for (int flavor : {0, 1}) b->Args({n, flavor});
}

BENCHMARK(BM_Gemm)->Apply(sizesAndFlavors);
BENCHMARK(BM_GemmNT)->Apply(sizesAndFlavors);
BENCHMARK(BM_Syrk)->Apply(sizesAndFlavors);
BENCHMARK(BM_Gemv)->Apply(sizesAndFlavors);
BENCHMARK(BM_Symv)->Apply(sizesAndFlavors);

}  // namespace

BENCHMARK_MAIN();
