// Accuracy reproduction (paper Sec. IV-1): the relative log-likelihood
// difference D = |lnL - lnL_hat| / |lnL| between the CodeML baseline and
// SlimCodeML.
//
// Paper values: D = 0, 9.8e-12, 5.5e-8, 3e-9 (H0, datasets i-iv) and
// D = 0, 0, 4.9e-8, 1.1e-8 (H1) after full optimization.
//
// Two flavors are reported here:
//   (a) evaluation-level D: both engines evaluate lnL at the *same*
//       parameter point — isolates the kernels' floating-point differences
//       (the root cause of the paper's D values);
//   (b) fit-level D on dataset i: both engines run the same capped
//       optimization from the same start, like the paper's protocol.

#include <cmath>
#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "lik/branch_site_likelihood.hpp"

int main() {
  using namespace slim;
  const auto& gc = bio::GeneticCode::universal();

  std::cout << "Accuracy (Sec. IV-1) — relative lnL difference D between "
               "engines\n\n(a) evaluation-level D at a fixed parameter "
               "point\n\n"
            << std::left << std::setw(6) << "No." << std::setw(16)
            << "D (H0)" << std::setw(16) << "D (H1)" << "lnL (Slim, H1)\n";

  model::BranchSiteParams params = sim::defaultSimulationParams();
  for (const auto& spec : bench::benchDatasetSpecs()) {
    const auto ds = bench::paperDataset(spec.id);
    const auto ca = seqio::encodeCodons(ds.alignment, gc);
    const auto sp = seqio::compressPatterns(ca);
    const auto pi =
        model::estimateCodonFrequencies(ca, model::CodonFrequencyModel::F3x4);

    double d[2], lnLSlimH1 = 0;
    for (const auto h : {model::Hypothesis::H0, model::Hypothesis::H1}) {
      lik::BranchSiteLikelihood base(ca, sp, pi, ds.tree, h,
                                     lik::codemlBaselineOptions());
      lik::BranchSiteLikelihood slim(ca, sp, pi, ds.tree, h,
                                     lik::slimOptions());
      const double lb = base.logLikelihood(params);
      const double ls = slim.logLikelihood(params);
      d[h == model::Hypothesis::H1] = std::fabs(lb - ls) / std::fabs(lb);
      if (h == model::Hypothesis::H1) lnLSlimH1 = ls;
    }
    std::cout << std::left << std::setw(6) << spec.label << std::setw(16)
              << std::scientific << std::setprecision(2) << d[0]
              << std::setw(16) << d[1] << std::fixed << std::setprecision(4)
              << lnLSlimH1 << '\n';
  }

  std::cout << "\n(b) fit-level D, dataset i, capped optimization from an "
               "identical start\n\n";
  const auto ds = bench::paperDataset(sim::PaperDatasetId::I);
  const int cap = bench::scaledCap(6);
  const auto base = bench::runEngine(ds, core::EngineKind::CodemlBaseline, cap);
  const auto slim = bench::runEngine(ds, core::EngineKind::Slim, cap);
  for (int h = 0; h < 2; ++h) {
    const auto& b = h ? base.h1 : base.h0;
    const auto& s = h ? slim.h1 : slim.h0;
    std::cout << "  " << (h ? "H1" : "H0") << ": CodeML lnL = " << std::fixed
              << std::setprecision(6) << b.lnL
              << ", SlimCodeML lnL = " << s.lnL << ", D = " << std::scientific
              << std::setprecision(2)
              << std::fabs(b.lnL - s.lnL) / std::fabs(b.lnL) << '\n';
  }
  std::cout << "\nPaper shape: D between 0 and ~5e-8 — no difference in "
               "biological interpretation.\n";
  return 0;
}
