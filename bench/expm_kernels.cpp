// Ablation A (DESIGN.md §5): the matrix-exponential kernels.
//
//   - Eq. 9 (gemm, ~2n^3) vs Eq. 10 (syrk, ~n^3) reconstruction, in both
//     kernel flavors: the paper's central claim, "saves about half of the
//     flops".
//   - The symmetric eigendecomposition (once per omega class) and the Pade
//     oracle, for context on where time goes.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "backend/compute_backend.hpp"
#include "backend/expm_pade.hpp"
#include "expm/codon_eigen_system.hpp"
#include "expm/pade.hpp"
#include "linalg/diag.hpp"
#include "linalg/simd.hpp"
#include "model/codon_model.hpp"
#include "sim/evolver.hpp"
#include "sim/rng.hpp"

namespace {

using namespace slim;

struct Setup {
  std::vector<double> pi;
  linalg::Matrix s;
  expm::CodonEigenSystem es;

  Setup()
      : pi(makePi()),
        s(makeS()),
        es(s, pi) {}

  static std::vector<double> makePi() {
    sim::Rng rng(31);
    return sim::randomCodonFrequencies(61, 5, rng);
  }
  static linalg::Matrix makeS() {
    linalg::Matrix m(61, 61);
    model::buildExchangeability(bio::GeneticCode::universal(), 2.0, 0.4, m);
    return m;
  }
};

Setup& setup() {
  static Setup s;
  return s;
}

void reconstruct(benchmark::State& state, expm::ReconstructionPath path,
                 linalg::Flavor flavor) {
  auto& s = setup();
  expm::ExpmWorkspace ws;
  linalg::Matrix p(61, 61);
  double t = 0.01;
  for (auto _ : state) {
    s.es.transitionMatrix(t, path, flavor, ws, p);
    benchmark::DoNotOptimize(p.data());
    t += 1e-6;  // defeat any value caching
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Reconstruct_Gemm_Naive(benchmark::State& state) {
  reconstruct(state, expm::ReconstructionPath::Gemm, linalg::Flavor::Naive);
}
void BM_Reconstruct_Gemm_Opt(benchmark::State& state) {
  reconstruct(state, expm::ReconstructionPath::Gemm, linalg::Flavor::Opt);
}
void BM_Reconstruct_Syrk_Naive(benchmark::State& state) {
  reconstruct(state, expm::ReconstructionPath::Syrk, linalg::Flavor::Naive);
}
void BM_Reconstruct_Syrk_Opt(benchmark::State& state) {
  reconstruct(state, expm::ReconstructionPath::Syrk, linalg::Flavor::Opt);
}
BENCHMARK(BM_Reconstruct_Gemm_Naive);
BENCHMARK(BM_Reconstruct_Gemm_Opt);
BENCHMARK(BM_Reconstruct_Syrk_Naive);
BENCHMARK(BM_Reconstruct_Syrk_Opt);

// --- SIMD-dispatched reconstruction (linalg/simd.hpp) -------------------
//
// "Fused" runs the kernel-table transitionMatrix overload: the Pi sandwich
// and clamp are folded into the rank-update loop.  "Unfused" runs the same
// level's plain syrk followed by the separate mirror-free scaleSandwich and
// clamp passes — the legacy step sequence — isolating what fusion buys at
// the same ISA.  Levels the host cannot run are skipped.
void reconstructSimd(benchmark::State& state, linalg::SimdLevel level,
                     bool fused) {
  if (!linalg::simdLevelAvailable(level)) {
    state.SkipWithError("SIMD level unavailable on this host");
    return;
  }
  auto& s = setup();
  const auto& kern = linalg::simdKernels(level);
  expm::ExpmWorkspace ws;
  linalg::Matrix p(61, 61);
  double t = 0.01;
  if (fused) {
    for (auto _ : state) {
      s.es.transitionMatrix(t, expm::ReconstructionPath::Syrk, kern, ws, p);
      benchmark::DoNotOptimize(p.data());
      t += 1e-6;
    }
  } else {
    linalg::Matrix y(61, 61), z(61, 61);
    std::vector<double> expDiag(61);
    for (auto _ : state) {
      for (std::size_t i = 0; i < 61; ++i)
        expDiag[i] = std::exp(0.5 * s.es.eigenvalues()[i] * t);
      linalg::scaleCols(s.es.eigenvectors(), expDiag, y);
      linalg::syrk(kern, y, z);
      linalg::scaleSandwich(z, s.es.invSqrtPi(), s.es.sqrtPi(), p);
      for (std::size_t k = 0; k < p.size(); ++k)
        if (p.data()[k] < 0.0) p.data()[k] = 0.0;
      benchmark::DoNotOptimize(p.data());
      t += 1e-6;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Reconstruct_Syrk_ScalarFused(benchmark::State& state) {
  reconstructSimd(state, linalg::SimdLevel::Scalar, true);
}
void BM_Reconstruct_Syrk_Avx2Unfused(benchmark::State& state) {
  reconstructSimd(state, linalg::SimdLevel::Avx2, false);
}
void BM_Reconstruct_Syrk_Avx2Fused(benchmark::State& state) {
  reconstructSimd(state, linalg::SimdLevel::Avx2, true);
}
void BM_Reconstruct_Syrk_Avx512Unfused(benchmark::State& state) {
  reconstructSimd(state, linalg::SimdLevel::Avx512, false);
}
void BM_Reconstruct_Syrk_Avx512Fused(benchmark::State& state) {
  reconstructSimd(state, linalg::SimdLevel::Avx512, true);
}
BENCHMARK(BM_Reconstruct_Syrk_ScalarFused);
BENCHMARK(BM_Reconstruct_Syrk_Avx2Unfused);
BENCHMARK(BM_Reconstruct_Syrk_Avx2Fused);
BENCHMARK(BM_Reconstruct_Syrk_Avx512Unfused);
BENCHMARK(BM_Reconstruct_Syrk_Avx512Fused);

void BM_SymmetricPropagator(benchmark::State& state) {
  auto& s = setup();
  expm::ExpmWorkspace ws;
  linalg::Matrix m(61, 61);
  double t = 0.01;
  for (auto _ : state) {
    s.es.symmetricPropagator(t, linalg::Flavor::Opt, ws, m);
    benchmark::DoNotOptimize(m.data());
    t += 1e-6;
  }
}
BENCHMARK(BM_SymmetricPropagator);

void BM_MakeYhat(benchmark::State& state) {
  auto& s = setup();
  linalg::Matrix yhat(61, 61);
  double t = 0.01;
  for (auto _ : state) {
    s.es.makeYhat(t, yhat);
    benchmark::DoNotOptimize(yhat.data());
    t += 1e-6;
  }
}
BENCHMARK(BM_MakeYhat);

void BM_Eigendecomposition(benchmark::State& state) {
  auto& s = setup();
  for (auto _ : state) {
    expm::CodonEigenSystem es(s.s, s.pi);
    benchmark::DoNotOptimize(es.eigenvalues()[0]);
  }
}
BENCHMARK(BM_Eigendecomposition);

void BM_PadeOracle(benchmark::State& state) {
  auto& s = setup();
  linalg::Matrix q(61, 61);
  model::buildRateMatrix(s.s, s.pi, q);
  for (std::size_t k = 0; k < q.size(); ++k) q.data()[k] *= 0.3;
  for (auto _ : state) {
    auto p = expm::expmPade(q);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_PadeOracle);

// --- Propagator-builder dimension: eigen vs adaptive expm ---------------
//
// The eigen path amortizes one decomposition per omega class and costs one
// reconstruction per (branch, class); the Higham scaling-and-squaring path
// (src/backend/expm_pade.cpp) pays its Pade evaluation on every call but
// needs no symmetrizable Q.  Benchmarked per call at a typical branch
// length through each available backend's gemm.
void adaptiveExpm(benchmark::State& state, backend::BackendKind kind) {
  if (!backend::backendAvailable(kind)) {
    state.SkipWithError("backend unavailable in this build");
    return;
  }
  auto& s = setup();
  const auto be = backend::computeBackend(kind, linalg::detectSimdLevel());
  linalg::Matrix q(61, 61);
  model::buildRateMatrix(s.s, s.pi, q);
  backend::AdaptiveExpmWorkspace ws;
  linalg::Matrix qt(61, 61), p(61, 61);
  double t = 0.01;
  for (auto _ : state) {
    for (std::size_t k = 0; k < q.size(); ++k) qt.data()[k] = q.data()[k] * t;
    backend::expmAdaptive(qt, be.ops, ws, p);
    benchmark::DoNotOptimize(p.data());
    t += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(be.name);
}

void BM_AdaptiveExpm_Reference(benchmark::State& state) {
  adaptiveExpm(state, backend::BackendKind::Reference);
}
void BM_AdaptiveExpm_Simd(benchmark::State& state) {
  adaptiveExpm(state, backend::BackendKind::Simd);
}
void BM_AdaptiveExpm_Blas(benchmark::State& state) {
  adaptiveExpm(state, backend::BackendKind::Blas);
}
BENCHMARK(BM_AdaptiveExpm_Reference);
BENCHMARK(BM_AdaptiveExpm_Simd);
BENCHMARK(BM_AdaptiveExpm_Blas);

}  // namespace

BENCHMARK_MAIN();
