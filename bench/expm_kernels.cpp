// Ablation A (DESIGN.md §5): the matrix-exponential kernels.
//
//   - Eq. 9 (gemm, ~2n^3) vs Eq. 10 (syrk, ~n^3) reconstruction, in both
//     kernel flavors: the paper's central claim, "saves about half of the
//     flops".
//   - The symmetric eigendecomposition (once per omega class) and the Pade
//     oracle, for context on where time goes.

#include <benchmark/benchmark.h>

#include "expm/codon_eigen_system.hpp"
#include "expm/pade.hpp"
#include "model/codon_model.hpp"
#include "sim/evolver.hpp"
#include "sim/rng.hpp"

namespace {

using namespace slim;

struct Setup {
  std::vector<double> pi;
  linalg::Matrix s;
  expm::CodonEigenSystem es;

  Setup()
      : pi(makePi()),
        s(makeS()),
        es(s, pi) {}

  static std::vector<double> makePi() {
    sim::Rng rng(31);
    return sim::randomCodonFrequencies(61, 5, rng);
  }
  static linalg::Matrix makeS() {
    linalg::Matrix m(61, 61);
    model::buildExchangeability(bio::GeneticCode::universal(), 2.0, 0.4, m);
    return m;
  }
};

Setup& setup() {
  static Setup s;
  return s;
}

void reconstruct(benchmark::State& state, expm::ReconstructionPath path,
                 linalg::Flavor flavor) {
  auto& s = setup();
  expm::ExpmWorkspace ws;
  linalg::Matrix p(61, 61);
  double t = 0.01;
  for (auto _ : state) {
    s.es.transitionMatrix(t, path, flavor, ws, p);
    benchmark::DoNotOptimize(p.data());
    t += 1e-6;  // defeat any value caching
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Reconstruct_Gemm_Naive(benchmark::State& state) {
  reconstruct(state, expm::ReconstructionPath::Gemm, linalg::Flavor::Naive);
}
void BM_Reconstruct_Gemm_Opt(benchmark::State& state) {
  reconstruct(state, expm::ReconstructionPath::Gemm, linalg::Flavor::Opt);
}
void BM_Reconstruct_Syrk_Naive(benchmark::State& state) {
  reconstruct(state, expm::ReconstructionPath::Syrk, linalg::Flavor::Naive);
}
void BM_Reconstruct_Syrk_Opt(benchmark::State& state) {
  reconstruct(state, expm::ReconstructionPath::Syrk, linalg::Flavor::Opt);
}
BENCHMARK(BM_Reconstruct_Gemm_Naive);
BENCHMARK(BM_Reconstruct_Gemm_Opt);
BENCHMARK(BM_Reconstruct_Syrk_Naive);
BENCHMARK(BM_Reconstruct_Syrk_Opt);

void BM_SymmetricPropagator(benchmark::State& state) {
  auto& s = setup();
  expm::ExpmWorkspace ws;
  linalg::Matrix m(61, 61);
  double t = 0.01;
  for (auto _ : state) {
    s.es.symmetricPropagator(t, linalg::Flavor::Opt, ws, m);
    benchmark::DoNotOptimize(m.data());
    t += 1e-6;
  }
}
BENCHMARK(BM_SymmetricPropagator);

void BM_MakeYhat(benchmark::State& state) {
  auto& s = setup();
  linalg::Matrix yhat(61, 61);
  double t = 0.01;
  for (auto _ : state) {
    s.es.makeYhat(t, yhat);
    benchmark::DoNotOptimize(yhat.data());
    t += 1e-6;
  }
}
BENCHMARK(BM_MakeYhat);

void BM_Eigendecomposition(benchmark::State& state) {
  auto& s = setup();
  for (auto _ : state) {
    expm::CodonEigenSystem es(s.s, s.pi);
    benchmark::DoNotOptimize(es.eigenvalues()[0]);
  }
}
BENCHMARK(BM_Eigendecomposition);

void BM_PadeOracle(benchmark::State& state) {
  auto& s = setup();
  linalg::Matrix q(61, 61);
  model::buildRateMatrix(s.s, s.pi, q);
  for (std::size_t k = 0; k < q.size(); ++k) q.data()[k] *= 0.3;
  for (auto _ : state) {
    auto p = expm::expmPade(q);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_PadeOracle);

}  // namespace

BENCHMARK_MAIN();
