// Fig. 3 reproduction: speedup of SlimCodeML vs CodeML as a function of the
// number of species (15-95, dataset-iv-like data: 39 codons).
//
// Paper shape: speedup grows with species count — more species mean more
// branches, hence more 61x61 reconstructions per likelihood evaluation,
// which is exactly the kernel SlimCodeML halves; peaks in the paper's curve
// come from iteration-count divergence (overall speedups), while
// per-iteration speedups "vary less due to the normalization".

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace slim;
  const int cap = bench::scaledCap(1);
  std::cout << "Fig. 3 — speedup vs number of species (39 codons, iteration "
               "cap " << cap << ")\n\n"
            << std::left << std::setw(10) << "species" << std::setw(14)
            << "overall H0" << std::setw(14) << "overall H1" << std::setw(16)
            << "combined H0+H1" << std::setw(16) << "per-iter H0+H1"
            << "CodeML s / Slim s\n";

  const int maxSpecies = bench::benchSmoke() ? 15 : 95;  // smoke: 1 point
  for (int species = 15; species <= maxSpecies; species += 10) {
    const auto ds = sim::makeSweepDataset(species, bench::kDatasetSeed);
    const auto base =
        bench::runEngine(ds, core::EngineKind::CodemlBaseline, cap);
    const auto slim = bench::runEngine(ds, core::EngineKind::Slim, cap);

    const double perIterBase =
        base.totalSeconds() / std::max(1, base.totalIterations());
    const double perIterSlim =
        slim.totalSeconds() / std::max(1, slim.totalIterations());

    std::cout << std::left << std::setw(10) << species << std::setw(14)
              << std::fixed << std::setprecision(2)
              << base.h0.seconds / slim.h0.seconds << std::setw(14)
              << base.h1.seconds / slim.h1.seconds << std::setw(16)
              << base.totalSeconds() / slim.totalSeconds() << std::setw(16)
              << perIterBase / perIterSlim << std::setprecision(2)
              << base.totalSeconds() << " / " << slim.totalSeconds() << '\n';
    std::cout.flush();
  }
  std::cout << "\nPaper shape: speedup increases with species count "
               "(1.5-2x at 15 species up to 4-9x at 95 in the paper).\n";
  return 0;
}
