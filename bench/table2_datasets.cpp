// Table II reproduction: the four evaluation datasets.
//
// The paper lists four Ensembl gene-family alignments used for Selectome
// (species count, codon length, Ensembl release).  The originals are not
// redistributable here; this binary generates and characterizes the
// synthetic stand-ins with identical shapes (DESIGN.md §2) so every other
// bench runs on exactly the data printed below.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "seqio/alignment.hpp"

int main() {
  using namespace slim;
  std::cout << "Table II — evaluation datasets (synthetic, shape-matched to "
               "the paper's Ensembl/Selectome alignments)\n\n"
            << std::left << std::setw(5) << "No." << std::setw(34)
            << "Regime (paper Sec. IV)" << std::setw(9) << "Species"
            << std::setw(10) << "Codons" << std::setw(10) << "Patterns"
            << std::setw(10) << "Branches" << "Foreground\n";

  for (const auto& spec : bench::benchDatasetSpecs()) {
    const auto ds = bench::paperDataset(spec.id);
    const auto ca =
        seqio::encodeCodons(ds.alignment, bio::GeneticCode::universal());
    const auto sp = seqio::compressPatterns(ca);
    const int fg = ds.tree.foregroundBranch();
    std::cout << std::left << std::setw(5) << spec.label << std::setw(34)
              << spec.description << std::setw(9) << ds.tree.numLeaves()
              << std::setw(10) << ca.numSites() << std::setw(10)
              << sp.numPatterns() << std::setw(10) << ds.tree.numBranches()
              << (ds.tree.node(fg).isLeaf() ? "leaf" : "internal")
              << " branch (node " << fg << ")\n";
  }

  std::cout << "\nPaper shapes: i = 7x299, ii = 6x5004, iii = 25x67, iv = "
               "95x39 (Ensembl releases 55-61).\n"
            << "Simulation: branch-site model A, kappa = 2.5, omega0 = 0.08, "
               "omega2 = 2.5, p0 = 0.50, p1 = 0.35, seed = "
            << bench::kDatasetSeed << ".\n";
  return 0;
}
