// Table III reproduction: runtimes and optimizer iteration counts for
// CodeML vs SlimCodeML on datasets i-iv, H0+H1 combined.
//
// Paper values (to convergence, Xeon W3540):
//     No.   CodeML s / iters     SlimCodeML s / iters
//     i       85 / 108              43 / 108
//     ii     121 /  80              65 /  74
//     iii   1010 / 241             407 / 252
//     iv   52822 / 1039           8298 / 509
//
// Here iterations are capped (see bench_util.hpp); the shape to check is
// that SlimCodeML's column is uniformly smaller and that dataset iv is by
// far the most expensive per iteration.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace slim;
  std::cout << "Table III — runtimes [s] and iterations, H0+H1 combined "
               "(iteration cap scale " << bench::benchScale() << ")\n\n"
            << std::left << std::setw(5) << "No." << std::setw(9) << "cap"
            << std::setw(14) << "CodeML [s]" << std::setw(12) << "iters"
            << std::setw(16) << "SlimCodeML [s]" << std::setw(12) << "iters"
            << "note\n";

  double totalBase = 0, totalSlim = 0;
  for (const auto& spec : bench::benchDatasetSpecs()) {
    const auto ds = bench::paperDataset(spec.id);
    const int cap = bench::scaledCap(bench::defaultCap(spec.id));

    const auto base =
        bench::runEngine(ds, core::EngineKind::CodemlBaseline, cap);
    const auto slim = bench::runEngine(ds, core::EngineKind::Slim, cap);
    totalBase += base.totalSeconds();
    totalSlim += slim.totalSeconds();

    std::cout << std::left << std::setw(5) << spec.label << std::setw(9)
              << cap << std::setw(14) << std::fixed << std::setprecision(2)
              << base.totalSeconds() << std::setw(12)
              << base.totalIterations() << std::setw(16)
              << slim.totalSeconds() << std::setw(12)
              << slim.totalIterations() << spec.numSpecies << "sp x "
              << spec.numCodons << "cod\n";
    std::cout.flush();
  }
  std::cout << "\nTotal: CodeML " << std::setprecision(2) << totalBase
            << " s, SlimCodeML " << totalSlim << " s ("
            << totalBase / totalSlim << "x overall at equal caps)\n"
            << "Paper shape: SlimCodeML faster on every dataset; dataset iv "
               "dominates total runtime.\n";
  return 0;
}
