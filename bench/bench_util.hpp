#pragma once
// Shared machinery for the table/figure reproduction harnesses.
//
// Iteration budgets: the paper runs CodeML/SlimCodeML to convergence
// (hundreds of optimizer iterations, up to 8.6 h per run).  These harnesses
// cap iterations so the whole suite finishes in minutes; per-iteration
// speedups are cap-invariant and overall speedups are reported at the cap
// together with the iteration counts (mirroring Table III's columns).
// Set SLIM_BENCH_SCALE=<float> to scale every cap (e.g. 4 for longer runs).

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/analysis.hpp"
#include "sim/datasets.hpp"

namespace slim::bench {

/// True when SLIM_BENCH_SMOKE is set and nonzero: the CI bitrot check.
/// Every harness must shrink to its smallest configuration (smallest
/// dataset, iteration cap 1, one sweep point) and finish in seconds — the
/// run proves the binary still builds and executes, not how fast it is.
inline bool benchSmoke() {
  const char* env = std::getenv("SLIM_BENCH_SMOKE");
  return env && *env && std::string(env) != "0";
}

/// Iteration-cap multiplier from the environment (default 1.0).
inline double benchScale() {
  if (const char* env = std::getenv("SLIM_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0;
}

inline int scaledCap(int base) {
  if (benchSmoke()) return 1;
  const int v = static_cast<int>(base * benchScale());
  return v < 1 ? 1 : v;
}

/// One engine x hypothesis measurement.
struct FitTiming {
  double seconds = 0;
  int iterations = 0;
  double lnL = 0;
  double secondsPerIteration() const {
    return iterations > 0 ? seconds / iterations : seconds;
  }
};

/// Timings of the H0 + H1 pair for one engine on one dataset.
struct EnginePair {
  FitTiming h0, h1;
  double totalSeconds() const { return h0.seconds + h1.seconds; }
  int totalIterations() const { return h0.iterations + h1.iterations; }
};

/// Run the full H0+H1 optimization for one engine on a dataset, with the
/// paper's methodology: identical deterministic starting values for every
/// engine (the paper fixes the RNG seed for start values).
inline EnginePair runEngine(const sim::Dataset& ds, core::EngineKind engine,
                            int iterationCap) {
  const auto& gc = bio::GeneticCode::universal();
  const auto ca = seqio::encodeCodons(ds.alignment, gc);

  core::FitOptions options;
  options.bfgs.maxIterations = iterationCap;

  core::BranchSiteAnalysis analysis(ca, ds.tree, engine, options);
  EnginePair out;
  {
    const auto fit = analysis.fit(model::Hypothesis::H0);
    out.h0 = {fit.seconds, fit.iterations, fit.lnL};
  }
  {
    const auto fit = analysis.fit(model::Hypothesis::H1);
    out.h1 = {fit.seconds, fit.iterations, fit.lnL};
  }
  return out;
}

/// The fixed seeds used for the synthetic Table II datasets, so that every
/// bench binary sees identical data.
inline constexpr std::uint64_t kDatasetSeed = 20120521;  // IPDPSW'12 date

inline sim::Dataset paperDataset(sim::PaperDatasetId id) {
  return sim::makePaperDataset(id, kDatasetSeed);
}

/// The Table II shapes a harness should iterate: all four normally, only
/// the cheapest one (dataset i) under benchSmoke().
inline std::vector<sim::PaperDatasetSpec> benchDatasetSpecs() {
  const auto& all = sim::paperDatasetSpecs();
  if (benchSmoke()) return {all.front()};
  return all;
}

/// Default iteration caps per dataset (before SLIM_BENCH_SCALE), sized so a
/// full table run stays in the minutes range on one core.
inline int defaultCap(sim::PaperDatasetId id) {
  switch (id) {
    case sim::PaperDatasetId::I: return 6;
    case sim::PaperDatasetId::II: return 2;
    case sim::PaperDatasetId::III: return 5;
    case sim::PaperDatasetId::IV: return 2;
  }
  return 2;
}

}  // namespace slim::bench
