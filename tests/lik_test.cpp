// Tests for the branch-site likelihood engine.
//
// The decisive test validates the full pruning + mixture machinery against a
// brute-force reference implemented here from scratch: transition matrices
// via the Pade oracle (no eigendecomposition), pruning via a plain recursive
// definition (no pattern bundling, no scaling, no caching).  Every engine
// configuration (4 propagation strategies x 2 kernel flavors x 2
// reconstruction paths) must agree with it — the in-vitro version of the
// paper's accuracy experiment (Sec. IV-1).

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <functional>

#include "expm/pade.hpp"
#include "lik/branch_site_likelihood.hpp"
#include "model/codon_model.hpp"
#include "test_util.hpp"

namespace slim::lik {
namespace {

using linalg::Flavor;
using linalg::Matrix;
using model::BranchSiteParams;
using model::Hypothesis;

const bio::GeneticCode& gc() { return bio::GeneticCode::universal(); }

struct Fixture {
  seqio::CodonAlignment alignment;
  seqio::SitePatterns patterns;
  std::vector<double> pi;
  tree::Tree tree;
};

Fixture makeFixture() {
  Fixture f;
  seqio::Alignment aln;
  // 6 codon sites incl. a repeated column, a gap and an ambiguous codon.
  aln.addSequence("a", "ATGAAATTTATGCCC---");
  aln.addSequence("b", "ATGAAGTTCATGCCCGGA");
  aln.addSequence("c", "ATGAAATTAATGCCAGGN");
  aln.addSequence("d", "ATGAAATTTATGCCTGGA");
  f.alignment = seqio::encodeCodons(aln, gc());
  f.patterns = seqio::compressPatterns(f.alignment);
  f.pi = testutil::randomFrequencies(gc().numSense(), 77);
  f.tree = tree::Tree::parseNewick(
      "((a:0.11,b:0.23) #1:0.17,(c:0.31,d:0.13):0.07);");
  return f;
}

BranchSiteParams testParams() {
  BranchSiteParams p;
  p.kappa = 2.3;
  p.omega0 = 0.15;
  p.omega2 = 2.1;
  p.p0 = 0.55;
  p.p1 = 0.30;
  return p;
}

// Brute-force reference: Pade transition matrices + plain recursion.
double bruteForceLnL(const Fixture& f, const BranchSiteParams& params,
                     Hypothesis hyp) {
  const int n = gc().numSense();
  const auto qset = model::buildBranchSiteQSet(gc(), f.pi, params, hyp);
  const auto prop = model::siteClassProportions(params.p0, params.p1);

  // P(t) per (branch node, omega class) via the Pade oracle.
  std::vector<std::array<Matrix, model::kNumOmegaClasses>> pMat(
      f.tree.numNodes());
  for (int id : f.tree.branches()) {
    for (int k = 0; k < model::kNumOmegaClasses; ++k) {
      Matrix q(n, n);
      model::buildRateMatrix(qset.scaledS[k], f.pi, q);
      for (std::size_t x = 0; x < q.size(); ++x)
        q.data()[x] *= f.tree.branchLength(id);
      pMat[id][k] = expm::expmPade(q);
    }
  }

  // Leaf row lookup by name.
  auto leafRow = [&](int node) {
    for (std::size_t s = 0; s < f.alignment.names.size(); ++s)
      if (f.alignment.names[s] == f.tree.node(node).label)
        return static_cast<int>(s);
    ADD_FAILURE() << "leaf not found";
    return -1;
  };

  double lnL = 0.0;
  for (std::size_t h = 0; h < f.patterns.numPatterns(); ++h) {
    double fh = 0.0;
    for (int m = 0; m < model::kNumSiteClasses; ++m) {
      std::function<std::vector<double>(int)> partial =
          [&](int node) -> std::vector<double> {
        if (f.tree.node(node).isLeaf()) {
          std::vector<double> v(n, 0.0);
          const int state = f.patterns.patterns[h][leafRow(node)];
          if (state == seqio::kMissingState)
            v.assign(n, 1.0);
          else
            v[state] = 1.0;
          return v;
        }
        std::vector<double> v(n, 1.0);
        for (int child : f.tree.node(node).children) {
          const auto w = partial(child);
          const int om =
              model::omegaIndexFor(m, f.tree.node(child).mark != 0);
          const Matrix& p = pMat[child][om];
          for (int i = 0; i < n; ++i) {
            double s = 0.0;
            for (int j = 0; j < n; ++j) s += p(i, j) * w[j];
            v[i] *= s;
          }
        }
        return v;
      };
      const auto rootV = partial(f.tree.root());
      double fmh = 0.0;
      for (int i = 0; i < n; ++i) fmh += f.pi[i] * rootV[i];
      fh += prop[m] * fmh;
    }
    lnL += f.patterns.weights[h] * std::log(fh);
  }
  return lnL;
}

// ---------- agreement with the brute-force reference ----------

struct ConfigName {
  template <class P>
  std::string operator()(const ::testing::TestParamInfo<P>& info) const {
    const auto& [strategy, flavor, path] = info.param;
    std::string s = propagationStrategyName(strategy);
    for (auto& c : s)
      if (c == '-') c = '_';
    return s + std::string("_") + linalg::flavorName(flavor) +
           (path == expm::ReconstructionPath::Gemm ? "_gemm" : "_syrk");
  }
};

class EngineConfig
    : public ::testing::TestWithParam<std::tuple<
          PropagationStrategy, Flavor, expm::ReconstructionPath>> {};

TEST_P(EngineConfig, MatchesBruteForceH1) {
  const auto [strategy, flavor, path] = GetParam();
  const Fixture f = makeFixture();
  LikelihoodOptions opts;
  opts.propagation = strategy;
  opts.flavor = flavor;
  opts.reconstruction = path;
  BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                            Hypothesis::H1, opts);
  const double got = eval.logLikelihood(testParams());
  const double want = bruteForceLnL(f, testParams(), Hypothesis::H1);
  EXPECT_NEAR(got, want, 1e-8 * std::fabs(want));
}

TEST_P(EngineConfig, MatchesBruteForceH0) {
  const auto [strategy, flavor, path] = GetParam();
  const Fixture f = makeFixture();
  LikelihoodOptions opts;
  opts.propagation = strategy;
  opts.flavor = flavor;
  opts.reconstruction = path;
  BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                            Hypothesis::H0, opts);
  const double got = eval.logLikelihood(testParams());
  const double want = bruteForceLnL(f, testParams(), Hypothesis::H0);
  EXPECT_NEAR(got, want, 1e-8 * std::fabs(want));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, EngineConfig,
    ::testing::Combine(::testing::Values(PropagationStrategy::PerSiteGemv,
                                         PropagationStrategy::BundledGemm,
                                         PropagationStrategy::SymmetricSymv,
                                         PropagationStrategy::FactoredApply),
                       ::testing::Values(Flavor::Naive, Flavor::Opt),
                       ::testing::Values(expm::ReconstructionPath::Gemm,
                                         expm::ReconstructionPath::Syrk)),
    ConfigName{});

// ---------- the paper's accuracy metric between the two presets ----------

TEST(Accuracy, BaselineAndSlimAgreeToPaperPrecision) {
  const Fixture f = makeFixture();
  BranchSiteLikelihood baseline(f.alignment, f.patterns, f.pi, f.tree,
                                Hypothesis::H1, codemlBaselineOptions());
  BranchSiteLikelihood slim(f.alignment, f.patterns, f.pi, f.tree,
                            Hypothesis::H1, slimOptions());
  const double l0 = baseline.logLikelihood(testParams());
  const double l1 = slim.logLikelihood(testParams());
  // Paper Sec. IV-1: relative differences D between 0 and 5.5e-8.
  const double d = std::fabs(l0 - l1) / std::fabs(l0);
  EXPECT_LT(d, 1e-9);
}

// ---------- numerical scaling ----------

TEST(Scaling, AggressiveThresholdLeavesLnLUnchanged) {
  const Fixture f = makeFixture();
  LikelihoodOptions normal = slimOptions();
  LikelihoodOptions aggressive = slimOptions();
  aggressive.scalingThreshold = 0.9;  // force rescaling at every node
  BranchSiteLikelihood a(f.alignment, f.patterns, f.pi, f.tree,
                         Hypothesis::H1, normal);
  BranchSiteLikelihood b(f.alignment, f.patterns, f.pi, f.tree,
                         Hypothesis::H1, aggressive);
  const double la = a.logLikelihood(testParams());
  const double lb = b.logLikelihood(testParams());
  EXPECT_NEAR(la, lb, 1e-9 * std::fabs(la));
}

TEST(Scaling, DeepChainTreeDoesNotUnderflow) {
  // A 60-taxon caterpillar: unscaled per-site likelihoods underflow badly.
  std::string s = "(L0:0.2,L1:0.2)";
  seqio::Alignment aln;
  std::string codon = "ATG";
  aln.addSequence("L0", codon);
  aln.addSequence("L1", codon);
  for (int i = 2; i < 60; ++i) {
    s = "(" + s + ":0.2,L" + std::to_string(i) + ":0.2)";
    aln.addSequence("L" + std::to_string(i), i % 3 == 0 ? "ATA" : "ATG");
  }
  auto t = tree::Tree::parseNewick(s + " ;");
  t.setForegroundBranch(t.findLeaf("L5"));
  const auto ca = seqio::encodeCodons(aln, gc());
  const auto sp = seqio::compressPatterns(ca);
  const auto pi = testutil::randomFrequencies(gc().numSense(), 3);
  BranchSiteLikelihood eval(ca, sp, pi, t, Hypothesis::H1, slimOptions());
  const double lnL = eval.logLikelihood(testParams());
  EXPECT_TRUE(std::isfinite(lnL));
  EXPECT_LT(lnL, 0.0);
}

// ---------- structural behaviour ----------

TEST(BranchSiteLikelihoodTest, AllMissingColumnContributesZero) {
  seqio::Alignment aln;
  aln.addSequence("a", "ATG---");
  aln.addSequence("b", "ATG---");
  aln.addSequence("c", "ATG---");
  const auto ca = seqio::encodeCodons(aln, gc());
  const auto sp = seqio::compressPatterns(ca);
  const auto pi = testutil::randomFrequencies(gc().numSense(), 5);
  auto t = tree::Tree::parseNewick("(a:0.1,b:0.1,c:0.1);");
  t.setForegroundBranch(t.findLeaf("a"));

  BranchSiteLikelihood eval(ca, sp, pi, t, Hypothesis::H1, slimOptions());
  const double both = eval.logLikelihood(testParams());

  // Same data without the all-gap column.
  seqio::Alignment aln2;
  aln2.addSequence("a", "ATG");
  aln2.addSequence("b", "ATG");
  aln2.addSequence("c", "ATG");
  const auto ca2 = seqio::encodeCodons(aln2, gc());
  const auto sp2 = seqio::compressPatterns(ca2);
  BranchSiteLikelihood eval2(ca2, sp2, pi, t, Hypothesis::H1, slimOptions());
  EXPECT_NEAR(both, eval2.logLikelihood(testParams()), 1e-10);
}

TEST(BranchSiteLikelihoodTest, BranchLengthChangesLikelihood) {
  const Fixture f = makeFixture();
  BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                            Hypothesis::H1, slimOptions());
  const double l1 = eval.logLikelihood(testParams());
  eval.setBranchLength(0, eval.branchLength(0) + 0.4);
  const double l2 = eval.logLikelihood(testParams());
  EXPECT_NE(l1, l2);
}

TEST(BranchSiteLikelihoodTest, EigenCacheCountsDistinctOmegas) {
  const Fixture f = makeFixture();
  BranchSiteLikelihood h1(f.alignment, f.patterns, f.pi, f.tree,
                          Hypothesis::H1, slimOptions());
  h1.logLikelihood(testParams());
  EXPECT_EQ(h1.counters().eigenDecompositions, 3);  // omega0, 1, omega2

  BranchSiteLikelihood h0(f.alignment, f.patterns, f.pi, f.tree,
                          Hypothesis::H0, slimOptions());
  h0.logLikelihood(testParams());
  EXPECT_EQ(h0.counters().eigenDecompositions, 2);  // omega2 == omega1 == 1

  LikelihoodOptions noCache = slimOptions();
  noCache.cacheEigenByOmega = false;
  BranchSiteLikelihood h0nc(f.alignment, f.patterns, f.pi, f.tree,
                            Hypothesis::H0, noCache);
  h0nc.logLikelihood(testParams());
  EXPECT_EQ(h0nc.counters().eigenDecompositions, 3);
}

TEST(BranchSiteLikelihoodTest, PropagatorBuildCountsPerEvaluation) {
  const Fixture f = makeFixture();
  BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                            Hypothesis::H1, slimOptions());
  eval.logLikelihood(testParams());
  // 6 branches; 5 background need {omega0, omega1}, the foreground needs
  // {omega0, omega1, omega2}: 13 total.
  EXPECT_EQ(eval.counters().propagatorBuilds, 13);
}

TEST(BranchSiteLikelihoodTest, RequiresMarkForBranchHeterogeneousMixture) {
  // Construction no longer demands a mark (branch-homogeneous mixtures —
  // site models — run on bare trees); evaluating a branch-heterogeneous
  // mixture like model A on an unmarked tree is the error.
  const Fixture f = makeFixture();
  auto bare = tree::Tree::parseNewick(
      "((a:0.11,b:0.23):0.17,(c:0.31,d:0.13):0.07);");
  BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, bare,
                            Hypothesis::H1, slimOptions());
  EXPECT_THROW(eval.logLikelihood(testParams()), std::invalid_argument);
}

TEST(BranchSiteLikelihoodTest, RejectsLeafMissingFromAlignment) {
  const Fixture f = makeFixture();
  auto t = tree::Tree::parseNewick(
      "((a:0.1,zz:0.2) #1:0.1,(c:0.3,d:0.1):0.05);");
  EXPECT_THROW(BranchSiteLikelihood(f.alignment, f.patterns, f.pi, t,
                                    Hypothesis::H1, slimOptions()),
               std::invalid_argument);
}

// ---------- posteriors ----------

TEST(Posteriors, SumToOneAcrossClasses) {
  const Fixture f = makeFixture();
  BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                            Hypothesis::H1, slimOptions());
  const auto post = eval.siteClassPosteriors(testParams());
  for (std::size_t h = 0; h < f.patterns.numPatterns(); ++h) {
    double total = 0;
    for (int m = 0; m < model::kNumSiteClasses; ++m) {
      EXPECT_GE(post.post[m][h], 0.0);
      total += post.post[m][h];
    }
    EXPECT_NEAR(total, 1.0, 1e-10);
    EXPECT_NEAR(post.positiveSelection[h],
                post.post[2][h] + post.post[3][h], 1e-12);
  }
}

TEST(Posteriors, ExpandedToSites) {
  const Fixture f = makeFixture();
  BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                            Hypothesis::H1, slimOptions());
  const auto post = eval.siteClassPosteriors(testParams());
  ASSERT_EQ(post.positiveSelectionBySite.size(), f.alignment.numSites());
  // Sites sharing a pattern share the posterior.
  for (std::size_t i = 0; i < f.patterns.siteToPattern.size(); ++i)
    EXPECT_DOUBLE_EQ(post.positiveSelectionBySite[i],
                     post.positiveSelection[f.patterns.siteToPattern[i]]);
}

}  // namespace
}  // namespace slim::lik
