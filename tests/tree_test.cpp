// Tests for the phylogenetic tree container and the Newick parser/writer,
// including the PAML '#1' foreground-branch tags the branch-site model needs.

#include <gtest/gtest.h>

#include "tree/tree.hpp"

namespace slim::tree {
namespace {

TEST(Newick, ParsesSimpleTriplet) {
  const auto t = Tree::parseNewick("(a:0.1,b:0.2,c:0.3);");
  EXPECT_EQ(t.numLeaves(), 3);
  EXPECT_EQ(t.numNodes(), 4);
  EXPECT_EQ(t.numBranches(), 3);
  const int a = t.findLeaf("a");
  ASSERT_GE(a, 0);
  EXPECT_DOUBLE_EQ(t.branchLength(a), 0.1);
}

TEST(Newick, ParsesNestedTopology) {
  const auto t = Tree::parseNewick("((a:1,b:2):0.5,(c:3,d:4):0.25);");
  EXPECT_EQ(t.numLeaves(), 4);
  EXPECT_EQ(t.numNodes(), 7);
  const int a = t.findLeaf("a");
  const int c = t.findLeaf("c");
  EXPECT_NE(t.node(a).parent, t.node(c).parent);
  EXPECT_DOUBLE_EQ(t.branchLength(t.node(a).parent), 0.5);
}

TEST(Newick, ParsesForegroundMarkOnLeaf) {
  const auto t = Tree::parseNewick("(a #1:0.1,b:0.2,c:0.3);");
  EXPECT_EQ(t.foregroundBranch(), t.findLeaf("a"));
}

TEST(Newick, ParsesForegroundMarkOnInternalBranch) {
  const auto t = Tree::parseNewick("((a:1,b:2) #1 :0.5,c:3);");
  const int fg = t.foregroundBranch();
  ASSERT_GE(fg, 0);
  EXPECT_FALSE(t.node(fg).isLeaf());
  EXPECT_DOUBLE_EQ(t.branchLength(fg), 0.5);
}

TEST(Newick, MarkAfterColonAlsoAccepted) {
  const auto t = Tree::parseNewick("(a:0.1 #1,b:0.2,c:0.3);");
  EXPECT_EQ(t.foregroundBranch(), t.findLeaf("a"));
}

TEST(Newick, MissingLengthsDefaultToZero) {
  const auto t = Tree::parseNewick("(a,b);");
  EXPECT_DOUBLE_EQ(t.branchLength(t.findLeaf("a")), 0.0);
}

TEST(Newick, InternalLabelsPreserved) {
  const auto t = Tree::parseNewick("((a:1,b:1)anc:0.5,c:1);");
  const int a = t.findLeaf("a");
  EXPECT_EQ(t.node(t.node(a).parent).label, "anc");
}

TEST(Newick, WhitespaceTolerant) {
  const auto t = Tree::parseNewick("  ( a : 0.1 ,\n  b : 0.2 , c : 0.3 ) ;\n");
  EXPECT_EQ(t.numLeaves(), 3);
}

TEST(Newick, RoundTripPreservesStructure) {
  const std::string in = "((a:1,b:2) #1:0.5,(c:3,d:4):0.25);";
  const auto t = Tree::parseNewick(in);
  const auto t2 = Tree::parseNewick(t.toNewick());
  EXPECT_EQ(t2.numLeaves(), 4);
  EXPECT_EQ(t2.foregroundBranch(), t2.node(t2.findLeaf("a")).parent);
  EXPECT_DOUBLE_EQ(t2.branchLength(t2.findLeaf("d")), 4.0);
}

TEST(Newick, RejectsMalformedInput) {
  EXPECT_THROW(Tree::parseNewick(""), std::invalid_argument);
  EXPECT_THROW(Tree::parseNewick("(a,b)"), std::invalid_argument);   // no ';'
  EXPECT_THROW(Tree::parseNewick("(a,b); x"), std::invalid_argument);
  EXPECT_THROW(Tree::parseNewick("((a,b);"), std::invalid_argument);
  EXPECT_THROW(Tree::parseNewick("(a);"), std::invalid_argument);    // 1 child
  EXPECT_THROW(Tree::parseNewick("(a,);"), std::invalid_argument);
  EXPECT_THROW(Tree::parseNewick("(a:x,b);"), std::invalid_argument);
  EXPECT_THROW(Tree::parseNewick("(a:-1,b);"), std::invalid_argument);
}

TEST(Tree, PostOrderVisitsChildrenFirst) {
  const auto t = Tree::parseNewick("((a:1,b:1):1,c:1);");
  const auto& order = t.postOrder();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.back(), t.root());
  std::vector<bool> seen(t.numNodes(), false);
  for (int id : order) {
    for (int c : t.node(id).children) EXPECT_TRUE(seen[c]);
    seen[id] = true;
  }
}

TEST(Tree, BranchesExcludeRoot) {
  const auto t = Tree::parseNewick("((a:1,b:1):1,c:1);");
  const auto branches = t.branches();
  EXPECT_EQ(branches.size(), 4u);
  for (int b : branches) EXPECT_NE(b, t.root());
}

TEST(Tree, LeavesListedInPostOrder) {
  const auto t = Tree::parseNewick("((a:1,b:1):1,c:1);");
  const auto leaves = t.leaves();
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(t.node(leaves[0]).label, "a");
  EXPECT_EQ(t.node(leaves[2]).label, "c");
}

TEST(Tree, SetForegroundBranchClearsOthers) {
  auto t = Tree::parseNewick("(a #1:1,b:1,c:1);");
  const int b = t.findLeaf("b");
  t.setForegroundBranch(b);
  EXPECT_EQ(t.foregroundBranch(), b);
  EXPECT_EQ(t.mark(t.findLeaf("a")), 0);
}

TEST(Tree, SetForegroundRejectsRoot) {
  auto t = Tree::parseNewick("(a:1,b:1);");
  EXPECT_THROW(t.setForegroundBranch(t.root()), std::invalid_argument);
}

TEST(Tree, SetBranchLengthValidates) {
  auto t = Tree::parseNewick("(a:1,b:1);");
  t.setBranchLength(t.findLeaf("a"), 2.5);
  EXPECT_DOUBLE_EQ(t.branchLength(t.findLeaf("a")), 2.5);
  EXPECT_THROW(t.setBranchLength(t.findLeaf("a"), -1.0),
               std::invalid_argument);
  EXPECT_THROW(t.setBranchLength(99, 1.0), std::invalid_argument);
}

TEST(Tree, FindLeafIgnoresInternalLabels) {
  const auto t = Tree::parseNewick("((a:1,b:1)x:1,c:1);");
  EXPECT_EQ(t.findLeaf("x"), -1);
  EXPECT_GE(t.findLeaf("c"), 0);
}

TEST(Tree, ManualConstructionAndValidate) {
  Tree t;
  const int root = t.addNode(kNoParent, "", 0.0);
  t.addNode(root, "a", 0.1);
  t.addNode(root, "b", 0.2);
  t.finalize();
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.numLeaves(), 2);
}

TEST(Tree, AddNodeRejectsSecondRoot) {
  Tree t;
  t.addNode(kNoParent, "", 0.0);
  EXPECT_THROW(t.addNode(kNoParent, "", 0.0), std::invalid_argument);
}

TEST(Tree, LargeTreeParses) {
  // Build a caterpillar of 200 leaves programmatically, then round-trip.
  std::string s = "(L0:0.1,L1:0.1)";
  for (int i = 2; i < 200; ++i)
    s = "(" + s + ":0.1,L" + std::to_string(i) + ":0.1)";
  const auto t = Tree::parseNewick(s + ";");
  EXPECT_EQ(t.numLeaves(), 200);
  const auto t2 = Tree::parseNewick(t.toNewick());
  EXPECT_EQ(t2.numLeaves(), 200);
}

}  // namespace
}  // namespace slim::tree
