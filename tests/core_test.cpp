// Tests for the top-level analysis API: parameter packing, fitting, LRT
// plumbing and report output.  Fits here use tiny datasets and tight
// iteration caps to stay fast; the statistically meaningful end-to-end
// scenarios live in integration_test.cpp.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <sstream>
#include <string>
#include <string_view>

#include "core/analysis.hpp"
#include "core/report.hpp"
#include "sim/datasets.hpp"

namespace slim::core {
namespace {

using model::Hypothesis;

struct SmallCase {
  seqio::CodonAlignment alignment;
  tree::Tree tree;
};

SmallCase makeSmallCase() {
  // 5 species, 30 codons, simulated with positive selection.
  sim::Rng rng(2024);
  auto tree = sim::yuleTree(5, rng);
  sim::pickForegroundBranch(tree, rng);
  const auto& gc = bio::GeneticCode::universal();
  const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
  const auto simOut =
      sim::evolveBranchSite(gc, tree, sim::defaultSimulationParams(),
                            Hypothesis::H1, 30, pi, rng);
  return {seqio::encodeCodons(simOut.alignment, gc), std::move(tree)};
}

FitOptions quickOptions(int maxIter = 8) {
  FitOptions o;
  o.bfgs.maxIterations = maxIter;
  return o;
}

TEST(Engine, NamesAndOptionsPresets) {
  EXPECT_STREQ(engineName(EngineKind::CodemlBaseline), "CodeML");
  EXPECT_STREQ(engineName(EngineKind::Slim), "SlimCodeML");
  const auto base = engineOptions(EngineKind::CodemlBaseline);
  EXPECT_EQ(base.flavor, linalg::Flavor::Naive);
  EXPECT_EQ(base.reconstruction, expm::ReconstructionPath::Gemm);
  EXPECT_EQ(base.propagation, lik::PropagationStrategy::PerSiteGemv);
  const auto slim = engineOptions(EngineKind::Slim);
  EXPECT_EQ(slim.flavor, linalg::Flavor::Opt);
  EXPECT_EQ(slim.reconstruction, expm::ReconstructionPath::Syrk);
  EXPECT_EQ(slim.propagation, lik::PropagationStrategy::BundledGemm);
}

TEST(Fit, ImprovesOverStartAndRespectsCap) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim,
                              quickOptions(5));
  const auto fit = analysis.fit(Hypothesis::H0);
  EXPECT_TRUE(std::isfinite(fit.lnL));
  EXPECT_LT(fit.lnL, 0.0);
  EXPECT_LE(fit.iterations, 5);
  EXPECT_GT(fit.functionEvaluations, 0);
  EXPECT_GT(fit.seconds, 0.0);
  EXPECT_EQ(fit.hypothesis, Hypothesis::H0);
  // Fitted parameters respect their domains.
  EXPECT_GT(fit.params.kappa, 0.0);
  EXPECT_GT(fit.params.omega0, 0.0);
  EXPECT_LT(fit.params.omega0, 1.0);
  EXPECT_DOUBLE_EQ(fit.params.omega2, 1.0);  // H0 pins omega2
  EXPECT_GT(fit.params.p0, 0.0);
  EXPECT_LT(fit.params.p0 + fit.params.p1, 1.0);
  for (double t : fit.branchLengths) EXPECT_GE(t, 0.0);
  EXPECT_EQ(fit.branchLengths.size(), 8u);  // 2*5 - 2 branches
}

TEST(Fit, H1EstimatesOmega2AboveOne) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim,
                              quickOptions(5));
  const auto fit = analysis.fit(Hypothesis::H1);
  EXPECT_GE(fit.params.omega2, 1.0);
  EXPECT_EQ(fit.hypothesis, Hypothesis::H1);
}

TEST(Fit, MoreIterationsNeverWorse) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis a2(sc.alignment, sc.tree, EngineKind::Slim,
                        quickOptions(2));
  BranchSiteAnalysis a10(sc.alignment, sc.tree, EngineKind::Slim,
                         quickOptions(10));
  const double l2 = a2.fit(Hypothesis::H0).lnL;
  const double l10 = a10.fit(Hypothesis::H0).lnL;
  EXPECT_GE(l10, l2 - 1e-9);
}

TEST(Fit, DeterministicAcrossRuns) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis a(sc.alignment, sc.tree, EngineKind::Slim,
                       quickOptions(4));
  BranchSiteAnalysis b(sc.alignment, sc.tree, EngineKind::Slim,
                       quickOptions(4));
  EXPECT_DOUBLE_EQ(a.fit(Hypothesis::H0).lnL, b.fit(Hypothesis::H0).lnL);
}

TEST(Fit, JitterSeedChangesStartButStaysFeasible) {
  const auto sc = makeSmallCase();
  auto opts = quickOptions(3);
  opts.startJitterSeed = 7;
  BranchSiteAnalysis a(sc.alignment, sc.tree, EngineKind::Slim, opts);
  opts.startJitterSeed = 8;
  BranchSiteAnalysis b(sc.alignment, sc.tree, EngineKind::Slim, opts);
  const double la = a.fit(Hypothesis::H0).lnL;
  const double lb = b.fit(Hypothesis::H0).lnL;
  EXPECT_TRUE(std::isfinite(la));
  EXPECT_TRUE(std::isfinite(lb));
  // Different jitter, (almost surely) different trajectories.
  EXPECT_NE(la, lb);
}

TEST(Fit, InitialBranchLengthOverride) {
  const auto sc = makeSmallCase();
  auto opts = quickOptions(0);  // 0 iterations: report the start point
  opts.bfgs.maxIterations = 0;
  opts.useTreeBranchLengths = false;
  opts.initialBranchLength = 0.2;
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim, opts);
  const auto fit = analysis.fit(Hypothesis::H0);
  for (double t : fit.branchLengths) EXPECT_NEAR(t, 0.2, 1e-9);
}

TEST(Run, ProducesCoherentTest) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim,
                              quickOptions(6));
  const auto test = analysis.run();
  // Nested models: H1 at least as good (same start, same optimizer family).
  EXPECT_GE(test.h1.lnL, test.h0.lnL - 1e-6);
  EXPECT_GE(test.lrt.statistic, 0.0);
  EXPECT_LE(test.lrt.pChi2, 1.0);
  EXPECT_GE(test.lrt.pChi2, 0.0);
  EXPECT_NEAR(test.lrt.statistic, 2.0 * (test.h1.lnL - test.h0.lnL), 1e-9);
  EXPECT_NEAR(test.totalSeconds, test.h0.seconds + test.h1.seconds, 1e-9);
  // Posteriors expanded to all 30 sites.
  EXPECT_EQ(test.posteriors.positiveSelectionBySite.size(), 30u);
}

TEST(Analysis, PiComesFromRequestedModel) {
  const auto sc = makeSmallCase();
  FitOptions equal = quickOptions();
  equal.frequencyModel = model::CodonFrequencyModel::Equal;
  BranchSiteAnalysis a(sc.alignment, sc.tree, EngineKind::Slim, equal);
  for (double f : a.pi()) EXPECT_DOUBLE_EQ(f, 1.0 / 61.0);

  BranchSiteAnalysis b(sc.alignment, sc.tree, EngineKind::Slim,
                       quickOptions());
  double maxDiff = 0;
  for (double f : b.pi()) maxDiff = std::max(maxDiff, std::fabs(f - 1.0 / 61));
  EXPECT_GT(maxDiff, 1e-4);  // F3x4 on real-ish data is not uniform
}

TEST(Report, ContainsKeySections) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim,
                              quickOptions(3));
  const auto test = analysis.run();
  const std::string report = testReportString(test, EngineKind::Slim);
  EXPECT_NE(report.find("SlimCodeML"), std::string::npos);
  EXPECT_NE(report.find("H0"), std::string::npos);
  EXPECT_NE(report.find("H1"), std::string::npos);
  EXPECT_NE(report.find("LRT"), std::string::npos);
  EXPECT_NE(report.find("kappa"), std::string::npos);
  EXPECT_NE(report.find("omega2"), std::string::npos);
}

TEST(Report, FitReportMentionsConvergenceState) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim,
                              quickOptions(1));
  const auto fit = analysis.fit(Hypothesis::H0);
  std::ostringstream os;
  writeFitReport(os, fit);
  EXPECT_NE(os.str().find("iterations"), std::string::npos);
  EXPECT_NE(os.str().find("simd = "), std::string::npos);
}

// ---------- JSON well-formedness ----------

// Minimal recursive-descent JSON validator: accepts exactly the RFC 8259
// grammar (objects, arrays, strings with escapes, numbers, true/false/
// null), rejects everything else.  Enough to prove the reports emit valid
// JSON even for hostile inputs — no external parser dependency.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : s_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const unsigned char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i)
            if (pos_ + i >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
              return false;
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(s_[pos_ - 1]));
  }
  bool literal(std::string_view want) {
    if (s_.substr(pos_, want.size()) != want) return false;
    pos_ += want.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(Report, JsonSurvivesHostileStringsRoundTrip) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim,
                              quickOptions(2));
  const auto test = analysis.run();

  // A gene name with every dangerous class of character: quote, backslash,
  // newline, tab, and raw control bytes (what a seqfile path or tree label
  // can drag into the report).
  const std::string hostile = std::string("ge\"ne\\pa\th\n") + '\x01' +
                              '\x1f' + "\r\x7f";
  std::ostringstream os;
  writeJsonTestReport(os, test, EngineKind::Slim, hostile);
  const std::string json = os.str();

  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  // Control characters must appear escaped, never raw.
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
  EXPECT_NE(json.find("\\u000d"), std::string::npos);
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  // The resolved SIMD flavor is recorded.
  EXPECT_NE(json.find("\"simd\":"), std::string::npos);

  // The same reports on a shared stream that a text report left in
  // std::fixed state (regression guard for stream-format leakage).
  std::ostringstream mixed;
  writeTestReport(mixed, test, EngineKind::Slim);
  writeJsonTestReport(mixed, test, EngineKind::Slim, hostile);
  const std::string tail = mixed.str();
  const auto brace = tail.find("{\"engine\"");
  ASSERT_NE(brace, std::string::npos);
  EXPECT_TRUE(JsonValidator(std::string_view(tail).substr(brace)).valid());
}

TEST(Report, JsonBatchReportIsWellFormed) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim,
                              quickOptions(2));
  const auto test = analysis.run();
  std::ostringstream os;
  BatchRunInfo info;
  info.workers = 2;
  info.taskLevel = true;
  info.seconds = 0.5;
  writeJsonBatchReport(os, {test, test}, {"g\"1", "g\n2"}, EngineKind::Slim,
                       test.counters, info);
  EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();
}

}  // namespace
}  // namespace slim::core
