// Tests for the top-level analysis API: parameter packing, fitting, LRT
// plumbing and report output.  Fits here use tiny datasets and tight
// iteration caps to stay fast; the statistically meaningful end-to-end
// scenarios live in integration_test.cpp.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/analysis.hpp"
#include "core/report.hpp"
#include "sim/datasets.hpp"

namespace slim::core {
namespace {

using model::Hypothesis;

struct SmallCase {
  seqio::CodonAlignment alignment;
  tree::Tree tree;
};

SmallCase makeSmallCase() {
  // 5 species, 30 codons, simulated with positive selection.
  sim::Rng rng(2024);
  auto tree = sim::yuleTree(5, rng);
  sim::pickForegroundBranch(tree, rng);
  const auto& gc = bio::GeneticCode::universal();
  const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
  const auto simOut =
      sim::evolveBranchSite(gc, tree, sim::defaultSimulationParams(),
                            Hypothesis::H1, 30, pi, rng);
  return {seqio::encodeCodons(simOut.alignment, gc), std::move(tree)};
}

FitOptions quickOptions(int maxIter = 8) {
  FitOptions o;
  o.bfgs.maxIterations = maxIter;
  return o;
}

TEST(Engine, NamesAndOptionsPresets) {
  EXPECT_STREQ(engineName(EngineKind::CodemlBaseline), "CodeML");
  EXPECT_STREQ(engineName(EngineKind::Slim), "SlimCodeML");
  const auto base = engineOptions(EngineKind::CodemlBaseline);
  EXPECT_EQ(base.flavor, linalg::Flavor::Naive);
  EXPECT_EQ(base.reconstruction, expm::ReconstructionPath::Gemm);
  EXPECT_EQ(base.propagation, lik::PropagationStrategy::PerSiteGemv);
  const auto slim = engineOptions(EngineKind::Slim);
  EXPECT_EQ(slim.flavor, linalg::Flavor::Opt);
  EXPECT_EQ(slim.reconstruction, expm::ReconstructionPath::Syrk);
  EXPECT_EQ(slim.propagation, lik::PropagationStrategy::BundledGemm);
}

TEST(Fit, ImprovesOverStartAndRespectsCap) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim,
                              quickOptions(5));
  const auto fit = analysis.fit(Hypothesis::H0);
  EXPECT_TRUE(std::isfinite(fit.lnL));
  EXPECT_LT(fit.lnL, 0.0);
  EXPECT_LE(fit.iterations, 5);
  EXPECT_GT(fit.functionEvaluations, 0);
  EXPECT_GT(fit.seconds, 0.0);
  EXPECT_EQ(fit.hypothesis, Hypothesis::H0);
  // Fitted parameters respect their domains.
  EXPECT_GT(fit.params.kappa, 0.0);
  EXPECT_GT(fit.params.omega0, 0.0);
  EXPECT_LT(fit.params.omega0, 1.0);
  EXPECT_DOUBLE_EQ(fit.params.omega2, 1.0);  // H0 pins omega2
  EXPECT_GT(fit.params.p0, 0.0);
  EXPECT_LT(fit.params.p0 + fit.params.p1, 1.0);
  for (double t : fit.branchLengths) EXPECT_GE(t, 0.0);
  EXPECT_EQ(fit.branchLengths.size(), 8u);  // 2*5 - 2 branches
}

TEST(Fit, H1EstimatesOmega2AboveOne) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim,
                              quickOptions(5));
  const auto fit = analysis.fit(Hypothesis::H1);
  EXPECT_GE(fit.params.omega2, 1.0);
  EXPECT_EQ(fit.hypothesis, Hypothesis::H1);
}

TEST(Fit, MoreIterationsNeverWorse) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis a2(sc.alignment, sc.tree, EngineKind::Slim,
                        quickOptions(2));
  BranchSiteAnalysis a10(sc.alignment, sc.tree, EngineKind::Slim,
                         quickOptions(10));
  const double l2 = a2.fit(Hypothesis::H0).lnL;
  const double l10 = a10.fit(Hypothesis::H0).lnL;
  EXPECT_GE(l10, l2 - 1e-9);
}

TEST(Fit, DeterministicAcrossRuns) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis a(sc.alignment, sc.tree, EngineKind::Slim,
                       quickOptions(4));
  BranchSiteAnalysis b(sc.alignment, sc.tree, EngineKind::Slim,
                       quickOptions(4));
  EXPECT_DOUBLE_EQ(a.fit(Hypothesis::H0).lnL, b.fit(Hypothesis::H0).lnL);
}

TEST(Fit, JitterSeedChangesStartButStaysFeasible) {
  const auto sc = makeSmallCase();
  auto opts = quickOptions(3);
  opts.startJitterSeed = 7;
  BranchSiteAnalysis a(sc.alignment, sc.tree, EngineKind::Slim, opts);
  opts.startJitterSeed = 8;
  BranchSiteAnalysis b(sc.alignment, sc.tree, EngineKind::Slim, opts);
  const double la = a.fit(Hypothesis::H0).lnL;
  const double lb = b.fit(Hypothesis::H0).lnL;
  EXPECT_TRUE(std::isfinite(la));
  EXPECT_TRUE(std::isfinite(lb));
  // Different jitter, (almost surely) different trajectories.
  EXPECT_NE(la, lb);
}

TEST(Fit, InitialBranchLengthOverride) {
  const auto sc = makeSmallCase();
  auto opts = quickOptions(0);  // 0 iterations: report the start point
  opts.bfgs.maxIterations = 0;
  opts.useTreeBranchLengths = false;
  opts.initialBranchLength = 0.2;
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim, opts);
  const auto fit = analysis.fit(Hypothesis::H0);
  for (double t : fit.branchLengths) EXPECT_NEAR(t, 0.2, 1e-9);
}

TEST(Run, ProducesCoherentTest) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim,
                              quickOptions(6));
  const auto test = analysis.run();
  // Nested models: H1 at least as good (same start, same optimizer family).
  EXPECT_GE(test.h1.lnL, test.h0.lnL - 1e-6);
  EXPECT_GE(test.lrt.statistic, 0.0);
  EXPECT_LE(test.lrt.pChi2, 1.0);
  EXPECT_GE(test.lrt.pChi2, 0.0);
  EXPECT_NEAR(test.lrt.statistic, 2.0 * (test.h1.lnL - test.h0.lnL), 1e-9);
  EXPECT_NEAR(test.totalSeconds, test.h0.seconds + test.h1.seconds, 1e-9);
  // Posteriors expanded to all 30 sites.
  EXPECT_EQ(test.posteriors.positiveSelectionBySite.size(), 30u);
}

TEST(Analysis, PiComesFromRequestedModel) {
  const auto sc = makeSmallCase();
  FitOptions equal = quickOptions();
  equal.frequencyModel = model::CodonFrequencyModel::Equal;
  BranchSiteAnalysis a(sc.alignment, sc.tree, EngineKind::Slim, equal);
  for (double f : a.pi()) EXPECT_DOUBLE_EQ(f, 1.0 / 61.0);

  BranchSiteAnalysis b(sc.alignment, sc.tree, EngineKind::Slim,
                       quickOptions());
  double maxDiff = 0;
  for (double f : b.pi()) maxDiff = std::max(maxDiff, std::fabs(f - 1.0 / 61));
  EXPECT_GT(maxDiff, 1e-4);  // F3x4 on real-ish data is not uniform
}

TEST(Report, ContainsKeySections) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim,
                              quickOptions(3));
  const auto test = analysis.run();
  const std::string report = testReportString(test, EngineKind::Slim);
  EXPECT_NE(report.find("SlimCodeML"), std::string::npos);
  EXPECT_NE(report.find("H0"), std::string::npos);
  EXPECT_NE(report.find("H1"), std::string::npos);
  EXPECT_NE(report.find("LRT"), std::string::npos);
  EXPECT_NE(report.find("kappa"), std::string::npos);
  EXPECT_NE(report.find("omega2"), std::string::npos);
}

TEST(Report, FitReportMentionsConvergenceState) {
  const auto sc = makeSmallCase();
  BranchSiteAnalysis analysis(sc.alignment, sc.tree, EngineKind::Slim,
                              quickOptions(1));
  const auto fit = analysis.fit(Hypothesis::H0);
  std::ostringstream os;
  writeFitReport(os, fit);
  EXPECT_NE(os.str().find("iterations"), std::string::npos);
}

}  // namespace
}  // namespace slim::core
