// Tests for the RNG, random trees and the branch-site sequence evolver.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "model/frequencies.hpp"
#include "sim/datasets.hpp"
#include "sim/evolver.hpp"
#include "sim/random_tree.hpp"
#include "sim/rng.hpp"

namespace slim::sim {
namespace {

// ---------- RNG ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.nextU64() == b.nextU64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double u = rng.uniform();
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(13);
  const double weights[] = {1.0, 3.0, 6.0};
  int counts[3] = {0, 0, 0};
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) ++counts[rng.categorical({weights, 3})];
  EXPECT_NEAR(counts[0] / double(trials), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / double(trials), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / double(trials), 0.6, 0.02);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(17);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniformInt(5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

// ---------- random trees ----------

class YuleTreeSizes : public ::testing::TestWithParam<int> {};

TEST_P(YuleTreeSizes, CorrectShape) {
  Rng rng(23);
  const auto t = yuleTree(GetParam(), rng);
  EXPECT_EQ(t.numLeaves(), GetParam());
  // Binary rooted tree: 2s - 1 nodes, 2s - 2 branches.
  EXPECT_EQ(t.numNodes(), 2 * GetParam() - 1);
  EXPECT_NO_THROW(t.validate());
}

INSTANTIATE_TEST_SUITE_P(Sizes, YuleTreeSizes,
                         ::testing::Values(2, 3, 7, 25, 95));

TEST(YuleTree, BranchLengthsWithinRange) {
  Rng rng(29);
  RandomTreeOptions opts;
  opts.minBranchLength = 0.05;
  opts.maxBranchLength = 0.10;
  const auto t = yuleTree(20, rng, opts);
  for (int id : t.branches()) {
    EXPECT_GE(t.branchLength(id), 0.05);
    EXPECT_LE(t.branchLength(id), 0.10);
  }
}

TEST(YuleTree, LeafNamesUnique) {
  Rng rng(31);
  const auto t = yuleTree(40, rng);
  std::set<std::string> names;
  for (int id : t.leaves()) names.insert(t.node(id).label);
  EXPECT_EQ(names.size(), 40u);
}

TEST(YuleTree, DeterministicForSeed) {
  Rng a(5), b(5);
  EXPECT_EQ(yuleTree(12, a).toNewick(), yuleTree(12, b).toNewick());
}

TEST(PickForeground, PrefersInternalBranch) {
  Rng rng(37);
  auto t = yuleTree(10, rng);
  const int fg = pickForegroundBranch(t, rng);
  EXPECT_EQ(t.foregroundBranch(), fg);
  EXPECT_FALSE(t.node(fg).isLeaf());
}

TEST(PickForeground, FallsBackToLeafOnCherry) {
  Rng rng(41);
  auto t = yuleTree(2, rng);
  const int fg = pickForegroundBranch(t, rng);
  EXPECT_TRUE(t.node(fg).isLeaf());
}

// ---------- evolver ----------

TEST(Evolver, OutputShapeAndValidity) {
  Rng rng(43);
  auto t = yuleTree(6, rng);
  pickForegroundBranch(t, rng);
  const auto& gc = bio::GeneticCode::universal();
  const auto pi = randomCodonFrequencies(gc.numSense(), 5, rng);
  const auto sim = evolveBranchSite(gc, t, defaultSimulationParams(),
                                    model::Hypothesis::H1, 50, pi, rng);
  EXPECT_EQ(sim.alignment.numSequences(), 6u);
  EXPECT_EQ(sim.alignment.length(), 150u);
  EXPECT_EQ(sim.siteClasses.size(), 50u);
  // Output must re-encode cleanly (no stop codons generated).
  EXPECT_NO_THROW(seqio::encodeCodons(sim.alignment, gc));
}

TEST(Evolver, DeterministicForSeed) {
  const auto& gc = bio::GeneticCode::universal();
  auto make = [&](std::uint64_t seed) {
    Rng rng(seed);
    auto t = yuleTree(5, rng);
    pickForegroundBranch(t, rng);
    const auto pi = randomCodonFrequencies(gc.numSense(), 5, rng);
    return evolveBranchSite(gc, t, defaultSimulationParams(),
                            model::Hypothesis::H1, 30, pi, rng)
        .alignment.sequence(0)
        .data;
  };
  EXPECT_EQ(make(99), make(99));
  EXPECT_NE(make(99), make(100));
}

TEST(Evolver, SiteClassFrequenciesMatchProportions) {
  Rng rng(47);
  auto t = yuleTree(4, rng);
  pickForegroundBranch(t, rng);
  const auto& gc = bio::GeneticCode::universal();
  const auto pi = randomCodonFrequencies(gc.numSense(), 5, rng);
  auto params = defaultSimulationParams();
  const auto sim = evolveBranchSite(gc, t, params, model::Hypothesis::H1,
                                    20000, pi, rng);
  const auto expect = model::siteClassProportions(params.p0, params.p1);
  double counts[4] = {0, 0, 0, 0};
  for (int m : sim.siteClasses) ++counts[m];
  for (int m = 0; m < 4; ++m)
    EXPECT_NEAR(counts[m] / 20000.0, expect[m], 0.02) << "class " << m;
}

TEST(Evolver, ZeroLengthBranchesCopyParentState) {
  // With all branch lengths 0 every leaf repeats the root codon.
  Rng rng(53);
  RandomTreeOptions opts;
  opts.minBranchLength = 0.0;
  opts.maxBranchLength = 0.0;
  auto t = yuleTree(5, rng, opts);
  pickForegroundBranch(t, rng);
  const auto& gc = bio::GeneticCode::universal();
  const auto pi = randomCodonFrequencies(gc.numSense(), 5, rng);
  const auto sim = evolveBranchSite(gc, t, defaultSimulationParams(),
                                    model::Hypothesis::H1, 10, pi, rng);
  for (std::size_t s = 1; s < sim.alignment.numSequences(); ++s)
    EXPECT_EQ(sim.alignment.sequence(s).data, sim.alignment.sequence(0).data);
}

TEST(Evolver, HighOmega2IncreasesForegroundDivergence) {
  // Qualitative sanity: with a leaf foreground branch and huge omega2 +
  // large positive-class weight, the foreground leaf should differ from its
  // sister more than under H0.  Statistical, so large site count and fixed
  // seeds.
  const auto& gc = bio::GeneticCode::universal();
  auto distance = [&](double omega2, model::Hypothesis hyp) {
    Rng rng(61);
    auto t = tree::Tree::parseNewick("((a:0.05,b:0.05):0.05,c:0.05);");
    t.setForegroundBranch(t.findLeaf("a"));
    model::BranchSiteParams p = defaultSimulationParams();
    p.p0 = 0.2;
    p.p1 = 0.2;
    p.omega2 = omega2;
    const auto pi = randomCodonFrequencies(gc.numSense(), 5, rng);
    const auto sim = evolveBranchSite(gc, t, p, hyp, 4000, pi, rng);
    const auto& sa = sim.alignment.sequence(0).data;  // a (postorder first)
    const auto& sb = sim.alignment.sequence(1).data;
    int diff = 0;
    for (std::size_t i = 0; i < sa.size(); ++i) diff += (sa[i] != sb[i]);
    return diff;
  };
  EXPECT_GT(distance(8.0, model::Hypothesis::H1),
            distance(8.0, model::Hypothesis::H0));
}

// ---------- paper-shaped datasets ----------

TEST(Datasets, TableIIShapes) {
  const auto& specs = paperDatasetSpecs();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].numSpecies, 7);
  EXPECT_EQ(specs[0].numCodons, 299);
  EXPECT_EQ(specs[1].numSpecies, 6);
  EXPECT_EQ(specs[1].numCodons, 5004);
  EXPECT_EQ(specs[2].numSpecies, 25);
  EXPECT_EQ(specs[2].numCodons, 67);
  EXPECT_EQ(specs[3].numSpecies, 95);
  EXPECT_EQ(specs[3].numCodons, 39);
}

TEST(Datasets, GeneratedShapesMatchSpecs) {
  const auto ds = makePaperDataset(PaperDatasetId::III, 7);
  EXPECT_EQ(ds.tree.numLeaves(), 25);
  EXPECT_EQ(ds.alignment.numSequences(), 25u);
  EXPECT_EQ(ds.alignment.length(), 67u * 3u);
  EXPECT_GE(ds.tree.foregroundBranch(), 0);
  EXPECT_EQ(ds.trueSiteClasses.size(), 67u);
}

TEST(Datasets, SweepDatasetShape) {
  const auto ds = makeSweepDataset(15, 3);
  EXPECT_EQ(ds.tree.numLeaves(), 15);
  EXPECT_EQ(ds.alignment.length(), 39u * 3u);
}

TEST(Datasets, DeterministicForSeed) {
  const auto a = makePaperDataset(PaperDatasetId::I, 5);
  const auto b = makePaperDataset(PaperDatasetId::I, 5);
  EXPECT_EQ(a.tree.toNewick(), b.tree.toNewick());
  EXPECT_EQ(a.alignment.sequence(0).data, b.alignment.sequence(0).data);
}

TEST(Datasets, LeafNamesMatchAlignment) {
  const auto ds = makePaperDataset(PaperDatasetId::I, 9);
  for (int leaf : ds.tree.leaves())
    EXPECT_GE(ds.alignment.find(ds.tree.node(leaf).label), 0);
}

}  // namespace
}  // namespace slim::sim
