// The derivative-aware objective API: analytic branch-length gradients and
// parallel multi-point (finite-difference) evaluation.
//
//  * correctness: analytic d lnL / d t matches central finite differences at
//    random feasible points, under both hypothesis parameterizations and
//    across engine presets / thread counts;
//  * determinism: fd-parallel probe fan-out returns bit-identical gradients
//    to the serial fd path for every worker count;
//  * end-to-end: full H0/H1 fits reach the same maximum under all three
//    GradientModes, with `analytic` cutting likelihood evaluations per
//    converged fit by >= 3x versus `fd` (the whole point of the API).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/analysis.hpp"
#include "core/objective.hpp"
#include "core/site_models.hpp"
#include "model/frequencies.hpp"
#include "sim/datasets.hpp"
#include "sim/evolver.hpp"
#include "sim/random_tree.hpp"
#include "sim/rng.hpp"

namespace slim {
namespace {

using core::GradientMode;
using model::BranchSiteParams;
using model::Hypothesis;

struct SimData {
  seqio::CodonAlignment codons;
  seqio::SitePatterns patterns;
  std::vector<double> pi;
  tree::Tree tree;
};

SimData makeData(int numSpecies, int numCodons, std::uint64_t seed,
                 const BranchSiteParams& truth = sim::defaultSimulationParams()) {
  sim::Rng rng(seed);
  auto tree = sim::yuleTree(numSpecies, rng);
  sim::pickForegroundBranch(tree, rng);
  const auto& gc = bio::GeneticCode::universal();
  const auto simPi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
  const auto simOut = sim::evolveBranchSite(gc, tree, truth, Hypothesis::H1,
                                            numCodons, simPi, rng);
  SimData d{seqio::encodeCodons(simOut.alignment, gc), {}, {}, tree};
  d.patterns = seqio::compressPatterns(d.codons);
  d.pi = model::estimateCodonFrequencies(d.codons,
                                         model::CodonFrequencyModel::F3x4);
  return d;
}

BranchSiteParams randomFeasibleParams(sim::Rng& rng) {
  BranchSiteParams p;
  p.kappa = rng.uniform(1.2, 4.0);
  p.omega0 = rng.uniform(0.05, 0.8);
  p.omega2 = rng.uniform(1.2, 6.0);
  p.p0 = rng.uniform(0.2, 0.5);
  p.p1 = rng.uniform(0.2, 0.4);
  return p;
}

// ---------- analytic vs central finite differences ----------

TEST(AnalyticGradient, MatchesCentralFiniteDifferences) {
  const auto d = makeData(7, 40, 7);
  sim::Rng rng(99);
  for (Hypothesis h : {Hypothesis::H0, Hypothesis::H1}) {
    lik::BranchSiteLikelihood eval(d.codons, d.patterns, d.pi, d.tree, h,
                                   lik::slimOptions());
    const int numBranches = eval.numBranches();
    for (int trial = 0; trial < 3; ++trial) {
      const BranchSiteParams p = randomFeasibleParams(rng);
      for (int k = 0; k < numBranches; ++k)
        eval.setBranchLength(k, rng.uniform(0.01, 0.6));

      std::vector<double> grad(numBranches);
      const double lnL = eval.logLikelihoodGradientBranches(p, grad);
      ASSERT_TRUE(std::isfinite(lnL));
      // The gradient call also returns the exact likelihood.
      EXPECT_EQ(lnL, eval.logLikelihood(p));

      for (int k = 0; k < numBranches; ++k) {
        const double t = eval.branchLength(k);
        const double step = 1e-6 * std::max(t, 1.0);
        eval.setBranchLength(k, t + step);
        const double fPlus = eval.logLikelihood(p);
        eval.setBranchLength(k, t - step);
        const double fMinus = eval.logLikelihood(p);
        eval.setBranchLength(k, t);
        const double fd = (fPlus - fMinus) / (2.0 * step);
        EXPECT_NEAR(grad[k], fd, 1e-6 * std::max(1.0, std::fabs(fd)))
            << model::hypothesisName(h) << " trial " << trial << " branch "
            << k;
      }
    }
  }
}

TEST(AnalyticGradient, ReuseOfLastEvaluationIsExact) {
  const auto d = makeData(6, 30, 11);
  lik::BranchSiteLikelihood eval(d.codons, d.patterns, d.pi, d.tree,
                                 Hypothesis::H1, lik::slimParallelOptions());
  BranchSiteParams p;
  const int numBranches = eval.numBranches();
  std::vector<double> fresh(numBranches), reused(numBranches);
  const double lnLFresh = eval.logLikelihoodGradientBranches(p, fresh);
  const double lnLEval = eval.logLikelihood(p);
  const double lnLReused = eval.gradientBranchesAtLastEvaluation(reused);
  EXPECT_EQ(lnLFresh, lnLEval);
  EXPECT_EQ(lnLFresh, lnLReused);
  EXPECT_EQ(fresh, reused);
  // The reuse path costs a sweep but no evaluation.
  EXPECT_EQ(eval.counters().gradientSweeps, 2);
  EXPECT_EQ(eval.counters().evaluations, 2);  // fresh gradient + logLikelihood
}

TEST(AnalyticGradient, BitIdenticalAcrossThreadCountsAndEngines) {
  const auto d = makeData(7, 40, 13);
  const BranchSiteParams p;
  std::vector<double> reference;
  double lnLReference = 0;
  for (int threads : {1, 2, 8}) {
    for (int blockSize : {0, 7, 64}) {
      auto options = lik::slimParallelOptions();
      options.numThreads = threads;
      options.blockSize = blockSize;
      lik::BranchSiteLikelihood eval(d.codons, d.patterns, d.pi, d.tree,
                                     Hypothesis::H1, options);
      std::vector<double> grad(eval.numBranches());
      const double lnL = eval.logLikelihoodGradientBranches(p, grad);
      if (reference.empty()) {
        reference = grad;
        lnLReference = lnL;
      } else {
        EXPECT_EQ(lnL, lnLReference) << threads << "x" << blockSize;
        EXPECT_EQ(grad, reference) << threads << "x" << blockSize;
      }
    }
  }
}

// ---------- fd-parallel bit-identity ----------

// A minimal packing for driving LikelihoodObjective directly: x is the raw
// branch-length vector (identity transform), substitution parameters fixed.
core::LikelihoodObjective::PreparePoint branchOnlyPrepare(
    const SimData& d, const BranchSiteParams& p, Hypothesis h) {
  return [&d, p, h](lik::BranchSiteLikelihood& e,
                    std::span<const double> x) -> model::MixtureSpec {
    for (int k = 0; k < e.numBranches(); ++k) e.setBranchLength(k, x[k]);
    return model::buildModelASpec(*d.codons.code, d.pi, p, h);
  };
}

TEST(ParallelFiniteDiff, BitIdenticalToSerialForEveryWorkerCount) {
  const auto d = makeData(7, 40, 17);
  const BranchSiteParams p;
  auto likOptions = lik::slimParallelOptions();
  likOptions.numThreads = 1;

  // Serial fd reference on a plain evaluator.
  lik::BranchSiteLikelihood refEval(d.codons, d.patterns, d.pi, d.tree,
                                    Hypothesis::H1, likOptions);
  const int numBranches = refEval.numBranches();
  std::vector<double> x0(numBranches);
  for (int k = 0; k < numBranches; ++k) x0[k] = refEval.branchLength(k);

  const core::LikelihoodObjective::Layout layout{0, numBranches,
                                                 opt::Transform::identity()};
  core::LikelihoodObjective serial(
      refEval, d.codons, d.patterns, d.pi, d.tree, Hypothesis::H1, likOptions,
      GradientMode::FiniteDiff, core::ParallelPolicy::Auto, 1, layout,
      branchOnlyPrepare(d, p, Hypothesis::H1));
  const double f0 = serial.value(x0);
  std::vector<double> refGrad(numBranches);
  for (bool central : {false, true}) {
    const auto refResult =
        serial.valueAndGradient(x0, refGrad, {1e-7, central, f0});
    EXPECT_EQ(refResult.analyticCoordinates, 0);

    for (int workers : {1, 2, 8}) {
      lik::BranchSiteLikelihood eval(d.codons, d.patterns, d.pi, d.tree,
                                     Hypothesis::H1, likOptions);
      core::LikelihoodObjective fanned(
          eval, d.codons, d.patterns, d.pi, d.tree, Hypothesis::H1, likOptions,
          GradientMode::ParallelFiniteDiff, core::ParallelPolicy::TaskLevel,
          workers, layout, branchOnlyPrepare(d, p, Hypothesis::H1));
      EXPECT_EQ(fanned.value(x0), f0) << workers;
      std::vector<double> grad(numBranches);
      fanned.valueAndGradient(x0, grad, {1e-7, central, f0});
      EXPECT_EQ(grad, refGrad) << "workers=" << workers
                               << " central=" << central;
      if (workers > 1) {
        EXPECT_GT(fanned.poolSize(), 0) << workers;
      }
    }
  }
}

TEST(ParallelFiniteDiff, FullFitsBitIdenticalToSerialFd) {
  const auto d = makeData(6, 30, 19);
  core::FitOptions base;
  base.bfgs.maxIterations = 8;
  base.tuning.cachePropagators = 1;

  core::FitOptions fd = base;
  fd.tuning.gradient = GradientMode::FiniteDiff;
  fd.tuning.numThreads = 1;
  core::BranchSiteAnalysis serial(d.codons, d.tree, core::EngineKind::Slim, fd);
  const auto ref = serial.fit(Hypothesis::H1);

  for (int threads : {1, 2, 8}) {
    core::FitOptions par = base;
    par.tuning.gradient = GradientMode::ParallelFiniteDiff;
    par.tuning.numThreads = threads;
    par.tuning.policy = core::ParallelPolicy::TaskLevel;
    core::BranchSiteAnalysis fanned(d.codons, d.tree, core::EngineKind::Slim,
                                    par);
    const auto r = fanned.fit(Hypothesis::H1);
    EXPECT_EQ(r.lnL, ref.lnL) << threads;
    EXPECT_EQ(r.branchLengths, ref.branchLengths) << threads;
    EXPECT_EQ(r.iterations, ref.iterations) << threads;
    EXPECT_EQ(r.functionEvaluations, ref.functionEvaluations) << threads;
    EXPECT_EQ(r.gradientEvaluations, ref.gradientEvaluations) << threads;
    EXPECT_EQ(r.counters.evaluations, ref.counters.evaluations) << threads;
  }
}

// ---------- end-to-end: the three modes agree, analytic is cheaper ----------

TEST(GradientModes, FitsAgreeAndAnalyticCutsEvaluations) {
#ifdef SLIM_SANITIZED
  // Six full fits run to tight convergence: ~30 s natively but ~30 min
  // under ASan/TSan, and entirely single-threaded (numThreads = 1, no probe
  // fan-out), so sanitized runs gain no coverage from it.  The threaded
  // gradient paths are covered by the AnalyticGradient and
  // ParallelFiniteDiff suites above.
  GTEST_SKIP() << "single-threaded convergence marathon skipped under "
                  "sanitizers";
#endif
  // Enough branches that the per-branch FD axis dominates (the regime the
  // analytic gradient exists for): 9 species -> 16 branches, H1 dim 21.
  // Strong simulated selection keeps the H1 maximum in the interior and
  // well-conditioned, so independently-stopped optimizers can actually meet
  // at the 1e-8 bar (a near-boundary optimum has flat directions both modes
  // crawl along, stopping wherever their tolerance catches them).
  BranchSiteParams truth;
  truth.kappa = 2.0;
  truth.omega0 = 0.05;
  truth.omega2 = 8.0;
  truth.p0 = 0.35;
  truth.p1 = 0.35;
  const auto d = makeData(9, 30, 23, truth);

  core::FitOptions base;
  // Tight enough that every mode runs to the numerical optimum (not to an
  // early f-tolerance stop), so the three final lnL values are comparable
  // at 1e-8; central differences keep the FD modes accurate near it.
  base.bfgs.maxIterations = 400;
  base.bfgs.gradTolerance = 1e-9;
  base.bfgs.fTolerance = 1e-13;
  // Central differences at the ~eps^(1/3) step: the FD noise floor must sit
  // below the 1e-8 agreement bar, or the FD modes stall short of it.
  base.bfgs.centralDifferences = true;
  base.bfgs.fdStep = 1e-5;
  base.tuning.cachePropagators = 1;
  base.tuning.numThreads = 1;

  for (Hypothesis h : {Hypothesis::H0, Hypothesis::H1}) {
    core::FitResult results[3];
    const GradientMode modes[3] = {GradientMode::FiniteDiff,
                                   GradientMode::ParallelFiniteDiff,
                                   GradientMode::Analytic};
    for (int i = 0; i < 3; ++i) {
      core::FitOptions opts = base;
      opts.tuning.gradient = modes[i];
      core::BranchSiteAnalysis analysis(d.codons, d.tree,
                                        core::EngineKind::Slim, opts);
      results[i] = analysis.fit(h);
      EXPECT_TRUE(results[i].converged)
          << model::hypothesisName(h) << " " << core::gradientModeName(modes[i]);
    }
    // fd and fd-parallel follow the same trajectory exactly; analytic lands
    // on the same maximum.
    EXPECT_EQ(results[0].lnL, results[1].lnL) << model::hypothesisName(h);
    EXPECT_NEAR(results[0].lnL, results[2].lnL, 1e-8)
        << model::hypothesisName(h);

    if (h == Hypothesis::H1) {
      // The acceptance bar: analytic cuts likelihood evaluations per
      // converged H1 fit by >= 3x (branch derivatives come from sweeps).
      EXPECT_GE(results[0].counters.evaluations,
                3 * results[2].counters.evaluations)
          << "fd=" << results[0].counters.evaluations
          << " analytic=" << results[2].counters.evaluations;
      EXPECT_GT(results[2].counters.gradientSweeps, 0);
      EXPECT_EQ(results[0].counters.gradientSweeps, 0);
    }
  }
}

TEST(GradientModes, SiteModelFitsAgreeAcrossModes) {
  const auto d = makeData(6, 30, 29);
  core::SiteModelFitOptions base;
  base.bfgs.maxIterations = 80;

  core::SiteModelFitResult fd, analytic;
  {
    core::SiteModelFitOptions opts = base;
    opts.tuning.gradient = GradientMode::FiniteDiff;
    core::SiteModelAnalysis analysis(d.codons, d.tree, core::EngineKind::Slim,
                                     opts);
    fd = analysis.fit(core::SiteModel::M2a);
  }
  {
    core::SiteModelFitOptions opts = base;
    opts.tuning.gradient = GradientMode::Analytic;
    core::SiteModelAnalysis analysis(d.codons, d.tree, core::EngineKind::Slim,
                                     opts);
    analytic = analysis.fit(core::SiteModel::M2a);
  }
  EXPECT_NEAR(fd.lnL, analytic.lnL, 1e-6 * (1.0 + std::fabs(fd.lnL)));
  EXPECT_LT(analytic.gradientEvaluations, fd.gradientEvaluations);
}

}  // namespace
}  // namespace slim
