#pragma once
// Shared helpers for the slimcodeml test suite.

#include <gtest/gtest.h>

#include <random>

#include "linalg/matrix.hpp"

namespace slim::testutil {

/// Deterministic random dense matrix with entries in [-1, 1].
inline linalg::Matrix randomMatrix(std::size_t rows, std::size_t cols,
                                   unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::Matrix m(rows, cols);
  for (std::size_t k = 0; k < m.size(); ++k) m.data()[k] = dist(gen);
  return m;
}

/// Deterministic random symmetric matrix.
inline linalg::Matrix randomSymmetric(std::size_t n, unsigned seed) {
  linalg::Matrix m = randomMatrix(n, n, seed);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) m(i, j) = m(j, i);
  return m;
}

/// Deterministic random vector with entries in [-1, 1].
inline linalg::Vector randomVector(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = dist(gen);
  return v;
}

/// Deterministic random strictly-positive frequency vector summing to 1.
inline std::vector<double> randomFrequencies(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(0.2, 1.0);
  std::vector<double> pi(n);
  double total = 0;
  for (auto& f : pi) {
    f = dist(gen);
    total += f;
  }
  for (auto& f : pi) f /= total;
  return pi;
}

}  // namespace slim::testutil
