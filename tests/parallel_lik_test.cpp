// Tests for the pattern-blocked parallel likelihood engine and the
// persistent propagator cache.
//
// The engine's contract is strict: the log-likelihood is *identical* (bit
// for bit, asserted with EXPECT_EQ on doubles) for every thread count, for
// every block size, and with the propagator cache on or off, because the
// per-pattern arithmetic never depends on the block partition or on which
// worker executes a block, and cached propagators are keyed on the exact
// branch-length bits.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "lik/branch_site_likelihood.hpp"
#include "seqio/alignment.hpp"
#include "sim/datasets.hpp"
#include "support/parallel.hpp"
#include "test_util.hpp"

namespace slim::lik {
namespace {

using model::BranchSiteParams;
using model::Hypothesis;

const bio::GeneticCode& gc() { return bio::GeneticCode::universal(); }

struct Fixture {
  seqio::CodonAlignment alignment;
  seqio::SitePatterns patterns;
  std::vector<double> pi;
  tree::Tree tree;
};

// A simulated 8-taxon x 40-codon dataset: enough patterns for several
// blocks at small block sizes, with a marked foreground branch.
Fixture makeFixture() {
  const sim::Dataset ds = sim::makeSweepDataset(8, /*seed=*/20260731, 40);
  Fixture f;
  f.alignment = seqio::encodeCodons(ds.alignment, gc());
  f.patterns = seqio::compressPatterns(f.alignment);
  f.pi = testutil::randomFrequencies(gc().numSense(), 11);
  f.tree = ds.tree;
  return f;
}

BranchSiteParams testParams() {
  BranchSiteParams p;
  p.kappa = 2.3;
  p.omega0 = 0.15;
  p.omega2 = 2.1;
  p.p0 = 0.55;
  p.p1 = 0.30;
  return p;
}

LikelihoodOptions withThreads(LikelihoodOptions o, int threads,
                              int blockSize = 8) {
  o.numThreads = threads;
  o.blockSize = blockSize;
  return o;
}

// ---------- thread-count invariance ----------

TEST(ParallelEngine, ThreadCountInvariance) {
  const Fixture f = makeFixture();
  const BranchSiteParams p = testParams();

  BranchSiteLikelihood serial(f.alignment, f.patterns, f.pi, f.tree,
                              Hypothesis::H1, withThreads(slimOptions(), 1));
  const double want = serial.logLikelihood(p);
  ASSERT_TRUE(std::isfinite(want));

  for (int threads : {2, 8}) {
    BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                              Hypothesis::H1,
                              withThreads(slimOptions(), threads));
    EXPECT_EQ(eval.numThreads(), threads);
    // Bit-identical, not merely close: the reduction order is fixed.
    EXPECT_EQ(eval.logLikelihood(p), want) << "threads = " << threads;
  }
}

TEST(ParallelEngine, ThreadCountInvarianceAllStrategies) {
  const Fixture f = makeFixture();
  const BranchSiteParams p = testParams();
  for (auto strategy :
       {PropagationStrategy::PerSiteGemv, PropagationStrategy::BundledGemm,
        PropagationStrategy::SymmetricSymv,
        PropagationStrategy::FactoredApply}) {
    LikelihoodOptions base = slimOptions();
    base.propagation = strategy;
    BranchSiteLikelihood serial(f.alignment, f.patterns, f.pi, f.tree,
                                Hypothesis::H1, withThreads(base, 1));
    BranchSiteLikelihood threaded(f.alignment, f.patterns, f.pi, f.tree,
                                  Hypothesis::H1, withThreads(base, 4));
    EXPECT_EQ(threaded.logLikelihood(p), serial.logLikelihood(p))
        << propagationStrategyName(strategy);
  }
}

TEST(ParallelEngine, BlockSizeInvariance) {
  const Fixture f = makeFixture();
  const BranchSiteParams p = testParams();
  BranchSiteLikelihood whole(f.alignment, f.patterns, f.pi, f.tree,
                             Hypothesis::H1,
                             withThreads(slimOptions(), 1, /*blockSize=*/0));
  const double want = whole.logLikelihood(p);
  for (int blockSize : {1, 3, 8, 64}) {
    BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                              Hypothesis::H1,
                              withThreads(slimOptions(), 2, blockSize));
    EXPECT_EQ(eval.logLikelihood(p), want) << "blockSize = " << blockSize;
  }
}

TEST(ParallelEngine, PosteriorsThreadInvariance) {
  const Fixture f = makeFixture();
  BranchSiteLikelihood serial(f.alignment, f.patterns, f.pi, f.tree,
                              Hypothesis::H1, withThreads(slimOptions(), 1));
  BranchSiteLikelihood threaded(f.alignment, f.patterns, f.pi, f.tree,
                                Hypothesis::H1, withThreads(slimOptions(), 8));
  const auto a = serial.siteClassPosteriors(testParams());
  const auto b = threaded.siteClassPosteriors(testParams());
  ASSERT_EQ(a.post.size(), b.post.size());
  for (std::size_t m = 0; m < a.post.size(); ++m)
    for (std::size_t h = 0; h < a.post[m].size(); ++h)
      EXPECT_EQ(a.post[m][h], b.post[m][h]);
}

TEST(ParallelEngine, CountersMatchSerialEngine) {
  const Fixture f = makeFixture();
  BranchSiteLikelihood serial(f.alignment, f.patterns, f.pi, f.tree,
                              Hypothesis::H1, withThreads(slimOptions(), 1));
  BranchSiteLikelihood threaded(f.alignment, f.patterns, f.pi, f.tree,
                                Hypothesis::H1, withThreads(slimOptions(), 4));
  serial.logLikelihood(testParams());
  threaded.logLikelihood(testParams());
  EXPECT_EQ(serial.counters().propagatorBuilds,
            threaded.counters().propagatorBuilds);
  EXPECT_EQ(serial.counters().eigenDecompositions,
            threaded.counters().eigenDecompositions);
  EXPECT_EQ(serial.counters().patternPropagations,
            threaded.counters().patternPropagations);
}

// ---------- propagator cache ----------

TEST(PropagatorCache, CachedAndUncachedAgreeExactly) {
  const Fixture f = makeFixture();
  LikelihoodOptions cached = withThreads(slimOptions(), 2);
  cached.cachePropagators = true;
  BranchSiteLikelihood plain(f.alignment, f.patterns, f.pi, f.tree,
                             Hypothesis::H1, withThreads(slimOptions(), 2));
  BranchSiteLikelihood withCache(f.alignment, f.patterns, f.pi, f.tree,
                                 Hypothesis::H1, cached);

  BranchSiteParams p = testParams();
  EXPECT_EQ(withCache.logLikelihood(p), plain.logLikelihood(p));

  // Repeated evaluation (all propagators hit the cache).
  EXPECT_EQ(withCache.logLikelihood(p), plain.logLikelihood(p));

  // Move one branch length: one branch misses, the rest hit.
  plain.setBranchLength(0, plain.branchLength(0) + 0.05);
  withCache.setBranchLength(0, withCache.branchLength(0) + 0.05);
  EXPECT_EQ(withCache.logLikelihood(p), plain.logLikelihood(p));

  // Move a substitution parameter: the cache flushes, results still agree.
  p.kappa = 3.0;
  EXPECT_EQ(withCache.logLikelihood(p), plain.logLikelihood(p));
}

TEST(PropagatorCache, HitsOnRepeatedEvaluation) {
  const Fixture f = makeFixture();
  LikelihoodOptions opts = withThreads(slimOptions(), 1);
  opts.cachePropagators = true;
  BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                            Hypothesis::H1, opts);

  eval.logLikelihood(testParams());
  const auto first = eval.counters();
  EXPECT_GT(first.propagatorCacheMisses, 0);
  EXPECT_EQ(first.propagatorCacheHits, 0);
  EXPECT_EQ(first.propagatorCacheMisses, first.propagatorBuilds);

  // Same parameters, same branch lengths: every propagator is served from
  // the cache and nothing is rebuilt (not even eigensystems).
  eval.logLikelihood(testParams());
  const auto second = eval.counters();
  EXPECT_EQ(second.propagatorBuilds, first.propagatorBuilds);
  EXPECT_EQ(second.eigenDecompositions, first.eigenDecompositions);
  EXPECT_EQ(second.propagatorCacheHits, first.propagatorCacheMisses);
}

TEST(PropagatorCache, SingleBranchMoveRebuildsOnlyThatBranch) {
  const Fixture f = makeFixture();
  LikelihoodOptions opts = withThreads(slimOptions(), 1);
  opts.cachePropagators = true;
  BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                            Hypothesis::H1, opts);

  eval.logLikelihood(testParams());
  const auto before = eval.counters();

  // The finite-difference-gradient access pattern: one coordinate moves.
  eval.setBranchLength(0, eval.branchLength(0) * 1.01);
  eval.logLikelihood(testParams());
  const auto after = eval.counters();

  // A background branch carries two distinct omega classes (omega0, omega1),
  // a foreground branch three; everything else must hit.
  const std::int64_t rebuilt = after.propagatorBuilds - before.propagatorBuilds;
  EXPECT_GE(rebuilt, 1);
  EXPECT_LE(rebuilt, 3);
  EXPECT_GT(after.propagatorCacheHits, before.propagatorCacheHits);
}

TEST(PropagatorCache, ParameterChangeFlushesCache) {
  const Fixture f = makeFixture();
  LikelihoodOptions opts = withThreads(slimOptions(), 1);
  opts.cachePropagators = true;
  BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                            Hypothesis::H1, opts);

  BranchSiteParams p = testParams();
  eval.logLikelihood(p);
  const std::size_t entries = eval.cachedPropagators();
  EXPECT_GT(entries, 0u);

  p.kappa *= 1.1;  // changes every eigensystem
  eval.logLikelihood(p);
  const auto c = eval.counters();
  // All propagators were rebuilt against the fresh eigensystems.
  EXPECT_EQ(c.propagatorCacheHits, 0);
  EXPECT_EQ(eval.cachedPropagators(), entries);
}

TEST(PropagatorCache, QuantizedKeysStayAccurate) {
  const Fixture f = makeFixture();
  LikelihoodOptions exact = withThreads(slimOptions(), 1);
  exact.cachePropagators = true;
  LikelihoodOptions quantized = exact;
  quantized.cacheQuantum = 1e-7;  // snap branch lengths to a fine grid
  BranchSiteLikelihood a(f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
                         exact);
  BranchSiteLikelihood b(f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
                         quantized);
  const double la = a.logLikelihood(testParams());
  const double lb = b.logLikelihood(testParams());
  // Quantization is an explicit approximation: agreement to the grid's
  // effect on the propagators, not bit-equality.
  EXPECT_NEAR(la, lb, 1e-6 * std::fabs(la));
}

// ---------- thread pool ----------

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.numThreads(), 4);
  constexpr int kTasks = 1000;
  std::vector<std::atomic<int>> runs(kTasks);
  pool.parallelFor(kTasks, [&](int task, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    runs[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
}

TEST(ThreadPool, ReusableAcrossTaskSets) {
  support::ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallelFor(round + 1,
                     [&](int, int) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), round + 1);
  }
}

TEST(ThreadPool, PropagatesTaskException) {
  support::ThreadPool pool(2);
  EXPECT_THROW(pool.parallelFor(100,
                                [](int task, int) {
                                  if (task == 57)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // Pool remains usable after an exception.
  std::atomic<int> count{0};
  pool.parallelFor(10, [&](int, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  support::ThreadPool pool(1);
  EXPECT_EQ(pool.numThreads(), 1);
  int serial = 0;
  pool.parallelFor(25, [&](int task, int worker) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(task, serial++);  // strictly in order: no workers involved
  });
  EXPECT_EQ(serial, 25);
}

}  // namespace
}  // namespace slim::lik
