// Tests for checkpoint/restart: exact-bit serialization, optimizer-level
// resume, the CheckpointManager, and the end-to-end contract that a fit
// interrupted at an arbitrary iteration and resumed from its checkpoint
// produces a final lnL and parameter vector bit-identical (EXPECT_EQ) to
// the uninterrupted run — while corrupted, truncated or mismatched
// checkpoint files are refused with a keyed ConfigError, never UB.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/batch.hpp"
#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/report.hpp"
#include "opt/bfgs.hpp"
#include "opt/nelder_mead.hpp"
#include "sim/datasets.hpp"
#include "support/atomic_file.hpp"

namespace slim::core {
namespace {

using model::Hypothesis;

namespace fs = std::filesystem;

/// Fresh per-test scratch directory (removed on destruction).
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) /
             ("slim_ckpt_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// ---------- atomic file writes ----------

TEST(AtomicFile, CreatesReplacesAndLeavesNoTemps) {
  const TempDir dir("atomic");
  const std::string path = dir.file("out.txt");
  support::writeFileAtomic(path, "first contents\n");
  EXPECT_EQ(slurp(path), "first contents\n");
  support::writeFileAtomic(path, "second");
  EXPECT_EQ(slurp(path), "second");

  // Nothing but the destination file may remain in the directory.
  int entries = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    ++entries;
    EXPECT_EQ(e.path().filename().string(), "out.txt");
  }
  EXPECT_EQ(entries, 1);
}

TEST(AtomicFile, FailureLeavesDestinationUntouched) {
  const TempDir dir("atomicfail");
  const std::string path = dir.file("out.txt");
  support::writeFileAtomic(path, "keep me");
  // A write into a missing directory must throw and not touch anything.
  EXPECT_THROW(
      support::writeFileAtomic(dir.file("no/such/dir/out.txt"), "x"),
      std::runtime_error);
  EXPECT_EQ(slurp(path), "keep me");
}

// ---------- exact-bit doubles ----------

TEST(HexDouble, RoundTripsExactBits) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0 / 3.0,
                           3.14159265358979323846,
                           5e-324,  // smallest denormal
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::max(),
                           -1.2345678901234567e-300,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
  for (const double v : values) {
    const double back = parseHexDouble(hexDouble(v), "test");
    EXPECT_EQ(bits(back), bits(v)) << hexDouble(v);
  }
  EXPECT_TRUE(std::isnan(
      parseHexDouble(hexDouble(std::numeric_limits<double>::quiet_NaN()),
                     "test")));
  EXPECT_THROW(parseHexDouble("0x1.8p+1trailing", "test"), ConfigError);
  EXPECT_THROW(parseHexDouble("", "test"), ConfigError);
  EXPECT_THROW(parseHexDouble("zebra", "test"), ConfigError);
}

// ---------- optimizer-level resume ----------

opt::Objective rosenbrock() {
  return [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
}

TEST(BfgsResume, ContinuesTheSameTrajectoryBitForBit) {
  const std::vector<double> x0{-1.2, 1.0};
  opt::BfgsOptions options;
  options.maxIterations = 60;

  std::vector<opt::BfgsState> states;
  opt::CallableObjective full(rosenbrock());
  const auto uninterrupted = opt::minimizeBfgs(
      full, x0, options,
      [&states](const opt::BfgsState& st) { states.push_back(st); });
  ASSERT_TRUE(uninterrupted.converged);
  ASSERT_GT(states.size(), 4u);

  // Resume from several interruption points, including iteration 0 and the
  // very last snapshot; every resumed run must land on the identical result
  // with identical counters.
  const std::size_t picks[] = {0, 1, states.size() / 2, states.size() - 1};
  for (const std::size_t k : picks) {
    opt::CallableObjective fresh(rosenbrock());
    const auto resumed =
        opt::minimizeBfgs(fresh, x0, options, {}, &states[k]);
    EXPECT_EQ(resumed.x, uninterrupted.x) << "k=" << k;
    EXPECT_EQ(resumed.value, uninterrupted.value) << "k=" << k;
    EXPECT_EQ(resumed.iterations, uninterrupted.iterations) << "k=" << k;
    EXPECT_EQ(resumed.functionEvaluations, uninterrupted.functionEvaluations)
        << "k=" << k;
    EXPECT_EQ(resumed.gradientEvaluations, uninterrupted.gradientEvaluations)
        << "k=" << k;
    EXPECT_EQ(resumed.converged, uninterrupted.converged) << "k=" << k;
    EXPECT_EQ(resumed.message, uninterrupted.message) << "k=" << k;
  }

  // And through the on-disk format (exact-bit hex round trip).
  Checkpoint ck;
  ck.inFlight["t"] = states[states.size() / 2];
  const Checkpoint back = Checkpoint::parse(ck.serialize(), "bfgs");
  opt::CallableObjective fresh(rosenbrock());
  const auto resumed =
      opt::minimizeBfgs(fresh, x0, options, {}, &back.inFlight.at("t"));
  EXPECT_EQ(resumed.x, uninterrupted.x);
  EXPECT_EQ(resumed.value, uninterrupted.value);
  EXPECT_EQ(resumed.functionEvaluations, uninterrupted.functionEvaluations);
}

TEST(BfgsResume, MismatchedDimensionsThrow) {
  opt::CallableObjective f(rosenbrock());
  opt::BfgsState bogus;
  bogus.x = {1.0};  // dimension 1 vs problem dimension 2
  bogus.grad = {0.0};
  bogus.hInv = {1.0};
  bogus.value = 0.0;
  EXPECT_THROW(
      opt::minimizeBfgs(f, std::vector<double>{0.0, 0.0}, {}, {}, &bogus),
      std::invalid_argument);
}

TEST(NelderMeadResume, ContinuesTheSameTrajectoryBitForBit) {
  const std::vector<double> x0{-1.2, 1.0};
  opt::NelderMeadOptions options;
  options.maxIterations = 300;

  std::vector<opt::NelderMeadState> states;
  opt::CallableObjective full(rosenbrock());
  const auto uninterrupted = opt::minimizeNelderMead(
      full, x0, options,
      [&states](const opt::NelderMeadState& st) { states.push_back(st); });
  ASSERT_GT(states.size(), 10u);

  for (const std::size_t k : {std::size_t{0}, states.size() / 3,
                              states.size() - 1}) {
    opt::CallableObjective fresh(rosenbrock());
    const auto resumed =
        opt::minimizeNelderMead(fresh, x0, options, {}, &states[k]);
    EXPECT_EQ(resumed.x, uninterrupted.x) << "k=" << k;
    EXPECT_EQ(resumed.value, uninterrupted.value) << "k=" << k;
    EXPECT_EQ(resumed.iterations, uninterrupted.iterations) << "k=" << k;
    EXPECT_EQ(resumed.functionEvaluations, uninterrupted.functionEvaluations)
        << "k=" << k;
    EXPECT_EQ(resumed.converged, uninterrupted.converged) << "k=" << k;
  }

  // The same resume through the on-disk format: serialize the mid-run
  // simplex, parse it back, continue — still bit-identical.
  Checkpoint ck;
  ck.inFlightNm["t"] = states[states.size() / 2];
  const Checkpoint back = Checkpoint::parse(ck.serialize(), "nm");
  opt::CallableObjective fresh(rosenbrock());
  const auto resumed = opt::minimizeNelderMead(fresh, x0, options, {},
                                               &back.inFlightNm.at("t"));
  EXPECT_EQ(resumed.x, uninterrupted.x);
  EXPECT_EQ(resumed.value, uninterrupted.value);
  EXPECT_EQ(resumed.functionEvaluations, uninterrupted.functionEvaluations);
}

// ---------- checkpoint file format ----------

Checkpoint sampleCheckpoint() {
  Checkpoint ck;
  ck.configHash = 0xdeadbeefcafef00dull;

  FitResult fit;
  fit.hypothesis = Hypothesis::H1;
  fit.lnL = -1234.56789012345678;
  fit.params.kappa = 2.5;
  fit.params.omega0 = 1.0 / 3.0;
  fit.params.omega2 = 6.02214076e23;
  fit.params.p0 = 0.45;
  fit.params.p1 = 5e-324;
  fit.branchLengths = {0.1, -0.0, 1e-300, 42.0};
  fit.iterations = 37;
  fit.functionEvaluations = 123;
  fit.gradientEvaluations = 456;
  fit.gradientMode = GradientMode::Analytic;
  fit.simd = linalg::SimdLevel::Scalar;
  fit.converged = true;
  ck.completed["g0:geneA/H1"] = fit;

  opt::BfgsState st;
  st.x = {0.25, -1.5, 3.0};
  st.value = -987.125;
  st.grad = {1e-8, -2e-8, 0.0};
  st.hInv = std::vector<double>(9, 0.5);
  st.iterations = 11;
  st.functionEvaluations = 77;
  st.gradientEvaluations = 33;
  st.gradientSweeps = 11;
  st.analyticCoordinates = 3;
  st.slowProgress = 1;
  ck.inFlight["g1:gene B/H0"] = st;  // key with a space must survive

  opt::NelderMeadState nm;
  nm.vertex = {{1.0, 2.0}, {-0.5, 1e-300}, {0.25, -0.0}};
  nm.fv = {-3.0, -2.5, 7.0};
  nm.iterations = 5;
  nm.functionEvaluations = 19;
  ck.inFlightNm["g2:geneC/H1"] = nm;
  return ck;
}

TEST(CheckpointFormat, SerializeParseRoundTripIsExact) {
  const Checkpoint ck = sampleCheckpoint();
  const Checkpoint back = Checkpoint::parse(ck.serialize(), "roundtrip");

  EXPECT_EQ(back.configHash, ck.configHash);
  ASSERT_EQ(back.completed.size(), 1u);
  ASSERT_EQ(back.inFlight.size(), 1u);

  const FitResult& a = ck.completed.at("g0:geneA/H1");
  const FitResult& b = back.completed.at("g0:geneA/H1");
  EXPECT_EQ(b.hypothesis, a.hypothesis);
  EXPECT_EQ(bits(b.lnL), bits(a.lnL));
  EXPECT_EQ(bits(b.params.kappa), bits(a.params.kappa));
  EXPECT_EQ(bits(b.params.omega0), bits(a.params.omega0));
  EXPECT_EQ(bits(b.params.omega2), bits(a.params.omega2));
  EXPECT_EQ(bits(b.params.p0), bits(a.params.p0));
  EXPECT_EQ(bits(b.params.p1), bits(a.params.p1));
  ASSERT_EQ(b.branchLengths.size(), a.branchLengths.size());
  for (std::size_t i = 0; i < a.branchLengths.size(); ++i)
    EXPECT_EQ(bits(b.branchLengths[i]), bits(a.branchLengths[i])) << i;
  EXPECT_EQ(b.iterations, a.iterations);
  EXPECT_EQ(b.functionEvaluations, a.functionEvaluations);
  EXPECT_EQ(b.gradientEvaluations, a.gradientEvaluations);
  EXPECT_EQ(b.gradientMode, a.gradientMode);
  EXPECT_EQ(b.simd, a.simd);
  EXPECT_EQ(b.converged, a.converged);

  ASSERT_EQ(back.inFlightNm.size(), 1u);
  const opt::NelderMeadState& na = ck.inFlightNm.at("g2:geneC/H1");
  const opt::NelderMeadState& nb = back.inFlightNm.at("g2:geneC/H1");
  EXPECT_EQ(nb.vertex, na.vertex);
  EXPECT_EQ(nb.fv, na.fv);
  EXPECT_EQ(nb.iterations, na.iterations);
  EXPECT_EQ(nb.functionEvaluations, na.functionEvaluations);

  const opt::BfgsState& sa = ck.inFlight.at("g1:gene B/H0");
  const opt::BfgsState& sb = back.inFlight.at("g1:gene B/H0");
  EXPECT_EQ(sb.x, sa.x);
  EXPECT_EQ(bits(sb.value), bits(sa.value));
  EXPECT_EQ(sb.grad, sa.grad);
  EXPECT_EQ(sb.hInv, sa.hInv);
  EXPECT_EQ(sb.iterations, sa.iterations);
  EXPECT_EQ(sb.functionEvaluations, sa.functionEvaluations);
  EXPECT_EQ(sb.gradientEvaluations, sa.gradientEvaluations);
  EXPECT_EQ(sb.gradientSweeps, sa.gradientSweeps);
  EXPECT_EQ(sb.analyticCoordinates, sa.analyticCoordinates);
  EXPECT_EQ(sb.slowProgress, sa.slowProgress);
}

TEST(CheckpointFormat, SaveLoadThroughFile) {
  const TempDir dir("saveload");
  const std::string path = dir.file("run.ckpt");
  const Checkpoint ck = sampleCheckpoint();
  ck.save(path);
  const Checkpoint back = Checkpoint::load(path);
  EXPECT_EQ(back.serialize(), ck.serialize());
}

void expectParseError(const std::string& text, const std::string& needle) {
  try {
    Checkpoint::parse(text, "bad.ckpt");
    FAIL() << "expected ConfigError mentioning '" << needle << "'";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointFormat, RefusesCorruptedAndMismatchedInput) {
  const std::string good = sampleCheckpoint().serialize();

  expectParseError("", "empty");
  expectParseError("not-a-checkpoint v1\n", "magic");

  // Version bump: refused with the version named.
  {
    std::string v2 = good;
    v2.replace(v2.find(" v1\n"), 4, " v2\n");
    expectParseError(v2, "version");
  }
  // Truncation at any record boundary or mid-record: refused, not UB.
  for (const std::size_t cut :
       {good.size() / 4, good.size() / 2, good.size() - 2}) {
    expectParseError(good.substr(0, cut), "truncated");
  }
  // A corrupted numeric field names the field.
  {
    std::string bad = good;
    const auto at = bad.find("lnL ");
    bad.replace(at, bad.find('\n', at) - at, "lnL 0xnope");
    expectParseError(bad, "lnL");
  }
  // Unknown fields are refused (no silent skipping of state).
  {
    std::string bad = good;
    bad.replace(bad.find("slowProgress"), 12, "slowProgrexx");
    expectParseError(bad, "slowProgrexx");
  }
  // Malformed config hash.
  expectParseError("slimcodeml-checkpoint v1\nconfigHash zzzz\n",
                   "configHash");
  // Inconsistent state dimensions (hInv must be n*n).
  {
    std::string bad = good;
    const auto at = bad.find("hInv ");
    const auto end = bad.find('\n', at);
    bad.replace(at, end - at, "hInv 0x1p+0 0x1p+0");
    expectParseError(bad, "dimensions");
  }
  // Inconsistent simplex dimensions (n+1 vertices of size n, n+1 values).
  {
    std::string bad = good;
    const auto at = bad.find("dim ");
    bad.replace(at, bad.find('\n', at) - at, "dim 7");
    expectParseError(bad, "simplex");
  }
  // Integer fields that would overflow long or wrap through the int cast
  // are keyed errors, never silent clamping/truncation — and an absurd
  // simplex dimension is refused before any arithmetic can overflow.
  for (const char* hostile :
       {"iterations 99999999999999999999999", "iterations 4294967296",
        "slowProgress 92233720368547758070"}) {
    std::string bad = good;
    const auto field = std::string_view(hostile).substr(
        0, std::string_view(hostile).find(' '));
    const auto at = bad.find(std::string(field) + " ");
    bad.replace(at, bad.find('\n', at) - at, hostile);
    expectParseError(bad, "out of range");
  }
  {
    std::string bad = good;
    const auto at = bad.find("dim ");
    bad.replace(at, bad.find('\n', at) - at, "dim 9223372036854775807");
    expectParseError(bad, "dim");
  }
}

TEST(FitTaskKey, SanitizesControlCharactersAndPinsIndex) {
  EXPECT_EQ(fitTaskKey(3, "geneA", Hypothesis::H1), "g3:geneA/H1");
  // A newline in a (hostile) filename-derived name must not be able to
  // corrupt the line-oriented checkpoint format.
  const std::string key = fitTaskKey(0, "bad\nname\ttab", Hypothesis::H0);
  EXPECT_EQ(key, "g0:bad_name_tab/H0");
  Checkpoint ck;
  opt::BfgsState st;
  st.x = {1.0};
  st.grad = {0.0};
  st.hInv = {1.0};
  ck.inFlight[key] = st;
  const Checkpoint back = Checkpoint::parse(ck.serialize(), "keys");
  EXPECT_EQ(back.inFlight.count(key), 1u);
}

TEST(BfgsResume, NonFiniteCheckpointStateRefused) {
  // A well-formed checkpoint can still carry nan/inf (the hex format
  // round-trips them); the driver must refuse rather than start a NaN
  // trajectory that ends in a clean-looking "stationary" stop.
  std::vector<opt::BfgsState> states;
  opt::CallableObjective f(rosenbrock());
  opt::minimizeBfgs(f, std::vector<double>{-1.2, 1.0}, {},
                    [&states](const opt::BfgsState& st) {
                      states.push_back(st);
                    });
  ASSERT_FALSE(states.empty());
  opt::BfgsState poisoned = states.back();
  poisoned.grad[0] = std::numeric_limits<double>::quiet_NaN();
  opt::CallableObjective fresh(rosenbrock());
  EXPECT_THROW(opt::minimizeBfgs(fresh, std::vector<double>{0.0, 0.0}, {},
                                 {}, &poisoned),
               std::invalid_argument);
  poisoned = states.back();
  poisoned.hInv[1] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(opt::minimizeBfgs(fresh, std::vector<double>{0.0, 0.0}, {},
                                 {}, &poisoned),
               std::invalid_argument);
}

// ---------- CheckpointManager ----------

TEST(Manager, FreshWhenFileMissingRefusesOnHashMismatch) {
  const TempDir dir("manager");
  const std::string path = dir.file("run.ckpt");

  // Resume against a missing file: a fresh run (crash-loop friendly).
  auto fresh = CheckpointManager::open(path, 0, 42, /*resume=*/true);
  EXPECT_FALSE(fresh->resumedFromFile());
  fresh->flush();
  ASSERT_TRUE(fs::exists(path));

  // Same hash resumes; different hash is refused with the key named.
  auto again = CheckpointManager::open(path, 0, 42, /*resume=*/true);
  EXPECT_TRUE(again->resumedFromFile());
  try {
    CheckpointManager::open(path, 0, 43, /*resume=*/true);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("configHash"), std::string::npos)
        << e.what();
  }

  // Without --resume an existing file is simply overwritten on first write.
  auto overwrite = CheckpointManager::open(path, 0, 43, /*resume=*/false);
  EXPECT_FALSE(overwrite->resumedFromFile());
}

TEST(Manager, RecordsCompletionsAndInFlightState) {
  const TempDir dir("managerrec");
  const std::string path = dir.file("run.ckpt");
  CheckpointManager mgr(path, 0, 7);

  EXPECT_FALSE(mgr.completedFit("g0:a/H0").has_value());
  EXPECT_FALSE(mgr.inFlightState("g0:a/H0").has_value());

  opt::BfgsState st;
  st.x = {1.0, 2.0};
  st.grad = {0.5, 0.5};
  st.hInv = {1.0, 0.0, 0.0, 1.0};
  st.value = -10.0;
  st.iterations = 3;
  mgr.fitSink("g0:a/H0")(st);
  ASSERT_TRUE(mgr.inFlightState("g0:a/H0").has_value());
  EXPECT_EQ(mgr.inFlightState("g0:a/H0")->iterations, 3);

  opt::NelderMeadState nm;
  nm.vertex = {{0.0}, {1.0}};
  nm.fv = {5.0, 6.0};
  nm.iterations = 2;
  mgr.nmSink("g0:a/H1")(nm);
  ASSERT_TRUE(mgr.nmState("g0:a/H1").has_value());
  EXPECT_EQ(mgr.nmState("g0:a/H1")->iterations, 2);
  EXPECT_FALSE(mgr.nmState("g0:a/H0").has_value());

  FitResult fit;
  fit.hypothesis = Hypothesis::H0;
  fit.lnL = -100.5;
  fit.iterations = 9;
  mgr.recordCompleted("g0:a/H0", fit);
  // Completion supersedes the in-flight snapshot...
  EXPECT_FALSE(mgr.inFlightState("g0:a/H0").has_value());
  // ...and the recorded fit comes back with resume provenance filled in.
  const auto done = mgr.completedFit("g0:a/H0");
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->lnL, -100.5);
  EXPECT_EQ(done->resumedFrom, path);
  EXPECT_EQ(done->iterationsReplayed, 9);

  // Everything above was persisted (everySeconds = 0): a second manager
  // loading the file sees the same state.
  auto reloaded = CheckpointManager::open(path, 0, 7, /*resume=*/true);
  EXPECT_TRUE(reloaded->resumedFromFile());
  EXPECT_TRUE(reloaded->completedFit("g0:a/H0").has_value());
}

// ---------- full-fit kill-and-resume ----------

struct Gene {
  seqio::CodonAlignment codons;
  std::shared_ptr<const tree::Tree> tree;
};

// Small simulated genes (same recipe as batch_test).
std::vector<Gene> makeGenes(int numGenes) {
  const auto& gc = bio::GeneticCode::universal();
  std::vector<Gene> genes;
  for (int g = 0; g < numGenes; ++g) {
    sim::Rng rng(20260731 + 100 * g);
    auto tree = sim::yuleTree(5, rng);
    sim::pickForegroundBranch(tree, rng);
    const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
    model::BranchSiteParams truth;
    truth.kappa = 2.0;
    truth.omega0 = 0.1;
    truth.omega2 = g % 2 == 0 ? 6.0 : 1.0;
    truth.p0 = 0.4;
    truth.p1 = 0.4;
    const auto simOut = sim::evolveBranchSite(
        gc, tree, truth, g % 2 == 0 ? Hypothesis::H1 : Hypothesis::H0,
        /*numCodons=*/30, pi, rng);
    genes.push_back({seqio::encodeCodons(simOut.alignment, gc),
                     std::make_shared<const tree::Tree>(std::move(tree))});
  }
  return genes;
}

FitOptions quickOptions() {
  FitOptions o;
  o.bfgs.maxIterations = 6;
  return o;
}

void expectSameFit(const FitResult& a, const FitResult& b,
                   const std::string& label) {
  EXPECT_EQ(a.lnL, b.lnL) << label;
  EXPECT_EQ(a.params.kappa, b.params.kappa) << label;
  EXPECT_EQ(a.params.omega0, b.params.omega0) << label;
  EXPECT_EQ(a.params.omega2, b.params.omega2) << label;
  EXPECT_EQ(a.params.p0, b.params.p0) << label;
  EXPECT_EQ(a.params.p1, b.params.p1) << label;
  EXPECT_EQ(a.branchLengths, b.branchLengths) << label;
  EXPECT_EQ(a.iterations, b.iterations) << label;
  EXPECT_EQ(a.functionEvaluations, b.functionEvaluations) << label;
  EXPECT_EQ(a.converged, b.converged) << label;
}

TEST(FitResume, ShortBranchLengthVectorIsAKeyedErrorAtTheScan) {
  // The parser cannot know the tree's branch count, so a done-record with
  // too few branchLengths parses — but the site scan must refuse it with a
  // keyed error instead of reading out of bounds.
  const auto genes = makeGenes(1);
  const auto ctx = AnalysisContext::create(genes[0].codons, genes[0].tree,
                                           EngineKind::Slim, quickOptions());
  FitResult h1 = fitHypothesis(*ctx, Hypothesis::H1, ctx->options(),
                               ctx->likelihoodOptions());
  h1.branchLengths.resize(1);
  lik::EvalCounters counters;
  EXPECT_THROW(siteScanAtFit(*ctx, h1, ctx->likelihoodOptions(), nullptr,
                             counters),
               std::invalid_argument);
}

TEST(FitResume, InterruptedFitMatchesUninterruptedBitForBit) {
  const auto genes = makeGenes(1);
  const auto ctx = AnalysisContext::create(genes[0].codons, genes[0].tree,
                                           EngineKind::Slim, quickOptions());

  // Uninterrupted H1 fit, capturing every per-iteration snapshot.
  std::vector<opt::BfgsState> states;
  FitCheckpointHooks capture;
  capture.sink = [&states](const opt::BfgsState& st) {
    states.push_back(st);
  };
  const FitResult baseline =
      fitHypothesis(*ctx, Hypothesis::H1, ctx->options(),
                    ctx->likelihoodOptions(), nullptr, &capture);
  ASSERT_GT(states.size(), 2u);
  EXPECT_TRUE(baseline.resumedFrom.empty());

  // "Kill" at an arbitrary iteration k and resume from the snapshot: the
  // final lnL and parameter vector must be EXPECT_EQ-identical.
  for (const std::size_t k : {std::size_t{1}, states.size() / 2,
                              states.size() - 1}) {
    FitCheckpointHooks hooks;
    hooks.resumeFrom = states[k];
    hooks.resumedFromPath = "unit.ckpt";
    const FitResult resumed =
        fitHypothesis(*ctx, Hypothesis::H1, ctx->options(),
                      ctx->likelihoodOptions(), nullptr, &hooks);
    expectSameFit(resumed, baseline, "k=" + std::to_string(k));
    EXPECT_EQ(resumed.resumedFrom, "unit.ckpt");
    EXPECT_EQ(resumed.iterationsReplayed, states[k].iterations);
    // The resumed run does strictly less engine work than the full one.
    EXPECT_LT(resumed.counters.evaluations, baseline.counters.evaluations);
  }
}

TEST(BatchCheckpoint, CrashMidBatchThenResumeMatchesUninterrupted) {
  const auto genes = makeGenes(2);

  // Baseline: the uninterrupted batch.
  const auto runBatch = [&](CheckpointManager* mgr) {
    BatchOptions options;
    options.fit = quickOptions();
    options.checkpoint = mgr;
    BatchAnalysis batch(EngineKind::Slim, options);
    for (const auto& gene : genes) batch.addGene(gene.codons, gene.tree);
    return batch.runAll();
  };
  const auto baseline = runBatch(nullptr);

  const TempDir dir("crash");
  const std::string path = dir.file("batch.ckpt");
  const std::uint64_t hash = 0x5eed;

  // "Crash" run: complete gene 0's H0 normally, then die mid-H1 — simulated
  // by a sink that persists through the manager and then throws after a few
  // iterations, exactly like a SIGKILL between two checkpoint writes.
  {
    CheckpointManager mgr(path, 0, hash);
    const auto ctx0Ptr = AnalysisContext::create(
        genes[0].codons, genes[0].tree, EngineKind::Slim, quickOptions());
    const AnalysisContext& ctx0 = *ctx0Ptr;

    const std::string keyH0 = fitTaskKey(0, "gene0", Hypothesis::H0);
    FitCheckpointHooks h0Hooks;
    h0Hooks.sink = mgr.fitSink(keyH0);
    const FitResult h0 =
        fitHypothesis(ctx0, Hypothesis::H0, ctx0.options(),
                      ctx0.likelihoodOptions(), nullptr, &h0Hooks);
    mgr.recordCompleted(keyH0, h0);

    const std::string keyH1 = fitTaskKey(0, "gene0", Hypothesis::H1);
    auto persist = mgr.fitSink(keyH1);
    int snapshots = 0;
    FitCheckpointHooks h1Hooks;
    h1Hooks.sink = [&](const opt::BfgsState& st) {
      persist(st);
      if (++snapshots == 3) throw std::runtime_error("simulated SIGKILL");
    };
    EXPECT_THROW(fitHypothesis(ctx0, Hypothesis::H1, ctx0.options(),
                               ctx0.likelihoodOptions(), nullptr, &h1Hooks),
                 std::runtime_error);
  }

  // The checkpoint on disk is complete and well-formed (atomic writes).
  const Checkpoint onDisk = Checkpoint::load(path);
  EXPECT_EQ(onDisk.completed.size(), 1u);
  EXPECT_EQ(onDisk.inFlight.size(), 1u);

  // Restart: resume the whole batch from the file.
  auto mgr = CheckpointManager::open(path, 0, hash, /*resume=*/true);
  ASSERT_TRUE(mgr->resumedFromFile());
  const auto resumed = runBatch(mgr.get());

  ASSERT_EQ(resumed.size(), baseline.size());
  for (std::size_t g = 0; g < baseline.size(); ++g) {
    expectSameFit(resumed[g].h0, baseline[g].h0, "h0 g=" + std::to_string(g));
    expectSameFit(resumed[g].h1, baseline[g].h1, "h1 g=" + std::to_string(g));
    EXPECT_EQ(resumed[g].lrt.statistic, baseline[g].lrt.statistic);
    EXPECT_EQ(resumed[g].posteriors.positiveSelectionBySite,
              baseline[g].posteriors.positiveSelectionBySite);
  }
  // Gene 0's H0 was skipped outright (no engine work), its H1 resumed
  // mid-flight; gene 1 ran fresh.
  EXPECT_EQ(resumed[0].h0.counters.evaluations, 0);
  EXPECT_EQ(resumed[0].h0.resumedFrom, path);
  EXPECT_EQ(resumed[0].h1.resumedFrom, path);
  EXPECT_GT(resumed[0].h1.iterationsReplayed, 0);
  EXPECT_LT(resumed[0].h1.counters.evaluations,
            baseline[0].h1.counters.evaluations);
  EXPECT_TRUE(resumed[1].h0.resumedFrom.empty());
  EXPECT_TRUE(resumed[1].h1.resumedFrom.empty());

  // After the resumed run every task is recorded complete; a second resume
  // skips everything and still reproduces the same results.
  auto mgr2 = CheckpointManager::open(path, 0, hash, /*resume=*/true);
  const auto replayed = runBatch(mgr2.get());
  for (std::size_t g = 0; g < baseline.size(); ++g) {
    expectSameFit(replayed[g].h0, baseline[g].h0, "replay h0");
    expectSameFit(replayed[g].h1, baseline[g].h1, "replay h1");
    EXPECT_EQ(replayed[g].h0.counters.evaluations, 0);
    EXPECT_EQ(replayed[g].h1.counters.evaluations, 0);
  }
}

TEST(BatchCheckpoint, ConcurrentTasksShareOneManagerSafely) {
  // Four genes, task-level fan-out, a checkpoint write on every iteration:
  // the manager's mutex is the only thing between concurrent sinks and the
  // shared checkpoint (exercised under TSan in CI).
  const auto genes = makeGenes(4);
  const TempDir dir("concurrent");
  const std::string path = dir.file("batch.ckpt");
  CheckpointManager mgr(path, 0, 99);

  BatchOptions options;
  options.fit = quickOptions();
  options.fit.tuning.numThreads = 4;
  options.fit.tuning.policy = ParallelPolicy::TaskLevel;
  options.checkpoint = &mgr;
  BatchAnalysis batch(EngineKind::Slim, options);
  for (const auto& gene : genes) batch.addGene(gene.codons, gene.tree);
  const auto tests = batch.runAll();
  ASSERT_EQ(tests.size(), genes.size());

  // All 8 fit tasks recorded complete, none left in flight.
  const Checkpoint onDisk = Checkpoint::load(path);
  EXPECT_EQ(onDisk.completed.size(), 8u);
  EXPECT_EQ(onDisk.inFlight.size(), 0u);

  // And the checkpointed batch is bit-identical to the plain one.
  BatchOptions plain = options;
  plain.checkpoint = nullptr;
  BatchAnalysis reference(EngineKind::Slim, plain);
  for (const auto& gene : genes) reference.addGene(gene.codons, gene.tree);
  const auto referenceTests = reference.runAll();
  for (std::size_t g = 0; g < genes.size(); ++g) {
    expectSameFit(tests[g].h0, referenceTests[g].h0, "g=" + std::to_string(g));
    expectSameFit(tests[g].h1, referenceTests[g].h1, "g=" + std::to_string(g));
  }
}

// ---------- config-level wiring ----------

TEST(ConfigHash, KeysTrajectoryShapingSettingsOnly) {
  Config base;
  base.seqfile = "a.fasta";
  base.seqfiles = {"a.fasta"};
  base.treefile = "t.nwk";
  base.fit.tuning.simd = linalg::SimdMode::Scalar;
  const auto h = checkpointConfigHash(base);

  // Bit-neutral knobs must not invalidate a checkpoint.
  Config c = base;
  c.fit.tuning.numThreads = 8;
  c.fit.tuning.blockSize = 7;
  c.fit.tuning.cachePropagators = 0;
  c.fit.tuning.policy = ParallelPolicy::TaskLevel;
  c.outfile = "elsewhere.txt";
  c.checkpointEverySec = 0;
  EXPECT_EQ(checkpointConfigHash(c), h);

  // Trajectory-shaping settings must.
  c = base;
  c.fit.tuning.gradient = GradientMode::Analytic;
  EXPECT_NE(checkpointConfigHash(c), h);
  c = base;
  c.fit.startJitterSeed = 5;
  EXPECT_NE(checkpointConfigHash(c), h);
  c = base;
  c.fit.bfgs.maxIterations = 7;
  EXPECT_NE(checkpointConfigHash(c), h);
  c = base;
  c.fit.initialParams.kappa = 3.0;
  EXPECT_NE(checkpointConfigHash(c), h);
  c = base;
  c.seqfiles.push_back("b.fasta");
  EXPECT_NE(checkpointConfigHash(c), h);
  c = base;
  c.engine = EngineKind::CodemlBaseline;
  EXPECT_NE(checkpointConfigHash(c), h);
}

TEST(ConfigHash, CoversInputFileContent) {
  // An alignment regenerated in place between crash and resume must
  // invalidate the checkpoint even though its path is unchanged.
  const TempDir dir("hashcontent");
  Config base;
  base.seqfile = dir.file("g.fasta");
  base.seqfiles = {base.seqfile};
  base.treefile = dir.file("t.nwk");
  base.fit.tuning.simd = linalg::SimdMode::Scalar;
  std::ofstream(base.seqfile) << ">a\nATG\n";
  std::ofstream(base.treefile) << "(a:1,b:1);\n";

  const auto h = checkpointConfigHash(base);
  EXPECT_EQ(checkpointConfigHash(base), h);  // stable while files unchanged
  std::ofstream(base.seqfile) << ">a\nATT\n";
  EXPECT_NE(checkpointConfigHash(base), h);
}

// End-to-end through the config runner: fit with a checkpoint, then run
// again with --resume — both fits are skipped and reports carry provenance.
TEST(ConfigRun, CheckpointThenResumeSkipsCompletedFits) {
  const TempDir dir("configrun");
  {
    std::ofstream fasta(dir.file("gene.fasta"));
    fasta << ">human\nATGGCTAAATTTCCCGGGACTTGCGGAGAT\n"
             ">chimp\nATGGCTAAATTCCCCGGGACTTGCGGAGAT\n"
             ">gorilla\nATGGCAAAATTTCCCGGAACTTGTGGAGAC\n"
             ">orangutan\nATGGCTAAGTTTCCAGGGACATGCGGTGAT\n"
             ">macaque\nATGGCGAAGTTTCCAGGAACATGTGGTGAC\n";
    std::ofstream nwk(dir.file("gene.nwk"));
    nwk << "(((human:0.02,chimp:0.02) #1:0.015,gorilla:0.04):0.02,"
           "(orangutan:0.08,macaque:0.10):0.03);\n";
  }
  const std::string ctl = "seqfile = " + dir.file("gene.fasta") + "\n" +
                          "treefile = " + dir.file("gene.nwk") + "\n" +
                          "outfile = " + dir.file("report.txt") + "\n" +
                          "checkpoint = " + dir.file("run.ckpt") + "\n" +
                          "checkpointEverySec = 0\n"
                          "maxIterations = 4\n";

  Config config = Config::parseString(ctl);
  EXPECT_EQ(config.checkpointPath, dir.file("run.ckpt"));
  EXPECT_EQ(config.checkpointEverySec, 0.0);
  const auto first = runFromConfig(config);
  ASSERT_TRUE(fs::exists(dir.file("run.ckpt")));
  ASSERT_TRUE(fs::exists(dir.file("report.txt")));
  EXPECT_TRUE(first.h0.resumedFrom.empty());

  // Resume: everything is already done — identical results, zero engine
  // work, provenance in the result and both reports.
  Config again = config;
  again.resume = true;
  const auto second = runFromConfig(again);
  expectSameFit(second.h0, first.h0, "resumed h0");
  expectSameFit(second.h1, first.h1, "resumed h1");
  EXPECT_EQ(second.h0.counters.evaluations, 0);
  EXPECT_EQ(second.h0.resumedFrom, dir.file("run.ckpt"));
  EXPECT_EQ(second.h1.iterationsReplayed, second.h1.iterations);

  const std::string text = slurp(dir.file("report.txt"));
  EXPECT_NE(text.find("resumed from"), std::string::npos);
  EXPECT_NE(text.find("iterations replayed"), std::string::npos);
  std::ostringstream json;
  writeJsonTestReport(json, second, config.engine);
  EXPECT_NE(json.str().find("\"resumedFrom\""), std::string::npos);
  EXPECT_NE(json.str().find("\"iterationsReplayed\""), std::string::npos);

  // A changed configuration refuses the old checkpoint, keyed.
  Config changed = again;
  changed.fit.bfgs.maxIterations = 9;
  EXPECT_THROW(runFromConfig(changed), ConfigError);

  // --resume without a checkpoint path is a usage error.
  Config noPath = config;
  noPath.checkpointPath.clear();
  noPath.resume = true;
  EXPECT_THROW(runFromConfig(noPath), std::invalid_argument);
}

}  // namespace
}  // namespace slim::core
