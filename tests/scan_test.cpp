// Branch-classification scans and the generic ModelSpec fit path.
//
// Three contracts under test:
//   1. tree/branch_classes.hpp: the `foreground =` selector grammar,
//      every-branch enumeration, and BranchClassMap round-trips.
//   2. core::ScanAnalysis is *bit-identical* (EXPECT_EQ on doubles) to
//      running each branch set's BranchSiteAnalysis sequentially on the
//      matching foreground-marked tree — across worker counts and both
//      ParallelPolicy settings — and a scan resumed from its checkpoint
//      skips completed "<gene>@<set>" tasks while reproducing the exact
//      uninterrupted results.
//   3. The refactor guardrail: branch-site A driven through the generic
//      (site class x branch class) assignment table is byte-identical to
//      the default path (same lnL, same gradients, same report bytes), and
//      the branch / clade-C scenarios fit end-to-end through runFromConfig.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/config.hpp"
#include "core/report.hpp"
#include "core/scan.hpp"
#include "model/model_spec.hpp"
#include "sim/datasets.hpp"
#include "tree/branch_classes.hpp"

namespace slim::core {
namespace {

using model::Hypothesis;
using model::ModelKind;
using model::ModelSpec;

// ---------- tree/branch_classes.hpp ----------

tree::Tree labeledTree() {
  return tree::Tree::parseNewick(
      "((a:0.1,b:0.2)ab:0.05,(c:0.1,d:0.1)cd:0.05);");
}

TEST(BranchClasses, EveryBranchEnumeratesNonRootBranches) {
  const auto t = labeledTree();
  const auto sets = tree::everyBranchSets(t);
  // 4 leaves + 2 labeled internal branches; the root is never a set.
  ASSERT_EQ(sets.size(), 6u);
  std::vector<std::string> names;
  for (const auto& s : sets) {
    ASSERT_EQ(s.nodes.size(), 1u);
    names.push_back(s.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names,
            (std::vector<std::string>{"a", "ab", "b", "c", "cd", "d"}));
}

TEST(BranchClasses, SelectorGrammar) {
  const auto t = labeledTree();

  // Comma = one compound set; semicolon = independent sets.
  const auto sets = tree::resolveBranchSelector(t, "a,b; cd");
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].name, "a+b");
  EXPECT_EQ(sets[0].nodes.size(), 2u);
  EXPECT_EQ(sets[1].name, "cd");
  EXPECT_EQ(sets[1].nodes.size(), 1u);

  // "every-branch" matches the enumeration helper.
  const auto every = tree::resolveBranchSelector(t, "every-branch");
  const auto enumerated = tree::everyBranchSets(t);
  ASSERT_EQ(every.size(), enumerated.size());
  for (std::size_t i = 0; i < every.size(); ++i) {
    EXPECT_EQ(every[i].name, enumerated[i].name);
    EXPECT_EQ(every[i].nodes, enumerated[i].nodes);
  }

  // Numeric member = node index.
  const int a = t.findLeaf("a");
  ASSERT_GE(a, 0);
  const auto byIndex = tree::resolveBranchSelector(t, std::to_string(a));
  ASSERT_EQ(byIndex.size(), 1u);
  EXPECT_EQ(byIndex[0].nodes, (std::vector<int>{a}));

  // Errors are keyed with the offending token.
  try {
    tree::resolveBranchSelector(t, "zebra");
    FAIL() << "unknown label accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("zebra"), std::string::npos);
  }
  EXPECT_THROW(tree::resolveBranchSelector(t, ""), std::invalid_argument);
  EXPECT_THROW(tree::resolveBranchSelector(t, "a;;b"), std::invalid_argument);
}

TEST(BranchClasses, ClassMapRoundTripsAndForegroundSetsMark) {
  const auto marked = tree::Tree::parseNewick(
      "((a:0.1,b:0.2)#1:0.05,(c:0.1,d:0.1)#2:0.05);");
  EXPECT_EQ(tree::numBranchClasses(marked), 3);
  EXPECT_TRUE(tree::hasMarkedBranch(marked));

  const auto map = tree::BranchClassMap::fromTree(marked);
  EXPECT_EQ(map.numClasses, 3);
  auto plain = tree::Tree::parseNewick(
      "((a:0.1,b:0.2):0.05,(c:0.1,d:0.1):0.05);");
  EXPECT_EQ(tree::numBranchClasses(plain), 1);
  EXPECT_FALSE(tree::hasMarkedBranch(plain));
  map.applyTo(plain);
  EXPECT_EQ(tree::BranchClassMap::fromTree(plain).classOf, map.classOf);

  // withForegroundSet clears old marks and paints exactly the given nodes.
  const auto t = labeledTree();
  const int c = t.findLeaf("c");
  const auto fg = tree::withForegroundSet(marked, {c});
  const auto fgMap = tree::BranchClassMap::fromTree(fg);
  EXPECT_EQ(fgMap.numClasses, 2);
  for (std::size_t n = 0; n < fgMap.classOf.size(); ++n)
    EXPECT_EQ(fgMap.classOf[n], static_cast<int>(n) == c ? 1 : 0)
        << "node " << n;
}

// ---------- scan fixtures ----------

struct Gene {
  seqio::CodonAlignment codons;
  seqio::Alignment msa;  ///< Nucleotide MSA (for on-disk ctl fixtures).
  tree::Tree tree;       ///< Unmarked species tree the scan resolves against.
};

Gene makeGene(unsigned seed, int numTaxa = 5, int numCodons = 30) {
  const auto& gc = bio::GeneticCode::universal();
  sim::Rng rng(seed);
  auto tree = sim::yuleTree(numTaxa, rng);
  sim::pickForegroundBranch(tree, rng);
  const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
  model::BranchSiteParams truth;
  truth.kappa = 2.0;
  truth.omega0 = 0.1;
  truth.omega2 = 5.0;
  truth.p0 = 0.4;
  truth.p1 = 0.4;
  const auto simOut = sim::evolveBranchSite(gc, tree, truth, Hypothesis::H1,
                                            numCodons, pi, rng);
  // The scan input is the *unmarked* species tree: each set paints its own
  // foreground.
  tree::BranchClassMap cleared;
  cleared.classOf.assign(tree.numNodes(), 0);
  cleared.applyTo(tree);
  return {seqio::encodeCodons(simOut.alignment, gc), simOut.alignment,
          std::move(tree)};
}

FitOptions quickOptions() {
  FitOptions o;
  o.bfgs.maxIterations = 3;
  return o;
}

void expectSameTest(const PositiveSelectionTest& a,
                    const PositiveSelectionTest& b, const std::string& label) {
  for (const auto& [pa, pb] :
       {std::pair{&a.h0, &b.h0}, std::pair{&a.h1, &b.h1}}) {
    EXPECT_EQ(pa->lnL, pb->lnL) << label;
    EXPECT_EQ(pa->params.kappa, pb->params.kappa) << label;
    EXPECT_EQ(pa->params.omega0, pb->params.omega0) << label;
    EXPECT_EQ(pa->params.omega2, pb->params.omega2) << label;
    EXPECT_EQ(pa->params.p0, pb->params.p0) << label;
    EXPECT_EQ(pa->params.p1, pb->params.p1) << label;
    EXPECT_EQ(pa->branchLengths, pb->branchLengths) << label;
    EXPECT_EQ(pa->classOmegas, pb->classOmegas) << label;
    EXPECT_EQ(pa->iterations, pb->iterations) << label;
    EXPECT_EQ(pa->functionEvaluations, pb->functionEvaluations) << label;
  }
  EXPECT_EQ(a.lrt.statistic, b.lrt.statistic) << label;
  EXPECT_EQ(a.posteriors.positiveSelectionBySite,
            b.posteriors.positiveSelectionBySite)
      << label;
}

// ---------- ScanAnalysis ----------

TEST(ScanAnalysis, TaskNamesAreGeneMajor) {
  const auto t = labeledTree();
  BatchOptions options;
  options.fit = quickOptions();
  ScanAnalysis scan(EngineKind::Slim, t, "a; b", options);
  ASSERT_EQ(scan.numSets(), 2u);
  // Simulate a tiny gene on the labeled tree itself so taxon names match.
  const auto& gc = bio::GeneticCode::universal();
  sim::Rng rng(7);
  const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
  const auto simOut = sim::evolveBranchSite(
      gc, tree::withForegroundSet(t, {t.findLeaf("a")}), {}, Hypothesis::H0,
      12, pi, rng);
  const auto codons = seqio::encodeCodons(simOut.alignment, gc);
  scan.addGene(codons, quickOptions(), "geneA");
  scan.addGene(codons, quickOptions(), "geneB");
  EXPECT_EQ(scan.numTasks(), 4u);
  EXPECT_EQ(scan.taskNames(),
            (std::vector<std::string>{"geneA@a", "geneA@b", "geneB@a",
                                      "geneB@b"}));
  EXPECT_THROW(scan.addGene(codons, quickOptions(), ""),
               std::invalid_argument);
}

TEST(ScanAnalysis, EveryBranchBitIdenticalToSequentialRunsAcrossPolicies) {
  const auto gene = makeGene(20260801);
  const auto sets = tree::everyBranchSets(gene.tree);
  ASSERT_EQ(sets.size(), 8u);  // 5 taxa -> 8 non-root branches.

  // Baseline: one single-foreground BranchSiteAnalysis per branch set,
  // sequentially, exactly as a user would run them before scans existed.
  std::vector<PositiveSelectionTest> baseline;
  for (const auto& set : sets) {
    const auto marked = tree::withForegroundSet(gene.tree, set.nodes);
    BranchSiteAnalysis analysis(gene.codons, marked, EngineKind::Slim,
                                quickOptions());
    baseline.push_back(analysis.run());
  }

  for (const int threads : {1, 2, 8}) {
    for (const auto policy :
         {ParallelPolicy::TaskLevel, ParallelPolicy::PatternLevel}) {
      BatchOptions options;
      options.fit = quickOptions();
      options.fit.tuning.numThreads = threads;
      options.fit.tuning.policy = policy;
      ScanAnalysis scan(EngineKind::Slim, gene.tree, "every-branch", options);
      scan.addGene(gene.codons, options.fit, "gene");
      const auto tests = scan.runAll();
      ASSERT_EQ(tests.size(), baseline.size());
      const std::string label = std::string("threads=") +
                                std::to_string(threads) + " policy=" +
                                parallelPolicyName(policy);
      for (std::size_t s = 0; s < sets.size(); ++s) {
        expectSameTest(tests[s], baseline[s], label + " set=" + sets[s].name);
        EXPECT_EQ(scan.taskNames()[s], "gene@" + sets[s].name) << label;
      }
    }
  }
}

// ---------- the generic-assignment-table guardrail ----------

// Branch-site A driven explicitly through ModelSpec::branchSite() must be
// byte-identical to the default FitOptions path: same lnL, same analytic
// gradients (pinned via gradient-evaluation counts and the identical
// trajectory), same report bytes.
TEST(GenericSpecPath, BranchSiteAExplicitSpecIsByteIdentical) {
  const auto gene = makeGene(42);
  const auto marked = tree::withForegroundSet(
      gene.tree, tree::everyBranchSets(gene.tree).front().nodes);

  FitOptions defaults = quickOptions();
  defaults.tuning.gradient = GradientMode::Analytic;
  FitOptions explicitSpec = defaults;
  explicitSpec.modelSpec = ModelSpec::branchSite();

  BranchSiteAnalysis a(gene.codons, marked, EngineKind::Slim, defaults);
  BranchSiteAnalysis b(gene.codons, marked, EngineKind::Slim, explicitSpec);
  auto ta = a.run();
  auto tb = b.run();
  // Wall time is the one legitimately nondeterministic report field.
  for (auto* t : {&ta, &tb}) {
    t->h0.seconds = t->h1.seconds = t->totalSeconds = 0;
  }
  expectSameTest(ta, tb, "explicit branch-site spec");
  EXPECT_EQ(ta.h1.gradientEvaluations, tb.h1.gradientEvaluations);
  EXPECT_EQ(ta.h1.gradientMode, GradientMode::Analytic);
  EXPECT_EQ(ta.h0.modelKind, ModelKind::BranchSite);
  EXPECT_TRUE(ta.h0.classOmegas.empty());

  EXPECT_EQ(testReportString(ta, EngineKind::Slim),
            testReportString(tb, EngineKind::Slim));
  std::ostringstream ja, jb;
  writeJsonTestReport(ja, ta, EngineKind::Slim, "gene");
  writeJsonTestReport(jb, tb, EngineKind::Slim, "gene");
  EXPECT_EQ(ja.str(), jb.str());
  // Branch-site JSON carries no model/classOmegas fields (byte-compat with
  // pre-refactor reports).
  EXPECT_EQ(ja.str().find("\"classOmegas\""), std::string::npos);
}

// ---------- branch / clade-C scenarios end to end ----------

class ScanConfigRun : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) / "slim_scan_cfg";
    std::filesystem::create_directories(dir_);
    const auto gene = makeGene(99, 4, 15);
    const auto sets = tree::everyBranchSets(gene.tree);
    const auto marked = tree::withForegroundSet(gene.tree, sets[0].nodes);
    write("gene.nwk", marked.toNewick() + "\n");
    write("plain.nwk", gene.tree.toNewick() + "\n");
    std::ofstream fasta(path("gene.fasta"));
    gene.msa.writeFasta(fasta);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  void write(const std::string& name, const std::string& text) const {
    std::ofstream(path(name)) << text;
  }

  std::filesystem::path dir_;
};

TEST_F(ScanConfigRun, BranchAndCladeCFitThroughCtl) {
  for (const char* kind : {"branch", "clade-c"}) {
    const auto cfg = Config::parseString(
        "seqfile = " + path("gene.fasta") + "\ntreefile = " +
        path("gene.nwk") + "\nmodel = " + kind +
        "\noutfile = -\nmaxIterations = 3\n");
    const auto test = runFromConfig(cfg);
    SCOPED_TRACE(kind);
    EXPECT_TRUE(std::isfinite(test.h0.lnL));
    EXPECT_TRUE(std::isfinite(test.h1.lnL));
    EXPECT_GE(test.h1.lnL, test.h0.lnL);  // H0 nests in H1.
    EXPECT_DOUBLE_EQ(test.lrt.df, 1.0);   // two branch classes.
    const auto expected = std::string(kind) == "branch" ? ModelKind::Branch
                                                        : ModelKind::CladeC;
    EXPECT_EQ(test.h1.modelKind, expected);
    EXPECT_EQ(test.h1.classOmegas.size(), 2u);  // one omega per class.
    EXPECT_EQ(test.h0.classOmegas.size(), 1u);  // shared under H0.
    // The report renders without the branch-site-only sections.
    const std::string report = testReportString(test, EngineKind::Slim);
    EXPECT_EQ(report.find("p0 ="),
              expected == ModelKind::Branch ? std::string::npos
                                            : report.find("p0 ="));
  }

  // An unmarked tree is refused up front with the keyed spec error.
  const auto cfg = Config::parseString(
      "seqfile = " + path("gene.fasta") + "\ntreefile = " + path("plain.nwk") +
      "\nmodel = branch\noutfile = -\nmaxIterations = 2\n");
  EXPECT_THROW(runFromConfig(cfg), std::invalid_argument);
}

// ---------- scan checkpoint/resume ----------

TEST_F(ScanConfigRun, ScanResumeSkipsCompletedTasksBitIdentically) {
  const std::string base =
      "seqfile = " + path("gene.fasta") + "\ntreefile = " +
      path("plain.nwk") + "\nmodel = branch-site\nforeground = every-branch" +
      "\noutfile = " + path("out.txt") + "\ncheckpoint = " +
      path("scan.ckpt") + "\ncheckpointEverySec = 0\nmaxIterations = 3\n";

  auto cfg = Config::parseString(base);
  const auto first = runBatchFromConfig(cfg);
  ASSERT_EQ(first.geneNames.size(), 6u);  // 4 taxa -> 6 non-root branches.
  for (const auto& name : first.geneNames)
    EXPECT_NE(name.find("gene@"), std::string::npos) << name;

  // "SIGKILL after completion, rerun with --resume": every <gene>@<set>
  // task must be restored from the checkpoint, not refit, and the restored
  // results must be bit-identical to the uninterrupted run.
  auto resumedCfg = Config::parseString(base);
  resumedCfg.resume = true;
  const auto resumed = runBatchFromConfig(resumedCfg);
  ASSERT_EQ(resumed.tests.size(), first.tests.size());
  EXPECT_EQ(resumed.geneNames, first.geneNames);
  for (std::size_t t = 0; t < first.tests.size(); ++t) {
    expectSameTest(resumed.tests[t], first.tests[t],
                   "resume " + first.geneNames[t]);
    EXPECT_FALSE(resumed.tests[t].h0.resumedFrom.empty())
        << first.geneNames[t];
    EXPECT_FALSE(resumed.tests[t].h1.resumedFrom.empty())
        << first.geneNames[t];
  }

  // A different selector changes the config hash: resume refuses loudly
  // rather than silently mixing results from another scan.
  auto mismatched = Config::parseString(base);
  mismatched.foreground =
      tree::everyBranchSets(loadTreeFile(path("plain.nwk"))).front().name;
  mismatched.resume = true;
  EXPECT_THROW(runBatchFromConfig(mismatched), std::exception);
}

}  // namespace
}  // namespace slim::core
