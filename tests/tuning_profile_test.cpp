// Per-host tuning profiles (core/tuning_profile.hpp) and the autotuner:
// exact round trips, the strict parser's refusal matrix (corrupted,
// truncated, version-mismatched, foreign-host files must throw keyed
// ConfigErrors, never mis-tune silently), the fill-only-defaults merge
// semantics, and `tuning = auto` resolution including the silent fallback
// when no profile exists.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/config.hpp"
#include "core/tuning_profile.hpp"
#include "support/host_info.hpp"
#include "tune/autotune.hpp"

namespace {

using namespace slim;
using core::Config;
using core::ConfigError;
using core::ParallelPolicy;
using core::TuningProfile;

namespace fs = std::filesystem;

/// Fresh per-test scratch directory (removed on destruction).
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) /
             ("slim_tuning_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

/// Scoped SLIMCODEML_TUNING override (restores the prior value on exit).
struct ScopedTuningEnv {
  std::string saved;
  bool hadValue;
  explicit ScopedTuningEnv(const std::string& value) {
    const char* old = std::getenv("SLIMCODEML_TUNING");
    hadValue = old != nullptr;
    if (hadValue) saved = old;
    ::setenv("SLIMCODEML_TUNING", value.c_str(), 1);
  }
  ~ScopedTuningEnv() {
    if (hadValue)
      ::setenv("SLIMCODEML_TUNING", saved.c_str(), 1);
    else
      ::unsetenv("SLIMCODEML_TUNING");
  }
};

/// A fully-populated profile bound to the running host (so load() accepts).
TuningProfile localProfile() {
  TuningProfile p;
  p.host = support::hostName();
  p.simdDetected = linalg::simdLevelName(linalg::detectSimdLevel());
  p.hardwareThreads = support::hardwareThreads();
  p.numThreads = 3;
  p.blockSize = 48;
  p.policy = ParallelPolicy::TaskLevel;
  p.simd = linalg::SimdMode::Scalar;
  p.backend = backend::BackendMode::Reference;
  p.secondsPerEval = 0.1 + 0.2;  // not exactly representable: hexDouble test
  return p;
}

// ---------- format round trips ----------

TEST(TuningProfileFormat, SerializeParseRoundTripIsExact) {
  const TuningProfile p = localProfile();
  const TuningProfile q = TuningProfile::parse(p.serialize(), "roundtrip");
  EXPECT_EQ(q.host, p.host);
  EXPECT_EQ(q.simdDetected, p.simdDetected);
  EXPECT_EQ(q.hardwareThreads, p.hardwareThreads);
  EXPECT_EQ(q.numThreads, p.numThreads);
  EXPECT_EQ(q.blockSize, p.blockSize);
  EXPECT_EQ(q.policy, p.policy);
  EXPECT_EQ(q.simd, p.simd);
  EXPECT_EQ(q.backend, p.backend);
  EXPECT_EQ(q.secondsPerEval, p.secondsPerEval);  // bit-exact via hex float
  // Serialization is canonical: a round trip reproduces the bytes.
  EXPECT_EQ(q.serialize(), p.serialize());
}

TEST(TuningProfileFormat, SaveLoadThroughFile) {
  const TempDir dir("saveload");
  const TuningProfile p = localProfile();
  p.save(dir.file("host.tuning"));
  const TuningProfile q = TuningProfile::load(dir.file("host.tuning"));
  EXPECT_EQ(q.serialize(), p.serialize());
}

// ---------- the refusal matrix ----------

TEST(TuningProfileFormat, RefusesCorruptedAndMismatchedInput) {
  const std::string good = localProfile().serialize();

  // Truncation: drop the trailing "end\n".
  EXPECT_THROW(TuningProfile::parse(good.substr(0, good.size() - 4), "t"),
               ConfigError);
  // Bad magic.
  EXPECT_THROW(TuningProfile::parse("not-a-profile v1\nend\n", "t"),
               ConfigError);
  // Version from the future.
  std::string bumped = good;
  bumped.replace(bumped.find(" v2\n"), 4, " v3\n");
  EXPECT_THROW(TuningProfile::parse(bumped, "t"), ConfigError);
  // Unknown field.
  EXPECT_THROW(
      TuningProfile::parse(good.substr(0, good.find("end\n")) +
                               "mystery 7\nend\n",
                           "t"),
      ConfigError);
  // Malformed integer.
  std::string badInt = good;
  badInt.replace(badInt.find("blockSize 48"), 12, "blockSize 4x");
  EXPECT_THROW(TuningProfile::parse(badInt, "t"), ConfigError);
  // Content after 'end'.
  EXPECT_THROW(TuningProfile::parse(good + "trailing\n", "t"), ConfigError);
  // Missing host.
  std::string noHost = good;
  const auto hostPos = noHost.find("host ");
  noHost.erase(hostPos, noHost.find('\n', hostPos) - hostPos + 1);
  EXPECT_THROW(TuningProfile::parse(noHost, "t"), ConfigError);
  // Empty file.
  EXPECT_THROW(TuningProfile::parse("", "t"), ConfigError);

  // The error message carries the origin (keyed diagnostics).
  try {
    TuningProfile::parse(good + "trailing\n", "origin.tuning");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("origin.tuning"), std::string::npos);
  }
}

// v1 files (written before the compute-backend axis existed) must keep
// loading: no `backend` line, field stays at the Auto sentinel.
TEST(TuningProfileFormat, V1ProfileParsesWithBackendUnset) {
  std::string v1 = localProfile().serialize();
  v1.replace(v1.find(" v2\n"), 4, " v1\n");
  const auto backendPos = v1.find("backend ");
  v1.erase(backendPos, v1.find('\n', backendPos) - backendPos + 1);

  const TuningProfile q = TuningProfile::parse(v1, "legacy");
  EXPECT_EQ(q.backend, backend::BackendMode::Auto);
  EXPECT_EQ(q.blockSize, 48);  // the rest of the fields read normally
  EXPECT_EQ(q.numThreads, 3);
}

// A profile tuned with a backend this build lacks (e.g. blas without
// -DSLIM_WITH_BLAS) must refuse at load(), naming the backend.
TEST(TuningProfileLoad, RefusesUnavailableTunedBackend) {
  if (backend::backendAvailable(backend::BackendKind::Blas))
    GTEST_SKIP() << "blas backend available in this build";
  const TempDir dir("blasrefuse");
  TuningProfile p = localProfile();
  p.backend = backend::BackendMode::Blas;
  p.save(dir.file("blas.tuning"));
  try {
    TuningProfile::load(dir.file("blas.tuning"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("blas"), std::string::npos);
  }
}

TEST(TuningProfileLoad, RefusesMissingFileAndForeignHost) {
  const TempDir dir("refuse");
  EXPECT_THROW(TuningProfile::load(dir.file("absent.tuning")), ConfigError);

  TuningProfile foreign = localProfile();
  foreign.host = "some-other-machine";
  foreign.save(dir.file("foreign.tuning"));
  // parse() accepts it (no host check there; tests need to build these)...
  EXPECT_NO_THROW(TuningProfile::parse(foreign.serialize(), "t"));
  // ...load() refuses it with the host named in the message.
  try {
    TuningProfile::load(dir.file("foreign.tuning"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("some-other-machine"),
              std::string::npos);
  }
}

TEST(TuningProfileLoad, RefusesSimdLevelThisHostCannotRun) {
  // Find a level the host cannot run; skip on machines that run everything.
  linalg::SimdMode unavailable = linalg::SimdMode::Auto;
  if (!linalg::simdLevelAvailable(linalg::SimdLevel::Avx512))
    unavailable = linalg::SimdMode::Avx512;
  else if (!linalg::simdLevelAvailable(linalg::SimdLevel::Avx2))
    unavailable = linalg::SimdMode::Avx2;
  if (unavailable == linalg::SimdMode::Auto) GTEST_SKIP();

  const TempDir dir("simd");
  TuningProfile p = localProfile();
  p.simd = unavailable;
  p.save(dir.file("wide.tuning"));
  EXPECT_THROW(TuningProfile::load(dir.file("wide.tuning")), ConfigError);
}

// ---------- merge semantics ----------

TEST(TuningProfileApply, FillsOnlyFieldsStillAtTheirDefaults) {
  const TuningProfile p = localProfile();

  core::LikelihoodTuning untouched;  // all sentinels
  p.applyTo(untouched);
  EXPECT_EQ(untouched.numThreads, 3);
  EXPECT_EQ(untouched.blockSize, 48);
  EXPECT_EQ(untouched.policy, ParallelPolicy::TaskLevel);
  EXPECT_EQ(untouched.simd, linalg::SimdMode::Scalar);

  core::LikelihoodTuning explicitly;
  explicitly.numThreads = 7;
  explicitly.blockSize = 16;
  explicitly.policy = ParallelPolicy::PatternLevel;
  explicitly.simd = linalg::SimdMode::Auto;  // the one field left default
  p.applyTo(explicitly);
  EXPECT_EQ(explicitly.numThreads, 7);   // ctl key beats profile
  EXPECT_EQ(explicitly.blockSize, 16);
  EXPECT_EQ(explicitly.policy, ParallelPolicy::PatternLevel);
  EXPECT_EQ(explicitly.simd, linalg::SimdMode::Scalar);  // default: filled
}

// ---------- config integration ----------

TEST(ResolveTuning, CtlKeyParsesAndAutoFallsBackWhenNoProfileExists) {
  const TempDir dir("auto");
  const ScopedTuningEnv env(dir.file("absent.tuning"));

  const Config cfg = Config::parseString(
      "seqfile = g.fasta\ntreefile = t.nwk\ntuning = auto\n");
  EXPECT_EQ(cfg.tuningPath, "auto");

  // No profile at the default path: silently unchanged (defaults stand).
  const Config resolved = core::resolveTuningProfile(cfg);
  EXPECT_EQ(resolved.fit.tuning.numThreads, -1);
  EXPECT_EQ(resolved.fit.tuning.blockSize, -1);
  EXPECT_EQ(resolved.fit.tuning.simd, linalg::SimdMode::Auto);
}

TEST(ResolveTuning, AutoLoadsTheDefaultPathProfileWhenPresent) {
  const TempDir dir("autoload");
  const ScopedTuningEnv env(dir.file("host.tuning"));
  localProfile().save(dir.file("host.tuning"));

  Config cfg;
  cfg.tuningPath = "auto";
  const Config resolved = core::resolveTuningProfile(cfg);
  EXPECT_EQ(resolved.fit.tuning.numThreads, 3);
  EXPECT_EQ(resolved.fit.tuning.blockSize, 48);
  EXPECT_EQ(resolved.fit.tuning.policy, ParallelPolicy::TaskLevel);
  EXPECT_EQ(resolved.fit.tuning.simd, linalg::SimdMode::Scalar);
}

TEST(ResolveTuning, ExplicitPathMustExistAndCorruptAutoProfileIsLoud) {
  const TempDir dir("strict");

  // An explicit `tuning = <path>` never falls back silently.
  Config explicitCfg;
  explicitCfg.tuningPath = dir.file("absent.tuning");
  EXPECT_THROW(core::resolveTuningProfile(explicitCfg), ConfigError);

  // `tuning = auto` skips a *missing* file only; a corrupt one still throws.
  const ScopedTuningEnv env(dir.file("corrupt.tuning"));
  std::ofstream(dir.file("corrupt.tuning")) << "garbage\n";
  Config autoCfg;
  autoCfg.tuningPath = "auto";
  EXPECT_THROW(core::resolveTuningProfile(autoCfg), ConfigError);
}

// ---------- the autotuner ----------

TEST(Autotune, ProducesALoadableProfileBoundToThisHost) {
  tune::AutotuneOptions options;
  options.numSpecies = 5;
  options.numCodons = 24;
  options.threads = 1;  // keep the smoke run cheap; skips the policy race
  options.evalsPerConfig = 1;
  options.repeats = 1;
  options.blockSizes = {0, 32};
  const tune::AutotuneResult result = tune::autotune(options);

  // Two SIMD-level-agnostic candidates per level, at least scalar level.
  EXPECT_GE(result.measurements.size(), 2u);
  for (const auto& m : result.measurements) EXPECT_GT(m.secondsPerUnit, 0.0);

  const TuningProfile& p = result.profile;
  EXPECT_EQ(p.host, support::hostName());
  EXPECT_EQ(p.hardwareThreads, support::hardwareThreads());
  EXPECT_EQ(p.numThreads, 1);
  EXPECT_TRUE(p.blockSize == 0 || p.blockSize == 32);
  EXPECT_NE(p.simd, linalg::SimdMode::Auto);  // an explicit winner
  EXPECT_EQ(p.policy, ParallelPolicy::Auto);  // 1 worker: race skipped
  EXPECT_GT(p.secondsPerEval, 0.0);

  // The full circle: save, load (host check passes), apply.
  const TempDir dir("tuned");
  p.save(dir.file("auto.tuning"));
  const TuningProfile loaded = TuningProfile::load(dir.file("auto.tuning"));
  core::LikelihoodTuning tuning;
  loaded.applyTo(tuning);
  EXPECT_EQ(tuning.numThreads, 1);
  EXPECT_EQ(tuning.blockSize, p.blockSize);
}

}  // namespace
