// Cross-module property tests: randomized invariants that must hold for any
// parameter draw, exercised as parameterized sweeps.

#include <gtest/gtest.h>

#include <cmath>

#include "expm/codon_eigen_system.hpp"
#include "lik/branch_site_likelihood.hpp"
#include "model/codon_model.hpp"
#include "model/frequencies.hpp"
#include "model/site_mixture.hpp"
#include "sim/datasets.hpp"
#include "test_util.hpp"

namespace slim {
namespace {

const bio::GeneticCode& gc() { return bio::GeneticCode::universal(); }

// ---------- CTMC invariants over a parameter grid ----------

struct CtmcCase {
  double kappa, omega, t;
  unsigned piSeed;
};

class CtmcInvariants : public ::testing::TestWithParam<CtmcCase> {};

TEST_P(CtmcInvariants, StochasticityAndReversibility) {
  const auto [kappa, omega, t, piSeed] = GetParam();
  const auto pi = testutil::randomFrequencies(61, piSeed);
  linalg::Matrix s(61, 61);
  model::buildExchangeability(gc(), kappa, omega, s);
  const expm::CodonEigenSystem es(s, pi);
  expm::ExpmWorkspace ws;
  linalg::Matrix p(61, 61);
  es.transitionMatrix(t, expm::ReconstructionPath::Syrk, linalg::Flavor::Opt,
                      ws, p);
  for (int i = 0; i < 61; ++i) {
    double rowSum = 0;
    for (int j = 0; j < 61; ++j) {
      EXPECT_GE(p(i, j), 0.0);
      rowSum += p(i, j);
    }
    EXPECT_NEAR(rowSum, 1.0, 1e-9);
  }
  for (int i = 0; i < 61; ++i)
    for (int j = i + 1; j < 61; ++j)
      EXPECT_NEAR(pi[i] * p(i, j), pi[j] * p(j, i), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CtmcInvariants,
    ::testing::Values(CtmcCase{0.5, 0.01, 0.05, 1}, CtmcCase{1.0, 0.5, 0.2, 2},
                      CtmcCase{2.0, 1.0, 0.5, 3}, CtmcCase{4.0, 3.0, 1.0, 4},
                      CtmcCase{8.0, 10.0, 2.0, 5}, CtmcCase{2.0, 0.0, 0.3, 6},
                      CtmcCase{1.5, 0.2, 10.0, 7},
                      CtmcCase{3.0, 2.0, 1e-6, 8}));

// ---------- likelihood invariances ----------

struct LikFixture {
  seqio::CodonAlignment ca;
  seqio::SitePatterns sp;
  std::vector<double> pi;
  tree::Tree tree;
};

LikFixture makeLikFixture(unsigned seed, int species = 5, int codons = 20) {
  sim::Rng rng(seed);
  auto tree = sim::yuleTree(species, rng);
  sim::pickForegroundBranch(tree, rng);
  const auto piGen = sim::randomCodonFrequencies(61, 5, rng);
  const auto simOut =
      sim::evolveBranchSite(gc(), tree, sim::defaultSimulationParams(),
                            model::Hypothesis::H1, codons, piGen, rng);
  LikFixture f;
  f.ca = seqio::encodeCodons(simOut.alignment, gc());
  f.sp = seqio::compressPatterns(f.ca);
  f.pi = model::estimateCodonFrequencies(f.ca, model::CodonFrequencyModel::F3x4);
  f.tree = std::move(tree);
  return f;
}

class LikelihoodInvariance : public ::testing::TestWithParam<unsigned> {};

TEST_P(LikelihoodInvariance, SequenceOrderIrrelevant) {
  // Permuting the rows of the alignment must not change lnL (leaves are
  // matched by name, not by index).
  const auto f = makeLikFixture(GetParam());
  seqio::CodonAlignment shuffled = f.ca;
  std::reverse(shuffled.names.begin(), shuffled.names.end());
  std::reverse(shuffled.states.begin(), shuffled.states.end());
  const auto spShuffled = seqio::compressPatterns(shuffled);

  const auto params = sim::defaultSimulationParams();
  lik::BranchSiteLikelihood a(f.ca, f.sp, f.pi, f.tree, model::Hypothesis::H1,
                              lik::slimOptions());
  lik::BranchSiteLikelihood b(shuffled, spShuffled, f.pi, f.tree,
                              model::Hypothesis::H1, lik::slimOptions());
  EXPECT_NEAR(a.logLikelihood(params), b.logLikelihood(params), 1e-9);
}

TEST_P(LikelihoodInvariance, PatternCompressionIrrelevant) {
  // Evaluating with one pattern per site (no dedup) must give the same lnL
  // as the compressed evaluation.
  const auto f = makeLikFixture(GetParam());
  seqio::SitePatterns uncompressed;
  const std::size_t nsites = f.ca.numSites();
  for (std::size_t i = 0; i < nsites; ++i) {
    std::vector<int> col(f.ca.numSequences());
    for (std::size_t s = 0; s < f.ca.numSequences(); ++s)
      col[s] = f.ca.states[s][i];
    uncompressed.patterns.push_back(std::move(col));
    uncompressed.weights.push_back(1.0);
    uncompressed.siteToPattern.push_back(static_cast<int>(i));
  }

  const auto params = sim::defaultSimulationParams();
  lik::BranchSiteLikelihood a(f.ca, f.sp, f.pi, f.tree, model::Hypothesis::H1,
                              lik::slimOptions());
  lik::BranchSiteLikelihood b(f.ca, uncompressed, f.pi, f.tree,
                              model::Hypothesis::H1, lik::slimOptions());
  const double la = a.logLikelihood(params);
  EXPECT_NEAR(la, b.logLikelihood(params), 1e-9 * std::fabs(la));
}

TEST_P(LikelihoodInvariance, LnLAlwaysNegative) {
  // Site likelihoods are probabilities: lnL < 0 for any parameter draw.
  const auto f = makeLikFixture(GetParam());
  sim::Rng rng(GetParam() * 7 + 1);
  lik::BranchSiteLikelihood eval(f.ca, f.sp, f.pi, f.tree,
                                 model::Hypothesis::H1, lik::slimOptions());
  for (int draw = 0; draw < 5; ++draw) {
    model::BranchSiteParams p;
    p.kappa = rng.uniform(0.5, 8.0);
    p.omega0 = rng.uniform(0.01, 0.95);
    p.omega2 = rng.uniform(1.0, 9.0);
    p.p0 = rng.uniform(0.05, 0.6);
    p.p1 = rng.uniform(0.05, 1.0 - p.p0 - 0.05);
    const double lnL = eval.logLikelihood(p);
    EXPECT_TRUE(std::isfinite(lnL));
    EXPECT_LT(lnL, 0.0);
  }
}

TEST_P(LikelihoodInvariance, ForegroundMarkInertForHomogeneousMixtures) {
  // For branch-homogeneous mixtures (site models: same omega on background
  // and foreground in every class) the mark placement must not change lnL.
  // For model A it must: even under H0, class 2a has omega0 on background
  // vs omega2 = 1 on the foreground branch (Table I).
  const auto f = makeLikFixture(GetParam());
  auto params = sim::defaultSimulationParams();

  const auto branches = f.tree.branches();
  tree::Tree treeA = f.tree;
  tree::Tree treeB = f.tree;
  treeA.setForegroundBranch(branches.front());
  treeB.setForegroundBranch(branches.back());

  model::SiteModelParams siteParams;
  const auto m2a = model::buildM2aSpec(gc(), f.pi, siteParams);
  lik::BranchSiteLikelihood sa(f.ca, f.sp, f.pi, treeA, model::Hypothesis::H1,
                               lik::slimOptions());
  lik::BranchSiteLikelihood sb(f.ca, f.sp, f.pi, treeB, model::Hypothesis::H1,
                               lik::slimOptions());
  EXPECT_NEAR(sa.logLikelihood(m2a), sb.logLikelihood(m2a), 1e-9);

  // Model A (branch-heterogeneous): the mark matters, under H0 and H1.
  lik::BranchSiteLikelihood h0a(f.ca, f.sp, f.pi, treeA, model::Hypothesis::H0,
                                lik::slimOptions());
  lik::BranchSiteLikelihood h0b(f.ca, f.sp, f.pi, treeB, model::Hypothesis::H0,
                                lik::slimOptions());
  EXPECT_NE(h0a.logLikelihood(params), h0b.logLikelihood(params));
  params.omega2 = 6.0;
  lik::BranchSiteLikelihood h1a(f.ca, f.sp, f.pi, treeA, model::Hypothesis::H1,
                                lik::slimOptions());
  lik::BranchSiteLikelihood h1b(f.ca, f.sp, f.pi, treeB, model::Hypothesis::H1,
                                lik::slimOptions());
  EXPECT_NE(h1a.logLikelihood(params), h1b.logLikelihood(params));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LikelihoodInvariance,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace slim
