// Tests for codon frequencies, the Eq. 1 rate matrix and branch-site model A
// structure (Table I).

#include <gtest/gtest.h>

#include <cmath>

#include "model/branch_site.hpp"
#include "model/codon_model.hpp"
#include "model/frequencies.hpp"
#include "seqio/alignment.hpp"

namespace slim::model {
namespace {

using linalg::Matrix;

const bio::GeneticCode& gc() { return bio::GeneticCode::universal(); }

seqio::CodonAlignment smallAlignment() {
  seqio::Alignment aln;
  aln.addSequence("a", "ATGAAATTTCCCGGGATG");
  aln.addSequence("b", "ATGAAGTTCCCCGGAATG");
  return encodeCodons(aln, gc());
}

// ---------- frequencies ----------

TEST(Frequencies, EqualModel) {
  const auto pi = estimateCodonFrequencies(smallAlignment(),
                                           CodonFrequencyModel::Equal);
  ASSERT_EQ(pi.size(), 61u);
  for (double f : pi) EXPECT_DOUBLE_EQ(f, 1.0 / 61.0);
}

class FrequencyModels
    : public ::testing::TestWithParam<CodonFrequencyModel> {};

TEST_P(FrequencyModels, PositiveAndNormalized) {
  const auto pi = estimateCodonFrequencies(smallAlignment(), GetParam());
  validateFrequencies(pi, 61);  // throws on violation
  double total = 0;
  for (double f : pi) {
    EXPECT_GT(f, 0.0);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllModels, FrequencyModels,
                         ::testing::Values(CodonFrequencyModel::Equal,
                                           CodonFrequencyModel::F1x4,
                                           CodonFrequencyModel::F3x4,
                                           CodonFrequencyModel::F61));

TEST(Frequencies, F61ReflectsCounts) {
  const auto pi =
      estimateCodonFrequencies(smallAlignment(), CodonFrequencyModel::F61);
  const int atg = gc().senseIndex(*bio::codonFromString("ATG"));
  const int ggg = gc().senseIndex(*bio::codonFromString("GGG"));
  // ATG appears 4 times out of 12 codons, GGG once.
  EXPECT_GT(pi[atg], pi[ggg]);
  EXPECT_NEAR(pi[atg], 4.0 / 12.0, 1e-3);
}

TEST(Frequencies, F3x4UsesPositionSpecificComposition) {
  const auto pi3 =
      estimateCodonFrequencies(smallAlignment(), CodonFrequencyModel::F3x4);
  const auto pi1 =
      estimateCodonFrequencies(smallAlignment(), CodonFrequencyModel::F1x4);
  // The two estimators must genuinely differ on asymmetric data.
  double diff = 0;
  for (std::size_t i = 0; i < pi3.size(); ++i)
    diff = std::max(diff, std::fabs(pi3[i] - pi1[i]));
  EXPECT_GT(diff, 1e-4);
}

TEST(Frequencies, ValidatorRejectsBadInput) {
  std::vector<double> pi(61, 1.0 / 61.0);
  EXPECT_NO_THROW(validateFrequencies(pi, 61));
  pi[0] = 0.0;
  EXPECT_THROW(validateFrequencies(pi, 61), std::invalid_argument);
  EXPECT_THROW(validateFrequencies(std::vector<double>(60, 1.0 / 60), 61),
               std::invalid_argument);
}

// ---------- exchangeability / rate matrix ----------

TEST(Exchangeability, StructureMatchesEq1) {
  const int n = gc().numSense();
  Matrix s(n, n);
  const double kappa = 3.0, omega = 0.4;
  buildExchangeability(gc(), kappa, omega, s);

  // Spot checks against hand-classified pairs:
  const auto idx = [&](const char* c) {
    return gc().senseIndex(*bio::codonFromString(c));
  };
  // TTT->TTC: synonymous transition -> kappa.
  EXPECT_DOUBLE_EQ(s(idx("TTT"), idx("TTC")), kappa);
  // TTT->TTA: non-synonymous transversion -> omega.
  EXPECT_DOUBLE_EQ(s(idx("TTT"), idx("TTA")), omega);
  // ATG->ATA: non-synonymous transition -> kappa*omega.
  EXPECT_DOUBLE_EQ(s(idx("ATG"), idx("ATA")), kappa * omega);
  // GTT->GTA: synonymous transversion -> 1.
  EXPECT_DOUBLE_EQ(s(idx("GTT"), idx("GTA")), 1.0);
  // Two differences -> 0.
  EXPECT_DOUBLE_EQ(s(idx("TTT"), idx("AAT")), 0.0);
}

TEST(Exchangeability, Symmetric) {
  const int n = gc().numSense();
  Matrix s(n, n);
  buildExchangeability(gc(), 2.0, 0.5, s);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) EXPECT_DOUBLE_EQ(s(i, j), s(j, i));
}

TEST(Exchangeability, RejectsBadParameters) {
  Matrix s(61, 61);
  EXPECT_THROW(buildExchangeability(gc(), 0.0, 0.5, s),
               std::invalid_argument);
  EXPECT_THROW(buildExchangeability(gc(), 2.0, -0.1, s),
               std::invalid_argument);
  Matrix bad(60, 60);
  EXPECT_THROW(buildExchangeability(gc(), 2.0, 0.5, bad),
               std::invalid_argument);
}

TEST(RateMatrix, IsValidGenerator) {
  const int n = gc().numSense();
  std::vector<double> pi(n, 1.0 / n);
  Matrix s(n, n), q(n, n);
  buildExchangeability(gc(), 2.0, 0.3, s);
  const double mu = buildRateMatrix(s, pi, q);
  EXPECT_GT(mu, 0.0);
  EXPECT_NO_THROW(validateGenerator(q, pi));
  EXPECT_NEAR(expectedRate(q, pi), mu, 1e-12);
}

TEST(RateMatrix, ScalingNormalizesRate) {
  const int n = gc().numSense();
  std::vector<double> pi(n, 1.0 / n);
  Matrix s(n, n), q(n, n);
  buildExchangeability(gc(), 2.0, 0.3, s);
  const double mu = buildRateMatrix(s, pi, q);
  scaleRateMatrix(q, mu);
  EXPECT_NEAR(expectedRate(q, pi), 1.0, 1e-12);
}

TEST(RateMatrix, OmegaZeroKillsNonSynonymousRates) {
  const int n = gc().numSense();
  std::vector<double> pi(n, 1.0 / n);
  Matrix s(n, n), q(n, n);
  buildExchangeability(gc(), 2.0, 0.0, s);
  buildRateMatrix(s, pi, q);
  const auto idx = [&](const char* c) {
    return gc().senseIndex(*bio::codonFromString(c));
  };
  EXPECT_DOUBLE_EQ(q(idx("TTT"), idx("TTA")), 0.0);  // non-synonymous
  EXPECT_GT(q(idx("TTT"), idx("TTC")), 0.0);         // synonymous
}

// ---------- branch-site model A ----------

TEST(BranchSite, ProportionsMatchTableI) {
  const auto p = siteClassProportions(0.5, 0.3);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.3);
  EXPECT_NEAR(p[2], 0.2 * 0.5 / 0.8, 1e-15);
  EXPECT_NEAR(p[3], 0.2 * 0.3 / 0.8, 1e-15);
  EXPECT_NEAR(p[0] + p[1] + p[2] + p[3], 1.0, 1e-15);
}

TEST(BranchSite, ProportionsRejectDegenerate) {
  EXPECT_THROW(siteClassProportions(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(siteClassProportions(0.6, 0.4), std::invalid_argument);
}

TEST(BranchSite, OmegaAssignmentMatchesTableI) {
  // Background column.
  EXPECT_EQ(omegaIndexFor(0, false), kOmegaConserved);
  EXPECT_EQ(omegaIndexFor(1, false), kOmegaNeutral);
  EXPECT_EQ(omegaIndexFor(2, false), kOmegaConserved);  // 2a
  EXPECT_EQ(omegaIndexFor(3, false), kOmegaNeutral);    // 2b
  // Foreground column.
  EXPECT_EQ(omegaIndexFor(0, true), kOmegaConserved);
  EXPECT_EQ(omegaIndexFor(1, true), kOmegaNeutral);
  EXPECT_EQ(omegaIndexFor(2, true), kOmegaPositive);
  EXPECT_EQ(omegaIndexFor(3, true), kOmegaPositive);
}

TEST(BranchSite, ParamValidation) {
  BranchSiteParams p;
  EXPECT_NO_THROW(p.validate(Hypothesis::H1));
  p.omega0 = 1.5;
  EXPECT_THROW(p.validate(Hypothesis::H1), std::invalid_argument);
  p = {};
  p.omega2 = 0.5;
  EXPECT_THROW(p.validate(Hypothesis::H1), std::invalid_argument);
  EXPECT_NO_THROW(p.validate(Hypothesis::H0));  // omega2 ignored under H0
  p = {};
  p.p0 = 0.7;
  p.p1 = 0.4;
  EXPECT_THROW(p.validate(Hypothesis::H0), std::invalid_argument);
}

TEST(BranchSite, DistinctOmegasUnderH0AndH1) {
  BranchSiteParams p;
  p.omega0 = 0.2;
  p.omega2 = 3.0;
  const auto h1 = p.distinctOmegas(Hypothesis::H1);
  EXPECT_DOUBLE_EQ(h1[0], 0.2);
  EXPECT_DOUBLE_EQ(h1[1], 1.0);
  EXPECT_DOUBLE_EQ(h1[2], 3.0);
  const auto h0 = p.distinctOmegas(Hypothesis::H0);
  EXPECT_DOUBLE_EQ(h0[2], 1.0);
}

TEST(BranchSite, QSetScalingNormalizesWeightedBackgroundRate) {
  const int n = gc().numSense();
  std::vector<double> pi(n, 1.0 / n);
  BranchSiteParams params;
  params.kappa = 2.0;
  params.omega0 = 0.1;
  params.omega2 = 2.5;
  params.p0 = 0.5;
  params.p1 = 0.3;
  const auto qset = buildBranchSiteQSet(gc(), pi, params, Hypothesis::H1);

  const auto prop = siteClassProportions(params.p0, params.p1);
  const Matrix q0 = qset.rateMatrix(kOmegaConserved, pi);
  const Matrix q1 = qset.rateMatrix(kOmegaNeutral, pi);
  const double weighted = (prop[0] + prop[2]) * expectedRate(q0, pi) +
                          (prop[1] + prop[3]) * expectedRate(q1, pi);
  EXPECT_NEAR(weighted, 1.0, 1e-10);
}

TEST(BranchSite, QSetMatricesAreValidGenerators) {
  const int n = gc().numSense();
  std::vector<double> pi(n, 1.0 / n);
  const auto qset =
      buildBranchSiteQSet(gc(), pi, BranchSiteParams{}, Hypothesis::H1);
  for (int k = 0; k < kNumOmegaClasses; ++k) {
    const Matrix q = qset.rateMatrix(k, pi);
    EXPECT_NO_THROW(validateGenerator(q, pi, 1e-9)) << "omega class " << k;
  }
}

TEST(BranchSite, HigherOmegaMeansFasterNonSynonymousRate) {
  const int n = gc().numSense();
  std::vector<double> pi(n, 1.0 / n);
  const auto qset =
      buildBranchSiteQSet(gc(), pi, BranchSiteParams{}, Hypothesis::H1);
  const auto idx = [&](const char* c) {
    return gc().senseIndex(*bio::codonFromString(c));
  };
  const Matrix q0 = qset.rateMatrix(kOmegaConserved, pi);
  const Matrix q2 = qset.rateMatrix(kOmegaPositive, pi);
  // Non-synonymous rate scales with omega (same normalization factor).
  EXPECT_GT(q2(idx("TTT"), idx("TTA")), q0(idx("TTT"), idx("TTA")));
  // Synonymous rate is identical across classes.
  EXPECT_NEAR(q2(idx("TTT"), idx("TTC")), q0(idx("TTT"), idx("TTC")), 1e-12);
}

}  // namespace
}  // namespace slim::model
