// Tests for the nucleotide alphabet and the genetic code machinery the
// 61x61 codon matrices are built on.

#include <gtest/gtest.h>

#include "bio/genetic_code.hpp"
#include "bio/nucleotide.hpp"

namespace slim::bio {
namespace {

// ---------- nucleotides ----------

TEST(Nucleotide, CharRoundTrip) {
  for (int i = 0; i < 4; ++i) {
    const auto n = static_cast<Nucleotide>(i);
    const auto parsed = nucleotideFromChar(nucleotideChar(n));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, n);
  }
}

TEST(Nucleotide, ParsingAcceptsCaseAndU) {
  EXPECT_EQ(nucleotideFromChar('t'), Nucleotide::T);
  EXPECT_EQ(nucleotideFromChar('U'), Nucleotide::T);
  EXPECT_EQ(nucleotideFromChar('u'), Nucleotide::T);
  EXPECT_EQ(nucleotideFromChar('g'), Nucleotide::G);
  EXPECT_FALSE(nucleotideFromChar('N').has_value());
  EXPECT_FALSE(nucleotideFromChar('-').has_value());
  EXPECT_FALSE(nucleotideFromChar('X').has_value());
}

TEST(Nucleotide, PurinePyrimidine) {
  EXPECT_TRUE(isPurine(Nucleotide::A));
  EXPECT_TRUE(isPurine(Nucleotide::G));
  EXPECT_TRUE(isPyrimidine(Nucleotide::T));
  EXPECT_TRUE(isPyrimidine(Nucleotide::C));
  EXPECT_FALSE(isPurine(Nucleotide::C));
  EXPECT_FALSE(isPyrimidine(Nucleotide::G));
}

TEST(Nucleotide, TransitionClassification) {
  // Transitions: A<->G, C<->T.
  EXPECT_TRUE(isTransition(Nucleotide::A, Nucleotide::G));
  EXPECT_TRUE(isTransition(Nucleotide::G, Nucleotide::A));
  EXPECT_TRUE(isTransition(Nucleotide::C, Nucleotide::T));
  // Transversions.
  EXPECT_FALSE(isTransition(Nucleotide::A, Nucleotide::T));
  EXPECT_FALSE(isTransition(Nucleotide::A, Nucleotide::C));
  EXPECT_FALSE(isTransition(Nucleotide::G, Nucleotide::T));
  // Identity is not a transition.
  EXPECT_FALSE(isTransition(Nucleotide::A, Nucleotide::A));
}

// ---------- codon arithmetic ----------

TEST(Codon, IndexingMatchesPamlConvention) {
  // TTT = 0, TTC = 1, ..., GGG = 63 with T=0,C=1,A=2,G=3.
  EXPECT_EQ(codonIndex(Nucleotide::T, Nucleotide::T, Nucleotide::T), 0);
  EXPECT_EQ(codonIndex(Nucleotide::G, Nucleotide::G, Nucleotide::G), 63);
  EXPECT_EQ(codonIndex(Nucleotide::T, Nucleotide::A, Nucleotide::A), 10);
  EXPECT_EQ(codonString(10), "TAA");
  EXPECT_EQ(codonString(14), "TGA");
  EXPECT_EQ(codonString(63), "GGG");
}

TEST(Codon, StringRoundTrip) {
  for (int c = 0; c < kNumCodons; ++c) {
    const auto parsed = codonFromString(codonString(c));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, c);
  }
}

TEST(Codon, ParsingRejectsAmbiguityAndGaps) {
  EXPECT_FALSE(codonFromString("AN-").has_value());
  EXPECT_FALSE(codonFromString("---").has_value());
  EXPECT_FALSE(codonFromString("AT").has_value());
  EXPECT_FALSE(codonFromString("ATGA").has_value());
  EXPECT_TRUE(codonFromString("aug").has_value());  // RNA lower-case
}

TEST(Codon, BaseExtraction) {
  const int atg = *codonFromString("ATG");
  EXPECT_EQ(codonBase(atg, 0), Nucleotide::A);
  EXPECT_EQ(codonBase(atg, 1), Nucleotide::T);
  EXPECT_EQ(codonBase(atg, 2), Nucleotide::G);
}

// ---------- universal genetic code ----------

TEST(GeneticCode, UniversalHas61SenseCodons) {
  const auto& gc = GeneticCode::universal();
  EXPECT_EQ(gc.numSense(), 61);
  int stops = 0;
  for (int c = 0; c < kNumCodons; ++c) stops += gc.isStop(c);
  EXPECT_EQ(stops, 3);
}

TEST(GeneticCode, UniversalStopCodons) {
  const auto& gc = GeneticCode::universal();
  EXPECT_TRUE(gc.isStop(*codonFromString("TAA")));
  EXPECT_TRUE(gc.isStop(*codonFromString("TAG")));
  EXPECT_TRUE(gc.isStop(*codonFromString("TGA")));
  EXPECT_FALSE(gc.isStop(*codonFromString("TGG")));
}

TEST(GeneticCode, KnownTranslations) {
  const auto& gc = GeneticCode::universal();
  EXPECT_EQ(gc.aminoAcid(*codonFromString("ATG")), 'M');
  EXPECT_EQ(gc.aminoAcid(*codonFromString("TGG")), 'W');
  EXPECT_EQ(gc.aminoAcid(*codonFromString("TTT")), 'F');
  EXPECT_EQ(gc.aminoAcid(*codonFromString("AAA")), 'K');
  EXPECT_EQ(gc.aminoAcid(*codonFromString("GGG")), 'G');
  EXPECT_EQ(gc.aminoAcid(*codonFromString("TCT")), 'S');
  EXPECT_EQ(gc.aminoAcid(*codonFromString("CGA")), 'R');
  EXPECT_EQ(gc.aminoAcid(*codonFromString("GAT")), 'D');
}

TEST(GeneticCode, SenseIndexRoundTrip) {
  const auto& gc = GeneticCode::universal();
  for (int s = 0; s < gc.numSense(); ++s)
    EXPECT_EQ(gc.senseIndex(gc.codonOfSense(s)), s);
  EXPECT_EQ(gc.senseIndex(*codonFromString("TAA")), -1);
}

TEST(GeneticCode, SenseIndicesAreDenseAndOrdered) {
  const auto& gc = GeneticCode::universal();
  int prev = -1;
  for (int c = 0; c < kNumCodons; ++c) {
    if (gc.isStop(c)) continue;
    EXPECT_EQ(gc.senseIndex(c), prev + 1);
    prev = gc.senseIndex(c);
  }
  EXPECT_EQ(prev, 60);
}

TEST(GeneticCode, Synonymy) {
  const auto& gc = GeneticCode::universal();
  EXPECT_TRUE(gc.synonymous(*codonFromString("TTT"), *codonFromString("TTC")));
  EXPECT_TRUE(gc.synonymous(*codonFromString("CGA"), *codonFromString("AGA")));
  EXPECT_FALSE(gc.synonymous(*codonFromString("ATG"), *codonFromString("ATA")));
  EXPECT_THROW(gc.synonymous(*codonFromString("TAA"), *codonFromString("TTT")),
               std::invalid_argument);
}

TEST(GeneticCode, VertebrateMitochondrialDiffers) {
  const auto& mito = GeneticCode::vertebrateMitochondrial();
  EXPECT_EQ(mito.numSense(), 60);
  EXPECT_EQ(mito.aminoAcid(*codonFromString("TGA")), 'W');
  EXPECT_EQ(mito.aminoAcid(*codonFromString("ATA")), 'M');
  EXPECT_TRUE(mito.isStop(*codonFromString("AGA")));
  EXPECT_TRUE(mito.isStop(*codonFromString("AGG")));
}

TEST(GeneticCode, YeastMitochondrial) {
  const auto& yeast = GeneticCode::yeastMitochondrial();
  EXPECT_EQ(yeast.numSense(), 62);
  EXPECT_EQ(yeast.aminoAcid(*codonFromString("TGA")), 'W');
  EXPECT_EQ(yeast.aminoAcid(*codonFromString("CTA")), 'T');  // CTN = Thr
  EXPECT_EQ(yeast.aminoAcid(*codonFromString("CTG")), 'T');
  EXPECT_EQ(yeast.aminoAcid(*codonFromString("ATA")), 'M');
}

TEST(GeneticCode, InvertebrateMitochondrial) {
  const auto& inv = GeneticCode::invertebrateMitochondrial();
  EXPECT_EQ(inv.numSense(), 62);
  EXPECT_EQ(inv.aminoAcid(*codonFromString("AGA")), 'S');
  EXPECT_EQ(inv.aminoAcid(*codonFromString("AGG")), 'S');
  EXPECT_EQ(inv.aminoAcid(*codonFromString("TGA")), 'W');
}

TEST(GeneticCode, AllBuiltInCodesHaveTwoOrThreeStops) {
  for (const auto* code :
       {&GeneticCode::universal(), &GeneticCode::vertebrateMitochondrial(),
        &GeneticCode::yeastMitochondrial(),
        &GeneticCode::invertebrateMitochondrial()}) {
    const int stops = kNumCodons - code->numSense();
    EXPECT_GE(stops, 2) << code->name();
    EXPECT_LE(stops, 4) << code->name();
    // ATG is Met and TTT is Phe in every built-in code.
    EXPECT_EQ(code->aminoAcid(*codonFromString("ATG")), 'M') << code->name();
    EXPECT_EQ(code->aminoAcid(*codonFromString("TTT")), 'F') << code->name();
  }
}

TEST(GeneticCode, CustomTableValidation) {
  EXPECT_THROW(GeneticCode("bad", "FF"), std::invalid_argument);
  std::string allStops(64, '*');
  EXPECT_THROW(GeneticCode("bad", allStops), std::invalid_argument);
}

// ---------- codon pair classification (Eq. 1 structure) ----------

TEST(CodonPair, MultipleDifferencesAreRate0) {
  const auto& gc = GeneticCode::universal();
  const auto c = classifyCodonPair(gc, *codonFromString("TTT"),
                                   *codonFromString("AAT"));
  EXPECT_EQ(c.ndiff, 2);
  EXPECT_EQ(c.pos, -1);
}

TEST(CodonPair, SynonymousTransition) {
  const auto& gc = GeneticCode::universal();
  // TTT (F) -> TTC (F): third position T->C, pyrimidine-pyrimidine.
  const auto c = classifyCodonPair(gc, *codonFromString("TTT"),
                                   *codonFromString("TTC"));
  EXPECT_EQ(c.ndiff, 1);
  EXPECT_EQ(c.pos, 2);
  EXPECT_TRUE(c.transition);
  EXPECT_TRUE(c.synonymous);
}

TEST(CodonPair, NonSynonymousTransversion) {
  const auto& gc = GeneticCode::universal();
  // TTT (F) -> TTA (L): third position T->A, transversion, non-synonymous.
  const auto c = classifyCodonPair(gc, *codonFromString("TTT"),
                                   *codonFromString("TTA"));
  EXPECT_EQ(c.ndiff, 1);
  EXPECT_FALSE(c.transition);
  EXPECT_FALSE(c.synonymous);
}

TEST(CodonPair, NonSynonymousTransition) {
  const auto& gc = GeneticCode::universal();
  // ATG (M) -> ATA (I): G->A transition, non-synonymous.
  const auto c = classifyCodonPair(gc, *codonFromString("ATG"),
                                   *codonFromString("ATA"));
  EXPECT_EQ(c.ndiff, 1);
  EXPECT_TRUE(c.transition);
  EXPECT_FALSE(c.synonymous);
}

TEST(CodonPair, IdenticalCodons) {
  const auto& gc = GeneticCode::universal();
  const int atg = *codonFromString("ATG");
  EXPECT_EQ(classifyCodonPair(gc, atg, atg).ndiff, 0);
}

TEST(CodonPair, SymmetricInArguments) {
  const auto& gc = GeneticCode::universal();
  for (int s1 : {0, 10, 30, 60}) {
    for (int s2 : {1, 15, 45, 59}) {
      const int c1 = gc.codonOfSense(s1), c2 = gc.codonOfSense(s2);
      const auto f = classifyCodonPair(gc, c1, c2);
      const auto b = classifyCodonPair(gc, c2, c1);
      EXPECT_EQ(f.ndiff, b.ndiff);
      EXPECT_EQ(f.transition, b.transition);
      EXPECT_EQ(f.synonymous, b.synonymous);
    }
  }
}

}  // namespace
}  // namespace slim::bio
