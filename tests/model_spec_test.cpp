// ModelSpec: the (site class x branch class) -> omega-slot assignment table
// behind branch-site A, the branch model and clade model C.  The central pin
// is the first TEST: the generic branch-site table reproduces the historic
// omegaIndexFor(siteClass, bool) switch cell for cell, which is what keeps
// the refactored likelihood path bit-identical.

#include <gtest/gtest.h>

#include <stdexcept>

#include "bio/genetic_code.hpp"
#include "model/branch_site.hpp"
#include "model/model_spec.hpp"

namespace model = slim::model;
using model::Hypothesis;
using model::ModelKind;
using model::ModelSpec;

TEST(ModelSpecTest, BranchSiteTableMatchesOmegaIndexFor) {
  const ModelSpec spec = ModelSpec::branchSite();
  for (const auto h : {Hypothesis::H0, Hypothesis::H1})
    for (int m = 0; m < model::kNumSiteClasses; ++m) {
      EXPECT_EQ(spec.omegaSlotFor(m, 0, h),
                model::omegaIndexFor(m, /*foreground=*/false));
      EXPECT_EQ(spec.omegaSlotFor(m, 1, h),
                model::omegaIndexFor(m, /*foreground=*/true));
    }
}

TEST(ModelSpecTest, BranchSiteShape) {
  const ModelSpec spec = ModelSpec::branchSite();
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.numSiteClasses(), 4);
  EXPECT_EQ(spec.numOmegaSlots(Hypothesis::H0), 3);
  EXPECT_EQ(spec.numOmegaSlots(Hypothesis::H1), 3);
  EXPECT_DOUBLE_EQ(spec.lrtDegreesOfFreedom(), 1.0);
  EXPECT_EQ(spec.numClassOmegaParams(Hypothesis::H1), 0);
  // The table is hypothesis-independent (H0 pins the slot's value, not the
  // slot), and defaults match the default-constructed spec carried by
  // FitOptions.
  EXPECT_EQ(spec.omegaAssignment(Hypothesis::H0),
            spec.omegaAssignment(Hypothesis::H1));
  EXPECT_EQ(spec, ModelSpec{});
}

TEST(ModelSpecTest, BranchModelAssignment) {
  const ModelSpec spec = ModelSpec::branch(3);
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.numSiteClasses(), 1);
  EXPECT_EQ(spec.numOmegaSlots(Hypothesis::H0), 1);
  EXPECT_EQ(spec.numOmegaSlots(Hypothesis::H1), 3);
  EXPECT_DOUBLE_EQ(spec.lrtDegreesOfFreedom(), 2.0);
  EXPECT_EQ(spec.numClassOmegaParams(Hypothesis::H0), 1);
  EXPECT_EQ(spec.numClassOmegaParams(Hypothesis::H1), 3);
  const auto h1 = spec.omegaAssignment(Hypothesis::H1);
  ASSERT_EQ(h1.size(), 1u);
  EXPECT_EQ(h1[0], (std::vector<int>{0, 1, 2}));
  // H0 keeps the full-width row but every branch class shares slot 0.
  const auto h0 = spec.omegaAssignment(Hypothesis::H0);
  ASSERT_EQ(h0.size(), 1u);
  EXPECT_EQ(h0[0], (std::vector<int>{0, 0, 0}));
}

TEST(ModelSpecTest, CladeCAssignment) {
  const ModelSpec spec = ModelSpec::cladeC(2);
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.numSiteClasses(), 3);
  // H1 slots: omega0, 1, and one divergent omega per branch class.
  EXPECT_EQ(spec.numOmegaSlots(Hypothesis::H1), 4);
  // H0 = M2a_rel: one shared divergent omega.
  EXPECT_EQ(spec.numOmegaSlots(Hypothesis::H0), 3);
  EXPECT_DOUBLE_EQ(spec.lrtDegreesOfFreedom(), 1.0);
  const auto h1 = spec.omegaAssignment(Hypothesis::H1);
  ASSERT_EQ(h1.size(), 3u);
  EXPECT_EQ(h1[0], (std::vector<int>{0}));
  EXPECT_EQ(h1[1], (std::vector<int>{1}));
  EXPECT_EQ(h1[2], (std::vector<int>{2, 3}));
  // H0 = M2a_rel: every branch class shares the one divergent slot.
  const auto h0 = spec.omegaAssignment(Hypothesis::H0);
  EXPECT_EQ(h0[2], (std::vector<int>{2, 2}));
}

TEST(ModelSpecTest, ClampsBranchClassesBeyondTable) {
  // Extra branch classes clamp to the last column, matching
  // MixtureClass::omegaFor — a branch-site run on a #2-marked tree treats
  // mark 2 like the foreground.
  const ModelSpec spec = ModelSpec::branchSite();
  EXPECT_EQ(spec.omegaSlotFor(2, 5), spec.omegaSlotFor(2, 1));
}

TEST(ModelSpecTest, ValidateRejectsImpossibleShapes) {
  EXPECT_THROW(ModelSpec::branch(1).validate(), std::invalid_argument);
  EXPECT_THROW(ModelSpec::cladeC(1).validate(), std::invalid_argument);
  EXPECT_THROW((ModelSpec{ModelKind::BranchSite, 3}).validate(),
               std::invalid_argument);
}

TEST(ModelSpecTest, BuildersProduceValidMixtures) {
  const auto& gc = slim::bio::GeneticCode::universal();
  const std::vector<double> pi(gc.numSense(), 1.0 / gc.numSense());

  const double omegas[] = {0.2, 1.5, 3.0};
  const auto branch = model::buildBranchModelSpec(gc, pi, 2.0, omegas);
  EXPECT_NO_THROW(branch.validate(gc.numSense()));
  ASSERT_EQ(branch.classes.size(), 1u);
  EXPECT_DOUBLE_EQ(branch.classes[0].proportion, 1.0);
  EXPECT_EQ(branch.classes[0].omega, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(branch.branchHomogeneous());

  const double divergent[] = {0.8, 4.0};
  const auto cladeC =
      model::buildCladeCSpec(gc, pi, 2.0, 0.1, 0.4, 0.3, divergent);
  EXPECT_NO_THROW(cladeC.validate(gc.numSense()));
  ASSERT_EQ(cladeC.classes.size(), 3u);
  EXPECT_DOUBLE_EQ(cladeC.classes[0].proportion, 0.4);
  EXPECT_DOUBLE_EQ(cladeC.classes[1].proportion, 0.3);
  EXPECT_NEAR(cladeC.classes[2].proportion, 0.3, 1e-12);
  EXPECT_EQ(cladeC.classes[2].omega, (std::vector<int>{2, 3}));
  EXPECT_DOUBLE_EQ(cladeC.omegas[0], 0.1);
  EXPECT_DOUBLE_EQ(cladeC.omegas[1], 1.0);
  EXPECT_DOUBLE_EQ(cladeC.omegas[2], 0.8);
  EXPECT_DOUBLE_EQ(cladeC.omegas[3], 4.0);

  // A single shared omega (the H0 shapes) is branch-homogeneous.
  const double shared[] = {0.7};
  EXPECT_TRUE(model::buildBranchModelSpec(gc, pi, 2.0, shared)
                  .branchHomogeneous());
}

TEST(ModelSpecTest, ModelKindNames) {
  EXPECT_STREQ(model::modelKindName(ModelKind::BranchSite), "branch-site");
  EXPECT_STREQ(model::modelKindName(ModelKind::Branch), "branch");
  EXPECT_STREQ(model::modelKindName(ModelKind::CladeC), "clade-c");
}
