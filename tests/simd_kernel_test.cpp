// Tests for the runtime-dispatched SIMD kernel layer (linalg/simd.hpp).
//
// The contract under test:
//   * the scalar table is the bit-exact reference — identical to the
//     Flavor::Opt kernels, and its fused-sandwich reconstruction is
//     bit-identical to the unfused syrk + scaleSandwich + clamp sequence;
//   * every compiled-and-supported SIMD level agrees with scalar to tight
//     elementwise tolerances on the kernels and to <= 1e-10 *relative* on
//     the log-likelihood;
//   * each level is bit-identical to itself across thread counts and block
//     sizes (EXPECT_EQ on doubles), because kernel results are invariant
//     under any row partition of a panel.

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "expm/codon_eigen_system.hpp"
#include "lik/branch_site_likelihood.hpp"
#include "linalg/blas3.hpp"
#include "linalg/diag.hpp"
#include "linalg/simd.hpp"
#include "model/codon_model.hpp"
#include "seqio/alignment.hpp"
#include "sim/datasets.hpp"
#include "sim/rng.hpp"
#include "test_util.hpp"

namespace slim::linalg {
namespace {

std::vector<SimdLevel> availableLevels() {
  std::vector<SimdLevel> out{SimdLevel::Scalar};
  if (simdLevelAvailable(SimdLevel::Avx2)) out.push_back(SimdLevel::Avx2);
  if (simdLevelAvailable(SimdLevel::Avx512)) out.push_back(SimdLevel::Avx512);
  return out;
}

Matrix randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  sim::Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t k = 0; k < m.size(); ++k)
    m.data()[k] = rng.uniform(-1.0, 1.0);
  return m;
}

std::vector<double> randomPositive(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(0.1, 2.0);
  return v;
}

void expectClose(const Matrix& got, const Matrix& want, const char* label) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t k = 0; k < got.size(); ++k) {
    const double scale = std::max(1.0, std::fabs(want.data()[k]));
    EXPECT_NEAR(got.data()[k], want.data()[k], 1e-12 * scale)
        << label << " element " << k;
  }
}

// ---------- raw kernel parity across levels ----------

TEST(SimdKernels, GemmMatchesScalarOnEveryLevel) {
  // Odd shapes on purpose: 61 exercises the vector tails, 7/13 the short
  // panel edge cases.
  constexpr std::tuple<int, int, int> kShapes[] = {
      {13, 61, 61}, {7, 61, 61}, {1, 61, 61}, {13, 5, 9}, {64, 61, 61}};
  for (auto [m, k, n] : kShapes) {
    const Matrix a = randomMatrix(m, k, 17);
    const Matrix b = randomMatrix(k, n, 23);
    Matrix want(m, n);
    simdKernels(SimdLevel::Scalar)
        .gemm(a.data(), b.data(), want.data(), m, k, n);
    for (SimdLevel level : availableLevels()) {
      Matrix got(m, n);
      simdKernels(level).gemm(a.data(), b.data(), got.data(), m, k, n);
      expectClose(got, want, simdLevelName(level));
    }
  }
}

TEST(SimdKernels, GemmNTAndSyrkMatchScalarOnEveryLevel) {
  const int m = 13, k = 61, n = 61;
  const Matrix a = randomMatrix(m, k, 31);
  const Matrix b = randomMatrix(n, k, 37);
  const Matrix y = randomMatrix(n, k, 41);
  Matrix wantNT(m, n), wantSyrk(n, n);
  simdKernels(SimdLevel::Scalar)
      .gemmNT(a.data(), b.data(), wantNT.data(), m, k, n);
  simdKernels(SimdLevel::Scalar).syrk(y.data(), wantSyrk.data(), n, k);
  for (SimdLevel level : availableLevels()) {
    Matrix gotNT(m, n), gotSyrk(n, n);
    simdKernels(level).gemmNT(a.data(), b.data(), gotNT.data(), m, k, n);
    simdKernels(level).syrk(y.data(), gotSyrk.data(), n, k);
    expectClose(gotNT, wantNT, simdLevelName(level));
    expectClose(gotSyrk, wantSyrk, simdLevelName(level));
  }
}

TEST(SimdKernels, FusedSandwichMatchesScalarOnEveryLevel) {
  const int n = 61;
  const Matrix y = randomMatrix(n, n, 43);
  const auto l = randomPositive(n, 47);
  const auto r = randomPositive(n, 53);
  Matrix wantSyrk(n, n), wantGemm(n, n);
  simdKernels(SimdLevel::Scalar)
      .syrkSandwich(y.data(), l.data(), r.data(), wantSyrk.data(), n, n);
  simdKernels(SimdLevel::Scalar)
      .gemmNTSandwich(y.data(), y.data(), l.data(), r.data(), wantGemm.data(),
                      n, n, n, false);
  for (SimdLevel level : availableLevels()) {
    Matrix gotSyrk(n, n), gotGemm(n, n);
    simdKernels(level).syrkSandwich(y.data(), l.data(), r.data(),
                                    gotSyrk.data(), n, n);
    simdKernels(level).gemmNTSandwich(y.data(), y.data(), l.data(), r.data(),
                                      gotGemm.data(), n, n, n, false);
    expectClose(gotSyrk, wantSyrk, simdLevelName(level));
    expectClose(gotGemm, wantGemm, simdLevelName(level));
  }
}

// ---------- scalar fusion is bit-exact ----------

TEST(SimdKernels, ScalarFusedSandwichIsBitIdenticalToUnfused) {
  const int n = 61;
  const Matrix y = randomMatrix(n, n, 59);
  const auto l = randomPositive(n, 61);
  const auto r = randomPositive(n, 67);
  const auto& scalar = simdKernels(SimdLevel::Scalar);

  // Unfused reference: syrk, then scaleSandwich, then the clamp — the exact
  // sequence the Flavor::Opt transitionMatrix used to run.
  Matrix z(n, n), want(n, n);
  scalar.syrk(y.data(), z.data(), n, n);
  scaleSandwich(z, l, r, want);
  for (std::size_t k = 0; k < want.size(); ++k)
    if (want.data()[k] < 0.0) want.data()[k] = 0.0;

  Matrix got(n, n);
  scalar.syrkSandwich(y.data(), l.data(), r.data(), got.data(), n, n);
  EXPECT_EQ(got, want);
}

TEST(SimdKernels, ScalarTransitionMatrixMatchesFlavorOptBitwise) {
  sim::Rng rng(71);
  const auto pi = sim::randomCodonFrequencies(61, 5, rng);
  Matrix s(61, 61);
  model::buildExchangeability(bio::GeneticCode::universal(), 2.0, 0.4, s);
  const expm::CodonEigenSystem es(s, pi);
  const auto& scalar = simdKernels(SimdLevel::Scalar);

  expm::ExpmWorkspace wsA, wsB;
  Matrix want(61, 61), got(61, 61);
  for (double t : {1e-4, 0.05, 0.7, 4.0}) {
    for (auto path :
         {expm::ReconstructionPath::Syrk, expm::ReconstructionPath::Gemm}) {
      es.transitionMatrix(t, path, Flavor::Opt, wsA, want);
      es.transitionMatrix(t, path, scalar, wsB, got);
      EXPECT_EQ(got, want) << "t = " << t;
    }
    es.derivativeMatrix(t, Flavor::Opt, wsA, want);
    es.derivativeMatrix(t, scalar, wsB, got);
    EXPECT_EQ(got, want) << "dP/dt at t = " << t;
  }
}

TEST(SimdKernels, SimdTransitionMatrixCloseToScalar) {
  sim::Rng rng(73);
  const auto pi = sim::randomCodonFrequencies(61, 5, rng);
  Matrix s(61, 61);
  model::buildExchangeability(bio::GeneticCode::universal(), 1.8, 1.2, s);
  const expm::CodonEigenSystem es(s, pi);

  expm::ExpmWorkspace wsA, wsB;
  Matrix want(61, 61), got(61, 61);
  es.transitionMatrix(0.1, expm::ReconstructionPath::Syrk, Flavor::Opt, wsA,
                      want);
  for (SimdLevel level : availableLevels()) {
    es.transitionMatrix(0.1, expm::ReconstructionPath::Syrk,
                        simdKernels(level), wsB, got);
    expectClose(got, want, simdLevelName(level));
    // Rows of a propagator are probability distributions.
    for (int i = 0; i < 61; ++i) {
      double sum = 0.0;
      for (int j = 0; j < 61; ++j) sum += got(i, j);
      EXPECT_NEAR(sum, 1.0, 1e-9) << simdLevelName(level) << " row " << i;
    }
  }
}

// ---------- dispatch plumbing ----------

TEST(SimdDispatch, ParseAndNames) {
  SimdMode m = SimdMode::Scalar;
  EXPECT_TRUE(parseSimdMode("auto", m));
  EXPECT_EQ(m, SimdMode::Auto);
  EXPECT_TRUE(parseSimdMode("scalar", m));
  EXPECT_EQ(m, SimdMode::Scalar);
  EXPECT_TRUE(parseSimdMode("avx2", m));
  EXPECT_EQ(m, SimdMode::Avx2);
  EXPECT_TRUE(parseSimdMode("avx512", m));
  EXPECT_EQ(m, SimdMode::Avx512);
  EXPECT_FALSE(parseSimdMode("sse9", m));
  EXPECT_EQ(m, SimdMode::Avx512);  // untouched on failure

  EXPECT_STREQ(simdLevelName(SimdLevel::Scalar), "scalar");
  EXPECT_STREQ(simdLevelName(SimdLevel::Avx2), "avx2");
  EXPECT_STREQ(simdLevelName(SimdLevel::Avx512), "avx512");
}

TEST(SimdDispatch, ResolveContract) {
  EXPECT_EQ(resolveSimdLevel(SimdMode::Scalar), SimdLevel::Scalar);
  EXPECT_EQ(resolveSimdLevel(SimdMode::Auto), detectSimdLevel());
  EXPECT_TRUE(simdLevelAvailable(SimdLevel::Scalar));
  EXPECT_TRUE(simdLevelAvailable(detectSimdLevel()));

  constexpr std::pair<SimdMode, SimdLevel> kPairs[] = {
      {SimdMode::Avx2, SimdLevel::Avx2},
      {SimdMode::Avx512, SimdLevel::Avx512}};
  for (auto [mode, level] : kPairs) {
    if (simdLevelAvailable(level)) {
      EXPECT_EQ(resolveSimdLevel(mode), level);
    } else {
      EXPECT_THROW(resolveSimdLevel(mode), std::invalid_argument);
    }
  }
}

}  // namespace
}  // namespace slim::linalg

// ---------- likelihood-level parity ----------

namespace slim::lik {
namespace {

using linalg::SimdLevel;
using linalg::SimdMode;
using model::BranchSiteParams;
using model::Hypothesis;

struct Fixture {
  seqio::CodonAlignment alignment;
  seqio::SitePatterns patterns;
  std::vector<double> pi;
  tree::Tree tree;
};

Fixture makeFixture() {
  const sim::Dataset ds = sim::makeSweepDataset(8, /*seed=*/20260731, 40);
  Fixture f;
  f.alignment = seqio::encodeCodons(ds.alignment, bio::GeneticCode::universal());
  f.patterns = seqio::compressPatterns(f.alignment);
  f.pi = testutil::randomFrequencies(bio::GeneticCode::universal().numSense(),
                                     11);
  f.tree = ds.tree;
  return f;
}

BranchSiteParams testParams() {
  BranchSiteParams p;
  p.kappa = 2.3;
  p.omega0 = 0.15;
  p.omega2 = 2.1;
  p.p0 = 0.55;
  p.p1 = 0.30;
  return p;
}

SimdMode modeFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::Scalar: return SimdMode::Scalar;
    case SimdLevel::Avx2: return SimdMode::Avx2;
    case SimdLevel::Avx512: return SimdMode::Avx512;
  }
  return SimdMode::Scalar;
}

LikelihoodOptions optionsFor(SimdLevel level, PropagationStrategy strategy,
                             int threads = 1, int blockSize = 8) {
  LikelihoodOptions o = slimOptions();
  o.simd = modeFor(level);
  o.propagation = strategy;
  o.numThreads = threads;
  o.blockSize = blockSize;
  return o;
}

// Every compiled SIMD flavor agrees with scalar to <= 1e-10 relative lnL on
// all three routed hot paths (bundled gemm, factored apply, per-site gemv's
// reconstruction-only route).
TEST(SimdLikelihood, LnlAgreesWithScalarWithin1e10Relative) {
  const Fixture f = makeFixture();
  const BranchSiteParams p = testParams();
  for (auto strategy :
       {PropagationStrategy::BundledGemm, PropagationStrategy::FactoredApply,
        PropagationStrategy::PerSiteGemv}) {
    BranchSiteLikelihood scalarEval(f.alignment, f.patterns, f.pi, f.tree,
                                    Hypothesis::H1,
                                    optionsFor(SimdLevel::Scalar, strategy));
    const double want = scalarEval.logLikelihood(p);
    ASSERT_TRUE(std::isfinite(want));
    for (SimdLevel level : {SimdLevel::Avx2, SimdLevel::Avx512}) {
      if (!linalg::simdLevelAvailable(level)) continue;
      BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                                Hypothesis::H1, optionsFor(level, strategy));
      EXPECT_EQ(eval.simdLevel(), level);
      const double got = eval.logLikelihood(p);
      EXPECT_LE(std::fabs(got - want), 1e-10 * std::fabs(want))
          << linalg::simdLevelName(level) << " "
          << propagationStrategyName(strategy);
    }
  }
}

// Each SIMD flavor is bit-identical to itself for every thread count and
// block size — the same invariance the scalar engine has always asserted.
TEST(SimdLikelihood, EachLevelBitIdenticalAcrossThreadsAndBlocks) {
  const Fixture f = makeFixture();
  const BranchSiteParams p = testParams();
  for (SimdLevel level :
       {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512}) {
    if (!linalg::simdLevelAvailable(level)) continue;
    BranchSiteLikelihood reference(
        f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
        optionsFor(level, PropagationStrategy::BundledGemm, 1, 8));
    const double want = reference.logLikelihood(p);
    ASSERT_TRUE(std::isfinite(want));
    for (int threads : {1, 2, 8}) {
      for (int blockSize : {0, 7, 64}) {
        BranchSiteLikelihood eval(
            f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
            optionsFor(level, PropagationStrategy::BundledGemm, threads,
                       blockSize));
        EXPECT_EQ(eval.logLikelihood(p), want)
            << linalg::simdLevelName(level) << " threads = " << threads
            << " blockSize = " << blockSize;
      }
    }
  }
}

// The analytic branch-gradient sweep shares the kernels; it must keep the
// same two properties (partition invariance per level, closeness to scalar).
TEST(SimdLikelihood, GradientSweepInvariantPerLevelAndCloseToScalar) {
  const Fixture f = makeFixture();
  const BranchSiteParams p = testParams();

  BranchSiteLikelihood scalarEval(
      f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
      optionsFor(SimdLevel::Scalar, PropagationStrategy::BundledGemm));
  std::vector<double> scalarGrad(scalarEval.numBranches());
  const double scalarLnl = scalarEval.logLikelihoodGradientBranches(
      p, std::span<double>(scalarGrad));
  ASSERT_TRUE(std::isfinite(scalarLnl));

  for (SimdLevel level : {SimdLevel::Avx2, SimdLevel::Avx512}) {
    if (!linalg::simdLevelAvailable(level)) continue;
    std::vector<double> want;
    for (int threads : {1, 2, 8}) {
      BranchSiteLikelihood eval(
          f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
          optionsFor(level, PropagationStrategy::BundledGemm, threads, 8));
      std::vector<double> grad(eval.numBranches());
      const double lnL =
          eval.logLikelihoodGradientBranches(p, std::span<double>(grad));
      EXPECT_LE(std::fabs(lnL - scalarLnl), 1e-10 * std::fabs(scalarLnl));
      if (want.empty()) {
        want = grad;
        for (std::size_t k = 0; k < grad.size(); ++k) {
          const double scale = std::max(1.0, std::fabs(scalarGrad[k]));
          EXPECT_NEAR(grad[k], scalarGrad[k], 1e-8 * scale)
              << linalg::simdLevelName(level) << " branch " << k;
        }
      } else {
        EXPECT_EQ(grad, want) << linalg::simdLevelName(level)
                              << " threads = " << threads;
      }
    }
  }
}

// simd = scalar through the public options is bit-identical to the pre-SIMD
// engine (the scalar table *is* the Flavor::Opt code), and the Naive flavor
// always resolves to scalar regardless of the requested mode.
TEST(SimdLikelihood, ScalarModeAndNaiveFlavorContracts) {
  const Fixture f = makeFixture();
  const BranchSiteParams p = testParams();

  LikelihoodOptions naive = codemlBaselineOptions();
  naive.simd = SimdMode::Auto;
  BranchSiteLikelihood naiveEval(f.alignment, f.patterns, f.pi, f.tree,
                                 Hypothesis::H1, naive);
  EXPECT_EQ(naiveEval.simdLevel(), SimdLevel::Scalar);

  LikelihoodOptions scalar = slimOptions();
  scalar.simd = SimdMode::Scalar;
  BranchSiteLikelihood scalarEval(f.alignment, f.patterns, f.pi, f.tree,
                                  Hypothesis::H1, scalar);
  EXPECT_EQ(scalarEval.simdLevel(), SimdLevel::Scalar);
  // Naive and Opt agree to analysis tolerance but not bitwise; just check
  // both produce finite, close values here.
  const double a = naiveEval.logLikelihood(p);
  const double b = scalarEval.logLikelihood(p);
  ASSERT_TRUE(std::isfinite(a));
  ASSERT_TRUE(std::isfinite(b));
  EXPECT_NEAR(a, b, 1e-6 * std::fabs(b));
}

TEST(SimdLikelihood, ExplicitUnavailableLevelFailsConstruction) {
  const Fixture f = makeFixture();
  for (SimdLevel level : {SimdLevel::Avx2, SimdLevel::Avx512}) {
    if (linalg::simdLevelAvailable(level)) continue;
    EXPECT_THROW(
        BranchSiteLikelihood(
            f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
            optionsFor(level, PropagationStrategy::BundledGemm)),
        std::invalid_argument);
  }
  SUCCEED();  // on fully-capable hosts the loop body never runs
}

}  // namespace
}  // namespace slim::lik
